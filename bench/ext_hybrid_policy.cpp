// Extension: PF-RR, one knowledge-free policy for all granularities.
//
// The paper closes: "further research is required in order to devise a
// single scheduling strategy able to properly work for all task
// granularities". PF-RR is our candidate: pending tasks are served strictly
// FCFS (what makes FCFS-Share win at small granularities), but replication
// only starts when no bag has pending work and then spreads round-robin
// (what makes RR win at large granularities). This bench pits it against
// the best paper policy in each regime, across both availability extremes.
#include <iostream>

#include "exp/runner.hpp"
#include "util/table.hpp"

int main() {
  using namespace dg;
  exp::RunOptions options = exp::RunOptions::from_env();
  const std::size_t num_bots = exp::env_num_bots().value_or(80);

  std::cout << "=== Extension: PF-RR hybrid vs the paper's policies ===\n"
            << "A single knowledge-free strategy should match FCFS-Share at small\n"
            << "granularities AND RR at large ones.\n\n";

  const sched::PolicyKind policies[] = {sched::PolicyKind::kFcfsShare,
                                        sched::PolicyKind::kRoundRobin,
                                        sched::PolicyKind::kLongIdle,
                                        sched::PolicyKind::kPendingFirst};

  for (grid::AvailabilityLevel level :
       {grid::AvailabilityLevel::kHigh, grid::AvailabilityLevel::kLow}) {
    for (workload::Intensity intensity :
         {workload::Intensity::kLow, workload::Intensity::kHigh}) {
      const grid::GridConfig grid_config =
          grid::GridConfig::preset(grid::Heterogeneity::kHom, level);
      std::vector<exp::NamedConfig> cells;
      for (double granularity : workload::kPaperGranularities) {
        for (sched::PolicyKind policy : policies) {
          sim::SimulationConfig config;
          config.grid = grid_config;
          config.workload =
              sim::make_paper_workload(grid_config, granularity, intensity, num_bots);
          config.policy = policy;
          config.warmup_bots = num_bots / 10;
          cells.push_back({util::format_double(granularity, 0) + "/" +
                               sched::to_string(policy),
                           config});
        }
      }
      exp::ExperimentRunner runner(options);
      const auto results = runner.run(cells);

      std::vector<std::string> header{"granularity [s]"};
      for (sched::PolicyKind policy : policies) header.push_back(sched::to_string(policy));
      util::Table table(std::move(header));
      std::size_t index = 0;
      for (double granularity : workload::kPaperGranularities) {
        std::vector<std::string> row{util::format_double(granularity, 0)};
        for (std::size_t p = 0; p < 4; ++p) {
          const exp::CellResult& cell = results[index++];
          const auto ci = cell.turnaround_ci();
          std::string text = util::format_double(ci.mean, 0);
          if (cell.saturated()) text = ">=" + text + " SAT";
          else text += " +-" + util::format_double(ci.half_width, 0);
          row.push_back(text);
        }
        table.add_row(std::move(row));
      }
      std::cout << "--- " << grid_config.name() << " / "
                << workload::to_string(intensity) << " intensity ---\n";
      table.render(std::cout);
      std::cout << "\n";
    }
  }
  return 0;
}
