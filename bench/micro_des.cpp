// Microbenchmarks: DES kernel, RNG, and statistics hot paths.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "des/queue_policy.hpp"
#include "des/simulator.hpp"
#include "rng/random_stream.hpp"
#include "stats/online_stats.hpp"
#include "stats/quantiles.hpp"

namespace {

void BM_ScheduleAndRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    dg::des::Simulator sim;
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sim.schedule_at(static_cast<double>((i * 7919) % 100000), [&sum] { ++sum; });
    }
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ScheduleAndRun)->Arg(1000)->Arg(100000);

void BM_EventChain(benchmark::State& state) {
  // Self-rescheduling event: measures per-event kernel overhead without
  // heap pressure from a deep queue.
  for (auto _ : state) {
    dg::des::Simulator sim;
    std::uint64_t count = 0;
    std::function<void()> chain = [&] {
      if (++count < 100000) sim.schedule_after(1.0, chain);
    };
    sim.schedule_after(1.0, chain);
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_EventChain);

void BM_CancelHeavy(benchmark::State& state) {
  // Half the events get cancelled — exercises lazy deletion.
  for (auto _ : state) {
    dg::des::Simulator sim;
    std::vector<dg::des::EventHandle> handles;
    handles.reserve(50000);
    std::uint64_t sum = 0;
    for (int i = 0; i < 100000; ++i) {
      auto handle = sim.schedule_at(static_cast<double>(i), [&sum] { ++sum; });
      if (i % 2 == 0) handles.push_back(handle);
    }
    for (auto& handle : handles) handle.cancel();
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_CancelHeavy);

void BM_HandleChurn(benchmark::State& state) {
  // Schedule-then-cancel with a small live window: isolates slab free-list
  // recycling and generation bumping from heap ordering costs.
  for (auto _ : state) {
    dg::des::Simulator sim;
    std::uint64_t sum = 0;
    std::vector<dg::des::EventHandle> window;
    for (int i = 0; i < 100000; ++i) {
      window.push_back(sim.schedule_at(1e9 + i, [&sum] { ++sum; }));
      if (window.size() == 64) {
        for (auto& handle : window) handle.cancel();
        window.clear();
      }
    }
    sim.schedule_at(2e9, [&sim] { sim.stop(); });
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_HandleChurn);

void BM_ArenaWarmStart(benchmark::State& state) {
  // One simulator reused across bursts: after the first burst the arena is
  // warm and the hot path performs zero allocations (arena_slabs stays flat).
  dg::des::Simulator sim;
  std::uint64_t sum = 0;
  for (auto _ : state) {
    for (int i = 0; i < 10000; ++i) {
      sim.schedule_after(static_cast<double>((i * 7919) % 1000 + 1), [&sum] { ++sum; });
    }
    sim.run();
  }
  benchmark::DoNotOptimize(sum);
  state.counters["slab_allocs"] = static_cast<double>(sim.stats().arena_slabs);
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_ArenaWarmStart);

template <typename Q>
void BM_QueueHold(benchmark::State& state) {
  // Classic hold model at fixed depth: pop the minimum, push a successor a
  // pseudo-random offset past it. Steady-state queue population stays at
  // range(0), so the depth sweep isolates how each backend's per-operation
  // cost scales with pending-entry count (the 4-ary heap pays log4(depth)
  // per pop; the calendar queue amortizes sorted-run refills).
  const auto depth = static_cast<std::size_t>(state.range(0));
  std::uint64_t mix = 0x9e3779b97f4a7c15ULL;
  auto next_offset = [&mix] {
    mix += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = mix;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<double>((z ^ (z >> 31)) % 100000) / 10.0;
  };
  Q queue;
  std::uint64_t seq = 0;
  double now = 0.0;
  for (std::size_t i = 0; i < depth; ++i) {
    queue.push(dg::des::QueueEntry{now + next_offset(), seq, static_cast<std::uint32_t>(seq), 0});
    ++seq;
  }
  for (auto _ : state) {
    const dg::des::QueueEntry& top = queue.top();
    now = top.time;
    queue.pop();
    queue.push(dg::des::QueueEntry{now + next_offset(), seq, static_cast<std::uint32_t>(seq), 0});
    ++seq;
  }
  benchmark::DoNotOptimize(queue.size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_QueueHold, dg::des::FourAryHeapQueue)
    ->Arg(256)->Arg(4096)->Arg(65536);
BENCHMARK_TEMPLATE(BM_QueueHold, dg::des::CalendarQueue)
    ->Arg(256)->Arg(4096)->Arg(65536);

void BM_Xoshiro256(benchmark::State& state) {
  dg::rng::Xoshiro256 gen(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Xoshiro256);

void BM_WeibullSample(benchmark::State& state) {
  dg::rng::RandomStream stream(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stream.weibull(0.7, 88200.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WeibullSample);

void BM_NormalSample(benchmark::State& state) {
  dg::rng::RandomStream stream(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stream.normal(1800.0, 300.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NormalSample);

void BM_OnlineStatsAdd(benchmark::State& state) {
  dg::stats::OnlineStats stats;
  double x = 0.0;
  for (auto _ : state) {
    stats.add(x += 1.5);
  }
  benchmark::DoNotOptimize(stats.mean());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OnlineStatsAdd);

void BM_StudentTQuantile(benchmark::State& state) {
  double df = 2.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dg::stats::student_t_quantile(0.975, df));
    df = df < 200.0 ? df + 1.0 : 2.0;
  }
}
BENCHMARK(BM_StudentTQuantile);

}  // namespace

BENCHMARK_MAIN();
