// Microbenchmarks: scheduler decision paths and end-to-end simulation
// throughput (events per second).
#include <benchmark/benchmark.h>

#include <algorithm>

#include "sim/simulation.hpp"

namespace {

dg::sim::SimulationConfig bench_config(dg::sched::PolicyKind policy, double granularity,
                                       std::size_t num_bots) {
  using namespace dg;
  sim::SimulationConfig config;
  config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHom,
                                         grid::AvailabilityLevel::kHigh);
  config.workload =
      sim::make_paper_workload(config.grid, granularity, workload::Intensity::kLow, num_bots);
  config.seed = 11;
  config.policy = policy;
  return config;
}

void run_policy_bench(benchmark::State& state, dg::sched::PolicyKind policy) {
  std::uint64_t events = 0;
  std::uint64_t scheduled = 0;
  std::uint64_t heap_peak = 0;
  for (auto _ : state) {
    const auto result = dg::sim::Simulation(bench_config(policy, 5000.0, 20)).run();
    events += result.events_executed;
    scheduled += result.kernel.events_scheduled;
    heap_peak = std::max(heap_peak, result.kernel.heap_peak);
    benchmark::DoNotOptimize(result.turnaround.mean());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["sched/s"] =
      benchmark::Counter(static_cast<double>(scheduled), benchmark::Counter::kIsRate);
  state.counters["heap_peak"] = static_cast<double>(heap_peak);
}

void BM_Simulation_FcfsExcl(benchmark::State& state) {
  run_policy_bench(state, dg::sched::PolicyKind::kFcfsExcl);
}
void BM_Simulation_FcfsShare(benchmark::State& state) {
  run_policy_bench(state, dg::sched::PolicyKind::kFcfsShare);
}
void BM_Simulation_RoundRobin(benchmark::State& state) {
  run_policy_bench(state, dg::sched::PolicyKind::kRoundRobin);
}
void BM_Simulation_RoundRobinNrf(benchmark::State& state) {
  run_policy_bench(state, dg::sched::PolicyKind::kRoundRobinNrf);
}
void BM_Simulation_LongIdle(benchmark::State& state) {
  run_policy_bench(state, dg::sched::PolicyKind::kLongIdle);
}
BENCHMARK(BM_Simulation_FcfsExcl)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Simulation_FcfsShare)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Simulation_RoundRobin)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Simulation_RoundRobinNrf)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Simulation_LongIdle)->Unit(benchmark::kMillisecond);

void BM_Simulation_SmallTasks(benchmark::State& state) {
  // Granularity 1000: 2500 tasks per bag — stresses the per-dispatch paths.
  std::uint64_t events = 0;
  for (auto _ : state) {
    const auto result =
        dg::sim::Simulation(bench_config(dg::sched::PolicyKind::kFcfsShare, 1000.0, 10)).run();
    events += result.events_executed;
    benchmark::DoNotOptimize(result.bots_completed);
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Simulation_SmallTasks)->Unit(benchmark::kMillisecond);

void BM_Simulation_LowAvailChurn(benchmark::State& state) {
  // Failure-heavy regime: availability events dominate.
  std::uint64_t events = 0;
  for (auto _ : state) {
    auto config = bench_config(dg::sched::PolicyKind::kRoundRobin, 25000.0, 10);
    config.grid = dg::grid::GridConfig::preset(dg::grid::Heterogeneity::kHet,
                                               dg::grid::AvailabilityLevel::kLow);
    config.workload = dg::sim::make_paper_workload(config.grid, 25000.0,
                                                   dg::workload::Intensity::kLow, 10);
    const auto result = dg::sim::Simulation(config).run();
    events += result.events_executed;
    benchmark::DoNotOptimize(result.bots_completed);
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Simulation_LowAvailChurn)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
