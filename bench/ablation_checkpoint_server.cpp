// Ablation: checkpoint-server capacity.
//
// The paper assumes "one or more Checkpoint Servers" and models transfers as
// pure Uniform[240,720] s delays — implicitly infinite transfer capacity.
// This ablation bounds the server's concurrent-transfer slots and measures
// when contention starts to matter: with ~100 machines checkpointing every
// Young interval, low-availability grids generate enough traffic that a
// small server becomes the bottleneck.
#include <iostream>

#include "exp/runner.hpp"
#include "util/table.hpp"

int main() {
  using namespace dg;
  exp::RunOptions options = exp::RunOptions::from_env();
  const std::size_t num_bots = exp::env_num_bots().value_or(40);

  const std::size_t capacities[] = {0, 16, 4, 1};  // 0 = unlimited (paper)
  const double granularities[] = {25000.0, 125000.0};

  std::cout << "=== Ablation: checkpoint-server transfer slots (Hom-LowAvail, RR,"
               " WQR-FT) ===\n"
            << "capacity 0 = the paper's pure-delay model.\n\n";

  std::vector<exp::NamedConfig> cells;
  for (double granularity : granularities) {
    for (std::size_t capacity : capacities) {
      sim::SimulationConfig config;
      config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHom,
                                             grid::AvailabilityLevel::kLow);
      config.grid.checkpoint_server_capacity = capacity;
      config.workload = sim::make_paper_workload(config.grid, granularity,
                                                 workload::Intensity::kLow, num_bots);
      config.policy = sched::PolicyKind::kRoundRobin;
      config.warmup_bots = num_bots / 10;
      cells.push_back({"g=" + util::format_double(granularity, 0) +
                           "/slots=" + std::to_string(capacity),
                       config});
    }
  }

  exp::ExperimentRunner runner(options);
  const auto results = runner.run(cells);

  util::Table table({"granularity [s]", "transfer slots", "mean turnaround [s]", "95% CI +-",
                     "saturated"});
  std::size_t index = 0;
  for (double granularity : granularities) {
    for (std::size_t capacity : capacities) {
      const exp::CellResult& cell = results[index++];
      const auto ci = cell.turnaround_ci();
      table.add_row({util::format_double(granularity, 0),
                     capacity == 0 ? "unlimited" : std::to_string(capacity),
                     util::format_double(ci.mean, 0), util::format_double(ci.half_width, 0),
                     cell.saturated() ? "yes" : "no"});
    }
  }
  table.render(std::cout);
  return 0;
}
