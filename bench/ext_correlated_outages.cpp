// Extension: correlated outages vs independent churn.
//
// Replication's value rests on replicas failing independently; a LAN-segment
// power cut violates that. This bench fixes the long-run availability at
// ~92.5% and delivers the unavailability either as independent per-machine
// churn (Weibull/normal, the paper's model) or as correlated outages hitting
// 25% of the grid at once, then compares the five policies and the
// replication threshold's usefulness under each regime.
#include <iostream>

#include "exp/runner.hpp"
#include "util/table.hpp"

namespace {

dg::grid::GridConfig independent_grid() {
  using namespace dg;
  grid::GridConfig config =
      grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kHigh);
  config.availability = grid::AvailabilityModel::from_availability(0.925);
  return config;
}

dg::grid::GridConfig correlated_grid() {
  using namespace dg;
  grid::GridConfig config =
      grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kAlways);
  config.outages.enabled = true;
  config.outages.fraction = 0.25;
  config.outages.mean_interarrival = 5000.0;
  config.outages.duration = rng::UniformDist{1000.0, 2000.0};  // loss = 7.5%
  return config;
}

}  // namespace

int main() {
  using namespace dg;
  exp::RunOptions options = exp::RunOptions::from_env();
  const std::size_t num_bots = exp::env_num_bots().value_or(50);

  std::cout << "=== Extension: correlated outages vs independent churn"
               " (~92.5% availability each) ===\n\n";

  std::vector<exp::NamedConfig> cells;
  struct RowMeta {
    const char* regime;
    sched::PolicyKind policy;
    int threshold;
  };
  std::vector<RowMeta> meta;
  for (int regime = 0; regime < 2; ++regime) {
    const grid::GridConfig grid_config = regime == 0 ? independent_grid() : correlated_grid();
    const char* regime_name = regime == 0 ? "independent" : "correlated";
    for (sched::PolicyKind policy : sched::paper_policies()) {
      sim::SimulationConfig config;
      config.grid = grid_config;
      // Arrival rate from the same effective power in both regimes: use the
      // independent grid's model so offered load matches.
      config.workload = sim::make_paper_workload(independent_grid(), 25000.0,
                                                 workload::Intensity::kLow, num_bots);
      config.policy = policy;
      config.warmup_bots = num_bots / 10;
      cells.push_back({std::string(regime_name) + "/" + sched::to_string(policy), config});
      meta.push_back({regime_name, policy, 2});
    }
    // Replication ablation under each regime (RR only).
    for (int threshold : {1, 3}) {
      sim::SimulationConfig config;
      config.grid = grid_config;
      config.workload = sim::make_paper_workload(independent_grid(), 25000.0,
                                                 workload::Intensity::kLow, num_bots);
      config.policy = sched::PolicyKind::kRoundRobin;
      config.replication_threshold = threshold;
      config.warmup_bots = num_bots / 10;
      cells.push_back({std::string(regime_name) + "/RR/R=" + std::to_string(threshold), config});
      meta.push_back({regime_name, sched::PolicyKind::kRoundRobin, threshold});
    }
  }

  exp::ExperimentRunner runner(options);
  const auto results = runner.run(cells);

  util::Table table({"failure regime", "policy", "R", "mean turnaround [s]", "95% CI +-",
                     "wasted compute"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto ci = results[i].turnaround_ci();
    table.add_row({meta[i].regime, sched::to_string(meta[i].policy),
                   std::to_string(meta[i].threshold), util::format_double(ci.mean, 0),
                   util::format_double(ci.half_width, 0),
                   util::format_double(100.0 * results[i].wasted_fraction.mean(), 1) + "%"});
  }
  table.render(std::cout);
  std::cout << "\nExpected shape: at equal availability, correlated outages inflate\n"
               "turnaround and blunt the benefit of raising the replication threshold\n"
               "(replicas die together).\n";
  return 0;
}
