// Reproduces Figure 1: mean BoT turnaround vs task granularity for the five
// bag-selection policies on high-availability (~98%) grids, four panels:
// Hom/Het x Low/High workload intensity.
#include "figure_main.hpp"

int main() {
  return dg::bench::run_figure_main(dg::exp::figure1_spec(), "fig1_high_avail.csv");
}
