// Robustness campaign driver: risk-cliff sweeps + seed-sensitivity analysis.
//
// Expands the campaign grid (exp/campaign.hpp) — (machine availability x
// checkpoint-server availability x utilization x replication threshold) per
// policy, under the adversarial scenario director unless DGSCHED_ADVERSARY=0
// — runs it through the ExperimentRunner, and emits:
//
//   robustness_heatmap.csv   — one heatmap-ready row per cell: axes, mean /
//                              p50 / p95 / p99 turnaround, wasted fraction,
//                              and p95 degradation vs the mildest corner of
//                              the cell's (policy, utilization, threshold)
//                              slice.
//   robustness_campaign.json — the same rows plus the seed-sensitivity
//                              reports, machine-readable.
//   robustness_seeds.csv     — per-policy inter-seed spread of the p95 at
//                              the harshest corner of the grid (lowest
//                              machine and server availability, highest
//                              utilization): min / median / max / mean /
//                              stddev / cv / max-over-min.
//
// Every output is bit-identical across DGSCHED_THREADS / DGSCHED_BATCH /
// DGSCHED_MULTI_CELL / DGSCHED_WORLD_CACHE — CI runs the smoke grid twice
// under different shapes and diffs the files byte for byte.
//
// With DGSCHED_PROCS set, the risk-cliff grid runs through the
// multi-process ShardedRunner instead of the in-process ExperimentRunner:
// cells shard across forked workers that share synthesized worlds through
// an mmap pool, and every completed replication is journaled so a killed
// campaign resumes from the journal (exp/shard.hpp). Output stays
// byte-identical to the single-process run — CI's shard-smoke job kills a
// 2-worker campaign mid-flight, resumes it, and diffs against the
// 1-process reference. The journal and pool live next to the outputs and
// are removed on successful completion unless --keep-journal is passed.
//
// Usage: ./robustness_campaign [output_dir] [--keep-journal]   # default: cwd
// Env:   DGSCHED_CAMPAIGN_GRID=smoke|full, DGSCHED_CAMPAIGN_SEEDS=N,
//        DGSCHED_ADVERSARY=0|1, DGSCHED_BOTS=N, DGSCHED_PROCS=N,
//        DGSCHED_JOURNAL=path, DGSCHED_POOL=dir, plus the usual runner knobs.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <iostream>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/runner.hpp"
#include "exp/shard.hpp"
#include "util/table.hpp"

namespace {

using namespace dg;

std::string num(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void write_heatmap_csv(std::ostream& os, const std::vector<exp::RiskCliffRow>& rows) {
  os << "label,policy,machine_availability,server_availability,utilization,"
        "replication_threshold,mean_turnaround,p50,p95,p99,wasted_fraction,"
        "degradation_vs_baseline,replications,saturated\n";
  for (const exp::RiskCliffRow& row : rows) {
    os << row.label << ',' << row.policy << ',' << num(row.machine_availability) << ','
       << num(row.server_availability) << ',' << num(row.utilization) << ','
       << row.replication_threshold << ',' << num(row.mean_turnaround) << ',' << num(row.p50)
       << ',' << num(row.p95) << ',' << num(row.p99) << ',' << num(row.wasted_fraction) << ','
       << num(row.degradation_vs_baseline) << ',' << row.replications << ','
       << (row.saturated ? 1 : 0) << '\n';
  }
}

struct SeedRow {
  std::string policy;
  std::string label;
  exp::SeedSpreadReport report;
};

void write_seeds_csv(std::ostream& os, const std::vector<SeedRow>& rows) {
  os << "policy,label,seeds,saturated_seeds,p95_min,p95_median,p95_max,p95_mean,"
        "p95_stddev,p95_cv,p95_max_over_min\n";
  for (const SeedRow& row : rows) {
    const exp::SeedSpreadReport& r = row.report;
    os << row.policy << ',' << row.label << ',' << r.seeds << ',' << r.saturated_seeds << ','
       << num(r.p95_min) << ',' << num(r.p95_median) << ',' << num(r.p95_max) << ','
       << num(r.p95_mean) << ',' << num(r.p95_stddev) << ',' << num(r.p95_cv) << ','
       << num(r.p95_max_over_min) << '\n';
  }
}

void write_json(std::ostream& os, const exp::CampaignOptions& campaign,
                const std::vector<exp::RiskCliffRow>& rows, const std::vector<SeedRow>& seeds) {
  os << "{\n  \"schema\": \"dgsched-robustness-campaign-v1\",\n";
  os << "  \"grid\": \"" << (campaign.smoke ? "smoke" : "full") << "\",\n";
  os << "  \"adversary\": " << (campaign.adversary ? "true" : "false") << ",\n";
  os << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const exp::RiskCliffRow& row = rows[i];
    os << "    {\"label\": \"" << row.label << "\", \"policy\": \"" << row.policy
       << "\", \"machine_availability\": " << num(row.machine_availability)
       << ", \"server_availability\": " << num(row.server_availability)
       << ", \"utilization\": " << num(row.utilization)
       << ", \"replication_threshold\": " << row.replication_threshold
       << ", \"mean_turnaround\": " << num(row.mean_turnaround) << ", \"p50\": " << num(row.p50)
       << ", \"p95\": " << num(row.p95) << ", \"p99\": " << num(row.p99)
       << ", \"wasted_fraction\": " << num(row.wasted_fraction)
       << ", \"degradation_vs_baseline\": " << num(row.degradation_vs_baseline)
       << ", \"replications\": " << row.replications
       << ", \"saturated\": " << (row.saturated ? "true" : "false") << '}'
       << (i + 1 < rows.size() ? "," : "") << '\n';
  }
  os << "  ],\n  \"seed_sensitivity\": [\n";
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const exp::SeedSpreadReport& r = seeds[i].report;
    os << "    {\"policy\": \"" << seeds[i].policy << "\", \"label\": \"" << seeds[i].label
       << "\", \"seeds\": " << r.seeds << ", \"saturated_seeds\": " << r.saturated_seeds
       << ", \"p95_per_seed\": [";
    for (std::size_t s = 0; s < r.p95.size(); ++s) {
      os << (s != 0 ? ", " : "") << num(r.p95[s]);
    }
    os << "], \"p95_min\": " << num(r.p95_min) << ", \"p95_median\": " << num(r.p95_median)
       << ", \"p95_max\": " << num(r.p95_max) << ", \"p95_mean\": " << num(r.p95_mean)
       << ", \"p95_stddev\": " << num(r.p95_stddev) << ", \"p95_cv\": " << num(r.p95_cv)
       << ", \"p95_max_over_min\": " << num(r.p95_max_over_min) << '}'
       << (i + 1 < seeds.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = ".";
  bool keep_journal = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--keep-journal") {
      keep_journal = true;
    } else {
      out_dir = argv[i];
    }
  }
  const exp::RunOptions options = exp::RunOptions::from_env();
  const exp::CampaignOptions campaign = exp::CampaignOptions::from_env();
  // DGSCHED_PROCS selects the multi-process path; journal and pool default
  // next to the outputs (override with DGSCHED_JOURNAL / DGSCHED_POOL).
  const bool sharded = exp::env_size("DGSCHED_PROCS").has_value();
  exp::ShardOptions shard = exp::ShardOptions::from_env();
  if (shard.journal_path.empty()) shard.journal_path = out_dir + "/robustness_campaign.journal";
  if (shard.pool_dir.empty()) shard.pool_dir = out_dir + "/robustness_campaign.worldpool";

  exp::CampaignAxes axes = campaign.smoke ? exp::CampaignAxes::smoke() : exp::CampaignAxes{};
  axes.num_bots = exp::env_num_bots().value_or(axes.num_bots);
  axes.warmup_bots = std::min(axes.warmup_bots, axes.num_bots / 4);
  axes.adversary.enabled = campaign.adversary;
  if (campaign.adversary) {
    // Scale the stress windows to the campaign's shortest expected arrival
    // span (num_bots / arrival_rate), so reduced CI grids (DGSCHED_BOTS)
    // keep num_windows non-overlapping windows instead of throwing.
    double min_span = std::numeric_limits<double>::infinity();
    for (const exp::CampaignCell& cell : exp::expand_campaign(axes)) {
      min_span = std::min(min_span, static_cast<double>(cell.config.workload.num_bots) /
                                        cell.config.workload.arrival_rate);
    }
    const double fit = 0.8 * (1.0 - axes.adversary.lead_fraction) * min_span /
                       static_cast<double>(axes.adversary.num_windows);
    axes.adversary.window_duration = std::min(axes.adversary.window_duration, fit);
  }

  const std::vector<exp::CampaignCell> cells = exp::expand_campaign(axes);
  std::cout << "=== Robustness campaign: " << (campaign.smoke ? "smoke" : "full") << " grid, "
            << cells.size() << " cells, adversary "
            << (campaign.adversary ? "on" : "off");
  if (sharded) std::cout << ", " << std::max<std::size_t>(1, shard.procs) << " worker procs";
  std::cout << " ===\n\n";

  std::vector<exp::NamedConfig> named;
  named.reserve(cells.size());
  for (const exp::CampaignCell& cell : cells) {
    named.push_back(exp::NamedConfig{cell.label, cell.config});
  }
  std::vector<exp::CellResult> results;
  exp::ExecutionStats exec;
  if (sharded) {
    exp::ShardedRunner runner(options, shard);
    results = runner.run(named);
    exec = runner.exec_stats();
    const grid::WorldCacheStats stats = runner.worker_cache_stats();
    std::cout << "sharded: " << runner.recovered_replications()
              << " replications resumed from journal, pool hit rate "
              << 100.0 * stats.pool_hit_rate() << "%\n";
  } else {
    exp::ExperimentRunner runner(options);
    results = runner.run(named);
    exec = runner.exec_stats();
  }
  // Execution-shape banner (stdout is not part of the byte-diffed artifacts;
  // wall-clock numbers legitimately differ between bit-identical runs).
  std::printf(
      "execution: %zu lanes, wall %.1fs, busy %.1fs, stall %.1fs (%.0f%% utilized)\n"
      "speculation: %llu launched, %llu committed, %llu discarded, %llu recovered\n",
      exec.lanes.size(), exec.wall_s, exec.busy_s(), exec.stall_s(),
      exec.wall_s > 0.0 && !exec.lanes.empty()
          ? 100.0 * exec.busy_s() / (exec.wall_s * static_cast<double>(exec.lanes.size()))
          : 0.0,
      static_cast<unsigned long long>(exec.launched),
      static_cast<unsigned long long>(exec.committed),
      static_cast<unsigned long long>(exec.discarded),
      static_cast<unsigned long long>(exec.recovered));
  const std::vector<exp::RiskCliffRow> rows = exp::risk_cliff_rows(cells, results);

  util::Table table({"cell", "mean [s]", "p95 [s]", "p99 [s]", "wasted", "degradation"});
  for (const exp::RiskCliffRow& row : rows) {
    table.add_row({row.label, util::format_double(row.mean_turnaround, 0),
                   util::format_double(row.p95, 0), util::format_double(row.p99, 0),
                   util::format_double(100.0 * row.wasted_fraction, 1) + "%",
                   util::format_double(row.degradation_vs_baseline, 2) + "x"});
  }
  table.render(std::cout);

  // Seed sensitivity at the harshest corner of each policy's grid: lowest
  // machine availability, lowest server availability, highest utilization,
  // highest replication threshold.
  const double harsh_machine =
      *std::min_element(axes.machine_availabilities.begin(), axes.machine_availabilities.end());
  const double harsh_server =
      *std::min_element(axes.server_availabilities.begin(), axes.server_availabilities.end());
  const double harsh_util = *std::max_element(axes.utilizations.begin(), axes.utilizations.end());
  const int harsh_threshold =
      *std::max_element(axes.replication_thresholds.begin(), axes.replication_thresholds.end());

  std::vector<SeedRow> seed_rows;
  std::cout << "\nseed sensitivity (" << campaign.seeds << " seeds, harshest corner a="
            << harsh_machine << " s=" << harsh_server << " U=" << harsh_util << "):\n";
  for (const exp::CampaignCell& cell : cells) {
    if (cell.machine_availability != harsh_machine || cell.server_availability != harsh_server ||
        cell.utilization != harsh_util || cell.replication_threshold != harsh_threshold) {
      continue;
    }
    SeedRow row;
    row.policy = sched::to_string(cell.policy);
    row.label = cell.label;
    row.report = exp::seed_sensitivity(cell.config, options, campaign.seeds);
    seed_rows.push_back(std::move(row));
  }
  util::Table spread({"policy", "p95 min", "p95 median", "p95 max", "cv", "max/min"});
  for (const SeedRow& row : seed_rows) {
    spread.add_row({row.policy, util::format_double(row.report.p95_min, 0),
                    util::format_double(row.report.p95_median, 0),
                    util::format_double(row.report.p95_max, 0),
                    util::format_double(row.report.p95_cv, 3),
                    util::format_double(row.report.p95_max_over_min, 2) + "x"});
  }
  spread.render(std::cout);

  {
    std::ofstream os(out_dir + "/robustness_heatmap.csv");
    write_heatmap_csv(os, rows);
  }
  {
    std::ofstream os(out_dir + "/robustness_seeds.csv");
    write_seeds_csv(os, seed_rows);
  }
  {
    std::ofstream os(out_dir + "/robustness_campaign.json");
    write_json(os, campaign, rows, seed_rows);
  }
  std::cout << "\nwrote " << out_dir << "/robustness_heatmap.csv, robustness_seeds.csv, "
            << "robustness_campaign.json\n";

  // The campaign completed and its outputs are on disk: the journal (and the
  // world pool it shared) have served their purpose. --keep-journal retains
  // them, e.g. to rerun with more seeds or inspect the records.
  if (sharded && !keep_journal) {
    std::error_code ec;
    std::filesystem::remove(shard.journal_path, ec);
    std::filesystem::remove_all(shard.pool_dir, ec);
  }
  return 0;
}
