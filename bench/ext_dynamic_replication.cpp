// Extension (paper future work, direction 2a): dynamic replication.
//
// Replaces the static WQR-FT threshold with an adaptive controller that
// tracks the EWMA failure fraction of observed replica outcomes and picks
// the smallest r with p_fail^r below a 5% loss target. Compared against
// static R=1 and R=2 across availability levels: dynamic should approach
// R=1's efficiency on stable grids and R=2's resilience on volatile ones.
#include <iostream>

#include "exp/runner.hpp"
#include "util/table.hpp"

int main() {
  using namespace dg;
  exp::RunOptions options = exp::RunOptions::from_env();
  const std::size_t num_bots = exp::env_num_bots().value_or(60);

  std::cout << "=== Extension: dynamic replication threshold (future work 2a) ===\n\n";

  std::vector<exp::NamedConfig> cells;
  std::vector<std::string> labels;
  for (grid::AvailabilityLevel level : {grid::AvailabilityLevel::kHigh,
                                        grid::AvailabilityLevel::kMed,
                                        grid::AvailabilityLevel::kLow}) {
    const grid::GridConfig grid_config =
        grid::GridConfig::preset(grid::Heterogeneity::kHet, level);
    const workload::WorkloadConfig workload_config = sim::make_paper_workload(
        grid_config, 25000.0, workload::Intensity::kLow, num_bots);
    for (int variant = 0; variant < 3; ++variant) {
      sim::SimulationConfig config;
      config.grid = grid_config;
      config.workload = workload_config;
      config.policy = sched::PolicyKind::kRoundRobin;
      config.warmup_bots = num_bots / 10;
      std::string name;
      if (variant == 0) {
        config.replication_threshold = 1;
        name = "static R=1";
      } else if (variant == 1) {
        config.replication_threshold = 2;
        name = "static R=2";
      } else {
        config.dynamic_replication = true;
        name = "dynamic";
      }
      labels.push_back(grid::to_string(level));
      cells.push_back({grid_config.name() + "/" + name, config});
    }
  }

  exp::ExperimentRunner runner(options);
  const auto results = runner.run(cells);

  util::Table table({"availability", "replication", "mean turnaround [s]", "95% CI +-",
                     "wasted compute", "utilization"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const exp::CellResult& cell = results[i];
    const auto ci = cell.turnaround_ci();
    const std::string variant = cell.label.substr(cell.label.find('/') + 1);
    table.add_row({labels[i], variant, util::format_double(ci.mean, 0),
                   util::format_double(ci.half_width, 0),
                   util::format_double(100.0 * cell.wasted_fraction.mean(), 1) + "%",
                   util::format_double(cell.utilization.mean(), 3)});
  }
  table.render(std::cout);
  return 0;
}
