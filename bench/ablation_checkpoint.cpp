// Ablation: individual-bag scheduler (WorkQueue vs WQR vs WQR-FT).
//
// Isolates the contribution of replication (WQR over WorkQueue) and of
// checkpointing + priority resubmission (WQR-FT over WQR) under churn, across
// task granularities. The checkpoint machinery only pays off once tasks are
// long relative to the machines' MTTF: at small granularities the Uniform
// [240,720] s transfer costs exceed the progress they protect.
#include <iostream>

#include "exp/runner.hpp"
#include "util/table.hpp"

int main() {
  using namespace dg;
  exp::RunOptions options = exp::RunOptions::from_env();
  std::size_t num_bots = exp::env_num_bots().value_or(40);

  const grid::GridConfig grid_config =
      grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kLow);
  const double granularities[] = {1000.0, 5000.0, 25000.0, 125000.0};
  const sched::IndividualSchedulerKind kinds[] = {sched::IndividualSchedulerKind::kWorkQueue,
                                                  sched::IndividualSchedulerKind::kWqr,
                                                  sched::IndividualSchedulerKind::kWqrFt};

  std::vector<exp::NamedConfig> cells;
  for (double granularity : granularities) {
    for (sched::IndividualSchedulerKind kind : kinds) {
      sim::SimulationConfig config;
      config.grid = grid_config;
      config.workload = sim::make_paper_workload(grid_config, granularity,
                                                 workload::Intensity::kLow, num_bots);
      config.policy = sched::PolicyKind::kRoundRobin;
      config.individual = kind;
      config.warmup_bots = num_bots / 10;
      cells.push_back(
          {"g=" + util::format_double(granularity, 0) + "/" + sched::to_string(kind), config});
    }
  }

  std::cout << "=== Ablation: individual-bag scheduler under churn (Hom-LowAvail, RR) ===\n"
            << "WQR adds replication to WorkQueue; WQR-FT adds checkpointing and\n"
            << "priority resubmission to WQR (the paper's choice).\n\n";
  exp::ExperimentRunner runner(options);
  const auto results = runner.run(cells);

  util::Table table({"granularity [s]", "scheduler", "mean turnaround [s]", "95% CI +-",
                     "lost work [s]", "saturated"});
  std::size_t index = 0;
  for (double granularity : granularities) {
    for (sched::IndividualSchedulerKind kind : kinds) {
      (void)kind;
      const exp::CellResult& cell = results[index++];
      const auto ci = cell.turnaround_ci();
      table.add_row({util::format_double(granularity, 0),
                     sched::to_string(cell.config.individual),
                     util::format_double(ci.mean, 0), util::format_double(ci.half_width, 0),
                     util::format_double(cell.lost_work.mean(), 0),
                     cell.saturated() ? "yes" : "no"});
    }
  }
  table.render(std::cout);
  return 0;
}
