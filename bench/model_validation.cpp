// Model validation: analytical queueing predictions vs simulation.
//
// FCFS-Excl serves whole bags serially -> M/G/1 FCFS (Pollaczek-Khinchine);
// RR approximates processor sharing -> M/G/1-PS. The table reports predicted
// vs simulated mean turnaround across granularities and intensities on the
// Hom-HighAvail grid. Expected shape: tight agreement in the bulk regime
// (small granularity, where a bag's service is near-deterministic) and a
// documented optimistic bias at large granularities (the analytic service
// model ignores replication interactions and within-bag stragglers beyond
// the max-task correction).
#include <iostream>

#include "analysis/queueing.hpp"
#include "exp/runner.hpp"
#include "util/table.hpp"

int main() {
  using namespace dg;
  exp::RunOptions options = exp::RunOptions::from_env();
  const std::size_t num_bots = exp::env_num_bots().value_or(80);

  const grid::GridConfig grid_config =
      grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kHigh);
  const double granularities[] = {1000.0, 5000.0, 25000.0};
  const workload::Intensity intensities[] = {workload::Intensity::kLow,
                                             workload::Intensity::kMed};

  struct Row {
    double granularity;
    workload::Intensity intensity;
    sched::PolicyKind policy;
    double predicted;
  };
  std::vector<Row> rows;
  std::vector<exp::NamedConfig> cells;
  for (double granularity : granularities) {
    for (workload::Intensity intensity : intensities) {
      const workload::WorkloadConfig workload_config =
          sim::make_paper_workload(grid_config, granularity, intensity, num_bots);
      const analysis::ServiceModel service =
          analysis::bag_service_model(grid_config, workload_config);
      for (sched::PolicyKind policy :
           {sched::PolicyKind::kFcfsExcl, sched::PolicyKind::kRoundRobin}) {
        const analysis::QueueingPrediction prediction =
            policy == sched::PolicyKind::kFcfsExcl
                ? analysis::mg1_fcfs(workload_config.arrival_rate, service)
                : analysis::mg1_ps(workload_config.arrival_rate, service);
        sim::SimulationConfig config;
        config.grid = grid_config;
        config.workload = workload_config;
        config.policy = policy;
        config.warmup_bots = num_bots / 10;
        rows.push_back({granularity, intensity, policy, prediction.mean_response});
        cells.push_back({"g=" + util::format_double(granularity, 0) + "/" +
                             workload::to_string(intensity) + "/" + sched::to_string(policy),
                         config});
      }
    }
  }

  std::cout << "=== Model validation: M/G/1 predictions vs simulation (Hom-HighAvail) ===\n"
            << "FCFS-Excl vs Pollaczek-Khinchine; RR vs processor sharing.\n\n";
  exp::ExperimentRunner runner(options);
  const auto results = runner.run(cells);

  util::Table table({"granularity [s]", "intensity", "policy", "queue model",
                     "predicted T [s]", "simulated T [s]", "ratio"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double simulated = results[i].turnaround.stats().mean();
    table.add_row({util::format_double(rows[i].granularity, 0),
                   workload::to_string(rows[i].intensity), sched::to_string(rows[i].policy),
                   rows[i].policy == sched::PolicyKind::kFcfsExcl ? "M/G/1 FCFS" : "M/G/1 PS",
                   util::format_double(rows[i].predicted, 0),
                   util::format_double(simulated, 0),
                   util::format_double(rows[i].predicted / simulated, 2)});
  }
  table.render(std::cout);
  return 0;
}
