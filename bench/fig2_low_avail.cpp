// Reproduces Figure 2: mean BoT turnaround vs task granularity for the five
// bag-selection policies on low-availability (~50%) grids — the
// volunteer-computing regime — four panels: Hom/Het x Low/High intensity.
#include "figure_main.hpp"

int main() {
  return dg::bench::run_figure_main(dg::exp::figure2_spec(), "fig2_low_avail.csv");
}
