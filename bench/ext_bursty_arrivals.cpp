// Extension: arrival-process sensitivity.
//
// The paper models submissions as a Poisson stream; real multi-user
// Desktop Grids see correlated submission bursts (paper deadlines, working
// hours). This bench keeps the mean rate fixed and varies the arrival
// process shape (near-periodic / Poisson / bursty MMPP), asking whether the
// knowledge-free policy ranking is robust to burstiness. Queueing theory
// predicts waiting grows with arrival variability, hitting FCFS-ordered
// policies hardest.
#include <iostream>

#include "exp/runner.hpp"
#include "util/table.hpp"

int main() {
  using namespace dg;
  exp::RunOptions options = exp::RunOptions::from_env();
  const std::size_t num_bots = exp::env_num_bots().value_or(80);

  const grid::GridConfig grid_config =
      grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kHigh);
  const workload::ArrivalProcess processes[] = {workload::ArrivalProcess::kUniformJitter,
                                                workload::ArrivalProcess::kPoisson,
                                                workload::ArrivalProcess::kBursty};
  const sched::PolicyKind policies[] = {sched::PolicyKind::kFcfsShare,
                                        sched::PolicyKind::kRoundRobin,
                                        sched::PolicyKind::kLongIdle};

  std::vector<exp::NamedConfig> cells;
  for (workload::ArrivalProcess process : processes) {
    for (sched::PolicyKind policy : policies) {
      sim::SimulationConfig config;
      config.grid = grid_config;
      config.workload = sim::make_paper_workload(grid_config, 5000.0,
                                                 workload::Intensity::kMed, num_bots);
      config.workload.arrivals = process;
      config.policy = policy;
      config.warmup_bots = num_bots / 10;
      cells.push_back({workload::to_string(process) + "/" + sched::to_string(policy), config});
    }
  }

  std::cout << "=== Extension: arrival-process sensitivity (Hom-HighAvail, 5000 s"
               " tasks, 75% load) ===\n\n";
  exp::ExperimentRunner runner(options);
  const auto results = runner.run(cells);

  util::Table table({"arrivals", "policy", "mean turnaround [s]", "95% CI +-",
                     "mean waiting [s]", "mean slowdown proxy"});
  std::size_t index = 0;
  for (workload::ArrivalProcess process : processes) {
    for (sched::PolicyKind policy : policies) {
      (void)policy;
      const exp::CellResult& cell = results[index++];
      const auto ci = cell.turnaround_ci();
      table.add_row({workload::to_string(process), sched::to_string(cell.config.policy),
                     util::format_double(ci.mean, 0), util::format_double(ci.half_width, 0),
                     util::format_double(cell.waiting.mean(), 0),
                     util::format_double(ci.mean / cell.makespan.mean(), 2)});
    }
  }
  table.render(std::cout);
  return 0;
}
