// Machine-readable perf-report records (see docs/BENCHMARKING.md).
//
// Each benchmark in bench/perf_report.cpp produces one PerfRecord; a file's
// worth of records is serialized as a JSON array so the BENCH_*.json
// trajectory can be diffed across PRs by any tool. Deliberately dependency
// free: the writer emits the small fixed schema by hand.
#pragma once

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace dg::bench {

/// One benchmark measurement. Schema (stable across PRs — append-only):
/// {benchmark, events_per_sec, wall_s, peak_rss_kb, config, seed,
///  machines_per_dispatch, transfer_retries, replicas_degraded,
///  replications_per_sec, threads, allocs_per_replication, procs,
///  cache_hit_rate, pool_hit_rate, worker_busy_s, worker_stall_s,
///  spec_launched, spec_committed, spec_discarded, tails: {turnaround_p50,
///  turnaround_p95, turnaround_p99, slowdown_p95, slowdown_p99}}.
/// `benchmark`, `wall_s`, and `config` are always emitted; every other field
/// is omitted when it holds its zero default, so records stay readable and
/// suite-specific fields don't show up as meaningless zeros elsewhere. The
/// `tails` object follows the same rule: absent unless the suite recorded at
/// least one tail quantile, zero members omitted inside it.
struct PerfRecord {
  std::string benchmark;     ///< Stable identifier, e.g. "kernel/event_chain".
  double events_per_sec = 0; ///< Primary throughput metric.
  double wall_s = 0;         ///< Wall-clock seconds of the measured run.
  std::uint64_t peak_rss_kb = 0; ///< Process peak RSS after the run.
  std::string config;        ///< Free-form description of the workload knobs.
  std::uint64_t seed = 0;    ///< RNG seed the run used (0 = deterministic).
  /// Dispatch-path cost: SchedStats.machines_examined / replicas started
  /// (0 for kernel benchmarks, which have no scheduler). Deterministic for a
  /// given config+seed, unlike the wall-clock fields.
  double machines_per_dispatch = 0;
  /// Checkpoint-server recovery counters (FaultStats); zero everywhere except
  /// the chaos benchmarks, which run with an unreliable server. Deterministic
  /// for a given config+seed.
  std::uint64_t transfer_retries = 0;
  std::uint64_t replicas_degraded = 0;
  /// Replication-throughput suite (bench/replication_throughput.cpp) only;
  /// zero elsewhere. Completed simulation replications per wall-clock second
  /// at `threads` pool workers, and global operator-new calls per
  /// steady-state replication (warmed workspaces; ~0 on the workspace path).
  double replications_per_sec = 0;
  std::uint64_t threads = 0;
  double allocs_per_replication = 0;
  /// Sharded-runner records (exp/shard.hpp) only; zero elsewhere. Worker
  /// processes the campaign was sharded across.
  std::uint64_t procs = 0;
  /// World-realization cache suite (bench/world_cache_throughput.cpp) only;
  /// zero elsewhere. Fraction of world acquisitions served from a resident
  /// realization (grid::WorldCacheStats::hit_rate()).
  double cache_hit_rate = 0;
  /// Sharded-runner records only; zero elsewhere. Fraction of world
  /// acquisitions served from the mmap-shared pool, i.e. synthesized by a
  /// sibling process (grid::WorldCacheStats::pool_hit_rate(), aggregated
  /// across workers).
  double pool_hit_rate = 0;
  /// Execution-shape accounting (exp::ExecutionStats) for the runner suites;
  /// zero elsewhere. Summed across lanes (pool workers / worker processes):
  /// busy is time executing replications, stall is time waiting for
  /// launchable work — the straggler/barrier penalty the pipelined hand-out
  /// removes. Wall-clock derived, so not deterministic.
  double worker_busy_s = 0;
  double worker_stall_s = 0;
  /// Speculation economics of the pipelined scheduler (deterministic for a
  /// given config): replications launched beyond commits, summaries folded,
  /// and speculative summaries discarded at a precision stop.
  std::uint64_t spec_launched = 0;
  std::uint64_t spec_committed = 0;
  std::uint64_t spec_discarded = 0;
  /// Tail quantiles of the simulated metrics (docs/METRICS.md), pooled over
  /// the benchmark's replications via the merged exp::CellResult sketches.
  /// Deterministic for a given config+seed, unlike the wall-clock fields;
  /// zero for kernel benchmarks, which simulate no bags.
  double turnaround_p50 = 0;  ///< Median bag turnaround (seconds).
  double turnaround_p95 = 0;  ///< 95th-percentile bag turnaround (seconds).
  double turnaround_p99 = 0;  ///< 99th-percentile bag turnaround (seconds).
  double slowdown_p95 = 0;    ///< 95th-percentile bag slowdown (unitless).
  double slowdown_p99 = 0;    ///< 99th-percentile bag slowdown (unitless).
};

/// Peak resident set size of this process in kilobytes (0 when unavailable).
inline std::uint64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // kilobytes on Linux
#endif
#else
  return 0;
#endif
}

/// Monotonic wall-clock stopwatch for benchmark loops.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

namespace detail {
inline void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}
}  // namespace detail

/// Writes `records` as a JSON array (pretty-printed, one record per object).
/// Numeric fields holding their zero default are omitted (see PerfRecord).
inline void write_perf_json(std::ostream& os, const std::vector<PerfRecord>& records) {
  const auto field = [&os](const char* name, auto value) {
    if (value == 0) return;
    os << ",\n    \"" << name << "\": " << value;
  };
  os << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const PerfRecord& r = records[i];
    os << "  {\n    \"benchmark\": ";
    detail::write_json_string(os, r.benchmark);
    field("events_per_sec", r.events_per_sec);
    os << ",\n    \"wall_s\": " << r.wall_s;
    field("peak_rss_kb", r.peak_rss_kb);
    os << ",\n    \"config\": ";
    detail::write_json_string(os, r.config);
    field("seed", r.seed);
    field("machines_per_dispatch", r.machines_per_dispatch);
    field("transfer_retries", r.transfer_retries);
    field("replicas_degraded", r.replicas_degraded);
    field("replications_per_sec", r.replications_per_sec);
    field("threads", r.threads);
    field("allocs_per_replication", r.allocs_per_replication);
    field("procs", r.procs);
    field("cache_hit_rate", r.cache_hit_rate);
    field("pool_hit_rate", r.pool_hit_rate);
    field("worker_busy_s", r.worker_busy_s);
    field("worker_stall_s", r.worker_stall_s);
    field("spec_launched", r.spec_launched);
    field("spec_committed", r.spec_committed);
    field("spec_discarded", r.spec_discarded);
    if (r.turnaround_p50 != 0 || r.turnaround_p95 != 0 || r.turnaround_p99 != 0 ||
        r.slowdown_p95 != 0 || r.slowdown_p99 != 0) {
      os << ",\n    \"tails\": {";
      bool first = true;
      const auto tail_field = [&os, &first](const char* name, double value) {
        if (value == 0) return;
        os << (first ? "" : ",") << "\n      \"" << name << "\": " << value;
        first = false;
      };
      tail_field("turnaround_p50", r.turnaround_p50);
      tail_field("turnaround_p95", r.turnaround_p95);
      tail_field("turnaround_p99", r.turnaround_p99);
      tail_field("slowdown_p95", r.slowdown_p95);
      tail_field("slowdown_p99", r.slowdown_p99);
      os << "\n    }";
    }
    os << "\n  }" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  os << "]\n";
}

}  // namespace dg::bench
