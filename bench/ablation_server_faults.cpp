// Ablation: checkpoint-server availability.
//
// The paper's checkpoint server never fails; WQR-FT's fault tolerance is
// therefore only ever exercised against *machine* volatility. This ablation
// injects server outages (exponential MTBF/MTTR, transfers aborted on a
// crash) and sweeps the implied long-run server availability for every
// multi-BoT policy, measuring how gracefully turnaround degrades when the
// checkpoint/restart infrastructure itself is flaky. The repair time is held
// at one hour and the failure rate derived from the target availability:
// MTBF = a / (1 - a) * MTTR.
#include <iostream>

#include "exp/runner.hpp"
#include "util/table.hpp"

int main() {
  using namespace dg;
  exp::RunOptions options = exp::RunOptions::from_env();
  const std::size_t num_bots = exp::env_num_bots().value_or(40);

  const double availabilities[] = {1.0, 0.95, 0.85, 0.70};
  const sched::PolicyKind policies[] = {
      sched::PolicyKind::kFcfsExcl,         sched::PolicyKind::kFcfsShare,
      sched::PolicyKind::kRoundRobin,       sched::PolicyKind::kRoundRobinNrf,
      sched::PolicyKind::kLongIdle,         sched::PolicyKind::kRandom,
      sched::PolicyKind::kShortestBagFirst, sched::PolicyKind::kPendingFirst};
  constexpr double kMttr = 3600.0;

  std::cout << "=== Ablation: checkpoint-server availability (Hom-LowAvail, WQR-FT) ===\n"
            << "a = 1.0 is the paper's perfectly-reliable server; lower availability\n"
            << "aborts in-flight transfers and forces retry/backoff or degradation.\n\n";

  std::vector<exp::NamedConfig> cells;
  for (double availability : availabilities) {
    for (sched::PolicyKind policy : policies) {
      sim::SimulationConfig config;
      config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHom,
                                             grid::AvailabilityLevel::kLow);
      if (availability < 1.0) {
        config.grid.checkpoint_server_faults.enabled = true;
        config.grid.checkpoint_server_faults.mttr = kMttr;
        config.grid.checkpoint_server_faults.mtbf =
            availability / (1.0 - availability) * kMttr;
      }
      config.workload = sim::make_paper_workload(config.grid, 25000.0,
                                                 workload::Intensity::kLow, num_bots);
      config.policy = policy;
      config.warmup_bots = num_bots / 10;
      cells.push_back({"a=" + util::format_double(availability, 2) + "/" +
                           sched::to_string(policy),
                       config});
    }
  }

  exp::ExperimentRunner runner(options);
  const auto results = runner.run(cells);

  util::Table table({"server avail", "policy", "mean turnaround [s]", "95% CI +-",
                     "p95 [s]", "p99 [s]", "retries/run", "degraded/run", "saturated"});
  std::size_t index = 0;
  for (double availability : availabilities) {
    for (sched::PolicyKind policy : policies) {
      const exp::CellResult& cell = results[index++];
      const auto ci = cell.turnaround_ci();
      table.add_row({util::format_double(availability, 2), sched::to_string(policy),
                     util::format_double(ci.mean, 0), util::format_double(ci.half_width, 0),
                     util::format_double(cell.turnaround_tail.quantile(0.95), 0),
                     util::format_double(cell.turnaround_tail.quantile(0.99), 0),
                     util::format_double(cell.transfer_retries.mean(), 1),
                     util::format_double(cell.replicas_degraded.mean(), 1),
                     cell.saturated() ? "yes" : "no"});
    }
  }
  table.render(std::cout);
  return 0;
}
