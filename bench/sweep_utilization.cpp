// Utilization sweep: turnaround vs offered load.
//
// The paper samples three intensities (50/75/90%); this sweep traces the
// whole load-response curve at a fixed granularity, locating each policy's
// saturation knee and reporting the fairness of the resulting slowdowns
// (Jain's index — FCFS-ordered service trades fairness for mean turnaround).
#include <iostream>

#include "exp/runner.hpp"
#include "rng/splitmix64.hpp"
#include "sim/simulation.hpp"
#include "stats/online_stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace dg;
  const exp::RunOptions options = exp::RunOptions::from_env();
  const std::size_t num_bots = exp::env_num_bots().value_or(80);
  const std::size_t reps = options.min_replications;

  const grid::GridConfig grid_config =
      grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kHigh);
  const double granularity = 5000.0;
  const double utilizations[] = {0.3, 0.5, 0.7, 0.8, 0.9, 0.95};
  const sched::PolicyKind policies[] = {sched::PolicyKind::kFcfsShare,
                                        sched::PolicyKind::kRoundRobin,
                                        sched::PolicyKind::kLongIdle};

  std::cout << "=== Utilization sweep (Hom-HighAvail, 5000 s tasks) ===\n"
            << "Mean turnaround and Jain fairness of slowdowns vs offered load.\n\n";

  util::Table table({"target U", "policy", "mean turnaround [s]", "mean slowdown",
                     "Jain fairness", "queue growth", "saturated"});
  const double effective_power = workload::effective_grid_power(grid_config);
  for (double utilization : utilizations) {
    for (sched::PolicyKind policy : policies) {
      stats::OnlineStats turnaround, slowdown, fairness, growth;
      bool saturated = false;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        sim::SimulationConfig config;
        config.grid = grid_config;
        config.workload.types = {workload::BotType{granularity, 0.5}};
        config.workload.bag_size = 2.5e6;
        config.workload.num_bots = num_bots;
        config.workload.arrival_rate = workload::arrival_rate_for_utilization(
            utilization, config.workload.bag_size, effective_power);
        config.policy = policy;
        config.warmup_bots = num_bots / 10;
        config.seed = rng::mix_seed(options.base_seed, rep);
        const sim::SimulationResult result = sim::Simulation(config).run();
        turnaround.add(result.turnaround.mean());
        slowdown.add(result.slowdown.mean());
        fairness.add(result.slowdown_fairness());
        growth.add(result.queue_growth_ratio);
        saturated |= result.saturated;
      }
      table.add_row({util::format_double(utilization, 2), sched::to_string(policy),
                     util::format_double(turnaround.mean(), 0),
                     util::format_double(slowdown.mean(), 1),
                     util::format_double(fairness.mean(), 3),
                     util::format_double(growth.mean(), 2), saturated ? "yes" : "no"});
    }
  }
  table.render(std::cout);
  return 0;
}
