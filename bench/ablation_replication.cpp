// Ablation: static replication threshold R in {1, 2, 3, 4}.
//
// The paper fixes WQR-FT's threshold at 2, citing [3]: higher values bring
// "negligible performance benefits at the price of much higher overhead".
// This bench sweeps R on the heterogeneous low-availability grid (where
// replication matters most) and reports turnaround alongside the wasted
// compute fraction, regenerating the basis for that choice.
#include <iostream>

#include "exp/runner.hpp"
#include "util/table.hpp"

int main() {
  using namespace dg;
  exp::RunOptions options = exp::RunOptions::from_env();
  std::size_t num_bots = exp::env_num_bots().value_or(60);

  const grid::GridConfig grid_config =
      grid::GridConfig::preset(grid::Heterogeneity::kHet, grid::AvailabilityLevel::kLow);
  const double granularities[] = {5000.0, 25000.0};
  const int thresholds[] = {1, 2, 3, 4};

  std::vector<exp::NamedConfig> cells;
  for (double granularity : granularities) {
    for (int threshold : thresholds) {
      sim::SimulationConfig config;
      config.grid = grid_config;
      config.workload = sim::make_paper_workload(grid_config, granularity,
                                                 workload::Intensity::kLow, num_bots);
      config.policy = sched::PolicyKind::kRoundRobin;
      config.replication_threshold = threshold;
      config.warmup_bots = num_bots / 10;
      cells.push_back({"g=" + util::format_double(granularity, 0) +
                           "/R=" + std::to_string(threshold),
                       config});
    }
  }

  std::cout << "=== Ablation: WQR-FT replication threshold (Het-LowAvail, RR, low"
               " intensity) ===\n"
            << "The paper's choice R=2 should dominate R=1 and be within noise of"
               " R=3/4\nwhile wasting fewer cycles.\n\n";
  exp::ExperimentRunner runner(options);
  const auto results = runner.run(cells);

  util::Table table({"granularity [s]", "R", "mean turnaround [s]", "95% CI +-",
                     "wasted compute", "utilization"});
  std::size_t index = 0;
  for (double granularity : granularities) {
    for (int threshold : thresholds) {
      const exp::CellResult& cell = results[index++];
      const auto ci = cell.turnaround_ci();
      table.add_row({util::format_double(granularity, 0), std::to_string(threshold),
                     util::format_double(ci.mean, 0), util::format_double(ci.half_width, 0),
                     util::format_double(100.0 * cell.wasted_fraction.mean(), 1) + "%",
                     util::format_double(cell.utilization.mean(), 3)});
    }
  }
  table.render(std::cout);
  return 0;
}
