// World-realization cache suite: emits BENCH_world_cache.json.
//
// Measures what the shared world cache (grid/world_cache.hpp) buys the
// experiment runner, at three levels:
//
//   world_cache/fig1/{off,on}   — the Figure 1 policy sweep (scaled via
//       DGSCHED_BOTS), fixed replications, cache disabled vs enabled. Every
//       cell re-runs the same replication seeds, so with the cache on each
//       seed's world is synthesized once and replayed in every policy cell.
//       High availability means few availability events, so the expected win
//       here is modest — the honest end-to-end number.
//   world_cache/low_avail/{off,on} — the same sweep shape on the Figure 2
//       grid (~50% availability): machine churn dominates the event count,
//       so this is where record-once/replay-many actually pays.
//   world_cache/availability/{live,replay} — the isolated substrate cost:
//       driving a grid's availability timeline live (Weibull + truncated
//       normal sampling per transition) vs replaying one synthesized
//       realization, with no workload on top. The replay/live ratio bounds
//       what the cache can ever save end to end.
//
// Cache-on records carry cache_hit_rate (and all records peak_rss_kb), per
// the bench/perf_json.hpp schema.
//
// Usage: ./world_cache_throughput [output_dir]   # default: cwd
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "exp/paper.hpp"
#include "exp/runner.hpp"
#include "grid/desktop_grid.hpp"
#include "grid/realization.hpp"
#include "grid/world_cache.hpp"
#include "sim/simulation.hpp"

#include "perf_json.hpp"

namespace {

using dg::bench::PerfRecord;
using dg::bench::Stopwatch;

std::vector<dg::exp::NamedConfig> bench_cells(const dg::exp::FigureSpec& base) {
  dg::exp::FigureSpec spec = base;
  spec.num_bots = dg::exp::env_num_bots().value_or(8);
  spec.warmup_bots = std::min<std::size_t>(spec.warmup_bots, spec.num_bots / 4);
  return dg::exp::figure_cells(spec);
}

/// One fixed-replication runner sweep; cache on when budget > 0.
PerfRecord timed_sweep(const std::string& name, const std::vector<dg::exp::NamedConfig>& cells,
                       std::size_t threads, std::size_t reps, std::size_t cache_bytes) {
  dg::exp::RunOptions options;
  options.min_replications = reps;
  options.max_replications = reps;
  options.threads = threads;
  options.world_cache_bytes = cache_bytes;

  dg::exp::ExperimentRunner runner(options);
  Stopwatch timer;
  const auto results = runner.run(cells);
  const double wall = timer.seconds();

  std::size_t replications = 0;
  std::uint64_t events = 0;
  for (const dg::exp::CellResult& cell : results) {
    replications += cell.replications;
    events += cell.events_executed;
  }

  PerfRecord record;
  record.benchmark = name;
  record.config = "cells x" + std::to_string(cells.size()) + ", bots=" +
                  std::to_string(cells.front().config.workload.num_bots) + ", reps=" +
                  std::to_string(reps) + ", cache=" + std::to_string(cache_bytes);
  record.threads = threads;
  record.wall_s = wall;
  record.replications_per_sec =
      wall > 0.0 ? static_cast<double>(replications) / wall : 0.0;
  record.events_per_sec = wall > 0.0 ? static_cast<double>(events) / wall : 0.0;
  if (runner.world_cache() != nullptr) {
    record.cache_hit_rate = runner.world_cache()->stats().hit_rate();
  }
  record.peak_rss_kb = dg::bench::peak_rss_kb();
  std::printf("  %-34s %2zu thr  %8.1f reps/s  %12.0f events/s  hit %.2f  (%.2f s)\n",
              record.benchmark.c_str(), threads, record.replications_per_sec,
              record.events_per_sec, record.cache_hit_rate, wall);
  return record;
}

/// Isolated availability substrate: live process sampling vs realization
/// replay of the same timelines (no workload, no scheduler). `reps`
/// repetitions of a `horizon`-second Low-availability grid.
std::vector<PerfRecord> availability_microbench(std::size_t reps, double horizon) {
  const dg::grid::GridConfig config =
      dg::grid::GridConfig::preset(dg::grid::Heterogeneity::kHom,
                                   dg::grid::AvailabilityLevel::kLow);
  constexpr std::uint64_t kSeed = 99;
  std::uint64_t transitions = 0;

  Stopwatch live_timer;
  for (std::size_t r = 0; r < reps; ++r) {
    dg::des::Simulator sim;
    dg::grid::DesktopGrid grid(config, sim, kSeed);
    grid.start(nullptr, nullptr);
    sim.run_until(horizon);
    transitions += sim.stats().events_fired;
  }
  const double live_wall = live_timer.seconds();

  Stopwatch replay_timer;
  std::uint64_t replay_transitions = 0;
  {
    // Synthesized ONCE, replayed `reps` times — the cache's steady state.
    dg::des::Simulator sim;
    dg::grid::DesktopGrid probe(config, sim, kSeed);
    const dg::grid::WorldRealization world = dg::grid::WorldRealization::synthesize(
        config.availability, config.checkpoint_server_faults, config.outages, probe.size(),
        horizon, kSeed);
    dg::grid::ReplayCursors cursors;
    for (std::size_t r = 0; r < reps; ++r) {
      dg::des::Simulator replay_sim;
      dg::grid::DesktopGrid grid(config, replay_sim, kSeed);
      dg::grid::RealizedAvailabilityDriver driver(replay_sim, grid, world, cursors);
      driver.start(nullptr, nullptr);
      grid.start_outages(nullptr, nullptr);
      replay_sim.run_until(horizon);
      replay_transitions += replay_sim.stats().events_fired;
    }
  }
  const double replay_wall = replay_timer.seconds();
  if (transitions != replay_transitions) {
    std::fprintf(stderr, "FATAL: live fired %llu transitions, replay %llu — not bit-identical\n",
                 static_cast<unsigned long long>(transitions),
                 static_cast<unsigned long long>(replay_transitions));
    std::exit(1);
  }

  const auto make_record = [&](const char* name, double wall) {
    PerfRecord record;
    record.benchmark = name;
    record.config = "HomLow grid, horizon=" + std::to_string(horizon) + "s, reps=" +
                    std::to_string(reps) + " (identical timelines)";
    record.seed = kSeed;
    record.wall_s = wall;
    record.replications_per_sec = wall > 0.0 ? static_cast<double>(reps) / wall : 0.0;
    record.events_per_sec =
        wall > 0.0 ? static_cast<double>(transitions) / wall : 0.0;
    record.peak_rss_kb = dg::bench::peak_rss_kb();
    std::printf("  %-34s         %8.1f reps/s  %12.0f events/s  (%.2f s)\n",
                record.benchmark.c_str(), record.replications_per_sec, record.events_per_sec,
                wall);
    return record;
  };
  return {make_record("world_cache/availability/live", live_wall),
          make_record("world_cache/availability/replay", replay_wall)};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const std::size_t reps = 3;
  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t env_threads = dg::exp::RunOptions::from_env().threads;
  const std::size_t threads = env_threads != 0 ? env_threads : hw;

  std::vector<PerfRecord> records;

  const std::vector<dg::exp::NamedConfig> fig1 = bench_cells(dg::exp::figure1_spec());
  std::cout << "fig1 sweep (" << fig1.size() << " cells, " << reps << " reps, " << threads
            << " threads):\n";
  records.push_back(timed_sweep("world_cache/fig1/off", fig1, threads, reps, 0));
  records.push_back(timed_sweep("world_cache/fig1/on", fig1, threads, reps,
                                dg::grid::WorldCache::kDefaultBudgetBytes));

  const std::vector<dg::exp::NamedConfig> low = bench_cells(dg::exp::figure2_spec());
  std::cout << "low-availability sweep (" << low.size() << " cells):\n";
  records.push_back(timed_sweep("world_cache/low_avail/off", low, threads, reps, 0));
  records.push_back(timed_sweep("world_cache/low_avail/on", low, threads, reps,
                                dg::grid::WorldCache::kDefaultBudgetBytes));

  std::cout << "availability substrate (live sampling vs realization replay):\n";
  for (PerfRecord& record : availability_microbench(20, 2e6)) {
    records.push_back(std::move(record));
  }

  const std::string path = out_dir + "/BENCH_world_cache.json";
  std::ofstream os(path);
  dg::bench::write_perf_json(os, records);
  std::cout << "wrote " << path << "\n";
  return 0;
}
