// Shared driver for the figure-reproduction benches: applies env overrides,
// runs the figure's cell matrix in parallel, prints the panel tables, and
// writes a CSV next to the binary's working directory.
#pragma once

#include <fstream>
#include <iostream>
#include <string>

#include "exp/paper.hpp"
#include "exp/runner.hpp"

namespace dg::bench {

inline int run_figure_main(exp::FigureSpec spec, const std::string& csv_name) {
  exp::RunOptions options = exp::RunOptions::from_env();
  if (auto bots = exp::env_num_bots()) spec.num_bots = *bots;

  std::cout << "dgsched figure reproduction\n"
            << "  bags/cell: " << spec.num_bots << " (warmup " << spec.warmup_bots << ")"
            << ", replications: " << options.min_replications << ".."
            << options.max_replications << ", CI target: "
            << options.target_relative_error * 100.0 << "%\n"
            << "  (env: DGSCHED_BOTS, DGSCHED_MIN_REPS, DGSCHED_MAX_REPS, DGSCHED_TRE,"
            << " DGSCHED_THREADS, DGSCHED_SEED, DGSCHED_WORLD_CACHE;"
            << " paper fidelity: DGSCHED_TRE=0.025)\n\n";

  std::ofstream csv(csv_name);
  exp::run_figure(spec, options, std::cout, csv ? &csv : nullptr);
  if (csv) std::cout << "CSV written to " << csv_name << "\n";
  return 0;
}

}  // namespace dg::bench
