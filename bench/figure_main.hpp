// Shared driver for the figure-reproduction benches (fig1_high_avail,
// fig2_low_avail, unreported_configs): applies env overrides, builds the
// figure's cell matrix, runs it through one ExperimentRunner — so runner
// features like multi-cell replay and the shared world cache land in every
// figure binary at once — prints the panel tables plus runner/cache
// statistics, and writes a CSV next to the binary's working directory.
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "exp/paper.hpp"
#include "exp/runner.hpp"

namespace dg::bench {

inline int run_figure_main(exp::FigureSpec spec, const std::string& csv_name) {
  exp::RunOptions options = exp::RunOptions::from_env();
  if (auto bots = exp::env_num_bots()) spec.num_bots = *bots;

  // Banner and cache statistics go to stderr: they describe the run shape
  // (cache budget, hand-out mode), which legitimately differs between runs
  // whose *results* are bit-identical — and the CI world-cache job diffs
  // captured stdout across exactly such runs.
  const des::QueueBackend backend =
      options.queue_backend.value_or(des::default_queue_backend());
  std::cerr << "dgsched figure reproduction\n"
            << "  bags/cell: " << spec.num_bots << " (warmup " << spec.warmup_bots << ")"
            << ", replications: " << options.min_replications << ".."
            << options.max_replications << ", CI target: "
            << options.target_relative_error * 100.0 << "%\n"
            << "  runner: queue=" << des::to_string(backend)
            << ", pipeline=" << (options.pipeline ? "on" : "off")
            << ", speculate=" << options.speculate
            << ", multi_cell_replay=" << (options.multi_cell_replay ? "on" : "off")
            << ", workspaces=" << (options.reuse_workspaces ? "on" : "off")
            << ", batch=" << options.batch_size << " (0=auto)"
            << ", world_cache=" << (options.world_cache_bytes >> 20) << " MiB\n"
            << "  (env: DGSCHED_BOTS, DGSCHED_MIN_REPS, DGSCHED_MAX_REPS, DGSCHED_TRE,"
            << " DGSCHED_THREADS, DGSCHED_SEED, DGSCHED_WORKSPACES, DGSCHED_BATCH,"
            << " DGSCHED_WORLD_CACHE, DGSCHED_MULTI_CELL, DGSCHED_QUEUE,"
            << " DGSCHED_PIPELINE, DGSCHED_SPECULATE;"
            << " paper fidelity: DGSCHED_TRE=0.025)\n\n";

  exp::ExperimentRunner runner(options);
  const std::vector<exp::CellResult> results = runner.run(exp::figure_cells(spec));

  std::ofstream csv(csv_name);
  exp::render_figure(spec, results, std::cout, csv ? &csv : nullptr);
  if (csv) std::cout << "CSV written to " << csv_name << "\n";

  if (const auto& cache = runner.world_cache()) {
    const grid::WorldCacheStats stats = cache->stats();
    std::fprintf(
        stderr,
        "world cache: %.1f%% hit rate (%llu hits, %llu misses, %llu extensions, "
        "%llu evictions), %zu entries / %.1f MiB resident (peak %.1f MiB)\n",
        stats.hit_rate() * 100.0, static_cast<unsigned long long>(stats.hits),
        static_cast<unsigned long long>(stats.misses),
        static_cast<unsigned long long>(stats.extensions),
        static_cast<unsigned long long>(stats.evictions), stats.entries,
        static_cast<double>(stats.bytes) / (1024.0 * 1024.0),
        static_cast<double>(stats.peak_bytes) / (1024.0 * 1024.0));
  }
  return 0;
}

}  // namespace dg::bench
