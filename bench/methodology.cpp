// Methodology ablation: independent replications vs single-run batch means.
//
// Same scheduling question answered two ways: (a) the paper's method —
// independent replications until the 95% CI is tight; (b) one long run with
// MSER-5 warmup deletion and batch-means CIs. Both should land on the same
// mean; the table reports the estimates, their CIs, and the total number of
// simulated bags each method consumed.
#include <iostream>

#include "exp/runner.hpp"
#include "exp/steady_state.hpp"
#include "util/table.hpp"

int main() {
  using namespace dg;
  exp::RunOptions options = exp::RunOptions::from_env();
  options.max_replications = std::max<std::size_t>(options.max_replications, 8);
  const std::size_t num_bots = exp::env_num_bots().value_or(80);

  std::cout << "=== Methodology: independent replications vs batch means ===\n\n";

  util::Table table({"policy", "method", "mean turnaround [s]", "95% CI +-", "bags simulated",
                     "notes"});
  for (sched::PolicyKind policy :
       {sched::PolicyKind::kFcfsShare, sched::PolicyKind::kRoundRobin}) {
    sim::SimulationConfig config;
    config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHom,
                                           grid::AvailabilityLevel::kHigh);
    config.workload = sim::make_paper_workload(config.grid, 5000.0,
                                               workload::Intensity::kLow, num_bots);
    config.policy = policy;
    config.warmup_bots = num_bots / 10;

    // (a) independent replications.
    exp::ExperimentRunner runner(options);
    const auto cells = runner.run({{sched::to_string(policy), config}});
    const exp::CellResult& cell = cells.front();
    const auto ci = cell.turnaround_ci();
    table.add_row({sched::to_string(policy), "replications", util::format_double(ci.mean, 0),
                   util::format_double(ci.half_width, 0),
                   std::to_string(cell.replications * num_bots),
                   std::to_string(cell.replications) + " reps x " +
                       std::to_string(num_bots) + " bags"});

    // (b) one long run, batch means.
    exp::SteadyStateOptions ss_options;
    ss_options.num_bots = cell.replications * num_bots;  // equal budget
    ss_options.batch_size = 10;
    const exp::SteadyStateResult ss = exp::run_steady_state(config, ss_options);
    table.add_row({sched::to_string(policy), "batch means",
                   util::format_double(ss.turnaround.mean, 0),
                   util::format_double(ss.turnaround.half_width, 0),
                   std::to_string(ss_options.num_bots),
                   "MSER cut " + std::to_string(ss.truncated_bots) + ", " +
                       std::to_string(ss.batches) + " batches of " +
                       std::to_string(ss.final_batch_size) + ", lag1 " +
                       util::format_double(ss.lag1_autocorrelation, 2)});
  }
  table.render(std::cout);
  return 0;
}
