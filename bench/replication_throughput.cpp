// Replication-throughput suite: emits BENCH_replications.json.
//
// Measures what the per-worker SimulationWorkspace path buys the experiment
// runner: completed replications per wall-clock second over the Figure 1
// cell matrix (scaled down via DGSCHED_BOTS), swept across pool thread
// counts from 1 to hardware concurrency, for both runner paths —
//
//   baseline:  reuse_workspaces = false (historical fresh construction
//              of arena/grid/bags every replication), and
//   workspace: reuse_workspaces = true (per-worker reusable workspaces,
//              batched job hand-out).
//
// It also meters global operator-new calls per replication (this binary
// installs the allocation interposer), both across each full sweep and for
// steady-state single-workspace replications after warmup — the latter is
// the "allocations/replication ~= 0" contract asserted by
// tests/test_alloc_free.cpp. Results use the bench/perf_json.hpp schema
// (replications_per_sec / threads / allocs_per_replication fields).
//
// Usage: ./replication_throughput [output_dir]   # default: cwd
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "exp/paper.hpp"
#include "exp/runner.hpp"
#include "exp/shard.hpp"
#include "sim/simulation.hpp"
#include "sim/workspace.hpp"
#include "util/alloc_interposer.hpp"

#include "perf_json.hpp"

DG_DEFINE_ALLOC_INTERPOSER();

namespace {

using dg::bench::PerfRecord;
using dg::bench::Stopwatch;

std::uint64_t allocs_now() {
  return dg::util::alloc_count().load(std::memory_order_relaxed);
}

/// Scaled-down Figure 1 cell matrix: the real policy x granularity x panel
/// grid, fewer bags per cell so a sweep finishes in seconds.
std::vector<dg::exp::NamedConfig> bench_cells() {
  dg::exp::FigureSpec spec = dg::exp::figure1_spec();
  spec.num_bots = dg::exp::env_num_bots().value_or(8);
  spec.warmup_bots = std::min<std::size_t>(spec.warmup_bots, spec.num_bots / 4);
  return dg::exp::figure_cells(spec);
}

void fill_exec_stats(PerfRecord& record, const dg::exp::ExecutionStats& stats) {
  record.worker_busy_s = stats.busy_s();
  record.worker_stall_s = stats.stall_s();
  record.spec_launched = stats.launched;
  record.spec_committed = stats.committed;
  record.spec_discarded = stats.discarded;
}

/// One timed runner sweep: fixed replication count per cell (no CI loop, so
/// every path does identical work), returns (replications/s, allocs/rep).
/// `name` distinguishes the hand-out shape in the record:
///   baseline   fresh construction, cost-major hand-out
///   workspace  reusable workspaces, cost-major hand-out
///   multicell  reusable workspaces, replication-major hand-out (each worker
///              replays one realized world across every policy cell; PR 7)
PerfRecord timed_sweep(const std::vector<dg::exp::NamedConfig>& cells, std::size_t threads,
                       std::size_t reps, bool reuse_workspaces, bool multi_cell,
                       const char* name) {
  dg::exp::RunOptions options;
  options.min_replications = reps;
  options.max_replications = reps;
  options.threads = threads;
  options.reuse_workspaces = reuse_workspaces;
  options.multi_cell_replay = multi_cell;

  const std::uint64_t allocs_before = allocs_now();
  Stopwatch timer;
  dg::exp::ExperimentRunner runner(options);
  const auto results = runner.run(cells);
  const double wall = timer.seconds();
  const std::uint64_t allocs = allocs_now() - allocs_before;

  std::size_t replications = 0;
  std::uint64_t events = 0;
  for (const dg::exp::CellResult& cell : results) {
    replications += cell.replications;
    events += cell.events_executed;
  }

  PerfRecord record;
  record.benchmark = std::string("replication/throughput/") + name;
  record.config = "fig1 cells x" + std::to_string(cells.size()) + ", bots=" +
                  std::to_string(cells.front().config.workload.num_bots) + ", reps=" +
                  std::to_string(reps);
  record.threads = threads;
  record.wall_s = wall;
  record.replications_per_sec =
      wall > 0.0 ? static_cast<double>(replications) / wall : 0.0;
  record.events_per_sec = wall > 0.0 ? static_cast<double>(events) / wall : 0.0;
  record.allocs_per_replication =
      replications > 0 ? static_cast<double>(allocs) / static_cast<double>(replications) : 0.0;
  record.peak_rss_kb = dg::bench::peak_rss_kb();
  fill_exec_stats(record, runner.exec_stats());
  std::printf("  %-34s %2zu thr  %8.1f reps/s  %10.1f allocs/rep  (%.2f s)\n",
              record.benchmark.c_str(), threads, record.replications_per_sec,
              record.allocs_per_replication, wall);
  return record;
}

/// The multi-round precision loop (min 2, max 4, unreachable CI target, so
/// every cell runs to the cap and the barrier scheduler takes three rounds):
/// the shape where barrier-synchronized hand-out pays its straggler tax and
/// the pipelined scheduler doesn't. Threaded when `procs` == 0, sharded
/// (each worker single-threaded) otherwise; results are bit-identical across
/// all four combinations — only the wall clock moves.
PerfRecord timed_rounds(const std::vector<dg::exp::NamedConfig>& cells, std::size_t threads,
                        std::size_t procs, bool pipeline, const std::string& out_dir) {
  dg::exp::RunOptions options;
  options.min_replications = 2;
  options.max_replications = 4;
  options.target_relative_error = 1e-9;  // unreachable: identical work per shape
  options.threads = procs == 0 ? threads : 1;
  options.pipeline = pipeline;

  std::size_t replications = 0;
  std::uint64_t events = 0;
  PerfRecord record;
  Stopwatch timer;
  if (procs == 0) {
    dg::exp::ExperimentRunner runner(options);
    const auto results = runner.run(cells);
    record.wall_s = timer.seconds();
    for (const dg::exp::CellResult& cell : results) {
      replications += cell.replications;
      events += cell.events_executed;
    }
    fill_exec_stats(record, runner.exec_stats());
    record.benchmark = std::string("replication/rounds/") + (pipeline ? "pipelined" : "barrier");
    record.threads = threads;
  } else {
    dg::exp::ShardOptions shard;
    shard.procs = procs;
    shard.pool_dir = out_dir + "/replication_throughput.worldpool";
    std::filesystem::remove_all(shard.pool_dir);
    dg::exp::ShardedRunner runner(options, shard);
    const auto results = runner.run(cells);
    record.wall_s = timer.seconds();
    std::filesystem::remove_all(shard.pool_dir);
    for (const dg::exp::CellResult& cell : results) {
      replications += cell.replications;
      events += cell.events_executed;
    }
    fill_exec_stats(record, runner.exec_stats());
    record.benchmark =
        std::string("replication/campaign/") + (pipeline ? "pipelined" : "barrier");
    record.threads = 1;
    record.procs = procs;
    record.pool_hit_rate = runner.worker_cache_stats().pool_hit_rate();
  }
  record.config = "fig1 cells x" + std::to_string(cells.size()) + ", bots=" +
                  std::to_string(cells.front().config.workload.num_bots) +
                  ", reps=2..4 (uncapped tre)";
  record.replications_per_sec =
      record.wall_s > 0.0 ? static_cast<double>(replications) / record.wall_s : 0.0;
  record.events_per_sec =
      record.wall_s > 0.0 ? static_cast<double>(events) / record.wall_s : 0.0;
  record.peak_rss_kb = dg::bench::peak_rss_kb();
  std::printf("  %-34s %2zu %s  %8.1f reps/s  busy %5.1fs stall %5.1fs  (%.2f s)\n",
              record.benchmark.c_str(), procs == 0 ? threads : procs,
              procs == 0 ? "thr" : "prc", record.replications_per_sec, record.worker_busy_s,
              record.worker_stall_s, record.wall_s);
  return record;
}

/// One timed ShardedRunner sweep at `procs` worker processes (each worker
/// single-threaded), sharing worlds through a fresh mmap pool under
/// `out_dir`. The pool starts cold per sweep point, so pool_hit_rate
/// measures cross-process sharing *within* the run: every world is
/// synthesized by exactly one worker and mapped by the others.
PerfRecord timed_sharded_sweep(const std::vector<dg::exp::NamedConfig>& cells, std::size_t procs,
                               std::size_t reps, const std::string& out_dir) {
  dg::exp::RunOptions options;
  options.min_replications = reps;
  options.max_replications = reps;
  options.threads = 1;
  // Cost-major hand-out: replication-major grouping would hand each world's
  // entire cell set to one worker (a replication group is never split), so no
  // world would ever cross a process boundary and pool_hit_rate would read 0
  // by construction. Results are bit-identical either way.
  options.multi_cell_replay = false;

  dg::exp::ShardOptions shard;
  shard.procs = procs;
  shard.pool_dir = out_dir + "/replication_throughput.worldpool";
  std::filesystem::remove_all(shard.pool_dir);

  Stopwatch timer;
  dg::exp::ShardedRunner runner(options, shard);
  const auto results = runner.run(cells);
  const double wall = timer.seconds();
  std::filesystem::remove_all(shard.pool_dir);

  std::size_t replications = 0;
  std::uint64_t events = 0;
  for (const dg::exp::CellResult& cell : results) {
    replications += cell.replications;
    events += cell.events_executed;
  }
  const dg::grid::WorldCacheStats stats = runner.worker_cache_stats();

  PerfRecord record;
  record.benchmark = "replication/throughput/sharded";
  record.config = "fig1 cells x" + std::to_string(cells.size()) + ", bots=" +
                  std::to_string(cells.front().config.workload.num_bots) + ", reps=" +
                  std::to_string(reps) + ", mmap pool, cost-major";
  record.procs = procs;
  record.threads = 1;
  record.wall_s = wall;
  record.replications_per_sec =
      wall > 0.0 ? static_cast<double>(replications) / wall : 0.0;
  record.events_per_sec = wall > 0.0 ? static_cast<double>(events) / wall : 0.0;
  record.cache_hit_rate = stats.hit_rate();
  record.pool_hit_rate = stats.pool_hit_rate();
  record.peak_rss_kb = dg::bench::peak_rss_kb();
  fill_exec_stats(record, runner.exec_stats());
  std::printf("  %-34s %2zu prc  %8.1f reps/s  pool hits %5.1f%%  (%.2f s)\n",
              record.benchmark.c_str(), procs, record.replications_per_sec,
              100.0 * record.pool_hit_rate, wall);
  return record;
}

/// Steady-state allocations per replication through one warmed workspace
/// (and, for contrast, fresh construction) on a single mid-size cell.
std::vector<PerfRecord> steady_state_allocs() {
  dg::sim::SimulationConfig config;
  config.grid = dg::grid::GridConfig::preset(dg::grid::Heterogeneity::kHom,
                                             dg::grid::AvailabilityLevel::kHigh);
  config.workload = dg::sim::make_paper_workload(config.grid, 25000.0,
                                                 dg::workload::Intensity::kLow, 10);
  config.policy = dg::sched::PolicyKind::kFcfsShare;
  config.seed = 7;
  constexpr int kMeasured = 5;

  std::vector<PerfRecord> records;
  {
    dg::sim::SimulationWorkspace workspace;
    (void)dg::sim::Simulation(config).run(workspace);  // warm
    const std::uint64_t before = allocs_now();
    Stopwatch timer;
    for (int i = 0; i < kMeasured; ++i) (void)dg::sim::Simulation(config).run(workspace);
    PerfRecord record;
    record.benchmark = "replication/steady_allocs/workspace";
    record.config = "HomHigh g=25000 bots=10, warmed, 5 reps";
    record.seed = config.seed;
    record.threads = 1;
    record.wall_s = timer.seconds();
    record.replications_per_sec = kMeasured / record.wall_s;
    record.allocs_per_replication = static_cast<double>(allocs_now() - before) / kMeasured;
    record.peak_rss_kb = dg::bench::peak_rss_kb();
    records.push_back(record);
  }
  {
    const std::uint64_t before = allocs_now();
    Stopwatch timer;
    for (int i = 0; i < kMeasured; ++i) (void)dg::sim::Simulation(config).run();
    PerfRecord record;
    record.benchmark = "replication/steady_allocs/baseline";
    record.config = "HomHigh g=25000 bots=10, fresh construction, 5 reps";
    record.seed = config.seed;
    record.threads = 1;
    record.wall_s = timer.seconds();
    record.replications_per_sec = kMeasured / record.wall_s;
    record.allocs_per_replication = static_cast<double>(allocs_now() - before) / kMeasured;
    record.peak_rss_kb = dg::bench::peak_rss_kb();
    records.push_back(record);
  }
  for (const PerfRecord& record : records) {
    std::printf("  %-34s %10.1f allocs/rep  (%.2f s)\n", record.benchmark.c_str(),
                record.allocs_per_replication, record.wall_s);
  }
  return records;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const std::vector<dg::exp::NamedConfig> cells = bench_cells();
  const std::size_t reps = 3;

  // 1, 2, 4, ... hardware_concurrency (deduplicated, always includes both
  // endpoints). DGSCHED_THREADS overrides the top of the sweep — e.g. the
  // TSan CI job oversubscribes a small runner to force worker interleaving.
  std::vector<std::size_t> thread_counts;
  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t env_threads = dg::exp::RunOptions::from_env().threads;
  const std::size_t top = env_threads != 0 ? env_threads : hw;
  for (std::size_t t = 1; t < top; t *= 2) thread_counts.push_back(t);
  thread_counts.push_back(top);

  std::cout << "replication throughput: " << cells.size() << " fig1 cells, " << reps
            << " reps each, threads 1.." << top << "\n";

  std::vector<PerfRecord> records;
  for (const std::size_t threads : thread_counts) {
    records.push_back(timed_sweep(cells, threads, reps, /*reuse_workspaces=*/false,
                                  /*multi_cell=*/false, "baseline"));
    records.push_back(timed_sweep(cells, threads, reps, /*reuse_workspaces=*/true,
                                  /*multi_cell=*/false, "workspace"));
    records.push_back(timed_sweep(cells, threads, reps, /*reuse_workspaces=*/true,
                                  /*multi_cell=*/true, "multicell"));
  }

  // Process-count axis (PR 9): the same campaign sharded across forked
  // worker processes with an mmap-shared world pool. DGSCHED_PROCS overrides
  // the top of the ladder; the default reaches 4 even on smaller machines so
  // the 4-vs-1 scaling row always exists (oversubscribed on fewer cores).
  std::vector<std::size_t> proc_counts;
  const std::size_t top_procs = dg::exp::ShardOptions::from_env().procs > 1
                                    ? dg::exp::ShardOptions::from_env().procs
                                    : std::max<std::size_t>(4, std::min<std::size_t>(hw, 8));
  for (std::size_t p = 1; p < top_procs; p *= 2) proc_counts.push_back(p);
  proc_counts.push_back(top_procs);
  std::cout << "sharded (multi-process) throughput: procs 1.." << top_procs << "\n";
  for (const std::size_t procs : proc_counts) {
    records.push_back(timed_sharded_sweep(cells, procs, reps, out_dir));
  }

  // Pipelined-vs-barrier axis (PR 10): the multi-round precision loop where
  // the barrier scheduler drains at every round boundary. Threaded at the
  // top thread count, sharded across the process ladder; CI asserts the
  // pipelined 4-process campaign is at least as fast as the barrier one.
  std::cout << "pipelined vs barrier (multi-round precision loop):\n";
  records.push_back(timed_rounds(cells, top, 0, /*pipeline=*/false, out_dir));
  records.push_back(timed_rounds(cells, top, 0, /*pipeline=*/true, out_dir));
  for (const std::size_t procs : proc_counts) {
    records.push_back(timed_rounds(cells, 1, procs, /*pipeline=*/false, out_dir));
    records.push_back(timed_rounds(cells, 1, procs, /*pipeline=*/true, out_dir));
  }

  for (PerfRecord& record : steady_state_allocs()) records.push_back(record);

  const std::string path = out_dir + "/BENCH_replications.json";
  std::ofstream os(path);
  dg::bench::write_perf_json(os, records);
  std::cout << "wrote " << path << "\n";
  return 0;
}
