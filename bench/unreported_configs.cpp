// Regenerates the configurations the paper measured but did not plot
// (medium availability, medium intensity), to check the paper's statement
// that they "do not significantly differ" from the reported ones.
#include "figure_main.hpp"

int main() {
  return dg::bench::run_figure_main(dg::exp::unreported_spec(), "unreported_configs.csv");
}
