// Extension (paper future work, direction 1): workloads mixing BoT types.
//
// The paper evaluates homogeneous-type workloads and leaves "BoTs of
// different types simultaneously submitted" to future work. Here every
// arriving bag draws its granularity uniformly from all four paper types,
// and the five policies are compared on high- and low-availability grids.
// The interesting question: does the granularity-dependent ranking (FCFS at
// small, RR at large) survive when granularities are mixed? We also report
// the mean turnaround split by the bag's own type.
#include <iostream>
#include <map>

#include "exp/runner.hpp"
#include "sim/simulation.hpp"
#include "util/table.hpp"

int main() {
  using namespace dg;
  exp::RunOptions options = exp::RunOptions::from_env();
  const std::size_t num_bots = exp::env_num_bots().value_or(120);

  std::cout << "=== Extension: mixed-granularity workloads (future work 1) ===\n"
            << "Each bag draws its granularity uniformly from {1000, 5000, 25000,"
               " 125000} s.\n\n";

  for (grid::AvailabilityLevel level :
       {grid::AvailabilityLevel::kHigh, grid::AvailabilityLevel::kLow}) {
    const grid::GridConfig grid_config =
        grid::GridConfig::preset(grid::Heterogeneity::kHom, level);

    workload::WorkloadConfig workload_config;
    workload_config.types.clear();
    for (double g : workload::kPaperGranularities) {
      workload_config.types.push_back(workload::BotType{g, 0.5});
    }
    workload_config.bag_size = 2.5e6;
    workload_config.num_bots = num_bots;
    workload_config.arrival_rate = workload::arrival_rate_for_utilization(
        0.5, workload_config.bag_size, workload::effective_grid_power(grid_config));

    util::Table table({"policy", "mean turnaround [s]", "g=1000", "g=5000", "g=25000",
                       "g=125000", "saturated"});
    for (sched::PolicyKind policy : sched::paper_policies()) {
      // Aggregate per-type means across replications by hand (the runner's
      // CellResult only carries the overall mean).
      stats::OnlineStats overall;
      std::map<double, stats::OnlineStats> by_type;
      bool saturated = false;
      for (std::size_t rep = 0; rep < options.min_replications; ++rep) {
        sim::SimulationConfig config;
        config.grid = grid_config;
        config.workload = workload_config;
        config.policy = policy;
        config.seed = rng::mix_seed(options.base_seed, rep);
        config.warmup_bots = num_bots / 10;
        const sim::SimulationResult result = sim::Simulation(config).run();
        saturated |= result.saturated;
        overall.add(result.turnaround.mean());
        std::map<double, stats::OnlineStats> rep_by_type;
        for (std::size_t i = config.warmup_bots; i < result.bots.size(); ++i) {
          rep_by_type[result.bots[i].granularity].add(result.bots[i].turnaround);
        }
        for (const auto& [g, s] : rep_by_type) by_type[g].add(s.mean());
      }
      std::vector<std::string> row{sched::to_string(policy),
                                   util::format_double(overall.mean(), 0)};
      for (double g : workload::kPaperGranularities) {
        row.push_back(util::format_double(by_type[g].mean(), 0));
      }
      row.push_back(saturated ? "yes" : "no");
      table.add_row(std::move(row));
    }
    std::cout << "--- " << grid_config.name() << ", 50% target utilization ---\n";
    table.render(std::cout);
    std::cout << "\n";
  }
  return 0;
}
