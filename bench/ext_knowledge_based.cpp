// Extension (paper future work, direction 2b): knowledge-based individual
// scheduling under the knowledge-free bag-selection policies.
//
// KB-LTF assumes task execution times are known and serves the longest
// remaining tasks of the chosen bag first (shrinking the straggler tail that
// dominates a bag's makespan on heterogeneous machines), while keeping
// WQR-FT's fault tolerance. Compared against knowledge-free WQR-FT on the
// heterogeneous grids where the paper expects knowledge to matter most.
#include <iostream>

#include "exp/runner.hpp"
#include "util/table.hpp"

int main() {
  using namespace dg;
  exp::RunOptions options = exp::RunOptions::from_env();
  const std::size_t num_bots = exp::env_num_bots().value_or(60);

  std::cout << "=== Extension: knowledge-based individual scheduler (future work 2b) ===\n"
            << "KB-LTF = longest-task-first with known execution times, on top of\n"
            << "the same bag-selection policies.\n\n";

  std::vector<exp::NamedConfig> cells;
  const grid::GridConfig grid_config =
      grid::GridConfig::preset(grid::Heterogeneity::kHet, grid::AvailabilityLevel::kMed);
  const double granularities[] = {5000.0, 25000.0, 125000.0};
  const sched::PolicyKind policies[] = {sched::PolicyKind::kFcfsShare,
                                        sched::PolicyKind::kRoundRobin};
  const sched::IndividualSchedulerKind kinds[] = {sched::IndividualSchedulerKind::kWqrFt,
                                                  sched::IndividualSchedulerKind::kKnowledgeBased};
  for (double granularity : granularities) {
    for (sched::PolicyKind policy : policies) {
      for (sched::IndividualSchedulerKind kind : kinds) {
        sim::SimulationConfig config;
        config.grid = grid_config;
        config.workload = sim::make_paper_workload(grid_config, granularity,
                                                   workload::Intensity::kLow, num_bots);
        config.policy = policy;
        config.individual = kind;
        config.warmup_bots = num_bots / 10;
        cells.push_back({"g=" + util::format_double(granularity, 0) + "/" +
                             sched::to_string(policy) + "/" + sched::to_string(kind),
                         config});
      }
    }
  }

  // Part 2: knowledge-based *bag selection* (SJF over remaining work) vs the
  // knowledge-free policies, all on WQR-FT.
  const std::size_t part2_start = cells.size();
  const sched::PolicyKind bag_policies[] = {sched::PolicyKind::kFcfsShare,
                                            sched::PolicyKind::kRoundRobin,
                                            sched::PolicyKind::kLongIdle,
                                            sched::PolicyKind::kShortestBagFirst};
  for (double granularity : granularities) {
    for (sched::PolicyKind policy : bag_policies) {
      sim::SimulationConfig config;
      config.grid = grid_config;
      config.workload = sim::make_paper_workload(grid_config, granularity,
                                                 workload::Intensity::kLow, num_bots);
      config.policy = policy;
      config.warmup_bots = num_bots / 10;
      cells.push_back({"bag/g=" + util::format_double(granularity, 0) + "/" +
                           sched::to_string(policy),
                       config});
    }
  }

  exp::ExperimentRunner runner(options);
  const auto results = runner.run(cells);

  util::Table table({"granularity [s]", "bag policy", "individual", "mean turnaround [s]",
                     "95% CI +-"});
  for (std::size_t i = 0; i < part2_start; ++i) {
    const exp::CellResult& cell = results[i];
    const auto ci = cell.turnaround_ci();
    table.add_row({util::format_double(cell.config.workload.types[0].granularity, 0),
                   sched::to_string(cell.config.policy),
                   sched::to_string(cell.config.individual), util::format_double(ci.mean, 0),
                   util::format_double(ci.half_width, 0)});
  }
  table.render(std::cout);

  std::cout << "\n--- knowledge-based bag selection (SJF over remaining work) vs"
               " knowledge-free, WQR-FT individual ---\n";
  util::Table bag_table({"granularity [s]", "bag policy", "mean turnaround [s]", "95% CI +-"});
  for (std::size_t i = part2_start; i < results.size(); ++i) {
    const exp::CellResult& cell = results[i];
    const auto ci = cell.turnaround_ci();
    bag_table.add_row({util::format_double(cell.config.workload.types[0].granularity, 0),
                       sched::to_string(cell.config.policy), util::format_double(ci.mean, 0),
                       util::format_double(ci.half_width, 0)});
  }
  bag_table.render(std::cout);
  return 0;
}
