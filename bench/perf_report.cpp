// Reproducible perf harness: emits BENCH_kernel.json and BENCH_policies.json.
//
// Unlike the google-benchmark micro suites (micro_des, micro_policies), this
// driver exists to feed the repo's tracked perf trajectory: fixed workloads,
// fixed seeds, machine-readable output (bench/perf_json.hpp schema), so every
// PR can diff events/sec against the previous baseline. Usage:
//
//   ./perf_report [output_dir]        # default: current directory
//
// Wall-clock noise is damped by running each benchmark several times and
// reporting the best run (the one least disturbed by the OS scheduler).
#include <cstdio>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "des/simulator.hpp"
#include "grid/desktop_grid.hpp"
#include "sim/invariant_checker.hpp"
#include "sim/simulation.hpp"

#include "perf_json.hpp"

namespace {

using dg::bench::PerfRecord;
using dg::bench::Stopwatch;

constexpr int kKernelReps = 3;
constexpr int kPolicyReps = 2;
constexpr int kScaleReps = 2;

/// Runs `body` (which returns the number of events processed) `reps` times
/// and records the best events/sec.
PerfRecord best_of(const std::string& name, const std::string& config, std::uint64_t seed,
                   int reps, const std::function<std::uint64_t()>& body) {
  PerfRecord record;
  record.benchmark = name;
  record.config = config;
  record.seed = seed;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch timer;
    const std::uint64_t events = body();
    const double wall = timer.seconds();
    const double rate = wall > 0.0 ? static_cast<double>(events) / wall : 0.0;
    if (rate > record.events_per_sec) {
      record.events_per_sec = rate;
      record.wall_s = wall;
    }
  }
  record.peak_rss_kb = dg::bench::peak_rss_kb();
  std::printf("  %-28s %12.0f events/s  (%.3f s)\n", record.benchmark.c_str(),
              record.events_per_sec, record.wall_s);
  return record;
}

// --- kernel microbenchmarks -------------------------------------------------

std::uint64_t kernel_schedule_run(std::size_t n) {
  dg::des::Simulator sim;
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sim.schedule_at(static_cast<double>((i * 7919) % 100000), [&sum] { ++sum; });
  }
  sim.run();
  return sum;
}

std::uint64_t kernel_event_chain(std::uint64_t n) {
  dg::des::Simulator sim;
  std::uint64_t count = 0;
  std::function<void()> chain = [&] {
    if (++count < n) sim.schedule_after(1.0, chain);
  };
  sim.schedule_after(1.0, chain);
  sim.run();
  return count;
}

std::uint64_t kernel_cancel_heavy(std::size_t n) {
  dg::des::Simulator sim;
  std::vector<dg::des::EventHandle> handles;
  handles.reserve(n / 2);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    auto handle = sim.schedule_at(static_cast<double>(i), [&sum] { ++sum; });
    if (i % 2 == 0) handles.push_back(handle);
  }
  for (auto& handle : handles) handle.cancel();
  sim.run();
  return n;  // schedule+cancel work dominates; count all scheduled events
}

std::uint64_t kernel_handle_churn(std::size_t n) {
  // Schedule-then-cancel in a tight loop with a small live window: stresses
  // record recycling (the allocator in the old kernel, the slab free list in
  // the new one) rather than heap ordering.
  dg::des::Simulator sim;
  std::uint64_t sum = 0;
  std::vector<dg::des::EventHandle> window;
  for (std::size_t i = 0; i < n; ++i) {
    window.push_back(sim.schedule_at(1e9 + static_cast<double>(i), [&sum] { ++sum; }));
    if (window.size() == 64) {
      for (auto& handle : window) handle.cancel();
      window.clear();
    }
  }
  sim.schedule_at(2e9, [&sim] { sim.stop(); });
  sim.run();
  return n;
}

std::uint64_t kernel_deep_hold(dg::des::QueueBackend backend, std::size_t depth,
                               std::uint64_t rescheduling) {
  // Hold model through the full kernel at a sustained queue depth: `depth`
  // self-rescheduling events, each firing schedules one successor a
  // pseudo-random delay ahead until `rescheduling` fires have happened, then
  // the queue drains. This is the workload where backend choice matters —
  // the shallow-queue suites above barely exercise heap ordering.
  dg::des::Simulator sim(backend);
  std::uint64_t count = 0;
  std::uint64_t mix = 0x9e3779b97f4a7c15ULL;
  auto next_delay = [&mix] {
    mix += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = mix;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<double>((z ^ (z >> 31)) % 100000) / 10.0 + 0.1;
  };
  std::function<void()> hold = [&] {
    if (++count < rescheduling) sim.schedule_after(next_delay(), hold);
  };
  for (std::size_t i = 0; i < depth; ++i) sim.schedule_after(next_delay(), hold);
  sim.run();
  return count;
}

std::vector<PerfRecord> run_kernel_suite() {
  std::printf("kernel suite:\n");
  std::vector<PerfRecord> records;
  records.push_back(best_of("kernel/schedule_run_200k", "200k events, pseudo-random times", 0,
                            kKernelReps, [] { return kernel_schedule_run(200000); }));
  records.push_back(best_of("kernel/event_chain_1m", "1M self-rescheduling events, depth-1 queue",
                            0, kKernelReps, [] { return kernel_event_chain(1000000); }));
  records.push_back(best_of("kernel/cancel_heavy_200k", "200k events, 50% cancelled", 0,
                            kKernelReps, [] { return kernel_cancel_heavy(200000); }));
  records.push_back(best_of("kernel/handle_churn_500k", "500k schedule+cancel, 64-live window", 0,
                            kKernelReps, [] { return kernel_handle_churn(500000); }));
  // Queue-backend sweep (PR 7): the same hold workload per backend at two
  // sustained depths. Record names carry the backend so the perf gate diffs
  // each backend against its own baseline.
  for (const auto backend : {dg::des::QueueBackend::kHeap4, dg::des::QueueBackend::kCalendar}) {
    const std::string suffix(dg::des::to_string(backend));
    records.push_back(best_of("kernel/hold_4k/" + suffix,
                              "1M fires at sustained depth 4096, backend " + suffix, 0,
                              kKernelReps,
                              [backend] { return kernel_deep_hold(backend, 4096, 1000000); }));
    records.push_back(best_of("kernel/hold_64k/" + suffix,
                              "1M fires at sustained depth 65536, backend " + suffix, 0,
                              kKernelReps,
                              [backend] { return kernel_deep_hold(backend, 65536, 1000000); }));
  }
  return records;
}

// --- policy / end-to-end benchmarks ----------------------------------------

dg::sim::SimulationConfig policy_config(dg::sched::PolicyKind policy, double granularity,
                                        std::size_t num_bots, dg::grid::Heterogeneity het,
                                        dg::grid::AvailabilityLevel avail) {
  using namespace dg;
  sim::SimulationConfig config;
  config.grid = grid::GridConfig::preset(het, avail);
  config.workload =
      sim::make_paper_workload(config.grid, granularity, workload::Intensity::kLow, num_bots);
  config.seed = 11;
  config.policy = policy;
  return config;
}

/// Set when any chaos run produces an invariant violation; fails the report.
bool g_invariants_violated = false;

PerfRecord run_policy(const std::string& name, const std::string& config_desc,
                      const dg::sim::SimulationConfig& config, int reps = kPolicyReps) {
  double machines_per_dispatch = 0.0;
  dg::sim::FaultStats faults;
  dg::stats::TailQuantiles turnaround_tails;
  dg::stats::TailQuantiles slowdown_tails;
  const bool check_invariants = config.grid.checkpoint_server_faults.enabled;
  PerfRecord record =
      best_of(name, config_desc, config.seed, reps,
              [&config, &machines_per_dispatch, &faults, &turnaround_tails, &slowdown_tails,
               check_invariants, &name] {
                dg::sim::InvariantChecker checker;
                const auto result =
                    dg::sim::Simulation(config).run(check_invariants ? &checker : nullptr);
                if (check_invariants && !checker.ok()) {
                  std::cerr << "perf_report: invariant violations in " << name << ":\n"
                            << checker.report();
                  g_invariants_violated = true;
                }
                machines_per_dispatch =
                    result.sched.machines_per_dispatch(result.replicas_started);
                faults = result.faults;
                turnaround_tails = result.turnaround_tail.tails();
                slowdown_tails = result.slowdown_tail.tails();
                return result.events_executed;
              });
  // Deterministic for a given config+seed, so any rep's value is the value.
  record.machines_per_dispatch = machines_per_dispatch;
  record.transfer_retries = faults.transfer_retries;
  record.replicas_degraded = faults.replicas_degraded;
  record.turnaround_p50 = turnaround_tails.p50;
  record.turnaround_p95 = turnaround_tails.p95;
  record.turnaround_p99 = turnaround_tails.p99;
  record.slowdown_p95 = slowdown_tails.p95;
  record.slowdown_p99 = slowdown_tails.p99;
  return record;
}

std::vector<PerfRecord> run_policy_suite() {
  using dg::sched::PolicyKind;
  std::printf("policy suite:\n");
  std::vector<PerfRecord> records;
  const std::string base = "hom/high-avail, g=5000, 20 bags";
  records.push_back(run_policy("policy/fcfs_excl", base,
                               policy_config(PolicyKind::kFcfsExcl, 5000.0, 20,
                                             dg::grid::Heterogeneity::kHom,
                                             dg::grid::AvailabilityLevel::kHigh)));
  records.push_back(run_policy("policy/fcfs_share", base,
                               policy_config(PolicyKind::kFcfsShare, 5000.0, 20,
                                             dg::grid::Heterogeneity::kHom,
                                             dg::grid::AvailabilityLevel::kHigh)));
  records.push_back(run_policy("policy/round_robin", base,
                               policy_config(PolicyKind::kRoundRobin, 5000.0, 20,
                                             dg::grid::Heterogeneity::kHom,
                                             dg::grid::AvailabilityLevel::kHigh)));
  records.push_back(run_policy("policy/round_robin_nrf", base,
                               policy_config(PolicyKind::kRoundRobinNrf, 5000.0, 20,
                                             dg::grid::Heterogeneity::kHom,
                                             dg::grid::AvailabilityLevel::kHigh)));
  records.push_back(run_policy("policy/long_idle", base,
                               policy_config(PolicyKind::kLongIdle, 5000.0, 20,
                                             dg::grid::Heterogeneity::kHom,
                                             dg::grid::AvailabilityLevel::kHigh)));
  records.push_back(run_policy("policy/small_tasks", "hom/high-avail, g=1000, 10 bags",
                               policy_config(PolicyKind::kFcfsShare, 1000.0, 10,
                                             dg::grid::Heterogeneity::kHom,
                                             dg::grid::AvailabilityLevel::kHigh)));
  records.push_back(run_policy("policy/low_avail_churn", "het/low-avail, g=25000, 10 bags",
                               policy_config(PolicyKind::kRoundRobin, 25000.0, 10,
                                             dg::grid::Heterogeneity::kHet,
                                             dg::grid::AvailabilityLevel::kLow)));
  // Chaos cell: the same low-availability grid with a *failing* checkpoint
  // server (MTBF 8000 s, MTTR 4000 s, transfers aborted). Runs under the
  // InvariantChecker; retry/degradation counters land in the JSON record.
  {
    dg::sim::SimulationConfig config =
        policy_config(PolicyKind::kRoundRobin, 25000.0, 10, dg::grid::Heterogeneity::kHet,
                      dg::grid::AvailabilityLevel::kLow);
    config.grid.checkpoint_server_faults.enabled = true;
    config.grid.checkpoint_server_faults.mtbf = 8000.0;
    config.grid.checkpoint_server_faults.mttr = 4000.0;
    records.push_back(run_policy("policy/server_chaos",
                                 "het/low-avail, g=25000, 10 bags, server mtbf=8000 mttr=4000",
                                 config));
  }
  return records;
}

// --- grid-scale benchmarks --------------------------------------------------
//
// 10x the paper's grid (total power 10000 -> 1000 hom machines) with a 200-bag
// backlog: large enough that per-dispatch costs proportional to grid size or
// backlog size dominate the run. machines_per_dispatch in the JSON output
// tracks how many machine slots the trigger loop examined per started replica.

dg::sim::SimulationConfig scale_config(dg::sched::PolicyKind policy) {
  using namespace dg;
  sim::SimulationConfig config;
  config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHom,
                                         grid::AvailabilityLevel::kHigh);
  config.grid.total_power = 10000.0;  // 1000 machines at hom_power = 10
  config.workload =
      sim::make_paper_workload(config.grid, 5000.0, workload::Intensity::kLow, 200);
  config.seed = 11;
  config.policy = policy;
  return config;
}

std::vector<PerfRecord> run_scale_suite() {
  using dg::sched::PolicyKind;
  std::printf("scale suite:\n");
  std::vector<PerfRecord> records;
  const std::string base = "hom/high-avail, 1000 machines, g=5000, 200 bags";
  records.push_back(run_policy("policy_scale/fcfs_share", base,
                               scale_config(PolicyKind::kFcfsShare), kScaleReps));
  records.push_back(run_policy("policy_scale/round_robin", base,
                               scale_config(PolicyKind::kRoundRobin), kScaleReps));
  records.push_back(run_policy("policy_scale/round_robin_nrf", base,
                               scale_config(PolicyKind::kRoundRobinNrf), kScaleReps));
  records.push_back(run_policy("policy_scale/long_idle", base,
                               scale_config(PolicyKind::kLongIdle), kScaleReps));
  return records;
}

bool write_report(const std::string& path, const std::vector<PerfRecord>& records) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "perf_report: cannot open " << path << " for writing\n";
    return false;
  }
  dg::bench::write_perf_json(os, records);
  std::printf("wrote %s (%zu records)\n", path.c_str(), records.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const std::vector<PerfRecord> kernel = run_kernel_suite();
  std::vector<PerfRecord> policies = run_policy_suite();
  const std::vector<PerfRecord> scale = run_scale_suite();
  policies.insert(policies.end(), scale.begin(), scale.end());
  bool ok = write_report(out_dir + "/BENCH_kernel.json", kernel);
  ok = write_report(out_dir + "/BENCH_policies.json", policies) && ok;
  if (g_invariants_violated) {
    std::cerr << "perf_report: chaos runs violated simulation invariants\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
