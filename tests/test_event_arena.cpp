// Slab arena + generation-counted handles: slot recycling, stale-handle
// rejection, growth behavior under large bursts, and KernelStats plumbing
// through the sim layer.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "des/simulator.hpp"
#include "sim/observer.hpp"
#include "sim/simulation.hpp"

namespace dg::des {
namespace {

TEST(EventArena, StaleHandleCannotCancelSlotReuser) {
  // With a LIFO free list, cancelling the only event and scheduling a new
  // one reuses the same slot; the stale handle's generation must not match.
  Simulator sim;
  EventHandle stale = sim.schedule_at(1.0, [] { FAIL() << "cancelled event ran"; });
  ASSERT_TRUE(stale.cancel());

  bool ran = false;
  EventHandle fresh = sim.schedule_at(2.0, [&ran] { ran = true; });
  EXPECT_FALSE(stale.pending());
  EXPECT_FALSE(stale.cancel());  // must NOT kill the recycled slot's new event
  EXPECT_TRUE(fresh.pending());

  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.executed_events(), 1u);
  EXPECT_EQ(sim.stats().events_cancelled, 1u);
}

TEST(EventArena, EveryGenerationOfAReusedSlotIsDistinct) {
  Simulator sim;
  std::vector<EventHandle> stale;
  for (int i = 0; i < 100; ++i) {
    EventHandle handle = sim.schedule_at(1.0, [] {});
    stale.push_back(handle);
    ASSERT_TRUE(handle.cancel());
  }
  bool ran = false;
  EventHandle live = sim.schedule_at(1.0, [&ran] { ran = true; });
  for (EventHandle& handle : stale) {
    EXPECT_FALSE(handle.pending());
    EXPECT_FALSE(handle.cancel());
  }
  EXPECT_TRUE(live.pending());
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(EventArena, StaleHandleAfterExecutionCannotCancelReuser) {
  Simulator sim;
  EventHandle first = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(first.pending());

  bool ran = false;
  sim.schedule_at(2.0, [&ran] { ran = true; });  // reuses the retired slot
  EXPECT_FALSE(first.cancel());
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(EventArena, ScheduleCancelChurnStaysWithinOneSlab) {
  // Recycling means unbounded schedule/cancel churn with one live event
  // never grows past the first slab.
  Simulator sim;
  for (int i = 0; i < 10000; ++i) {
    EventHandle handle = sim.schedule_at(1.0, [] {});
    ASSERT_TRUE(handle.cancel());
  }
  const KernelStats& stats = sim.stats();
  EXPECT_EQ(stats.arena_slabs, 1u);
  EXPECT_EQ(stats.arena_capacity, detail::EventArena::kSlabSize);
  EXPECT_EQ(stats.events_scheduled, 10000u);
  EXPECT_EQ(stats.events_cancelled, 10000u);
  EXPECT_EQ(stats.events_fired, 0u);
}

TEST(EventArena, MillionEventBurstGrowsThenRecycles) {
  constexpr std::uint64_t kBurst = 1000000;
  Simulator sim;
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    sim.schedule_at(static_cast<double>((i * 7919) % kBurst), [&sum] { ++sum; });
  }
  const std::uint64_t slabs_after_burst = sim.stats().arena_slabs;
  EXPECT_EQ(sim.stats().heap_peak, kBurst);
  EXPECT_GE(sim.stats().arena_capacity, kBurst);
  // Capacity tracks the peak, not the schedule count: ceil(1M / slab).
  const std::uint64_t expected_slabs =
      (kBurst + detail::EventArena::kSlabSize - 1) / detail::EventArena::kSlabSize;
  EXPECT_EQ(slabs_after_burst, expected_slabs);

  sim.run();
  EXPECT_EQ(sum, kBurst);
  EXPECT_EQ(sim.executed_events(), kBurst);
  EXPECT_TRUE(sim.empty());

  // A second burst of the same size reuses the retired slots: zero growth.
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    sim.schedule_after(1.0, [&sum] { ++sum; });
  }
  EXPECT_EQ(sim.stats().arena_slabs, slabs_after_burst);
  sim.run();
  EXPECT_EQ(sum, 2 * kBurst);
}

TEST(EventArena, KernelStatsArithmetic) {
  Simulator sim;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(sim.schedule_at(static_cast<double>(i + 1), [] {}));
  }
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(handles[static_cast<std::size_t>(i)].cancel());
  sim.run();
  const KernelStats& stats = sim.stats();
  EXPECT_EQ(stats.events_scheduled, 10u);
  EXPECT_EQ(stats.events_cancelled, 3u);
  EXPECT_EQ(stats.events_fired, 7u);
  EXPECT_EQ(stats.heap_peak, 10u);
  EXPECT_EQ(sim.scheduled_events(), 10u);
  EXPECT_EQ(sim.executed_events(), 7u);
}

// --- KernelStats plumbing through the sim layer -----------------------------

class KernelStatsProbe final : public sim::SimulationObserver {
 public:
  void on_run_finished(const KernelStats& kernel, const sched::SchedStats& sched,
                       const sim::FaultStats& faults, double now) override {
    kernel_ = kernel;
    sched_ = sched;
    faults_ = faults;
    finished_at_ = now;
    ++calls_;
  }

  KernelStats kernel_;
  sched::SchedStats sched_;
  sim::FaultStats faults_;
  double finished_at_ = -1.0;
  int calls_ = 0;
};

TEST(KernelStatsPlumbing, ResultAndObserverSeeTheSameCounters) {
  sim::SimulationConfig config;
  config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHom,
                                         grid::AvailabilityLevel::kHigh);
  config.workload =
      sim::make_paper_workload(config.grid, 25000.0, workload::Intensity::kLow, 4);
  config.seed = 5;

  KernelStatsProbe probe;
  const sim::SimulationResult result = sim::Simulation(config).run(&probe);

  EXPECT_EQ(probe.calls_, 1);
  EXPECT_EQ(probe.finished_at_, result.end_time);
  EXPECT_EQ(probe.kernel_.events_fired, result.events_executed);
  EXPECT_EQ(result.kernel.events_fired, result.events_executed);
  // fired + cancelled never exceeds scheduled; the remainder is still
  // pending at the horizon.
  EXPECT_GE(result.kernel.events_scheduled,
            result.kernel.events_fired + result.kernel.events_cancelled);
  EXPECT_GT(result.kernel.heap_peak, 0u);
  EXPECT_GT(result.kernel.arena_slabs, 0u);
  EXPECT_GT(result.kernel.arena_capacity, 0u);
  // SchedStats rides along on the same hook and in the result.
  EXPECT_EQ(probe.sched_.triggers, result.sched.triggers);
  EXPECT_EQ(probe.sched_.selects, result.sched.selects);
  EXPECT_GT(result.sched.triggers, 0u);
  EXPECT_GE(result.sched.selects, result.replicas_started);
  EXPECT_GE(result.sched.machines_examined, result.sched.selects);
}

}  // namespace
}  // namespace dg::des
