// Desktop Grid model: machine population, availability processes,
// checkpoint server, configuration presets.
#include <gtest/gtest.h>

#include <cmath>

#include "des/simulator.hpp"
#include "grid/availability.hpp"
#include "grid/checkpoint_server.hpp"
#include "grid/desktop_grid.hpp"
#include "rng/random_stream.hpp"
#include "sim/simulation.hpp"

namespace dg::grid {
namespace {

TEST(Machine, StartsUpAndIdle) {
  Machine machine(0, 10.0);
  EXPECT_TRUE(machine.up());
  EXPECT_TRUE(machine.available());
  EXPECT_FALSE(machine.busy());
  EXPECT_EQ(machine.failures(), 0u);
}

TEST(Machine, BusyMachineNotAvailable) {
  Machine machine(0, 10.0);
  machine.set_busy(true);
  EXPECT_TRUE(machine.up());
  EXPECT_FALSE(machine.available());
}

TEST(Machine, DownMachineNotAvailable) {
  Machine machine(0, 10.0);
  EXPECT_TRUE(machine.force_down(5.0));
  EXPECT_FALSE(machine.up());
  EXPECT_FALSE(machine.available());
  EXPECT_EQ(machine.state(), MachineState::kDown);
}

TEST(Machine, DownCausesCompose) {
  // Two overlapping down-causes (own crash + correlated outage): the machine
  // comes back only when both are released, and only edges report true.
  Machine machine(0, 10.0);
  EXPECT_TRUE(machine.force_down(10.0));
  EXPECT_FALSE(machine.force_down(20.0));  // second cause: no new edge
  EXPECT_EQ(machine.failures(), 1u);
  EXPECT_FALSE(machine.release_down(30.0));  // one cause remains
  EXPECT_FALSE(machine.up());
  EXPECT_TRUE(machine.release_down(50.0));
  EXPECT_TRUE(machine.up());
  // Downtime spans [10, 50] regardless of the inner cause timing.
  EXPECT_NEAR(machine.measured_availability(100.0), 0.6, 1e-12);
}

TEST(Machine, MeasuredAvailabilityTracksDowntime) {
  Machine machine(0, 10.0);
  EXPECT_DOUBLE_EQ(machine.measured_availability(100.0), 1.0);
  machine.force_down(100.0);
  EXPECT_NEAR(machine.measured_availability(200.0), 0.5, 1e-12);  // still down
  machine.release_down(150.0);
  EXPECT_NEAR(machine.measured_availability(200.0), 0.75, 1e-12);
}

// --- availability model ---

TEST(AvailabilityModel, TargetsAreMet) {
  EXPECT_NEAR(AvailabilityModel::for_level(AvailabilityLevel::kHigh).availability(), 0.98, 1e-9);
  EXPECT_NEAR(AvailabilityModel::for_level(AvailabilityLevel::kMed).availability(), 0.75, 1e-9);
  EXPECT_NEAR(AvailabilityModel::for_level(AvailabilityLevel::kLow).availability(), 0.50, 1e-9);
  EXPECT_EQ(AvailabilityModel::for_level(AvailabilityLevel::kAlways).availability(), 1.0);
}

TEST(AvailabilityModel, HighAvailMttfIs49RepairTimes) {
  const AvailabilityModel model = AvailabilityModel::for_level(AvailabilityLevel::kHigh);
  // MTTF = A/(1-A) * MTTR = 49 * 1800.
  EXPECT_NEAR(model.mttf(), 49.0 * 1800.0, 1.0);
  EXPECT_NEAR(model.mttr(), 1800.0, 1e-9);
}

TEST(AvailabilityModel, LowAvailMttfEqualsMttr) {
  const AvailabilityModel model = AvailabilityModel::for_level(AvailabilityLevel::kLow);
  EXPECT_NEAR(model.mttf(), 1800.0, 1.0);
}

TEST(AvailabilityModel, InvalidTargetThrows) {
  EXPECT_THROW(AvailabilityModel::from_availability(0.0), std::invalid_argument);
  EXPECT_THROW(AvailabilityModel::from_availability(1.0), std::invalid_argument);
}

TEST(AvailabilityModel, LevelNames) {
  EXPECT_EQ(to_string(AvailabilityLevel::kHigh), "HighAvail");
  EXPECT_EQ(to_string(AvailabilityLevel::kMed), "MedAvail");
  EXPECT_EQ(to_string(AvailabilityLevel::kLow), "LowAvail");
}

TEST(AvailabilityProcess, MachineAlternatesUpDown) {
  des::Simulator sim;
  Machine machine(0, 10.0);
  AvailabilityModel model = AvailabilityModel::from_availability(0.5, 0.7, 100.0, 10.0);
  AvailabilityProcess process(sim, machine, model, rng::RandomStream(12));
  int failures = 0, repairs = 0;
  auto on_fail = [&](Machine&) { ++failures; };
  auto on_repair = [&](Machine&) { ++repairs; };
  process.start(TransitionDelegate::bind(on_fail), TransitionDelegate::bind(on_repair));
  sim.run_until(50000.0);
  EXPECT_GT(failures, 10);
  EXPECT_TRUE(repairs == failures || repairs == failures - 1);
  EXPECT_EQ(machine.failures(), static_cast<std::uint64_t>(failures));
}

TEST(AvailabilityProcess, MeasuredAvailabilityApproachesTarget) {
  // Long-run property: per-machine measured availability converges.
  des::Simulator sim;
  Machine machine(0, 10.0);
  AvailabilityModel model = AvailabilityModel::from_availability(0.75, 0.7, 600.0, 60.0);
  AvailabilityProcess process(sim, machine, model, rng::RandomStream(34));
  process.start(nullptr, nullptr);
  sim.run_until(5e6);
  EXPECT_NEAR(process.measured_availability(sim.now()), 0.75, 0.05);
}

TEST(AvailabilityProcess, DisabledFailuresNeverFire) {
  des::Simulator sim;
  Machine machine(0, 10.0);
  AvailabilityProcess process(sim, machine, AvailabilityModel::for_level(AvailabilityLevel::kAlways),
                              rng::RandomStream(56));
  auto on_fail = [](Machine&) { FAIL() << "failure fired with failures disabled"; };
  process.start(TransitionDelegate::bind(on_fail), nullptr);
  sim.run_until(1e9);
  EXPECT_TRUE(machine.up());
  EXPECT_EQ(process.failure_count(), 0u);
  EXPECT_EQ(process.measured_availability(sim.now()), 1.0);
}

// --- grid construction ---

TEST(DesktopGrid, HomGridHasExactly100Machines) {
  des::Simulator sim;
  DesktopGrid grid(GridConfig::preset(Heterogeneity::kHom, AvailabilityLevel::kHigh), sim, 1);
  EXPECT_EQ(grid.size(), 100u);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(grid.machine(i).power(), 10.0);
  }
  EXPECT_DOUBLE_EQ(grid.total_power(), 1000.0);
}

TEST(DesktopGrid, HetGridPowersInRangeAndSumReached) {
  des::Simulator sim;
  DesktopGrid grid(GridConfig::preset(Heterogeneity::kHet, AvailabilityLevel::kHigh), sim, 2);
  EXPECT_GE(grid.total_power(), 1000.0);
  EXPECT_LT(grid.total_power(), 1000.0 + 17.7);
  // ~100 machines on average (power mean 10).
  EXPECT_GT(grid.size(), 70u);
  EXPECT_LT(grid.size(), 140u);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_GE(grid.machine(i).power(), 2.3);
    EXPECT_LT(grid.machine(i).power(), 17.7);
  }
}

TEST(DesktopGrid, ConstructionIsDeterministicPerSeed) {
  des::Simulator sim_a, sim_b, sim_c;
  const GridConfig config = GridConfig::preset(Heterogeneity::kHet, AvailabilityLevel::kMed);
  DesktopGrid a(config, sim_a, 7), b(config, sim_b, 7), c(config, sim_c, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.machine(i).power(), b.machine(i).power());
  }
  bool identical_to_c = a.size() == c.size();
  if (identical_to_c) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a.machine(i).power() != c.machine(i).power()) identical_to_c = false;
    }
  }
  EXPECT_FALSE(identical_to_c);
}

TEST(DesktopGrid, MachineIdsAreSequential) {
  des::Simulator sim;
  DesktopGrid grid(GridConfig::preset(Heterogeneity::kHom, AvailabilityLevel::kLow), sim, 3);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid.machine(i).id(), static_cast<MachineId>(i));
  }
}

TEST(DesktopGrid, AvailableMachinesExcludesBusyAndDown) {
  des::Simulator sim;
  GridConfig config = GridConfig::preset(Heterogeneity::kHom, AvailabilityLevel::kAlways);
  config.total_power = 50.0;  // 5 machines
  DesktopGrid grid(config, sim, 4);
  ASSERT_EQ(grid.size(), 5u);
  grid.machine(0).set_busy(true);
  grid.machine(1).force_down(0.0);
  const auto available = grid.available_machines();
  EXPECT_EQ(available.size(), 3u);
  EXPECT_EQ(grid.up_count(), 4u);
}

TEST(DesktopGrid, GridLevelMeasuredAvailability) {
  des::Simulator sim;
  GridConfig config = GridConfig::preset(Heterogeneity::kHom, AvailabilityLevel::kLow);
  config.total_power = 200.0;  // 20 machines keep the test fast
  DesktopGrid grid(config, sim, 5);
  grid.start(nullptr, nullptr);
  sim.run_until(2e6);
  EXPECT_NEAR(grid.measured_availability(sim.now()), 0.50, 0.08);
  EXPECT_GT(grid.total_failures(), 0u);
}

TEST(GridConfig, PresetNames) {
  EXPECT_EQ(GridConfig::preset(Heterogeneity::kHom, AvailabilityLevel::kHigh).name(),
            "Hom-HighAvail");
  EXPECT_EQ(GridConfig::preset(Heterogeneity::kHet, AvailabilityLevel::kLow).name(),
            "Het-LowAvail");
  EXPECT_EQ(GridConfig::preset(Heterogeneity::kHom, AvailabilityLevel::kMed).name(),
            "Hom-MedAvail");
}

// --- checkpoint server ---

TEST(CheckpointServer, TransferTimesInPaperRange) {
  CheckpointServer server;  // unlimited capacity: pure delay
  rng::RandomStream stream(6);
  for (int i = 0; i < 1000; ++i) {
    const double save = server.schedule_save(1000.0, stream) - 1000.0;
    EXPECT_GE(save, 240.0);
    EXPECT_LT(save, 720.0);
    const double retrieve = server.schedule_retrieve(1000.0, stream) - 1000.0;
    EXPECT_GE(retrieve, 240.0);
    EXPECT_LT(retrieve, 720.0);
  }
  EXPECT_EQ(server.saves(), 1000u);
  EXPECT_EQ(server.retrievals(), 1000u);
  EXPECT_DOUBLE_EQ(server.mean_transfer_time(), 480.0);
  EXPECT_EQ(server.total_queueing_time(), 0.0);
}

TEST(CheckpointServer, SingleSlotSerializesTransfers) {
  // Deterministic durations via a degenerate uniform range.
  CheckpointServer server(rng::UniformDist{100.0, 100.0 + 1e-12}, /*capacity=*/1);
  rng::RandomStream stream(7);
  const double first = server.schedule_save(0.0, stream);
  const double second = server.schedule_save(0.0, stream);
  const double third = server.schedule_save(0.0, stream);
  EXPECT_NEAR(first, 100.0, 1e-6);
  EXPECT_NEAR(second, 200.0, 1e-6);  // queued behind the first
  EXPECT_NEAR(third, 300.0, 1e-6);
  EXPECT_NEAR(server.total_queueing_time(), 100.0 + 200.0, 1e-6);
}

TEST(CheckpointServer, SlotsFreeUpOverTime) {
  CheckpointServer server(rng::UniformDist{100.0, 100.0 + 1e-12}, /*capacity=*/2);
  rng::RandomStream stream(8);
  EXPECT_NEAR(server.schedule_save(0.0, stream), 100.0, 1e-6);
  EXPECT_NEAR(server.schedule_save(0.0, stream), 100.0, 1e-6);   // second slot
  EXPECT_NEAR(server.schedule_save(0.0, stream), 200.0, 1e-6);   // queued
  // Much later: both slots long free, no queueing.
  EXPECT_NEAR(server.schedule_save(1000.0, stream), 1100.0, 1e-6);
}

TEST(CheckpointServer, CancelTransferReleasesUnusedTail) {
  CheckpointServer server(rng::UniformDist{100.0, 100.0}, /*capacity=*/1);
  rng::RandomStream stream(9);
  const CheckpointServer::Transfer first = server.begin_save(0.0, stream);
  EXPECT_DOUBLE_EQ(first.completion, 100.0);
  // Client dies at t=30: the remaining 70 s of reservation are handed back.
  server.cancel_transfer(first, 30.0);
  EXPECT_EQ(server.slots_released(), 1u);
  const CheckpointServer::Transfer second = server.begin_save(30.0, stream);
  EXPECT_DOUBLE_EQ(second.start, 30.0);
  EXPECT_DOUBLE_EQ(second.completion, 130.0);
  EXPECT_DOUBLE_EQ(server.total_queueing_time(), 0.0);
}

TEST(CheckpointServer, CancelAfterCompletionIsNoOp) {
  CheckpointServer server(rng::UniformDist{100.0, 100.0}, /*capacity=*/1);
  rng::RandomStream stream(10);
  const CheckpointServer::Transfer first = server.begin_save(0.0, stream);
  server.cancel_transfer(first, 150.0);  // already finished: nothing to free
  EXPECT_EQ(server.slots_released(), 0u);
  const CheckpointServer::Transfer second = server.begin_save(50.0, stream);
  EXPECT_DOUBLE_EQ(second.start, 100.0);  // still queued behind the full first
  EXPECT_DOUBLE_EQ(second.completion, 200.0);
}

TEST(CheckpointServer, UnlimitedCapacityHasNoSlotToRelease) {
  CheckpointServer server(rng::UniformDist{100.0, 100.0});
  rng::RandomStream stream(11);
  const CheckpointServer::Transfer transfer = server.begin_save(0.0, stream);
  EXPECT_EQ(transfer.slot, CheckpointServer::kNoSlot);
  server.cancel_transfer(transfer, 10.0);
  EXPECT_EQ(server.slots_released(), 0u);
}

TEST(CheckpointServer, ReleaseDisabledReproducesHistoricalLeak) {
  // release_slots = false: a dead client's reservation runs to its end and
  // the next transfer queues behind it — the documented pre-fix behaviour.
  CheckpointServer server(rng::UniformDist{100.0, 100.0}, /*capacity=*/1,
                          /*release_slots=*/false);
  rng::RandomStream stream(12);
  const CheckpointServer::Transfer first = server.begin_save(0.0, stream);
  server.cancel_transfer(first, 30.0);
  EXPECT_EQ(server.slots_released(), 0u);
  const CheckpointServer::Transfer second = server.begin_save(30.0, stream);
  EXPECT_DOUBLE_EQ(second.start, 100.0);
  EXPECT_DOUBLE_EQ(second.completion, 200.0);
  EXPECT_DOUBLE_EQ(server.total_queueing_time(), 70.0);
}

TEST(CheckpointServer, UpDownBookkeeping) {
  CheckpointServer server;
  EXPECT_TRUE(server.up());
  server.set_down(10.0);
  EXPECT_FALSE(server.up());
  EXPECT_EQ(server.outage_count(), 1u);
  EXPECT_DOUBLE_EQ(server.total_downtime(15.0), 5.0);  // open outage counts
  server.set_up(20.0);
  EXPECT_TRUE(server.up());
  EXPECT_DOUBLE_EQ(server.total_downtime(100.0), 10.0);
}

TEST(CheckpointServerFaultModel, ImpliedAvailability) {
  CheckpointServerFaultModel model;
  EXPECT_DOUBLE_EQ(model.availability(), 1.0);  // disabled: perfectly reliable
  model.enabled = true;
  model.mtbf = 9000.0;
  model.mttr = 1000.0;
  EXPECT_DOUBLE_EQ(model.availability(), 0.9);
}

TEST(CheckpointServer, ContentionDelaysSimulation) {
  // End-to-end: a capacity-1 server under heavy checkpoint traffic stretches
  // turnaround relative to the unlimited server.
  auto run = [](std::size_t capacity) {
    sim::SimulationConfig config;
    config.grid = grid::GridConfig::preset(Heterogeneity::kHom, AvailabilityLevel::kLow);
    config.grid.checkpoint_server_capacity = capacity;
    config.workload =
        sim::make_paper_workload(config.grid, 125000.0, workload::Intensity::kLow, 6);
    config.policy = sched::PolicyKind::kRoundRobin;
    config.seed = 17;
    return sim::Simulation(config).run();
  };
  const sim::SimulationResult unlimited = run(0);
  const sim::SimulationResult contended = run(1);
  EXPECT_GT(contended.turnaround.mean(), unlimited.turnaround.mean());
}

TEST(YoungFormula, KnownValues) {
  // tau = sqrt(2 * C * MTBF)
  EXPECT_NEAR(young_checkpoint_interval(480.0, 88200.0), std::sqrt(2.0 * 480.0 * 88200.0), 1e-9);
  EXPECT_NEAR(young_checkpoint_interval(480.0, 1800.0), std::sqrt(2.0 * 480.0 * 1800.0), 1e-9);
}

TEST(YoungFormula, GrowsWithMttf) {
  EXPECT_GT(young_checkpoint_interval(480.0, 88200.0), young_checkpoint_interval(480.0, 5400.0));
  EXPECT_GT(young_checkpoint_interval(480.0, 5400.0), young_checkpoint_interval(480.0, 1800.0));
}

}  // namespace
}  // namespace dg::grid
