// Failable checkpoint server: retry with capped exponential backoff,
// per-attempt timeouts, and graceful degradation (skip the save / restart the
// retrieve from scratch). Deterministic single-machine timelines with a
// degenerate (constant) transfer time, so every completion instant is exact.
#include <gtest/gtest.h>

#include "sim/invariant_checker.hpp"
#include "sim_test_util.hpp"

namespace dg::test {
namespace {

// One machine of power 10, WQR-FT with threshold 1, 300 s transfers.
WorldOptions fault_world_options() {
  WorldOptions options;
  options.num_machines = 1;
  options.machine_power = 10.0;
  options.threshold = 1;
  options.checkpointing = true;
  options.checkpoint_interval = 4.0;  // 40 work per leg at power 10
  options.checkpoint_transfer = rng::UniformDist{300.0, 300.0};
  options.failable_server = true;
  options.retry.attempt_timeout = 0.0;  // timeouts off unless a test opts in
  return options;
}

TEST(ServerFaults, SaveRefusedWhileDownRetriesWithExponentialBackoff) {
  WorldOptions options = fault_world_options();
  options.retry.max_attempts = 5;
  options.retry.backoff_base = 10.0;
  options.retry.backoff_cap = 40.0;
  World world(options);
  sim::InvariantChecker checker;
  world.engine->add_observer(checker);

  sched::BotState& bot = world.add_bot({100.0});
  world.fail_server_at(3.0);
  world.repair_server_at(50.0);
  world.sim.run();

  // Save attempts at t=4 (refused), 14 (+10), 34 (+20), then 74 (+40, capped)
  // which succeeds: transfer [74, 374] commits 40; leg [374, 378];
  // save [378, 678] commits 80; final leg [678, 680].
  EXPECT_TRUE(bot.completed());
  EXPECT_DOUBLE_EQ(bot.completion_time(), 680.0);
  const sim::FaultStats faults = world.engine->fault_stats(world.sim.now());
  EXPECT_EQ(faults.save_attempts_failed, 3u);
  EXPECT_EQ(faults.transfer_retries, 3u);
  EXPECT_EQ(faults.saves_skipped, 0u);
  EXPECT_EQ(faults.server_outages, 1u);
  EXPECT_DOUBLE_EQ(faults.server_downtime, 47.0);
  EXPECT_EQ(world.engine->checkpoints_saved(), 2u);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(ServerFaults, SaveSkippedAfterRetryBudgetExhausted) {
  WorldOptions options = fault_world_options();
  options.retry.max_attempts = 2;
  options.retry.backoff_base = 10.0;
  options.retry.backoff_cap = 10.0;
  World world(options);
  sim::InvariantChecker checker;
  world.engine->add_observer(checker);

  sched::BotState& bot = world.add_bot({100.0});
  world.fail_server_at(1.0);  // down for the rest of the run
  world.sim.run();

  // Every save fails twice and is skipped; the replica keeps computing from
  // its own (uncommitted) progress: legs [0,4], [14,18], [28,30].
  EXPECT_TRUE(bot.completed());
  EXPECT_DOUBLE_EQ(bot.completion_time(), 30.0);
  const sim::FaultStats faults = world.engine->fault_stats(world.sim.now());
  EXPECT_EQ(faults.saves_skipped, 2u);
  EXPECT_EQ(faults.save_attempts_failed, 4u);
  EXPECT_EQ(faults.transfer_retries, 2u);
  EXPECT_EQ(world.engine->checkpoints_saved(), 0u);
  EXPECT_DOUBLE_EQ(bot.task(0).checkpointed_work(), 0.0);
  EXPECT_DOUBLE_EQ(world.engine->useful_compute_time(), 10.0);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(ServerFaults, RetrieveExhaustionDegradesToRestartFromScratch) {
  WorldOptions options = fault_world_options();
  options.retry.max_attempts = 2;
  options.retry.backoff_base = 10.0;
  options.retry.backoff_cap = 10.0;
  World world(options);
  sim::InvariantChecker checker;
  world.engine->add_observer(checker);

  sched::BotState& bot = world.add_bot({100.0});
  // Save [4, 304] commits 40; machine dies in the next leg at t=305 having
  // 50 work (10 uncommitted). The server goes down before the machine comes
  // back, so the restart's retrieve fails at t=400 and 410 and the replica
  // degrades to progress 0.
  world.fail_machine_at(0, 305.0);
  world.fail_server_at(350.0);
  world.repair_machine_at(0, 400.0);
  world.sim.run();

  // From scratch with every save refused twice then skipped:
  // legs [410,414], [424,428], [438,440].
  EXPECT_TRUE(bot.completed());
  EXPECT_DOUBLE_EQ(bot.completion_time(), 440.0);
  const sim::FaultStats faults = world.engine->fault_stats(world.sim.now());
  EXPECT_EQ(faults.replicas_degraded, 1u);
  EXPECT_EQ(faults.retrieve_attempts_failed, 2u);
  EXPECT_EQ(world.engine->checkpoint_retrievals(), 0u);
  EXPECT_DOUBLE_EQ(world.engine->lost_work(), 10.0);
  // The stored checkpoint survives (no lose_data) — it was unreachable, not
  // wiped — but the degraded replica never used it.
  EXPECT_DOUBLE_EQ(bot.task(0).checkpointed_work(), 40.0);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(ServerFaults, CrashAbortsInFlightTransferAndRetrySucceeds) {
  WorldOptions options = fault_world_options();
  options.retry.max_attempts = 5;
  options.retry.backoff_base = 10.0;
  options.retry.backoff_cap = 10.0;
  World world(options);
  sim::InvariantChecker checker;
  world.engine->add_observer(checker);

  sched::BotState& bot = world.add_bot({100.0});
  world.fail_server_at(100.0);  // save 1 is in flight [4, 304]
  world.repair_server_at(105.0);
  world.sim.run();

  // Aborted at 100, retried at 110: save [110, 410] commits 40;
  // leg [410, 414]; save [414, 714]; final leg [714, 716].
  EXPECT_TRUE(bot.completed());
  EXPECT_DOUBLE_EQ(bot.completion_time(), 716.0);
  const sim::FaultStats faults = world.engine->fault_stats(world.sim.now());
  EXPECT_EQ(faults.save_attempts_failed, 1u);
  EXPECT_EQ(faults.transfer_retries, 1u);
  EXPECT_EQ(faults.transfer_timeouts, 0u);
  EXPECT_EQ(world.engine->checkpoints_saved(), 2u);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(ServerFaults, AttemptTimeoutAbandonsSlowTransfers) {
  WorldOptions options = fault_world_options();
  options.retry.max_attempts = 2;
  options.retry.backoff_base = 10.0;
  options.retry.backoff_cap = 10.0;
  options.retry.attempt_timeout = 100.0;  // every 300 s transfer times out
  World world(options);
  sim::InvariantChecker checker;
  world.engine->add_observer(checker);

  sched::BotState& bot = world.add_bot({100.0});
  world.sim.run();

  // Save 1: attempts [4,104] and [114,214] both time out -> skipped.
  // Leg [214,218]; save 2 attempts [218,318], [328,428] -> skipped.
  // Final leg [428,430].
  EXPECT_TRUE(bot.completed());
  EXPECT_DOUBLE_EQ(bot.completion_time(), 430.0);
  const sim::FaultStats faults = world.engine->fault_stats(world.sim.now());
  EXPECT_EQ(faults.transfer_timeouts, 4u);
  EXPECT_EQ(faults.saves_skipped, 2u);
  EXPECT_EQ(faults.save_attempts_failed, 4u);
  EXPECT_EQ(world.engine->checkpoints_saved(), 0u);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(ServerFaults, LoseDataWipesStoreAndRetrieveResumesFromCommitted) {
  WorldOptions options = fault_world_options();
  options.retry.max_attempts = 3;
  options.retry.backoff_base = 10.0;
  options.retry.backoff_cap = 10.0;
  options.server_faults.lose_data = true;
  World world(options);
  sim::InvariantChecker checker;
  world.engine->add_observer(checker);

  sched::BotState& bot = world.add_bot({100.0});
  // Save [4, 304] commits 40; machine dies at 305 and comes back at 320.
  // The restart's retrieve [320, 620] is in flight when the server crashes
  // at 330 and wipes the store; the retry at 340 "succeeds" but resumes at
  // the post-loss committed value: 0, from scratch.
  world.fail_machine_at(0, 305.0);
  world.fail_server_at(330.0);
  world.repair_server_at(335.0);
  world.repair_machine_at(0, 320.0);
  world.sim.run();

  // Retrieve [340, 640]; then full recompute with checkpoints:
  // leg [640,644], save [644,944] commits 40, leg [944,948],
  // save [948,1248] commits 80, final leg [1248,1250].
  EXPECT_TRUE(bot.completed());
  EXPECT_DOUBLE_EQ(bot.completion_time(), 1250.0);
  const sim::FaultStats faults = world.engine->fault_stats(world.sim.now());
  EXPECT_EQ(faults.checkpoints_lost, 1u);
  EXPECT_EQ(faults.retrieve_attempts_failed, 1u);
  EXPECT_EQ(faults.replicas_degraded, 0u);
  EXPECT_EQ(world.engine->checkpoint_retrievals(), 1u);
  EXPECT_EQ(world.engine->checkpoints_saved(), 3u);  // 40, then 40 and 80 again
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(ServerFaults, ReliableServerPathUnaffectedByRetryConfig) {
  // failable_server off: the retry policy is dead config and the timeline is
  // the classic one (compute legs + uninterrupted transfers).
  WorldOptions options = fault_world_options();
  options.failable_server = false;
  options.retry.max_attempts = 1;
  options.retry.attempt_timeout = 1.0;  // would abandon everything if live
  World world(options);
  sched::BotState& bot = world.add_bot({100.0});
  world.sim.run();

  // legs [0,4] save [4,304]; [304,308] save [308,608]; [608,610].
  EXPECT_TRUE(bot.completed());
  EXPECT_DOUBLE_EQ(bot.completion_time(), 610.0);
  const sim::FaultStats faults = world.engine->fault_stats(world.sim.now());
  EXPECT_EQ(faults.save_attempts_failed, 0u);
  EXPECT_EQ(faults.transfer_timeouts, 0u);
  EXPECT_EQ(faults.server_outages, 0u);
}

}  // namespace
}  // namespace dg::test
