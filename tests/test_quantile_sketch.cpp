// Tail-metrics substrate: log-spaced quantile sketch + time-decayed average.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "rng/random_stream.hpp"
#include "stats/quantile_sketch.hpp"

namespace dg::stats {
namespace {

TEST(QuantileSketch, EmptyState) {
  QuantileSketch sketch;
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_EQ(sketch.quantile(0.5), 0.0);
  EXPECT_EQ(sketch.tails().p99, 0.0);
  EXPECT_EQ(sketch.min(), 0.0);
  EXPECT_EQ(sketch.max(), 0.0);
  EXPECT_EQ(sketch.mean(), 0.0);
}

TEST(QuantileSketch, RejectsDegenerateGeometry) {
  EXPECT_THROW(QuantileSketch({0.0, 1e9, 64}), std::invalid_argument);
  EXPECT_THROW(QuantileSketch({-1.0, 1e9, 64}), std::invalid_argument);
  EXPECT_THROW(QuantileSketch({1.0, 1.0, 64}), std::invalid_argument);
  EXPECT_THROW(QuantileSketch({1.0, 0.5, 64}), std::invalid_argument);
  EXPECT_THROW(QuantileSketch({1e-3, 1e9, 0}), std::invalid_argument);
}

TEST(QuantileSketch, RejectsOutOfRangeQuantile) {
  QuantileSketch sketch;
  sketch.add(1.0);
  EXPECT_THROW((void)sketch.quantile(-0.01), std::invalid_argument);
  EXPECT_THROW((void)sketch.quantile(1.01), std::invalid_argument);
}

TEST(QuantileSketch, SingleValueQuantilesAreExact) {
  QuantileSketch sketch;
  sketch.add(123.0);
  // Clamping to the observed [min, max] collapses every quantile of a
  // single observation to that observation.
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0), 123.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 123.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), 123.0);
}

TEST(QuantileSketch, TracksExactMinMaxSumMean) {
  QuantileSketch sketch;
  for (double x : {4.0, 1.0, 9.0, 2.0}) sketch.add(x);
  EXPECT_EQ(sketch.count(), 4u);
  EXPECT_DOUBLE_EQ(sketch.min(), 1.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 9.0);
  EXPECT_DOUBLE_EQ(sketch.sum(), 16.0);
  EXPECT_DOUBLE_EQ(sketch.mean(), 4.0);
}

TEST(QuantileSketch, RelativeErrorWithinBucketResolution) {
  // Uniform [10, 1000): the sketch's log buckets bound the relative error of
  // any interior quantile by the bucket width 10^(1/64) - 1 ~ 3.7%.
  QuantileSketch sketch;
  rng::RandomStream stream(7);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) values.push_back(stream.uniform(10.0, 1000.0));
  for (double v : values) sketch.add(v);
  std::sort(values.begin(), values.end());
  for (double q : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    const double exact = values[static_cast<std::size_t>(q * 20000.0) - 1];
    EXPECT_NEAR(sketch.quantile(q), exact, exact * 0.04) << "q=" << q;
  }
}

TEST(QuantileSketch, UnderflowAndOverflowClampToObservedExtremes) {
  QuantileSketch sketch({1.0, 100.0, 32});
  sketch.add(0.25);   // below min_value (underflow)
  sketch.add(0.5);    // below min_value (underflow)
  sketch.add(10.0);   // in range
  sketch.add(2500.0); // above max_value (overflow)
  EXPECT_EQ(sketch.underflow(), 2u);
  EXPECT_EQ(sketch.overflow(), 1u);
  EXPECT_EQ(sketch.count(), 4u);
  // Quantiles inside the underflow mass report the observed minimum (not the
  // 1.0 bucket edge); inside the overflow mass, the observed maximum (not
  // the 100.0 edge).
  EXPECT_DOUBLE_EQ(sketch.quantile(0.25), 0.25);
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), 2500.0);
}

TEST(QuantileSketch, NonPositiveValuesCountAsUnderflow) {
  QuantileSketch sketch;
  sketch.add(0.0);
  sketch.add(-5.0);
  sketch.add(1.0);
  EXPECT_EQ(sketch.underflow(), 2u);
  EXPECT_EQ(sketch.count(), 3u);
  EXPECT_DOUBLE_EQ(sketch.min(), -5.0);
}

TEST(QuantileSketch, MergeMatchesSequentialBitForBit) {
  rng::RandomStream stream(11);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) values.push_back(stream.exponential_mean(300.0));

  QuantileSketch all, a, b;
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i < 2000 ? a : b).add(values[i]);
    all.add(values[i]);
  }
  QuantileSketch merged_ab = a;
  merged_ab.merge(b);
  QuantileSketch merged_ba = b;
  merged_ba.merge(a);

  EXPECT_EQ(merged_ab.count(), all.count());
  for (double q : {0.5, 0.95, 0.99}) {
    // Exact integer bucket counts: both merge orders reproduce the
    // sequential sketch's estimate exactly, not just approximately.
    EXPECT_EQ(merged_ab.quantile(q), all.quantile(q)) << "q=" << q;
    EXPECT_EQ(merged_ba.quantile(q), all.quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(merged_ab.min(), all.min());
  EXPECT_EQ(merged_ab.max(), all.max());
}

TEST(QuantileSketch, MergeEmptyIsIdentity) {
  QuantileSketch sketch, empty;
  sketch.add(5.0);
  sketch.add(50.0);
  const double before = sketch.quantile(0.5);
  sketch.merge(empty);
  EXPECT_EQ(sketch.count(), 2u);
  EXPECT_EQ(sketch.quantile(0.5), before);

  QuantileSketch target;
  target.merge(sketch);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_EQ(target.min(), 5.0);
  EXPECT_EQ(target.max(), 50.0);
}

TEST(QuantileSketch, MergeRejectsGeometryMismatch) {
  QuantileSketch a({1e-3, 1e9, 64});
  QuantileSketch b({1e-3, 1e9, 32});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(QuantileSketch, ResetKeepsBucketStorageAndBehavesLikeFresh) {
  QuantileSketch sketch;
  for (int i = 1; i <= 100; ++i) sketch.add(static_cast<double>(i));
  const std::size_t buckets = sketch.num_buckets();
  sketch.reset();
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.num_buckets(), buckets);
  EXPECT_EQ(sketch.quantile(0.99), 0.0);
  sketch.add(42.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 42.0);
}

TEST(QuantileSketch, ValuesJustUnderMaxStayInLastBucket) {
  const QuantileSketch::Geometry geometry{1.0, 1000.0, 8};
  QuantileSketch sketch(geometry);
  sketch.add(std::nextafter(1000.0, 0.0));
  EXPECT_EQ(sketch.overflow(), 0u);
  EXPECT_EQ(sketch.bucket_count(sketch.num_buckets() - 1), 1u);
}

TEST(TimeDecayedAverage, RejectsNonPositiveTau) {
  EXPECT_THROW(TimeDecayedAverage(0.0), std::invalid_argument);
  EXPECT_THROW(TimeDecayedAverage(-1.0), std::invalid_argument);
}

TEST(TimeDecayedAverage, ConstantSignalAveragesToItself) {
  TimeDecayedAverage avg(100.0);
  avg.update(0.0, 0.75);
  avg.advance_to(50.0);
  avg.advance_to(1234.0);
  EXPECT_NEAR(avg.average(1234.0), 0.75, 1e-12);
  EXPECT_NEAR(avg.average(9999.0), 0.75, 1e-12);
}

TEST(TimeDecayedAverage, BeforeAnyElapsedTimeReturnsCurrentValue) {
  TimeDecayedAverage avg(10.0, 0.0, 0.3);
  EXPECT_DOUBLE_EQ(avg.average(0.0), 0.3);
  EXPECT_DOUBLE_EQ(avg.current(), 0.3);
}

TEST(TimeDecayedAverage, RecentValuesDominateOldOnes) {
  // 0 for a long stretch, then 1 for one tau: the decayed average leans far
  // toward the recent value while the plain time-average would stay ~0.09.
  TimeDecayedAverage avg(100.0);
  avg.update(0.0, 0.0);
  avg.update(1000.0, 1.0);
  const double decayed = avg.average(1100.0);
  EXPECT_GT(decayed, 0.5);
  EXPECT_LT(decayed, 1.0);
}

TEST(TimeDecayedAverage, ForgetsOnTheTauTimescale) {
  // A burst of 1 followed by a long stretch of 0 decays toward 0.
  TimeDecayedAverage avg(100.0);
  avg.update(0.0, 1.0);
  avg.update(100.0, 0.0);
  EXPECT_LT(avg.average(1000.0), 0.01);
}

TEST(TimeDecayedAverage, AverageDoesNotMutateState) {
  TimeDecayedAverage avg(50.0);
  avg.update(0.0, 1.0);
  avg.update(10.0, 0.5);
  const double probe = avg.average(500.0);
  EXPECT_DOUBLE_EQ(avg.average(500.0), probe);  // repeatable
  // State still anchored at t=10: a subsequent update integrates the 0.5
  // segment from t=10, not from t=500.
  avg.update(20.0, 0.25);
  EXPECT_GT(avg.average(20.0), 0.25);
}

}  // namespace
}  // namespace dg::stats
