// Observer framework: invariant checker and timeline recorder against
// real simulation runs.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/invariant_checker.hpp"
#include "sim/simulation.hpp"
#include "sim/timeline.hpp"

namespace dg::sim {
namespace {

SimulationConfig observed_config(sched::PolicyKind policy, grid::AvailabilityLevel level) {
  SimulationConfig config;
  config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHet, level);
  config.workload = make_paper_workload(config.grid, 25000.0, workload::Intensity::kLow, 10);
  config.policy = policy;
  config.seed = 99;
  return config;
}

TEST(InvariantChecker, CleanRunHasNoViolations) {
  InvariantChecker checker;
  const SimulationResult result =
      Simulation(observed_config(sched::PolicyKind::kFcfsShare, grid::AvailabilityLevel::kLow))
          .run(&checker);
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_EQ(result.bots_completed, result.bots.size());
}

TEST(InvariantChecker, ThresholdRespectedForBoundedPolicies) {
  InvariantChecker checker;
  (void)Simulation(observed_config(sched::PolicyKind::kRoundRobin,
                                   grid::AvailabilityLevel::kMed))
      .run(&checker);
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_LE(checker.max_observed_replicas(), 2);
}

TEST(InvariantChecker, FcfsExclCanExceedNormalThreshold) {
  InvariantChecker checker;
  SimulationConfig config =
      observed_config(sched::PolicyKind::kFcfsExcl, grid::AvailabilityLevel::kHigh);
  // 20 tasks per bag on ~100 machines: plenty of spare machines to replicate.
  config.workload = make_paper_workload(config.grid, 125000.0, workload::Intensity::kLow, 5);
  (void)Simulation(config).run(&checker);
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_GT(checker.max_observed_replicas(), 2);
}

TEST(TimelineRecorder, CountsMatchSimulationResult) {
  TimelineRecorder timeline;
  const SimulationResult result =
      Simulation(observed_config(sched::PolicyKind::kRoundRobin, grid::AvailabilityLevel::kLow))
          .run(&timeline);
  EXPECT_EQ(timeline.count(TimelineEventKind::kBotSubmitted), result.bots.size());
  EXPECT_EQ(timeline.count(TimelineEventKind::kBotCompleted), result.bots_completed);
  EXPECT_EQ(timeline.count(TimelineEventKind::kReplicaStarted), result.replicas_started);
  EXPECT_EQ(timeline.count(TimelineEventKind::kReplicaFailed), result.replica_failures);
  EXPECT_EQ(timeline.count(TimelineEventKind::kTaskCompleted), result.tasks_completed);
  EXPECT_EQ(timeline.count(TimelineEventKind::kCheckpointSaved), result.checkpoints_saved);
  EXPECT_EQ(timeline.count(TimelineEventKind::kCheckpointRetrieved),
            result.checkpoint_retrievals);
  EXPECT_EQ(timeline.count(TimelineEventKind::kMachineFailed), result.machine_failures);
  // Every started replica eventually stops, one way or another.
  const std::size_t stops = timeline.count(TimelineEventKind::kReplicaCompleted) +
                            timeline.count(TimelineEventKind::kReplicaCancelled) +
                            timeline.count(TimelineEventKind::kReplicaFailed);
  EXPECT_EQ(stops, result.replicas_started);
}

TEST(TimelineRecorder, EventsAreTimeOrdered) {
  TimelineRecorder timeline;
  (void)Simulation(observed_config(sched::PolicyKind::kLongIdle, grid::AvailabilityLevel::kMed))
      .run(&timeline);
  const auto& events = timeline.events();
  ASSERT_FALSE(events.empty());
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].time, events[i - 1].time);
  }
}

TEST(TimelineRecorder, CsvExportHasHeaderAndRows) {
  TimelineRecorder timeline;
  (void)Simulation(observed_config(sched::PolicyKind::kFcfsShare,
                                   grid::AvailabilityLevel::kAlways))
      .run(&timeline);
  std::ostringstream csv;
  timeline.write_csv(csv);
  const std::string text = csv.str();
  EXPECT_EQ(text.rfind("time,kind,bot,task,machine,value\n", 0), 0u);
  EXPECT_NE(text.find("replica_started"), std::string::npos);
  EXPECT_NE(text.find("bot_completed"), std::string::npos);
}

TEST(TimelineRecorder, BoundedRecordingDropsExcessEvents) {
  TimelineRecorder timeline(/*max_events=*/10);
  (void)Simulation(observed_config(sched::PolicyKind::kRoundRobin,
                                   grid::AvailabilityLevel::kLow))
      .run(&timeline);
  EXPECT_EQ(timeline.events().size(), 10u);
  EXPECT_GT(timeline.dropped_events(), 0u);
}

TEST(TimelineEventKind, NamesAreUnique) {
  std::set<std::string_view> names;
  for (int k = 0; k <= static_cast<int>(TimelineEventKind::kMachineRepaired); ++k) {
    names.insert(to_string(static_cast<TimelineEventKind>(k)));
  }
  EXPECT_EQ(names.size(),
            static_cast<std::size_t>(TimelineEventKind::kMachineRepaired) + 1);
}

}  // namespace
}  // namespace dg::sim
