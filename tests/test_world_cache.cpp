// World-realization synthesis / replay / cache.
//
// The load-bearing property is bit-identity: a run that replays a cached
// WorldRealization must be indistinguishable — per-bag records, aggregate
// stats, kernel and scheduler counters, fault counters, serialized output —
// from the same run sampling its availability and server-fault processes
// live. The tests here check that at three levels (driver timeline, full
// simulation, experiment runner), plus the cache's accounting and eviction
// behaviour and the DGSCHED_WORLD_CACHE override.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "des/simulator.hpp"
#include "exp/runner.hpp"
#include "grid/desktop_grid.hpp"
#include "grid/realization.hpp"
#include "grid/world_cache.hpp"
#include "rng/random_stream.hpp"
#include "sim/result_io.hpp"
#include "sim/simulation.hpp"
#include "sim/workspace.hpp"

namespace dg {
namespace {

// --- driver-level timeline equality ---

/// One observed machine transition: (time, machine, went_down).
using Edge = std::tuple<double, grid::MachineId, bool>;

struct EdgeRecorder {
  std::vector<Edge> edges;
  des::Simulator* sim = nullptr;

  void on_failure(grid::Machine& machine) {
    edges.emplace_back(sim->now(), machine.id(), true);
  }
  void on_repair(grid::Machine& machine) {
    edges.emplace_back(sim->now(), machine.id(), false);
  }
};

grid::GridConfig small_grid(grid::AvailabilityLevel level, double total_power = 200.0) {
  grid::GridConfig config = grid::GridConfig::preset(grid::Heterogeneity::kHom, level);
  config.total_power = total_power;  // 20 machines at hom_power 10
  return config;
}

TEST(WorldRealization, ReplayDriverMatchesLiveProcessTimeline) {
  constexpr std::uint64_t kSeed = 7321;
  constexpr double kHorizon = 250000.0;
  const grid::GridConfig config = small_grid(grid::AvailabilityLevel::kLow);

  // Live: stochastic AvailabilityProcess per machine.
  des::Simulator live_sim;
  grid::DesktopGrid live_grid(config, live_sim, kSeed);
  EdgeRecorder live;
  live.sim = &live_sim;
  live_grid.start(grid::TransitionDelegate::to<&EdgeRecorder::on_failure>(live),
                  grid::TransitionDelegate::to<&EdgeRecorder::on_repair>(live));
  live_sim.run_until(kHorizon);

  // Replay: synthesized realization through the cursor driver.
  des::Simulator replay_sim;
  grid::DesktopGrid replay_grid(config, replay_sim, kSeed);
  const grid::WorldRealization world = grid::WorldRealization::synthesize(
      config.availability, config.checkpoint_server_faults, config.outages, replay_grid.size(), kHorizon, kSeed);
  grid::ReplayCursors cursors;
  grid::RealizedAvailabilityDriver driver(replay_sim, replay_grid, world, cursors);
  EdgeRecorder replay;
  replay.sim = &replay_sim;
  driver.start(grid::TransitionDelegate::to<&EdgeRecorder::on_failure>(replay),
               grid::TransitionDelegate::to<&EdgeRecorder::on_repair>(replay));
  replay_grid.start_outages(nullptr, nullptr);
  replay_sim.run_until(kHorizon);

  ASSERT_GT(live.edges.size(), 100u);
  ASSERT_EQ(replay.edges.size(), live.edges.size());
  for (std::size_t i = 0; i < live.edges.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(std::get<0>(replay.edges[i]), std::get<0>(live.edges[i]));  // bitwise time
    EXPECT_EQ(std::get<1>(replay.edges[i]), std::get<1>(live.edges[i]));
    EXPECT_EQ(std::get<2>(replay.edges[i]), std::get<2>(live.edges[i]));
  }

  // The lazy replay driver mirrors the live scheduling pattern exactly, so
  // even the kernel counters (which include scheduled-but-never-fired
  // successor events) agree.
  EXPECT_EQ(replay_sim.stats().events_scheduled, live_sim.stats().events_scheduled);
  EXPECT_EQ(replay_sim.stats().events_fired, live_sim.stats().events_fired);
  EXPECT_EQ(replay_grid.total_failures(), live_grid.total_failures());
  for (std::size_t m = 0; m < live_grid.size(); ++m) {
    EXPECT_EQ(replay_grid.machine(m).up(), live_grid.machine(m).up());
  }
}

TEST(WorldRealization, RecordsToFirstTransitionPastHorizon) {
  const grid::GridConfig config = small_grid(grid::AvailabilityLevel::kMed);
  constexpr double kHorizon = 100000.0;
  const grid::WorldRealization world = grid::WorldRealization::synthesize(
      config.availability, config.checkpoint_server_faults, config.outages, 20, kHorizon, 11);
  ASSERT_EQ(world.machine_offsets.size(), 21u);
  EXPECT_TRUE(world.covers(kHorizon));
  for (std::size_t m = 0; m < 20; ++m) {
    SCOPED_TRACE(m);
    const std::uint32_t begin = world.machine_offsets[m];
    const std::uint32_t end = world.machine_offsets[m + 1];
    ASSERT_GT(end, begin);
    // Strictly increasing, and exactly one transition past the horizon: the
    // dangling successor a live process would schedule but never fire.
    for (std::uint32_t i = begin + 1; i < end; ++i) {
      EXPECT_LT(world.machine_transitions[i - 1], world.machine_transitions[i]);
    }
    EXPECT_GT(world.machine_transitions[end - 1], kHorizon);
    if (end - begin > 1) {
      EXPECT_LE(world.machine_transitions[end - 2], kHorizon);
    }
  }
}

TEST(WorldRealization, LongerHorizonIsBitwisePrefixExtension) {
  const grid::GridConfig config = small_grid(grid::AvailabilityLevel::kLow);
  const grid::WorldRealization shorter = grid::WorldRealization::synthesize(
      config.availability, config.checkpoint_server_faults, config.outages, 20, 50000.0, 5);
  const grid::WorldRealization longer = grid::WorldRealization::synthesize(
      config.availability, config.checkpoint_server_faults, config.outages, 20, 200000.0, 5);
  for (std::size_t m = 0; m < 20; ++m) {
    SCOPED_TRACE(m);
    const std::uint32_t s_begin = shorter.machine_offsets[m];
    const std::uint32_t s_len = shorter.machine_offsets[m + 1] - s_begin;
    const std::uint32_t l_begin = longer.machine_offsets[m];
    ASSERT_GE(longer.machine_offsets[m + 1] - l_begin, s_len);
    for (std::uint32_t i = 0; i < s_len; ++i) {
      EXPECT_EQ(longer.machine_transitions[l_begin + i],
                shorter.machine_transitions[s_begin + i]);
    }
  }
}

TEST(WorldRealization, DisabledFailuresYieldEmptyTimelines) {
  const grid::WorldRealization world = grid::WorldRealization::synthesize(
      grid::AvailabilityModel::for_level(grid::AvailabilityLevel::kAlways),
      grid::CheckpointServerFaultModel{}, grid::OutageModel{}, 10, 1e6, 3);
  EXPECT_TRUE(world.machine_transitions.empty());
  EXPECT_TRUE(world.server_transitions.empty());
  ASSERT_EQ(world.machine_offsets.size(), 11u);
  for (const std::uint32_t offset : world.machine_offsets) EXPECT_EQ(offset, 0u);

  // And the replay driver schedules nothing for such a world.
  des::Simulator sim;
  grid::DesktopGrid grid(small_grid(grid::AvailabilityLevel::kAlways, 100.0), sim, 3);
  grid::ReplayCursors cursors;
  grid::RealizedAvailabilityDriver driver(sim, grid, world, cursors);
  driver.start(nullptr, nullptr);
  EXPECT_EQ(sim.stats().events_scheduled, 0u);
}

TEST(WorldRealization, ToTraceKeepsCompletePairsOnly) {
  const grid::GridConfig config = small_grid(grid::AvailabilityLevel::kMed);
  const grid::WorldRealization world = grid::WorldRealization::synthesize(
      config.availability, config.checkpoint_server_faults, config.outages, 8, 80000.0, 21);
  const grid::AvailabilityTrace trace = world.to_trace();
  ASSERT_EQ(trace.num_machines(), 8u);
  for (std::size_t m = 0; m < 8; ++m) {
    SCOPED_TRACE(m);
    const std::uint32_t len = world.machine_offsets[m + 1] - world.machine_offsets[m];
    EXPECT_EQ(trace.machine(m).downtime.size(), len / 2);
    if (len >= 2) {
      const std::uint32_t begin = world.machine_offsets[m];
      EXPECT_EQ(trace.machine(m).downtime.front().start, world.machine_transitions[begin]);
      EXPECT_EQ(trace.machine(m).downtime.front().end, world.machine_transitions[begin + 1]);
    }
  }
}

// --- full-simulation bit-identity, cache on vs off ---

sim::SimulationConfig cached_matrix_config(sched::PolicyKind policy,
                                           grid::AvailabilityLevel level, double granularity) {
  sim::SimulationConfig config;
  config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHet, level);
  config.workload =
      sim::make_paper_workload(config.grid, granularity, workload::Intensity::kLow, 10);
  config.policy = policy;
  config.warmup_bots = 2;
  config.seed = 90210;
  return config;
}

/// Field-level equality of the fields most likely to expose a replay
/// divergence, then full serialized equality for everything row-level.
void expect_bit_identical(const sim::SimulationResult& a, const sim::SimulationResult& b) {
  EXPECT_EQ(a.turnaround.mean(), b.turnaround.mean());
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.measured_availability, b.measured_availability);
  EXPECT_EQ(a.machine_failures, b.machine_failures);
  EXPECT_EQ(a.replica_failures, b.replica_failures);
  EXPECT_EQ(a.replicas_started, b.replicas_started);
  EXPECT_EQ(a.checkpoints_saved, b.checkpoints_saved);
  EXPECT_EQ(a.checkpoint_retrievals, b.checkpoint_retrievals);
  EXPECT_EQ(a.wasted_compute_time, b.wasted_compute_time);
  EXPECT_EQ(a.lost_work, b.lost_work);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.kernel.events_scheduled, b.kernel.events_scheduled);
  EXPECT_EQ(a.kernel.events_fired, b.kernel.events_fired);
  EXPECT_EQ(a.kernel.events_cancelled, b.kernel.events_cancelled);
  EXPECT_EQ(a.kernel.heap_peak, b.kernel.heap_peak);
  EXPECT_EQ(a.sched.triggers, b.sched.triggers);
  EXPECT_EQ(a.sched.machines_examined, b.sched.machines_examined);
  EXPECT_EQ(a.sched.selects, b.sched.selects);
  EXPECT_EQ(a.faults.server_outages, b.faults.server_outages);
  EXPECT_EQ(a.faults.server_downtime, b.faults.server_downtime);
  EXPECT_EQ(a.faults.transfer_retries, b.faults.transfer_retries);
  EXPECT_EQ(a.faults.replicas_degraded, b.faults.replicas_degraded);

  const auto serialize = [](const sim::SimulationResult& result) {
    std::ostringstream os;
    sim::write_bot_records_csv(os, result);
    sim::write_monitor_csv(os, result);
    sim::write_summary(os, result);
    return os.str();
  };
  EXPECT_EQ(serialize(a), serialize(b));
}

class WorldCacheBitIdentityTest
    : public ::testing::TestWithParam<std::tuple<sched::PolicyKind, grid::AvailabilityLevel,
                                                 double>> {};

TEST_P(WorldCacheBitIdentityTest, CachedReplayMatchesLiveSampling) {
  const auto [policy, level, granularity] = GetParam();
  sim::SimulationConfig config = cached_matrix_config(policy, level, granularity);

  const sim::SimulationResult live = sim::Simulation(config).run();

  config.world_cache = std::make_shared<grid::WorldCache>();
  const sim::SimulationResult cold = sim::Simulation(config).run();   // miss: synthesize
  const sim::SimulationResult warm = sim::Simulation(config).run();   // hit: replay resident
  expect_bit_identical(live, cold);
  expect_bit_identical(live, warm);

  const grid::WorldCacheStats stats = config.world_cache->stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyAvailabilityMatrix, WorldCacheBitIdentityTest,
    ::testing::Values(
        std::make_tuple(sched::PolicyKind::kFcfsShare, grid::AvailabilityLevel::kHigh, 25000.0),
        std::make_tuple(sched::PolicyKind::kRoundRobin, grid::AvailabilityLevel::kLow, 25000.0),
        std::make_tuple(sched::PolicyKind::kLongIdle, grid::AvailabilityLevel::kMed, 5000.0),
        std::make_tuple(sched::PolicyKind::kFcfsExcl, grid::AvailabilityLevel::kLow, 125000.0)));

TEST(WorldCacheBitIdentity, CoversCheckpointServerFaultReplay) {
  sim::SimulationConfig config =
      cached_matrix_config(sched::PolicyKind::kFcfsShare, grid::AvailabilityLevel::kMed, 25000.0);
  config.grid.checkpoint_server_faults.enabled = true;
  config.grid.checkpoint_server_faults.mtbf = 8000.0;
  config.grid.checkpoint_server_faults.mttr = 4000.0;

  const sim::SimulationResult live = sim::Simulation(config).run();
  ASSERT_GT(live.faults.server_outages, 0u);  // the fault path actually ran

  config.world_cache = std::make_shared<grid::WorldCache>();
  const sim::SimulationResult cached = sim::Simulation(config).run();
  expect_bit_identical(live, cached);
}

TEST(WorldCacheBitIdentity, WorkspaceRunsReplayIdentically) {
  // Both baseline and cached runs go through a warmed workspace so the
  // comparison isolates the replay path (a fresh-vs-warmed comparison would
  // trip over the documented arena_slabs reporting difference).
  sim::SimulationConfig config =
      cached_matrix_config(sched::PolicyKind::kRoundRobin, grid::AvailabilityLevel::kLow, 25000.0);
  sim::SimulationWorkspace live_workspace;
  (void)sim::Simulation(config).run(live_workspace);
  const sim::SimulationResult live = sim::Simulation(config).run(live_workspace);

  config.world_cache = std::make_shared<grid::WorldCache>();
  sim::SimulationWorkspace workspace;
  (void)sim::Simulation(config).run(workspace);             // warm the workspace + cache
  const sim::SimulationResult& warm = sim::Simulation(config).run(workspace);
  expect_bit_identical(live, warm);
}

// --- cache accounting and eviction ---

TEST(WorldCache, CountsHitsMissesAndExtensions) {
  const grid::GridConfig config = small_grid(grid::AvailabilityLevel::kLow);
  grid::WorldCache cache;
  const auto first =
      cache.acquire(config.availability, config.checkpoint_server_faults, config.outages, 20, 1000.0, 1);
  ASSERT_NE(first, nullptr);
  EXPECT_TRUE(first->covers(1000.0));
  // Same key, same horizon: resident.
  const auto again =
      cache.acquire(config.availability, config.checkpoint_server_faults, config.outages, 20, 1000.0, 1);
  EXPECT_EQ(again.get(), first.get());
  // Same key, horizon within the synthesis margin: still resident.
  const auto margin =
      cache.acquire(config.availability, config.checkpoint_server_faults, config.outages, 20, 1200.0, 1);
  EXPECT_EQ(margin.get(), first.get());
  // Different seed: independent world.
  const auto other =
      cache.acquire(config.availability, config.checkpoint_server_faults, config.outages, 20, 1000.0, 2);
  EXPECT_NE(other.get(), first.get());
  // Same key, horizon past the resident realization: re-synthesized longer.
  const auto extended =
      cache.acquire(config.availability, config.checkpoint_server_faults, config.outages, 20, 50000.0, 1);
  EXPECT_NE(extended.get(), first.get());
  EXPECT_TRUE(extended->covers(50000.0));

  const grid::WorldCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.extensions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_GE(stats.peak_bytes, stats.bytes);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 2.0 / 5.0);
}

TEST(WorldCache, ModelChangeMissesInsteadOfAliasing) {
  grid::WorldCache cache;
  const grid::GridConfig low = small_grid(grid::AvailabilityLevel::kLow);
  const grid::GridConfig med = small_grid(grid::AvailabilityLevel::kMed);
  const auto a =
      cache.acquire(low.availability, low.checkpoint_server_faults, low.outages, 20, 1000.0, 1);
  const auto b =
      cache.acquire(med.availability, med.checkpoint_server_faults, med.outages, 20, 1000.0, 1);
  const auto c =
      cache.acquire(low.availability, low.checkpoint_server_faults, low.outages, 10, 1000.0, 1);
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(WorldCache, EvictsLeastRecentlyUsedWithinBudget) {
  const grid::GridConfig config = small_grid(grid::AvailabilityLevel::kLow);
  // Budget sized to hold roughly one long realization, so a second seed
  // forces the first out.
  const grid::WorldRealization probe = grid::WorldRealization::synthesize(
      config.availability, config.checkpoint_server_faults, config.outages, 20, 1e6, 1);
  grid::WorldCache cache(probe.byte_size() + probe.byte_size() / 2);

  const auto first =
      cache.acquire(config.availability, config.checkpoint_server_faults, config.outages, 20, 1e6, 1);
  const auto second =
      cache.acquire(config.availability, config.checkpoint_server_faults, config.outages, 20, 1e6, 2);
  const grid::WorldCacheStats stats = cache.stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, cache.budget_bytes());
  // The just-built world is the one kept...
  const auto second_again =
      cache.acquire(config.availability, config.checkpoint_server_faults, config.outages, 20, 1e6, 2);
  EXPECT_EQ(second_again.get(), second.get());
  EXPECT_EQ(cache.stats().hits, 1u);
  // ...and the evicted realization stays valid through its shared_ptr.
  EXPECT_TRUE(first->covers(1e6));
  EXPECT_FALSE(first->machine_transitions.empty());
}

TEST(WorldCache, OversizedSingleWorldStaysResident) {
  // A budget smaller than any one realization must still serve (and keep)
  // the current world — the cache never evicts its only entry.
  const grid::GridConfig config = small_grid(grid::AvailabilityLevel::kLow);
  grid::WorldCache cache(1);
  const auto world =
      cache.acquire(config.availability, config.checkpoint_server_faults, config.outages, 20, 1e5, 1);
  ASSERT_NE(world, nullptr);
  const auto again =
      cache.acquire(config.availability, config.checkpoint_server_faults, config.outages, 20, 1e5, 1);
  EXPECT_EQ(again.get(), world.get());
  EXPECT_EQ(cache.stats().entries, 1u);
}

// --- runner integration ---

TEST(ExperimentRunnerWorldCache, CacheOnMatchesCacheOffCellForCell) {
  std::vector<exp::NamedConfig> cells;
  for (const sched::PolicyKind policy :
       {sched::PolicyKind::kFcfsShare, sched::PolicyKind::kRoundRobin}) {
    exp::NamedConfig cell;
    cell.label = sched::to_string(policy);
    cell.config =
        cached_matrix_config(policy, grid::AvailabilityLevel::kLow, 25000.0);
    cells.push_back(std::move(cell));
  }

  exp::RunOptions options;
  options.min_replications = 3;
  options.max_replications = 3;
  options.threads = 2;

  exp::RunOptions off = options;
  off.world_cache_bytes = 0;
  const std::vector<exp::CellResult> baseline = exp::ExperimentRunner(off).run(cells);

  exp::ExperimentRunner cached_runner(options);
  ASSERT_NE(cached_runner.world_cache(), nullptr);
  const std::vector<exp::CellResult> cached = cached_runner.run(cells);

  ASSERT_EQ(baseline.size(), cached.size());
  for (std::size_t c = 0; c < baseline.size(); ++c) {
    SCOPED_TRACE(baseline[c].label);
    EXPECT_EQ(baseline[c].replications, cached[c].replications);
    EXPECT_EQ(baseline[c].turnaround.stats().mean(), cached[c].turnaround.stats().mean());
    EXPECT_EQ(baseline[c].turnaround.stats().stddev(), cached[c].turnaround.stats().stddev());
    EXPECT_EQ(baseline[c].waiting.mean(), cached[c].waiting.mean());
    EXPECT_EQ(baseline[c].makespan.mean(), cached[c].makespan.mean());
    EXPECT_EQ(baseline[c].utilization.mean(), cached[c].utilization.mean());
    EXPECT_EQ(baseline[c].wasted_fraction.mean(), cached[c].wasted_fraction.mean());
    EXPECT_EQ(baseline[c].lost_work.mean(), cached[c].lost_work.mean());
    EXPECT_EQ(baseline[c].events_executed, cached[c].events_executed);
  }

  // Two cells x three replications over one cache: each of the three worlds
  // is synthesized once and hit once.
  const grid::WorldCacheStats stats = cached_runner.world_cache()->stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_GE(stats.hits, 3u);

  // The off-runner genuinely ran live.
  EXPECT_EQ(exp::ExperimentRunner(off).world_cache(), nullptr);
}

TEST(ExperimentRunnerWorldCache, CellEventCountsArePopulated) {
  exp::NamedConfig cell;
  cell.label = "events";
  cell.config = cached_matrix_config(sched::PolicyKind::kFcfsShare,
                                     grid::AvailabilityLevel::kHigh, 25000.0);
  exp::RunOptions options;
  options.min_replications = 2;
  options.max_replications = 2;
  options.threads = 1;
  const std::vector<exp::CellResult> results = exp::ExperimentRunner(options).run({cell});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].events_executed, 0u);
  EXPECT_EQ(results[0].replications, 2u);
}

// --- adversarially tiny budgets (PR 7) ---

TEST(WorldCacheTinyBudget, ExtensionPastHorizonWhileOverBudget) {
  // A budget of one byte keeps the cache permanently over budget; extending
  // the resident world past its horizon must still replace it in place (and
  // the replacement must cover the new horizon) instead of thrashing.
  const grid::GridConfig config = small_grid(grid::AvailabilityLevel::kLow);
  grid::WorldCache cache(1);
  const auto short_world =
      cache.acquire(config.availability, config.checkpoint_server_faults, config.outages, 20, 1e4, 1);
  const auto long_world =
      cache.acquire(config.availability, config.checkpoint_server_faults, config.outages, 20, 1e6, 1);
  EXPECT_NE(long_world.get(), short_world.get());
  EXPECT_TRUE(long_world->covers(1e6));
  // The longer world replaced the short one under the same key.
  const auto again =
      cache.acquire(config.availability, config.checkpoint_server_faults, config.outages, 20, 1e6, 1);
  EXPECT_EQ(again.get(), long_world.get());
  const grid::WorldCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.extensions, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  // The short world's timeline is a bitwise prefix of its extension
  // (machine 0; all but the final dangling past-horizon transition).
  const std::uint32_t short_count = short_world->machine_offsets[1];
  ASSERT_GE(short_count, 1u);
  ASSERT_GE(long_world->machine_offsets[1], short_count - 1);
  for (std::uint32_t i = 0; i + 1 < short_count; ++i) {
    EXPECT_EQ(long_world->machine_transitions[i], short_world->machine_transitions[i]) << i;
  }
}

TEST(WorldCacheTinyBudget, ChurnThroughManySeedsStaysWithinOneEntry) {
  const grid::GridConfig config = small_grid(grid::AvailabilityLevel::kMed);
  grid::WorldCache cache(1);  // nothing fits: every new seed evicts the last
  std::vector<std::shared_ptr<const grid::WorldRealization>> held;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    held.push_back(
        cache.acquire(config.availability, config.checkpoint_server_faults, config.outages, 20, 1e5, seed));
  }
  const grid::WorldCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 6u);
  EXPECT_EQ(stats.evictions, 5u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GE(stats.peak_bytes, stats.bytes);
  // Every evicted world remains valid and complete through its shared_ptr.
  for (const auto& world : held) {
    EXPECT_TRUE(world->covers(1e5));
    EXPECT_FALSE(world->machine_transitions.empty());
  }
  // Re-acquiring an evicted seed is a fresh miss, not a stale alias.
  const auto again =
      cache.acquire(config.availability, config.checkpoint_server_faults, config.outages, 20, 1e5, 1);
  EXPECT_EQ(cache.stats().misses, 7u);
  EXPECT_EQ(again->machine_transitions, held.front()->machine_transitions);
}

TEST(ExperimentRunnerWorldCache, EvictionMidCampaignStaysBitIdentical) {
  // A budget far below the campaign's resident set forces evictions *between
  // rounds and cells* of a real runner sweep; every cell metric must still
  // match the cache-off run exactly.
  std::vector<exp::NamedConfig> cells;
  for (const sched::PolicyKind policy :
       {sched::PolicyKind::kFcfsShare, sched::PolicyKind::kRoundRobin}) {
    exp::NamedConfig cell;
    cell.label = sched::to_string(policy);
    cell.config = cached_matrix_config(policy, grid::AvailabilityLevel::kLow, 25000.0);
    cells.push_back(std::move(cell));
  }

  exp::RunOptions options;
  options.min_replications = 4;
  options.max_replications = 4;
  options.threads = 2;

  exp::RunOptions off = options;
  off.world_cache_bytes = 0;
  const std::vector<exp::CellResult> baseline = exp::ExperimentRunner(off).run(cells);

  exp::RunOptions tiny = options;
  tiny.world_cache_bytes = 4096;  // a fraction of one realization
  exp::ExperimentRunner tiny_runner(tiny);
  const std::vector<exp::CellResult> churned = tiny_runner.run(cells);
  EXPECT_GE(tiny_runner.world_cache()->stats().evictions, 1u);

  ASSERT_EQ(baseline.size(), churned.size());
  for (std::size_t c = 0; c < baseline.size(); ++c) {
    SCOPED_TRACE(baseline[c].label);
    EXPECT_EQ(baseline[c].replications, churned[c].replications);
    EXPECT_EQ(baseline[c].turnaround.stats().mean(), churned[c].turnaround.stats().mean());
    EXPECT_EQ(baseline[c].waiting.mean(), churned[c].waiting.mean());
    EXPECT_EQ(baseline[c].makespan.mean(), churned[c].makespan.mean());
    EXPECT_EQ(baseline[c].events_executed, churned[c].events_executed);
    EXPECT_EQ(baseline[c].turnaround_tail.sum(), churned[c].turnaround_tail.sum());
  }
}

// --- batched synthesis (PR 7) ---

TEST(WorldRealization, BatchedSynthesisMatchesNaiveReference) {
  // The two-phase draw-then-fill synthesize() must reproduce, bit for bit,
  // the timelines of the obvious one-pass push_back implementation it
  // replaced — same streams, same draw order, same values.
  const grid::GridConfig config = small_grid(grid::AvailabilityLevel::kLow);
  grid::CheckpointServerFaultModel faults;
  faults.enabled = true;
  faults.mtbf = 8000.0;
  faults.mttr = 4000.0;
  constexpr double kHorizon = 200000.0;
  constexpr std::uint64_t kSeed = 424242;
  constexpr std::size_t kMachines = 20;

  // Naive reference, inlined from the pre-batching implementation.
  std::vector<double> ref_transitions;
  std::vector<std::uint32_t> ref_offsets{0};
  for (std::size_t m = 0; m < kMachines; ++m) {
    rng::RandomStream stream = rng::RandomStream::derive(kSeed, "grid.availability", m);
    double clock = 0.0;
    for (std::size_t k = 0;; ++k) {
      clock += k % 2 == 0 ? config.availability.time_to_failure.sample(stream)
                          : config.availability.time_to_repair.sample(stream);
      ref_transitions.push_back(clock);
      if (clock > kHorizon) break;
    }
    ref_offsets.push_back(static_cast<std::uint32_t>(ref_transitions.size()));
  }
  std::vector<double> ref_server;
  {
    rng::RandomStream stream = rng::RandomStream::derive(kSeed, "ckpt_server.faults");
    double clock = 0.0;
    for (std::size_t k = 0;; ++k) {
      clock += stream.exponential_mean(k % 2 == 0 ? faults.mtbf : faults.mttr);
      ref_server.push_back(clock);
      if (clock > kHorizon) break;
    }
  }

  // Run synthesize twice through one scratch: the second call exercises the
  // warmed-buffer path (clear + refill) and must be identical too.
  grid::SynthesisScratch scratch;
  for (int round = 0; round < 2; ++round) {
    SCOPED_TRACE(round);
    const grid::WorldRealization world = grid::WorldRealization::synthesize(
        config.availability, faults, grid::OutageModel{}, kMachines, kHorizon, kSeed, scratch);
    EXPECT_EQ(world.machine_transitions, ref_transitions);
    EXPECT_EQ(world.machine_offsets, ref_offsets);
    EXPECT_EQ(world.server_transitions, ref_server);
  }

  // And the scratch-free overload (fresh scratch per call) agrees as well.
  const grid::WorldRealization world = grid::WorldRealization::synthesize(
      config.availability, faults, grid::OutageModel{}, kMachines, kHorizon, kSeed);
  EXPECT_EQ(world.machine_transitions, ref_transitions);
  EXPECT_EQ(world.server_transitions, ref_server);
}

// --- correlated-outage recording and replay (PR 8) ---

grid::OutageModel test_outages() {
  grid::OutageModel outages;
  outages.enabled = true;
  outages.mean_interarrival = 30000.0;
  outages.fraction = 0.3;
  outages.duration = rng::UniformDist{2000.0, 8000.0};
  return outages;
}

TEST(WorldRealization, OutageTimelineShape) {
  const grid::GridConfig config = small_grid(grid::AvailabilityLevel::kMed);
  constexpr double kHorizon = 300000.0;
  const grid::WorldRealization world = grid::WorldRealization::synthesize(
      config.availability, config.checkpoint_server_faults, test_outages(), 20, kHorizon, 17);
  // Full strikes plus exactly one dangling past-horizon strike time.
  ASSERT_GE(world.outage_times.size(), 2u);
  ASSERT_EQ(world.outage_times.size(), world.outage_durations.size() + 1);
  EXPECT_EQ(world.machines_per_outage, 6u);  // floor(0.3 * 20)
  ASSERT_EQ(world.outage_machines.size(),
            world.outage_durations.size() * world.machines_per_outage);
  for (std::size_t k = 1; k < world.outage_times.size(); ++k) {
    EXPECT_LT(world.outage_times[k - 1], world.outage_times[k]);
  }
  EXPECT_LE(world.outage_times[world.outage_times.size() - 2], kHorizon);
  EXPECT_GT(world.outage_times.back(), kHorizon);
  for (const std::uint32_t victim : world.outage_machines) EXPECT_LT(victim, 20u);
  for (const double duration : world.outage_durations) EXPECT_GE(duration, 1.0);
}

TEST(WorldRealization, OutageReplayMatchesLiveProcessTimeline) {
  constexpr std::uint64_t kSeed = 5150;
  constexpr double kHorizon = 300000.0;
  grid::GridConfig config = small_grid(grid::AvailabilityLevel::kLow);
  config.outages = test_outages();

  // Live: stochastic availability processes + stochastic OutageProcess,
  // composed through the machines' down-cause counting.
  des::Simulator live_sim;
  grid::DesktopGrid live_grid(config, live_sim, kSeed);
  EdgeRecorder live;
  live.sim = &live_sim;
  live_grid.start(grid::TransitionDelegate::to<&EdgeRecorder::on_failure>(live),
                  grid::TransitionDelegate::to<&EdgeRecorder::on_repair>(live));
  live_sim.run_until(kHorizon);

  // Replay: both drivers off one synthesized realization.
  des::Simulator replay_sim;
  grid::DesktopGrid replay_grid(config, replay_sim, kSeed);
  const grid::WorldRealization world = grid::WorldRealization::synthesize(
      config.availability, config.checkpoint_server_faults, config.outages, replay_grid.size(),
      kHorizon, kSeed);
  grid::ReplayCursors cursors;
  grid::RealizedAvailabilityDriver driver(replay_sim, replay_grid, world, cursors);
  grid::RealizedOutageDriver outage_driver(replay_sim, replay_grid, world);
  EdgeRecorder replay;
  replay.sim = &replay_sim;
  driver.start(grid::TransitionDelegate::to<&EdgeRecorder::on_failure>(replay),
               grid::TransitionDelegate::to<&EdgeRecorder::on_repair>(replay));
  outage_driver.start(grid::TransitionDelegate::to<&EdgeRecorder::on_failure>(replay),
                      grid::TransitionDelegate::to<&EdgeRecorder::on_repair>(replay));
  replay_sim.run_until(kHorizon);

  ASSERT_GT(live_grid.outage_process().outages(), 2u);  // the outage path actually ran
  EXPECT_EQ(outage_driver.outages(), live_grid.outage_process().outages());
  EXPECT_EQ(outage_driver.machines_hit(), live_grid.outage_process().machines_hit());
  ASSERT_EQ(replay.edges.size(), live.edges.size());
  for (std::size_t i = 0; i < live.edges.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(std::get<0>(replay.edges[i]), std::get<0>(live.edges[i]));  // bitwise time
    EXPECT_EQ(std::get<1>(replay.edges[i]), std::get<1>(live.edges[i]));
    EXPECT_EQ(std::get<2>(replay.edges[i]), std::get<2>(live.edges[i]));
  }
  EXPECT_EQ(replay_sim.stats().events_scheduled, live_sim.stats().events_scheduled);
  EXPECT_EQ(replay_sim.stats().events_fired, live_sim.stats().events_fired);
  for (std::size_t m = 0; m < live_grid.size(); ++m) {
    EXPECT_EQ(replay_grid.machine(m).up(), live_grid.machine(m).up());
  }
}

TEST(WorldCacheBitIdentity, CoversCorrelatedOutageReplay) {
  // Satellite 1: an outage-enabled cell is bit-identical cache-on vs
  // cache-off, closing the world-cache/outage gap.
  sim::SimulationConfig config =
      cached_matrix_config(sched::PolicyKind::kRoundRobin, grid::AvailabilityLevel::kMed, 25000.0);
  config.grid.outages = test_outages();

  const sim::SimulationResult live = sim::Simulation(config).run();
  ASSERT_GT(live.machine_failures, 0u);

  config.world_cache = std::make_shared<grid::WorldCache>();
  const sim::SimulationResult cold = sim::Simulation(config).run();
  const sim::SimulationResult warm = sim::Simulation(config).run();
  expect_bit_identical(live, cold);
  expect_bit_identical(live, warm);
  EXPECT_EQ(config.world_cache->stats().misses, 1u);
  EXPECT_EQ(config.world_cache->stats().hits, 1u);
}

TEST(WorldCache, SignatureDistinguishesOutageModels) {
  const grid::GridConfig config = small_grid(grid::AvailabilityLevel::kLow);
  grid::WorldCache cache;
  grid::OutageModel outages = test_outages();
  const auto plain =
      cache.acquire(config.availability, config.checkpoint_server_faults, grid::OutageModel{},
                    20, 1000.0, 1);
  const auto stressed =
      cache.acquire(config.availability, config.checkpoint_server_faults, outages, 20, 1000.0, 1);
  EXPECT_NE(plain.get(), stressed.get());
  EXPECT_TRUE(plain->outage_times.empty());
  EXPECT_FALSE(stressed->outage_times.empty());
  // A different duration distribution is a different world, not an alias.
  outages.duration = rng::ExponentialDist{4000.0};
  const auto exponential =
      cache.acquire(config.availability, config.checkpoint_server_faults, outages, 20, 1000.0, 1);
  EXPECT_NE(exponential.get(), stressed.get());
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(RunOptions, WorldCacheEnvOverride) {
  ASSERT_EQ(setenv("DGSCHED_WORLD_CACHE", "12345", 1), 0);
  EXPECT_EQ(exp::RunOptions::from_env().world_cache_bytes, 12345u);
  ASSERT_EQ(setenv("DGSCHED_WORLD_CACHE", "0", 1), 0);
  EXPECT_EQ(exp::RunOptions::from_env().world_cache_bytes, 0u);
  ASSERT_EQ(setenv("DGSCHED_WORLD_CACHE", "nope", 1), 0);
  EXPECT_THROW((void)exp::RunOptions::from_env(), std::invalid_argument);
  ASSERT_EQ(unsetenv("DGSCHED_WORLD_CACHE"), 0);
  EXPECT_EQ(exp::RunOptions::from_env().world_cache_bytes,
            grid::WorldCache::kDefaultBudgetBytes);
}

}  // namespace
}  // namespace dg
