// RNG substrate: engines, stream derivation, distribution sampling.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <set>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/random_stream.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"

namespace dg::rng {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, KnownReferenceValue) {
  // Reference output of SplitMix64 for seed 1234567 (from the public-domain
  // reference implementation).
  SplitMix64 gen(1234567);
  EXPECT_EQ(gen.next(), 6457827717110365317ULL);
  EXPECT_EQ(gen.next(), 3203168211198807973ULL);
}

TEST(MixSeed, DistinctStreamIdsGiveDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t id = 0; id < 1000; ++id) seeds.insert(mix_seed(42, id));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(MixSeed, AdjacentIdsDecorrelated) {
  const std::uint64_t a = mix_seed(42, 7);
  const std::uint64_t b = mix_seed(42, 8);
  // Hamming distance should be near 32 for decorrelated 64-bit words.
  const int distance = std::popcount(a ^ b);
  EXPECT_GT(distance, 10);
  EXPECT_LT(distance, 54);
}

TEST(Xoshiro256, IsDeterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, ZeroSeedStillWorks) {
  Xoshiro256 gen(0);
  std::uint64_t x = gen.next();
  std::uint64_t y = gen.next();
  EXPECT_NE(x, y);
  EXPECT_NE(x, 0u);
}

TEST(Xoshiro256, JumpProducesDisjointSubsequence) {
  Xoshiro256 a(5);
  Xoshiro256 b(5);
  b.jump();
  std::set<std::uint64_t> first;
  for (int i = 0; i < 1000; ++i) first.insert(a.next());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(first.contains(b.next()));
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  SUCCEED();
}

TEST(Fnv1a64, KnownValues) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(fnv1a64("workload"), fnv1a64("engine"));
}

TEST(RandomStream, DerivedStreamsAreIndependent) {
  RandomStream a = RandomStream::derive(99, "alpha");
  RandomStream b = RandomStream::derive(99, "beta");
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.bits() == b.bits()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RandomStream, NamedDerivationIsStable) {
  RandomStream a = RandomStream::derive(99, "alpha", 3);
  RandomStream b = RandomStream::derive(99, "alpha", 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.bits(), b.bits());
}

TEST(RandomStream, Uniform01InRange) {
  RandomStream stream(1);
  for (int i = 0; i < 100000; ++i) {
    const double u = stream.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RandomStream, Uniform01MeanAndVariance) {
  RandomStream stream(2);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = stream.uniform01();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
}

TEST(RandomStream, UniformRangeRespected) {
  RandomStream stream(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = stream.uniform(240.0, 720.0);
    EXPECT_GE(x, 240.0);
    EXPECT_LT(x, 720.0);
  }
}

TEST(RandomStream, UniformIntInclusiveBounds) {
  RandomStream stream(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t x = stream.uniform_int(3, 7);
    EXPECT_GE(x, 3u);
    EXPECT_LE(x, 7u);
    saw_lo |= (x == 3);
    saw_hi |= (x == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomStream, UniformIntSingleton) {
  RandomStream stream(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(stream.uniform_int(9, 9), 9u);
}

TEST(RandomStream, UniformIntRoughlyUniform) {
  RandomStream stream(6);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[stream.uniform_int(0, 9)];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 - n / 50);
    EXPECT_LT(c, n / 10 + n / 50);
  }
}

TEST(RandomStream, ExponentialMean) {
  RandomStream stream(7);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += stream.exponential_mean(5000.0);
  EXPECT_NEAR(sum / n, 5000.0, 60.0);
}

TEST(RandomStream, ExponentialIsPositive) {
  RandomStream stream(8);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(stream.exponential_mean(1.0), 0.0);
}

TEST(RandomStream, NormalMoments) {
  RandomStream stream(9);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = stream.normal(1800.0, 300.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 1800.0, 5.0);
  EXPECT_NEAR(std::sqrt(sum_sq / n - mean * mean), 300.0, 5.0);
}

TEST(RandomStream, TruncatedNormalStaysInBounds) {
  RandomStream stream(10);
  for (int i = 0; i < 20000; ++i) {
    const double x = stream.truncated_normal(1800.0, 300.0, 900.0, 2700.0);
    EXPECT_GE(x, 900.0);
    EXPECT_LE(x, 2700.0);
  }
}

TEST(RandomStream, TruncatedNormalDegenerateRangeClamps) {
  RandomStream stream(11);
  // Range far in the tail: rejection gives up and clamps to the range.
  const double x = stream.truncated_normal(0.0, 1.0, 50.0, 50.1);
  EXPECT_GE(x, 50.0);
  EXPECT_LE(x, 50.1);
}

TEST(RandomStream, WeibullShapeOneIsExponential) {
  RandomStream stream(12);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += stream.weibull(1.0, 100.0);
  EXPECT_NEAR(sum / n, 100.0, 2.0);  // Weibull(1, s) mean = s
}

TEST(RandomStream, WeibullMeanMatchesGammaFormula) {
  RandomStream stream(13);
  const double shape = 0.7, scale = 1000.0;
  const double expected = scale * std::tgamma(1.0 + 1.0 / shape);
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += stream.weibull(shape, scale);
  EXPECT_NEAR(sum / n, expected, expected * 0.02);
}

TEST(RandomStream, BernoulliProbability) {
  RandomStream stream(14);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += stream.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

// --- distribution descriptors ---

TEST(Distributions, UniformMeanAndSample) {
  UniformDist d{240.0, 720.0};
  EXPECT_DOUBLE_EQ(d.mean(), 480.0);
  RandomStream stream(15);
  for (int i = 0; i < 1000; ++i) {
    const double x = d.sample(stream);
    EXPECT_GE(x, 240.0);
    EXPECT_LT(x, 720.0);
  }
}

TEST(Distributions, WeibullScaleForMeanRoundTrips) {
  for (double shape : {0.5, 0.7, 1.0, 2.0}) {
    const double scale = WeibullDist::scale_for_mean(88200.0, shape);
    WeibullDist d{shape, scale};
    EXPECT_NEAR(d.mean(), 88200.0, 1e-6);
  }
}

TEST(Distributions, ConstantAlwaysReturnsValue) {
  ConstantDist d{42.0};
  RandomStream stream(16);
  EXPECT_DOUBLE_EQ(d.mean(), 42.0);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(d.sample(stream), 42.0);
}

TEST(Distributions, VariantDispatchesMeanAndSample) {
  Distribution d = ExponentialDist{123.0};
  EXPECT_DOUBLE_EQ(d.mean(), 123.0);
  RandomStream stream(17);
  EXPECT_GT(d.sample(stream), 0.0);
}

TEST(Distributions, DescribeNamesTheDistribution) {
  EXPECT_NE(Distribution(UniformDist{0, 1}).describe().find("Uniform"), std::string::npos);
  EXPECT_NE(Distribution(WeibullDist{0.7, 2.0}).describe().find("Weibull"), std::string::npos);
  EXPECT_NE(Distribution(TruncatedNormalDist{}).describe().find("TruncNormal"),
            std::string::npos);
  EXPECT_NE(Distribution(ExponentialDist{1}).describe().find("Exponential"), std::string::npos);
  EXPECT_NE(Distribution(ConstantDist{1}).describe().find("Constant"), std::string::npos);
}

}  // namespace
}  // namespace dg::rng
