// Experiment harness: replication control, CI stopping, figure matrices,
// table rendering.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "exp/paper.hpp"
#include "exp/runner.hpp"

namespace dg::exp {
namespace {

sim::SimulationConfig tiny_config(sched::PolicyKind policy, std::size_t num_bots = 8) {
  sim::SimulationConfig config;
  config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHom,
                                         grid::AvailabilityLevel::kAlways);
  config.workload =
      sim::make_paper_workload(config.grid, 25000.0, workload::Intensity::kLow, num_bots);
  config.policy = policy;
  return config;
}

TEST(ExperimentRunner, RunsMinimumReplications) {
  RunOptions options;
  options.min_replications = 3;
  options.max_replications = 3;
  options.threads = 2;
  ExperimentRunner runner(options);
  const auto results = runner.run({{"cell", tiny_config(sched::PolicyKind::kFcfsShare)}});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].replications, 3u);
  EXPECT_EQ(results[0].label, "cell");
  EXPECT_GT(results[0].turnaround.stats().mean(), 0.0);
}

TEST(ExperimentRunner, AddsReplicationsUntilPrecise) {
  RunOptions options;
  options.min_replications = 3;
  options.max_replications = 20;
  options.target_relative_error = 0.15;
  options.threads = 2;
  ExperimentRunner runner(options);
  const auto results = runner.run({{"cell", tiny_config(sched::PolicyKind::kRoundRobin)}});
  const CellResult& cell = results[0];
  EXPECT_GE(cell.replications, 3u);
  if (cell.replications < 20u) {
    EXPECT_LE(cell.turnaround_ci().relative_error(), 0.15);
  }
}

TEST(ExperimentRunner, PreservesCellOrder) {
  RunOptions options;
  options.min_replications = 2;
  options.max_replications = 2;
  options.threads = 4;
  ExperimentRunner runner(options);
  const auto results = runner.run({{"a", tiny_config(sched::PolicyKind::kFcfsShare)},
                                   {"b", tiny_config(sched::PolicyKind::kRoundRobin)},
                                   {"c", tiny_config(sched::PolicyKind::kLongIdle)}});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].label, "a");
  EXPECT_EQ(results[1].label, "b");
  EXPECT_EQ(results[2].label, "c");
}

TEST(ExperimentRunner, CommonRandomNumbersAcrossCells) {
  // Two cells with identical configs see identical replication seeds, hence
  // identical results.
  RunOptions options;
  options.min_replications = 2;
  options.max_replications = 2;
  options.threads = 2;
  ExperimentRunner runner(options);
  const auto results = runner.run({{"x", tiny_config(sched::PolicyKind::kFcfsShare)},
                                   {"y", tiny_config(sched::PolicyKind::kFcfsShare)}});
  EXPECT_EQ(results[0].turnaround.stats().mean(), results[1].turnaround.stats().mean());
}

TEST(RunOptions, EnvOverridesApply) {
  ::setenv("DGSCHED_MIN_REPS", "4", 1);
  ::setenv("DGSCHED_MAX_REPS", "9", 1);
  ::setenv("DGSCHED_TRE", "0.1", 1);
  ::setenv("DGSCHED_SEED", "123", 1);
  const RunOptions options = RunOptions::from_env();
  EXPECT_EQ(options.min_replications, 4u);
  EXPECT_EQ(options.max_replications, 9u);
  EXPECT_DOUBLE_EQ(options.target_relative_error, 0.1);
  EXPECT_EQ(options.base_seed, 123u);
  ::unsetenv("DGSCHED_MIN_REPS");
  ::unsetenv("DGSCHED_MAX_REPS");
  ::unsetenv("DGSCHED_TRE");
  ::unsetenv("DGSCHED_SEED");
}

TEST(RunOptions, MaxClampedToMin) {
  ::setenv("DGSCHED_MIN_REPS", "10", 1);
  ::setenv("DGSCHED_MAX_REPS", "2", 1);
  const RunOptions options = RunOptions::from_env();
  EXPECT_EQ(options.max_replications, 10u);
  ::unsetenv("DGSCHED_MIN_REPS");
  ::unsetenv("DGSCHED_MAX_REPS");
}

TEST(EnvNumBots, ReadsOverride) {
  ::setenv("DGSCHED_BOTS", "42", 1);
  EXPECT_EQ(env_num_bots().value(), 42u);
  ::unsetenv("DGSCHED_BOTS");
  EXPECT_FALSE(env_num_bots().has_value());
}

// --- figure specs ---

TEST(FigureSpecs, Figure1HasFourPanelsAtHighAvail) {
  const FigureSpec spec = figure1_spec();
  EXPECT_EQ(spec.availability, grid::AvailabilityLevel::kHigh);
  EXPECT_EQ(spec.panels.size(), 4u);
  EXPECT_EQ(spec.granularities.size(), 4u);
  EXPECT_EQ(spec.policies.size(), 5u);
}

TEST(FigureSpecs, Figure2IsLowAvail) {
  EXPECT_EQ(figure2_spec().availability, grid::AvailabilityLevel::kLow);
}

TEST(FigureSpecs, UnreportedIsMedAvailMedIntensity) {
  const FigureSpec spec = unreported_spec();
  EXPECT_EQ(spec.availability, grid::AvailabilityLevel::kMed);
  for (const PanelSpec& panel : spec.panels) {
    EXPECT_EQ(panel.intensity, workload::Intensity::kMed);
  }
}

TEST(FigureCells, MatrixSizeAndLabels) {
  const FigureSpec spec = figure1_spec();
  const auto cells = figure_cells(spec);
  EXPECT_EQ(cells.size(), 4u * 4u * 5u);
  EXPECT_NE(cells[0].label.find("Hom-HighAvail"), std::string::npos);
  EXPECT_NE(cells[0].label.find("FCFS-Excl"), std::string::npos);
  EXPECT_NE(cells[0].label.find("g=1000"), std::string::npos);
}

TEST(FigureCells, ConfigsCarryPanelSettings) {
  FigureSpec spec = figure2_spec();
  spec.num_bots = 17;
  const auto cells = figure_cells(spec);
  for (const NamedConfig& cell : cells) {
    EXPECT_EQ(cell.config.workload.num_bots, 17u);
    EXPECT_NEAR(cell.config.grid.availability.availability(), 0.5, 1e-9);
  }
  // Intensity is reflected in the arrival rate: last panel (High) has a
  // higher rate than the first (Low) at equal granularity.
  EXPECT_GT(cells.back().config.workload.arrival_rate, cells.front().config.workload.arrival_rate);
}

TEST(RenderFigure, ProducesTablesAndCsv) {
  FigureSpec spec;
  spec.title = "Test figure";
  spec.availability = grid::AvailabilityLevel::kHigh;
  spec.panels = {{grid::Heterogeneity::kHom, workload::Intensity::kLow}};
  spec.granularities = {1000.0};
  spec.policies = {sched::PolicyKind::kFcfsShare, sched::PolicyKind::kRoundRobin};

  std::vector<CellResult> results(2);
  results[0].label = "a";
  results[0].turnaround.add(100.0);
  results[0].turnaround.add(102.0);
  results[1].label = "b";
  results[1].turnaround.add(500.0);
  results[1].turnaround.add(501.0);
  results[1].saturated_replications = 1;

  std::ostringstream os, csv;
  render_figure(spec, results, os, &csv);
  const std::string text = os.str();
  EXPECT_NE(text.find("Test figure"), std::string::npos);
  EXPECT_NE(text.find("FCFS-Share"), std::string::npos);
  EXPECT_NE(text.find("101"), std::string::npos);   // mean of cell a
  EXPECT_NE(text.find("SAT"), std::string::npos);   // saturation marker
  const std::string csv_text = csv.str();
  EXPECT_NE(csv_text.find("mean_turnaround"), std::string::npos);
  EXPECT_NE(csv_text.find("RR"), std::string::npos);
}

}  // namespace
}  // namespace dg::exp
