// Experiment harness: replication control, CI stopping, figure matrices,
// table rendering.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

#include "exp/paper.hpp"
#include "exp/runner.hpp"

namespace dg::exp {
namespace {

sim::SimulationConfig tiny_config(sched::PolicyKind policy, std::size_t num_bots = 8) {
  sim::SimulationConfig config;
  config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHom,
                                         grid::AvailabilityLevel::kAlways);
  config.workload =
      sim::make_paper_workload(config.grid, 25000.0, workload::Intensity::kLow, num_bots);
  config.policy = policy;
  return config;
}

TEST(ExperimentRunner, RunsMinimumReplications) {
  RunOptions options;
  options.min_replications = 3;
  options.max_replications = 3;
  options.threads = 2;
  ExperimentRunner runner(options);
  const auto results = runner.run({{"cell", tiny_config(sched::PolicyKind::kFcfsShare)}});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].replications, 3u);
  EXPECT_EQ(results[0].label, "cell");
  EXPECT_GT(results[0].turnaround.stats().mean(), 0.0);
}

TEST(ExperimentRunner, AddsReplicationsUntilPrecise) {
  RunOptions options;
  options.min_replications = 3;
  options.max_replications = 20;
  options.target_relative_error = 0.15;
  options.threads = 2;
  ExperimentRunner runner(options);
  const auto results = runner.run({{"cell", tiny_config(sched::PolicyKind::kRoundRobin)}});
  const CellResult& cell = results[0];
  EXPECT_GE(cell.replications, 3u);
  if (cell.replications < 20u) {
    EXPECT_LE(cell.turnaround_ci().relative_error(), 0.15);
  }
}

TEST(ExperimentRunner, PreservesCellOrder) {
  RunOptions options;
  options.min_replications = 2;
  options.max_replications = 2;
  options.threads = 4;
  ExperimentRunner runner(options);
  const auto results = runner.run({{"a", tiny_config(sched::PolicyKind::kFcfsShare)},
                                   {"b", tiny_config(sched::PolicyKind::kRoundRobin)},
                                   {"c", tiny_config(sched::PolicyKind::kLongIdle)}});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].label, "a");
  EXPECT_EQ(results[1].label, "b");
  EXPECT_EQ(results[2].label, "c");
}

TEST(ExperimentRunner, CommonRandomNumbersAcrossCells) {
  // Two cells with identical configs see identical replication seeds, hence
  // identical results.
  RunOptions options;
  options.min_replications = 2;
  options.max_replications = 2;
  options.threads = 2;
  ExperimentRunner runner(options);
  const auto results = runner.run({{"x", tiny_config(sched::PolicyKind::kFcfsShare)},
                                   {"y", tiny_config(sched::PolicyKind::kFcfsShare)}});
  EXPECT_EQ(results[0].turnaround.stats().mean(), results[1].turnaround.stats().mean());
}

TEST(ExperimentRunner, ReplicationCapHonored) {
  // An unreachable precision target must stop exactly at the cap.
  RunOptions options;
  options.min_replications = 2;
  options.max_replications = 5;
  options.target_relative_error = 1e-9;
  options.threads = 2;
  ExperimentRunner runner(options);
  const auto results = runner.run({{"cell", tiny_config(sched::PolicyKind::kFcfsShare)}});
  EXPECT_EQ(results[0].replications, 5u);
  EXPECT_FALSE(results[0].saturated());
}

TEST(ExperimentRunner, SaturatedCellStopsAtMinimumAndIsCounted) {
  sim::SimulationConfig config = tiny_config(sched::PolicyKind::kFcfsShare);
  config.max_sim_time = 1.0;  // horizon hit with every bag incomplete
  RunOptions options;
  options.min_replications = 3;
  options.max_replications = 12;
  options.target_relative_error = 1e-9;  // would keep going if not saturated
  options.threads = 2;
  ExperimentRunner runner(options);
  const auto results = runner.run({{"sat", config}});
  EXPECT_EQ(results[0].replications, 3u);
  EXPECT_EQ(results[0].saturated_replications, 3u);
  EXPECT_TRUE(results[0].saturated());
}

TEST(ExperimentRunner, WorkspacePathMatchesFreshPath) {
  const std::vector<NamedConfig> cells = {{"a", tiny_config(sched::PolicyKind::kFcfsShare)},
                                          {"b", tiny_config(sched::PolicyKind::kLongIdle, 6)}};
  RunOptions options;
  options.min_replications = 3;
  options.max_replications = 6;
  options.target_relative_error = 0.2;
  options.threads = 2;

  options.reuse_workspaces = true;
  const auto reused = ExperimentRunner(options).run(cells);
  options.reuse_workspaces = false;
  const auto fresh = ExperimentRunner(options).run(cells);

  ASSERT_EQ(reused.size(), fresh.size());
  for (std::size_t i = 0; i < reused.size(); ++i) {
    EXPECT_EQ(reused[i].replications, fresh[i].replications);
    EXPECT_EQ(reused[i].turnaround.stats().mean(), fresh[i].turnaround.stats().mean());
    EXPECT_EQ(reused[i].turnaround.stats().variance(), fresh[i].turnaround.stats().variance());
    EXPECT_EQ(reused[i].waiting.mean(), fresh[i].waiting.mean());
    EXPECT_EQ(reused[i].makespan.mean(), fresh[i].makespan.mean());
    EXPECT_EQ(reused[i].utilization.mean(), fresh[i].utilization.mean());
    EXPECT_EQ(reused[i].decayed_utilization.mean(), fresh[i].decayed_utilization.mean());
    EXPECT_EQ(reused[i].wasted_fraction.mean(), fresh[i].wasted_fraction.mean());
    EXPECT_EQ(reused[i].saturated_replications, fresh[i].saturated_replications);
    EXPECT_EQ(reused[i].turnaround_tail.quantile(0.99), fresh[i].turnaround_tail.quantile(0.99));
    EXPECT_EQ(reused[i].slowdown_tail.quantile(0.99), fresh[i].slowdown_tail.quantile(0.99));
  }
}

TEST(ExperimentRunner, BatchShapeDoesNotChangeResults) {
  const std::vector<NamedConfig> cells = {{"a", tiny_config(sched::PolicyKind::kFcfsShare)},
                                          {"b", tiny_config(sched::PolicyKind::kRoundRobin)}};
  RunOptions options;
  options.min_replications = 4;
  options.max_replications = 4;
  options.threads = 3;

  options.batch_size = 1;
  const auto fine = ExperimentRunner(options).run(cells);
  options.batch_size = 7;  // bigger than a whole round
  const auto coarse = ExperimentRunner(options).run(cells);

  ASSERT_EQ(fine.size(), coarse.size());
  for (std::size_t i = 0; i < fine.size(); ++i) {
    EXPECT_EQ(fine[i].turnaround.stats().mean(), coarse[i].turnaround.stats().mean());
    EXPECT_EQ(fine[i].replications, coarse[i].replications);
  }
}

TEST(ExperimentRunner, CellTailSketchesPoolEveryMeasuredBag) {
  RunOptions options;
  options.min_replications = 3;
  options.max_replications = 3;
  options.threads = 2;
  ExperimentRunner runner(options);
  const auto results = runner.run({{"cell", tiny_config(sched::PolicyKind::kFcfsShare)}});
  const CellResult& cell = results[0];
  // 8 bags per replication, no warmup filter: 24 pooled observations.
  EXPECT_EQ(cell.turnaround_tail.count(), 24u);
  EXPECT_EQ(cell.slowdown_tail.count(), 24u);
  // Gaps start at each replication's second completion: 7 per replication.
  EXPECT_EQ(cell.completion_gap_tail.count(), 21u);
  EXPECT_GE(cell.turnaround_tail.quantile(0.99), cell.turnaround_tail.quantile(0.50));
  EXPECT_GE(cell.slowdown_tail.quantile(0.95), 1.0);  // slowdown >= 1 by construction
  EXPECT_EQ(cell.decayed_utilization.count(), 3u);
  EXPECT_GT(cell.decayed_utilization.mean(), 0.0);
  EXPECT_LE(cell.decayed_utilization.mean(), 1.0);
}

TEST(ExperimentRunner, MergedTailsBitIdenticalAcrossThreadsBatchAndWorldCache) {
  // The fold-in-build-order contract extended to the tail sketches: exact
  // integer bucket merges make the cell-level p50/p95/p99 identical across
  // thread counts, batch shapes, and the world cache on/off — on a volatile
  // grid where the cache actually replays realizations.
  sim::SimulationConfig volatile_config = tiny_config(sched::PolicyKind::kRoundRobin);
  volatile_config.grid =
      grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kLow);
  volatile_config.workload = sim::make_paper_workload(volatile_config.grid, 25000.0,
                                                      workload::Intensity::kLow, 6);
  const std::vector<NamedConfig> cells = {{"v", volatile_config},
                                          {"s", tiny_config(sched::PolicyKind::kFcfsShare, 6)}};

  struct Variant {
    std::size_t threads;
    std::size_t batch;
    std::size_t cache_bytes;
  };
  const Variant variants[] = {{1, 1, 0},
                              {3, 1, 0},
                              {3, 5, 0},
                              {1, 1, grid::WorldCache::kDefaultBudgetBytes},
                              {4, 2, grid::WorldCache::kDefaultBudgetBytes}};

  std::vector<std::vector<CellResult>> runs;
  for (const Variant& variant : variants) {
    RunOptions options;
    options.min_replications = 3;
    options.max_replications = 3;
    options.threads = variant.threads;
    options.batch_size = variant.batch;
    options.world_cache_bytes = variant.cache_bytes;
    runs.push_back(ExperimentRunner(options).run(cells));
  }

  const std::vector<CellResult>& reference = runs.front();
  for (std::size_t v = 1; v < runs.size(); ++v) {
    ASSERT_EQ(runs[v].size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      const CellResult& got = runs[v][i];
      const CellResult& want = reference[i];
      EXPECT_EQ(got.turnaround_tail.count(), want.turnaround_tail.count());
      for (double q : {0.5, 0.95, 0.99}) {
        EXPECT_EQ(got.turnaround_tail.quantile(q), want.turnaround_tail.quantile(q))
            << "variant " << v << " cell " << i << " q " << q;
        EXPECT_EQ(got.slowdown_tail.quantile(q), want.slowdown_tail.quantile(q))
            << "variant " << v << " cell " << i << " q " << q;
        EXPECT_EQ(got.completion_gap_tail.quantile(q), want.completion_gap_tail.quantile(q))
            << "variant " << v << " cell " << i << " q " << q;
      }
      EXPECT_EQ(got.turnaround_tail.sum(), want.turnaround_tail.sum());
      EXPECT_EQ(got.decayed_utilization.mean(), want.decayed_utilization.mean());
    }
  }
}

TEST(RunOptions, EnvOverridesApply) {
  ::setenv("DGSCHED_MIN_REPS", "4", 1);
  ::setenv("DGSCHED_MAX_REPS", "9", 1);
  ::setenv("DGSCHED_TRE", "0.1", 1);
  ::setenv("DGSCHED_SEED", "123", 1);
  const RunOptions options = RunOptions::from_env();
  EXPECT_EQ(options.min_replications, 4u);
  EXPECT_EQ(options.max_replications, 9u);
  EXPECT_DOUBLE_EQ(options.target_relative_error, 0.1);
  EXPECT_EQ(options.base_seed, 123u);
  ::unsetenv("DGSCHED_MIN_REPS");
  ::unsetenv("DGSCHED_MAX_REPS");
  ::unsetenv("DGSCHED_TRE");
  ::unsetenv("DGSCHED_SEED");
}

TEST(RunOptions, MaxClampedToMin) {
  ::setenv("DGSCHED_MIN_REPS", "10", 1);
  ::setenv("DGSCHED_MAX_REPS", "2", 1);
  const RunOptions options = RunOptions::from_env();
  EXPECT_EQ(options.max_replications, 10u);
  ::unsetenv("DGSCHED_MIN_REPS");
  ::unsetenv("DGSCHED_MAX_REPS");
}

TEST(RunOptions, WorkspaceAndBatchEnvOverrides) {
  ::setenv("DGSCHED_WORKSPACES", "0", 1);
  ::setenv("DGSCHED_BATCH", "16", 1);
  const RunOptions options = RunOptions::from_env();
  EXPECT_FALSE(options.reuse_workspaces);
  EXPECT_EQ(options.batch_size, 16u);
  ::unsetenv("DGSCHED_WORKSPACES");
  ::unsetenv("DGSCHED_BATCH");
  EXPECT_TRUE(RunOptions::from_env().reuse_workspaces);
}

void expect_env_rejected(const char* name, const char* value) {
  ::setenv(name, value, 1);
  try {
    (void)RunOptions::from_env();
    ADD_FAILURE() << name << "=" << value << " was accepted";
  } catch (const std::invalid_argument& error) {
    // The message must name the offending variable and echo the bad value.
    EXPECT_NE(std::string(error.what()).find(name), std::string::npos) << error.what();
    EXPECT_NE(std::string(error.what()).find(value), std::string::npos) << error.what();
  }
  ::unsetenv(name);
}

TEST(RunOptions, MalformedEnvFailsWithClearMessage) {
  expect_env_rejected("DGSCHED_TRE", "abc");
  expect_env_rejected("DGSCHED_TRE", "1.5x");
  expect_env_rejected("DGSCHED_MAX_REPS", "-3");
  expect_env_rejected("DGSCHED_MAX_REPS", "twelve");
  expect_env_rejected("DGSCHED_MIN_REPS", "3.5");
  expect_env_rejected("DGSCHED_BATCH", "12x");
  expect_env_rejected("DGSCHED_SEED", "0xzz");
  expect_env_rejected("DGSCHED_QUEUE", "ladder");
  expect_env_rejected("DGSCHED_QUEUE", "Heap4");
  expect_env_rejected("DGSCHED_MULTI_CELL", "yes");
}

TEST(RunOptions, QueueBackendEnvOverride) {
  EXPECT_FALSE(RunOptions::from_env().queue_backend.has_value());
  ::setenv("DGSCHED_QUEUE", "calendar", 1);
  EXPECT_EQ(RunOptions::from_env().queue_backend, des::QueueBackend::kCalendar);
  ::setenv("DGSCHED_QUEUE", "heap4", 1);
  EXPECT_EQ(RunOptions::from_env().queue_backend, des::QueueBackend::kHeap4);
  ::unsetenv("DGSCHED_QUEUE");
}

TEST(RunOptions, MultiCellReplayEnvOverride) {
  EXPECT_TRUE(RunOptions::from_env().multi_cell_replay);  // default on
  ::setenv("DGSCHED_MULTI_CELL", "0", 1);
  EXPECT_FALSE(RunOptions::from_env().multi_cell_replay);
  ::setenv("DGSCHED_MULTI_CELL", "1", 1);
  EXPECT_TRUE(RunOptions::from_env().multi_cell_replay);
  ::unsetenv("DGSCHED_MULTI_CELL");
}

TEST(ExperimentRunner, MultiCellReplayBitIdenticalAcrossShapes) {
  // The multi-cell hand-out (jobs grouped by replication so one worker walks
  // one realized world across every cell) must be cell-for-cell identical to
  // the classic expected-cost hand-out, across thread counts and batch
  // shapes — the fold happens after the round barrier in build order either
  // way. Volatile grid so worlds are actually realized and replayed, plus an
  // adaptive round (max > min) so singleton replication groups occur.
  sim::SimulationConfig volatile_config = tiny_config(sched::PolicyKind::kRoundRobin, 6);
  volatile_config.grid =
      grid::GridConfig::preset(grid::Heterogeneity::kHet, grid::AvailabilityLevel::kLow);
  volatile_config.workload = sim::make_paper_workload(volatile_config.grid, 25000.0,
                                                      workload::Intensity::kLow, 6);
  sim::SimulationConfig stable_config = volatile_config;
  stable_config.policy = sched::PolicyKind::kFcfsShare;
  sim::SimulationConfig third_config = volatile_config;
  third_config.policy = sched::PolicyKind::kLongIdle;
  const std::vector<NamedConfig> cells = {
      {"rr", volatile_config}, {"fcfs", stable_config}, {"li", third_config}};

  struct Variant {
    bool multi_cell;
    std::size_t threads;
    std::size_t batch;
  };
  const Variant variants[] = {{false, 1, 1}, {true, 1, 1},  {true, 3, 1},
                              {true, 3, 5},  {true, 2, 0},  {false, 4, 2}};

  std::vector<std::vector<CellResult>> runs;
  for (const Variant& variant : variants) {
    RunOptions options;
    options.min_replications = 2;
    options.max_replications = 4;
    options.target_relative_error = 0.08;
    options.multi_cell_replay = variant.multi_cell;
    options.threads = variant.threads;
    options.batch_size = variant.batch;
    runs.push_back(ExperimentRunner(options).run(cells));
  }

  const std::vector<CellResult>& reference = runs.front();
  for (std::size_t v = 1; v < runs.size(); ++v) {
    ASSERT_EQ(runs[v].size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      const CellResult& got = runs[v][i];
      const CellResult& want = reference[i];
      EXPECT_EQ(got.replications, want.replications) << "variant " << v << " cell " << i;
      EXPECT_EQ(got.turnaround.stats().mean(), want.turnaround.stats().mean())
          << "variant " << v << " cell " << i;
      EXPECT_EQ(got.waiting.mean(), want.waiting.mean()) << "variant " << v << " cell " << i;
      EXPECT_EQ(got.events_executed, want.events_executed) << "variant " << v << " cell " << i;
      for (double q : {0.5, 0.95, 0.99}) {
        EXPECT_EQ(got.turnaround_tail.quantile(q), want.turnaround_tail.quantile(q))
            << "variant " << v << " cell " << i << " q " << q;
        EXPECT_EQ(got.slowdown_tail.quantile(q), want.slowdown_tail.quantile(q))
            << "variant " << v << " cell " << i << " q " << q;
        EXPECT_EQ(got.completion_gap_tail.quantile(q), want.completion_gap_tail.quantile(q))
            << "variant " << v << " cell " << i << " q " << q;
      }
      EXPECT_EQ(got.turnaround_tail.sum(), want.turnaround_tail.sum())
          << "variant " << v << " cell " << i;
    }
  }
}

TEST(ExperimentRunner, PipelinedAndBarrierShapesAreBitIdentical) {
  // The barrier-free scheduler's core contract (PR 10): pipelined hand-out
  // with any speculation window must be cell-for-cell bit-identical to the
  // historical barrier rounds — including the adaptive round structure
  // (max > min with a reachable precision target, so cells stop at
  // different replication counts and speculative summaries get discarded).
  sim::SimulationConfig volatile_config = tiny_config(sched::PolicyKind::kRoundRobin, 6);
  volatile_config.grid =
      grid::GridConfig::preset(grid::Heterogeneity::kHet, grid::AvailabilityLevel::kLow);
  volatile_config.workload = sim::make_paper_workload(volatile_config.grid, 25000.0,
                                                      workload::Intensity::kLow, 6);
  sim::SimulationConfig stable_config = volatile_config;
  stable_config.policy = sched::PolicyKind::kFcfsShare;
  sim::SimulationConfig third_config = volatile_config;
  third_config.policy = sched::PolicyKind::kLongIdle;
  const std::vector<NamedConfig> cells = {
      {"rr", volatile_config}, {"fcfs", stable_config}, {"li", third_config}};

  struct Variant {
    bool pipeline;
    std::size_t speculate;
    std::size_t threads;
    std::size_t batch;
    bool multi_cell;
  };
  const Variant variants[] = {
      {false, 0, 1, 0, true},   // barrier reference, single worker
      {false, 0, 4, 0, true},   // barrier, parallel
      {true, 0, 3, 0, true},    // pipelined, no speculation
      {true, 1, 3, 0, true},    // default shape
      {true, 4, 3, 0, true},    // deep speculation: discards must be silent
      {true, 4, 1, 1, false},   // speculation + cost-major singleton chunks
      {true, 4, 4, 3, true},    // speculation + batching + parallelism
  };

  std::vector<std::vector<CellResult>> runs;
  for (const Variant& variant : variants) {
    RunOptions options;
    options.min_replications = 2;
    options.max_replications = 4;
    options.target_relative_error = 0.08;
    options.pipeline = variant.pipeline;
    options.speculate = variant.speculate;
    options.threads = variant.threads;
    options.batch_size = variant.batch;
    options.multi_cell_replay = variant.multi_cell;
    runs.push_back(ExperimentRunner(options).run(cells));
  }

  const std::vector<CellResult>& reference = runs.front();
  for (std::size_t v = 1; v < runs.size(); ++v) {
    ASSERT_EQ(runs[v].size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      const CellResult& got = runs[v][i];
      const CellResult& want = reference[i];
      EXPECT_EQ(got.replications, want.replications) << "variant " << v << " cell " << i;
      EXPECT_EQ(got.turnaround.stats().mean(), want.turnaround.stats().mean())
          << "variant " << v << " cell " << i;
      EXPECT_EQ(got.turnaround.stats().variance(), want.turnaround.stats().variance())
          << "variant " << v << " cell " << i;
      EXPECT_EQ(got.waiting.mean(), want.waiting.mean()) << "variant " << v << " cell " << i;
      EXPECT_EQ(got.events_executed, want.events_executed) << "variant " << v << " cell " << i;
      for (double q : {0.5, 0.95, 0.99}) {
        EXPECT_EQ(got.turnaround_tail.quantile(q), want.turnaround_tail.quantile(q))
            << "variant " << v << " cell " << i << " q " << q;
        EXPECT_EQ(got.slowdown_tail.quantile(q), want.slowdown_tail.quantile(q))
            << "variant " << v << " cell " << i << " q " << q;
      }
      EXPECT_EQ(got.turnaround_tail.sum(), want.turnaround_tail.sum())
          << "variant " << v << " cell " << i;
    }
  }
}

TEST(ExperimentRunner, ExecStatsAccountForEveryReplication) {
  RunOptions options;
  options.min_replications = 3;
  options.max_replications = 3;
  options.threads = 2;
  ExperimentRunner runner(options);
  const auto results = runner.run({{"a", tiny_config(sched::PolicyKind::kFcfsShare)},
                                   {"b", tiny_config(sched::PolicyKind::kRoundRobin)}});
  const ExecutionStats& exec = runner.exec_stats();
  ASSERT_EQ(exec.lanes.size(), 2u);
  EXPECT_EQ(exec.committed, 6u);  // 2 cells x 3 replications, all folded
  EXPECT_GE(exec.launched, exec.committed);
  EXPECT_EQ(exec.launched, exec.committed + exec.discarded);
  EXPECT_EQ(exec.recovered, 0u);
  std::uint64_t lane_jobs = 0;
  for (const WorkerLaneStats& lane : exec.lanes) lane_jobs += lane.jobs;
  EXPECT_EQ(lane_jobs, exec.launched);  // every launched job ran on some lane
  EXPECT_GT(exec.wall_s, 0.0);
  EXPECT_GT(exec.busy_s(), 0.0);
  (void)results;
}

TEST(RunOptions, PipelineAndSpeculateEnvOverrides) {
  EXPECT_TRUE(RunOptions::from_env().pipeline);     // default on
  EXPECT_EQ(RunOptions::from_env().speculate, 1u);  // default window
  ::setenv("DGSCHED_PIPELINE", "0", 1);
  ::setenv("DGSCHED_SPECULATE", "4", 1);
  const RunOptions options = RunOptions::from_env();
  EXPECT_FALSE(options.pipeline);
  EXPECT_EQ(options.speculate, 4u);
  ::setenv("DGSCHED_PIPELINE", "1", 1);
  ::setenv("DGSCHED_SPECULATE", "0", 1);
  EXPECT_TRUE(RunOptions::from_env().pipeline);
  EXPECT_EQ(RunOptions::from_env().speculate, 0u);
  ::unsetenv("DGSCHED_PIPELINE");
  ::unsetenv("DGSCHED_SPECULATE");
}

TEST(RunOptions, MalformedPipelineEnvFailsWithClearMessage) {
  expect_env_rejected("DGSCHED_PIPELINE", "yes");
  expect_env_rejected("DGSCHED_PIPELINE", "on");
  expect_env_rejected("DGSCHED_SPECULATE", "-1");
  expect_env_rejected("DGSCHED_SPECULATE", "2.5");
  expect_env_rejected("DGSCHED_SPECULATE", "deep");
}

TEST(ExperimentRunner, RunnerQueueBackendOverrideMatchesDefault) {
  // Forcing the calendar backend through RunOptions must leave every cell
  // metric bit-identical — the backend only changes queue-maintenance cost.
  const std::vector<NamedConfig> cells = {{"cell", tiny_config(sched::PolicyKind::kRoundRobin)}};
  RunOptions options;
  options.min_replications = 2;
  options.max_replications = 2;
  options.threads = 2;
  const auto baseline = ExperimentRunner(options).run(cells);
  options.queue_backend = des::QueueBackend::kCalendar;
  const auto calendar = ExperimentRunner(options).run(cells);
  EXPECT_EQ(calendar[0].turnaround.stats().mean(), baseline[0].turnaround.stats().mean());
  EXPECT_EQ(calendar[0].events_executed, baseline[0].events_executed);
  EXPECT_EQ(calendar[0].turnaround_tail.sum(), baseline[0].turnaround_tail.sum());
}

TEST(EnvNumBots, ReadsOverride) {
  ::setenv("DGSCHED_BOTS", "42", 1);
  EXPECT_EQ(env_num_bots().value(), 42u);
  ::unsetenv("DGSCHED_BOTS");
  EXPECT_FALSE(env_num_bots().has_value());
}

// --- figure specs ---

TEST(FigureSpecs, Figure1HasFourPanelsAtHighAvail) {
  const FigureSpec spec = figure1_spec();
  EXPECT_EQ(spec.availability, grid::AvailabilityLevel::kHigh);
  EXPECT_EQ(spec.panels.size(), 4u);
  EXPECT_EQ(spec.granularities.size(), 4u);
  EXPECT_EQ(spec.policies.size(), 5u);
}

TEST(FigureSpecs, Figure2IsLowAvail) {
  EXPECT_EQ(figure2_spec().availability, grid::AvailabilityLevel::kLow);
}

TEST(FigureSpecs, UnreportedIsMedAvailMedIntensity) {
  const FigureSpec spec = unreported_spec();
  EXPECT_EQ(spec.availability, grid::AvailabilityLevel::kMed);
  for (const PanelSpec& panel : spec.panels) {
    EXPECT_EQ(panel.intensity, workload::Intensity::kMed);
  }
}

TEST(FigureCells, MatrixSizeAndLabels) {
  const FigureSpec spec = figure1_spec();
  const auto cells = figure_cells(spec);
  EXPECT_EQ(cells.size(), 4u * 4u * 5u);
  EXPECT_NE(cells[0].label.find("Hom-HighAvail"), std::string::npos);
  EXPECT_NE(cells[0].label.find("FCFS-Excl"), std::string::npos);
  EXPECT_NE(cells[0].label.find("g=1000"), std::string::npos);
}

TEST(FigureCells, ConfigsCarryPanelSettings) {
  FigureSpec spec = figure2_spec();
  spec.num_bots = 17;
  const auto cells = figure_cells(spec);
  for (const NamedConfig& cell : cells) {
    EXPECT_EQ(cell.config.workload.num_bots, 17u);
    EXPECT_NEAR(cell.config.grid.availability.availability(), 0.5, 1e-9);
  }
  // Intensity is reflected in the arrival rate: last panel (High) has a
  // higher rate than the first (Low) at equal granularity.
  EXPECT_GT(cells.back().config.workload.arrival_rate, cells.front().config.workload.arrival_rate);
}

TEST(RenderFigure, ProducesTablesAndCsv) {
  FigureSpec spec;
  spec.title = "Test figure";
  spec.availability = grid::AvailabilityLevel::kHigh;
  spec.panels = {{grid::Heterogeneity::kHom, workload::Intensity::kLow}};
  spec.granularities = {1000.0};
  spec.policies = {sched::PolicyKind::kFcfsShare, sched::PolicyKind::kRoundRobin};

  std::vector<CellResult> results(2);
  results[0].label = "a";
  results[0].turnaround.add(100.0);
  results[0].turnaround.add(102.0);
  results[1].label = "b";
  results[1].turnaround.add(500.0);
  results[1].turnaround.add(501.0);
  results[1].saturated_replications = 1;

  std::ostringstream os, csv;
  render_figure(spec, results, os, &csv);
  const std::string text = os.str();
  EXPECT_NE(text.find("Test figure"), std::string::npos);
  EXPECT_NE(text.find("FCFS-Share"), std::string::npos);
  EXPECT_NE(text.find("101"), std::string::npos);   // mean of cell a
  EXPECT_NE(text.find("SAT"), std::string::npos);   // saturation marker
  const std::string csv_text = csv.str();
  EXPECT_NE(csv_text.find("mean_turnaround"), std::string::npos);
  EXPECT_NE(csv_text.find("RR"), std::string::npos);
}

}  // namespace
}  // namespace dg::exp
