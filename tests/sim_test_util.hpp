// Shared test harness: a tiny, fully deterministic simulation world.
//
// Builds a failure-free grid (availability process disabled) of N identical
// machines plus the whole scheduler/engine stack, and lets tests submit
// hand-crafted bags and inject machine failures/repairs at exact times.
#pragma once

#include <memory>
#include <vector>

#include "des/simulator.hpp"
#include "grid/desktop_grid.hpp"
#include "sched/policies.hpp"
#include "sched/scheduler.hpp"
#include "sim/execution_engine.hpp"
#include "workload/bot.hpp"

namespace dg::test {

struct WorldOptions {
  std::size_t num_machines = 3;
  double machine_power = 10.0;
  sched::PolicyKind policy = sched::PolicyKind::kFcfsShare;
  sched::IndividualSchedulerKind individual = sched::IndividualSchedulerKind::kWqrFt;
  int threshold = 2;
  bool checkpointing = false;
  double checkpoint_interval = 0.0;  // required when checkpointing
  /// Enable the engine's transfer retry/backoff/degradation path; server
  /// outages are then injected by hand via fail_server()/repair_server()
  /// (the stochastic CheckpointServerFaultProcess stays off so nothing
  /// draws from the fault stream).
  bool failable_server = false;
  sim::TransferRetryPolicy retry{};
  /// Consulted by the engine's outage handler (abort_transfers, lose_data);
  /// `enabled` is left false so no stochastic process is created.
  grid::CheckpointServerFaultModel server_faults{};
  /// Checkpoint transfer time; a degenerate range (lo == hi) makes
  /// transfer-heavy timelines exactly computable.
  rng::UniformDist checkpoint_transfer{240.0, 720.0};
  std::uint64_t seed = 99;
};

class World {
 public:
  explicit World(const WorldOptions& options = {}) : options_(options) {
    grid::GridConfig grid_config;
    grid_config.heterogeneity = grid::Heterogeneity::kHom;
    grid_config.hom_power = options.machine_power;
    grid_config.total_power =
        options.machine_power * static_cast<double>(options.num_machines);
    grid_config.availability = grid::AvailabilityModel::for_level(grid::AvailabilityLevel::kAlways);
    grid_config.checkpoint_transfer = options.checkpoint_transfer;
    grid = std::make_unique<grid::DesktopGrid>(grid_config, sim, options.seed);

    scheduler = std::make_unique<sched::MultiBotScheduler>(
        sim, *grid, sched::make_policy(options.policy, options.seed),
        sched::IndividualScheduler::make(options.individual),
        std::make_unique<sched::StaticReplication>(options.threshold));

    sim::EngineConfig engine_config;
    engine_config.checkpointing = options.checkpointing;
    engine_config.checkpoint_interval = options.checkpoint_interval;
    engine_config.failable_server = options.failable_server;
    engine_config.retry = options.retry;
    engine_config.server_faults = options.server_faults;
    engine_config.server_faults.enabled = false;  // outages injected by hand
    engine = std::make_unique<sim::ExecutionEngine>(sim, *grid, *scheduler, engine_config,
                                                    options.seed);
    grid->start(grid::TransitionDelegate::to<&sim::ExecutionEngine::on_machine_failure>(*engine),
                grid::TransitionDelegate::to<&sim::ExecutionEngine::on_machine_repair>(*engine));
  }

  /// Creates and registers a bag with the given task works, arriving at
  /// `arrival` (submission happens immediately if arrival <= now, otherwise
  /// schedule it before running).
  sched::BotState& add_bot(std::vector<double> works, double arrival = 0.0) {
    workload::BotSpec spec;
    spec.id = next_id_++;
    spec.arrival_time = arrival;
    spec.granularity = works.empty() ? 0.0 : works.front();
    for (double w : works) spec.tasks.push_back(workload::TaskSpec{w});
    bots.push_back(std::make_unique<sched::BotState>(spec, scheduler->individual().task_order()));
    sched::BotState& bot = *bots.back();
    if (arrival <= sim.now()) {
      scheduler->submit(bot);
    } else {
      sim.schedule_at(arrival, [this, &bot] { scheduler->submit(bot); });
    }
    return bot;
  }

  /// Injects a machine failure at the current simulation time.
  void fail_machine(std::size_t index) {
    grid::Machine& machine = grid->machine(index);
    const bool edge = machine.force_down(sim.now());
    DG_ASSERT(edge);
    engine->on_machine_failure(machine);
  }

  /// Schedules a failure at an absolute time.
  void fail_machine_at(std::size_t index, double time) {
    sim.schedule_at(time, [this, index] { fail_machine(index); });
  }

  /// Repairs a failed machine at the current simulation time.
  void repair_machine(std::size_t index) {
    grid::Machine& machine = grid->machine(index);
    const bool edge = machine.release_down(sim.now());
    DG_ASSERT(edge);
    engine->on_machine_repair(machine);
  }

  void repair_machine_at(std::size_t index, double time) {
    sim.schedule_at(time, [this, index] { repair_machine(index); });
  }

  /// Takes the checkpoint server down at the current simulation time
  /// (requires options.failable_server).
  void fail_server() {
    grid->checkpoint_server().set_down(sim.now());
    engine->on_server_down();
  }
  void fail_server_at(double time) {
    sim.schedule_at(time, [this] { fail_server(); });
  }

  /// Repairs the checkpoint server at the current simulation time.
  void repair_server() {
    grid->checkpoint_server().set_up(sim.now());
    engine->on_server_up();
  }
  void repair_server_at(double time) {
    sim.schedule_at(time, [this] { repair_server(); });
  }

  /// Count of replicas currently running for `task` across machines.
  [[nodiscard]] int busy_machines() const {
    int count = 0;
    for (std::size_t i = 0; i < grid->size(); ++i) {
      if (grid->machine(i).busy()) ++count;
    }
    return count;
  }

  des::Simulator sim;
  std::unique_ptr<grid::DesktopGrid> grid;
  std::unique_ptr<sched::MultiBotScheduler> scheduler;
  std::unique_ptr<sim::ExecutionEngine> engine;
  std::vector<std::unique_ptr<sched::BotState>> bots;

 private:
  WorldOptions options_;
  workload::BotId next_id_ = 0;
};

}  // namespace dg::test
