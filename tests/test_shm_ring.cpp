// Shared-memory transfer ring (util/shm_ring.hpp): slot round trips, the
// validate-then-copy discipline (torn/stale/oversized payloads throw instead
// of folding), and cross-fork visibility — the property the sharded runner's
// result transport is built on.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/shm_ring.hpp"

namespace dg::util {
namespace {

std::vector<std::uint8_t> pattern_bytes(std::size_t size, std::uint8_t seed) {
  std::vector<std::uint8_t> bytes(size);
  for (std::size_t i = 0; i < size; ++i) {
    bytes[i] = static_cast<std::uint8_t>(seed + i * 7);
  }
  return bytes;
}

TEST(ShmRing, WriteReadRoundTripsEverySlot) {
  ShmRing ring(8, 256);
  EXPECT_EQ(ring.slots(), 8u);
  EXPECT_EQ(ring.payload_capacity(), 256u);
  for (std::size_t slot = 0; slot < ring.slots(); ++slot) {
    const std::vector<std::uint8_t> payload =
        pattern_bytes(1 + slot * 31, static_cast<std::uint8_t>(slot));
    ring.write(slot, payload.data(), payload.size());
    std::vector<std::uint8_t> out;
    ring.read(slot, out);
    EXPECT_EQ(out, payload);
  }
}

TEST(ShmRing, RewriteOverwritesAndReadsBack) {
  ShmRing ring(2, 64);
  const std::vector<std::uint8_t> first = pattern_bytes(64, 1);
  const std::vector<std::uint8_t> second = pattern_bytes(13, 2);
  ring.write(0, first.data(), first.size());
  ring.write(0, second.data(), second.size());
  std::vector<std::uint8_t> out;
  ring.read(0, out);
  EXPECT_EQ(out, second);
}

TEST(ShmRing, ReleasedSlotFailsValidationInsteadOfReturningStaleBytes) {
  ShmRing ring(2, 64);
  const std::vector<std::uint8_t> payload = pattern_bytes(32, 9);
  ring.write(1, payload.data(), payload.size());
  ring.release(1);
  std::vector<std::uint8_t> out;
  EXPECT_THROW(ring.read(1, out), std::runtime_error);
}

TEST(ShmRing, NeverWrittenSlotThrows) {
  ShmRing ring(4, 64);
  std::vector<std::uint8_t> out;
  EXPECT_THROW(ring.read(3, out), std::runtime_error);
}

TEST(ShmRing, OversizedPayloadThrowsLengthError) {
  ShmRing ring(1, 16);
  const std::vector<std::uint8_t> payload = pattern_bytes(17, 0);
  EXPECT_THROW(ring.write(0, payload.data(), payload.size()), std::length_error);
}

TEST(ShmRing, OutOfRangeSlotThrows) {
  ShmRing ring(2, 16);
  const std::vector<std::uint8_t> payload = pattern_bytes(4, 0);
  EXPECT_THROW(ring.write(2, payload.data(), payload.size()), std::out_of_range);
  std::vector<std::uint8_t> out;
  EXPECT_THROW(ring.read(2, out), std::out_of_range);
}

TEST(ShmRing, PayloadAtExactCapacityRoundTrips) {
  ShmRing ring(1, 48);
  const std::vector<std::uint8_t> payload = pattern_bytes(48, 5);
  ring.write(0, payload.data(), payload.size());
  std::vector<std::uint8_t> out;
  ring.read(0, out);
  EXPECT_EQ(out, payload);
}

TEST(ShmRing, ChildWritesParentReadsAcrossFork) {
  // The sharded-runner shape: ring created before fork, child writes a slot,
  // signals completion through a pipe (the happens-before edge), parent
  // validates and reads. Checksums computed in one process must verify in
  // the other.
  ShmRing ring(4, 128);
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(pipe_fds[0]);
    const std::vector<std::uint8_t> payload = pattern_bytes(77, 42);
    ring.write(2, payload.data(), payload.size());
    const char done = 'x';
    (void)!::write(pipe_fds[1], &done, 1);
    ::close(pipe_fds[1]);
    ::_exit(0);
  }
  ::close(pipe_fds[1]);
  char done = 0;
  ASSERT_EQ(::read(pipe_fds[0], &done, 1), 1);
  ::close(pipe_fds[0]);
  std::vector<std::uint8_t> out;
  ring.read(2, out);
  EXPECT_EQ(out, pattern_bytes(77, 42));
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace dg::util
