// INI parsing and SimulationConfig file I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/config_io.hpp"
#include "util/ini.hpp"

namespace dg {
namespace {

// --- IniFile ---

TEST(Ini, ParsesSectionsAndKeys) {
  const util::IniFile ini = util::IniFile::parse_string(
      "[grid]\n"
      "heterogeneity = Het\n"
      "total_power=1000\n"
      "\n"
      "[run]\n"
      "seed = 42  # trailing comment\n");
  EXPECT_TRUE(ini.has_section("grid"));
  EXPECT_TRUE(ini.has_section("run"));
  EXPECT_EQ(ini.get("grid", "heterogeneity").value(), "Het");
  EXPECT_EQ(ini.get_double("grid", "total_power").value(), 1000.0);
  EXPECT_EQ(ini.get_int("run", "seed").value(), 42);
}

TEST(Ini, MissingKeysReturnNullopt) {
  const util::IniFile ini = util::IniFile::parse_string("[a]\nx = 1\n");
  EXPECT_FALSE(ini.get("a", "y").has_value());
  EXPECT_FALSE(ini.get("b", "x").has_value());
  EXPECT_EQ(ini.get_or("a", "y", "fallback"), "fallback");
}

TEST(Ini, CommentsAndBlankLinesIgnored) {
  const util::IniFile ini = util::IniFile::parse_string(
      "# full line comment\n"
      "; another\n"
      "\n"
      "[s]\n"
      "k = v\n");
  EXPECT_EQ(ini.get("s", "k").value(), "v");
}

TEST(Ini, BooleanParsing) {
  const util::IniFile ini =
      util::IniFile::parse_string("[s]\na = true\nb = 0\nc = yes\nd = off\n");
  EXPECT_TRUE(ini.get_bool("s", "a").value());
  EXPECT_FALSE(ini.get_bool("s", "b").value());
  EXPECT_TRUE(ini.get_bool("s", "c").value());
  EXPECT_FALSE(ini.get_bool("s", "d").value());
}

TEST(Ini, ErrorsCarryLineNumbers) {
  try {
    (void)util::IniFile::parse_string("[ok]\nx = 1\nbroken-line\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Ini, DuplicateKeyRejected) {
  EXPECT_THROW(util::IniFile::parse_string("[s]\nk = 1\nk = 2\n"), std::runtime_error);
}

TEST(Ini, MalformedSectionRejected) {
  EXPECT_THROW(util::IniFile::parse_string("[oops\n"), std::runtime_error);
}

TEST(Ini, BadNumberRejected) {
  const util::IniFile ini = util::IniFile::parse_string("[s]\nk = 12abc\n");
  EXPECT_THROW((void)ini.get_double("s", "k"), std::runtime_error);
  EXPECT_THROW((void)ini.get_int("s", "k"), std::runtime_error);
}

TEST(Ini, RoundTripsThroughToString) {
  util::IniFile ini;
  ini.set("grid", "total_power", "1000");
  ini.set("run", "seed", "7");
  const util::IniFile reparsed = util::IniFile::parse_string(ini.to_string());
  EXPECT_EQ(reparsed.get("grid", "total_power").value(), "1000");
  EXPECT_EQ(reparsed.get("run", "seed").value(), "7");
}

TEST(Trim, StripsWhitespace) {
  EXPECT_EQ(util::trim("  x \t"), "x");
  EXPECT_EQ(util::trim(""), "");
  EXPECT_EQ(util::trim(" \t "), "");
}

// --- SimulationConfig I/O ---

constexpr const char* kFullConfig =
    "[grid]\n"
    "heterogeneity = Het\n"
    "availability = low\n"
    "outages = true\n"
    "outage_fraction = 0.25\n"
    "outage_interarrival = 5000\n"
    "outage_duration_lo = 1000\n"
    "outage_duration_hi = 2000\n"
    "[workload]\n"
    "granularity = 25000\n"
    "bag_size = 2.5e6\n"
    "num_bots = 40\n"
    "utilization = 0.5\n"
    "arrivals = Bursty\n"
    "burst_intensity = 4\n"
    "burst_fraction = 0.25\n"
    "[scheduler]\n"
    "policy = LongIdle\n"
    "individual = WQR-FT\n"
    "replication_threshold = 3\n"
    "[run]\n"
    "seed = 99\n"
    "warmup_bots = 5\n";

TEST(ConfigIo, LoadsFullConfig) {
  std::istringstream in(kFullConfig);
  const sim::SimulationConfig config = sim::load_simulation_config(in);
  EXPECT_EQ(config.grid.heterogeneity, grid::Heterogeneity::kHet);
  EXPECT_NEAR(config.grid.availability.availability(), 0.5, 1e-9);
  EXPECT_TRUE(config.grid.outages.enabled);
  EXPECT_DOUBLE_EQ(config.grid.outages.fraction, 0.25);
  ASSERT_EQ(config.workload.types.size(), 1u);
  EXPECT_DOUBLE_EQ(config.workload.types[0].granularity, 25000.0);
  EXPECT_EQ(config.workload.num_bots, 40u);
  EXPECT_EQ(config.workload.arrivals, workload::ArrivalProcess::kBursty);
  EXPECT_GT(config.workload.arrival_rate, 0.0);
  EXPECT_EQ(config.policy, sched::PolicyKind::kLongIdle);
  EXPECT_EQ(config.individual, sched::IndividualSchedulerKind::kWqrFt);
  EXPECT_EQ(config.replication_threshold, 3);
  EXPECT_EQ(config.seed, 99u);
  EXPECT_EQ(config.warmup_bots, 5u);
}

TEST(ConfigIo, UtilizationComputesArrivalRate) {
  std::istringstream in(
      "[workload]\ngranularity = 5000\nutilization = 0.9\n[grid]\navailability = high\n");
  const sim::SimulationConfig config = sim::load_simulation_config(in);
  const double expected = workload::arrival_rate_for_utilization(
      0.9, config.workload.bag_size, workload::effective_grid_power(config.grid));
  EXPECT_DOUBLE_EQ(config.workload.arrival_rate, expected);
}

TEST(ConfigIo, NumericAvailabilityTarget) {
  std::istringstream in("[grid]\navailability = 0.925\n");
  const sim::SimulationConfig config = sim::load_simulation_config(in);
  EXPECT_NEAR(config.grid.availability.availability(), 0.925, 1e-9);
}

TEST(ConfigIo, MixedGranularities) {
  std::istringstream in("[workload]\ngranularities = 1000, 25000, 125000\n");
  const sim::SimulationConfig config = sim::load_simulation_config(in);
  ASSERT_EQ(config.workload.types.size(), 3u);
  EXPECT_DOUBLE_EQ(config.workload.types[1].granularity, 25000.0);
}

TEST(ConfigIo, RejectsUnknownSection) {
  std::istringstream in("[grids]\nheterogeneity = Hom\n");
  EXPECT_THROW((void)sim::load_simulation_config(in), std::runtime_error);
}

TEST(ConfigIo, RejectsUnknownKey) {
  std::istringstream in("[grid]\nheterogenity = Hom\n");  // typo
  EXPECT_THROW((void)sim::load_simulation_config(in), std::runtime_error);
}

TEST(ConfigIo, RejectsUnknownPolicy) {
  std::istringstream in("[scheduler]\npolicy = FCFS-Banana\n");
  EXPECT_THROW((void)sim::load_simulation_config(in), std::runtime_error);
}

TEST(ConfigIo, RejectsConflictingRateSpecs) {
  std::istringstream in("[workload]\nutilization = 0.5\narrival_rate = 1e-4\n");
  EXPECT_THROW((void)sim::load_simulation_config(in), std::runtime_error);
}

TEST(ConfigIo, DefaultsMatchDefaultConstructedConfig) {
  std::istringstream in("");
  const sim::SimulationConfig loaded = sim::load_simulation_config(in);
  const sim::SimulationConfig defaults;
  EXPECT_EQ(loaded.policy, defaults.policy);
  EXPECT_EQ(loaded.individual, defaults.individual);
  EXPECT_EQ(loaded.seed, defaults.seed);
  EXPECT_EQ(loaded.grid.heterogeneity, defaults.grid.heterogeneity);
}

TEST(ConfigIo, SaveLoadRoundTrip) {
  std::istringstream in(kFullConfig);
  const sim::SimulationConfig original = sim::load_simulation_config(in);
  std::stringstream buffer;
  sim::save_simulation_config(buffer, original);
  const sim::SimulationConfig loaded = sim::load_simulation_config(buffer);
  EXPECT_EQ(loaded.grid.heterogeneity, original.grid.heterogeneity);
  EXPECT_NEAR(loaded.grid.availability.availability(),
              original.grid.availability.availability(), 1e-9);
  EXPECT_EQ(loaded.grid.outages.enabled, original.grid.outages.enabled);
  EXPECT_DOUBLE_EQ(loaded.workload.arrival_rate, original.workload.arrival_rate);
  EXPECT_EQ(loaded.workload.num_bots, original.workload.num_bots);
  EXPECT_EQ(loaded.workload.arrivals, original.workload.arrivals);
  EXPECT_EQ(loaded.policy, original.policy);
  EXPECT_EQ(loaded.replication_threshold, original.replication_threshold);
  EXPECT_EQ(loaded.seed, original.seed);
}

TEST(ConfigIo, LoadedConfigActuallyRuns) {
  std::istringstream in(
      "[grid]\navailability = always\n"
      "[workload]\ngranularity = 25000\nnum_bots = 5\nutilization = 0.5\n"
      "[scheduler]\npolicy = PF-RR\n");
  sim::SimulationConfig config = sim::load_simulation_config(in);
  const sim::SimulationResult result = sim::Simulation(config).run();
  EXPECT_EQ(result.bots_completed, 5u);
}

// --- [checkpoint_server]: faults, retry policy, slot release ---

TEST(ConfigIo, LoadsCheckpointServerSection) {
  std::istringstream in(
      "[checkpoint_server]\n"
      "capacity = 4\n"
      "release_slots = false\n"
      "faults = true\n"
      "mtbf = 40000\n"
      "mttr = 2000\n"
      "abort_transfers = true\n"
      "lose_data = true\n"
      "retry_max_attempts = 6\n"
      "retry_backoff_base = 15\n"
      "retry_backoff_cap = 240\n"
      "attempt_timeout = 900\n");
  const sim::SimulationConfig config = sim::load_simulation_config(in);
  EXPECT_EQ(config.grid.checkpoint_server_capacity, 4u);
  EXPECT_FALSE(config.grid.checkpoint_server_release_slots);
  const grid::CheckpointServerFaultModel& faults = config.grid.checkpoint_server_faults;
  EXPECT_TRUE(faults.enabled);
  EXPECT_DOUBLE_EQ(faults.mtbf, 40000.0);
  EXPECT_DOUBLE_EQ(faults.mttr, 2000.0);
  EXPECT_TRUE(faults.lose_data);
  EXPECT_EQ(config.checkpoint_retry.max_attempts, 6);
  EXPECT_DOUBLE_EQ(config.checkpoint_retry.backoff_base, 15.0);
  EXPECT_DOUBLE_EQ(config.checkpoint_retry.backoff_cap, 240.0);
  EXPECT_DOUBLE_EQ(config.checkpoint_retry.attempt_timeout, 900.0);
}

TEST(ConfigIo, CheckpointServerRoundTrip) {
  std::istringstream in(
      "[checkpoint_server]\n"
      "release_slots = false\n"
      "faults = true\n"
      "mtbf = 40000\n"
      "mttr = 2000\n"
      "lose_data = true\n"
      "retry_max_attempts = 6\n"
      "retry_backoff_base = 15\n"
      "retry_backoff_cap = 240\n"
      "attempt_timeout = 900\n");
  const sim::SimulationConfig original = sim::load_simulation_config(in);
  std::stringstream buffer;
  sim::save_simulation_config(buffer, original);
  const sim::SimulationConfig loaded = sim::load_simulation_config(buffer);
  EXPECT_EQ(loaded.grid.checkpoint_server_release_slots,
            original.grid.checkpoint_server_release_slots);
  EXPECT_EQ(loaded.grid.checkpoint_server_faults.enabled, true);
  EXPECT_DOUBLE_EQ(loaded.grid.checkpoint_server_faults.mtbf, 40000.0);
  EXPECT_DOUBLE_EQ(loaded.grid.checkpoint_server_faults.mttr, 2000.0);
  EXPECT_EQ(loaded.grid.checkpoint_server_faults.lose_data, true);
  EXPECT_EQ(loaded.checkpoint_retry.max_attempts, 6);
  EXPECT_DOUBLE_EQ(loaded.checkpoint_retry.backoff_base, 15.0);
  EXPECT_DOUBLE_EQ(loaded.checkpoint_retry.backoff_cap, 240.0);
  EXPECT_DOUBLE_EQ(loaded.checkpoint_retry.attempt_timeout, 900.0);
}

TEST(ConfigIo, RejectsCapacityInBothSections) {
  std::istringstream in(
      "[grid]\ncheckpoint_server_capacity = 2\n"
      "[checkpoint_server]\ncapacity = 4\n");
  EXPECT_THROW((void)sim::load_simulation_config(in), std::runtime_error);
}

TEST(ConfigIo, RejectsNonPositiveServerFaultMeans) {
  {
    std::istringstream in("[checkpoint_server]\nmtbf = 0\n");
    EXPECT_THROW((void)sim::load_simulation_config(in), std::runtime_error);
  }
  {
    std::istringstream in("[checkpoint_server]\nmttr = -5\n");
    EXPECT_THROW((void)sim::load_simulation_config(in), std::runtime_error);
  }
}

TEST(ConfigIo, RejectsBadRetryPolicy) {
  {
    std::istringstream in("[checkpoint_server]\nretry_max_attempts = 0\n");
    EXPECT_THROW((void)sim::load_simulation_config(in), std::runtime_error);
  }
  {
    std::istringstream in("[checkpoint_server]\nretry_backoff_base = 0\n");
    EXPECT_THROW((void)sim::load_simulation_config(in), std::runtime_error);
  }
  {
    // cap below base (base defaults to 30)
    std::istringstream in("[checkpoint_server]\nretry_backoff_cap = 5\n");
    EXPECT_THROW((void)sim::load_simulation_config(in), std::runtime_error);
  }
  {
    std::istringstream in("[checkpoint_server]\nattempt_timeout = -1\n");
    EXPECT_THROW((void)sim::load_simulation_config(in), std::runtime_error);
  }
}

TEST(ConfigIo, RejectsBadOutageParameters) {
  {
    std::istringstream in("[grid]\noutage_fraction = 0\n");
    EXPECT_THROW((void)sim::load_simulation_config(in), std::runtime_error);
  }
  {
    std::istringstream in("[grid]\noutage_fraction = 1.5\n");
    EXPECT_THROW((void)sim::load_simulation_config(in), std::runtime_error);
  }
  {
    std::istringstream in("[grid]\noutage_interarrival = -100\n");
    EXPECT_THROW((void)sim::load_simulation_config(in), std::runtime_error);
  }
  {
    std::istringstream in("[grid]\noutage_duration_lo = 500\noutage_duration_hi = 100\n");
    EXPECT_THROW((void)sim::load_simulation_config(in), std::runtime_error);
  }
  {
    // durations must come as a pair
    std::istringstream in("[grid]\noutage_duration_lo = 500\n");
    EXPECT_THROW((void)sim::load_simulation_config(in), std::runtime_error);
  }
}

// --- [robustness]: adversarial scenario director ---

TEST(ConfigIo, LoadsRobustnessSection) {
  std::istringstream in(
      "[robustness]\n"
      "adversary = true\n"
      "num_windows = 4\n"
      "window_duration = 3600\n"
      "lead_fraction = 0.1\n"
      "spacing = 40000\n"
      "burst_intensity = 6\n"
      "hit_machines = true\n"
      "outage_fraction = 0.5\n"
      "hit_server = false\n");
  const sim::SimulationConfig config = sim::load_simulation_config(in);
  const sim::AdversarialScenario& adversary = config.adversary;
  EXPECT_TRUE(adversary.enabled);
  EXPECT_EQ(adversary.num_windows, 4u);
  EXPECT_DOUBLE_EQ(adversary.window_duration, 3600.0);
  EXPECT_DOUBLE_EQ(adversary.lead_fraction, 0.1);
  EXPECT_DOUBLE_EQ(adversary.spacing, 40000.0);
  EXPECT_DOUBLE_EQ(adversary.burst_intensity, 6.0);
  EXPECT_TRUE(adversary.hit_machines);
  EXPECT_DOUBLE_EQ(adversary.outage_fraction, 0.5);
  EXPECT_FALSE(adversary.hit_server);
}

TEST(ConfigIo, RobustnessRoundTrip) {
  std::istringstream in(
      "[robustness]\n"
      "adversary = true\n"
      "num_windows = 2\n"
      "window_duration = 5400\n"
      "burst_intensity = 3.5\n"
      "outage_fraction = 0.4\n");
  const sim::SimulationConfig original = sim::load_simulation_config(in);
  std::stringstream buffer;
  sim::save_simulation_config(buffer, original);
  const sim::SimulationConfig loaded = sim::load_simulation_config(buffer);
  EXPECT_EQ(loaded.adversary.enabled, true);
  EXPECT_EQ(loaded.adversary.num_windows, 2u);
  EXPECT_DOUBLE_EQ(loaded.adversary.window_duration, 5400.0);
  EXPECT_DOUBLE_EQ(loaded.adversary.lead_fraction, original.adversary.lead_fraction);
  EXPECT_DOUBLE_EQ(loaded.adversary.burst_intensity, 3.5);
  EXPECT_EQ(loaded.adversary.hit_machines, original.adversary.hit_machines);
  EXPECT_DOUBLE_EQ(loaded.adversary.outage_fraction, 0.4);
  EXPECT_EQ(loaded.adversary.hit_server, original.adversary.hit_server);
}

TEST(ConfigIo, DisabledAdversaryIsNotSaved) {
  const sim::SimulationConfig defaults;
  std::stringstream buffer;
  sim::save_simulation_config(buffer, defaults);
  EXPECT_EQ(buffer.str().find("[robustness]"), std::string::npos);
}

TEST(ConfigIo, RejectsBadRobustnessParameters) {
  const char* bad[] = {
      "[robustness]\nnum_windows = 0\n",
      "[robustness]\nwindow_duration = 0\n",
      "[robustness]\nlead_fraction = 1\n",
      "[robustness]\nlead_fraction = -0.1\n",
      "[robustness]\nspacing = -1\n",
      "[robustness]\nburst_intensity = 0.5\n",
      "[robustness]\noutage_fraction = 0\n",
      "[robustness]\noutage_fraction = 1.5\n",
      "[robustness]\nsurprise = 1\n",  // unknown key
  };
  for (const char* text : bad) {
    SCOPED_TRACE(text);
    std::istringstream in(text);
    EXPECT_THROW((void)sim::load_simulation_config(in), std::runtime_error);
  }
}

TEST(ConfigIo, RobustnessErrorsNameTheValue) {
  std::istringstream in("[robustness]\nburst_intensity = 0.25\n");
  try {
    (void)sim::load_simulation_config(in);
    FAIL() << "expected config error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("burst_intensity"), std::string::npos);
    EXPECT_NE(what.find("0.25"), std::string::npos);
  }
}

// --- enum parsers ---

TEST(EnumParsers, PolicyRoundTrip) {
  for (sched::PolicyKind kind :
       {sched::PolicyKind::kFcfsExcl, sched::PolicyKind::kFcfsShare,
        sched::PolicyKind::kRoundRobin, sched::PolicyKind::kRoundRobinNrf,
        sched::PolicyKind::kLongIdle, sched::PolicyKind::kRandom,
        sched::PolicyKind::kShortestBagFirst, sched::PolicyKind::kPendingFirst}) {
    EXPECT_EQ(sched::parse_policy_kind(sched::to_string(kind)).value(), kind);
  }
  EXPECT_FALSE(sched::parse_policy_kind("nope").has_value());
  EXPECT_EQ(sched::parse_policy_kind("fcfs-share").value(), sched::PolicyKind::kFcfsShare);
}

TEST(EnumParsers, IndividualRoundTrip) {
  for (sched::IndividualSchedulerKind kind :
       {sched::IndividualSchedulerKind::kWorkQueue, sched::IndividualSchedulerKind::kWqr,
        sched::IndividualSchedulerKind::kWqrFt,
        sched::IndividualSchedulerKind::kKnowledgeBased}) {
    EXPECT_EQ(sched::parse_individual_kind(sched::to_string(kind)).value(), kind);
  }
  EXPECT_FALSE(sched::parse_individual_kind("?").has_value());
}

TEST(EnumParsers, AvailabilityAndIntensity) {
  EXPECT_EQ(grid::parse_availability_level("HighAvail").value(), grid::AvailabilityLevel::kHigh);
  EXPECT_EQ(grid::parse_availability_level("low").value(), grid::AvailabilityLevel::kLow);
  EXPECT_EQ(grid::parse_availability_level("always").value(), grid::AvailabilityLevel::kAlways);
  EXPECT_FALSE(grid::parse_availability_level("sometimes").has_value());
  EXPECT_EQ(workload::parse_intensity("med").value(), workload::Intensity::kMed);
  EXPECT_EQ(workload::parse_arrival_process("bursty").value(),
            workload::ArrivalProcess::kBursty);
  EXPECT_FALSE(workload::parse_arrival_process("tidal").has_value());
}

}  // namespace
}  // namespace dg
