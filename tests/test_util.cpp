// Utility substrate: thread pool, argument parser, tables, logging.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/arg_parser.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace dg::util {
namespace {

TEST(ThreadPool, ExecutesSubmittedJobs) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ReturnsValuesThroughFutures) {
  ThreadPool pool(3);
  auto future = pool.submit([](int a, int b) { return a * b; }, 6, 7);
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    (void)pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 30; ++i) {
      (void)pool.submit([&done] { done.fetch_add(1); });
    }
  }  // destructor joins after draining submitted jobs
  EXPECT_EQ(done.load(), 30);
}

TEST(ThreadPool, ManySmallJobsStress) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futures;
  futures.reserve(2000);
  for (int i = 1; i <= 2000; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 2000L * 2001L / 2);
}

// --- ArgParser ---

TEST(ArgParser, ParsesOptionsAndDefaults) {
  ArgParser parser("prog", "test");
  parser.add_option("bots", "100", "number of bots");
  parser.add_option("policy", "RR", "policy");
  const char* argv[] = {"prog", "--bots", "25"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.get_int("bots"), 25);
  EXPECT_EQ(parser.get("policy"), "RR");
}

TEST(ArgParser, ParsesEqualsSyntax) {
  ArgParser parser("prog", "test");
  parser.add_option("rate", "1.0", "rate");
  const char* argv[] = {"prog", "--rate=2.5"};
  ASSERT_TRUE(parser.parse(2, argv));
  EXPECT_DOUBLE_EQ(parser.get_double("rate"), 2.5);
}

TEST(ArgParser, ParsesFlags) {
  ArgParser parser("prog", "test");
  parser.add_flag("verbose", "more output");
  parser.add_flag("quiet", "less output");
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(parser.parse(2, argv));
  EXPECT_TRUE(parser.get_flag("verbose"));
  EXPECT_FALSE(parser.get_flag("quiet"));
}

TEST(ArgParser, CollectsPositionalArguments) {
  ArgParser parser("prog", "test");
  const char* argv[] = {"prog", "alpha", "beta"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.positional(), (std::vector<std::string>{"alpha", "beta"}));
}

TEST(ArgParser, RejectsUnknownOption) {
  ArgParser parser("prog", "test");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_FALSE(parser.parse(3, argv));
}

TEST(ArgParser, RejectsMissingValue) {
  ArgParser parser("prog", "test");
  parser.add_option("n", "1", "count");
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(parser.parse(2, argv));
}

TEST(ArgParser, HelpReturnsFalse) {
  ArgParser parser("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(parser.parse(2, argv));
}

TEST(ArgParser, GetUndeclaredThrows) {
  ArgParser parser("prog", "test");
  EXPECT_THROW((void)parser.get("ghost"), std::invalid_argument);
}

TEST(ArgParser, UsageMentionsOptionsAndDefaults) {
  ArgParser parser("prog", "does things");
  parser.add_option("bots", "100", "number of bots");
  const std::string usage = parser.usage();
  EXPECT_NE(usage.find("--bots"), std::string::npos);
  EXPECT_NE(usage.find("default: 100"), std::string::npos);
}

// --- Table ---

TEST(Table, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "12345"});
  std::ostringstream oss;
  table.render(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("| alpha"), std::string::npos);
  EXPECT_NE(out.find("| 12345"), std::string::npos);
  EXPECT_NE(out.find("+-"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderThrows) { EXPECT_THROW(Table({}), std::invalid_argument); }

TEST(Table, WritesCsv) {
  Table table({"x", "y"});
  table.add_row({"1", "hello, world"});
  std::ostringstream oss;
  table.write_csv(oss);
  EXPECT_EQ(oss.str(), "x,y\n1,\"hello, world\"\n");
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(FormatDouble, RespectsPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1000.0, 0), "1000");
}

// --- logging ---

TEST(Logging, ParsesLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("WARN"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("garbage"), LogLevel::kInfo);
}

TEST(Logging, LevelNamesRoundTrip) {
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_EQ(parse_log_level(std::string(to_string(LogLevel::kTrace))), LogLevel::kTrace);
}

TEST(Logging, EnabledRespectsThreshold) {
  Logger& logger = Logger::global();
  const LogLevel saved = logger.level();
  logger.set_level(LogLevel::kWarn);
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
  EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
  logger.set_level(saved);
}

}  // namespace
}  // namespace dg::util
