// Workload model: bag generation, task granularity, arrival process,
// utilization-driven arrival rates.
#include <gtest/gtest.h>

#include <cmath>

#include "grid/desktop_grid.hpp"
#include "workload/generator.hpp"

namespace dg::workload {
namespace {

WorkloadConfig basic_config(double granularity, double bag_size, double rate,
                            std::size_t num_bots) {
  WorkloadConfig config;
  config.types = {BotType{granularity, 0.5}};
  config.bag_size = bag_size;
  config.arrival_rate = rate;
  config.num_bots = num_bots;
  return config;
}

TEST(WorkloadGenerator, TaskSizesWithinSpread) {
  WorkloadGenerator gen(basic_config(1000.0, 2.5e6, 1e-4, 5), rng::RandomStream(1));
  for (const BotSpec& bot : gen.generate()) {
    for (const TaskSpec& task : bot.tasks) {
      EXPECT_GE(task.work, 500.0);
      EXPECT_LT(task.work, 1500.0);
    }
  }
}

TEST(WorkloadGenerator, TaskCountMatchesBagSizeOverGranularity) {
  // S = 2.5e6, X = 25000 -> ~100 tasks per bag.
  WorkloadGenerator gen(basic_config(25000.0, 2.5e6, 1e-4, 20), rng::RandomStream(2));
  for (const BotSpec& bot : gen.generate()) {
    EXPECT_GT(bot.size(), 80u);
    EXPECT_LT(bot.size(), 120u);
  }
}

TEST(WorkloadGenerator, PaperGranularityTaskCounts) {
  // The reconstruction in DESIGN.md: 2500 / 500 / 100 / 20 tasks per bag.
  const std::size_t expected[] = {2500, 500, 100, 20};
  for (std::size_t i = 0; i < 4; ++i) {
    WorkloadGenerator gen(basic_config(kPaperGranularities[i], 2.5e6, 1e-4, 5),
                          rng::RandomStream(3 + i));
    for (const BotSpec& bot : gen.generate()) {
      const double ratio =
          static_cast<double>(bot.size()) / static_cast<double>(expected[i]);
      EXPECT_GT(ratio, 0.8);
      EXPECT_LT(ratio, 1.25);
    }
  }
}

TEST(WorkloadGenerator, TotalWorkReachesBagSize) {
  WorkloadGenerator gen(basic_config(5000.0, 2.5e6, 1e-4, 10), rng::RandomStream(7));
  for (const BotSpec& bot : gen.generate()) {
    EXPECT_GE(bot.total_work(), 2.5e6);
    // Overshoot bounded by one max task.
    EXPECT_LT(bot.total_work(), 2.5e6 + 1.5 * 5000.0);
  }
}

TEST(WorkloadGenerator, ArrivalsAreIncreasingWithExponentialGaps) {
  WorkloadGenerator gen(basic_config(25000.0, 2.5e6, 1e-3, 2000), rng::RandomStream(8));
  const auto bots = gen.generate();
  double sum_gap = 0.0;
  for (std::size_t i = 0; i < bots.size(); ++i) {
    EXPECT_EQ(bots[i].id, static_cast<BotId>(i));
    const double prev = i == 0 ? 0.0 : bots[i - 1].arrival_time;
    EXPECT_GT(bots[i].arrival_time, prev);
    sum_gap += bots[i].arrival_time - prev;
  }
  const double mean_gap = sum_gap / static_cast<double>(bots.size());
  EXPECT_NEAR(mean_gap, 1000.0, 60.0);  // 1/lambda
}

TEST(WorkloadGenerator, DeterministicForSameStream) {
  WorkloadGenerator a(basic_config(5000.0, 2.5e6, 1e-4, 10), rng::RandomStream(9));
  WorkloadGenerator b(basic_config(5000.0, 2.5e6, 1e-4, 10), rng::RandomStream(9));
  const auto bots_a = a.generate();
  const auto bots_b = b.generate();
  ASSERT_EQ(bots_a.size(), bots_b.size());
  for (std::size_t i = 0; i < bots_a.size(); ++i) {
    EXPECT_EQ(bots_a[i].arrival_time, bots_b[i].arrival_time);
    ASSERT_EQ(bots_a[i].size(), bots_b[i].size());
    for (std::size_t t = 0; t < bots_a[i].size(); ++t) {
      EXPECT_EQ(bots_a[i].tasks[t].work, bots_b[i].tasks[t].work);
    }
  }
}

TEST(WorkloadGenerator, MixedTypesAllAppear) {
  WorkloadConfig config;
  config.types = {BotType{1000.0, 0.5}, BotType{25000.0, 0.5}};
  config.bag_size = 2.5e6;
  config.arrival_rate = 1e-4;
  config.num_bots = 40;
  WorkloadGenerator gen(config, rng::RandomStream(10));
  int small = 0, large = 0;
  for (const BotSpec& bot : gen.generate()) {
    if (bot.granularity == 1000.0) ++small;
    if (bot.granularity == 25000.0) ++large;
  }
  EXPECT_GT(small, 5);
  EXPECT_GT(large, 5);
  EXPECT_EQ(small + large, 40);
}

TEST(WorkloadGenerator, RejectsInvalidConfig) {
  EXPECT_THROW(WorkloadGenerator(basic_config(1000.0, 0.0, 1e-4, 5), rng::RandomStream(1)),
               std::invalid_argument);
  EXPECT_THROW(WorkloadGenerator(basic_config(1000.0, 1e6, 0.0, 5), rng::RandomStream(1)),
               std::invalid_argument);
  WorkloadConfig no_types;
  no_types.types.clear();
  no_types.arrival_rate = 1.0;
  EXPECT_THROW(WorkloadGenerator(no_types, rng::RandomStream(1)), std::invalid_argument);
}

// --- arrival-rate derivation (paper Eq. 1) ---

TEST(ArrivalRate, MatchesUtilizationFormula) {
  // lambda = U / D with D = S / P_eff.
  const double p_eff = 900.0;
  const double s = 2.5e6;
  EXPECT_NEAR(arrival_rate_for_utilization(0.5, s, p_eff), 0.5 * p_eff / s, 1e-15);
  EXPECT_NEAR(arrival_rate_for_utilization(0.9, s, p_eff), 0.9 * p_eff / s, 1e-15);
}

TEST(ArrivalRate, RejectsNonPositiveInputs) {
  EXPECT_THROW(arrival_rate_for_utilization(0.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(arrival_rate_for_utilization(0.5, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(arrival_rate_for_utilization(0.5, 1.0, 0.0), std::invalid_argument);
}

TEST(EffectiveGridPower, ScaledByAvailabilityAndCheckpoints) {
  const grid::GridConfig high =
      grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kHigh);
  const grid::GridConfig low =
      grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kLow);
  const double p_high = effective_grid_power(high);
  const double p_low = effective_grid_power(low);
  EXPECT_LT(p_high, 1000.0);  // < nominal: availability + checkpoint overhead
  EXPECT_GT(p_high, 0.90 * 1000.0);
  EXPECT_LT(p_low, p_high);
  EXPECT_LT(p_low, 0.50 * 1000.0);  // below availability alone (checkpoints)
  EXPECT_GT(p_low, 0.30 * 1000.0);
}

TEST(EffectiveGridPower, NoFailuresMeansNominalPower) {
  const grid::GridConfig config =
      grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kAlways);
  EXPECT_DOUBLE_EQ(effective_grid_power(config), 1000.0);
}

TEST(Intensity, UtilizationMapping) {
  EXPECT_DOUBLE_EQ(utilization_for(Intensity::kLow), 0.50);
  EXPECT_DOUBLE_EQ(utilization_for(Intensity::kMed), 0.75);
  EXPECT_DOUBLE_EQ(utilization_for(Intensity::kHigh), 0.90);
  EXPECT_EQ(to_string(Intensity::kLow), "Low");
  EXPECT_EQ(to_string(Intensity::kHigh), "High");
}

TEST(BotSpec, TotalWorkSumsTasks) {
  BotSpec bot;
  bot.tasks = {TaskSpec{10.0}, TaskSpec{20.0}, TaskSpec{30.0}};
  EXPECT_DOUBLE_EQ(bot.total_work(), 60.0);
  EXPECT_EQ(bot.size(), 3u);
}

TEST(WorkloadConfig, NameDescribesContents) {
  WorkloadConfig config = basic_config(5000.0, 2.5e6, 1e-4, 10);
  const std::string name = config.name();
  EXPECT_NE(name.find("5000"), std::string::npos);
  EXPECT_NE(name.find("bots=10"), std::string::npos);
}

}  // namespace
}  // namespace dg::workload
