// Property/stress matrix: every (policy x availability x individual
// scheduler) combination runs a small end-to-end simulation under the
// InvariantChecker, which validates the engine/scheduler contracts on every
// single event. Also checks the cross-cutting result invariants.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "sim/invariant_checker.hpp"
#include "sim/simulation.hpp"

namespace dg::sim {
namespace {

using StressParam =
    std::tuple<sched::PolicyKind, grid::AvailabilityLevel, sched::IndividualSchedulerKind>;

std::string param_name(const ::testing::TestParamInfo<StressParam>& info) {
  std::string name = sched::to_string(std::get<0>(info.param)) + "_" +
                     grid::to_string(std::get<1>(info.param)) + "_" +
                     sched::to_string(std::get<2>(info.param));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class StressMatrixTest : public ::testing::TestWithParam<StressParam> {};

TEST_P(StressMatrixTest, InvariantsHoldEndToEnd) {
  const auto [policy, level, individual] = GetParam();
  SimulationConfig config;
  config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHet, level);
  config.workload = make_paper_workload(config.grid, 25000.0, workload::Intensity::kLow, 8);
  config.policy = policy;
  config.individual = individual;
  config.seed = 4242;
  config.warmup_bots = 1;

  InvariantChecker checker;
  const SimulationResult result = Simulation(config).run(&checker);

  EXPECT_TRUE(checker.ok()) << checker.report();
  // Replica bound: FCFS-Excl is unlimited; everything else is capped by the
  // scheduler kind's threshold.
  if (policy != sched::PolicyKind::kFcfsExcl) {
    const int threshold =
        individual == sched::IndividualSchedulerKind::kWorkQueue ? 1 : 2;
    EXPECT_LE(checker.max_observed_replicas(), threshold);
  }
  // Result-level invariants hold even under saturation.
  for (const BotRecord& bot : result.bots) {
    EXPECT_NEAR(bot.turnaround, bot.waiting_time + bot.makespan, 1e-6);
    EXPECT_GE(bot.turnaround, 0.0);
  }
  EXPECT_LE(result.bots_completed, result.bots.size());
  if (!result.saturated) {
    EXPECT_EQ(result.bots_completed, result.bots.size());
  }
  EXPECT_GE(result.utilization, 0.0);
  EXPECT_LE(result.utilization, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, StressMatrixTest,
    ::testing::Combine(
        ::testing::Values(sched::PolicyKind::kFcfsExcl, sched::PolicyKind::kFcfsShare,
                          sched::PolicyKind::kRoundRobin, sched::PolicyKind::kRoundRobinNrf,
                          sched::PolicyKind::kLongIdle, sched::PolicyKind::kRandom,
                          sched::PolicyKind::kShortestBagFirst,
                          sched::PolicyKind::kPendingFirst),
        ::testing::Values(grid::AvailabilityLevel::kAlways, grid::AvailabilityLevel::kHigh,
                          grid::AvailabilityLevel::kLow),
        ::testing::Values(sched::IndividualSchedulerKind::kWorkQueue,
                          sched::IndividualSchedulerKind::kWqr,
                          sched::IndividualSchedulerKind::kWqrFt,
                          sched::IndividualSchedulerKind::kKnowledgeBased)),
    param_name);

// Dynamic replication across availability levels, with invariants.
class DynamicReplicationStressTest
    : public ::testing::TestWithParam<grid::AvailabilityLevel> {};

TEST_P(DynamicReplicationStressTest, InvariantsHoldWithAdaptiveThreshold) {
  SimulationConfig config;
  config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHom, GetParam());
  config.workload = make_paper_workload(config.grid, 25000.0, workload::Intensity::kLow, 8);
  config.policy = sched::PolicyKind::kRoundRobin;
  config.dynamic_replication = true;
  config.seed = 777;

  InvariantChecker checker;
  const SimulationResult result = Simulation(config).run(&checker);
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_LE(checker.max_observed_replicas(), 4);  // DynamicReplication cap
  EXPECT_EQ(result.bots_completed, result.bots.size());
}

INSTANTIATE_TEST_SUITE_P(Levels, DynamicReplicationStressTest,
                         ::testing::Values(grid::AvailabilityLevel::kHigh,
                                           grid::AvailabilityLevel::kMed,
                                           grid::AvailabilityLevel::kLow),
                         [](const ::testing::TestParamInfo<grid::AvailabilityLevel>& info) {
                           return grid::to_string(info.param);
                         });

// Chaos matrix: every policy under a *failing* checkpoint server (with and
// without stored-data loss). The InvariantChecker shadows the server state,
// so this checks the recovery contracts — no transfer completes during an
// outage, degraded replicas restart at 0, losses only regress sanctioned —
// end to end under stochastic fault timing.
using ChaosParam = std::tuple<sched::PolicyKind, bool /*lose_data*/>;

std::string chaos_param_name(const ::testing::TestParamInfo<ChaosParam>& info) {
  std::string name = sched::to_string(std::get<0>(info.param)) +
                     (std::get<1>(info.param) ? "_LoseData" : "_KeepData");
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class ServerChaosTest : public ::testing::TestWithParam<ChaosParam> {};

TEST_P(ServerChaosTest, RecoveryContractsHoldUnderServerFaults) {
  const auto [policy, lose_data] = GetParam();
  SimulationConfig config;
  config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHet,
                                         grid::AvailabilityLevel::kLow);
  config.grid.checkpoint_server_faults.enabled = true;
  config.grid.checkpoint_server_faults.mtbf = 8000.0;
  config.grid.checkpoint_server_faults.mttr = 4000.0;
  config.grid.checkpoint_server_faults.lose_data = lose_data;
  config.workload = make_paper_workload(config.grid, 25000.0, workload::Intensity::kLow, 8);
  config.policy = policy;
  config.individual = sched::IndividualSchedulerKind::kWqrFt;  // checkpointing on
  config.seed = 4242;
  config.warmup_bots = 1;

  InvariantChecker checker;
  const SimulationResult result = Simulation(config).run(&checker);

  EXPECT_TRUE(checker.ok()) << checker.report();
  // The fault process actually fired and the engine exercised its recovery
  // path; a silent all-green run would mean the injection is dead config.
  EXPECT_GE(result.faults.server_outages, 1u);
  EXPECT_GT(result.faults.server_downtime, 0.0);
  EXPECT_GT(result.faults.save_attempts_failed + result.faults.retrieve_attempts_failed, 0u);
  if (lose_data) {
    EXPECT_GT(result.faults.checkpoints_lost, 0u);
  }
  EXPECT_EQ(result.bots_completed, result.bots.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ServerChaosTest,
    ::testing::Combine(
        ::testing::Values(sched::PolicyKind::kFcfsExcl, sched::PolicyKind::kFcfsShare,
                          sched::PolicyKind::kRoundRobin, sched::PolicyKind::kRoundRobinNrf,
                          sched::PolicyKind::kLongIdle, sched::PolicyKind::kRandom,
                          sched::PolicyKind::kShortestBagFirst,
                          sched::PolicyKind::kPendingFirst),
        ::testing::Values(false, true)),
    chaos_param_name);

// Combined chaos matrix (PR 8): stochastic server faults x stochastic
// correlated outages x the adversarial scenario director (bursts + scheduled
// outages + scheduled server downtime), every policy, checkpointing on. The
// InvariantChecker validates every event; the fault counters prove each
// stress source actually fired.
class CombinedChaosTest : public ::testing::TestWithParam<sched::PolicyKind> {};

TEST_P(CombinedChaosTest, InvariantsHoldUnderAdversarialCombinedStress) {
  SimulationConfig config;
  config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHet,
                                         grid::AvailabilityLevel::kLow);
  config.grid.checkpoint_server_faults.enabled = true;
  config.grid.checkpoint_server_faults.mtbf = 8000.0;
  config.grid.checkpoint_server_faults.mttr = 4000.0;
  config.grid.outages.enabled = true;
  config.grid.outages.mean_interarrival = 40000.0;
  config.grid.outages.fraction = 0.25;
  config.workload = make_paper_workload(config.grid, 25000.0, workload::Intensity::kLow, 8);
  config.policy = GetParam();
  config.individual = sched::IndividualSchedulerKind::kWqrFt;  // checkpointing on
  config.adversary.enabled = true;
  config.adversary.num_windows = 2;
  config.adversary.window_duration = 5000.0;
  config.adversary.burst_intensity = 3.0;
  config.adversary.outage_fraction = 0.3;
  config.seed = 4242;
  config.warmup_bots = 1;

  InvariantChecker checker;
  const SimulationResult result = Simulation(config).run(&checker);

  EXPECT_TRUE(checker.ok()) << checker.report();
  // Every stress source fired: the stochastic availability/outage processes
  // took machines down, and the server was down at least once (stochastic
  // faults composed with the adversary's scheduled windows through the
  // server's down-cause counting).
  EXPECT_GT(result.machine_failures, 0u);
  EXPECT_GE(result.faults.server_outages, 1u);
  EXPECT_GT(result.faults.server_downtime, 0.0);
  // FaultStats invariants under composition: downtime fits in the run, and
  // failed attempts only exist because outages happened.
  EXPECT_LE(result.faults.server_downtime, result.end_time);
  if (result.faults.save_attempts_failed + result.faults.retrieve_attempts_failed > 0) {
    EXPECT_GE(result.faults.server_outages, 1u);
  }
  EXPECT_EQ(result.bots_completed, result.bots.size());
  for (const BotRecord& bot : result.bots) {
    EXPECT_NEAR(bot.turnaround, bot.waiting_time + bot.makespan, 1e-6);
    EXPECT_GE(bot.turnaround, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, CombinedChaosTest,
    ::testing::Values(sched::PolicyKind::kFcfsExcl, sched::PolicyKind::kFcfsShare,
                      sched::PolicyKind::kRoundRobin, sched::PolicyKind::kRoundRobinNrf,
                      sched::PolicyKind::kLongIdle, sched::PolicyKind::kRandom,
                      sched::PolicyKind::kShortestBagFirst, sched::PolicyKind::kPendingFirst),
    [](const ::testing::TestParamInfo<sched::PolicyKind>& param_info) {
      std::string name = sched::to_string(param_info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Different seeds keep the invariants too (a cheap fuzz over randomness).
class SeedSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SeedSweepTest, InvariantsHoldAcrossSeeds) {
  SimulationConfig config;
  config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHet,
                                         grid::AvailabilityLevel::kLow);
  config.workload = make_paper_workload(config.grid, 5000.0, workload::Intensity::kHigh, 6);
  config.policy = sched::PolicyKind::kLongIdle;
  config.seed = static_cast<std::uint64_t>(GetParam());

  InvariantChecker checker;
  (void)Simulation(config).run(&checker);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest, ::testing::Range(1, 11));

}  // namespace
}  // namespace dg::sim
