// Queueing analysis: P-K / PS formulas and the bag service model, validated
// against closed forms and against the simulator itself.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/queueing.hpp"
#include "sim/simulation.hpp"

namespace dg::analysis {
namespace {

TEST(Mg1Fcfs, MatchesMm1ForExponentialService) {
  // M/M/1: T = 1 / (mu - lambda).
  const double lambda = 0.5, mu = 1.0;
  const QueueingPrediction mm1_pred = mm1(lambda, 1.0 / mu);
  EXPECT_NEAR(mm1_pred.mean_response, 1.0 / (mu - lambda), 1e-12);
  EXPECT_NEAR(mm1_pred.utilization, 0.5, 1e-12);
  EXPECT_TRUE(mm1_pred.stable);
}

TEST(Mg1Fcfs, DeterministicServiceHalvesTheWait) {
  // M/D/1 waiting = half of M/M/1 waiting.
  const double lambda = 0.8;
  ServiceModel deterministic{1.0, 1.0};  // E[S^2] = E[S]^2 -> zero variance
  const QueueingPrediction md1 = mg1_fcfs(lambda, deterministic);
  const QueueingPrediction mm1_pred = mm1(lambda, 1.0);
  EXPECT_NEAR(md1.mean_waiting, 0.5 * mm1_pred.mean_waiting, 1e-12);
}

TEST(Mg1Fcfs, UnstableAtRhoOne) {
  ServiceModel service{1.0, 1.0};
  const QueueingPrediction prediction = mg1_fcfs(1.0, service);
  EXPECT_FALSE(prediction.stable);
  EXPECT_TRUE(std::isinf(prediction.mean_response));
}

TEST(Mg1Fcfs, RejectsBadInputs) {
  EXPECT_THROW(mg1_fcfs(-1.0, ServiceModel{1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(mg1_fcfs(0.5, ServiceModel{0.0, 0.0}), std::invalid_argument);
}

TEST(Mg1Ps, ResponseInsensitiveToVariance) {
  const double lambda = 0.6;
  const QueueingPrediction low_var = mg1_ps(lambda, ServiceModel{1.0, 1.0});
  const QueueingPrediction high_var = mg1_ps(lambda, ServiceModel{1.0, 10.0});
  EXPECT_DOUBLE_EQ(low_var.mean_response, high_var.mean_response);
  EXPECT_NEAR(low_var.mean_response, 1.0 / (1.0 - 0.6), 1e-12);
}

TEST(Mg1Ps, BeatsFcfsForHighVarianceService) {
  const double lambda = 0.5;
  ServiceModel bursty{1.0, 8.0};  // scv = 7
  EXPECT_LT(mg1_ps(lambda, bursty).mean_response, mg1_fcfs(lambda, bursty).mean_response);
}

TEST(ServiceModel, ScvComputation) {
  ServiceModel service{2.0, 5.0};  // var = 1
  EXPECT_NEAR(service.variance(), 1.0, 1e-12);
  EXPECT_NEAR(service.scv(), 0.25, 1e-12);
}

TEST(BagServiceModel, BulkRegimeMatchesDemand) {
  const grid::GridConfig grid_config =
      grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kHigh);
  const workload::WorkloadConfig workload_config =
      sim::make_paper_workload(grid_config, 1000.0, workload::Intensity::kLow, 10);
  const ServiceModel service = bag_service_model(grid_config, workload_config);
  const double demand = workload_config.bag_size / workload::effective_grid_power(grid_config);
  EXPECT_NEAR(service.mean, demand, 1e-9);
  EXPECT_LT(service.scv(), 0.05);  // near-deterministic
}

TEST(BagServiceModel, StragglerRegimeDominatesAtLargeGranularity) {
  const grid::GridConfig grid_config =
      grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kHigh);
  const workload::WorkloadConfig workload_config =
      sim::make_paper_workload(grid_config, 125000.0, workload::Intensity::kLow, 10);
  const ServiceModel service = bag_service_model(grid_config, workload_config);
  const double demand = workload_config.bag_size / workload::effective_grid_power(grid_config);
  EXPECT_GT(service.mean, 3.0 * demand);  // longest task gates the bag
}

TEST(BagServiceModel, RejectsMixedWorkloads) {
  const grid::GridConfig grid_config =
      grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kHigh);
  workload::WorkloadConfig workload_config;
  workload_config.types = {workload::BotType{1000.0}, workload::BotType{5000.0}};
  EXPECT_THROW(bag_service_model(grid_config, workload_config), std::invalid_argument);
}

TEST(ModelValidation, PkPredictsFcfsExclTurnaroundInBulkRegime) {
  // The headline validation: FCFS-Excl at small granularity is close to an
  // M/G/1 FCFS queue with near-deterministic service. Prediction and
  // simulation should agree within ~25%.
  const grid::GridConfig grid_config =
      grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kHigh);
  const workload::WorkloadConfig workload_config =
      sim::make_paper_workload(grid_config, 1000.0, workload::Intensity::kLow, 60);

  const ServiceModel service = bag_service_model(grid_config, workload_config);
  const QueueingPrediction prediction = mg1_fcfs(workload_config.arrival_rate, service);

  double simulated = 0.0;
  const int seeds = 3;
  for (int s = 0; s < seeds; ++s) {
    sim::SimulationConfig config;
    config.grid = grid_config;
    config.workload = workload_config;
    config.policy = sched::PolicyKind::kFcfsExcl;
    config.seed = 3100 + static_cast<std::uint64_t>(s);
    config.warmup_bots = 10;
    simulated += sim::Simulation(config).run().turnaround.mean();
  }
  simulated /= seeds;
  EXPECT_NEAR(prediction.mean_response / simulated, 1.0, 0.25)
      << "predicted " << prediction.mean_response << " vs simulated " << simulated;
}

TEST(ModelValidation, UtilizationLawHolds) {
  // U = lambda * D: the operational law the paper uses to set lambda (Eq. 1).
  const grid::GridConfig grid_config =
      grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kHigh);
  const workload::WorkloadConfig workload_config =
      sim::make_paper_workload(grid_config, 5000.0, workload::Intensity::kLow, 80);
  sim::SimulationConfig config;
  config.grid = grid_config;
  config.workload = workload_config;
  config.policy = sched::PolicyKind::kRoundRobin;
  config.replication_threshold = 1;  // replication inflates measured busy-ness
  config.seed = 9;
  const sim::SimulationResult result = sim::Simulation(config).run();
  // Measured utilization is relative to nominal power; the target 0.5 is
  // relative to effective power — rescale before comparing.
  const double effective_fraction =
      workload::effective_grid_power(grid_config) / grid_config.total_power;
  EXPECT_NEAR(result.utilization / effective_fraction, 0.5, 0.12);
}

}  // namespace
}  // namespace dg::analysis
