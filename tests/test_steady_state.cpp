// Steady-state estimator: one long run + MSER truncation + batch means.
#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "exp/steady_state.hpp"

namespace dg::exp {
namespace {

sim::SimulationConfig base_config() {
  sim::SimulationConfig config;
  config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHom,
                                         grid::AvailabilityLevel::kHigh);
  config.workload = sim::make_paper_workload(config.grid, 25000.0,
                                             workload::Intensity::kLow, 10);
  config.policy = sched::PolicyKind::kRoundRobin;
  config.seed = 51;
  return config;
}

TEST(SteadyState, ProducesFiniteEstimate) {
  SteadyStateOptions options;
  options.num_bots = 150;
  options.batch_size = 10;
  const SteadyStateResult result = run_steady_state(base_config(), options);
  EXPECT_FALSE(result.saturated);
  EXPECT_GT(result.turnaround.mean, 0.0);
  EXPECT_TRUE(std::isfinite(result.turnaround.half_width));
  EXPECT_GE(result.batches, 2u);
  EXPECT_EQ(result.simulation.bots.size(), 150u);
}

TEST(SteadyState, TruncationIsBoundedByHalf) {
  SteadyStateOptions options;
  options.num_bots = 120;
  const SteadyStateResult result = run_steady_state(base_config(), options);
  EXPECT_LE(result.truncated_bots, 60u);
  EXPECT_EQ(result.measured_bots + result.truncated_bots, 120u);
}

TEST(SteadyState, AgreesWithReplicationEstimate) {
  // Both estimators target the same steady-state mean; allow generous slack
  // (different estimators, finite samples).
  sim::SimulationConfig config = base_config();

  RunOptions rep_options;
  rep_options.min_replications = 4;
  rep_options.max_replications = 4;
  rep_options.threads = 2;
  ExperimentRunner runner(rep_options);
  config.workload.num_bots = 60;
  config.warmup_bots = 6;
  const double rep_mean = runner.run({{"cell", config}})[0].turnaround.stats().mean();

  SteadyStateOptions ss_options;
  ss_options.num_bots = 240;
  ss_options.batch_size = 10;
  const SteadyStateResult ss = run_steady_state(config, ss_options);

  EXPECT_NEAR(ss.turnaround.mean / rep_mean, 1.0, 0.35);
}

TEST(SteadyState, CoarsensUntilDecorrelated) {
  SteadyStateOptions options;
  options.num_bots = 400;
  options.batch_size = 5;
  options.max_lag1 = 0.2;
  const SteadyStateResult result = run_steady_state(base_config(), options);
  // Either decorrelated or out of batches to merge.
  EXPECT_TRUE(std::fabs(result.lag1_autocorrelation) <= 0.2 || result.batches < 20u);
  EXPECT_GE(result.final_batch_size, options.batch_size);
}

}  // namespace
}  // namespace dg::exp
