// Completion journal (exp/journal.hpp): append/recover round trips are
// bitwise, a journal truncated at ANY byte — in particular at every record
// boundary — recovers exactly the longest valid record prefix and truncates
// the torn tail away (satellite: kill/resume), a signature mismatch restarts
// the file rather than folding foreign records, and foreign files are
// refused outright.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/journal.hpp"
#include "exp/runner.hpp"

namespace dg::exp {
namespace {

/// Fresh journal path per test, removed on destruction.
struct JournalPath {
  explicit JournalPath(const std::string& name)
      : path((std::filesystem::temp_directory_path() /
              ("dgsched_journal_test_" + name + "_" + std::to_string(::getpid()) + ".journal"))
                 .string()) {
    std::filesystem::remove(path);
  }
  ~JournalPath() { std::filesystem::remove(path); }
  std::string path;
};

/// A summary whose every field (including sketch buckets) depends on `salt`,
/// with deliberately non-representable doubles so bitwise equality means
/// something.
ReplicationSummary make_summary(std::uint64_t salt) {
  ReplicationSummary s;
  const double base = 1.0 / 3.0 + static_cast<double>(salt) * 0.7;
  s.turnaround_mean = base;
  s.waiting_mean = base * 0.1;
  s.makespan_mean = base * 2.0;
  s.utilization = 0.9 - 0.01 * static_cast<double>(salt);
  s.decayed_utilization = 0.85 - 0.01 * static_cast<double>(salt);
  s.wasted_fraction = 0.05 + 0.001 * static_cast<double>(salt);
  s.lost_work = base * 10.0;
  s.transfer_retries = static_cast<double>(salt % 3);
  s.replicas_degraded = static_cast<double>(salt % 2);
  s.server_downtime = base * 100.0;
  for (std::uint64_t i = 0; i <= salt % 5 + 3; ++i) {
    s.turnaround_tail.add(base * static_cast<double>(i + 1));
    s.slowdown_tail.add(1.0 + 0.1 * static_cast<double>(i) + 0.01 * static_cast<double>(salt));
    s.completion_gap_tail.add(base / static_cast<double>(i + 1));
  }
  s.events_executed = 10000 + salt;
  s.saturated = salt % 2 == 1;
  return s;
}

void expect_summary_bitwise(const ReplicationSummary& a, const ReplicationSummary& b) {
  std::vector<std::uint8_t> a_bytes;
  std::vector<std::uint8_t> b_bytes;
  a.serialize(a_bytes);
  b.serialize(b_bytes);
  EXPECT_EQ(a_bytes, b_bytes);
}

/// Byte offsets of the record boundaries of a closed journal file:
/// boundaries[0] is the end of the header, boundaries[k] the end of record
/// k-1. Parsed independently of the implementation (16-byte header; records
/// are a 24-byte header whose first u32 is the payload size, then the
/// payload).
std::vector<std::uintmax_t> record_boundaries(const std::string& path) {
  const std::uintmax_t size = std::filesystem::file_size(path);
  std::ifstream in(path, std::ios::binary);
  std::vector<std::uintmax_t> boundaries{16};
  while (boundaries.back() < size) {
    std::uint32_t payload_size = 0;
    in.seekg(static_cast<std::streamoff>(boundaries.back()));
    in.read(reinterpret_cast<char*>(&payload_size), sizeof payload_size);
    boundaries.push_back(boundaries.back() + 24 + payload_size);
  }
  EXPECT_EQ(boundaries.back(), size) << "file does not end on a record boundary";
  return boundaries;
}

void copy_prefix(const std::string& from, const std::string& to, std::uintmax_t bytes) {
  std::filesystem::copy_file(from, to, std::filesystem::copy_options::overwrite_existing);
  std::filesystem::resize_file(to, bytes);
}

TEST(CampaignJournal, AppendRecoverRoundTripIsBitwise) {
  JournalPath file("roundtrip");
  constexpr std::uint64_t kSignature = 0xfeedbeefcafe1234ULL;
  {
    CampaignJournal journal(file.path, kSignature);
    EXPECT_TRUE(journal.recovered().empty());
    journal.append(0, 0, make_summary(1));
    journal.append(1, 0, make_summary(2));
    journal.append(0, 1, make_summary(3));
    journal.sync();
    EXPECT_EQ(journal.appended(), 3u);
  }
  CampaignJournal reopened(file.path, kSignature);
  ASSERT_EQ(reopened.recovered().size(), 3u);
  EXPECT_EQ(reopened.appended(), 0u);  // recovered records don't count as appends
  const auto& records = reopened.recovered();
  EXPECT_EQ(records[0].cell, 0u);
  EXPECT_EQ(records[0].replication, 0u);
  EXPECT_EQ(records[1].cell, 1u);
  EXPECT_EQ(records[1].replication, 0u);
  EXPECT_EQ(records[2].cell, 0u);
  EXPECT_EQ(records[2].replication, 1u);
  expect_summary_bitwise(records[0].summary, make_summary(1));
  expect_summary_bitwise(records[1].summary, make_summary(2));
  expect_summary_bitwise(records[2].summary, make_summary(3));

  // Appends after recovery extend the same file.
  reopened.append(1, 1, make_summary(4));
  reopened.sync();
  CampaignJournal again(file.path, kSignature);
  ASSERT_EQ(again.recovered().size(), 4u);
  expect_summary_bitwise(again.recovered()[3].summary, make_summary(4));
}

TEST(CampaignJournal, TruncationAtEveryRecordBoundaryRecoversThePrefix) {
  JournalPath file("boundaries");
  JournalPath cut("boundaries_cut");
  constexpr std::uint64_t kSignature = 77;
  {
    CampaignJournal journal(file.path, kSignature);
    for (std::uint32_t r = 0; r < 4; ++r) journal.append(r % 2, r / 2, make_summary(r));
    journal.sync();
  }
  const std::vector<std::uintmax_t> boundaries = record_boundaries(file.path);
  ASSERT_EQ(boundaries.size(), 5u);  // header end + 4 record ends

  for (std::size_t k = 0; k < boundaries.size(); ++k) {
    SCOPED_TRACE(k);
    // Exactly at the boundary: the first k records survive, nothing is lost.
    copy_prefix(file.path, cut.path, boundaries[k]);
    {
      CampaignJournal journal(cut.path, kSignature);
      ASSERT_EQ(journal.recovered().size(), k);
      for (std::size_t i = 0; i < k; ++i) {
        expect_summary_bitwise(journal.recovered()[i].summary,
                               make_summary(static_cast<std::uint64_t>(i)));
      }
    }
    EXPECT_EQ(std::filesystem::file_size(cut.path), boundaries[k]);

    // Mid-record cuts (a kill mid-append): the torn tail is dropped AND
    // physically truncated, so the next append lands on a clean boundary.
    if (k + 1 >= boundaries.size()) continue;
    for (const std::uintmax_t offset :
         {std::uintmax_t{1}, std::uintmax_t{23}, boundaries[k + 1] - boundaries[k] - 1}) {
      SCOPED_TRACE(offset);
      copy_prefix(file.path, cut.path, boundaries[k] + offset);
      {
        CampaignJournal journal(cut.path, kSignature);
        EXPECT_EQ(journal.recovered().size(), k);
      }
      EXPECT_EQ(std::filesystem::file_size(cut.path), boundaries[k]);
    }
  }
}

TEST(CampaignJournal, CorruptRecordDropsItAndItsSuffix) {
  JournalPath file("corrupt");
  constexpr std::uint64_t kSignature = 88;
  {
    CampaignJournal journal(file.path, kSignature);
    for (std::uint32_t r = 0; r < 3; ++r) journal.append(0, r, make_summary(r));
    journal.sync();
  }
  const std::vector<std::uintmax_t> boundaries = record_boundaries(file.path);
  // Flip a byte inside record 1's payload: records 0 survives, 1 fails its
  // checksum, and 2 — though intact — is unreachable past the corruption.
  {
    std::fstream f(file.path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(boundaries[1] + 30));
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-1, std::ios::cur);
    byte = static_cast<char>(byte ^ 0xff);
    f.write(&byte, 1);
  }
  CampaignJournal journal(file.path, kSignature);
  ASSERT_EQ(journal.recovered().size(), 1u);
  expect_summary_bitwise(journal.recovered()[0].summary, make_summary(0));
  EXPECT_EQ(std::filesystem::file_size(file.path), boundaries[1]);
}

TEST(CampaignJournal, SignatureMismatchRestartsTheFile) {
  JournalPath file("signature");
  {
    CampaignJournal journal(file.path, 1);
    journal.append(0, 0, make_summary(9));
    journal.sync();
  }
  // A different campaign must not fold the old records.
  {
    CampaignJournal journal(file.path, 2);
    EXPECT_TRUE(journal.recovered().empty());
    journal.append(5, 6, make_summary(10));
    journal.sync();
  }
  // The restart rewrote the header: signature 2 now owns the file...
  {
    CampaignJournal journal(file.path, 2);
    ASSERT_EQ(journal.recovered().size(), 1u);
    EXPECT_EQ(journal.recovered()[0].cell, 5u);
  }
  // ...and signature 1's records are gone for good.
  CampaignJournal journal(file.path, 1);
  EXPECT_TRUE(journal.recovered().empty());
}

TEST(CampaignJournal, ForeignFilesAreRefusedNotOverwritten) {
  JournalPath file("foreign");
  {
    std::ofstream out(file.path, std::ios::binary);
    const char garbage[] = "NOTA journal at all, some other file's bytes....";
    out.write(garbage, sizeof garbage);
  }
  EXPECT_THROW(CampaignJournal(file.path, 3), std::runtime_error);

  // Right magic, future format version: also not ours to rewrite.
  {
    std::ofstream out(file.path, std::ios::binary | std::ios::trunc);
    const char magic[4] = {'D', 'G', 'J', 'L'};
    const std::uint32_t version = CampaignJournal::kFormatVersion + 1;
    const std::uint64_t signature = 3;
    out.write(magic, sizeof magic);
    out.write(reinterpret_cast<const char*>(&version), sizeof version);
    out.write(reinterpret_cast<const char*>(&signature), sizeof signature);
  }
  EXPECT_THROW(CampaignJournal(file.path, 3), std::runtime_error);
}

TEST(CampaignJournal, CampaignSignatureBindsCellsAndPrecisionOptions) {
  const auto cells_of = [](std::initializer_list<const char*> labels) {
    std::vector<NamedConfig> cells;
    for (const char* label : labels) cells.push_back(NamedConfig{label, {}});
    return cells;
  };
  const std::vector<NamedConfig> cells = cells_of({"alpha", "beta"});
  RunOptions options;
  const std::uint64_t reference = CampaignJournal::campaign_signature(cells, options);

  // Deterministic for identical inputs.
  EXPECT_EQ(CampaignJournal::campaign_signature(cells_of({"alpha", "beta"}), options),
            reference);
  // Any cell-list change is a different campaign.
  EXPECT_NE(CampaignJournal::campaign_signature(cells_of({"alpha"}), options), reference);
  EXPECT_NE(CampaignJournal::campaign_signature(cells_of({"alpha", "gamma"}), options),
            reference);
  EXPECT_NE(CampaignJournal::campaign_signature(cells_of({"beta", "alpha"}), options),
            reference);
  // So is any precision-relevant option change.
  {
    RunOptions o = options;
    o.base_seed += 1;
    EXPECT_NE(CampaignJournal::campaign_signature(cells, o), reference);
  }
  {
    RunOptions o = options;
    o.min_replications += 1;
    EXPECT_NE(CampaignJournal::campaign_signature(cells, o), reference);
  }
  {
    RunOptions o = options;
    o.max_replications += 1;
    EXPECT_NE(CampaignJournal::campaign_signature(cells, o), reference);
  }
  {
    RunOptions o = options;
    o.ci_level = 0.99;
    EXPECT_NE(CampaignJournal::campaign_signature(cells, o), reference);
  }
  {
    RunOptions o = options;
    o.target_relative_error = 0.01;
    EXPECT_NE(CampaignJournal::campaign_signature(cells, o), reference);
  }
  // Execution-shape options deliberately do NOT change the signature: a
  // resumed campaign may use a different worker count or batch size.
  {
    RunOptions o = options;
    o.threads = 7;
    o.batch_size = 2;
    o.reuse_workspaces = false;
    EXPECT_EQ(CampaignJournal::campaign_signature(cells, o), reference);
  }
}

}  // namespace
}  // namespace dg::exp
