// Execution engine: replica lifecycle, checkpointing, failure handling,
// sibling cancellation — on a tiny deterministic grid.
#include <gtest/gtest.h>

#include "sim_test_util.hpp"

namespace dg::test {
namespace {

TEST(Engine, SingleTaskRunsForWorkOverPower) {
  WorldOptions options;
  options.num_machines = 1;
  options.machine_power = 10.0;
  World world(options);
  sched::BotState& bot = world.add_bot({100.0});
  world.sim.run();
  EXPECT_TRUE(bot.completed());
  EXPECT_DOUBLE_EQ(bot.completion_time(), 10.0);  // 100 work / power 10
  EXPECT_DOUBLE_EQ(bot.turnaround(), 10.0);
  EXPECT_DOUBLE_EQ(bot.waiting_time(), 0.0);
}

TEST(Engine, TasksRunConcurrentlyAcrossMachines) {
  WorldOptions options;
  options.num_machines = 3;
  World world(options);
  sched::BotState& bot = world.add_bot({100.0, 100.0, 100.0});
  world.sim.schedule_at(5.0, [&] { EXPECT_EQ(world.busy_machines(), 3); });
  world.sim.run();
  EXPECT_DOUBLE_EQ(bot.completion_time(), 10.0);
}

TEST(Engine, ReplicationKicksInAfterLastPendingTask) {
  WorldOptions options;
  options.num_machines = 3;
  options.threshold = 2;
  World world(options);
  // One task, three machines: WQR-FT runs 2 replicas (threshold), not 3.
  sched::BotState& bot = world.add_bot({100.0});
  world.sim.schedule_at(1.0, [&] {
    EXPECT_EQ(bot.task(0).running_replicas(), 2);
    EXPECT_EQ(world.busy_machines(), 2);
  });
  world.sim.run();
  EXPECT_TRUE(bot.completed());
}

TEST(Engine, WinnerCancelsSiblingsAndFreesMachines) {
  WorldOptions options;
  options.num_machines = 2;
  World world(options);
  sched::BotState& bot = world.add_bot({100.0});
  world.sim.run();
  EXPECT_TRUE(bot.completed());
  EXPECT_EQ(world.busy_machines(), 0);
  EXPECT_EQ(world.engine->replicas_cancelled(), 1u);
  EXPECT_EQ(bot.task(0).running_replicas(), 0);
}

TEST(Engine, TaskCompletesExactlyOnce) {
  WorldOptions options;
  options.num_machines = 4;
  World world(options);
  world.add_bot({50.0, 50.0});
  world.sim.run();
  EXPECT_EQ(world.scheduler->tasks_completed(), 2u);
  EXPECT_EQ(world.scheduler->bots_completed(), 1u);
}

TEST(Engine, FailureWithoutCheckpointLosesAllProgress) {
  WorldOptions options;
  options.num_machines = 1;
  options.threshold = 1;
  World world(options);
  sched::BotState& bot = world.add_bot({100.0});  // needs 10 s
  world.fail_machine_at(0, 6.0);                  // 60% done, lost
  world.repair_machine_at(0, 20.0);
  world.sim.run();
  EXPECT_TRUE(bot.completed());
  // Restarted from scratch at t=20, finishes at 30.
  EXPECT_DOUBLE_EQ(bot.completion_time(), 30.0);
  EXPECT_NEAR(world.engine->lost_work(), 60.0, 1e-9);
  EXPECT_EQ(world.engine->replicas_killed_by_failure(), 1u);
}

TEST(Engine, FailedTaskResubmittedOnOtherMachineImmediately) {
  WorldOptions options;
  options.num_machines = 2;
  options.threshold = 1;  // no replication: second machine idle
  World world(options);
  sched::BotState& bot = world.add_bot({100.0});
  world.fail_machine_at(0, 4.0);
  world.sim.run();
  EXPECT_TRUE(bot.completed());
  // Restarts at t=4 on machine 1, runs 10 s.
  EXPECT_DOUBLE_EQ(bot.completion_time(), 14.0);
}

TEST(Engine, CheckpointPreservesProgressAcrossFailure) {
  WorldOptions options;
  options.num_machines = 2;
  options.threshold = 1;
  options.checkpointing = true;
  options.checkpoint_interval = 2.0;  // checkpoint every 2 s of compute
  World world(options);
  sched::BotState& bot = world.add_bot({1000.0});  // 100 s of compute
  // First checkpoint commits by t <= 2 + 720; by t=1000 at least one commit
  // (20 work) exists and the replica is at most one leg past it.
  world.fail_machine_at(0, 1000.0);
  world.sim.run();
  EXPECT_TRUE(bot.completed());
  EXPECT_GT(world.engine->checkpoints_saved(), 0u);
  // The restart (on the idle second machine) retrieved the checkpoint.
  EXPECT_EQ(world.engine->checkpoint_retrievals(), 1u);
  // Lost work bounded by one uncommitted compute leg (2 s * power 10).
  EXPECT_LE(world.engine->lost_work(), 20.0 + 1e-9);
  EXPECT_GT(bot.task(0).checkpointed_work(), 0.0);
}

TEST(Engine, CheckpointTransferTimesComeFromServerDistribution) {
  WorldOptions options;
  options.num_machines = 1;
  options.checkpointing = true;
  options.checkpoint_interval = 3.0;
  World world(options);
  sched::BotState& bot = world.add_bot({100.0});  // 10 s compute, 3 checkpoints
  world.sim.run();
  EXPECT_TRUE(bot.completed());
  const auto saves = world.engine->checkpoints_saved();
  EXPECT_EQ(saves, 3u);
  // Completion = 10 s compute + 3 transfers of U[240,720]:
  EXPECT_GE(bot.completion_time(), 10.0 + 3 * 240.0);
  EXPECT_LE(bot.completion_time(), 10.0 + 3 * 720.0);
}

TEST(Engine, FailureDuringCheckpointTransferLosesUncommittedLeg) {
  WorldOptions options;
  options.num_machines = 1;
  options.threshold = 1;
  options.checkpointing = true;
  options.checkpoint_interval = 4.0;
  World world(options);
  sched::BotState& bot = world.add_bot({100.0});
  // First checkpoint begins at t=4 (40 work done, uncommitted); transfer
  // takes >= 240 s. Kill the machine mid-transfer.
  world.fail_machine_at(0, 10.0);
  world.repair_machine_at(0, 500.0);
  world.sim.run();
  EXPECT_TRUE(bot.completed());
  // The first (interrupted) transfer committed nothing: all 40 work lost.
  EXPECT_NEAR(world.engine->lost_work(), 40.0, 1e-9);
  // The rerun checkpoints normally: legs of 4+4+2 s commit 40 then 80.
  EXPECT_EQ(world.engine->checkpoints_saved(), 2u);
  EXPECT_DOUBLE_EQ(bot.task(0).checkpointed_work(), 80.0);
}

TEST(Engine, IdleMachineFailureIsHarmless) {
  WorldOptions options;
  options.num_machines = 2;
  options.threshold = 1;
  World world(options);
  sched::BotState& bot = world.add_bot({100.0});
  world.fail_machine_at(1, 2.0);  // idle machine
  world.sim.run();
  EXPECT_TRUE(bot.completed());
  EXPECT_DOUBLE_EQ(bot.completion_time(), 10.0);
  EXPECT_EQ(world.engine->replicas_killed_by_failure(), 0u);
}

TEST(Engine, RepairTriggersDispatchOfWaitingWork) {
  WorldOptions options;
  options.num_machines = 1;
  options.threshold = 1;
  World world(options);
  world.fail_machine_at(0, 0.0);
  sched::BotState& bot = world.add_bot({100.0}, 1.0);  // arrives, no machine
  world.repair_machine_at(0, 25.0);
  world.sim.run();
  EXPECT_TRUE(bot.completed());
  EXPECT_DOUBLE_EQ(bot.first_dispatch_time(), 25.0);
  EXPECT_DOUBLE_EQ(bot.waiting_time(), 24.0);
  EXPECT_DOUBLE_EQ(bot.completion_time(), 35.0);
}

TEST(Engine, UtilizationAccountsBusyPower) {
  WorldOptions options;
  options.num_machines = 2;
  options.threshold = 1;
  World world(options);
  world.add_bot({100.0});  // one machine busy 10 s, the other idle
  world.sim.run();
  // At t=10: busy integral = 10 s * 10 power over total 20 power.
  EXPECT_NEAR(world.engine->utilization(10.0), 0.5, 1e-9);
}

TEST(Engine, WastedComputeTracksCancelledReplicas) {
  WorldOptions options;
  options.num_machines = 2;
  options.threshold = 2;
  World world(options);
  world.add_bot({100.0});
  world.sim.run();
  // Two replicas ran 10 s each; one wins (useful), one wasted.
  EXPECT_NEAR(world.engine->useful_compute_time(), 10.0, 1e-9);
  EXPECT_NEAR(world.engine->wasted_compute_time(), 10.0, 1e-9);
}

TEST(Engine, ResubmissionHasPriorityOverYoungerBags) {
  WorldOptions options;
  options.num_machines = 1;
  options.threshold = 1;
  options.policy = sched::PolicyKind::kFcfsShare;
  World world(options);
  sched::BotState& first = world.add_bot({100.0});
  world.add_bot({100.0}, 0.5);
  world.fail_machine_at(0, 4.0);
  world.repair_machine_at(0, 8.0);
  world.sim.run();
  // On repair the failed task of bag 0 is chosen before bag 1's fresh task.
  EXPECT_DOUBLE_EQ(first.completion_time(), 18.0);
}

TEST(Engine, MultipleFailuresOnSameTaskEventuallyComplete) {
  WorldOptions options;
  options.num_machines = 1;
  options.threshold = 1;
  World world(options);
  sched::BotState& bot = world.add_bot({100.0});
  for (int i = 0; i < 5; ++i) {
    world.fail_machine_at(0, 5.0 + 10.0 * i);
    world.repair_machine_at(0, 6.0 + 10.0 * i);
  }
  world.sim.run();
  EXPECT_TRUE(bot.completed());
  EXPECT_EQ(world.engine->replicas_killed_by_failure(), 5u);
}

TEST(Engine, HeterogeneousSpeedWinnerIsFasterMachine) {
  // Build a custom 2-machine grid with different powers.
  des::Simulator sim;
  grid::GridConfig config;
  config.heterogeneity = grid::Heterogeneity::kHet;
  config.total_power = 25.0;
  config.het_power_lo = 10.0;
  config.het_power_hi = 20.0;
  config.availability = grid::AvailabilityModel::for_level(grid::AvailabilityLevel::kAlways);
  grid::DesktopGrid grid(config, sim, 11);
  ASSERT_EQ(grid.size(), 2u);
  sched::MultiBotScheduler scheduler(
      sim, grid, sched::make_policy(sched::PolicyKind::kFcfsShare),
      sched::IndividualScheduler::make(sched::IndividualSchedulerKind::kWqrFt),
      std::make_unique<sched::StaticReplication>(2));
  sim::EngineConfig engine_config;
  engine_config.checkpointing = false;
  sim::ExecutionEngine engine(sim, grid, scheduler, engine_config, 11);
  grid.start(nullptr, nullptr);

  workload::BotSpec spec;
  spec.tasks = {workload::TaskSpec{100.0}};
  sched::BotState bot(spec);
  scheduler.submit(bot);
  sim.run();
  const double fastest = std::max(grid.machine(0).power(), grid.machine(1).power());
  EXPECT_TRUE(bot.completed());
  EXPECT_DOUBLE_EQ(bot.completion_time(), 100.0 / fastest);
}

}  // namespace
}  // namespace dg::test
