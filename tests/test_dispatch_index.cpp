// ActiveBotList and DispatchIndex unit behaviour: the intrusive active-bag
// list preserves arrival order across O(1) erases, and the incremental
// eligibility index tracks the memberships the policies query — including
// the stale-pool bookkeeping that replays the positional scans' lazy
// queue pruning (see sched/dispatch_index.hpp).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sched/bot_state.hpp"
#include "sched/dispatch_index.hpp"
#include "sched/individual.hpp"
#include "workload/bot.hpp"

namespace dg::sched {
namespace {

workload::BotSpec make_spec(std::vector<double> works, workload::BotId id,
                            double arrival = 0.0) {
  workload::BotSpec spec;
  spec.id = id;
  spec.arrival_time = arrival;
  for (double w : works) spec.tasks.push_back(workload::TaskSpec{w});
  return spec;
}

std::vector<workload::BotId> ids_of(const ActiveBotList& list) {
  std::vector<workload::BotId> ids;
  for (BotState* bot : list) ids.push_back(bot->id());
  return ids;
}

// --- ActiveBotList ---

TEST(ActiveBotList, PreservesArrivalOrderAcrossErase) {
  std::vector<std::unique_ptr<BotState>> bots;
  ActiveBotList list;
  for (workload::BotId id = 0; id < 5; ++id) {
    bots.push_back(std::make_unique<BotState>(make_spec({10.0}, id)));
    list.push_back(*bots.back());
  }
  EXPECT_EQ(list.size(), 5u);
  EXPECT_EQ(ids_of(list), (std::vector<workload::BotId>{0, 1, 2, 3, 4}));

  list.erase(*bots[2]);  // middle
  EXPECT_EQ(ids_of(list), (std::vector<workload::BotId>{0, 1, 3, 4}));
  list.erase(*bots[0]);  // front
  EXPECT_EQ(ids_of(list), (std::vector<workload::BotId>{1, 3, 4}));
  list.erase(*bots[4]);  // back
  EXPECT_EQ(ids_of(list), (std::vector<workload::BotId>{1, 3}));

  EXPECT_EQ(list.front(), bots[1].get());
  EXPECT_EQ(list.back(), bots[3].get());
  EXPECT_TRUE(ActiveBotList::contains(*bots[1]));
  EXPECT_FALSE(ActiveBotList::contains(*bots[2]));

  // A previously erased bag can rejoin — at the back, like a fresh arrival.
  list.push_back(*bots[2]);
  EXPECT_EQ(ids_of(list), (std::vector<workload::BotId>{1, 3, 2}));

  list.erase(*bots[1]);
  list.erase(*bots[3]);
  list.erase(*bots[2]);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.front(), nullptr);
}

// --- DispatchIndex ---

class DispatchIndexTest : public ::testing::Test {
 protected:
  BotState& add_bot(std::vector<double> works) {
    const auto id = static_cast<workload::BotId>(bots_.size());
    bots_.push_back(std::make_unique<BotState>(make_spec(std::move(works), id)));
    BotState& bot = *bots_.back();
    bot.set_dispatch_index(&index_);
    index_.register_bot(bot);
    return bot;
  }

  void start_replica(TaskState& task, double now) {
    task.on_replica_started(now);
    task.bot().after_replica_started(task);
  }

  void fail_replica(TaskState& task, double now) {
    task.on_replica_stopped(now);
    task.bot().after_replica_stopped(task);
    if (task.running_replicas() == 0) task.bot().push_resubmission(task);
  }

  std::vector<std::unique_ptr<BotState>> bots_;
  DispatchIndex index_;
};

TEST_F(DispatchIndexTest, MembershipsFollowTaskTransitions) {
  index_.set_threshold(1);
  BotState& a = add_bot({10.0});
  BotState& b = add_bot({10.0});
  EXPECT_EQ(index_.first_dispatchable(), &a);
  EXPECT_EQ(index_.first_no_running(), &a);

  // a's only task starts: under threshold 1 the bag is exhausted.
  start_replica(a.task(0), 1.0);
  EXPECT_EQ(index_.first_dispatchable(), &b);
  EXPECT_EQ(index_.first_no_running(), &b);

  // The replica fails: the resubmission entry restores eligibility.
  fail_replica(a.task(0), 2.0);
  EXPECT_EQ(index_.first_dispatchable(), &a);
}

TEST_F(DispatchIndexTest, ThresholdChangeRebuildsDispatchable) {
  index_.set_threshold(1);
  BotState& a = add_bot({10.0});
  add_bot({10.0});
  start_replica(a.task(0), 1.0);
  EXPECT_NE(index_.first_dispatchable(), &a);
  // Raising the threshold makes the single-replica task replicable again.
  index_.set_threshold(2);
  EXPECT_EQ(index_.first_dispatchable(), &a);
  index_.set_threshold(1);
  EXPECT_NE(index_.first_dispatchable(), &a);
}

TEST_F(DispatchIndexTest, NextDispatchableWrapsAroundLikeARing) {
  index_.set_threshold(1);
  BotState& a = add_bot({10.0});
  BotState& b = add_bot({10.0});
  BotState& c = add_bot({10.0});
  EXPECT_EQ(index_.next_dispatchable_after(~0ULL), &a);  // virgin cursor
  EXPECT_EQ(index_.next_dispatchable_after(a.id()), &b);
  EXPECT_EQ(index_.next_dispatchable_after(c.id()), &a);  // wrap
  start_replica(b.task(0), 1.0);
  EXPECT_EQ(index_.next_dispatchable_after(a.id()), &c);  // skips ineligible
}

TEST_F(DispatchIndexTest, UnregisterRemovesFromAllSets) {
  index_.set_threshold(1);
  BotState& a = add_bot({10.0});
  BotState& b = add_bot({10.0});
  index_.unregister_bot(a);
  a.set_dispatch_index(nullptr);
  EXPECT_EQ(index_.first_dispatchable(), &b);
  EXPECT_EQ(index_.first_no_running(), &b);
  // Late mutations of an unregistered bag are ignored, not resurrected.
  start_replica(a.task(0), 1.0);
  EXPECT_EQ(index_.first_dispatchable(), &b);
}

TEST_F(DispatchIndexTest, DrainReplaysThePositionalScansQueuePruning) {
  // Two identical bags exercise both sides of the lazy-queue contract: a
  // stale resubmission entry revalidates in place unless a (replayed) probe
  // pruned it first. `drained` models a bag an arrival-order scan passed
  // over while its entries were stale; `kept` models one it never probed.
  index_.set_threshold(1);
  const auto individual = IndividualScheduler::make(IndividualSchedulerKind::kWqrFt);
  BotState& drained = add_bot({10.0, 20.0});
  BotState& kept = add_bot({10.0, 20.0});

  for (BotState* bot : {&drained, &kept}) {
    // Both tasks fail (enqueuing 0 then 1), then both restart: the queue now
    // holds only stale entries and the bag drops out of dispatchable.
    for (std::size_t t : {0u, 1u}) {
      start_replica(bot->task(t), 1.0);
      fail_replica(bot->task(t), 2.0);
      start_replica(bot->task(t), 3.0);
    }
  }
  EXPECT_EQ(index_.first_dispatchable(), nullptr);

  // The scan probes `drained` (id 0) on its way to a younger bag; `kept`
  // (id 1) sits beyond the winner and keeps its entries.
  index_.drain_stale_below(*individual, kept.id());

  for (BotState* bot : {&drained, &kept}) {
    fail_replica(bot->task(1), 4.0);  // task 1 first this time...
    fail_replica(bot->task(0), 5.0);  // ...then task 0
  }
  // Pruned queue: only the fresh pushes remain, in re-failure order.
  EXPECT_EQ(drained.peek_resubmission(), &drained.task(1));
  // Unpruned queue: the original entries revalidated, preserving the
  // first-failure order — task 0 is still at the front.
  EXPECT_EQ(kept.peek_resubmission(), &kept.task(0));
}

}  // namespace
}  // namespace dg::sched
