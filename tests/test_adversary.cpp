// Adversarial scenario director (sim/adversary.hpp): deterministic window
// placement, parameter validation, burst modulation of the arrival process,
// and the bit-identity contracts — a disabled (or all-mechanisms-off)
// adversary must leave the default path untouched, and an enabled adversary
// must be bit-identical cache-on vs cache-off (its scheduled outages run
// live in both paths, off their own RNG stream).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/adversary.hpp"
#include "sim/simulation.hpp"
#include "workload/generator.hpp"

namespace dg {
namespace {

workload::WorkloadConfig span_workload() {
  workload::WorkloadConfig config;
  config.num_bots = 100;
  config.arrival_rate = 1e-4;  // expected span = 1e6 s
  return config;
}

TEST(AdversaryWindows, SpreadsEvenlyAcrossArrivalSpan) {
  sim::AdversarialScenario scenario;
  scenario.enabled = true;
  scenario.num_windows = 3;
  scenario.window_duration = 7200.0;
  scenario.lead_fraction = 0.2;

  const std::vector<grid::StressWindow> windows =
      sim::adversary_windows(scenario, span_workload());
  ASSERT_EQ(windows.size(), 3u);
  // span = 1e6, lead = 2e5, step = (1e6 - 2e5) / 3.
  const double step = (1e6 - 2e5) / 3.0;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_DOUBLE_EQ(windows[i].start, 2e5 + static_cast<double>(i) * step);
    EXPECT_DOUBLE_EQ(windows[i].duration(), 7200.0);
    if (i > 0) {
      EXPECT_GT(windows[i].start, windows[i - 1].end);
    }
  }
  // Deterministic: same inputs, same windows.
  EXPECT_EQ(sim::adversary_windows(scenario, span_workload()), windows);
}

TEST(AdversaryWindows, ExplicitSpacingOverridesEvenSpread) {
  sim::AdversarialScenario scenario;
  scenario.enabled = true;
  scenario.num_windows = 4;
  scenario.window_duration = 3600.0;
  scenario.lead_fraction = 0.0;
  scenario.spacing = 50000.0;

  const std::vector<grid::StressWindow> windows =
      sim::adversary_windows(scenario, span_workload());
  ASSERT_EQ(windows.size(), 4u);
  for (std::size_t i = 0; i < windows.size(); ++i) {
    EXPECT_DOUBLE_EQ(windows[i].start, static_cast<double>(i) * 50000.0);
  }
}

TEST(AdversaryWindows, DisabledScenarioYieldsNoWindows) {
  EXPECT_TRUE(sim::adversary_windows(sim::AdversarialScenario{}, span_workload()).empty());
}

TEST(AdversaryWindows, RejectsBadParameters) {
  const auto expect_throw = [](auto mutate) {
    sim::AdversarialScenario scenario;
    scenario.enabled = true;
    mutate(scenario);
    EXPECT_THROW((void)sim::adversary_windows(scenario, span_workload()),
                 std::invalid_argument);
  };
  expect_throw([](sim::AdversarialScenario& s) { s.num_windows = 0; });
  expect_throw([](sim::AdversarialScenario& s) { s.window_duration = 0.0; });
  expect_throw([](sim::AdversarialScenario& s) { s.window_duration = -1.0; });
  expect_throw([](sim::AdversarialScenario& s) { s.lead_fraction = 1.0; });
  expect_throw([](sim::AdversarialScenario& s) { s.lead_fraction = -0.2; });
  expect_throw([](sim::AdversarialScenario& s) { s.spacing = -1.0; });
  expect_throw([](sim::AdversarialScenario& s) { s.burst_intensity = 0.9; });
  expect_throw([](sim::AdversarialScenario& s) { s.outage_fraction = 0.0; });
  expect_throw([](sim::AdversarialScenario& s) { s.outage_fraction = 1.5; });
  // Spacing shorter than the window duration would overlap the windows.
  expect_throw([](sim::AdversarialScenario& s) {
    s.spacing = 1000.0;
    s.window_duration = 7200.0;
  });
  // Degenerate workloads have no arrival span to place windows in.
  sim::AdversarialScenario scenario;
  scenario.enabled = true;
  workload::WorkloadConfig workload = span_workload();
  workload.arrival_rate = 0.0;
  EXPECT_THROW((void)sim::adversary_windows(scenario, workload), std::invalid_argument);
}

// --- burst modulation of the arrival process ---

TEST(AdversaryBursts, WindowsConcentrateArrivals) {
  workload::WorkloadConfig config = span_workload();
  config.num_bots = 400;
  // One window over the middle fifth of the span at 8x rate.
  config.stress_windows = {{4e5, 6e5}};
  config.stress_multiplier = 8.0;
  workload::WorkloadGenerator generator(config, rng::RandomStream::derive(7, "workload"));
  const std::vector<workload::BotSpec> specs = generator.generate();
  ASSERT_EQ(specs.size(), 400u);
  std::size_t inside = 0;
  std::size_t total = 0;
  for (const workload::BotSpec& spec : specs) {
    if (spec.arrival_time <= 1e6) {
      ++total;
      if (spec.arrival_time >= 4e5 && spec.arrival_time < 6e5) ++inside;
    }
  }
  // The window covers 1/5 of the span but runs at 8x rate; well over a
  // proportional share of arrivals must land inside it.
  ASSERT_GT(total, 100u);
  EXPECT_GT(static_cast<double>(inside) / static_cast<double>(total), 0.35);
}

TEST(AdversaryBursts, EmptyWindowsAreBitIdenticalToPlainPoisson) {
  const workload::WorkloadConfig plain = span_workload();
  workload::WorkloadConfig with_field = span_workload();
  with_field.stress_multiplier = 3.0;  // irrelevant without windows
  workload::WorkloadGenerator a(plain, rng::RandomStream::derive(11, "workload"));
  workload::WorkloadGenerator b(with_field, rng::RandomStream::derive(11, "workload"));
  const std::vector<workload::BotSpec> sa = a.generate();
  const std::vector<workload::BotSpec> sb = b.generate();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].arrival_time, sb[i].arrival_time);  // bitwise
  }
}

TEST(AdversaryBursts, RejectsBadStressConfiguration) {
  {
    workload::WorkloadConfig config = span_workload();
    config.stress_windows = {{100.0, 50.0}};  // end <= start
    EXPECT_THROW(workload::WorkloadGenerator(config, rng::RandomStream::derive(1, "workload")),
                 std::invalid_argument);
  }
  {
    workload::WorkloadConfig config = span_workload();
    config.stress_windows = {{100.0, 500.0}, {400.0, 900.0}};  // overlap
    EXPECT_THROW(workload::WorkloadGenerator(config, rng::RandomStream::derive(1, "workload")),
                 std::invalid_argument);
  }
  {
    workload::WorkloadConfig config = span_workload();
    config.stress_windows = {{100.0, 500.0}};
    config.stress_multiplier = 0.5;  // < 1
    EXPECT_THROW(workload::WorkloadGenerator(config, rng::RandomStream::derive(1, "workload")),
                 std::invalid_argument);
  }
  {
    workload::WorkloadConfig config = span_workload();
    config.arrivals = workload::ArrivalProcess::kBursty;
    config.stress_windows = {{100.0, 500.0}};  // Poisson-only feature
    EXPECT_THROW(workload::WorkloadGenerator(config, rng::RandomStream::derive(1, "workload")),
                 std::invalid_argument);
  }
}

// --- end-to-end simulation contracts ---

sim::SimulationConfig small_sim_config() {
  sim::SimulationConfig config;
  config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHet,
                                         grid::AvailabilityLevel::kLow);
  config.workload =
      sim::make_paper_workload(config.grid, 25000.0, workload::Intensity::kLow, 8);
  config.policy = sched::PolicyKind::kRoundRobin;
  config.individual = sched::IndividualSchedulerKind::kWqrFt;
  config.warmup_bots = 1;
  config.seed = 31337;
  return config;
}

void expect_same_result(const sim::SimulationResult& a, const sim::SimulationResult& b) {
  EXPECT_EQ(a.turnaround.mean(), b.turnaround.mean());
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.machine_failures, b.machine_failures);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.kernel.events_scheduled, b.kernel.events_scheduled);
  EXPECT_EQ(a.faults.server_outages, b.faults.server_outages);
  EXPECT_EQ(a.faults.server_downtime, b.faults.server_downtime);
}

TEST(AdversarySimulation, AllMechanismsOffIsBitIdenticalToDisabled) {
  // enabled=true with every mechanism neutralized must not perturb a single
  // stream: burst_intensity == 1 installs no stress windows, and the outage/
  // server mechanisms are off.
  const sim::SimulationResult baseline = sim::Simulation(small_sim_config()).run();
  sim::SimulationConfig config = small_sim_config();
  config.adversary.enabled = true;
  config.adversary.burst_intensity = 1.0;
  config.adversary.hit_machines = false;
  config.adversary.hit_server = false;
  const sim::SimulationResult neutral = sim::Simulation(config).run();
  expect_same_result(baseline, neutral);
}

TEST(AdversarySimulation, DirectorActuallyStressesTheRun) {
  sim::SimulationConfig config = small_sim_config();
  config.adversary.enabled = true;
  config.adversary.num_windows = 2;
  config.adversary.window_duration = 5000.0;
  config.adversary.burst_intensity = 4.0;
  config.adversary.outage_fraction = 0.3;
  const sim::SimulationResult stressed = sim::Simulation(config).run();
  // Same director minus the outage mechanism: identical windows and arrival
  // bursts, so the delta isolates the scheduled correlated outages. (The
  // no-adversary baseline is not comparable — bursts compress the arrival
  // span, changing how long the stochastic churn runs.)
  sim::SimulationConfig no_outages = config;
  no_outages.adversary.hit_machines = false;
  const sim::SimulationResult unstruck = sim::Simulation(no_outages).run();
  EXPECT_GT(stressed.machine_failures, unstruck.machine_failures);
  // The server is forced down over each window.
  EXPECT_GE(stressed.faults.server_outages, 1u);
  EXPECT_GT(stressed.faults.server_downtime, 0.0);
  EXPECT_EQ(stressed.bots_completed, stressed.bots.size());
}

TEST(AdversarySimulation, WorldCacheReplayIsBitIdenticalUnderAdversary) {
  // The recorded world carries the stochastic processes; the adversary's
  // scheduled outages and server windows run live in both paths, so cache-on
  // must equal cache-off bit for bit.
  sim::SimulationConfig config = small_sim_config();
  config.grid.checkpoint_server_faults.enabled = true;
  config.grid.checkpoint_server_faults.mtbf = 8000.0;
  config.grid.checkpoint_server_faults.mttr = 4000.0;
  config.adversary.enabled = true;
  config.adversary.num_windows = 2;
  config.adversary.window_duration = 5000.0;
  config.adversary.burst_intensity = 4.0;
  config.adversary.outage_fraction = 0.3;

  const sim::SimulationResult live = sim::Simulation(config).run();
  config.world_cache = std::make_shared<grid::WorldCache>();
  const sim::SimulationResult cold = sim::Simulation(config).run();
  const sim::SimulationResult warm = sim::Simulation(config).run();
  expect_same_result(live, cold);
  expect_same_result(live, warm);
  EXPECT_EQ(config.world_cache->stats().misses, 1u);
  EXPECT_EQ(config.world_cache->stats().hits, 1u);
}

TEST(AdversarySimulation, RequiresPoissonArrivals) {
  sim::SimulationConfig config = small_sim_config();
  config.workload.arrivals = workload::ArrivalProcess::kBursty;
  config.adversary.enabled = true;
  EXPECT_THROW((void)sim::Simulation(config).run(), std::invalid_argument);
}

}  // namespace
}  // namespace dg
