// MultiBotScheduler unit behaviour: counters, thresholds, dispatch
// bookkeeping — driven through the test World.
#include <gtest/gtest.h>

#include "analysis/queueing.hpp"
#include "sched/replication.hpp"
#include "sim/simulation.hpp"
#include "sim_test_util.hpp"

namespace dg::test {
namespace {

TEST(Scheduler, CountersTrackActivity) {
  WorldOptions options;
  options.num_machines = 2;
  World world(options);
  world.add_bot({100.0, 100.0});
  world.sim.run();
  EXPECT_EQ(world.scheduler->tasks_completed(), 2u);
  EXPECT_EQ(world.scheduler->bots_completed(), 1u);
  // 2 initial dispatches + replication rounds after the pending pool drains.
  EXPECT_GE(world.scheduler->replicas_started(), 2u);
  EXPECT_EQ(world.scheduler->replica_failures(), 0u);
}

TEST(Scheduler, FailureCounterIncrements) {
  WorldOptions options;
  options.num_machines = 1;
  options.threshold = 1;
  World world(options);
  world.add_bot({100.0});
  world.fail_machine_at(0, 5.0);
  world.repair_machine_at(0, 6.0);
  world.sim.run();
  EXPECT_EQ(world.scheduler->replica_failures(), 1u);
}

TEST(Scheduler, EffectiveThresholdReflectsController) {
  WorldOptions options;
  options.threshold = 3;
  World world(options);
  EXPECT_EQ(world.scheduler->effective_threshold(), 3);
  EXPECT_EQ(world.scheduler->replication().threshold(), 3);
}

TEST(Scheduler, FcfsExclThresholdIsEffectivelyUnlimited) {
  WorldOptions options;
  options.policy = sched::PolicyKind::kFcfsExcl;
  World world(options);
  EXPECT_GT(world.scheduler->effective_threshold(), 1000000);
}

TEST(Scheduler, ActiveBotsShrinkOnCompletion) {
  WorldOptions options;
  options.num_machines = 2;
  World world(options);
  world.add_bot({100.0});
  world.add_bot({100.0}, 1.0);
  world.sim.schedule_at(2.0, [&] { EXPECT_EQ(world.scheduler->active_bots().size(), 2u); });
  world.sim.run();
  EXPECT_TRUE(world.scheduler->active_bots().empty());
}

TEST(Scheduler, FirstDispatchTimeRecordedOncePerBag) {
  WorldOptions options;
  options.num_machines = 1;
  options.threshold = 1;
  World world(options);
  sched::BotState& bot = world.add_bot({100.0, 100.0});
  world.sim.run();
  EXPECT_DOUBLE_EQ(bot.first_dispatch_time(), 0.0);
  EXPECT_DOUBLE_EQ(bot.completion_time(), 20.0);
  EXPECT_DOUBLE_EQ(bot.waiting_time(), 0.0);
}

TEST(DynamicReplication, ThresholdRisesWithFailures) {
  sched::DynamicReplication controller(0.05, 0.5, 4);
  EXPECT_EQ(controller.threshold(), 1);  // no evidence of failures yet
  for (int i = 0; i < 10; ++i) controller.on_replica_failure();
  EXPECT_GT(controller.failure_fraction(), 0.9);
  EXPECT_EQ(controller.threshold(), 4);  // capped
  for (int i = 0; i < 40; ++i) controller.on_replica_success();
  EXPECT_EQ(controller.threshold(), 1);
}

TEST(DynamicReplication, IntermediateFailureRates) {
  sched::DynamicReplication controller(0.05, 1.0, 4);  // alpha 1: track exactly
  controller.on_replica_failure();                     // p = 1 -> capped
  EXPECT_EQ(controller.threshold(), 4);
  sched::DynamicReplication half(0.05, 0.5, 4);
  half.on_replica_failure();
  half.on_replica_success();  // p = 0.25 -> ceil(log .05 / log .25) = 3
  EXPECT_NEAR(half.failure_fraction(), 0.25, 1e-12);
  EXPECT_EQ(half.threshold(), 3);
}

TEST(StaticReplication, ClampsToAtLeastOne) {
  sched::StaticReplication controller(0);
  EXPECT_EQ(controller.threshold(), 1);
  EXPECT_NE(controller.name().find("static"), std::string::npos);
}

// --- analysis: Het service model sanity (unit-level, no simulation) ---

TEST(BagServiceModel, HetGridUsesMeanMachinePower) {
  const grid::GridConfig het =
      grid::GridConfig::preset(grid::Heterogeneity::kHet, grid::AvailabilityLevel::kHigh);
  const grid::GridConfig hom =
      grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kHigh);
  const workload::WorkloadConfig workload_config =
      sim::make_paper_workload(hom, 125000.0, workload::Intensity::kLow, 10);
  const auto het_service = analysis::bag_service_model(het, workload_config);
  const auto hom_service = analysis::bag_service_model(hom, workload_config);
  // Same mean machine power (10): straggler regimes agree.
  EXPECT_NEAR(het_service.mean, hom_service.mean, hom_service.mean * 1e-6);
}

}  // namespace
}  // namespace dg::test
