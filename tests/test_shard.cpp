// Multi-process sharded runner (exp/shard.hpp): results must be
// bit-identical to the threaded ExperimentRunner for any worker count,
// chunk shape, worker-death schedule, or kill/resume point (satellites:
// cross-process bit-identity and kill/resume), the mmap pool must serve
// worlds across runs, and the env knobs must parse.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/shard.hpp"
#include "sim/simulation.hpp"

namespace dg::exp {
namespace {

/// Fresh scratch directory per test (journal + pool), removed on destruction.
struct ShardDir {
  explicit ShardDir(const std::string& name)
      : path((std::filesystem::temp_directory_path() /
              ("dgsched_shard_test_" + name + "_" + std::to_string(::getpid())))
                 .string()) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~ShardDir() { std::filesystem::remove_all(path); }
  [[nodiscard]] std::string file(const char* name) const { return path + "/" + name; }
  std::string path;
};

/// Two small policy cells under common random numbers — the world-cache test
/// matrix shape, small enough that a handful of sharded campaigns stays
/// test-sized.
std::vector<NamedConfig> tiny_cells() {
  std::vector<NamedConfig> cells;
  for (const sched::PolicyKind policy :
       {sched::PolicyKind::kFcfsShare, sched::PolicyKind::kRoundRobin}) {
    NamedConfig cell;
    cell.label = sched::to_string(policy);
    cell.config.grid =
        grid::GridConfig::preset(grid::Heterogeneity::kHet, grid::AvailabilityLevel::kLow);
    cell.config.workload =
        sim::make_paper_workload(cell.config.grid, 25000.0, workload::Intensity::kLow, 10);
    cell.config.policy = policy;
    cell.config.warmup_bots = 2;
    cells.push_back(std::move(cell));
  }
  return cells;
}

RunOptions tiny_options() {
  RunOptions options;
  options.min_replications = 3;
  options.max_replications = 3;
  options.threads = 2;
  return options;
}

/// Bitwise equality of every statistic a campaign reports from a cell.
void expect_cells_bitwise(const std::vector<CellResult>& a, const std::vector<CellResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) {
    SCOPED_TRACE(a[c].label);
    EXPECT_EQ(a[c].label, b[c].label);
    EXPECT_EQ(a[c].replications, b[c].replications);
    EXPECT_EQ(a[c].saturated_replications, b[c].saturated_replications);
    EXPECT_EQ(a[c].events_executed, b[c].events_executed);
    EXPECT_EQ(a[c].turnaround.stats().mean(), b[c].turnaround.stats().mean());
    EXPECT_EQ(a[c].turnaround.stats().stddev(), b[c].turnaround.stats().stddev());
    EXPECT_EQ(a[c].waiting.mean(), b[c].waiting.mean());
    EXPECT_EQ(a[c].makespan.mean(), b[c].makespan.mean());
    EXPECT_EQ(a[c].utilization.mean(), b[c].utilization.mean());
    EXPECT_EQ(a[c].wasted_fraction.mean(), b[c].wasted_fraction.mean());
    EXPECT_EQ(a[c].lost_work.mean(), b[c].lost_work.mean());
    EXPECT_EQ(a[c].decayed_utilization.mean(), b[c].decayed_utilization.mean());
    EXPECT_EQ(a[c].transfer_retries.mean(), b[c].transfer_retries.mean());
    EXPECT_EQ(a[c].replicas_degraded.mean(), b[c].replicas_degraded.mean());
    EXPECT_EQ(a[c].server_downtime.mean(), b[c].server_downtime.mean());
    EXPECT_EQ(a[c].turnaround_tail.count(), b[c].turnaround_tail.count());
    EXPECT_EQ(a[c].turnaround_tail.sum(), b[c].turnaround_tail.sum());
    EXPECT_EQ(a[c].turnaround_tail.tails().p95, b[c].turnaround_tail.tails().p95);
    EXPECT_EQ(a[c].slowdown_tail.sum(), b[c].slowdown_tail.sum());
    EXPECT_EQ(a[c].completion_gap_tail.sum(), b[c].completion_gap_tail.sum());
  }
}

std::vector<std::uint8_t> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

TEST(ShardedRunner, BitIdenticalToThreadedRunnerAcrossProcessCounts) {
  // Satellite: byte-identical campaign output at 1, 2, and 4 workers. The
  // threaded runner is the reference; pool and journal are both on, so the
  // full transport path (mmap load + socket summaries + journal append) is
  // what's being held to the contract.
  ShardDir dir("procs");
  const std::vector<NamedConfig> cells = tiny_cells();
  const RunOptions options = tiny_options();
  const std::vector<CellResult> reference = ExperimentRunner(options).run(cells);

  for (const std::size_t procs : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE(procs);
    ShardOptions shard;
    shard.procs = procs;
    shard.pool_dir = dir.file("pool");
    shard.journal_path = dir.file(("j" + std::to_string(procs) + ".journal").c_str());
    ShardedRunner runner(options, shard);
    expect_cells_bitwise(runner.run(cells), reference);
    EXPECT_EQ(runner.recovered_replications(), 0u);
  }
}

TEST(ShardedRunner, BitIdenticalAcrossChunkShapesAndHandOutOrders) {
  const std::vector<NamedConfig> cells = tiny_cells();
  const RunOptions options = tiny_options();
  const std::vector<CellResult> reference = ExperimentRunner(options).run(cells);

  // One-job chunks, classic cost-major hand-out, no pool, no journal.
  {
    RunOptions o = options;
    o.batch_size = 1;
    o.multi_cell_replay = false;
    ShardOptions shard;
    shard.procs = 2;
    expect_cells_bitwise(ShardedRunner(o, shard).run(cells), reference);
  }
  // No world cache at all: workers sample live.
  {
    RunOptions o = options;
    o.world_cache_bytes = 0;
    ShardOptions shard;
    shard.procs = 2;
    expect_cells_bitwise(ShardedRunner(o, shard).run(cells), reference);
  }
  // Fresh-construction workers (no reusable workspace).
  {
    RunOptions o = options;
    o.reuse_workspaces = false;
    ShardOptions shard;
    shard.procs = 2;
    expect_cells_bitwise(ShardedRunner(o, shard).run(cells), reference);
  }
}

TEST(ShardedRunner, MultiRoundPrecisionLoopMatchesThreadedRunner) {
  // A tight precision target forces extra rounds past min_replications; the
  // round structure (and thus the final replication counts) must match the
  // threaded runner's exactly, with workers persisting across rounds.
  const std::vector<NamedConfig> cells = tiny_cells();
  RunOptions options = tiny_options();
  options.min_replications = 2;
  options.max_replications = 4;
  options.target_relative_error = 1e-4;  // unreachable: runs to the cap
  const std::vector<CellResult> reference = ExperimentRunner(options).run(cells);
  ASSERT_EQ(reference[0].replications, 4u);

  ShardOptions shard;
  shard.procs = 2;
  expect_cells_bitwise(ShardedRunner(options, shard).run(cells), reference);
}

TEST(ShardedRunner, SecondRunOverTheSamePoolLoadsInsteadOfSynthesizing) {
  ShardDir dir("pool_warm");
  const std::vector<NamedConfig> cells = tiny_cells();
  const RunOptions options = tiny_options();
  ShardOptions shard;
  shard.procs = 2;
  shard.pool_dir = dir.file("pool");

  ShardedRunner cold(options, shard);
  const std::vector<CellResult> first = cold.run(cells);
  // The cold run synthesized every world exactly once across the fleet.
  EXPECT_GT(cold.worker_cache_stats().misses, 0u);

  // A second fleet over the same pool directory starts with every world
  // published: its workers' memory misses are all pool hits, zero syntheses.
  ShardedRunner warm(options, shard);
  const std::vector<CellResult> second = warm.run(cells);
  const grid::WorldCacheStats stats = warm.worker_cache_stats();
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.extensions, 0u);
  EXPECT_GT(stats.pool_hits, 0u);
  EXPECT_GT(stats.pool_hit_rate(), 0.0);
  // And pool-loaded worlds replay bit-identically to synthesized ones.
  expect_cells_bitwise(second, first);
}

TEST(ShardedRunner, KilledWorkerIsRespawnedAndResultsUnchanged) {
  // Worker 0's first incarnation dies mid-chunk after one replication; the
  // coordinator requeues the chunk and the replacement redoes it. Nothing of
  // the dead worker's partial chunk may leak into the fold.
  const std::vector<NamedConfig> cells = tiny_cells();
  const RunOptions options = tiny_options();
  const std::vector<CellResult> reference = ExperimentRunner(options).run(cells);

  ShardOptions shard;
  shard.procs = 2;
  shard.self_kill_worker = 0;
  shard.self_kill_jobs = 1;
  expect_cells_bitwise(ShardedRunner(options, shard).run(cells), reference);
}

TEST(ShardedRunner, ResumeFromEveryJournalRecordBoundaryIsByteIdentical) {
  // Satellite kill/resume: complete the campaign once (journaled), then for
  // every prefix of the journal — every record boundary, i.e. every possible
  // fsync'd kill point — restart the campaign from that prefix. Each resumed
  // run must (a) fold exactly the prefix's records instead of re-running
  // them and (b) produce bitwise-identical cell results; the resumed journal
  // must even match the uninterrupted journal byte for byte.
  ShardDir dir("resume");
  const std::vector<NamedConfig> cells = tiny_cells();
  RunOptions options = tiny_options();
  options.batch_size = 1;  // one record per chunk: every boundary reachable

  ShardOptions shard;
  shard.procs = 1;  // deterministic append order, so journal bytes compare
  shard.journal_path = dir.file("reference.journal");
  shard.pool_dir = dir.file("pool");
  ShardedRunner runner(options, shard);
  const std::vector<CellResult> reference = runner.run(cells);
  const std::vector<std::uint8_t> reference_journal = file_bytes(shard.journal_path);

  // Record boundaries, parsed from the file: 16-byte header, then records of
  // 24-byte header (leading u32 payload size) + payload.
  std::vector<std::size_t> boundaries{16};
  while (boundaries.back() < reference_journal.size()) {
    std::uint32_t payload_size = 0;
    std::memcpy(&payload_size, reference_journal.data() + boundaries.back(),
                sizeof payload_size);
    boundaries.push_back(boundaries.back() + 24 + payload_size);
  }
  ASSERT_EQ(boundaries.back(), reference_journal.size());
  ASSERT_EQ(boundaries.size(), 7u);  // header + 2 cells x 3 replications

  for (std::size_t k = 0; k < boundaries.size(); ++k) {
    SCOPED_TRACE(k);
    ShardOptions resume = shard;
    resume.journal_path = dir.file("resume.journal");
    {
      std::ofstream out(resume.journal_path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(reference_journal.data()),
                static_cast<std::streamoff>(boundaries[k]));
    }
    ShardedRunner resumed(options, resume);
    expect_cells_bitwise(resumed.run(cells), reference);
    EXPECT_EQ(resumed.recovered_replications(), k);
    EXPECT_EQ(file_bytes(resume.journal_path), reference_journal);
  }
}

TEST(ShardedRunner, JournalBytesIdenticalAcrossExecutionShapes) {
  // The canonical journal order contract (PR 10): the journal is written in
  // cell-major / ascending-replication canonical order regardless of how the
  // campaign actually executed, so the file is byte-identical across
  // barrier/pipelined scheduling, any speculation window, any worker count,
  // and any chunk shape — and a journal written by one shape can resume a
  // run under any other.
  ShardDir dir("shapes");
  const std::vector<NamedConfig> cells = tiny_cells();
  RunOptions base = tiny_options();
  base.min_replications = 2;
  base.max_replications = 4;
  base.target_relative_error = 1e-4;  // unreachable: multi-round structure

  const std::vector<CellResult> reference = ExperimentRunner(base).run(cells);
  std::vector<std::uint8_t> reference_journal;

  struct Variant {
    const char* name;
    bool pipeline;
    std::size_t speculate;
    std::size_t procs;
    std::size_t batch;
    bool multi_cell;
  };
  const Variant variants[] = {
      {"p1_default", true, 1, 1, 0, true},
      {"p1_barrier", false, 0, 1, 0, true},
      {"p2_spec0", true, 0, 2, 0, true},
      {"p2_spec4", true, 4, 2, 0, true},
      {"p2_costmajor", true, 4, 2, 1, false},
      {"p4_barrier", false, 0, 4, 0, true},
  };
  for (const Variant& variant : variants) {
    SCOPED_TRACE(variant.name);
    RunOptions options = base;
    options.pipeline = variant.pipeline;
    options.speculate = variant.speculate;
    options.batch_size = variant.batch;
    options.multi_cell_replay = variant.multi_cell;
    ShardOptions shard;
    shard.procs = variant.procs;
    shard.journal_path = dir.file((std::string(variant.name) + ".journal").c_str());
    ShardedRunner runner(options, shard);
    expect_cells_bitwise(runner.run(cells), reference);
    const std::vector<std::uint8_t> journal = file_bytes(shard.journal_path);
    EXPECT_FALSE(journal.empty());
    if (reference_journal.empty()) {
      reference_journal = journal;
    } else {
      EXPECT_EQ(journal, reference_journal);
    }
  }

  // Cross-shape resume: the deep-speculation pipelined journal, truncated to
  // a mid-campaign record boundary, resumed by a barrier-mode run — the
  // recovered prefix folds in, the remainder is dispatched barrier-style,
  // and both the results and the final journal bytes still match.
  std::vector<std::size_t> boundaries{16};
  while (boundaries.back() < reference_journal.size()) {
    std::uint32_t payload_size = 0;
    std::memcpy(&payload_size, reference_journal.data() + boundaries.back(),
                sizeof payload_size);
    boundaries.push_back(boundaries.back() + 24 + payload_size);
  }
  ASSERT_GE(boundaries.size(), 4u);
  const std::size_t cut = boundaries[boundaries.size() / 2];
  ShardOptions resume;
  resume.procs = 2;
  resume.journal_path = dir.file("cross_shape_resume.journal");
  {
    std::ofstream out(resume.journal_path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(reference_journal.data()),
              static_cast<std::streamoff>(cut));
  }
  RunOptions barrier = base;
  barrier.pipeline = false;
  barrier.speculate = 0;
  ShardedRunner resumed(barrier, resume);
  expect_cells_bitwise(resumed.run(cells), reference);
  EXPECT_EQ(resumed.recovered_replications(), boundaries.size() / 2);  // records before the cut
  EXPECT_EQ(file_bytes(resume.journal_path), reference_journal);
}

TEST(ShardedRunner, SpeculativeResumeFromEveryBoundaryIsByteIdentical) {
  // Kill/resume through the journal mid-pipeline with a deep speculation
  // window: speculative in-flight work at the kill point must neither leak
  // into the resumed fold nor change the canonical journal bytes.
  ShardDir dir("spec_resume");
  const std::vector<NamedConfig> cells = tiny_cells();
  RunOptions options = tiny_options();
  options.batch_size = 1;
  options.speculate = 4;
  // A reachable precision target past min, so cells can stop early while the
  // deep speculation window has already launched (and run) extra
  // replications — the discard path is live at every kill point.
  options.min_replications = 2;
  options.max_replications = 6;
  options.target_relative_error = 0.15;

  ShardOptions shard;
  shard.procs = 1;
  shard.journal_path = dir.file("reference.journal");
  shard.pool_dir = dir.file("pool");
  ShardedRunner runner(options, shard);
  const std::vector<CellResult> reference = runner.run(cells);
  const std::vector<std::uint8_t> reference_journal = file_bytes(shard.journal_path);

  std::vector<std::size_t> boundaries{16};
  while (boundaries.back() < reference_journal.size()) {
    std::uint32_t payload_size = 0;
    std::memcpy(&payload_size, reference_journal.data() + boundaries.back(),
                sizeof payload_size);
    boundaries.push_back(boundaries.back() + 24 + payload_size);
  }
  ASSERT_EQ(boundaries.back(), reference_journal.size());
  ASSERT_GE(boundaries.size(), 5u);  // header + >= 2 cells x 2 replications

  for (std::size_t k = 0; k < boundaries.size(); ++k) {
    SCOPED_TRACE(k);
    ShardOptions resume = shard;
    resume.procs = 2;  // resume under a different worker count too
    resume.journal_path = dir.file("resume.journal");
    {
      std::ofstream out(resume.journal_path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(reference_journal.data()),
                static_cast<std::streamoff>(boundaries[k]));
    }
    ShardedRunner resumed(options, resume);
    expect_cells_bitwise(resumed.run(cells), reference);
    EXPECT_EQ(resumed.recovered_replications(), k);
    EXPECT_EQ(file_bytes(resume.journal_path), reference_journal);
  }
}

TEST(ShardedRunner, ExecStatsReportWorkerLanes) {
  const std::vector<NamedConfig> cells = tiny_cells();
  const RunOptions options = tiny_options();
  ShardOptions shard;
  shard.procs = 2;
  ShardedRunner runner(options, shard);
  (void)runner.run(cells);
  const ExecutionStats& exec = runner.exec_stats();
  ASSERT_EQ(exec.lanes.size(), 2u);
  EXPECT_EQ(exec.committed, 6u);  // 2 cells x 3 replications
  EXPECT_EQ(exec.launched, exec.committed + exec.discarded);
  EXPECT_GT(exec.wall_s, 0.0);
  EXPECT_GT(exec.busy_s(), 0.0);
  std::uint64_t lane_jobs = 0;
  for (const WorkerLaneStats& lane : exec.lanes) lane_jobs += lane.jobs;
  EXPECT_EQ(lane_jobs, exec.launched);
  for (const WorkerLaneStats& lane : exec.lanes) {
    EXPECT_GE(lane.stall_s, 0.0);
    EXPECT_LE(lane.busy_s, exec.wall_s);
  }
}

TEST(ShardOptions, FromEnvParsesAndValidates) {
  ASSERT_EQ(setenv("DGSCHED_PROCS", "3", 1), 0);
  ASSERT_EQ(setenv("DGSCHED_JOURNAL", "/tmp/c.journal", 1), 0);
  ASSERT_EQ(setenv("DGSCHED_POOL", "/tmp/p.worldpool", 1), 0);
  ASSERT_EQ(setenv("DGSCHED_JOURNAL_FSYNC", "0", 1), 0);
  ASSERT_EQ(setenv("DGSCHED_SHARD_ABORT_AFTER", "5", 1), 0);
  ASSERT_EQ(setenv("DGSCHED_SHARD_SELF_KILL", "1:2", 1), 0);
  ShardOptions options = ShardOptions::from_env();
  EXPECT_EQ(options.procs, 3u);
  EXPECT_EQ(options.journal_path, "/tmp/c.journal");
  EXPECT_EQ(options.pool_dir, "/tmp/p.worldpool");
  EXPECT_FALSE(options.fsync_journal);
  EXPECT_EQ(options.abort_after_appends, 5u);
  EXPECT_EQ(options.self_kill_worker, 1u);
  EXPECT_EQ(options.self_kill_jobs, 2u);

  for (const char* bad : {"nope", "3", ":4", "4:", "a:b", "1:2:3"}) {
    SCOPED_TRACE(bad);
    ASSERT_EQ(setenv("DGSCHED_SHARD_SELF_KILL", bad, 1), 0);
    EXPECT_THROW((void)ShardOptions::from_env(), std::invalid_argument);
  }

  ASSERT_EQ(unsetenv("DGSCHED_PROCS"), 0);
  ASSERT_EQ(unsetenv("DGSCHED_JOURNAL"), 0);
  ASSERT_EQ(unsetenv("DGSCHED_POOL"), 0);
  ASSERT_EQ(unsetenv("DGSCHED_JOURNAL_FSYNC"), 0);
  ASSERT_EQ(unsetenv("DGSCHED_SHARD_ABORT_AFTER"), 0);
  ASSERT_EQ(unsetenv("DGSCHED_SHARD_SELF_KILL"), 0);
  const ShardOptions defaults = ShardOptions::from_env();
  EXPECT_EQ(defaults.procs, 1u);
  EXPECT_TRUE(defaults.journal_path.empty());
  EXPECT_TRUE(defaults.pool_dir.empty());
  EXPECT_TRUE(defaults.fsync_journal);
  EXPECT_EQ(defaults.abort_after_appends, 0u);
  EXPECT_EQ(defaults.self_kill_jobs, 0u);
}

}  // namespace
}  // namespace dg::exp
