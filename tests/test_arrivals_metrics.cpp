// Arrival-process variants, slowdown metrics, queue monitor, and MSER
// truncation.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulation.hpp"
#include "stats/mser.hpp"
#include "stats/online_stats.hpp"
#include "workload/generator.hpp"

namespace dg {
namespace {

workload::WorkloadConfig arrivals_config(workload::ArrivalProcess process, std::size_t n) {
  workload::WorkloadConfig config;
  config.types = {workload::BotType{5000.0, 0.5}};
  config.bag_size = 1e5;
  config.arrival_rate = 1e-3;
  config.num_bots = n;
  config.arrivals = process;
  return config;
}

double mean_gap(const std::vector<workload::BotSpec>& bots) {
  return bots.back().arrival_time / static_cast<double>(bots.size());
}

double gap_scv(const std::vector<workload::BotSpec>& bots) {
  stats::OnlineStats gaps;
  double prev = 0.0;
  for (const workload::BotSpec& bot : bots) {
    gaps.add(bot.arrival_time - prev);
    prev = bot.arrival_time;
  }
  const double mean = gaps.mean();
  return gaps.variance() / (mean * mean);
}

TEST(ArrivalProcesses, AllHaveTheConfiguredMeanRate) {
  for (workload::ArrivalProcess process :
       {workload::ArrivalProcess::kPoisson, workload::ArrivalProcess::kUniformJitter,
        workload::ArrivalProcess::kBursty}) {
    workload::WorkloadGenerator generator(arrivals_config(process, 4000),
                                          rng::RandomStream(7));
    const auto bots = generator.generate();
    EXPECT_NEAR(mean_gap(bots), 1000.0, 120.0) << workload::to_string(process);
  }
}

TEST(ArrivalProcesses, VariabilityOrdering) {
  // scv: uniform-jitter (1/12) < Poisson (1) < bursty (> 1).
  workload::WorkloadGenerator uniform(
      arrivals_config(workload::ArrivalProcess::kUniformJitter, 4000), rng::RandomStream(8));
  workload::WorkloadGenerator poisson(arrivals_config(workload::ArrivalProcess::kPoisson, 4000),
                                      rng::RandomStream(8));
  workload::WorkloadGenerator bursty(arrivals_config(workload::ArrivalProcess::kBursty, 4000),
                                     rng::RandomStream(8));
  const double scv_uniform = gap_scv(uniform.generate());
  const double scv_poisson = gap_scv(poisson.generate());
  const double scv_bursty = gap_scv(bursty.generate());
  EXPECT_NEAR(scv_uniform, 1.0 / 12.0, 0.03);
  EXPECT_NEAR(scv_poisson, 1.0, 0.15);
  EXPECT_GT(scv_bursty, 1.3);
}

TEST(ArrivalProcesses, BurstyRejectsBadParameters) {
  workload::WorkloadConfig config = arrivals_config(workload::ArrivalProcess::kBursty, 10);
  config.burst_intensity = 0.5;
  EXPECT_THROW(workload::WorkloadGenerator(config, rng::RandomStream(1)),
               std::invalid_argument);
  config.burst_intensity = 5.0;
  config.burst_fraction = 1.0;
  EXPECT_THROW(workload::WorkloadGenerator(config, rng::RandomStream(1)),
               std::invalid_argument);
}

TEST(ArrivalProcesses, ExtremeBurstIntensityIsCapped) {
  workload::WorkloadConfig config = arrivals_config(workload::ArrivalProcess::kBursty, 2000);
  config.burst_intensity = 50.0;  // bf * bi > 1: off-state rate clamps to 0
  config.burst_fraction = 0.2;
  workload::WorkloadGenerator generator(config, rng::RandomStream(9));
  const auto bots = generator.generate();
  EXPECT_NEAR(mean_gap(bots), 1000.0, 200.0);
}

TEST(ArrivalProcesses, NamesAreDistinct) {
  EXPECT_EQ(workload::to_string(workload::ArrivalProcess::kPoisson), "Poisson");
  EXPECT_EQ(workload::to_string(workload::ArrivalProcess::kUniformJitter), "UniformJitter");
  EXPECT_EQ(workload::to_string(workload::ArrivalProcess::kBursty), "Bursty");
}

// --- slowdown + monitor in SimulationResult ---

sim::SimulationConfig monitored_config() {
  sim::SimulationConfig config;
  config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHom,
                                         grid::AvailabilityLevel::kHigh);
  config.workload = sim::make_paper_workload(config.grid, 25000.0,
                                             workload::Intensity::kLow, 15);
  config.policy = sched::PolicyKind::kRoundRobin;
  config.seed = 21;
  return config;
}

TEST(Slowdown, AtLeastOneAndFinite) {
  const sim::SimulationResult result = sim::Simulation(monitored_config()).run();
  for (const sim::BotRecord& bot : result.bots) {
    EXPECT_GE(bot.slowdown, 1.0 - 1e-9) << "turnaround below the ideal service time";
    EXPECT_TRUE(std::isfinite(bot.slowdown));
    EXPECT_GT(bot.total_work, 0.0);
  }
  EXPECT_GE(result.slowdown.mean(), 1.0);
}

TEST(Slowdown, HigherUnderHighIntensity) {
  sim::SimulationConfig low = monitored_config();
  sim::SimulationConfig high = monitored_config();
  high.workload = sim::make_paper_workload(high.grid, 25000.0,
                                           workload::Intensity::kHigh, 15);
  const double s_low = sim::Simulation(low).run().slowdown.mean();
  const double s_high = sim::Simulation(high).run().slowdown.mean();
  EXPECT_GT(s_high, s_low);
}

TEST(QueueMonitor, ProducesSamplesCoveringTheRun) {
  const sim::SimulationResult result = sim::Simulation(monitored_config()).run();
  ASSERT_GE(result.monitor.size(), 8u);
  for (std::size_t i = 1; i < result.monitor.size(); ++i) {
    EXPECT_GT(result.monitor[i].time, result.monitor[i - 1].time);
  }
  EXPECT_LE(result.monitor.back().time, result.end_time + 1e-9);
  // 100 Hom machines, all up (high avail most of the time).
  for (const sim::MonitorSample& sample : result.monitor) {
    EXPECT_LE(sample.busy_machines, sample.up_machines);
    EXPECT_LE(sample.up_machines, result.num_machines);
  }
}

TEST(QueueMonitor, CustomIntervalRespected) {
  sim::SimulationConfig config = monitored_config();
  config.monitor_interval = 5000.0;
  const sim::SimulationResult result = sim::Simulation(config).run();
  ASSERT_GE(result.monitor.size(), 2u);
  EXPECT_NEAR(result.monitor[1].time - result.monitor[0].time, 5000.0, 1e-9);
}

TEST(QueueMonitor, GrowthRatioNearOneWhenStable) {
  const sim::SimulationResult result = sim::Simulation(monitored_config()).run();
  EXPECT_FALSE(result.saturated);
  EXPECT_LT(result.queue_growth_ratio, 5.0);
}

TEST(QueueMonitor, GrowthRatioLargeUnderOverload) {
  sim::SimulationConfig config = monitored_config();
  // Offered load ~3x capacity: the queue grows for the whole run.
  config.workload.arrival_rate *= 6.0;
  config.workload.num_bots = 40;
  const sim::SimulationResult result = sim::Simulation(config).run();
  EXPECT_GT(result.queue_growth_ratio, 2.0);
}

// --- MSER ---

TEST(Mser, StationarySeriesKeepsAlmostEverything) {
  rng::RandomStream stream(4);
  std::vector<double> series;
  for (int i = 0; i < 1000; ++i) series.push_back(stream.normal(50.0, 5.0));
  const stats::MserResult result = stats::mser_truncation(series);
  EXPECT_LT(result.truncation_index, 100u);
}

TEST(Mser, TransientGetsCut) {
  rng::RandomStream stream(5);
  std::vector<double> series;
  // Decaying transient from 500 toward the steady mean of 50.
  for (int i = 0; i < 200; ++i) {
    series.push_back(50.0 + 450.0 * std::exp(-i / 30.0) + stream.normal(0.0, 5.0));
  }
  for (int i = 0; i < 800; ++i) series.push_back(stream.normal(50.0, 5.0));
  const stats::MserResult result = stats::mser_truncation(series);
  EXPECT_GT(result.truncation_index, 50u);
  EXPECT_LT(result.truncation_index, 500u);
}

TEST(Mser, Mser5TruncationIsBatchAligned) {
  rng::RandomStream stream(6);
  std::vector<double> series;
  for (int i = 0; i < 100; ++i) series.push_back(1000.0 - 10.0 * i);  // transient
  for (int i = 0; i < 900; ++i) series.push_back(stream.normal(0.0, 1.0));
  const stats::MserResult result = stats::mser5_truncation(series, 5);
  EXPECT_EQ(result.truncation_index % 5, 0u);
  EXPECT_GE(result.truncation_index, 80u);
}

TEST(Mser, ShortSeriesReturnsZero) {
  const std::vector<double> series{1.0, 2.0, 3.0};
  EXPECT_EQ(stats::mser_truncation(series).truncation_index, 0u);
}

TEST(Mser, NeverCutsMoreThanHalf) {
  std::vector<double> series;
  for (int i = 0; i < 100; ++i) series.push_back(static_cast<double>(i));  // pure trend
  const stats::MserResult result = stats::mser_truncation(series);
  EXPECT_LE(result.truncation_index, 50u);
}

}  // namespace
}  // namespace dg
