// Trace substrate: availability traces (synthesis, CSV round-trip, replay)
// and workload traces.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "grid/realization.hpp"
#include "grid/trace.hpp"
#include "sim/simulation.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

namespace dg {
namespace {

TEST(MachineTrace, AvailabilityMath) {
  grid::MachineTrace trace;
  trace.downtime = {{10.0, 20.0}, {50.0, 60.0}};
  EXPECT_DOUBLE_EQ(trace.availability(100.0), 0.8);
  EXPECT_DOUBLE_EQ(trace.availability(20.0), 0.5);  // clipped to horizon
  EXPECT_DOUBLE_EQ(trace.availability(5.0), 1.0);
}

TEST(AvailabilityTrace, SynthesizeMatchesModelAvailability) {
  const grid::AvailabilityModel model =
      grid::AvailabilityModel::for_level(grid::AvailabilityLevel::kLow);
  const double horizon = 5e6;
  const grid::AvailabilityTrace trace =
      grid::AvailabilityTrace::synthesize(model, 50, horizon, 9);
  EXPECT_EQ(trace.num_machines(), 50u);
  EXPECT_NEAR(trace.mean_availability(horizon), 0.50, 0.05);
}

TEST(AvailabilityTrace, SynthesizeNoFailuresGivesEmptyDowntime) {
  const grid::AvailabilityTrace trace = grid::AvailabilityTrace::synthesize(
      grid::AvailabilityModel::for_level(grid::AvailabilityLevel::kAlways), 5, 1e6, 1);
  for (std::size_t m = 0; m < trace.num_machines(); ++m) {
    EXPECT_TRUE(trace.machine(m).downtime.empty());
  }
  EXPECT_DOUBLE_EQ(trace.mean_availability(1e6), 1.0);
}

/// save_csv writes max_digits10 significant digits, so a round-trip must
/// reproduce every interval boundary bitwise — not merely approximately.
void expect_csv_round_trip_bit_exact(const grid::AvailabilityTrace& original) {
  std::stringstream buffer;
  original.save_csv(buffer);
  const grid::AvailabilityTrace loaded = grid::AvailabilityTrace::load_csv(buffer);
  ASSERT_EQ(loaded.num_machines(), original.num_machines());
  for (std::size_t m = 0; m < original.num_machines(); ++m) {
    SCOPED_TRACE(m);
    ASSERT_EQ(loaded.machine(m).downtime.size(), original.machine(m).downtime.size());
    for (std::size_t i = 0; i < original.machine(m).downtime.size(); ++i) {
      EXPECT_EQ(loaded.machine(m).downtime[i].start, original.machine(m).downtime[i].start);
      EXPECT_EQ(loaded.machine(m).downtime[i].end, original.machine(m).downtime[i].end);
    }
  }
}

TEST(AvailabilityTrace, CsvRoundTripIsBitExact) {
  expect_csv_round_trip_bit_exact(grid::AvailabilityTrace::synthesize(
      grid::AvailabilityModel::for_level(grid::AvailabilityLevel::kMed), 8, 2e5, 3));
}

TEST(AvailabilityTrace, CsvRoundTripIsBitExactAcrossModelsAndSeeds) {
  for (const grid::AvailabilityLevel level :
       {grid::AvailabilityLevel::kHigh, grid::AvailabilityLevel::kMed,
        grid::AvailabilityLevel::kLow}) {
    for (const std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
      SCOPED_TRACE(seed);
      expect_csv_round_trip_bit_exact(grid::AvailabilityTrace::synthesize(
          grid::AvailabilityModel::for_level(level), 6, 3e5, seed));
    }
  }
}

TEST(AvailabilityTrace, WorldRealizationTraceViewRoundTripsBitExact) {
  // The cache's realization-to-trace view feeds the same CSV path.
  const grid::GridConfig config =
      grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kLow);
  const grid::WorldRealization world = grid::WorldRealization::synthesize(
      config.availability, config.checkpoint_server_faults, config.outages, 12, 1e5, 77);
  expect_csv_round_trip_bit_exact(world.to_trace());
}

TEST(AvailabilityTrace, CsvRoundTripKeepsAlwaysUpMachines) {
  std::vector<grid::MachineTrace> machines(3);
  machines[1].downtime = {{5.0, 10.0}};
  const grid::AvailabilityTrace original{std::move(machines)};
  std::stringstream buffer;
  original.save_csv(buffer);
  const grid::AvailabilityTrace loaded = grid::AvailabilityTrace::load_csv(buffer);
  EXPECT_EQ(loaded.num_machines(), 3u);
  EXPECT_TRUE(loaded.machine(0).downtime.empty());
  EXPECT_EQ(loaded.machine(1).downtime.size(), 1u);
  EXPECT_TRUE(loaded.machine(2).downtime.empty());
}

TEST(AvailabilityTrace, LoadRejectsBadHeader) {
  std::istringstream bad("wrong,header\n0,1,2\n");
  EXPECT_THROW(grid::AvailabilityTrace::load_csv(bad), std::runtime_error);
}

TEST(AvailabilityTrace, LoadRejectsInvertedInterval) {
  std::istringstream bad("machine,down_start,down_end\n0,20,10\n");
  EXPECT_THROW(grid::AvailabilityTrace::load_csv(bad), std::runtime_error);
}

TEST(AvailabilityTrace, LoadRejectsOverlappingIntervals) {
  std::istringstream bad("machine,down_start,down_end\n0,10,20\n0,15,30\n");
  EXPECT_THROW(grid::AvailabilityTrace::load_csv(bad), std::runtime_error);
}

TEST(TraceDriver, DrivesMachineTransitions) {
  des::Simulator sim;
  grid::GridConfig config;
  config.total_power = 20.0;  // 2 machines
  config.availability = grid::AvailabilityModel::for_level(grid::AvailabilityLevel::kAlways);
  grid::DesktopGrid grid(config, sim, 1);

  std::vector<grid::MachineTrace> machines(2);
  machines[0].downtime = {{100.0, 200.0}};
  machines[1].downtime = {{150.0, 250.0}, {400.0, 500.0}};
  grid::TraceAvailabilityDriver driver(sim, grid, grid::AvailabilityTrace{std::move(machines)});

  int failures = 0, repairs = 0;
  auto on_fail = [&](grid::Machine&) { ++failures; };
  auto on_repair = [&](grid::Machine&) { ++repairs; };
  driver.start(grid::TransitionDelegate::bind(on_fail), grid::TransitionDelegate::bind(on_repair));
  grid.start(nullptr, nullptr);

  sim.run_until(120.0);
  EXPECT_FALSE(grid.machine(0).up());
  EXPECT_TRUE(grid.machine(1).up());
  sim.run_until(220.0);
  EXPECT_TRUE(grid.machine(0).up());
  EXPECT_FALSE(grid.machine(1).up());
  sim.run_until(1000.0);
  EXPECT_EQ(failures, 3);
  EXPECT_EQ(repairs, 3);
  EXPECT_EQ(grid.machine(1).failures(), 2u);
}

// --- workload traces ---

TEST(WorkloadTrace, CsvRoundTrip) {
  workload::WorkloadConfig config;
  config.types = {workload::BotType{5000.0, 0.5}};
  config.bag_size = 1e5;
  config.arrival_rate = 1e-3;
  config.num_bots = 7;
  workload::WorkloadGenerator generator(config, rng::RandomStream(5));
  const std::vector<workload::BotSpec> original = generator.generate();

  std::stringstream buffer;
  workload::save_workload_csv(buffer, original);
  const std::vector<workload::BotSpec> loaded = workload::load_workload_csv(buffer);

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].id, original[i].id);
    EXPECT_NEAR(loaded[i].arrival_time, original[i].arrival_time,
                1e-6 * original[i].arrival_time);
    ASSERT_EQ(loaded[i].tasks.size(), original[i].tasks.size());
    for (std::size_t t = 0; t < original[i].tasks.size(); ++t) {
      EXPECT_NEAR(loaded[i].tasks[t].work, original[i].tasks[t].work,
                  1e-6 * original[i].tasks[t].work);
    }
  }
}

TEST(WorkloadTrace, LoadSortsByArrival) {
  std::istringstream csv(
      "bot,arrival,granularity,task,work\n"
      "1,500,100,0,100\n"
      "0,100,100,0,100\n");
  const auto bots = workload::load_workload_csv(csv);
  ASSERT_EQ(bots.size(), 2u);
  EXPECT_EQ(bots[0].id, 0u);
  EXPECT_EQ(bots[1].id, 1u);
}

TEST(WorkloadTrace, LoadRejectsBadHeader) {
  std::istringstream bad("nope\n");
  EXPECT_THROW(workload::load_workload_csv(bad), std::runtime_error);
}

TEST(WorkloadTrace, LoadRejectsNonPositiveWork) {
  std::istringstream bad("bot,arrival,granularity,task,work\n0,0,100,0,-5\n");
  EXPECT_THROW(workload::load_workload_csv(bad), std::runtime_error);
}

TEST(WorkloadTrace, LoadRejectsTaskIndexGaps) {
  std::istringstream bad("bot,arrival,granularity,task,work\n0,0,100,0,10\n0,0,100,2,10\n");
  EXPECT_THROW(workload::load_workload_csv(bad), std::runtime_error);
}

// --- trace-driven Simulation ---

TEST(TraceSimulation, ReplaysIdenticallyAcrossPolicies) {
  const grid::GridConfig grid_config =
      grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kLow);
  auto trace = std::make_shared<grid::AvailabilityTrace>(
      grid::AvailabilityTrace::synthesize(grid_config.availability, 100, 1e6, 17));
  workload::WorkloadConfig workload_config =
      sim::make_paper_workload(grid_config, 25000.0, workload::Intensity::kLow, 10);
  workload::WorkloadGenerator generator(workload_config, rng::RandomStream(17));
  auto bots = std::make_shared<std::vector<workload::BotSpec>>(generator.generate());

  auto run = [&](sched::PolicyKind policy) {
    sim::SimulationConfig config;
    config.grid = grid_config;
    config.workload = workload_config;
    config.trace_bots = bots;
    config.availability_trace = trace;
    config.policy = policy;
    config.seed = 3;
    return sim::Simulation(config).run();
  };

  const sim::SimulationResult a = run(sched::PolicyKind::kFcfsShare);
  const sim::SimulationResult b = run(sched::PolicyKind::kFcfsShare);
  EXPECT_EQ(a.turnaround.mean(), b.turnaround.mean());
  EXPECT_EQ(a.machine_failures, b.machine_failures);
  EXPECT_EQ(a.end_time, b.end_time);

  // A different policy replays the SAME downtime timeline (the paired
  // comparison); only the observation window differs (each run stops when
  // its last bag completes), so failure counts scale with the end time.
  const sim::SimulationResult c = run(sched::PolicyKind::kRoundRobin);
  EXPECT_GT(c.machine_failures, 0u);
  EXPECT_NE(a.turnaround.mean(), c.turnaround.mean());
  const double a_rate = static_cast<double>(a.machine_failures) / a.end_time;
  const double c_rate = static_cast<double>(c.machine_failures) / c.end_time;
  EXPECT_NEAR(a_rate / c_rate, 1.0, 0.2);
}

TEST(TraceSimulation, CompletesAndUsesCheckpointing) {
  const grid::GridConfig grid_config =
      grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kLow);
  auto trace = std::make_shared<grid::AvailabilityTrace>(
      grid::AvailabilityTrace::synthesize(grid_config.availability, 100, 2e6, 23));
  sim::SimulationConfig config;
  config.grid = grid_config;
  config.workload = sim::make_paper_workload(grid_config, 25000.0,
                                             workload::Intensity::kLow, 8);
  config.availability_trace = trace;
  config.policy = sched::PolicyKind::kRoundRobin;
  config.seed = 5;
  const sim::SimulationResult result = sim::Simulation(config).run();
  EXPECT_EQ(result.bots_completed, result.bots.size());
  EXPECT_GT(result.machine_failures, 0u);
  EXPECT_GT(result.checkpoints_saved, 0u);  // WQR-FT checkpoints under a trace too
}

}  // namespace
}  // namespace dg
