// Batch-means steady-state analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "rng/random_stream.hpp"
#include "stats/batch_means.hpp"

namespace dg::stats {
namespace {

TEST(BatchMeans, BatchesFormAtBatchSize) {
  BatchMeans bm(4);
  for (int i = 1; i <= 9; ++i) bm.add(i);
  EXPECT_EQ(bm.completed_batches(), 2u);
  EXPECT_EQ(bm.observations(), 9u);
  EXPECT_DOUBLE_EQ(bm.batch_means()[0], 2.5);   // mean of 1..4
  EXPECT_DOUBLE_EQ(bm.batch_means()[1], 6.5);   // mean of 5..8
  EXPECT_DOUBLE_EQ(bm.mean(), 4.5);
}

TEST(BatchMeans, ZeroBatchSizeThrows) { EXPECT_THROW(BatchMeans(0), std::invalid_argument); }

TEST(BatchMeans, IidDataHasLowLag1Autocorrelation) {
  BatchMeans bm(10);
  rng::RandomStream stream(1);
  for (int i = 0; i < 5000; ++i) bm.add(stream.normal(100.0, 10.0));
  EXPECT_LT(std::fabs(bm.lag1_autocorrelation()), 0.15);
}

TEST(BatchMeans, TrendingDataHasHighLag1Autocorrelation) {
  BatchMeans bm(5);
  for (int i = 0; i < 500; ++i) bm.add(static_cast<double>(i));
  EXPECT_GT(bm.lag1_autocorrelation(), 0.8);
}

TEST(BatchMeans, AutocorrelatedProcessImprovesWithCoarsening) {
  // AR(1) with strong positive correlation: small batches correlate, larger
  // batches decorrelate.
  rng::RandomStream stream(2);
  BatchMeans bm(5);
  double x = 0.0;
  for (int i = 0; i < 20000; ++i) {
    x = 0.95 * x + stream.normal(0.0, 1.0);
    bm.add(x);
  }
  const double before = bm.lag1_autocorrelation();
  bm.coarsen();
  bm.coarsen();
  bm.coarsen();
  const double after = bm.lag1_autocorrelation();
  EXPECT_GT(before, 0.5);
  EXPECT_LT(after, before);
}

TEST(BatchMeans, CoarsenMergesAdjacentBatches) {
  BatchMeans bm(2);
  for (int i = 1; i <= 8; ++i) bm.add(i);  // batch means 1.5, 3.5, 5.5, 7.5
  ASSERT_EQ(bm.completed_batches(), 4u);
  bm.coarsen();
  ASSERT_EQ(bm.completed_batches(), 2u);
  EXPECT_DOUBLE_EQ(bm.batch_means()[0], 2.5);
  EXPECT_DOUBLE_EQ(bm.batch_means()[1], 6.5);
  EXPECT_EQ(bm.batch_size(), 4u);
  EXPECT_DOUBLE_EQ(bm.mean(), 4.5);
}

TEST(BatchMeans, CoarsenDropsOddTrailingBatch) {
  BatchMeans bm(1);
  for (int i = 1; i <= 5; ++i) bm.add(i);
  bm.coarsen();
  EXPECT_EQ(bm.completed_batches(), 2u);  // (1,2) and (3,4); 5 dropped
  EXPECT_DOUBLE_EQ(bm.batch_means()[1], 3.5);
}

TEST(BatchMeans, IntervalCoversTrueMeanOfIidStream) {
  rng::RandomStream stream(3);
  int covered = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    BatchMeans bm(20);
    for (int i = 0; i < 600; ++i) bm.add(stream.normal(42.0, 7.0));
    if (bm.interval(0.95).contains(42.0)) ++covered;
  }
  const double rate = static_cast<double>(covered) / trials;
  EXPECT_GT(rate, 0.90);
  EXPECT_LT(rate, 0.99);
}

TEST(BatchMeans, IntervalInfiniteWithOneBatch) {
  BatchMeans bm(3);
  for (int i = 0; i < 3; ++i) bm.add(1.0);
  EXPECT_TRUE(std::isinf(bm.interval().half_width));
}

}  // namespace
}  // namespace dg::stats
