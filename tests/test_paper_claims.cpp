// Integration tests encoding the paper's headline findings as (tolerant)
// statistical assertions. Each claim is tested on a reduced workload with a
// few fixed seeds and generous margins — these guard the *shape* of the
// results, the benches regenerate the full figures.
#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace dg::sim {
namespace {

double mean_turnaround(sched::PolicyKind policy, grid::Heterogeneity het,
                       grid::AvailabilityLevel level, double granularity,
                       workload::Intensity intensity, std::size_t num_bots = 25,
                       int seeds = 3) {
  double sum = 0.0;
  for (int s = 0; s < seeds; ++s) {
    SimulationConfig config;
    config.grid = grid::GridConfig::preset(het, level);
    config.workload = make_paper_workload(config.grid, granularity, intensity, num_bots);
    config.policy = policy;
    config.seed = 1000 + static_cast<std::uint64_t>(s);
    config.warmup_bots = 3;
    sum += Simulation(config).run().turnaround.mean();
  }
  return sum / seeds;
}

TEST(PaperClaims, LowGranularityFcfsBeatsRoundRobin) {
  // Fig. 1(a), 1000 s bars: FCFS-based and LongIdle below RR-based.
  const double fcfs = mean_turnaround(sched::PolicyKind::kFcfsShare, grid::Heterogeneity::kHom,
                                      grid::AvailabilityLevel::kHigh, 1000.0,
                                      workload::Intensity::kLow);
  const double rr = mean_turnaround(sched::PolicyKind::kRoundRobin, grid::Heterogeneity::kHom,
                                    grid::AvailabilityLevel::kHigh, 1000.0,
                                    workload::Intensity::kLow);
  EXPECT_LT(fcfs, rr);
}

TEST(PaperClaims, HighGranularityRoundRobinBeatsFcfsExcl) {
  // Fig. 1(a), 125000 s bars: FCFS-Excl degenerates badly.
  const double excl = mean_turnaround(sched::PolicyKind::kFcfsExcl, grid::Heterogeneity::kHom,
                                      grid::AvailabilityLevel::kHigh, 125000.0,
                                      workload::Intensity::kLow);
  const double rr = mean_turnaround(sched::PolicyKind::kRoundRobin, grid::Heterogeneity::kHom,
                                    grid::AvailabilityLevel::kHigh, 125000.0,
                                    workload::Intensity::kLow);
  EXPECT_GT(excl, 3.0 * rr);
}

TEST(PaperClaims, HighGranularityHighIntensityRrBeatsFcfsShare) {
  // Fig. 1(c): at 125000 s / 90% utilization the ranking reverses clearly.
  const double share = mean_turnaround(sched::PolicyKind::kFcfsShare, grid::Heterogeneity::kHom,
                                       grid::AvailabilityLevel::kHigh, 125000.0,
                                       workload::Intensity::kHigh);
  const double rr = mean_turnaround(sched::PolicyKind::kRoundRobin, grid::Heterogeneity::kHom,
                                    grid::AvailabilityLevel::kHigh, 125000.0,
                                    workload::Intensity::kHigh);
  EXPECT_GT(share, rr);
}

TEST(PaperClaims, LowAvailabilityRoughlyDoublesTurnaround) {
  // Fig. 2(a) vs Fig. 1(a): "the average turnaround time is doubled".
  const double high = mean_turnaround(sched::PolicyKind::kFcfsShare, grid::Heterogeneity::kHom,
                                      grid::AvailabilityLevel::kHigh, 5000.0,
                                      workload::Intensity::kLow);
  const double low = mean_turnaround(sched::PolicyKind::kFcfsShare, grid::Heterogeneity::kHom,
                                     grid::AvailabilityLevel::kLow, 5000.0,
                                     workload::Intensity::kLow);
  EXPECT_GT(low, 1.4 * high);
  EXPECT_LT(low, 4.5 * high);
}

TEST(PaperClaims, RandomBehavesLikeRoundRobin) {
  // Section 3.3: RR "corresponds to the random bag selection strategy".
  const double rr = mean_turnaround(sched::PolicyKind::kRoundRobin, grid::Heterogeneity::kHom,
                                    grid::AvailabilityLevel::kHigh, 5000.0,
                                    workload::Intensity::kLow);
  const double random = mean_turnaround(sched::PolicyKind::kRandom, grid::Heterogeneity::kHom,
                                        grid::AvailabilityLevel::kHigh, 5000.0,
                                        workload::Intensity::kLow);
  EXPECT_GT(random, 0.6 * rr);
  EXPECT_LT(random, 1.6 * rr);
}

TEST(PaperClaims, LongIdleTracksFcfsShareAtLowGranularity) {
  // Section 3.3: LongIdle degenerates to FCFS-Share while the oldest bag has
  // pending tasks without replicas (always true at 1000 s granularity).
  const double share = mean_turnaround(sched::PolicyKind::kFcfsShare, grid::Heterogeneity::kHom,
                                       grid::AvailabilityLevel::kHigh, 1000.0,
                                       workload::Intensity::kLow);
  const double longidle = mean_turnaround(sched::PolicyKind::kLongIdle, grid::Heterogeneity::kHom,
                                          grid::AvailabilityLevel::kHigh, 1000.0,
                                          workload::Intensity::kLow);
  EXPECT_NEAR(longidle / share, 1.0, 0.25);
}

TEST(PaperClaims, CheckpointingHelpsForVeryLongTasksUnderChurn) {
  // The WQR-FT premise: under churn, checkpoint + priority resubmission
  // beats plain WQR. The effect requires tasks long relative to the MTTF:
  // at 125000 s granularity a task takes ~12500 s on a P=10 machine whose
  // MTTF is 1800 s — without checkpoints it essentially never completes.
  double wqr_sum = 0.0, wqrft_sum = 0.0;
  for (int s = 0; s < 2; ++s) {
    SimulationConfig config;
    config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHom,
                                           grid::AvailabilityLevel::kLow);
    config.workload =
        make_paper_workload(config.grid, 125000.0, workload::Intensity::kLow, 6);
    config.policy = sched::PolicyKind::kRoundRobin;
    config.seed = 2000 + static_cast<std::uint64_t>(s);
    config.individual = sched::IndividualSchedulerKind::kWqr;
    wqr_sum += Simulation(config).run().turnaround.mean();
    config.individual = sched::IndividualSchedulerKind::kWqrFt;
    wqrft_sum += Simulation(config).run().turnaround.mean();
  }
  EXPECT_LT(wqrft_sum, 0.5 * wqr_sum);
}

TEST(PaperClaims, HybridPfRrWorksAcrossGranularities) {
  // The paper's closing question asks for one strategy for all
  // granularities; PF-RR should be within ~30% of the better of FCFS-Share
  // and RR at BOTH extremes.
  for (double granularity : {1000.0, 125000.0}) {
    const double share = mean_turnaround(sched::PolicyKind::kFcfsShare,
                                         grid::Heterogeneity::kHom,
                                         grid::AvailabilityLevel::kHigh, granularity,
                                         workload::Intensity::kLow);
    const double rr = mean_turnaround(sched::PolicyKind::kRoundRobin,
                                      grid::Heterogeneity::kHom,
                                      grid::AvailabilityLevel::kHigh, granularity,
                                      workload::Intensity::kLow);
    const double hybrid = mean_turnaround(sched::PolicyKind::kPendingFirst,
                                          grid::Heterogeneity::kHom,
                                          grid::AvailabilityLevel::kHigh, granularity,
                                          workload::Intensity::kLow);
    EXPECT_LT(hybrid, 1.3 * std::min(share, rr)) << "granularity " << granularity;
  }
}

}  // namespace
}  // namespace dg::sim
