// Queue-policy backends: cross-backend pop-order equivalence, FIFO
// tie-breaks, spill/ladder internals of the calendar queue, and the
// DGSCHED_QUEUE selection knob. The full-simulation equivalence matrix lives
// in test_kernel_equivalence.cpp; these tests hit the queues directly.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "des/queue_policy.hpp"
#include "des/simulator.hpp"

namespace dg::des {
namespace {

QueueEntry entry_at(double time, std::uint64_t sequence) {
  return QueueEntry{time, sequence, static_cast<std::uint32_t>(sequence), 0};
}

/// Drains `queue` and returns the popped (time, sequence) order.
template <EventQueuePolicy Q>
std::vector<std::pair<double, std::uint64_t>> drain(Q& queue) {
  std::vector<std::pair<double, std::uint64_t>> popped;
  while (!queue.empty()) {
    const QueueEntry& top = queue.top();
    popped.emplace_back(top.time, top.sequence);
    queue.pop();
  }
  return popped;
}

template <typename Q>
class QueueBackendTest : public ::testing::Test {};
using Backends = ::testing::Types<FourAryHeapQueue, CalendarQueue>;
TYPED_TEST_SUITE(QueueBackendTest, Backends);

TYPED_TEST(QueueBackendTest, PopsInTimeOrder) {
  TypeParam queue;
  std::uint64_t seq = 0;
  for (double t : {30.0, 10.0, 20.0, 5.0, 25.0}) queue.push(entry_at(t, seq++));
  const auto popped = drain(queue);
  ASSERT_EQ(popped.size(), 5u);
  for (std::size_t i = 1; i < popped.size(); ++i) {
    EXPECT_LE(popped[i - 1].first, popped[i].first);
  }
  EXPECT_EQ(popped.front().first, 5.0);
  EXPECT_EQ(popped.back().first, 30.0);
}

TYPED_TEST(QueueBackendTest, EqualTimesPopInSchedulingOrder) {
  TypeParam queue;
  for (std::uint64_t s = 0; s < 100; ++s) queue.push(entry_at(42.0, s));
  const auto popped = drain(queue);
  ASSERT_EQ(popped.size(), 100u);
  for (std::uint64_t s = 0; s < 100; ++s) EXPECT_EQ(popped[s].second, s);
}

TYPED_TEST(QueueBackendTest, SizeCountsAllEntriesAndClearRetainsNothing) {
  TypeParam queue;
  for (std::uint64_t s = 0; s < 10; ++s) queue.push(entry_at(double(s), s));
  EXPECT_EQ(queue.size(), 10u);
  queue.pop();
  EXPECT_EQ(queue.size(), 9u);
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  // Reusable after clear().
  queue.push(entry_at(1.0, 100));
  EXPECT_EQ(queue.top().sequence, 100u);
}

/// Interleaved pushes and pops through both backends with the same input
/// must pop the exact same (time, sequence) order — the bitwise-determinism
/// contract checked at the data-structure level. The hold pattern (pop one,
/// push one near the popped time) is the kernel's steady state and walks the
/// calendar queue through spill, ladder build, rung advance, and rebuild.
TEST(QueueBackendEquivalence, RandomizedHoldPatternPopsIdentically) {
  FourAryHeapQueue heap;
  CalendarQueue calendar;
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;  // splitmix-style mixer
  auto next_u64 = [&state] {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };

  std::uint64_t seq = 0;
  double now = 0.0;
  auto push_both = [&](double time) {
    const QueueEntry entry = entry_at(time, seq++);
    heap.push(entry);
    calendar.push(entry);
  };
  auto pop_both = [&] {
    ASSERT_FALSE(heap.empty());
    ASSERT_FALSE(calendar.empty());
    const QueueEntry& a = heap.top();
    const QueueEntry& b = calendar.top();
    ASSERT_EQ(a.time, b.time);
    ASSERT_EQ(a.sequence, b.sequence);
    now = a.time;
    heap.pop();
    calendar.pop();
  };

  // Fill deep enough to force a near-spill and several ladder generations:
  // mixed near-future and far-future times, including exact duplicates.
  for (int i = 0; i < 6000; ++i) {
    const double offset = static_cast<double>(next_u64() % 100000) / 10.0;
    push_both(now + offset);
  }
  // Steady-state hold: pop one, usually push a successor near the popped
  // time, occasionally a far outlier, occasionally nothing (drain).
  for (int i = 0; i < 30000; ++i) {
    if (heap.empty()) break;
    pop_both();
    const std::uint64_t roll = next_u64() % 10;
    if (roll < 7) {
      push_both(now + static_cast<double>(next_u64() % 1000) / 10.0);
    } else if (roll == 7) {
      push_both(now + 1e6 + static_cast<double>(next_u64() % 100000));
    }
  }
  // Drain the rest in lockstep.
  while (!heap.empty()) pop_both();
  EXPECT_TRUE(calendar.empty());
}

TEST(QueueBackendEquivalence, AllEqualTimesThroughSpillAndLadder) {
  // Span-zero ladder: thousands of entries at one timestamp exercise the
  // single-bucket ladder path and the boundary-tie routing.
  FourAryHeapQueue heap;
  CalendarQueue calendar;
  for (std::uint64_t s = 0; s < 5000; ++s) {
    const QueueEntry entry = entry_at(7.0, s);
    heap.push(entry);
    calendar.push(entry);
  }
  const auto want = drain(heap);
  const auto got = drain(calendar);
  EXPECT_EQ(got, want);
}

TEST(QueueBackendName, RoundTrips) {
  EXPECT_EQ(to_string(QueueBackend::kHeap4), "heap4");
  EXPECT_EQ(to_string(QueueBackend::kCalendar), "calendar");
  EXPECT_EQ(parse_queue_backend("heap4"), QueueBackend::kHeap4);
  EXPECT_EQ(parse_queue_backend("calendar"), QueueBackend::kCalendar);
  EXPECT_FALSE(parse_queue_backend("ladder").has_value());
  EXPECT_FALSE(parse_queue_backend("").has_value());
}

TEST(QueueBackendDefault, EnvOverridesAndRejectsGarbage) {
  ::setenv("DGSCHED_QUEUE", "calendar", 1);
  EXPECT_EQ(default_queue_backend(), QueueBackend::kCalendar);
  EXPECT_EQ(Simulator().queue_backend(), QueueBackend::kCalendar);
  ::setenv("DGSCHED_QUEUE", "heap4", 1);
  EXPECT_EQ(default_queue_backend(), QueueBackend::kHeap4);
  ::setenv("DGSCHED_QUEUE", "bogus", 1);
  try {
    (void)default_queue_backend();
    ADD_FAILURE() << "DGSCHED_QUEUE=bogus was accepted";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("DGSCHED_QUEUE"), std::string::npos) << error.what();
    EXPECT_NE(std::string(error.what()).find("bogus"), std::string::npos) << error.what();
  }
  ::unsetenv("DGSCHED_QUEUE");
}

TEST(SimulatorQueueBackend, SwitchAfterResetRunsIdentically) {
  // One simulator, both backends across a reset() boundary: the event
  // sequence and kernel counters must match a fresh heap4 run exactly.
  auto drive = [](Simulator& sim, std::vector<double>& fired) {
    for (int i = 0; i < 500; ++i) {
      const double t = static_cast<double>((i * 7919) % 997);
      sim.schedule_at(t, [&fired, t] { fired.push_back(t); });
    }
    sim.run();
  };

  Simulator sim(QueueBackend::kHeap4);
  std::vector<double> heap_fired;
  drive(sim, heap_fired);
  const std::uint64_t heap_scheduled = sim.scheduled_events();

  sim.reset();
  sim.set_queue_backend(QueueBackend::kCalendar);
  EXPECT_EQ(sim.queue_backend(), QueueBackend::kCalendar);
  std::vector<double> calendar_fired;
  drive(sim, calendar_fired);

  EXPECT_EQ(calendar_fired, heap_fired);
  EXPECT_EQ(sim.scheduled_events(), heap_scheduled);
}

TEST(SimulatorQueueBackend, CancellationLeavesStaleEntriesOnBothBackends) {
  for (const QueueBackend backend : {QueueBackend::kHeap4, QueueBackend::kCalendar}) {
    Simulator sim(backend);
    int fired = 0;
    std::vector<EventHandle> handles;
    for (int i = 0; i < 200; ++i) {
      handles.push_back(sim.schedule_at(static_cast<double>(i), [&fired] { ++fired; }));
    }
    for (std::size_t i = 0; i < handles.size(); i += 2) EXPECT_TRUE(handles[i].cancel());
    sim.run();
    EXPECT_EQ(fired, 100) << to_string(backend);
    EXPECT_EQ(sim.executed_events(), 100u) << to_string(backend);
    EXPECT_TRUE(sim.empty());
  }
}

}  // namespace
}  // namespace dg::des
