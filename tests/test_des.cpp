// DES kernel: event ordering, cancellation, determinism, clock semantics.
#include <gtest/gtest.h>

#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "des/simulator.hpp"

namespace dg::des {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(Simulator, ExecutesEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30.0, [&] { order.push_back(3); });
  sim.schedule_at(10.0, [&] { order.push_back(1); });
  sim.schedule_at(20.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30.0);
}

TEST(Simulator, EqualTimesRunInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_after(42.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 42.5);
}

TEST(Simulator, EventsCanScheduleFurtherEvents) {
  Simulator sim;
  std::vector<double> times;
  std::function<void()> chain = [&] {
    times.push_back(sim.now());
    if (times.size() < 5) sim.schedule_after(10.0, chain);
  };
  sim.schedule_after(10.0, chain);
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{10, 20, 30, 40, 50}));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventHandle handle = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(handle.pending());
  EXPECT_TRUE(handle.cancel());
  EXPECT_FALSE(handle.pending());
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(Simulator, CancelTwiceReturnsFalse) {
  Simulator sim;
  EventHandle handle = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(handle.cancel());
  EXPECT_FALSE(handle.cancel());
}

TEST(Simulator, CancelAfterExecutionReturnsFalse) {
  Simulator sim;
  EventHandle handle = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());
}

TEST(Simulator, HandleNotPendingDuringOwnExecution) {
  Simulator sim;
  EventHandle handle;
  bool pending_inside = true;
  handle = sim.schedule_at(1.0, [&] { pending_inside = handle.pending(); });
  sim.run();
  EXPECT_FALSE(pending_inside);
}

TEST(Simulator, CancelledEventBetweenOthersPreservesOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  EventHandle middle = sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  middle.cancel();
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Simulator, StopHaltsExecution) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(i, [&] {
      ++count;
      if (count == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(sim.stopped());
  sim.clear_stop();
  sim.run();
  EXPECT_EQ(count, 10);
}

TEST(Simulator, RunUntilExecutesOnlyUpToHorizon) {
  Simulator sim;
  std::vector<double> times;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&times, &sim] { times.push_back(sim.now()); });
  }
  sim.run_until(2.5);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(sim.now(), 2.5);
  sim.run_until(10.0);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
  EXPECT_EQ(sim.now(), 10.0);
}

TEST(Simulator, RunUntilIncludesEventsExactlyAtHorizon) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(5.0, [&] { ran = true; });
  sim.run_until(5.0);
  EXPECT_TRUE(ran);
}

TEST(Simulator, RunUntilAdvancesClockOnEmptyQueue) {
  Simulator sim;
  sim.run_until(123.0);
  EXPECT_EQ(sim.now(), 123.0);
}

TEST(Simulator, PendingEventCountTracksQueue) {
  Simulator sim;
  EventHandle a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  a.cancel();
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(Simulator, ScheduleAtCurrentTimeRunsAfterCurrentEvent) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] {
    order.push_back(1);
    sim.schedule_at(sim.now(), [&] { order.push_back(2); });
  });
  sim.schedule_at(1.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Simulator, ZeroDelayScheduleAfter) {
  Simulator sim;
  int value = 0;
  sim.schedule_after(0.0, [&] { value = 7; });
  sim.run();
  EXPECT_EQ(value, 7);
  EXPECT_EQ(sim.now(), 0.0);
}

TEST(EventHandle, DefaultConstructedIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());
  EXPECT_EQ(handle.time(), 0.0);
}

TEST(EventHandle, HandleOutlivesSimulator) {
  EventHandle handle;
  {
    Simulator sim;
    handle = sim.schedule_at(5.0, [] {});
    EXPECT_TRUE(handle.pending());
  }
  // The record died with the simulator; the weak handle reports not-pending.
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());
}

TEST(SimulatorDeath, SchedulingInThePastAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Simulator sim;
        sim.schedule_at(10.0, [] {});
        sim.run();
        sim.schedule_at(5.0, [] {});
      },
      "past");
}

TEST(SimulatorDeath, NegativeDelayAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Simulator sim;
        sim.schedule_after(-1.0, [] {});
      },
      "past");
}

TEST(SimulatorDeath, NonFiniteTimeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Simulator sim;
        sim.schedule_at(std::numeric_limits<double>::infinity(), [] {});
      },
      "finite");
}

TEST(Simulator, RescheduleAfterStopAndClear) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] {
    ++count;
    sim.stop();
  });
  sim.run();
  EXPECT_EQ(count, 1);
  sim.clear_stop();
  sim.schedule_after(1.0, [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), 2.0);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  double last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    sim.schedule_at(t, [&, t] {
      if (t < last) monotone = false;
      last = t;
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.executed_events(), 10000u);
}

}  // namespace
}  // namespace dg::des
