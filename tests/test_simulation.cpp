// End-to-end Simulation runs: invariants, determinism, metric identities.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulation.hpp"

namespace dg::sim {
namespace {

SimulationConfig small_config(sched::PolicyKind policy, grid::AvailabilityLevel level,
                              double granularity = 25000.0,
                              workload::Intensity intensity = workload::Intensity::kLow,
                              std::size_t num_bots = 15) {
  SimulationConfig config;
  config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHom, level);
  config.workload = make_paper_workload(config.grid, granularity, intensity, num_bots);
  config.policy = policy;
  config.seed = 77;
  return config;
}

TEST(Simulation, AllBotsCompleteInStableSystem) {
  const SimulationResult result =
      Simulation(small_config(sched::PolicyKind::kFcfsShare, grid::AvailabilityLevel::kHigh))
          .run();
  EXPECT_FALSE(result.saturated);
  EXPECT_EQ(result.bots_completed, result.bots.size());
  for (const BotRecord& bot : result.bots) EXPECT_TRUE(bot.completed);
}

TEST(Simulation, TurnaroundDecompositionIdentity) {
  const SimulationResult result =
      Simulation(small_config(sched::PolicyKind::kRoundRobin, grid::AvailabilityLevel::kHigh))
          .run();
  for (const BotRecord& bot : result.bots) {
    EXPECT_NEAR(bot.turnaround, bot.waiting_time + bot.makespan, 1e-6);
    EXPECT_GE(bot.waiting_time, 0.0);
    EXPECT_GE(bot.makespan, 0.0);
    EXPECT_GE(bot.completion_time, bot.arrival_time);
    EXPECT_GE(bot.first_dispatch_time, bot.arrival_time);
  }
}

TEST(Simulation, RecordsAreInArrivalOrder) {
  const SimulationResult result =
      Simulation(small_config(sched::PolicyKind::kLongIdle, grid::AvailabilityLevel::kHigh))
          .run();
  for (std::size_t i = 1; i < result.bots.size(); ++i) {
    EXPECT_GE(result.bots[i].arrival_time, result.bots[i - 1].arrival_time);
    EXPECT_EQ(result.bots[i].id, static_cast<workload::BotId>(i));
  }
}

TEST(Simulation, DeterministicForSameSeed) {
  SimulationConfig config = small_config(sched::PolicyKind::kRoundRobinNrf,
                                         grid::AvailabilityLevel::kLow);
  const SimulationResult a = Simulation(config).run();
  const SimulationResult b = Simulation(config).run();
  ASSERT_EQ(a.bots.size(), b.bots.size());
  EXPECT_EQ(a.events_executed, b.events_executed);
  for (std::size_t i = 0; i < a.bots.size(); ++i) {
    EXPECT_EQ(a.bots[i].turnaround, b.bots[i].turnaround);
    EXPECT_EQ(a.bots[i].completion_time, b.bots[i].completion_time);
  }
}

TEST(Simulation, DifferentSeedsGiveDifferentRuns) {
  SimulationConfig config = small_config(sched::PolicyKind::kFcfsShare,
                                         grid::AvailabilityLevel::kLow);
  const SimulationResult a = Simulation(config).run();
  config.seed = 78;
  const SimulationResult b = Simulation(config).run();
  EXPECT_NE(a.turnaround.mean(), b.turnaround.mean());
}

TEST(Simulation, WarmupBotsExcludedFromAggregates) {
  SimulationConfig config = small_config(sched::PolicyKind::kFcfsShare,
                                         grid::AvailabilityLevel::kHigh);
  config.warmup_bots = 5;
  const SimulationResult result = Simulation(config).run();
  EXPECT_EQ(result.turnaround.count(), result.bots.size() - 5);
}

TEST(Simulation, TinyHorizonMarksSaturation) {
  SimulationConfig config = small_config(sched::PolicyKind::kFcfsShare,
                                         grid::AvailabilityLevel::kHigh);
  config.max_sim_time = 10.0;  // nothing can finish
  const SimulationResult result = Simulation(config).run();
  EXPECT_TRUE(result.saturated);
  EXPECT_LT(result.bots_completed, result.bots.size());
  for (const BotRecord& bot : result.bots) {
    if (!bot.completed) {
      EXPECT_DOUBLE_EQ(bot.completion_time, result.end_time);
    }
  }
}

TEST(Simulation, UtilizationNearTargetInStableSystem) {
  // Long homogeneous run at low intensity: measured utilization should be in
  // the vicinity of the configured 50% target (replication overhead pushes
  // it up; availability losses push effective capacity down).
  SimulationConfig config = small_config(sched::PolicyKind::kRoundRobin,
                                         grid::AvailabilityLevel::kHigh, 5000.0,
                                         workload::Intensity::kLow, 60);
  const SimulationResult result = Simulation(config).run();
  EXPECT_GT(result.utilization, 0.25);
  EXPECT_LT(result.utilization, 0.85);
}

TEST(Simulation, MeasuredAvailabilityMatchesConfig) {
  SimulationConfig config = small_config(sched::PolicyKind::kFcfsShare,
                                         grid::AvailabilityLevel::kLow, 5000.0,
                                         workload::Intensity::kLow, 30);
  const SimulationResult result = Simulation(config).run();
  EXPECT_NEAR(result.measured_availability, 0.50, 0.10);
  EXPECT_GT(result.machine_failures, 0u);
}

TEST(Simulation, NoFailuresMeansNoCheckpointsOrReplicaFailures) {
  SimulationConfig config = small_config(sched::PolicyKind::kFcfsShare,
                                         grid::AvailabilityLevel::kAlways);
  const SimulationResult result = Simulation(config).run();
  EXPECT_EQ(result.machine_failures, 0u);
  EXPECT_EQ(result.replica_failures, 0u);
  EXPECT_EQ(result.checkpoints_saved, 0u);
  EXPECT_EQ(result.checkpoint_retrievals, 0u);
  EXPECT_EQ(result.measured_availability, 1.0);
}

TEST(Simulation, FcfsExclNeverOverlapsBags) {
  // Exclusive allocation: bag k starts only after bag k-1 completed.
  SimulationConfig config = small_config(sched::PolicyKind::kFcfsExcl,
                                         grid::AvailabilityLevel::kAlways);
  const SimulationResult result = Simulation(config).run();
  ASSERT_FALSE(result.saturated);
  for (std::size_t i = 1; i < result.bots.size(); ++i) {
    EXPECT_GE(result.bots[i].first_dispatch_time, result.bots[i - 1].completion_time - 1e-6)
        << "bag " << i << " started before bag " << i - 1 << " completed";
  }
}

TEST(Simulation, TasksCompletedMatchesWorkload) {
  SimulationConfig config = small_config(sched::PolicyKind::kRoundRobin,
                                         grid::AvailabilityLevel::kHigh);
  const SimulationResult result = Simulation(config).run();
  std::size_t expected = 0;
  for (const BotRecord& bot : result.bots) expected += bot.num_tasks;
  EXPECT_EQ(result.tasks_completed, expected);
}

TEST(Simulation, ReplicationThresholdOverrideReducesReplicas) {
  SimulationConfig config = small_config(sched::PolicyKind::kRoundRobin,
                                         grid::AvailabilityLevel::kAlways);
  config.replication_threshold = 1;
  const SimulationResult r1 = Simulation(config).run();
  config.replication_threshold = 3;
  const SimulationResult r3 = Simulation(config).run();
  EXPECT_LT(r1.replicas_started, r3.replicas_started);
  EXPECT_EQ(r1.wasted_compute_time, 0.0);  // no replication, no failures
  EXPECT_GT(r3.wasted_compute_time, 0.0);
}

TEST(Simulation, DynamicReplicationRuns) {
  SimulationConfig config = small_config(sched::PolicyKind::kRoundRobin,
                                         grid::AvailabilityLevel::kLow);
  config.dynamic_replication = true;
  const SimulationResult result = Simulation(config).run();
  EXPECT_EQ(result.bots_completed, result.bots.size());
}

TEST(Simulation, WorkQueueCompletesWithoutReplication) {
  SimulationConfig config = small_config(sched::PolicyKind::kFcfsShare,
                                         grid::AvailabilityLevel::kAlways);
  config.individual = sched::IndividualSchedulerKind::kWorkQueue;
  const SimulationResult result = Simulation(config).run();
  EXPECT_EQ(result.bots_completed, result.bots.size());
  // threshold 1 and no failures: one replica per task.
  EXPECT_EQ(result.replicas_started, result.tasks_completed);
}

TEST(Simulation, KnowledgeBasedSchedulerCompletes) {
  SimulationConfig config = small_config(sched::PolicyKind::kFcfsShare,
                                         grid::AvailabilityLevel::kMed);
  config.individual = sched::IndividualSchedulerKind::kKnowledgeBased;
  const SimulationResult result = Simulation(config).run();
  EXPECT_EQ(result.bots_completed, result.bots.size());
}

TEST(Simulation, WqrLosesMoreWorkThanWqrFtUnderChurn) {
  // Without checkpointing every failure loses the replica's full progress;
  // with WQR-FT losses are bounded by the checkpoint interval.
  SimulationConfig config = small_config(sched::PolicyKind::kRoundRobin,
                                         grid::AvailabilityLevel::kLow, 25000.0,
                                         workload::Intensity::kLow, 12);
  config.individual = sched::IndividualSchedulerKind::kWqr;
  const SimulationResult wqr = Simulation(config).run();
  config.individual = sched::IndividualSchedulerKind::kWqrFt;
  const SimulationResult wqrft = Simulation(config).run();
  ASSERT_GT(wqr.replica_failures, 0u);
  EXPECT_GT(wqr.lost_work / static_cast<double>(wqr.replica_failures),
            wqrft.lost_work / static_cast<double>(wqrft.replica_failures));
}

TEST(Simulation, EventsExecutedIsPositiveAndBounded) {
  const SimulationResult result =
      Simulation(small_config(sched::PolicyKind::kFcfsShare, grid::AvailabilityLevel::kHigh))
          .run();
  EXPECT_GT(result.events_executed, result.bots.size());
}

TEST(MakePaperWorkload, RatesScaleWithIntensity) {
  const grid::GridConfig grid_config =
      grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kHigh);
  const auto low = make_paper_workload(grid_config, 5000.0, workload::Intensity::kLow, 10);
  const auto high = make_paper_workload(grid_config, 5000.0, workload::Intensity::kHigh, 10);
  EXPECT_NEAR(high.arrival_rate / low.arrival_rate, 0.9 / 0.5, 1e-9);
}

TEST(MakePaperWorkload, LowerAvailabilityMeansLowerRate) {
  const auto high_avail = make_paper_workload(
      grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kHigh),
      5000.0, workload::Intensity::kLow, 10);
  const auto low_avail = make_paper_workload(
      grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kLow),
      5000.0, workload::Intensity::kLow, 10);
  EXPECT_LT(low_avail.arrival_rate, high_avail.arrival_rate);
}

}  // namespace
}  // namespace dg::sim
