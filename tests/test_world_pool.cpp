// mmap-shared world pool (grid/world_pool.hpp): publish/load round trips
// must be bitwise, corrupt or stale files must read as absent (never an
// error), horizon extension must republish, and a WorldCache with a pool
// attached must classify pool-served requests as pool_hits — a class of
// their own, neither in-memory hits nor syntheses (satellite 1).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "grid/desktop_grid.hpp"
#include "grid/realization.hpp"
#include "grid/world_cache.hpp"
#include "grid/world_pool.hpp"

namespace dg::grid {
namespace {

/// Fresh pool directory per test, removed on destruction.
struct PoolDir {
  explicit PoolDir(const std::string& name)
      : path((std::filesystem::temp_directory_path() /
              ("dgsched_pool_test_" + name + "_" + std::to_string(::getpid())))
                 .string()) {
    std::filesystem::remove_all(path);
  }
  ~PoolDir() { std::filesystem::remove_all(path); }
  std::string path;
};

GridConfig test_grid(AvailabilityLevel level = AvailabilityLevel::kLow) {
  GridConfig config = GridConfig::preset(Heterogeneity::kHom, level);
  config.total_power = 200.0;  // 20 machines at hom_power 10
  return config;
}

OutageModel test_outages() {
  OutageModel outages;
  outages.enabled = true;
  outages.mean_interarrival = 30000.0;
  outages.fraction = 0.3;
  outages.duration = rng::UniformDist{2000.0, 8000.0};
  return outages;
}

void expect_world_bitwise(const WorldRealization& a, const WorldRealization& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.horizon, b.horizon);  // bitwise double
  EXPECT_EQ(a.num_machines, b.num_machines);
  EXPECT_EQ(a.machine_transitions, b.machine_transitions);
  EXPECT_EQ(a.machine_offsets, b.machine_offsets);
  EXPECT_EQ(a.server_transitions, b.server_transitions);
  EXPECT_EQ(a.outage_times, b.outage_times);
  EXPECT_EQ(a.outage_durations, b.outage_durations);
  EXPECT_EQ(a.outage_machines, b.outage_machines);
  EXPECT_EQ(a.machines_per_outage, b.machines_per_outage);
}

/// The single .world file a one-world pool directory holds.
std::string only_world_file(const std::string& dir) {
  std::string found;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".world") {
      EXPECT_TRUE(found.empty()) << "more than one .world file";
      found = entry.path().string();
    }
  }
  EXPECT_FALSE(found.empty()) << "no .world file in " << dir;
  return found;
}

TEST(WorldPool, PublishThenLoadIsBitwise) {
  PoolDir dir("roundtrip");
  const GridConfig config = test_grid();
  CheckpointServerFaultModel faults;
  faults.enabled = true;
  faults.mtbf = 8000.0;
  faults.mttr = 4000.0;
  const OutageModel outages = test_outages();
  constexpr double kHorizon = 100000.0;
  constexpr std::uint64_t kSeed = 4711;

  const WorldRealization world = WorldRealization::synthesize(
      config.availability, faults, outages, 20, kHorizon, kSeed);
  const std::uint64_t signature =
      WorldCache::signature(config.availability, faults, outages, 20);

  WorldPool pool(dir.path);
  pool.publish(world, signature);
  const auto loaded =
      pool.try_load(config.availability, faults, outages, 20, kHorizon, kSeed, signature);
  ASSERT_NE(loaded, nullptr);
  expect_world_bitwise(*loaded, world);

  // A horizon past the published coverage reads as absent, not an error.
  EXPECT_EQ(pool.try_load(config.availability, faults, outages, 20, kHorizon * 2, kSeed,
                          signature),
            nullptr);
  // So does a seed no one published.
  EXPECT_EQ(pool.try_load(config.availability, faults, outages, 20, kHorizon, kSeed + 1,
                          signature),
            nullptr);
}

TEST(WorldPool, AcquireSynthesizesOnceThenServesSiblings) {
  PoolDir dir("siblings");
  const GridConfig config = test_grid();
  const std::uint64_t signature = WorldCache::signature(
      config.availability, config.checkpoint_server_faults, config.outages, 20);
  SynthesisScratch scratch;

  WorldPool first(dir.path);
  const WorldPool::Acquired built =
      first.acquire(config.availability, config.checkpoint_server_faults, config.outages, 20,
                    50000.0, 50000.0 * 1.25, 9, signature, scratch);
  ASSERT_NE(built.world, nullptr);
  EXPECT_FALSE(built.from_pool);  // this process synthesized (and published)

  // A sibling process is modeled by a fresh WorldPool over the same
  // directory: it must load the published bytes instead of synthesizing.
  WorldPool sibling(dir.path);
  const WorldPool::Acquired loaded =
      sibling.acquire(config.availability, config.checkpoint_server_faults, config.outages, 20,
                      50000.0, 50000.0 * 1.25, 9, signature, scratch);
  ASSERT_NE(loaded.world, nullptr);
  EXPECT_TRUE(loaded.from_pool);
  expect_world_bitwise(*loaded.world, *built.world);
}

TEST(WorldPool, CorruptFileReadsAsAbsentAndIsRebuilt) {
  PoolDir dir("corrupt");
  const GridConfig config = test_grid();
  const std::uint64_t signature = WorldCache::signature(
      config.availability, config.checkpoint_server_faults, config.outages, 20);
  const WorldRealization world = WorldRealization::synthesize(
      config.availability, config.checkpoint_server_faults, config.outages, 20, 40000.0, 2);

  WorldPool pool(dir.path);
  pool.publish(world, signature);
  const std::string file = only_world_file(dir.path);

  // Flip one payload byte: checksum validation must reject the file.
  {
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(std::filesystem::file_size(file)) - 9);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-1, std::ios::cur);
    byte = static_cast<char>(byte ^ 0x5a);
    f.write(&byte, 1);
  }
  EXPECT_EQ(pool.try_load(config.availability, config.checkpoint_server_faults, config.outages,
                          20, 40000.0, 2, signature),
            nullptr);

  // acquire() treats the corrupt file as a build request and republishes.
  SynthesisScratch scratch;
  const WorldPool::Acquired rebuilt =
      pool.acquire(config.availability, config.checkpoint_server_faults, config.outages, 20,
                   40000.0, 40000.0, 2, signature, scratch);
  ASSERT_NE(rebuilt.world, nullptr);
  EXPECT_FALSE(rebuilt.from_pool);
  expect_world_bitwise(*rebuilt.world, world);
  const auto reloaded = pool.try_load(config.availability, config.checkpoint_server_faults,
                                      config.outages, 20, 40000.0, 2, signature);
  ASSERT_NE(reloaded, nullptr);
  expect_world_bitwise(*reloaded, world);

  // A truncated file (torn write never published under the final name, but
  // simulate disk damage anyway) also reads as absent.
  std::filesystem::resize_file(file, std::filesystem::file_size(file) / 2);
  EXPECT_EQ(pool.try_load(config.availability, config.checkpoint_server_faults, config.outages,
                          20, 40000.0, 2, signature),
            nullptr);
  // As does an empty one.
  std::filesystem::resize_file(file, 0);
  EXPECT_EQ(pool.try_load(config.availability, config.checkpoint_server_faults, config.outages,
                          20, 40000.0, 2, signature),
            nullptr);
}

TEST(WorldPool, ModelMismatchReadsAsAbsent) {
  // Defense in depth: even when a file exists under (signature, seed), its
  // embedded models must match the request — a stale file from a hash
  // collision or a format drift is skipped, never replayed.
  PoolDir dir("mismatch");
  const GridConfig low = test_grid(AvailabilityLevel::kLow);
  const GridConfig med = test_grid(AvailabilityLevel::kMed);
  const std::uint64_t low_signature = WorldCache::signature(
      low.availability, low.checkpoint_server_faults, low.outages, 20);

  WorldPool pool(dir.path);
  pool.publish(WorldRealization::synthesize(low.availability, low.checkpoint_server_faults,
                                            low.outages, 20, 30000.0, 3),
               low_signature);
  // Deliberately look the file up under low's signature with med's models.
  EXPECT_EQ(pool.try_load(med.availability, med.checkpoint_server_faults, med.outages, 20,
                          30000.0, 3, low_signature),
            nullptr);
  // And under the right models it still loads.
  EXPECT_NE(pool.try_load(low.availability, low.checkpoint_server_faults, low.outages, 20,
                          30000.0, 3, low_signature),
            nullptr);
}

TEST(WorldPool, ShortPublishedHorizonIsRepublishedLonger) {
  PoolDir dir("extend");
  const GridConfig config = test_grid();
  const std::uint64_t signature = WorldCache::signature(
      config.availability, config.checkpoint_server_faults, config.outages, 20);
  SynthesisScratch scratch;

  WorldPool pool(dir.path);
  const WorldPool::Acquired shorter =
      pool.acquire(config.availability, config.checkpoint_server_faults, config.outages, 20,
                   10000.0, 10000.0, 5, signature, scratch);
  EXPECT_FALSE(shorter.from_pool);

  // A longer request finds the published file too short: resynthesize and
  // republish over it.
  const WorldPool::Acquired longer =
      pool.acquire(config.availability, config.checkpoint_server_faults, config.outages, 20,
                   100000.0, 100000.0, 5, signature, scratch);
  EXPECT_FALSE(longer.from_pool);
  EXPECT_TRUE(longer.world->covers(100000.0));

  // Same streams, longer horizon: the shorter world's timeline is a bitwise
  // prefix (per machine, all but the final dangling transition).
  for (std::size_t m = 0; m < 20; ++m) {
    SCOPED_TRACE(m);
    const std::uint32_t s_begin = shorter.world->machine_offsets[m];
    const std::uint32_t s_len = shorter.world->machine_offsets[m + 1] - s_begin;
    const std::uint32_t l_begin = longer.world->machine_offsets[m];
    ASSERT_GE(longer.world->machine_offsets[m + 1] - l_begin, s_len);
    for (std::uint32_t i = 0; i + 1 < s_len; ++i) {
      EXPECT_EQ(longer.world->machine_transitions[l_begin + i],
                shorter.world->machine_transitions[s_begin + i]);
    }
  }

  // The republished file now serves the longer horizon from the pool.
  WorldPool sibling(dir.path);
  const WorldPool::Acquired served =
      sibling.acquire(config.availability, config.checkpoint_server_faults, config.outages, 20,
                      100000.0, 100000.0, 5, signature, scratch);
  EXPECT_TRUE(served.from_pool);
  expect_world_bitwise(*served.world, *longer.world);
}

TEST(WorldPool, BadDirectoryThrows) {
  EXPECT_THROW(WorldPool("/proc/definitely_not_writable/pool"), std::runtime_error);
}

// --- WorldCache integration: pool_hits accounting (satellite 1) ---

TEST(WorldCachePool, PoolServedRequestsCountAsPoolHitsNotMisses) {
  PoolDir dir("cache_stats");
  const GridConfig config = test_grid();

  // First cache (process A): synthesizes, publishes, then hits in memory.
  WorldCache builder;
  builder.attach_pool(std::make_shared<WorldPool>(dir.path));
  const auto built = builder.acquire(config.availability, config.checkpoint_server_faults,
                                     config.outages, 20, 20000.0, 11);
  const auto resident = builder.acquire(config.availability, config.checkpoint_server_faults,
                                        config.outages, 20, 20000.0, 11);
  EXPECT_EQ(resident.get(), built.get());
  {
    const WorldCacheStats stats = builder.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.pool_hits, 0u);
    EXPECT_EQ(stats.lookups(), 2u);
  }

  // Second cache (process B): the memory miss is served by A's published
  // file — a pool hit, not a miss (no synthesis ran) and not a memory hit.
  WorldCache sibling;
  sibling.attach_pool(std::make_shared<WorldPool>(dir.path));
  const auto loaded = sibling.acquire(config.availability, config.checkpoint_server_faults,
                                      config.outages, 20, 20000.0, 11);
  ASSERT_NE(loaded, nullptr);
  expect_world_bitwise(*loaded, *built);
  {
    const WorldCacheStats stats = sibling.stats();
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.pool_hits, 1u);
    EXPECT_EQ(stats.lookups(), 1u);
    EXPECT_DOUBLE_EQ(stats.pool_hit_rate(), 1.0);
    EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.0);
  }
  // Once loaded it is resident: the next acquire is a plain memory hit.
  const auto warm = sibling.acquire(config.availability, config.checkpoint_server_faults,
                                    config.outages, 20, 20000.0, 11);
  EXPECT_EQ(warm.get(), loaded.get());
  EXPECT_EQ(sibling.stats().hits, 1u);
  EXPECT_EQ(sibling.stats().pool_hits, 1u);

  // merge() aggregates the classes separately (the coordinator's view).
  WorldCacheStats merged = builder.stats();
  merged.merge(sibling.stats());
  EXPECT_EQ(merged.misses, 1u);
  EXPECT_EQ(merged.hits, 2u);
  EXPECT_EQ(merged.pool_hits, 1u);
  EXPECT_EQ(merged.lookups(), 4u);
  EXPECT_DOUBLE_EQ(merged.pool_hit_rate(), 0.25);
  EXPECT_DOUBLE_EQ(merged.hit_rate(), 0.5);
}

TEST(WorldCachePool, RatesNeverSumPastOne) {
  PoolDir dir("rates");
  const GridConfig config = test_grid();
  WorldCache a;
  a.attach_pool(std::make_shared<WorldPool>(dir.path));
  // Mix of misses, hits, a pool hit (via a sibling), and an extension.
  (void)a.acquire(config.availability, config.checkpoint_server_faults, config.outages, 20,
                  10000.0, 1);
  (void)a.acquire(config.availability, config.checkpoint_server_faults, config.outages, 20,
                  10000.0, 1);
  (void)a.acquire(config.availability, config.checkpoint_server_faults, config.outages, 20,
                  90000.0, 1);  // past the margin: extension
  WorldCache b;
  b.attach_pool(std::make_shared<WorldPool>(dir.path));
  (void)b.acquire(config.availability, config.checkpoint_server_faults, config.outages, 20,
                  10000.0, 1);  // pool hit on a's republished world

  WorldCacheStats merged = a.stats();
  merged.merge(b.stats());
  EXPECT_EQ(merged.lookups(), 4u);
  EXPECT_EQ(merged.hits + merged.misses + merged.extensions + merged.pool_hits,
            merged.lookups());
  EXPECT_LE(merged.hit_rate() + merged.pool_hit_rate(), 1.0);
}

}  // namespace
}  // namespace dg::grid
