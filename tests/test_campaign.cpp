// Robustness campaign (exp/campaign.hpp): grid expansion, risk-cliff rows,
// seed-sensitivity spread, and the determinism contracts — campaign rows and
// spread statistics must be bit-identical across execution shapes (threads,
// batching, multi-cell replay, world cache on/off).
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/runner.hpp"

namespace dg::exp {
namespace {

/// Small axes so a full sweep stays test-sized: 2 policies x 2 machine
/// availabilities x 2 server availabilities x 1 utilization x 1 threshold.
CampaignAxes tiny_axes() {
  CampaignAxes axes = CampaignAxes::smoke();
  axes.num_bots = 6;
  axes.warmup_bots = 1;
  axes.granularity = 25000.0;
  return axes;
}

RunOptions tiny_options() {
  RunOptions options;
  options.min_replications = 2;
  options.max_replications = 2;
  options.threads = 2;
  return options;
}

TEST(Campaign, ExpandsInFixedPolicyMajorOrder) {
  const CampaignAxes axes = tiny_axes();
  const std::vector<CampaignCell> cells = expand_campaign(axes);
  ASSERT_EQ(cells.size(), 2u * 2u * 2u * 1u * 1u);
  // Policy-major, then machine availability, then server availability.
  EXPECT_EQ(cells[0].policy, sched::PolicyKind::kFcfsShare);
  EXPECT_EQ(cells[4].policy, sched::PolicyKind::kRoundRobin);
  EXPECT_DOUBLE_EQ(cells[0].machine_availability, 0.98);
  EXPECT_DOUBLE_EQ(cells[0].server_availability, 1.0);
  EXPECT_DOUBLE_EQ(cells[1].server_availability, 0.70);
  EXPECT_DOUBLE_EQ(cells[2].machine_availability, 0.50);
  // Labels carry every axis.
  EXPECT_EQ(cells[0].label, "FCFS-Share a=0.98 s=1.00 U=0.90 r=2");
  // The reliable-server corner keeps faults disabled; others derive MTBF
  // from the availability target.
  EXPECT_FALSE(cells[0].config.grid.checkpoint_server_faults.enabled);
  ASSERT_TRUE(cells[1].config.grid.checkpoint_server_faults.enabled);
  const auto& faults = cells[1].config.grid.checkpoint_server_faults;
  EXPECT_NEAR(faults.mtbf / (faults.mtbf + faults.mttr), 0.70, 1e-12);
  // Same axes, same cells (labels and configs are deterministic).
  const std::vector<CampaignCell> again = expand_campaign(axes);
  ASSERT_EQ(again.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) EXPECT_EQ(again[i].label, cells[i].label);
}

TEST(Campaign, RejectsBadAxes) {
  {
    CampaignAxes axes = tiny_axes();
    axes.policies.clear();
    EXPECT_THROW((void)expand_campaign(axes), std::invalid_argument);
  }
  {
    CampaignAxes axes = tiny_axes();
    axes.machine_availabilities = {1.0};  // must be < 1
    EXPECT_THROW((void)expand_campaign(axes), std::invalid_argument);
  }
  {
    CampaignAxes axes = tiny_axes();
    axes.server_availabilities = {0.0};
    EXPECT_THROW((void)expand_campaign(axes), std::invalid_argument);
  }
  {
    CampaignAxes axes = tiny_axes();
    axes.replication_thresholds = {0};
    EXPECT_THROW((void)expand_campaign(axes), std::invalid_argument);
  }
}

TEST(Campaign, RiskCliffRowsComputeDegradationAgainstMildestCorner) {
  const std::vector<CampaignCell> cells = expand_campaign(tiny_axes());
  const std::vector<CellResult> results = ExperimentRunner(tiny_options()).run(
      [&cells] {
        std::vector<NamedConfig> named;
        for (const CampaignCell& cell : cells) {
          named.push_back(NamedConfig{cell.label, cell.config});
        }
        return named;
      }());
  const std::vector<RiskCliffRow> rows = risk_cliff_rows(cells, results);
  ASSERT_EQ(rows.size(), cells.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    SCOPED_TRACE(rows[i].label);
    EXPECT_EQ(rows[i].label, cells[i].label);
    EXPECT_GT(rows[i].p95, 0.0);
    EXPECT_GE(rows[i].p95, rows[i].p50);
    EXPECT_GE(rows[i].p99, rows[i].p95);
    EXPECT_GT(rows[i].mean_turnaround, 0.0);
    EXPECT_GT(rows[i].replications, 0u);
  }
  // Row 0 is its slice's baseline (a=0.98, s=1.00): degradation exactly 1.
  EXPECT_DOUBLE_EQ(rows[0].degradation_vs_baseline, 1.0);
  // Every other row in that slice is measured against row 0's p95.
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(rows[i].degradation_vs_baseline, rows[i].p95 / rows[0].p95);
  }
  // Second policy's slice has its own baseline.
  EXPECT_DOUBLE_EQ(rows[4].degradation_vs_baseline, 1.0);

  EXPECT_THROW((void)risk_cliff_rows(cells, std::vector<CellResult>(cells.size() - 1)),
               std::invalid_argument);
}

TEST(Campaign, RowsAreBitIdenticalAcrossExecutionShapes) {
  // Satellite 3: the same campaign folded under different thread counts,
  // batch shapes, multi-cell replay, and world-cache settings must produce
  // bitwise-equal heatmap rows.
  const std::vector<CampaignCell> cells = expand_campaign(tiny_axes());
  std::vector<NamedConfig> named;
  for (const CampaignCell& cell : cells) {
    named.push_back(NamedConfig{cell.label, cell.config});
  }

  const auto rows_for = [&](RunOptions options) {
    return risk_cliff_rows(cells, ExperimentRunner(options).run(named));
  };
  const std::vector<RiskCliffRow> reference = rows_for(tiny_options());

  std::vector<RunOptions> shapes;
  {
    RunOptions o = tiny_options();
    o.threads = 1;
    shapes.push_back(o);
  }
  {
    RunOptions o = tiny_options();
    o.threads = 4;
    o.batch_size = 1;
    shapes.push_back(o);
  }
  {
    RunOptions o = tiny_options();
    o.multi_cell_replay = false;
    shapes.push_back(o);
  }
  {
    RunOptions o = tiny_options();
    o.world_cache_bytes = 0;  // live sampling
    shapes.push_back(o);
  }
  {
    RunOptions o = tiny_options();
    o.reuse_workspaces = false;
    shapes.push_back(o);
  }
  for (std::size_t s = 0; s < shapes.size(); ++s) {
    SCOPED_TRACE(s);
    const std::vector<RiskCliffRow> rows = rows_for(shapes[s]);
    ASSERT_EQ(rows.size(), reference.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      SCOPED_TRACE(reference[i].label);
      EXPECT_EQ(rows[i].mean_turnaround, reference[i].mean_turnaround);  // bitwise
      EXPECT_EQ(rows[i].p50, reference[i].p50);
      EXPECT_EQ(rows[i].p95, reference[i].p95);
      EXPECT_EQ(rows[i].p99, reference[i].p99);
      EXPECT_EQ(rows[i].wasted_fraction, reference[i].wasted_fraction);
      EXPECT_EQ(rows[i].degradation_vs_baseline, reference[i].degradation_vs_baseline);
      EXPECT_EQ(rows[i].replications, reference[i].replications);
    }
  }
}

TEST(Campaign, SeedSpreadIsDeterministicAcrossThreadCounts) {
  const std::vector<CampaignCell> cells = expand_campaign(tiny_axes());
  const sim::SimulationConfig& config = cells[1].config;  // a stressed corner

  RunOptions options = tiny_options();
  const SeedSpreadReport reference = seed_sensitivity(config, options, 5);
  ASSERT_EQ(reference.seeds, 5u);
  ASSERT_EQ(reference.p95.size(), 5u);
  EXPECT_GT(reference.p95_min, 0.0);
  EXPECT_LE(reference.p95_min, reference.p95_median);
  EXPECT_LE(reference.p95_median, reference.p95_max);
  EXPECT_GE(reference.p95_max_over_min, 1.0);
  EXPECT_GE(reference.p95_stddev, 0.0);

  for (std::size_t threads : {1u, 4u}) {
    SCOPED_TRACE(threads);
    RunOptions other = options;
    other.threads = threads;
    const SeedSpreadReport report = seed_sensitivity(config, other, 5);
    EXPECT_EQ(report.p95, reference.p95);  // bitwise, per-seed
    EXPECT_EQ(report.mean_turnaround, reference.mean_turnaround);
    EXPECT_EQ(report.p95_median, reference.p95_median);
    EXPECT_EQ(report.p95_stddev, reference.p95_stddev);
    EXPECT_EQ(report.saturated_seeds, reference.saturated_seeds);
  }
  // Fresh-construction path agrees with the reusable-workspace path.
  RunOptions fresh = options;
  fresh.reuse_workspaces = false;
  EXPECT_EQ(seed_sensitivity(config, fresh, 5).p95, reference.p95);

  EXPECT_THROW((void)seed_sensitivity(config, options, 1), std::invalid_argument);
}

TEST(CampaignOptions, FromEnvParsesAndValidates) {
  ASSERT_EQ(setenv("DGSCHED_CAMPAIGN_SEEDS", "7", 1), 0);
  ASSERT_EQ(setenv("DGSCHED_CAMPAIGN_GRID", "smoke", 1), 0);
  ASSERT_EQ(setenv("DGSCHED_ADVERSARY", "0", 1), 0);
  CampaignOptions options = CampaignOptions::from_env();
  EXPECT_EQ(options.seeds, 7u);
  EXPECT_TRUE(options.smoke);
  EXPECT_FALSE(options.adversary);

  ASSERT_EQ(setenv("DGSCHED_CAMPAIGN_GRID", "full", 1), 0);
  ASSERT_EQ(setenv("DGSCHED_ADVERSARY", "1", 1), 0);
  options = CampaignOptions::from_env();
  EXPECT_FALSE(options.smoke);
  EXPECT_TRUE(options.adversary);

  // Malformed values throw, naming the variable and the value.
  ASSERT_EQ(setenv("DGSCHED_CAMPAIGN_SEEDS", "1", 1), 0);
  try {
    (void)CampaignOptions::from_env();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("DGSCHED_CAMPAIGN_SEEDS"), std::string::npos);
    EXPECT_NE(what.find("1"), std::string::npos);
  }
  ASSERT_EQ(setenv("DGSCHED_CAMPAIGN_SEEDS", "8", 1), 0);
  ASSERT_EQ(setenv("DGSCHED_CAMPAIGN_GRID", "banana", 1), 0);
  EXPECT_THROW((void)CampaignOptions::from_env(), std::invalid_argument);
  ASSERT_EQ(setenv("DGSCHED_CAMPAIGN_GRID", "smoke", 1), 0);
  ASSERT_EQ(setenv("DGSCHED_ADVERSARY", "nope", 1), 0);
  EXPECT_THROW((void)CampaignOptions::from_env(), std::invalid_argument);

  ASSERT_EQ(unsetenv("DGSCHED_CAMPAIGN_SEEDS"), 0);
  ASSERT_EQ(unsetenv("DGSCHED_CAMPAIGN_GRID"), 0);
  ASSERT_EQ(unsetenv("DGSCHED_ADVERSARY"), 0);
  const CampaignOptions defaults = CampaignOptions::from_env();
  EXPECT_EQ(defaults.seeds, CampaignOptions{}.seeds);
  EXPECT_FALSE(defaults.smoke);
  EXPECT_TRUE(defaults.adversary);
}

}  // namespace
}  // namespace dg::exp
