// The InvariantChecker itself: feed it hand-crafted *bad* event sequences
// and assert each contract actually fires. Everywhere else the checker is
// only ever asserted empty; these tests pin that the contracts are live.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "grid/machine.hpp"
#include "sched/bot_state.hpp"
#include "sim/invariant_checker.hpp"
#include "workload/bot.hpp"

namespace dg::sim {
namespace {

bool mentions(const InvariantChecker& checker, const std::string& fragment) {
  for (const std::string& violation : checker.violations()) {
    if (violation.find(fragment) != std::string::npos) return true;
  }
  return false;
}

// A one-bag fixture with real BotState/TaskState/Machine objects the checker
// can cross-examine; tests then replay event sequences by hand.
struct Fixture {
  explicit Fixture(std::vector<double> works = {100.0}) {
    workload::BotSpec spec;
    spec.id = 0;
    spec.arrival_time = 0.0;
    spec.granularity = works.empty() ? 0.0 : works.front();
    for (double w : works) spec.tasks.push_back(workload::TaskSpec{w});
    bot = std::make_unique<sched::BotState>(spec);
    machine_a = std::make_unique<grid::Machine>(0, 10.0);
    machine_b = std::make_unique<grid::Machine>(1, 10.0);
  }

  [[nodiscard]] sched::TaskState& task(std::size_t i = 0) { return bot->task(i); }

  std::unique_ptr<sched::BotState> bot;
  std::unique_ptr<grid::Machine> machine_a;
  std::unique_ptr<grid::Machine> machine_b;
};

TEST(InvariantCheckerSelf, CleanSequencePasses) {
  Fixture f;
  InvariantChecker checker;
  checker.on_bot_submitted(*f.bot, 0.0);
  f.task().on_replica_started(1.0);
  f.bot->after_replica_started(f.task());
  f.bot->note_dispatch(1.0);
  checker.on_replica_started(f.task(), *f.machine_a, 1.0);
  f.task().mark_completed(11.0);
  f.bot->on_task_completed(f.task());
  f.bot->note_completion(11.0);
  checker.on_task_completed(f.task(), 11.0);
  f.task().on_replica_stopped(11.0);
  f.bot->after_replica_stopped(f.task());
  checker.on_replica_stopped(f.task(), *f.machine_a, ReplicaStopKind::kCompleted, 11.0);
  checker.on_bot_completed(*f.bot, 11.0);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(InvariantCheckerSelf, DoubleStartOnOneMachineFires) {
  Fixture f({100.0, 100.0});
  InvariantChecker checker;
  f.task(0).on_replica_started(1.0);
  checker.on_replica_started(f.task(0), *f.machine_a, 1.0);
  f.task(1).on_replica_started(2.0);
  checker.on_replica_started(f.task(1), *f.machine_a, 2.0);  // same machine!
  EXPECT_FALSE(checker.ok());
  EXPECT_TRUE(mentions(checker, "hosts two replicas at once")) << checker.report();
}

TEST(InvariantCheckerSelf, BotCompletionWithTasksRemainingFires) {
  Fixture f;
  InvariantChecker checker;
  checker.on_bot_submitted(*f.bot, 0.0);
  checker.on_bot_completed(*f.bot, 5.0);  // the task never completed
  EXPECT_FALSE(checker.ok());
  EXPECT_TRUE(mentions(checker, "reported complete while tasks remain")) << checker.report();
}

TEST(InvariantCheckerSelf, StopWithoutStartFires) {
  Fixture f;
  InvariantChecker checker;
  checker.on_replica_stopped(f.task(), *f.machine_a, ReplicaStopKind::kCancelled, 1.0);
  EXPECT_FALSE(checker.ok());
  EXPECT_TRUE(mentions(checker, "more stops than starts")) << checker.report();
}

TEST(InvariantCheckerSelf, ReplicaCountMismatchFires) {
  Fixture f;
  InvariantChecker checker;
  // Observer event without the matching TaskState transition: the shadow
  // count (1) disagrees with the task's own running_replicas() (0).
  checker.on_replica_started(f.task(), *f.machine_a, 1.0);
  EXPECT_FALSE(checker.ok());
  EXPECT_TRUE(mentions(checker, "replica count mismatch")) << checker.report();
}

TEST(InvariantCheckerSelf, UnsanctionedCheckpointRegressionFires) {
  Fixture f;
  InvariantChecker checker;
  f.task().on_replica_started(1.0);
  checker.on_replica_started(f.task(), *f.machine_a, 1.0);
  f.task().commit_checkpoint(50.0);
  checker.on_checkpoint_saved(f.task(), *f.machine_a, 50.0, 10.0);
  // The committed value regresses without an on_checkpoint_lost event.
  f.task().invalidate_checkpoint();
  f.task().commit_checkpoint(20.0);
  checker.on_checkpoint_saved(f.task(), *f.machine_a, 20.0, 20.0);
  EXPECT_FALSE(checker.ok());
  EXPECT_TRUE(mentions(checker, "committed checkpoint regressed")) << checker.report();
}

TEST(InvariantCheckerSelf, SanctionedLossResetsTheRegressionBaseline) {
  Fixture f;
  InvariantChecker checker;
  f.task().on_replica_started(1.0);
  checker.on_replica_started(f.task(), *f.machine_a, 1.0);
  f.task().commit_checkpoint(50.0);
  checker.on_checkpoint_saved(f.task(), *f.machine_a, 50.0, 10.0);
  // A server crash wipes the store: the regression is sanctioned.
  checker.on_server_down(15.0);
  f.task().invalidate_checkpoint();
  checker.on_checkpoint_lost(f.task(), 15.0);
  checker.on_server_up(16.0);
  f.task().commit_checkpoint(20.0);
  checker.on_checkpoint_saved(f.task(), *f.machine_a, 20.0, 20.0);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(InvariantCheckerSelf, CheckpointLossWhileServerUpFires) {
  Fixture f;
  InvariantChecker checker;
  f.task().commit_checkpoint(50.0);
  f.task().invalidate_checkpoint();
  checker.on_checkpoint_lost(f.task(), 5.0);  // no preceding on_server_down
  EXPECT_FALSE(checker.ok());
  EXPECT_TRUE(mentions(checker, "lost while the server is UP")) << checker.report();
}

TEST(InvariantCheckerSelf, TransferCompletionDuringOutageFires) {
  Fixture f;
  InvariantChecker checker;
  f.task().on_replica_started(1.0);
  checker.on_replica_started(f.task(), *f.machine_a, 1.0);
  checker.on_server_down(2.0);
  checker.on_checkpoint_retrieved(f.task(), *f.machine_a, 3.0);
  EXPECT_FALSE(checker.ok());
  EXPECT_TRUE(mentions(checker, "retrieve completed while the server is DOWN"))
      << checker.report();
}

TEST(InvariantCheckerSelf, TransferCompletionDuringOutageAllowedWithoutAborts) {
  Fixture f;
  InvariantChecker checker;
  checker.set_expect_transfer_aborts(false);  // resumable-transfer fault model
  f.task().on_replica_started(1.0);
  checker.on_replica_started(f.task(), *f.machine_a, 1.0);
  checker.on_server_down(2.0);
  checker.on_checkpoint_retrieved(f.task(), *f.machine_a, 3.0);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(InvariantCheckerSelf, DoubleServerDownFires) {
  InvariantChecker checker;
  checker.on_server_down(1.0);
  checker.on_server_down(2.0);
  EXPECT_FALSE(checker.ok());
  EXPECT_TRUE(mentions(checker, "failed while already down")) << checker.report();
}

TEST(InvariantCheckerSelf, ServerUpWithoutDownFires) {
  InvariantChecker checker;
  checker.on_server_up(1.0);
  EXPECT_FALSE(checker.ok());
  EXPECT_TRUE(mentions(checker, "repaired while up")) << checker.report();
}

TEST(InvariantCheckerSelf, DegradationWithoutFailedAttemptFires) {
  Fixture f;
  InvariantChecker checker;
  f.task().on_replica_started(1.0);
  checker.on_replica_started(f.task(), *f.machine_a, 1.0);
  checker.on_replica_degraded(f.task(), *f.machine_a, 0.0, 5.0);
  EXPECT_FALSE(checker.ok());
  EXPECT_TRUE(mentions(checker, "without a preceding failed attempt")) << checker.report();
}

TEST(InvariantCheckerSelf, DegradationAtNonzeroProgressFires) {
  Fixture f;
  InvariantChecker checker;
  f.task().on_replica_started(1.0);
  checker.on_replica_started(f.task(), *f.machine_a, 1.0);
  checker.on_checkpoint_failed(f.task(), *f.machine_a, /*is_save=*/false, 4.0);
  checker.on_replica_degraded(f.task(), *f.machine_a, 30.0, 5.0);
  EXPECT_FALSE(checker.ok());
  EXPECT_TRUE(mentions(checker, "must be 0")) << checker.report();
}

TEST(InvariantCheckerSelf, ProperDegradationSequencePasses) {
  Fixture f;
  InvariantChecker checker;
  f.task().on_replica_started(1.0);
  checker.on_replica_started(f.task(), *f.machine_a, 1.0);
  checker.on_server_down(2.0);
  checker.on_checkpoint_failed(f.task(), *f.machine_a, /*is_save=*/false, 2.0);
  checker.on_checkpoint_failed(f.task(), *f.machine_a, /*is_save=*/false, 12.0);
  checker.on_replica_degraded(f.task(), *f.machine_a, 0.0, 12.0);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

}  // namespace
}  // namespace dg::sim
