// SimulationResult exporters.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/result_io.hpp"
#include "sim/simulation.hpp"

namespace dg::sim {
namespace {

SimulationResult small_result() {
  SimulationConfig config;
  config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHom,
                                         grid::AvailabilityLevel::kAlways);
  config.workload = make_paper_workload(config.grid, 25000.0, workload::Intensity::kLow, 6);
  config.policy = sched::PolicyKind::kFcfsShare;
  config.seed = 3;
  return Simulation(config).run();
}

TEST(ResultIo, BotRecordsCsvHasOneRowPerBag) {
  const SimulationResult result = small_result();
  std::ostringstream csv;
  write_bot_records_csv(csv, result);
  const std::string text = csv.str();
  EXPECT_EQ(text.rfind("bot,arrival,", 0), 0u);
  std::size_t rows = 0;
  for (char c : text) rows += c == '\n' ? 1 : 0;
  EXPECT_EQ(rows, result.bots.size() + 1);  // header + bags
}

TEST(ResultIo, BotRecordsRoundTripNumerically) {
  const SimulationResult result = small_result();
  std::ostringstream csv;
  write_bot_records_csv(csv, result);
  // Spot-check the first data row parses back to the first record.
  std::istringstream in(csv.str());
  std::string line;
  std::getline(in, line);  // header
  std::getline(in, line);
  std::istringstream row(line);
  std::string field;
  std::getline(row, field, ',');
  EXPECT_EQ(std::stoul(field), result.bots[0].id);
  std::getline(row, field, ',');
  EXPECT_DOUBLE_EQ(std::stod(field), result.bots[0].arrival_time);
}

TEST(ResultIo, MonitorCsvMatchesSamples) {
  const SimulationResult result = small_result();
  std::ostringstream csv;
  write_monitor_csv(csv, result);
  std::size_t rows = 0;
  for (char c : csv.str()) rows += c == '\n' ? 1 : 0;
  EXPECT_EQ(rows, result.monitor.size() + 1);
}

TEST(ResultIo, SummaryMentionsKeyMetrics) {
  const SimulationResult result = small_result();
  std::ostringstream os;
  write_summary(os, result);
  const std::string text = os.str();
  EXPECT_NE(text.find("turnaround:"), std::string::npos);
  EXPECT_NE(text.find("utilization:"), std::string::npos);
  EXPECT_NE(text.find("queue growth:"), std::string::npos);
  EXPECT_EQ(text.find("SATURATED"), std::string::npos);  // this run completed
}

}  // namespace
}  // namespace dg::sim
