// Bag-selection policies: unit tests against hand-built scheduler state.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <vector>

#include "sched/individual.hpp"
#include "sched/policies.hpp"
#include "sched/policy.hpp"

namespace dg::sched {
namespace {

// Drives policies without the engine: owns bags, applies the same state
// transitions (and policy hooks) the scheduler would.
class PolicyHarness {
 public:
  explicit PolicyHarness(std::unique_ptr<BagSelectionPolicy> policy,
                         IndividualSchedulerKind kind = IndividualSchedulerKind::kWqrFt)
      : policy_(std::move(policy)), individual_(IndividualScheduler::make(kind)) {}

  BotState& add_bot(std::vector<double> works, double arrival, workload::BotId id) {
    workload::BotSpec spec;
    spec.id = id;
    spec.arrival_time = arrival;
    for (double w : works) spec.tasks.push_back(workload::TaskSpec{w});
    bots_.push_back(std::make_unique<BotState>(spec, individual_->task_order()));
    BotState& bot = *bots_.back();
    active_.push_back(bot);
    bot.set_dispatch_index(&index_);
    index_.register_bot(bot);
    policy_->on_bot_arrival(bot, arrival);
    return bot;
  }

  void start_replica(TaskState& task, double now) {
    task.on_replica_started(now);
    task.bot().after_replica_started(task);
    policy_->on_task_transition(task, now);
  }

  void fail_replica(TaskState& task, double now, bool priority_resubmit = true) {
    task.on_replica_stopped(now);
    task.bot().after_replica_stopped(task);
    if (task.running_replicas() == 0) {
      if (priority_resubmit) {
        task.bot().push_resubmission(task);
      } else {
        task.bot().push_requeue(task);
      }
    }
    policy_->on_task_transition(task, now);
  }

  void complete_task(TaskState& task, double now) {
    task.mark_completed(now);
    BotState& bot = task.bot();
    bot.on_task_completed(task);
    policy_->on_task_transition(task, now);
    while (task.running_replicas() > 0) {
      task.on_replica_stopped(now);
      bot.after_replica_stopped(task);
    }
    if (bot.completed()) {
      policy_->on_bot_completion(bot, now);
      index_.unregister_bot(bot);
      bot.set_dispatch_index(nullptr);
      active_.erase(bot);
    }
  }

  TaskState* select(double now, int threshold = 2) {
    SchedulerContext ctx;
    ctx.now = now;
    ctx.bots = &active_;
    ctx.index = &index_;
    ctx.individual = individual_.get();
    ctx.threshold =
        policy_->unlimited_replication() ? std::numeric_limits<int>::max() / 2 : threshold;
    index_.set_threshold(ctx.threshold);
    return policy_->select(ctx);
  }

  BagSelectionPolicy& policy() { return *policy_; }

 private:
  std::unique_ptr<BagSelectionPolicy> policy_;
  std::unique_ptr<IndividualScheduler> individual_;
  std::vector<std::unique_ptr<BotState>> bots_;
  ActiveBotList active_;
  DispatchIndex index_;
};

// --- IndividualScheduler pick order ---

TEST(IndividualScheduler, WqrFtPickOrder) {
  auto wqrft = IndividualScheduler::make(IndividualSchedulerKind::kWqrFt);
  workload::BotSpec spec;
  spec.tasks = {workload::TaskSpec{10}, workload::TaskSpec{10}, workload::TaskSpec{10}};
  BotState bot(spec);
  // Unstarted first.
  EXPECT_EQ(wqrft->pick(bot, 2)->index(), 0u);
  for (std::size_t i = 0; i < 3; ++i) {
    bot.task(i).on_replica_started(1.0);
    bot.after_replica_started(bot.task(i));
  }
  // All running: replication.
  EXPECT_EQ(wqrft->pick(bot, 2)->index(), 0u);
  // A failed task beats replication.
  bot.task(2).on_replica_stopped(2.0);
  bot.after_replica_stopped(bot.task(2));
  bot.push_resubmission(bot.task(2));
  EXPECT_EQ(wqrft->pick(bot, 2)->index(), 2u);
}

TEST(IndividualScheduler, WorkQueueNeverReplicates) {
  auto wq = IndividualScheduler::make(IndividualSchedulerKind::kWorkQueue);
  EXPECT_EQ(wq->default_threshold(), 1);
  EXPECT_FALSE(wq->checkpointing());
  workload::BotSpec spec;
  spec.tasks = {workload::TaskSpec{10}};
  BotState bot(spec);
  bot.task(0).on_replica_started(1.0);
  bot.after_replica_started(bot.task(0));
  EXPECT_EQ(wq->pick(bot, 1), nullptr);
}

TEST(IndividualScheduler, WqrUsesRequeueWithoutPriority) {
  auto wqr = IndividualScheduler::make(IndividualSchedulerKind::kWqr);
  EXPECT_FALSE(wqr->resubmission_priority());
  EXPECT_FALSE(wqr->checkpointing());
  workload::BotSpec spec;
  spec.tasks = {workload::TaskSpec{10}, workload::TaskSpec{10}};
  BotState bot(spec);
  // Task 0 failed and was re-queued; task 1 is unstarted: unstarted wins.
  bot.task(0).on_replica_started(1.0);
  bot.after_replica_started(bot.task(0));
  bot.task(0).on_replica_stopped(2.0);
  bot.after_replica_stopped(bot.task(0));
  bot.push_requeue(bot.task(0));
  EXPECT_EQ(wqr->pick(bot, 2)->index(), 1u);
}

TEST(IndividualScheduler, KnowledgeBasedPicksLongestTask) {
  auto kb = IndividualScheduler::make(IndividualSchedulerKind::kKnowledgeBased);
  EXPECT_EQ(kb->task_order(), TaskOrder::kDescendingWork);
  workload::BotSpec spec;
  spec.tasks = {workload::TaskSpec{10}, workload::TaskSpec{500}, workload::TaskSpec{100}};
  BotState bot(spec, kb->task_order());
  EXPECT_EQ(kb->pick(bot, 2)->index(), 1u);
}

TEST(IndividualScheduler, FactoryNames) {
  EXPECT_EQ(IndividualScheduler::make(IndividualSchedulerKind::kWqrFt)->name(), "WQR-FT");
  EXPECT_EQ(IndividualScheduler::make(IndividualSchedulerKind::kWqr)->name(), "WQR");
  EXPECT_EQ(IndividualScheduler::make(IndividualSchedulerKind::kWorkQueue)->name(), "WorkQueue");
  EXPECT_EQ(IndividualScheduler::make(IndividualSchedulerKind::kKnowledgeBased)->name(),
            "KB-LTF");
}

// --- FCFS-Excl ---

TEST(FcfsExcl, OnlyServesOldestBag) {
  PolicyHarness h(make_policy(PolicyKind::kFcfsExcl));
  BotState& first = h.add_bot({10, 10}, 0.0, 0);
  h.add_bot({10, 10}, 1.0, 1);
  for (int i = 0; i < 6; ++i) {
    TaskState* task = h.select(2.0);
    ASSERT_NE(task, nullptr);
    EXPECT_EQ(task->bot().id(), first.id());
    h.start_replica(*task, 2.0);
  }
}

TEST(FcfsExcl, ReplicatesWithoutBound) {
  PolicyHarness h(make_policy(PolicyKind::kFcfsExcl));
  BotState& bot = h.add_bot({10}, 0.0, 0);
  for (int i = 0; i < 50; ++i) {
    TaskState* task = h.select(1.0);
    ASSERT_NE(task, nullptr);
    h.start_replica(*task, 1.0);
  }
  EXPECT_EQ(bot.task(0).running_replicas(), 50);
}

TEST(FcfsExcl, MovesToNextBagAfterCompletion) {
  PolicyHarness h(make_policy(PolicyKind::kFcfsExcl));
  BotState& first = h.add_bot({10}, 0.0, 0);
  BotState& second = h.add_bot({10}, 1.0, 1);
  TaskState* task = h.select(2.0);
  h.start_replica(*task, 2.0);
  h.complete_task(first.task(0), 3.0);
  TaskState* next = h.select(3.0);
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(&next->bot(), &second);
}

TEST(FcfsExcl, EmptySystemSelectsNothing) {
  PolicyHarness h(make_policy(PolicyKind::kFcfsExcl));
  EXPECT_EQ(h.select(0.0), nullptr);
}

// --- FCFS-Share ---

TEST(FcfsShare, ServesFirstBagFullyIncludingReplication) {
  PolicyHarness h(make_policy(PolicyKind::kFcfsShare));
  BotState& first = h.add_bot({10, 10}, 0.0, 0);
  BotState& second = h.add_bot({10, 10}, 1.0, 1);
  // First bag: 2 pending + 2 replication slots (threshold 2) = 4 picks.
  for (int i = 0; i < 4; ++i) {
    TaskState* task = h.select(2.0);
    ASSERT_NE(task, nullptr);
    EXPECT_EQ(&task->bot(), &first) << "pick " << i;
    h.start_replica(*task, 2.0);
  }
  // Then overflow to the second bag.
  TaskState* task = h.select(2.0);
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(&task->bot(), &second);
}

TEST(FcfsShare, FailedTaskOfOlderBagBeatsYoungerBag) {
  PolicyHarness h(make_policy(PolicyKind::kFcfsShare));
  BotState& first = h.add_bot({10}, 0.0, 0);
  h.add_bot({10, 10}, 1.0, 1);
  TaskState* task = h.select(2.0);
  h.start_replica(*task, 2.0);          // first bag task running (1 replica)
  TaskState* second_replica = h.select(2.0);
  h.start_replica(*second_replica, 2.0);  // replica #2, first bag at threshold
  h.fail_replica(first.task(0), 3.0);
  h.fail_replica(first.task(0), 3.0);   // both replicas die -> resubmission
  TaskState* next = h.select(3.0);
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(&next->bot(), &first);
  EXPECT_TRUE(next->needs_resubmission());
}

TEST(FcfsShare, NothingDispatchableReturnsNull) {
  PolicyHarness h(make_policy(PolicyKind::kFcfsShare));
  BotState& bot = h.add_bot({10}, 0.0, 0);
  h.start_replica(bot.task(0), 1.0);
  h.start_replica(bot.task(0), 1.0);  // at threshold 2
  EXPECT_EQ(h.select(1.0), nullptr);
}

// --- RR ---

TEST(RoundRobin, CyclesThroughBags) {
  PolicyHarness h(make_policy(PolicyKind::kRoundRobin));
  h.add_bot({10, 10, 10}, 0.0, 0);
  h.add_bot({10, 10, 10}, 1.0, 1);
  h.add_bot({10, 10, 10}, 2.0, 2);
  std::vector<workload::BotId> served;
  for (int i = 0; i < 6; ++i) {
    TaskState* task = h.select(3.0);
    ASSERT_NE(task, nullptr);
    served.push_back(task->bot().id());
    h.start_replica(*task, 3.0);
  }
  EXPECT_EQ(served, (std::vector<workload::BotId>{0, 1, 2, 0, 1, 2}));
}

TEST(RoundRobin, SkipsUndispatchableBags) {
  PolicyHarness h(make_policy(PolicyKind::kRoundRobin));
  BotState& first = h.add_bot({10}, 0.0, 0);
  h.add_bot({10, 10}, 1.0, 1);
  // Saturate bag 0 (threshold 2).
  h.start_replica(first.task(0), 2.0);
  h.start_replica(first.task(0), 2.0);
  // Bag 1 can absorb 2 pending + 2 replication slots.
  for (int i = 0; i < 4; ++i) {
    TaskState* task = h.select(2.0);
    ASSERT_NE(task, nullptr);
    EXPECT_EQ(task->bot().id(), 1u);
    h.start_replica(*task, 2.0);
  }
  EXPECT_EQ(h.select(2.0), nullptr) << "everything at threshold";
}

TEST(RoundRobin, CursorPersistsAcrossArrivals) {
  PolicyHarness h(make_policy(PolicyKind::kRoundRobin));
  h.add_bot({10, 10}, 0.0, 0);
  h.add_bot({10, 10}, 1.0, 1);
  TaskState* a = h.select(2.0);
  EXPECT_EQ(a->bot().id(), 0u);
  h.start_replica(*a, 2.0);
  h.add_bot({10, 10}, 2.0, 2);
  TaskState* b = h.select(2.0);
  EXPECT_EQ(b->bot().id(), 1u);  // continues after bag 0, not restarted
}

// --- RR-NRF ---

TEST(RoundRobinNrf, ServesAllZeroRunningBagsBeforeResumingSweep) {
  PolicyHarness h(make_policy(PolicyKind::kRoundRobinNrf));
  BotState& first = h.add_bot({10, 10}, 0.0, 0);
  BotState& second = h.add_bot({10, 10}, 1.0, 1);
  BotState& third = h.add_bot({10, 10}, 2.0, 2);
  h.start_replica(first.task(0), 3.0);
  // Bags 1 and 2 have no running instance: served in arrival order.
  TaskState* a = h.select(3.0);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(&a->bot(), &second);
  h.start_replica(*a, 3.0);
  TaskState* b = h.select(3.0);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(&b->bot(), &third);
  h.start_replica(*b, 3.0);
  // Everyone running: back to the circular sweep.
  TaskState* c = h.select(3.0);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(&c->bot(), &first);
}

TEST(RoundRobinNrf, ZeroRunningBagServedFirst) {
  PolicyHarness h(make_policy(PolicyKind::kRoundRobinNrf));
  BotState& first = h.add_bot({10, 10}, 0.0, 0);
  BotState& second = h.add_bot({10, 10}, 1.0, 1);
  h.start_replica(first.task(0), 2.0);
  // Bag 1 has zero running tasks: it must be served before bag 0 again.
  TaskState* task = h.select(2.0);
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(&task->bot(), &second);
  h.start_replica(*task, 2.0);
  // All bags now running: normal RR resumes.
  TaskState* next = h.select(2.0);
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(&next->bot(), &first);
}

TEST(RoundRobinNrf, NewArrivalJumpsTheCircularOrder) {
  PolicyHarness h(make_policy(PolicyKind::kRoundRobinNrf));
  BotState& first = h.add_bot({10, 10, 10}, 0.0, 0);
  h.start_replica(first.task(0), 1.0);
  BotState& late = h.add_bot({10, 10}, 5.0, 1);
  TaskState* task = h.select(5.0);
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(&task->bot(), &late);
}

// --- LongIdle ---

TEST(LongIdle, PicksOldestBagWhilePendingExists) {
  PolicyHarness h(make_policy(PolicyKind::kLongIdle));
  BotState& first = h.add_bot({10, 10}, 0.0, 0);
  h.add_bot({10, 10}, 100.0, 1);
  // First bag's unstarted tasks have waited since t=0, second since t=100.
  TaskState* task = h.select(200.0);
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(&task->bot(), &first);
}

TEST(LongIdle, SwitchesToYoungerBagOnceOlderFullyRunning) {
  PolicyHarness h(make_policy(PolicyKind::kLongIdle));
  BotState& first = h.add_bot({10, 10}, 0.0, 0);
  BotState& second = h.add_bot({10, 10}, 100.0, 1);
  h.start_replica(first.task(0), 200.0);
  h.start_replica(first.task(1), 200.0);
  // First bag: all tasks running, frozen waiting = 200 each. Second bag's
  // unstarted tasks have waited 100 < 200... so first is still preferred,
  // but it must deliver a *replication* pick.
  TaskState* task = h.select(300.0);
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(&task->bot(), &first);
  EXPECT_GE(task->running_replicas(), 1);
  h.start_replica(*task, 300.0);
  h.start_replica(first.task(1), 300.0);  // first bag now at threshold 2
  // First bag undispatchable: overflow to second.
  TaskState* overflow = h.select(300.0);
  ASSERT_NE(overflow, nullptr);
  EXPECT_EQ(&overflow->bot(), &second);
}

TEST(LongIdle, YoungerBagWinsWhenItsWaitExceedsFrozenWait) {
  PolicyHarness h(make_policy(PolicyKind::kLongIdle));
  BotState& first = h.add_bot({10, 10}, 0.0, 0);
  BotState& second = h.add_bot({10, 10}, 10.0, 1);
  // First bag fully dispatched immediately: frozen waiting ~0.
  h.start_replica(first.task(0), 0.0);
  h.start_replica(first.task(1), 0.0);
  // At t=500 the second bag's unstarted tasks have waited 490 > 0.
  TaskState* task = h.select(500.0);
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(&task->bot(), &second);
}

TEST(LongIdle, FailedTaskWaitAccumulatesAcrossPeriods) {
  PolicyHarness h(make_policy(PolicyKind::kLongIdle));
  BotState& first = h.add_bot({10}, 0.0, 0);
  BotState& second = h.add_bot({10}, 50.0, 1);
  // First bag task: idle [0,100), runs [100,200), fails, idle from 200.
  h.start_replica(first.task(0), 100.0);
  h.fail_replica(first.task(0), 200.0);
  // Second bag task: idle since 50 continuously.
  // At t=260: first waited 100 + 60 = 160; second waited 210. Second wins.
  TaskState* task = h.select(260.0);
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(&task->bot(), &second);
  // At t=400: first 100+200=300; second... started at 260.
  h.start_replica(*task, 260.0);
  TaskState* next = h.select(400.0);
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(&next->bot(), &first);
}

// --- Random ---

TEST(Random, OnlySelectsDispatchableBags) {
  PolicyHarness h(make_policy(PolicyKind::kRandom, 123));
  BotState& first = h.add_bot({10}, 0.0, 0);
  h.add_bot({10, 10}, 1.0, 1);
  h.start_replica(first.task(0), 2.0);
  h.start_replica(first.task(0), 2.0);  // bag 0 saturated
  for (int i = 0; i < 20; ++i) {
    TaskState* task = h.select(2.0);
    ASSERT_NE(task, nullptr);
    EXPECT_EQ(task->bot().id(), 1u);
  }
}

TEST(Random, EventuallyServesAllBags) {
  PolicyHarness h(make_policy(PolicyKind::kRandom, 321));
  h.add_bot({10, 10, 10, 10}, 0.0, 0);
  h.add_bot({10, 10, 10, 10}, 1.0, 1);
  bool saw0 = false, saw1 = false;
  for (int i = 0; i < 8; ++i) {
    TaskState* task = h.select(2.0);
    ASSERT_NE(task, nullptr);
    saw0 |= task->bot().id() == 0;
    saw1 |= task->bot().id() == 1;
    h.start_replica(*task, 2.0);
  }
  EXPECT_TRUE(saw0);
  EXPECT_TRUE(saw1);
}

// --- PF-RR (hybrid extension) ---

TEST(PendingFirst, PendingServedInArrivalOrder) {
  PolicyHarness h(make_policy(PolicyKind::kPendingFirst));
  BotState& first = h.add_bot({10, 10}, 0.0, 0);
  BotState& second = h.add_bot({10, 10}, 1.0, 1);
  // All four picks are pending tasks, old bag first.
  for (int i = 0; i < 2; ++i) {
    TaskState* task = h.select(2.0);
    ASSERT_NE(task, nullptr);
    EXPECT_EQ(&task->bot(), &first);
    h.start_replica(*task, 2.0);
  }
  for (int i = 0; i < 2; ++i) {
    TaskState* task = h.select(2.0);
    ASSERT_NE(task, nullptr);
    EXPECT_EQ(&task->bot(), &second);
    h.start_replica(*task, 2.0);
  }
}

TEST(PendingFirst, YoungerPendingBeatsOlderReplication) {
  // The defining difference from FCFS-Share: once bag 0's tasks all run,
  // bag 1's fresh tasks come before bag 0's replicas.
  PolicyHarness h(make_policy(PolicyKind::kPendingFirst));
  BotState& first = h.add_bot({10}, 0.0, 0);
  BotState& second = h.add_bot({10}, 1.0, 1);
  h.start_replica(first.task(0), 2.0);
  TaskState* task = h.select(2.0);
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(&task->bot(), &second);
}

TEST(PendingFirst, ReplicationSpreadsRoundRobin) {
  PolicyHarness h(make_policy(PolicyKind::kPendingFirst));
  BotState& first = h.add_bot({10, 10}, 0.0, 0);
  BotState& second = h.add_bot({10, 10}, 1.0, 1);
  for (std::size_t t = 0; t < 2; ++t) {
    h.start_replica(first.task(t), 2.0);
    h.start_replica(second.task(t), 2.0);
  }
  // No pending anywhere: replication alternates between the bags.
  std::vector<workload::BotId> served;
  for (int i = 0; i < 4; ++i) {
    TaskState* task = h.select(2.0);
    ASSERT_NE(task, nullptr);
    served.push_back(task->bot().id());
    h.start_replica(*task, 2.0);
  }
  EXPECT_EQ(served, (std::vector<workload::BotId>{0, 1, 0, 1}));
  EXPECT_EQ(h.select(2.0), nullptr);  // everyone at threshold 2
}

TEST(PendingFirst, FailedTaskOfOldBagPreemptsEverything) {
  PolicyHarness h(make_policy(PolicyKind::kPendingFirst));
  BotState& first = h.add_bot({10}, 0.0, 0);
  h.add_bot({10, 10}, 1.0, 1);
  h.start_replica(first.task(0), 2.0);
  h.fail_replica(first.task(0), 3.0);
  TaskState* task = h.select(3.0);
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(&task->bot(), &first);
  EXPECT_TRUE(task->needs_resubmission());
}

// --- SJF-Bag (knowledge-based baseline) ---

TEST(ShortestBagFirst, PicksBagWithLeastRemainingWork) {
  PolicyHarness h(make_policy(PolicyKind::kShortestBagFirst));
  h.add_bot({100, 100, 100}, 0.0, 0);   // remaining 300
  BotState& small = h.add_bot({50}, 1.0, 1);  // remaining 50
  TaskState* task = h.select(2.0);
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(&task->bot(), &small);
}

TEST(ShortestBagFirst, RemainingWorkShrinksWithCompletions) {
  PolicyHarness h(make_policy(PolicyKind::kShortestBagFirst));
  BotState& big = h.add_bot({100, 100}, 0.0, 0);     // remaining 200
  BotState& medium = h.add_bot({150}, 1.0, 1);       // remaining 150
  // Complete one task of the big bag: remaining 100 < 150.
  h.start_replica(big.task(0), 2.0);
  h.complete_task(big.task(0), 3.0);
  EXPECT_DOUBLE_EQ(big.remaining_work(), 100.0);
  TaskState* task = h.select(3.0);
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(&task->bot(), &big);
  (void)medium;
}

TEST(ShortestBagFirst, TiesResolveToOlderBag) {
  PolicyHarness h(make_policy(PolicyKind::kShortestBagFirst));
  BotState& first = h.add_bot({100}, 0.0, 0);
  h.add_bot({100}, 1.0, 1);
  TaskState* task = h.select(2.0);
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(&task->bot(), &first);
}

// --- factory / names ---

TEST(PolicyFactory, NamesMatchPaper) {
  EXPECT_EQ(make_policy(PolicyKind::kFcfsExcl)->name(), "FCFS-Excl");
  EXPECT_EQ(make_policy(PolicyKind::kFcfsShare)->name(), "FCFS-Share");
  EXPECT_EQ(make_policy(PolicyKind::kRoundRobin)->name(), "RR");
  EXPECT_EQ(make_policy(PolicyKind::kRoundRobinNrf)->name(), "RR-NRF");
  EXPECT_EQ(make_policy(PolicyKind::kLongIdle)->name(), "LongIdle");
  EXPECT_EQ(make_policy(PolicyKind::kRandom)->name(), "Random");
  EXPECT_EQ(make_policy(PolicyKind::kShortestBagFirst)->name(), "SJF-Bag");
  EXPECT_EQ(make_policy(PolicyKind::kPendingFirst)->name(), "PF-RR");
}

TEST(PolicyFactory, PaperPoliciesAreTheFive) {
  const auto policies = paper_policies();
  ASSERT_EQ(policies.size(), 5u);
  EXPECT_EQ(policies[0], PolicyKind::kFcfsExcl);
  EXPECT_EQ(policies[4], PolicyKind::kLongIdle);
}

TEST(PolicyFactory, OnlyFcfsExclUsesUnlimitedReplication) {
  EXPECT_TRUE(make_policy(PolicyKind::kFcfsExcl)->unlimited_replication());
  for (PolicyKind kind : {PolicyKind::kFcfsShare, PolicyKind::kRoundRobin,
                          PolicyKind::kRoundRobinNrf, PolicyKind::kLongIdle,
                          PolicyKind::kRandom}) {
    EXPECT_FALSE(make_policy(kind)->unlimited_replication());
  }
}

}  // namespace
}  // namespace dg::sched
