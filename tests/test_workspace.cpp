// Workspace reuse: simulator/arena reset semantics and the bit-identity of
// replications run through a (warmed) sim::SimulationWorkspace vs the
// historical fresh-construction path, across the policy/availability stress
// matrix.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "des/simulator.hpp"
#include "sim/simulation.hpp"
#include "sim/workspace.hpp"

namespace dg::des {
namespace {

TEST(SimulatorReset, RewindsClockAndRunsIdentically) {
  Simulator sim;
  auto drive = [&sim] {
    std::vector<int> order;
    sim.schedule_at(2.0, [&order] { order.push_back(2); });
    sim.schedule_at(1.0, [&order] { order.push_back(1); });
    sim.schedule_at(1.0, [&order] { order.push_back(3); });  // FIFO within a time
    sim.run();
    return order;
  };
  const std::vector<int> first = drive();
  EXPECT_EQ(sim.now(), 2.0);

  sim.reset();
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_FALSE(sim.stopped());
  EXPECT_EQ(sim.executed_events(), 0u);  // stats rewound with the clock

  const std::vector<int> second = drive();
  EXPECT_EQ(first, second);
}

TEST(SimulatorReset, StaleHandlesFromBeforeResetAreInert) {
  Simulator sim;
  EventHandle pending = sim.schedule_at(5.0, [] { FAIL() << "event survived reset"; });
  sim.reset();
  EXPECT_FALSE(pending.pending());
  EXPECT_FALSE(pending.cancel());  // must not touch the recycled slot

  // The slot is recycled by the next schedule; the stale handle still must
  // not be able to cancel the new occupant.
  bool ran = false;
  sim.schedule_at(1.0, [&ran] { ran = true; });
  EXPECT_FALSE(pending.cancel());
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(SimulatorReset, ArenaKeepsCapacityAndCountsSlabsSinceReset) {
  Simulator sim;
  // Force growth past one slab (1024 slots) so capacity is interesting.
  for (int i = 0; i < 1500; ++i) sim.schedule_at(1.0, [] {});
  sim.run();
  const std::uint64_t grown_capacity = sim.stats().arena_capacity;
  EXPECT_GE(grown_capacity, 1500u);
  EXPECT_GT(sim.stats().arena_slabs, 1u);

  sim.reset();
  // Slots are retained (no free), but the slab counter now reads
  // "allocations since reset" — the steady-state heap-traffic signal.
  EXPECT_EQ(sim.stats().arena_capacity, grown_capacity);
  EXPECT_EQ(sim.stats().arena_slabs, 0u);

  // A same-sized burst after reset needs no new slabs.
  for (int i = 0; i < 1500; ++i) sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_EQ(sim.stats().arena_slabs, 0u);
  EXPECT_EQ(sim.stats().arena_capacity, grown_capacity);
}

}  // namespace
}  // namespace dg::des

namespace dg::sim {
namespace {

SimulationConfig matrix_config(sched::PolicyKind policy, grid::AvailabilityLevel level,
                               double granularity) {
  SimulationConfig config;
  config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHet, level);
  config.workload =
      make_paper_workload(config.grid, granularity, workload::Intensity::kLow, 10);
  config.policy = policy;
  config.warmup_bots = 2;
  config.seed = 4242;
  return config;
}

/// Full semantic equality of two results. The only fields deliberately
/// excluded are KernelStats::arena_slabs / arena_capacity: a warmed arena
/// reports slabs-since-reset / slots-retained, which legitimately differ
/// from a fresh arena's grow-from-zero counts (see sim/workspace.hpp).
void expect_identical(const SimulationResult& a, const SimulationResult& b) {
  ASSERT_EQ(a.bots.size(), b.bots.size());
  for (std::size_t i = 0; i < a.bots.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a.bots[i].id, b.bots[i].id);
    EXPECT_EQ(a.bots[i].arrival_time, b.bots[i].arrival_time);
    EXPECT_EQ(a.bots[i].first_dispatch_time, b.bots[i].first_dispatch_time);
    EXPECT_EQ(a.bots[i].completion_time, b.bots[i].completion_time);
    EXPECT_EQ(a.bots[i].turnaround, b.bots[i].turnaround);
    EXPECT_EQ(a.bots[i].waiting_time, b.bots[i].waiting_time);
    EXPECT_EQ(a.bots[i].makespan, b.bots[i].makespan);
    EXPECT_EQ(a.bots[i].slowdown, b.bots[i].slowdown);
    EXPECT_EQ(a.bots[i].completed, b.bots[i].completed);
  }
  EXPECT_EQ(a.turnaround.mean(), b.turnaround.mean());
  EXPECT_EQ(a.turnaround.count(), b.turnaround.count());
  EXPECT_EQ(a.waiting.mean(), b.waiting.mean());
  EXPECT_EQ(a.makespan.mean(), b.makespan.mean());
  EXPECT_EQ(a.slowdown.mean(), b.slowdown.mean());
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.queue_growth_ratio, b.queue_growth_ratio);
  ASSERT_EQ(a.monitor.size(), b.monitor.size());
  for (std::size_t i = 0; i < a.monitor.size(); ++i) {
    EXPECT_EQ(a.monitor[i].time, b.monitor[i].time);
    EXPECT_EQ(a.monitor[i].active_bots, b.monitor[i].active_bots);
    EXPECT_EQ(a.monitor[i].busy_machines, b.monitor[i].busy_machines);
    EXPECT_EQ(a.monitor[i].up_machines, b.monitor[i].up_machines);
  }
  EXPECT_EQ(a.bots_completed, b.bots_completed);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.measured_availability, b.measured_availability);
  EXPECT_EQ(a.num_machines, b.num_machines);
  EXPECT_EQ(a.machine_failures, b.machine_failures);
  EXPECT_EQ(a.replica_failures, b.replica_failures);
  EXPECT_EQ(a.replicas_started, b.replicas_started);
  EXPECT_EQ(a.tasks_completed, b.tasks_completed);
  EXPECT_EQ(a.checkpoints_saved, b.checkpoints_saved);
  EXPECT_EQ(a.checkpoint_retrievals, b.checkpoint_retrievals);
  EXPECT_EQ(a.wasted_compute_time, b.wasted_compute_time);
  EXPECT_EQ(a.useful_compute_time, b.useful_compute_time);
  EXPECT_EQ(a.lost_work, b.lost_work);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.kernel.events_scheduled, b.kernel.events_scheduled);
  EXPECT_EQ(a.kernel.events_fired, b.kernel.events_fired);
  EXPECT_EQ(a.kernel.events_cancelled, b.kernel.events_cancelled);
  EXPECT_EQ(a.kernel.heap_peak, b.kernel.heap_peak);
  EXPECT_EQ(a.sched.triggers, b.sched.triggers);
  EXPECT_EQ(a.sched.machines_examined, b.sched.machines_examined);
  EXPECT_EQ(a.sched.selects, b.sched.selects);
  EXPECT_EQ(a.sched.index_updates, b.sched.index_updates);
  EXPECT_EQ(a.sched.index_rebuilds, b.sched.index_rebuilds);
  EXPECT_EQ(a.faults.server_outages, b.faults.server_outages);
  EXPECT_EQ(a.faults.server_downtime, b.faults.server_downtime);
  EXPECT_EQ(a.faults.transfer_retries, b.faults.transfer_retries);
  EXPECT_EQ(a.faults.replicas_degraded, b.faults.replicas_degraded);
}

struct MatrixParam {
  sched::PolicyKind policy;
  grid::AvailabilityLevel availability;
  double granularity;
};

class WorkspaceReuseTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(WorkspaceReuseTest, WarmedWorkspaceIsBitIdenticalToFreshConstruction) {
  const MatrixParam& param = GetParam();
  SimulationConfig config =
      matrix_config(param.policy, param.availability, param.granularity);

  const SimulationResult fresh = Simulation(config).run();

  SimulationWorkspace workspace;
  // Warm the workspace on a DIFFERENT configuration first so the test also
  // proves no state leaks between unrelated runs through the same workspace.
  SimulationConfig warmer =
      matrix_config(sched::PolicyKind::kRoundRobin,
                    param.availability == grid::AvailabilityLevel::kAlways
                        ? grid::AvailabilityLevel::kLow
                        : grid::AvailabilityLevel::kAlways,
                    25000.0);
  warmer.seed = 99;
  (void)Simulation(warmer).run(workspace);

  const SimulationResult& reused = Simulation(config).run(workspace);
  expect_identical(fresh, reused);

  // And again: the second warm replication of the same config must match too.
  const SimulationResult& reused_again = Simulation(config).run(workspace);
  expect_identical(fresh, reused_again);
}

INSTANTIATE_TEST_SUITE_P(
    StressMatrix, WorkspaceReuseTest,
    ::testing::Values(
        MatrixParam{sched::PolicyKind::kFcfsExcl, grid::AvailabilityLevel::kAlways, 25000.0},
        MatrixParam{sched::PolicyKind::kFcfsShare, grid::AvailabilityLevel::kHigh, 5000.0},
        MatrixParam{sched::PolicyKind::kRoundRobin, grid::AvailabilityLevel::kLow, 25000.0},
        MatrixParam{sched::PolicyKind::kRoundRobinNrf, grid::AvailabilityLevel::kHigh, 125000.0},
        MatrixParam{sched::PolicyKind::kLongIdle, grid::AvailabilityLevel::kLow, 5000.0},
        MatrixParam{sched::PolicyKind::kRandom, grid::AvailabilityLevel::kHigh, 25000.0},
        MatrixParam{sched::PolicyKind::kShortestBagFirst, grid::AvailabilityLevel::kLow, 25000.0},
        MatrixParam{sched::PolicyKind::kPendingFirst, grid::AvailabilityLevel::kHigh, 5000.0}),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      std::string name = sched::to_string(info.param.policy) + "_" +
                         grid::to_string(info.param.availability) + "_g" +
                         std::to_string(static_cast<int>(info.param.granularity));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(WorkspaceLifecycle, BeginReplicationCountsAndClears) {
  SimulationWorkspace workspace;
  EXPECT_EQ(workspace.replications(), 0u);
  SimulationConfig config =
      matrix_config(sched::PolicyKind::kFcfsShare, grid::AvailabilityLevel::kAlways, 25000.0);
  const SimulationResult& first = Simulation(config).run(workspace);
  EXPECT_EQ(workspace.replications(), 1u);
  EXPECT_FALSE(first.bots.empty());
  const std::size_t monitor_capacity = workspace.result().monitor.capacity();

  const SimulationResult& second = Simulation(config).run(workspace);
  EXPECT_EQ(workspace.replications(), 2u);
  // Buffers were reused, not reallocated: same capacity serves the rerun.
  EXPECT_EQ(workspace.result().monitor.capacity(), monitor_capacity);
  EXPECT_FALSE(second.bots.empty());
}

}  // namespace
}  // namespace dg::sim
