// Coroutine processes on the DES kernel.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "des/process.hpp"
#include "des/simulator.hpp"

namespace dg::des {
namespace {

TEST(Process, RunsEagerlyUntilFirstAwait) {
  Simulator sim;
  std::vector<double> log;
  auto proc = [](Simulator& s, std::vector<double>& out) -> Process {
    out.push_back(s.now());  // runs before the coroutine call returns
    co_await delay(s, 10.0);
    out.push_back(s.now());
  };
  proc(sim, log);
  EXPECT_EQ(log, (std::vector<double>{0.0}));
  sim.run();
  EXPECT_EQ(log, (std::vector<double>{0.0, 10.0}));
}

TEST(Process, SequentialDelaysAccumulate) {
  Simulator sim;
  std::vector<double> times;
  auto proc = [](Simulator& s, std::vector<double>& out) -> Process {
    for (int i = 0; i < 5; ++i) {
      co_await delay(s, 7.0);
      out.push_back(s.now());
    }
  };
  proc(sim, times);
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{7, 14, 21, 28, 35}));
}

TEST(Process, TwoProcessesInterleaveDeterministically) {
  Simulator sim;
  std::vector<std::string> log;
  auto ticker = [](Simulator& s, std::vector<std::string>& out, std::string name,
                   double period) -> Process {
    for (int i = 0; i < 3; ++i) {
      co_await delay(s, period);
      out.push_back(name + "@" + std::to_string(static_cast<int>(s.now())));
    }
  };
  ticker(sim, log, "a", 10.0);
  ticker(sim, log, "b", 15.0);
  sim.run();
  // At the t=30 tie, b's resume was scheduled first (at t=15, vs a's at
  // t=20), so FIFO tie-breaking runs b before a.
  EXPECT_EQ(log, (std::vector<std::string>{"a@10", "b@15", "a@20", "b@30", "a@30", "b@45"}));
}

TEST(Process, UntilResumesAtAbsoluteTime) {
  Simulator sim;
  double seen = -1.0;
  auto proc = [](Simulator& s, double& out) -> Process {
    co_await until(s, 42.0);
    out = s.now();
  };
  proc(sim, seen);
  sim.run();
  EXPECT_EQ(seen, 42.0);
}

TEST(Process, ZeroDelayGoesThroughTheQueue) {
  Simulator sim;
  std::vector<int> order;
  auto proc = [](Simulator& s, std::vector<int>& out) -> Process {
    co_await delay(s, 0.0);
    out.push_back(2);
  };
  sim.schedule_at(0.0, [&order] { order.push_back(1); });
  proc(sim, order);  // starts now, enqueues its resume AFTER the event above
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Process, ProcessesCanSpawnProcesses) {
  Simulator sim;
  int completed = 0;
  // Declared as a struct to allow recursion through a function object.
  struct Spawner {
    static Process child(Simulator& s, int& done, double dt) {
      co_await delay(s, dt);
      ++done;
    }
    static Process parent(Simulator& s, int& done) {
      for (int i = 1; i <= 3; ++i) child(s, done, i * 5.0);
      co_await delay(s, 100.0);
      ++done;
    }
  };
  Spawner::parent(sim, completed);
  sim.run();
  EXPECT_EQ(completed, 4);
  EXPECT_EQ(sim.now(), 100.0);
}

TEST(Signal, WakesAllWaiters) {
  Simulator sim;
  Signal signal(sim);
  std::vector<double> woke;
  auto waiter = [](Simulator& s, Signal& sig, std::vector<double>& out) -> Process {
    co_await sig;
    out.push_back(s.now());
  };
  waiter(sim, signal, woke);
  waiter(sim, signal, woke);
  EXPECT_EQ(signal.waiting(), 2u);
  sim.schedule_at(25.0, [&signal] { signal.trigger(); });
  sim.run();
  EXPECT_EQ(woke, (std::vector<double>{25.0, 25.0}));
}

TEST(Signal, TriggeredSignalDoesNotBlock) {
  Simulator sim;
  Signal signal(sim);
  signal.trigger();
  bool ran = false;
  auto waiter = [](Signal& sig, bool& out) -> Process {
    co_await sig;  // ready immediately
    out = true;
  };
  waiter(signal, ran);
  EXPECT_TRUE(ran);  // never suspended
}

TEST(Signal, RearmBlocksAgain) {
  Simulator sim;
  Signal signal(sim);
  signal.trigger();
  signal.rearm();
  int wakeups = 0;
  auto waiter = [](Signal& sig, int& out) -> Process {
    co_await sig;
    ++out;
  };
  waiter(signal, wakeups);
  EXPECT_EQ(wakeups, 0);
  signal.trigger();
  sim.run();
  EXPECT_EQ(wakeups, 1);
}

TEST(Process, HundredsOfProcessesScale) {
  Simulator sim;
  int done = 0;
  auto proc = [](Simulator& s, int& out, double dt) -> Process {
    co_await delay(s, dt);
    co_await delay(s, dt);
    ++out;
  };
  for (int i = 1; i <= 500; ++i) proc(sim, done, static_cast<double>(i));
  sim.run();
  EXPECT_EQ(done, 500);
  EXPECT_EQ(sim.executed_events(), 1000u);
}

}  // namespace
}  // namespace dg::des
