// Zero-allocation guarantee of the workspace replication path.
//
// This binary (dgsched_alloc_tests — separate from dgsched_tests because it
// replaces the global allocation operators) meters operator new across the
// event-loop drive of a simulation, via the before/after_run_loop hooks of
// SimulationConfig. A warmed sim::SimulationWorkspace must serve the entire
// run loop from recycled memory: reset arena slots, pooled pmr blocks, and
// retained buffer capacity — zero global heap allocations.
#include <gtest/gtest.h>

#include <cstdint>

#include "sim/simulation.hpp"
#include "sim/workspace.hpp"
#include "util/alloc_interposer.hpp"

DG_DEFINE_ALLOC_INTERPOSER();

namespace dg::sim {
namespace {

SimulationConfig metered_config(grid::AvailabilityLevel level) {
  SimulationConfig config;
  config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHom, level);
  config.workload =
      make_paper_workload(config.grid, 25000.0, workload::Intensity::kLow, 10);
  config.policy = sched::PolicyKind::kFcfsShare;
  config.seed = 31337;
  return config;
}

/// Runs `config` through `workspace` and returns the operator-new calls made
/// inside the run loop (between the before/after hooks — i.e. excluding
/// setup, which constructs the per-replication components, and result
/// assembly).
std::uint64_t run_loop_allocs(const SimulationConfig& base, SimulationWorkspace& workspace) {
  SimulationConfig config = base;
  std::uint64_t before = 0;
  std::uint64_t after = 0;
  config.before_run_loop = [&before] {
    before = util::alloc_count().load(std::memory_order_relaxed);
  };
  config.after_run_loop = [&after] {
    after = util::alloc_count().load(std::memory_order_relaxed);
  };
  const SimulationResult& result = Simulation(config).run(workspace);
  EXPECT_GT(result.events_executed, 0u);  // the loop actually did work
  // The tail-metrics columns must be live while the loop stays zero-alloc:
  // their sketches add into bucket storage retained by the workspace.
  EXPECT_GT(result.turnaround_tail.count(), 0u);
  EXPECT_GT(result.completion_gap_tail.count(), 0u);
  EXPECT_GT(result.decayed_utilization, 0.0);
  return after - before;
}

TEST(AllocationFree, WarmedWorkspaceRunLoopMakesZeroHeapAllocations) {
  const SimulationConfig config = metered_config(grid::AvailabilityLevel::kAlways);
  SimulationWorkspace workspace;
  const std::uint64_t cold = run_loop_allocs(config, workspace);
  // The cold pass may allocate (arena slabs, pool chunks, monitor growth)...
  (void)cold;
  // ...but once warmed, the identical replication must not touch the heap.
  EXPECT_EQ(run_loop_allocs(config, workspace), 0u);
  EXPECT_EQ(run_loop_allocs(config, workspace), 0u);
}

TEST(AllocationFree, WarmedWorkspaceIsAllocationFreeWithFailuresToo) {
  // Failures exercise the checkpoint/retrieve/restart paths; the event
  // lambdas there must stay within std::function's small-buffer size and
  // every container within the warmed pool.
  const SimulationConfig config = metered_config(grid::AvailabilityLevel::kHigh);
  SimulationWorkspace workspace;
  (void)run_loop_allocs(config, workspace);  // warm
  EXPECT_EQ(run_loop_allocs(config, workspace), 0u);
}

TEST(AllocationFree, WorldCacheReplayRunLoopIsAllocationFreeToo) {
  // The realization replay path: world synthesis and acquisition happen in
  // setup (before the hooks); the cursor driver's replay events must run the
  // loop without heap traffic, like the live processes they replace.
  SimulationConfig config = metered_config(grid::AvailabilityLevel::kHigh);
  config.world_cache = std::make_shared<grid::WorldCache>();
  SimulationWorkspace workspace;
  (void)run_loop_allocs(config, workspace);  // warm workspace + cache
  EXPECT_EQ(run_loop_allocs(config, workspace), 0u);
  EXPECT_EQ(config.world_cache->stats().hits, 1u);
}

TEST(AllocationFree, InterposerActuallyCounts) {
  const std::uint64_t before = util::alloc_count().load(std::memory_order_relaxed);
  volatile int* p = new int(7);
  delete p;
  auto* q = new double[32];
  delete[] q;
  EXPECT_GE(util::alloc_count().load(std::memory_order_relaxed), before + 2);
}

}  // namespace
}  // namespace dg::sim
