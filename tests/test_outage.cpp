// Correlated outages: the OutageProcess and its composition with per-machine
// availability and the execution engine.
#include <gtest/gtest.h>

#include "grid/outage.hpp"
#include "sim/invariant_checker.hpp"
#include "sim/simulation.hpp"

namespace dg {
namespace {

grid::GridConfig outage_grid(double fraction, double mean_interarrival,
                             grid::AvailabilityLevel level = grid::AvailabilityLevel::kAlways) {
  grid::GridConfig config = grid::GridConfig::preset(grid::Heterogeneity::kHom, level);
  config.outages.enabled = true;
  config.outages.fraction = fraction;
  config.outages.mean_interarrival = mean_interarrival;
  config.outages.duration = rng::UniformDist{1000.0, 2000.0};
  return config;
}

TEST(OutageModel, AvailabilityLoss) {
  grid::OutageModel model;
  EXPECT_EQ(model.availability_loss(), 0.0);  // disabled
  model.enabled = true;
  model.fraction = 0.25;
  model.mean_interarrival = 10000.0;
  model.duration = rng::ConstantDist{2000.0};
  EXPECT_NEAR(model.availability_loss(), 0.25 * 2000.0 / 10000.0, 1e-12);
}

TEST(OutageProcess, HitsTheConfiguredFraction) {
  des::Simulator sim;
  grid::DesktopGrid grid(outage_grid(0.3, 20000.0), sim, 1);
  int edges_down = 0, edges_up = 0;
  auto on_down = [&](grid::Machine&) { ++edges_down; };
  auto on_up = [&](grid::Machine&) { ++edges_up; };
  grid.start(grid::TransitionDelegate::bind(on_down), grid::TransitionDelegate::bind(on_up));
  sim.run_until(1e6);  // ~50 outages expected
  const auto& outages = grid.outage_process();
  EXPECT_GT(outages.outages(), 20u);
  // 30 machines of 100 per outage.
  EXPECT_EQ(outages.machines_hit(), outages.outages() * 30u);
  // Overlapping outages may hit a machine that is already down (no edge),
  // so edge counts can fall slightly short of the hit count.
  EXPECT_LE(edges_down, static_cast<int>(outages.machines_hit()));
  EXPECT_GT(edges_down, static_cast<int>(outages.machines_hit() * 9 / 10));
  EXPECT_EQ(edges_up, edges_down);
}

TEST(OutageProcess, DisabledByDefault) {
  des::Simulator sim;
  grid::GridConfig config =
      grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kAlways);
  grid::DesktopGrid grid(config, sim, 2);
  auto on_down = [](grid::Machine&) { FAIL() << "unexpected failure"; };
  grid.start(grid::TransitionDelegate::bind(on_down), nullptr);
  sim.run_until(1e7);
  EXPECT_EQ(grid.outage_process().outages(), 0u);
}

TEST(OutageProcess, MeasuredAvailabilityReflectsOutages) {
  des::Simulator sim;
  // fraction 0.5 every ~10000 s for ~1500 s => loss ~ 7.5%.
  grid::GridConfig config = outage_grid(0.5, 10000.0);
  grid::DesktopGrid grid(config, sim, 3);
  grid.start(nullptr, nullptr);
  sim.run_until(5e6);
  EXPECT_NEAR(grid.measured_availability(sim.now()), 1.0 - config.outages.availability_loss(),
              0.02);
}

TEST(OutageProcess, ComposesWithPerMachineChurn) {
  // Both failure sources active: availability reflects the combined loss and
  // nothing trips the down-cause accounting.
  des::Simulator sim;
  grid::GridConfig config = outage_grid(0.3, 20000.0, grid::AvailabilityLevel::kMed);
  grid::DesktopGrid grid(config, sim, 4);
  grid.start(nullptr, nullptr);
  sim.run_until(3e6);
  const double expected = 0.75 - config.outages.availability_loss();
  EXPECT_NEAR(grid.measured_availability(sim.now()), expected, 0.05);
  EXPECT_GT(grid.total_failures(), grid.outage_process().machines_hit());
}

TEST(OutageSimulation, EndToEndInvariantsHold) {
  sim::SimulationConfig config;
  config.grid = outage_grid(0.4, 30000.0, grid::AvailabilityLevel::kMed);
  config.workload = sim::make_paper_workload(config.grid, 25000.0,
                                             workload::Intensity::kLow, 10);
  config.policy = sched::PolicyKind::kRoundRobin;
  config.seed = 5;
  sim::InvariantChecker checker;
  const sim::SimulationResult result = sim::Simulation(config).run(&checker);
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_EQ(result.bots_completed, result.bots.size());
  EXPECT_GT(result.replica_failures, 0u);
}

TEST(OutageSimulation, CorrelatedFailuresHurtMoreThanIndependentOnes) {
  // Same long-run availability (~92%), delivered either as independent
  // per-machine churn or as correlated quarter-grid outages. Correlated
  // failures kill sibling replicas together, so turnaround suffers more.
  auto run = [](bool correlated) {
    sim::SimulationConfig config;
    if (correlated) {
      config.grid = outage_grid(0.25, 5000.0);  // loss 0.25*1500/5000 = 7.5%
    } else {
      config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHom,
                                             grid::AvailabilityLevel::kHigh);
      config.grid.availability = grid::AvailabilityModel::from_availability(0.925);
    }
    double sum = 0.0;
    for (int s = 0; s < 3; ++s) {
      config.workload = sim::make_paper_workload(config.grid, 25000.0,
                                                 workload::Intensity::kLow, 12);
      config.policy = sched::PolicyKind::kRoundRobin;
      config.seed = 6000 + static_cast<std::uint64_t>(s);
      sum += sim::Simulation(config).run().turnaround.mean();
    }
    return sum / 3.0;
  };
  const double independent = run(false);
  const double correlated = run(true);
  EXPECT_GT(correlated, independent * 0.9);  // at least comparable, usually worse
}

}  // namespace
}  // namespace dg
