// Scheduler runtime state: TaskState accounting and BotState dispatch
// structures (queues, cursors, replica buckets).
#include <gtest/gtest.h>

#include "sched/bot_state.hpp"
#include "sched/task_state.hpp"
#include "workload/bot.hpp"

namespace dg::sched {
namespace {

workload::BotSpec make_spec(std::vector<double> works, double arrival = 0.0,
                            workload::BotId id = 0) {
  workload::BotSpec spec;
  spec.id = id;
  spec.arrival_time = arrival;
  for (double w : works) spec.tasks.push_back(workload::TaskSpec{w});
  return spec;
}

// --- TaskState ---

TEST(TaskState, InitialState) {
  BotState bot(make_spec({100.0}));
  TaskState& task = bot.task(0);
  EXPECT_EQ(task.running_replicas(), 0);
  EXPECT_FALSE(task.ever_started());
  EXPECT_FALSE(task.completed());
  EXPECT_FALSE(task.needs_resubmission());
  EXPECT_EQ(task.checkpointed_work(), 0.0);
  EXPECT_DOUBLE_EQ(task.work(), 100.0);
}

TEST(TaskState, ReplicaCounting) {
  BotState bot(make_spec({100.0}));
  TaskState& task = bot.task(0);
  task.on_replica_started(10.0);
  task.on_replica_started(20.0);
  EXPECT_EQ(task.running_replicas(), 2);
  task.on_replica_stopped(30.0);
  EXPECT_EQ(task.running_replicas(), 1);
  EXPECT_TRUE(task.ever_started());
}

TEST(TaskState, IdleAccumulationAcrossPeriods) {
  BotState bot(make_spec({100.0}, /*arrival=*/5.0));
  TaskState& task = bot.task(0);
  // Idle from arrival (5) to first start (15): 10s.
  EXPECT_DOUBLE_EQ(task.accumulated_idle(15.0), 10.0);
  task.on_replica_started(15.0);
  EXPECT_DOUBLE_EQ(task.accumulated_idle(100.0), 10.0);  // frozen while running
  task.on_replica_stopped(40.0);                          // idle again at 40
  EXPECT_DOUBLE_EQ(task.accumulated_idle(50.0), 10.0 + 10.0);
  task.on_replica_started(60.0);
  EXPECT_DOUBLE_EQ(task.frozen_idle(), 30.0);
}

TEST(TaskState, IdleStopsAtCompletion) {
  BotState bot(make_spec({100.0}));
  TaskState& task = bot.task(0);
  task.on_replica_started(10.0);
  task.mark_completed(50.0);
  task.on_replica_stopped(50.0);
  EXPECT_DOUBLE_EQ(task.accumulated_idle(1000.0), 10.0);
  EXPECT_TRUE(task.completed());
  EXPECT_DOUBLE_EQ(task.completion_time(), 50.0);
}

TEST(TaskState, OverlappingReplicasDoNotDoubleCountIdle) {
  BotState bot(make_spec({100.0}));
  TaskState& task = bot.task(0);
  task.on_replica_started(10.0);
  task.on_replica_started(20.0);
  task.on_replica_stopped(30.0);  // one still running: not idle
  EXPECT_DOUBLE_EQ(task.accumulated_idle(40.0), 10.0);
  task.on_replica_stopped(50.0);  // now idle
  EXPECT_DOUBLE_EQ(task.accumulated_idle(60.0), 20.0);
}

TEST(TaskState, CheckpointMonotone) {
  BotState bot(make_spec({100.0}));
  TaskState& task = bot.task(0);
  task.commit_checkpoint(30.0);
  EXPECT_DOUBLE_EQ(task.checkpointed_work(), 30.0);
  task.commit_checkpoint(20.0);  // regression ignored
  EXPECT_DOUBLE_EQ(task.checkpointed_work(), 30.0);
  task.commit_checkpoint(80.0);
  EXPECT_DOUBLE_EQ(task.checkpointed_work(), 80.0);
}

TEST(TaskState, ResubmissionFlagClearsOnStart) {
  BotState bot(make_spec({100.0}));
  TaskState& task = bot.task(0);
  task.set_needs_resubmission(true);
  EXPECT_TRUE(task.needs_resubmission());
  task.on_replica_started(1.0);
  EXPECT_FALSE(task.needs_resubmission());
}

// --- BotState ---

TEST(BotState, ConstructionCopiesSpec) {
  BotState bot(make_spec({10.0, 20.0, 30.0}, 42.0, 9));
  EXPECT_EQ(bot.id(), 9u);
  EXPECT_DOUBLE_EQ(bot.arrival_time(), 42.0);
  EXPECT_EQ(bot.num_tasks(), 3u);
  EXPECT_DOUBLE_EQ(bot.total_work(), 60.0);
  EXPECT_FALSE(bot.completed());
  EXPECT_EQ(bot.total_running(), 0);
}

TEST(BotState, UnstartedCursorWalksArrivalOrder) {
  BotState bot(make_spec({10.0, 20.0, 30.0}));
  EXPECT_EQ(bot.peek_unstarted()->index(), 0u);
  bot.task(0).on_replica_started(1.0);
  bot.after_replica_started(bot.task(0));
  EXPECT_EQ(bot.peek_unstarted()->index(), 1u);
}

TEST(BotState, DescendingWorkOrderServesLongestFirst) {
  BotState bot(make_spec({10.0, 99.0, 50.0}), TaskOrder::kDescendingWork);
  EXPECT_EQ(bot.peek_unstarted()->index(), 1u);  // work 99
  bot.task(1).on_replica_started(1.0);
  bot.after_replica_started(bot.task(1));
  EXPECT_EQ(bot.peek_unstarted()->index(), 2u);  // work 50
}

TEST(BotState, ResubmissionQueueIsFifoAndValidated) {
  BotState bot(make_spec({10.0, 20.0, 30.0}));
  bot.push_resubmission(bot.task(2));
  bot.push_resubmission(bot.task(1));
  EXPECT_EQ(bot.peek_resubmission()->index(), 2u);
  // Task 2 starts a replica: no longer a resubmission candidate.
  bot.task(2).on_replica_started(1.0);
  bot.after_replica_started(bot.task(2));
  EXPECT_EQ(bot.peek_resubmission()->index(), 1u);
}

TEST(BotState, HasPendingCoversAllPools) {
  BotState bot(make_spec({10.0}));
  EXPECT_TRUE(bot.has_pending());  // unstarted
  bot.task(0).on_replica_started(1.0);
  bot.after_replica_started(bot.task(0));
  EXPECT_FALSE(bot.has_pending());
  bot.task(0).on_replica_stopped(2.0);
  bot.after_replica_stopped(bot.task(0));
  bot.push_resubmission(bot.task(0));
  EXPECT_TRUE(bot.has_pending());
}

TEST(BotState, LeastReplicatedPrefersFewestReplicas) {
  BotState bot(make_spec({10.0, 20.0, 30.0}));
  for (std::size_t i = 0; i < 3; ++i) {
    bot.task(i).on_replica_started(1.0);
    bot.after_replica_started(bot.task(i));
  }
  // Task 1 gets a second replica.
  bot.task(1).on_replica_started(2.0);
  bot.after_replica_started(bot.task(1));
  TaskState* pick = bot.least_replicated_below(3);
  ASSERT_NE(pick, nullptr);
  EXPECT_EQ(pick->index(), 0u);  // fewest replicas, lowest index
}

TEST(BotState, LeastReplicatedHonorsThreshold) {
  BotState bot(make_spec({10.0}));
  bot.task(0).on_replica_started(1.0);
  bot.after_replica_started(bot.task(0));
  EXPECT_EQ(bot.least_replicated_below(1), nullptr);   // at threshold 1
  EXPECT_NE(bot.least_replicated_below(2), nullptr);   // room under 2
  bot.task(0).on_replica_started(2.0);
  bot.after_replica_started(bot.task(0));
  EXPECT_EQ(bot.least_replicated_below(2), nullptr);
}

TEST(BotState, CompletionRemovesFromBucketsBeforeSiblingStops) {
  BotState bot(make_spec({10.0, 20.0}));
  TaskState& task = bot.task(0);
  task.on_replica_started(1.0);
  bot.after_replica_started(task);
  task.on_replica_started(2.0);
  bot.after_replica_started(task);
  // Completion order mirrors the engine: mark, notify bag, then stops.
  task.mark_completed(5.0);
  bot.on_task_completed(task);
  EXPECT_EQ(bot.completed_tasks(), 1u);
  task.on_replica_stopped(5.0);
  bot.after_replica_stopped(task);
  task.on_replica_stopped(5.0);
  bot.after_replica_stopped(task);
  EXPECT_EQ(bot.total_running(), 0);
  EXPECT_EQ(bot.least_replicated_below(10), nullptr);
  EXPECT_FALSE(bot.completed());  // task 1 still open
}

TEST(BotState, CompletedWhenAllTasksDone) {
  BotState bot(make_spec({10.0, 20.0}));
  for (std::size_t i = 0; i < 2; ++i) {
    TaskState& task = bot.task(i);
    task.on_replica_started(1.0);
    bot.after_replica_started(task);
    task.mark_completed(2.0 + static_cast<double>(i));
    bot.on_task_completed(task);
    task.on_replica_stopped(2.0 + static_cast<double>(i));
    bot.after_replica_stopped(task);
  }
  EXPECT_TRUE(bot.completed());
}

TEST(BotState, TurnaroundDecomposition) {
  BotState bot(make_spec({10.0}, /*arrival=*/100.0));
  bot.note_dispatch(150.0);
  bot.note_dispatch(200.0);  // only the first dispatch counts
  bot.note_completion(400.0);
  EXPECT_DOUBLE_EQ(bot.waiting_time(), 50.0);
  EXPECT_DOUBLE_EQ(bot.makespan(), 250.0);
  EXPECT_DOUBLE_EQ(bot.turnaround(), 300.0);
  EXPECT_DOUBLE_EQ(bot.turnaround(), bot.waiting_time() + bot.makespan());
}

TEST(BotState, RequeueServedAfterValidation) {
  BotState bot(make_spec({10.0, 20.0}));
  bot.push_requeue(bot.task(1));
  EXPECT_EQ(bot.peek_requeued()->index(), 1u);
  bot.task(1).on_replica_started(1.0);
  bot.after_replica_started(bot.task(1));
  EXPECT_EQ(bot.peek_requeued(), nullptr);
}

}  // namespace
}  // namespace dg::sched
