// Golden-sequence tests: exact dispatch orders for small hand-checked
// scenarios, captured via the timeline observer. These pin the end-to-end
// semantics (policy order x engine timing) against regressions.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/timeline.hpp"
#include "sim_test_util.hpp"

namespace dg::test {
namespace {

using Dispatch = std::tuple<double, std::int64_t, std::int64_t, std::int64_t>;
// (time, bot, task, machine)

std::vector<Dispatch> dispatches(const sim::TimelineRecorder& timeline) {
  std::vector<Dispatch> result;
  for (const sim::TimelineEvent& event : timeline.events()) {
    if (event.kind == sim::TimelineEventKind::kReplicaStarted) {
      result.emplace_back(event.time, event.bot, event.task, event.machine);
    }
  }
  return result;
}

TEST(Golden, FcfsShareTwoBagsTwoMachines) {
  WorldOptions options;
  options.num_machines = 2;
  options.policy = sched::PolicyKind::kFcfsShare;
  World world(options);
  sim::TimelineRecorder timeline;
  world.engine->add_observer(timeline);

  world.add_bot({100.0, 100.0}, 0.0);  // bag 0: two 10 s tasks
  world.add_bot({100.0}, 1.0);         // bag 1: one 10 s task
  world.sim.run();

  const std::vector<Dispatch> expected = {
      {0.0, 0, 0, 0},   // bag 0 task 0 -> machine 0
      {0.0, 0, 1, 1},   // bag 0 task 1 -> machine 1
      // Machine 0's completion event fires first at t=10; task 1 is still
      // nominally running, so FCFS-Share replicates it onto machine 0 ...
      {10.0, 0, 1, 0},
      // ... then machine 1's completion wins task 1, cancels that replica,
      // and bag 1 takes over both machines.
      {10.0, 1, 0, 0},
      {10.0, 1, 0, 1},
  };
  EXPECT_EQ(dispatches(timeline), expected);
  EXPECT_EQ(world.bots[1]->completion_time(), 20.0);
}

TEST(Golden, RoundRobinInterleavesBags) {
  WorldOptions options;
  options.num_machines = 2;
  options.policy = sched::PolicyKind::kRoundRobin;
  options.threshold = 1;  // keep the trace minimal
  World world(options);
  sim::TimelineRecorder timeline;
  world.engine->add_observer(timeline);

  world.add_bot({100.0, 100.0, 100.0}, 0.0);
  world.add_bot({100.0, 100.0, 100.0}, 1.0);
  world.sim.run();

  const std::vector<Dispatch> expected = {
      {0.0, 0, 0, 0},   // only bag 0 exists yet; both machines serve it
      {0.0, 0, 1, 1},
      {10.0, 1, 0, 0},  // machines free together: RR gives bag 1 ...
      {10.0, 0, 2, 1},  // ... then sweeps back to bag 0
      {20.0, 1, 1, 0},
      {20.0, 1, 2, 1},
  };
  EXPECT_EQ(dispatches(timeline), expected);
}

TEST(Golden, FcfsExclReplicatesBeforeServingSecondBag) {
  WorldOptions options;
  options.num_machines = 3;
  options.policy = sched::PolicyKind::kFcfsExcl;
  World world(options);
  sim::TimelineRecorder timeline;
  world.engine->add_observer(timeline);

  world.add_bot({100.0}, 0.0);
  world.add_bot({100.0}, 1.0);
  world.sim.run();

  const std::vector<Dispatch> expected = {
      {0.0, 0, 0, 0},   // bag 0's only task
      {0.0, 0, 0, 1},   // exclusive: replicas fill the idle machines
      {0.0, 0, 0, 2},
      {10.0, 1, 0, 0},  // bag 0 done; bag 1 gets the grid
      {10.0, 1, 0, 1},
      {10.0, 1, 0, 2},
  };
  EXPECT_EQ(dispatches(timeline), expected);
}

TEST(Golden, FailureResubmissionTimeline) {
  WorldOptions options;
  options.num_machines = 1;
  options.threshold = 1;
  World world(options);
  sim::TimelineRecorder timeline;
  world.engine->add_observer(timeline);

  world.add_bot({100.0}, 0.0);
  world.fail_machine_at(0, 4.0);
  world.repair_machine_at(0, 6.0);
  world.sim.run();

  const std::vector<Dispatch> expected = {
      {0.0, 0, 0, 0},
      {6.0, 0, 0, 0},  // resubmitted from scratch on repair
  };
  EXPECT_EQ(dispatches(timeline), expected);
  EXPECT_EQ(timeline.count(sim::TimelineEventKind::kReplicaFailed), 1u);
  EXPECT_EQ(timeline.count(sim::TimelineEventKind::kMachineFailed), 1u);
  EXPECT_EQ(timeline.count(sim::TimelineEventKind::kMachineRepaired), 1u);
  EXPECT_EQ(world.bots[0]->completion_time(), 16.0);
}

TEST(Golden, LongIdlePrefersStarvedBag) {
  WorldOptions options;
  options.num_machines = 1;
  options.threshold = 1;
  options.policy = sched::PolicyKind::kLongIdle;
  World world(options);
  sim::TimelineRecorder timeline;
  world.engine->add_observer(timeline);

  world.add_bot({100.0, 100.0}, 0.0);  // bag 0 monopolizes the machine first
  world.add_bot({100.0}, 1.0);
  world.sim.run();

  // t=0: bag 0 task 0. t=10: bag 0's unstarted task has waited 10, bag 1's
  // has waited 9 -> bag 0 again. t=20: bag 1 has waited 19 > 0 -> bag 1.
  const std::vector<Dispatch> expected = {
      {0.0, 0, 0, 0},
      {10.0, 0, 1, 0},
      {20.0, 1, 0, 0},
  };
  EXPECT_EQ(dispatches(timeline), expected);
}

// --- fairness metric ---

TEST(Fairness, JainIndexBoundsAndOrdering) {
  auto run = [](sched::PolicyKind policy) {
    sim::SimulationConfig config;
    config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHom,
                                           grid::AvailabilityLevel::kHigh);
    config.workload = sim::make_paper_workload(config.grid, 25000.0,
                                               workload::Intensity::kHigh, 20);
    config.policy = policy;
    config.seed = 31;
    return sim::Simulation(config).run();
  };
  const sim::SimulationResult excl = run(sched::PolicyKind::kFcfsExcl);
  const sim::SimulationResult rr = run(sched::PolicyKind::kRoundRobin);
  for (const auto* result : {&excl, &rr}) {
    EXPECT_GT(result->slowdown_fairness(), 0.0);
    EXPECT_LE(result->slowdown_fairness(), 1.0 + 1e-9);
  }
  // Exclusive FCFS starves late bags at high load; RR shares.
  EXPECT_GT(rr.slowdown_fairness(), excl.slowdown_fairness());
}

}  // namespace
}  // namespace dg::test
