// Kernel golden-equivalence: fixed-seed end-to-end runs must reproduce the
// exact SimulationResult metrics recorded on the pre-slab DES kernel (binary
// heap of shared_ptr records). The event-queue rewrite (4-ary implicit heap +
// slab pool, PR 1) keeps the (time, sequence) execution order contract, so
// every metric — including floating-point accumulations, whose value depends
// on summation order — must stay bit-identical. A mismatch here means the
// kernel changed *semantics*, not just speed.
//
// Values were captured with the pre-change kernel at 17 significant digits
// (lossless double round-trip); EXPECT_EQ on doubles is deliberate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>

#include "sim/simulation.hpp"

namespace dg::test {
namespace {

struct Fingerprint {
  double turnaround_mean;
  double waiting_mean;
  double makespan_mean;
  double slowdown_mean;
  double end_time;
  double utilization;
  std::size_t bots_completed;
  std::uint64_t events_executed;
  std::uint64_t machine_failures;
  std::uint64_t replica_failures;
  std::uint64_t replicas_started;
  std::uint64_t tasks_completed;
  std::uint64_t checkpoints_saved;
  double wasted_compute_time;
  double useful_compute_time;
  double lost_work;
};

sim::SimulationResult run_scenario(sched::PolicyKind policy, grid::Heterogeneity het,
                                   grid::AvailabilityLevel avail, double granularity,
                                   std::size_t bots, std::uint64_t seed) {
  sim::SimulationConfig config;
  config.grid = grid::GridConfig::preset(het, avail);
  config.workload =
      sim::make_paper_workload(config.grid, granularity, workload::Intensity::kLow, bots);
  config.policy = policy;
  config.seed = seed;
  return sim::Simulation(config).run();
}

void expect_matches(const sim::SimulationResult& result, const Fingerprint& expected) {
  EXPECT_EQ(result.turnaround.mean(), expected.turnaround_mean);
  EXPECT_EQ(result.waiting.mean(), expected.waiting_mean);
  EXPECT_EQ(result.makespan.mean(), expected.makespan_mean);
  EXPECT_EQ(result.slowdown.mean(), expected.slowdown_mean);
  EXPECT_EQ(result.end_time, expected.end_time);
  EXPECT_EQ(result.utilization, expected.utilization);
  EXPECT_EQ(result.bots_completed, expected.bots_completed);
  EXPECT_EQ(result.events_executed, expected.events_executed);
  EXPECT_EQ(result.machine_failures, expected.machine_failures);
  EXPECT_EQ(result.replica_failures, expected.replica_failures);
  EXPECT_EQ(result.replicas_started, expected.replicas_started);
  EXPECT_EQ(result.tasks_completed, expected.tasks_completed);
  EXPECT_EQ(result.checkpoints_saved, expected.checkpoints_saved);
  EXPECT_EQ(result.wasted_compute_time, expected.wasted_compute_time);
  EXPECT_EQ(result.useful_compute_time, expected.useful_compute_time);
  EXPECT_EQ(result.lost_work, expected.lost_work);
}

TEST(KernelEquivalence, HomHighFcfsShare) {
  const Fingerprint expected = {
      3536.3397347655923,   // turnaround_mean
      500.7521512896862,    // waiting_mean
      3035.5875834759063,   // makespan_mean
      1.3158657195110721,   // slowdown_mean
      103286.84814380348,   // end_time
      0.30865726864441856,  // utilization
      12,                   // bots_completed
      6345,                 // events_executed
      133,                  // machine_failures
      41,                   // replica_failures
      7019,                 // replicas_started
      6016,                 // tasks_completed
      0,                    // checkpoints_saved
      184627.06975299912,   // wasted_compute_time
      3003396.5737427189,   // useful_compute_time
      107258.81739968593,   // lost_work
  };
  expect_matches(run_scenario(sched::PolicyKind::kFcfsShare, grid::Heterogeneity::kHom,
                              grid::AvailabilityLevel::kHigh, 5000.0, 12, 7),
                 expected);
}

TEST(KernelEquivalence, HetLowRoundRobin) {
  const Fingerprint expected = {
      17634.380843459847,   // turnaround_mean
      0.0,                  // waiting_mean
      17634.380843459847,   // makespan_mean
      2.5676419534340584,   // slowdown_mean
      214145.75004163093,   // end_time
      0.2090647183557223,   // utilization
      8,                    // bots_completed
      17062,                // events_executed
      6264,                 // machine_failures
      2582,                 // replica_failures
      3690,                 // replicas_started
      795,                  // tasks_completed
      1222,                 // checkpoints_saved
      2172310.7998945247,   // wasted_compute_time
      1334456.9443746349,   // useful_compute_time
      10413343.456185333,   // lost_work
  };
  expect_matches(run_scenario(sched::PolicyKind::kRoundRobin, grid::Heterogeneity::kHet,
                              grid::AvailabilityLevel::kLow, 25000.0, 8, 42),
                 expected);
}

TEST(KernelEquivalence, HomMedLongIdle) {
  const Fingerprint expected = {
      7756.1405594645939,   // turnaround_mean
      2221.7734210885915,   // waiting_mean
      5534.3671383760038,   // makespan_mean
      1.9175955860447882,   // slowdown_mean
      91371.174222066053,   // end_time
      0.32965183716539087,  // utilization
      10,                   // bots_completed
      5174,                 // events_executed
      1326,                 // machine_failures
      579,                  // replica_failures
      3632,                 // replicas_started
      2498,                 // tasks_completed
      0,                    // checkpoints_saved
      506444.70194625098,   // wasted_compute_time
      2505622.8426800645,   // useful_compute_time
      2823383.987707431,    // lost_work
  };
  expect_matches(run_scenario(sched::PolicyKind::kLongIdle, grid::Heterogeneity::kHom,
                              grid::AvailabilityLevel::kMed, 10000.0, 10, 1234),
                 expected);
}

// ---------------------------------------------------------------------------
// Queue-backend equivalence matrix (PR 7). Every queue backend must produce
// the same event sequence as the default 4-ary heap — checked here end to end
// on the full policy x availability matrix by comparing complete simulation
// results (every floating-point accumulation is summation-order sensitive, so
// EXPECT_EQ on doubles is again deliberate) and the raw kernel counters.
// heap_peak is the one backend-sensitive counter by definition (physical
// entries pending, identical here because lazy cancellation keeps stale
// entries in both), and it too must match.

using BackendMatrixParam = std::tuple<sched::PolicyKind, grid::AvailabilityLevel>;

class QueueBackendEquivalence : public ::testing::TestWithParam<BackendMatrixParam> {};

sim::SimulationResult run_scenario_on_backend(des::QueueBackend backend, sched::PolicyKind policy,
                                              grid::Heterogeneity het,
                                              grid::AvailabilityLevel avail, double granularity,
                                              std::size_t bots, std::uint64_t seed) {
  sim::SimulationConfig config;
  config.grid = grid::GridConfig::preset(het, avail);
  config.workload =
      sim::make_paper_workload(config.grid, granularity, workload::Intensity::kLow, bots);
  config.policy = policy;
  config.seed = seed;
  config.queue_backend = backend;
  return sim::Simulation(config).run();
}

void expect_same_result(const sim::SimulationResult& got, const sim::SimulationResult& want) {
  EXPECT_EQ(got.turnaround.mean(), want.turnaround.mean());
  EXPECT_EQ(got.waiting.mean(), want.waiting.mean());
  EXPECT_EQ(got.makespan.mean(), want.makespan.mean());
  EXPECT_EQ(got.slowdown.mean(), want.slowdown.mean());
  EXPECT_EQ(got.end_time, want.end_time);
  EXPECT_EQ(got.utilization, want.utilization);
  EXPECT_EQ(got.bots_completed, want.bots_completed);
  EXPECT_EQ(got.events_executed, want.events_executed);
  EXPECT_EQ(got.machine_failures, want.machine_failures);
  EXPECT_EQ(got.replica_failures, want.replica_failures);
  EXPECT_EQ(got.replicas_started, want.replicas_started);
  EXPECT_EQ(got.tasks_completed, want.tasks_completed);
  EXPECT_EQ(got.checkpoints_saved, want.checkpoints_saved);
  EXPECT_EQ(got.wasted_compute_time, want.wasted_compute_time);
  EXPECT_EQ(got.useful_compute_time, want.useful_compute_time);
  EXPECT_EQ(got.lost_work, want.lost_work);
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_EQ(got.turnaround_tail.quantile(q), want.turnaround_tail.quantile(q));
    EXPECT_EQ(got.slowdown_tail.quantile(q), want.slowdown_tail.quantile(q));
    EXPECT_EQ(got.completion_gap_tail.quantile(q), want.completion_gap_tail.quantile(q));
  }
  ASSERT_EQ(got.bots.size(), want.bots.size());
  for (std::size_t i = 0; i < got.bots.size(); ++i) {
    EXPECT_EQ(got.bots[i].turnaround, want.bots[i].turnaround) << "bot " << i;
    EXPECT_EQ(got.bots[i].completion_time, want.bots[i].completion_time) << "bot " << i;
  }
  // Kernel counters: identical event sequences imply identical schedule /
  // fire / cancel counts and the same peak pending-entry population.
  EXPECT_EQ(got.kernel.events_scheduled, want.kernel.events_scheduled);
  EXPECT_EQ(got.kernel.events_fired, want.kernel.events_fired);
  EXPECT_EQ(got.kernel.events_cancelled, want.kernel.events_cancelled);
  EXPECT_EQ(got.kernel.heap_peak, want.kernel.heap_peak);
}

TEST_P(QueueBackendEquivalence, CalendarMatchesHeap4Bitwise) {
  const auto [policy, avail] = GetParam();
  // Heterogeneous grid, mid-size bags, two seeds — enough events (tens of
  // thousands under low availability) to walk the calendar queue through
  // spills, ladder builds, and rebuilds inside a real run.
  for (const std::uint64_t seed : {7ULL, 90210ULL}) {
    const sim::SimulationResult want = run_scenario_on_backend(
        des::QueueBackend::kHeap4, policy, grid::Heterogeneity::kHet, avail, 10000.0, 8, seed);
    const sim::SimulationResult got = run_scenario_on_backend(
        des::QueueBackend::kCalendar, policy, grid::Heterogeneity::kHet, avail, 10000.0, 8, seed);
    expect_same_result(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyAvailabilityMatrix, QueueBackendEquivalence,
    ::testing::Combine(::testing::Values(sched::PolicyKind::kFcfsExcl, sched::PolicyKind::kFcfsShare,
                                         sched::PolicyKind::kRoundRobin,
                                         sched::PolicyKind::kRoundRobinNrf,
                                         sched::PolicyKind::kLongIdle),
                       ::testing::Values(grid::AvailabilityLevel::kHigh,
                                         grid::AvailabilityLevel::kMed,
                                         grid::AvailabilityLevel::kLow)),
    [](const ::testing::TestParamInfo<BackendMatrixParam>& param) {
      std::string name = sched::to_string(std::get<0>(param.param)) + "_" +
                         grid::to_string(std::get<1>(param.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace dg::test
