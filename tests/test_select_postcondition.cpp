// Property test for BagSelectionPolicy::select()'s postcondition, enforced
// on every dispatch of end-to-end runs across the stress matrix: a non-null
// result must be an incomplete task of one of the active bags with fewer
// running replicas than the effective threshold (which is "potentially
// unlimited" for FCFS-Excl — the decorator checks the contract the
// scheduler actually applies, ctx.threshold, in both cases).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <utility>

#include "sched/policy.hpp"
#include "sim/simulation.hpp"

namespace dg::sim {
namespace {

/// Decorator forwarding every call to the wrapped policy and asserting the
/// select() postcondition on each non-null result. Decisions (including the
/// RNG stream of stochastic policies) are untouched.
class CheckedPolicy final : public sched::BagSelectionPolicy {
 public:
  CheckedPolicy(std::unique_ptr<sched::BagSelectionPolicy> inner, long& dispatches)
      : inner_(std::move(inner)), dispatches_(dispatches) {}

  [[nodiscard]] std::string name() const override { return inner_->name(); }
  [[nodiscard]] bool unlimited_replication() const override {
    return inner_->unlimited_replication();
  }
  void on_bot_arrival(sched::BotState& bot, double now) override {
    inner_->on_bot_arrival(bot, now);
  }
  void on_bot_completion(sched::BotState& bot, double now) override {
    inner_->on_bot_completion(bot, now);
  }
  void on_task_transition(sched::TaskState& task, double now) override {
    inner_->on_task_transition(task, now);
  }

  [[nodiscard]] sched::TaskState* select(sched::SchedulerContext& ctx) override {
    sched::TaskState* task = inner_->select(ctx);
    if (task == nullptr) return nullptr;
    ++dispatches_;
    EXPECT_FALSE(task->completed()) << "select() returned a completed task";
    bool owner_active = false;
    for (sched::BotState* bot : *ctx.bots) {
      if (bot == &task->bot()) {
        owner_active = true;
        break;
      }
    }
    EXPECT_TRUE(owner_active) << "select() returned a task of an inactive bag";
    // ctx.threshold is the effective threshold: the controller's value, or
    // "potentially unlimited" under FCFS-Excl. Either way the scheduler
    // relies on the result sitting strictly below it.
    EXPECT_LT(task->running_replicas(), ctx.threshold);
    if (inner_->unlimited_replication()) {
      EXPECT_GT(ctx.threshold, 1000000) << "FCFS-Excl must see an unbounded threshold";
    }
    return task;
  }

 private:
  std::unique_ptr<sched::BagSelectionPolicy> inner_;
  long& dispatches_;
};

using PostconditionParam =
    std::tuple<sched::PolicyKind, grid::AvailabilityLevel, sched::IndividualSchedulerKind>;

std::string param_name(const ::testing::TestParamInfo<PostconditionParam>& info) {
  std::string name = sched::to_string(std::get<0>(info.param)) + "_" +
                     grid::to_string(std::get<1>(info.param)) + "_" +
                     sched::to_string(std::get<2>(info.param));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class SelectPostconditionTest : public ::testing::TestWithParam<PostconditionParam> {};

TEST_P(SelectPostconditionTest, HoldsOnEveryDispatch) {
  const auto [policy, level, individual] = GetParam();
  SimulationConfig config;
  config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHet, level);
  config.workload = make_paper_workload(config.grid, 25000.0, workload::Intensity::kLow, 8);
  config.policy = policy;
  config.individual = individual;
  config.seed = 20260806;

  long dispatches = 0;
  config.wrap_policy = [&dispatches](std::unique_ptr<sched::BagSelectionPolicy> inner) {
    return std::make_unique<CheckedPolicy>(std::move(inner), dispatches);
  };

  const SimulationResult result = Simulation(config).run();
  EXPECT_EQ(static_cast<std::uint64_t>(dispatches), result.replicas_started)
      << "every started replica must have passed through select()";
  EXPECT_GT(dispatches, 0);
}

INSTANTIATE_TEST_SUITE_P(
    StressMatrix, SelectPostconditionTest,
    ::testing::Combine(
        ::testing::Values(sched::PolicyKind::kFcfsExcl, sched::PolicyKind::kFcfsShare,
                          sched::PolicyKind::kRoundRobin, sched::PolicyKind::kRoundRobinNrf,
                          sched::PolicyKind::kLongIdle, sched::PolicyKind::kRandom,
                          sched::PolicyKind::kShortestBagFirst,
                          sched::PolicyKind::kPendingFirst),
        ::testing::Values(grid::AvailabilityLevel::kAlways, grid::AvailabilityLevel::kLow),
        ::testing::Values(sched::IndividualSchedulerKind::kWqrFt,
                          sched::IndividualSchedulerKind::kWorkQueue)),
    param_name);

}  // namespace
}  // namespace dg::sim
