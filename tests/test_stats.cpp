// Statistics substrate: moments, quantiles, confidence intervals, histograms.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "rng/random_stream.hpp"
#include "stats/confidence.hpp"
#include "stats/histogram.hpp"
#include "stats/online_stats.hpp"
#include "stats/quantiles.hpp"

namespace dg::stats {
namespace {

TEST(OnlineStats, EmptyState) {
  OnlineStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownMeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(OnlineStats, StdErrorShrinksWithN) {
  OnlineStats small, large;
  rng::RandomStream stream(1);
  for (int i = 0; i < 10; ++i) small.add(stream.normal(0, 1));
  for (int i = 0; i < 1000; ++i) large.add(stream.normal(0, 1));
  EXPECT_LT(large.std_error(), small.std_error());
}

TEST(OnlineStats, NumericallyStableForLargeOffsets) {
  OnlineStats s;
  // Classic catastrophic-cancellation case for naive sum-of-squares.
  for (double x : {1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0}) s.add(x);
  EXPECT_NEAR(s.variance(), 30.0, 1e-6);
}

class OnlineStatsMergeTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OnlineStatsMergeTest, MergeMatchesSequential) {
  const auto [n1, n2] = GetParam();
  rng::RandomStream stream(42);
  std::vector<double> values;
  for (int i = 0; i < n1 + n2; ++i) values.push_back(stream.uniform(-5.0, 13.0));

  OnlineStats all, a, b;
  for (int i = 0; i < n1; ++i) a.add(values[static_cast<std::size_t>(i)]);
  for (int i = n1; i < n1 + n2; ++i) b.add(values[static_cast<std::size_t>(i)]);
  for (double v : values) all.add(v);

  OnlineStats merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_NEAR(merged.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(merged.variance(), all.variance(), 1e-8);
  EXPECT_EQ(merged.min(), all.min());
  EXPECT_EQ(merged.max(), all.max());
}

INSTANTIATE_TEST_SUITE_P(Sizes, OnlineStatsMergeTest,
                         ::testing::Values(std::make_tuple(0, 5), std::make_tuple(5, 0),
                                           std::make_tuple(1, 1), std::make_tuple(10, 1000),
                                           std::make_tuple(500, 500)));

TEST(TimeWeightedStats, ConstantSignal) {
  TimeWeightedStats s(0.0, 3.0);
  EXPECT_DOUBLE_EQ(s.time_average(10.0), 3.0);
  EXPECT_DOUBLE_EQ(s.integral(10.0), 30.0);
}

TEST(TimeWeightedStats, StepSignal) {
  TimeWeightedStats s(0.0, 0.0);
  s.update(5.0, 2.0);   // 0 for [0,5), 2 afterwards
  s.update(10.0, 4.0);  // 2 for [5,10), 4 afterwards
  EXPECT_DOUBLE_EQ(s.integral(20.0), 0.0 * 5 + 2.0 * 5 + 4.0 * 10);
  EXPECT_DOUBLE_EQ(s.time_average(20.0), 50.0 / 20.0);
}

TEST(TimeWeightedStats, NonZeroStartTime) {
  TimeWeightedStats s(100.0, 1.0);
  s.update(150.0, 0.0);
  EXPECT_DOUBLE_EQ(s.time_average(200.0), 0.5);
}

TEST(TimeWeightedStats, SameTimeUpdateReplacesValue) {
  TimeWeightedStats s(0.0, 1.0);
  s.update(10.0, 2.0);
  s.update(10.0, 5.0);  // no time elapsed at value 2
  EXPECT_DOUBLE_EQ(s.integral(20.0), 1.0 * 10 + 5.0 * 10);
}

// --- quantiles ---

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_quantile(0.025), -1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_quantile(0.95), 1.6448536269514722, 1e-9);
  EXPECT_NEAR(normal_quantile(0.9999), 3.719016485455709, 1e-7);
}

TEST(NormalQuantile, RejectsOutOfRange) {
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(-1.0), std::invalid_argument);
}

struct TQuantileCase {
  double p;
  double df;
  double expected;  // standard t-table values
};

class StudentTQuantileTest : public ::testing::TestWithParam<TQuantileCase> {};

TEST_P(StudentTQuantileTest, MatchesTable) {
  const TQuantileCase& c = GetParam();
  EXPECT_NEAR(student_t_quantile(c.p, c.df), c.expected, 5e-4 * std::abs(c.expected) + 5e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Table, StudentTQuantileTest,
    ::testing::Values(TQuantileCase{0.975, 1, 12.7062}, TQuantileCase{0.975, 2, 4.30265},
                      TQuantileCase{0.975, 4, 2.77645}, TQuantileCase{0.975, 9, 2.26216},
                      TQuantileCase{0.975, 29, 2.04523}, TQuantileCase{0.975, 100, 1.98397},
                      TQuantileCase{0.95, 1, 6.31375}, TQuantileCase{0.95, 5, 2.01505},
                      TQuantileCase{0.95, 30, 1.69726}, TQuantileCase{0.99, 10, 2.76377},
                      TQuantileCase{0.995, 7, 3.49948}, TQuantileCase{0.9, 3, 1.63774}));

TEST(StudentTQuantile, SymmetricAroundZero) {
  for (double df : {1.0, 3.0, 10.0, 50.0}) {
    EXPECT_NEAR(student_t_quantile(0.3, df), -student_t_quantile(0.7, df), 1e-8);
  }
  EXPECT_EQ(student_t_quantile(0.5, 10.0), 0.0);
}

TEST(StudentTQuantile, ApproachesNormalForLargeDf) {
  EXPECT_NEAR(student_t_quantile(0.975, 1e6), normal_quantile(0.975), 1e-4);
}

TEST(StudentTQuantile, RoundTripsThroughCdf) {
  for (double p : {0.01, 0.1, 0.3, 0.7, 0.9, 0.99}) {
    for (double df : {2.0, 5.0, 17.0}) {
      EXPECT_NEAR(student_t_cdf(student_t_quantile(p, df), df), p, 1e-9);
    }
  }
}

TEST(IncompleteBeta, BoundaryValues) {
  EXPECT_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, SymmetryIdentity) {
  // I_x(a,b) = 1 - I_{1-x}(b,a)
  for (double x : {0.1, 0.4, 0.8}) {
    EXPECT_NEAR(incomplete_beta(2.5, 1.5, x), 1.0 - incomplete_beta(1.5, 2.5, 1.0 - x), 1e-12);
  }
}

TEST(IncompleteBeta, UniformSpecialCase) {
  // I_x(1,1) = x.
  for (double x : {0.2, 0.5, 0.9}) EXPECT_NEAR(incomplete_beta(1.0, 1.0, x), x, 1e-12);
}

TEST(StudentTCdf, StandardValues) {
  EXPECT_NEAR(student_t_cdf(0.0, 5.0), 0.5, 1e-12);
  EXPECT_NEAR(student_t_cdf(12.7062, 1.0), 0.975, 1e-5);
  EXPECT_NEAR(student_t_cdf(-2.26216, 9.0), 0.025, 1e-5);
}

// --- confidence intervals ---

TEST(ConfidenceInterval, InfiniteForFewerThanTwoSamples) {
  OnlineStats s;
  s.add(3.0);
  const ConfidenceInterval ci = mean_confidence_interval(s);
  EXPECT_TRUE(std::isinf(ci.half_width));
}

TEST(ConfidenceInterval, KnownSmallSample) {
  OnlineStats s;
  for (double x : {10.0, 12.0, 14.0}) s.add(x);
  const ConfidenceInterval ci = mean_confidence_interval(s, 0.95);
  EXPECT_DOUBLE_EQ(ci.mean, 12.0);
  // hw = t_{0.975,2} * s/sqrt(3) = 4.30265 * 2/sqrt(3)
  EXPECT_NEAR(ci.half_width, 4.30265 * 2.0 / std::sqrt(3.0), 1e-3);
  EXPECT_TRUE(ci.contains(12.0));
  EXPECT_NEAR(ci.relative_error(), ci.half_width / 12.0, 1e-12);
}

TEST(ConfidenceInterval, CoversTrueMeanAtNominalRate) {
  // Property test: ~95% of intervals from normal samples contain mu.
  rng::RandomStream stream(2024);
  int covered = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    OnlineStats s;
    for (int i = 0; i < 10; ++i) s.add(stream.normal(100.0, 15.0));
    if (mean_confidence_interval(s, 0.95).contains(100.0)) ++covered;
  }
  const double rate = static_cast<double>(covered) / trials;
  EXPECT_GT(rate, 0.93);
  EXPECT_LT(rate, 0.97);
}

TEST(ReplicationAnalyzer, StopsWhenPreciseEnough) {
  ReplicationAnalyzer analyzer(0.95, 0.025, 3);
  analyzer.add(1000.0);
  EXPECT_FALSE(analyzer.precise_enough());
  analyzer.add(1000.5);
  EXPECT_FALSE(analyzer.precise_enough());  // below min replications
  analyzer.add(999.5);
  EXPECT_TRUE(analyzer.precise_enough());
}

TEST(ReplicationAnalyzer, KeepsGoingWhenNoisy) {
  ReplicationAnalyzer analyzer(0.95, 0.025, 3);
  analyzer.add(100.0);
  analyzer.add(500.0);
  analyzer.add(900.0);
  EXPECT_FALSE(analyzer.precise_enough());
}

TEST(ReplicationAnalyzer, RetainsSamples) {
  ReplicationAnalyzer analyzer;
  analyzer.add(1.0);
  analyzer.add(2.0);
  EXPECT_EQ(analyzer.samples(), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(analyzer.stats().count(), 2u);
}

// --- histogram ---

TEST(Histogram, CountsFallInCorrectBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(9.99);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderflowAndOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, QuantileOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  rng::RandomStream stream(5);
  for (int i = 0; i < 100000; ++i) h.add(stream.uniform01());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, QuantileOnEmptyThrows) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_THROW(h.quantile(0.5), std::logic_error);
}

TEST(Histogram, TracksObservedMinMax) {
  Histogram h(0.0, 10.0, 10);
  h.add(3.5);
  h.add(-2.0);  // underflow still updates the extremes
  h.add(42.0);  // overflow too
  EXPECT_DOUBLE_EQ(h.min(), -2.0);
  EXPECT_DOUBLE_EQ(h.max(), 42.0);
}

TEST(Histogram, QuantileInUnderflowMassReturnsObservedMin) {
  // All mass below lo: the old interpolation reported the lo bin edge (0.0)
  // for every quantile; it must report the real observations' range instead.
  Histogram h(0.0, 10.0, 10);
  h.add(-3.0);
  h.add(-1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), -3.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), -3.0);  // no binned/overflow mass either
}

TEST(Histogram, QuantileInOverflowMassReturnsObservedMax) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.5);
  h.add(7.0);
  h.add(9.0);
  // q=1 lands in the overflow mass: report the observed max, not hi.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 9.0);
}

TEST(Histogram, InterpolationClampedToObservedRange) {
  // One observation in one bin: interpolation inside [bin_lower, bin_upper)
  // must not stick out past the single observed value.
  Histogram h(0.0, 10.0, 10);
  h.add(4.2);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 4.2);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.2);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.2);
}

}  // namespace
}  // namespace dg::stats
