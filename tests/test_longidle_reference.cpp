// Reference-implementation property test for LongIdle.
//
// LongIdlePolicy maintains lazy max-heaps over waiting times for O(bags log)
// selection; this test drives long randomized scenarios and cross-checks
// every selection against a brute-force O(total tasks) reference that
// recomputes each bag's maximum accumulated idle time from scratch.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "rng/random_stream.hpp"
#include "sched/individual.hpp"
#include "sched/policies.hpp"

namespace dg::sched {
namespace {

class ReferenceWorld {
 public:
  explicit ReferenceWorld(std::uint64_t seed)
      : stream_(seed), policy_(std::make_unique<LongIdlePolicy>()),
        individual_(IndividualScheduler::make(IndividualSchedulerKind::kWqrFt)) {}

  void add_bot(std::size_t num_tasks, double now) {
    workload::BotSpec spec;
    spec.id = next_id_++;
    spec.arrival_time = now;
    for (std::size_t t = 0; t < num_tasks; ++t) {
      spec.tasks.push_back(workload::TaskSpec{100.0 + static_cast<double>(t)});
    }
    bots_.push_back(std::make_unique<BotState>(spec));
    active_.push_back(bots_.back().get());
    policy_->on_bot_arrival(*bots_.back(), now);
  }

  SchedulerContext context(double now) {
    SchedulerContext ctx;
    ctx.now = now;
    // LongIdle consults only its own heaps (never ctx.bots / ctx.index), so
    // the reference world keeps its plain vector of active bags.
    ctx.individual = individual_.get();
    ctx.threshold = 2;
    return ctx;
  }

  /// Brute-force reference: recompute every bag's max waiting time.
  TaskState* reference_select(double now) {
    std::vector<std::pair<double, std::size_t>> ranked;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      double best = -std::numeric_limits<double>::infinity();
      BotState& bot = *active_[i];
      for (std::size_t t = 0; t < bot.num_tasks(); ++t) {
        const TaskState& task = bot.task(t);
        if (task.completed()) continue;
        best = std::max(best, task.accumulated_idle(now));
      }
      ranked.emplace_back(best, i);
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    SchedulerContext ctx = context(now);
    for (const auto& [priority, i] : ranked) {
      if (TaskState* task = ctx.pick_from(*active_[i])) return task;
    }
    return nullptr;
  }

  void start_replica(TaskState& task, double now) {
    task.on_replica_started(now);
    task.bot().after_replica_started(task);
    policy_->on_task_transition(task, now);
  }

  void fail_replica(TaskState& task, double now) {
    task.on_replica_stopped(now);
    task.bot().after_replica_stopped(task);
    if (task.running_replicas() == 0) task.bot().push_resubmission(task);
    policy_->on_task_transition(task, now);
  }

  void complete_task(TaskState& task, double now) {
    task.mark_completed(now);
    BotState& bot = task.bot();
    bot.on_task_completed(task);
    policy_->on_task_transition(task, now);
    while (task.running_replicas() > 0) {
      task.on_replica_stopped(now);
      bot.after_replica_stopped(task);
    }
    if (bot.completed()) {
      policy_->on_bot_completion(bot, now);
      std::erase(active_, &bot);
    }
  }

  /// Collects tasks that currently have at least one running replica.
  std::vector<TaskState*> running_tasks() {
    std::vector<TaskState*> tasks;
    for (BotState* bot : active_) {
      for (std::size_t t = 0; t < bot->num_tasks(); ++t) {
        if (!bot->task(t).completed() && bot->task(t).running_replicas() > 0) {
          tasks.push_back(&bot->task(t));
        }
      }
    }
    return tasks;
  }

  rng::RandomStream stream_;
  std::unique_ptr<LongIdlePolicy> policy_;
  std::unique_ptr<IndividualScheduler> individual_;
  std::vector<std::unique_ptr<BotState>> bots_;
  std::vector<BotState*> active_;
  workload::BotId next_id_ = 0;
};

class LongIdleReferenceTest : public ::testing::TestWithParam<int> {};

TEST_P(LongIdleReferenceTest, LazyHeapsMatchBruteForce) {
  ReferenceWorld world(static_cast<std::uint64_t>(GetParam()));
  double now = 0.0;
  world.add_bot(4, now);

  int selections_checked = 0;
  for (int step = 0; step < 400; ++step) {
    now += world.stream_.uniform(1.0, 50.0);
    const double action = world.stream_.uniform01();
    if (action < 0.15 && world.active_.size() < 6) {
      world.add_bot(2 + static_cast<std::size_t>(world.stream_.uniform_int(0, 3)), now);
    } else if (action < 0.55) {
      // Cross-check a selection, then act on it.
      TaskState* expected = world.reference_select(now);
      SchedulerContext ctx = world.context(now);
      TaskState* actual = world.policy_->select(ctx);
      ASSERT_EQ(actual, expected) << "step " << step << " now " << now;
      ++selections_checked;
      if (actual != nullptr) world.start_replica(*actual, now);
    } else if (action < 0.8) {
      auto running = world.running_tasks();
      if (!running.empty()) {
        const auto pick = world.stream_.uniform_int(0, running.size() - 1);
        world.fail_replica(*running[pick], now);
      }
    } else {
      auto running = world.running_tasks();
      if (!running.empty()) {
        const auto pick = world.stream_.uniform_int(0, running.size() - 1);
        world.complete_task(*running[pick], now);
      }
    }
  }
  EXPECT_GT(selections_checked, 50);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LongIdleReferenceTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace dg::sched
