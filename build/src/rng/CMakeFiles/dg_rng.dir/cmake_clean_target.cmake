file(REMOVE_RECURSE
  "libdg_rng.a"
)
