file(REMOVE_RECURSE
  "CMakeFiles/dg_rng.dir/distributions.cpp.o"
  "CMakeFiles/dg_rng.dir/distributions.cpp.o.d"
  "CMakeFiles/dg_rng.dir/random_stream.cpp.o"
  "CMakeFiles/dg_rng.dir/random_stream.cpp.o.d"
  "libdg_rng.a"
  "libdg_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
