# Empty compiler generated dependencies file for dg_rng.
# This may be replaced when dependencies are built.
