# Empty compiler generated dependencies file for dg_exp.
# This may be replaced when dependencies are built.
