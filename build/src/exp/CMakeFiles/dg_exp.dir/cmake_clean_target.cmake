file(REMOVE_RECURSE
  "libdg_exp.a"
)
