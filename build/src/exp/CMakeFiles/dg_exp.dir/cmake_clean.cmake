file(REMOVE_RECURSE
  "CMakeFiles/dg_exp.dir/paper.cpp.o"
  "CMakeFiles/dg_exp.dir/paper.cpp.o.d"
  "CMakeFiles/dg_exp.dir/runner.cpp.o"
  "CMakeFiles/dg_exp.dir/runner.cpp.o.d"
  "CMakeFiles/dg_exp.dir/steady_state.cpp.o"
  "CMakeFiles/dg_exp.dir/steady_state.cpp.o.d"
  "libdg_exp.a"
  "libdg_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
