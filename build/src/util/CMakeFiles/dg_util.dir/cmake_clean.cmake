file(REMOVE_RECURSE
  "CMakeFiles/dg_util.dir/arg_parser.cpp.o"
  "CMakeFiles/dg_util.dir/arg_parser.cpp.o.d"
  "CMakeFiles/dg_util.dir/ini.cpp.o"
  "CMakeFiles/dg_util.dir/ini.cpp.o.d"
  "CMakeFiles/dg_util.dir/logging.cpp.o"
  "CMakeFiles/dg_util.dir/logging.cpp.o.d"
  "CMakeFiles/dg_util.dir/table.cpp.o"
  "CMakeFiles/dg_util.dir/table.cpp.o.d"
  "CMakeFiles/dg_util.dir/thread_pool.cpp.o"
  "CMakeFiles/dg_util.dir/thread_pool.cpp.o.d"
  "libdg_util.a"
  "libdg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
