# Empty dependencies file for dg_stats.
# This may be replaced when dependencies are built.
