file(REMOVE_RECURSE
  "CMakeFiles/dg_stats.dir/batch_means.cpp.o"
  "CMakeFiles/dg_stats.dir/batch_means.cpp.o.d"
  "CMakeFiles/dg_stats.dir/confidence.cpp.o"
  "CMakeFiles/dg_stats.dir/confidence.cpp.o.d"
  "CMakeFiles/dg_stats.dir/histogram.cpp.o"
  "CMakeFiles/dg_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/dg_stats.dir/mser.cpp.o"
  "CMakeFiles/dg_stats.dir/mser.cpp.o.d"
  "CMakeFiles/dg_stats.dir/online_stats.cpp.o"
  "CMakeFiles/dg_stats.dir/online_stats.cpp.o.d"
  "CMakeFiles/dg_stats.dir/quantiles.cpp.o"
  "CMakeFiles/dg_stats.dir/quantiles.cpp.o.d"
  "libdg_stats.a"
  "libdg_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
