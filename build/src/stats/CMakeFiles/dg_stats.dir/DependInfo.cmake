
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/batch_means.cpp" "src/stats/CMakeFiles/dg_stats.dir/batch_means.cpp.o" "gcc" "src/stats/CMakeFiles/dg_stats.dir/batch_means.cpp.o.d"
  "/root/repo/src/stats/confidence.cpp" "src/stats/CMakeFiles/dg_stats.dir/confidence.cpp.o" "gcc" "src/stats/CMakeFiles/dg_stats.dir/confidence.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/dg_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/dg_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/mser.cpp" "src/stats/CMakeFiles/dg_stats.dir/mser.cpp.o" "gcc" "src/stats/CMakeFiles/dg_stats.dir/mser.cpp.o.d"
  "/root/repo/src/stats/online_stats.cpp" "src/stats/CMakeFiles/dg_stats.dir/online_stats.cpp.o" "gcc" "src/stats/CMakeFiles/dg_stats.dir/online_stats.cpp.o.d"
  "/root/repo/src/stats/quantiles.cpp" "src/stats/CMakeFiles/dg_stats.dir/quantiles.cpp.o" "gcc" "src/stats/CMakeFiles/dg_stats.dir/quantiles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
