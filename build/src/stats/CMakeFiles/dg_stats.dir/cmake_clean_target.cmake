file(REMOVE_RECURSE
  "libdg_stats.a"
)
