file(REMOVE_RECURSE
  "libdg_des.a"
)
