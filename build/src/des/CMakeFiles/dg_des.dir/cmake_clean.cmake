file(REMOVE_RECURSE
  "CMakeFiles/dg_des.dir/simulator.cpp.o"
  "CMakeFiles/dg_des.dir/simulator.cpp.o.d"
  "libdg_des.a"
  "libdg_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
