# Empty compiler generated dependencies file for dg_des.
# This may be replaced when dependencies are built.
