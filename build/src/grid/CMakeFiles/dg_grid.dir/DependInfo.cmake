
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/availability.cpp" "src/grid/CMakeFiles/dg_grid.dir/availability.cpp.o" "gcc" "src/grid/CMakeFiles/dg_grid.dir/availability.cpp.o.d"
  "/root/repo/src/grid/checkpoint_server.cpp" "src/grid/CMakeFiles/dg_grid.dir/checkpoint_server.cpp.o" "gcc" "src/grid/CMakeFiles/dg_grid.dir/checkpoint_server.cpp.o.d"
  "/root/repo/src/grid/desktop_grid.cpp" "src/grid/CMakeFiles/dg_grid.dir/desktop_grid.cpp.o" "gcc" "src/grid/CMakeFiles/dg_grid.dir/desktop_grid.cpp.o.d"
  "/root/repo/src/grid/outage.cpp" "src/grid/CMakeFiles/dg_grid.dir/outage.cpp.o" "gcc" "src/grid/CMakeFiles/dg_grid.dir/outage.cpp.o.d"
  "/root/repo/src/grid/trace.cpp" "src/grid/CMakeFiles/dg_grid.dir/trace.cpp.o" "gcc" "src/grid/CMakeFiles/dg_grid.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/dg_des.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/dg_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
