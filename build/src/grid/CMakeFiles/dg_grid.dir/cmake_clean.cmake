file(REMOVE_RECURSE
  "CMakeFiles/dg_grid.dir/availability.cpp.o"
  "CMakeFiles/dg_grid.dir/availability.cpp.o.d"
  "CMakeFiles/dg_grid.dir/checkpoint_server.cpp.o"
  "CMakeFiles/dg_grid.dir/checkpoint_server.cpp.o.d"
  "CMakeFiles/dg_grid.dir/desktop_grid.cpp.o"
  "CMakeFiles/dg_grid.dir/desktop_grid.cpp.o.d"
  "CMakeFiles/dg_grid.dir/outage.cpp.o"
  "CMakeFiles/dg_grid.dir/outage.cpp.o.d"
  "CMakeFiles/dg_grid.dir/trace.cpp.o"
  "CMakeFiles/dg_grid.dir/trace.cpp.o.d"
  "libdg_grid.a"
  "libdg_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
