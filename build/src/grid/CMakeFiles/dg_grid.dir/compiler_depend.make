# Empty compiler generated dependencies file for dg_grid.
# This may be replaced when dependencies are built.
