file(REMOVE_RECURSE
  "libdg_grid.a"
)
