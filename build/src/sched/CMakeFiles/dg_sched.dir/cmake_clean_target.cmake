file(REMOVE_RECURSE
  "libdg_sched.a"
)
