file(REMOVE_RECURSE
  "CMakeFiles/dg_sched.dir/bot_state.cpp.o"
  "CMakeFiles/dg_sched.dir/bot_state.cpp.o.d"
  "CMakeFiles/dg_sched.dir/individual.cpp.o"
  "CMakeFiles/dg_sched.dir/individual.cpp.o.d"
  "CMakeFiles/dg_sched.dir/policies.cpp.o"
  "CMakeFiles/dg_sched.dir/policies.cpp.o.d"
  "CMakeFiles/dg_sched.dir/scheduler.cpp.o"
  "CMakeFiles/dg_sched.dir/scheduler.cpp.o.d"
  "libdg_sched.a"
  "libdg_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
