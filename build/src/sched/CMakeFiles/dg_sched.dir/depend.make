# Empty dependencies file for dg_sched.
# This may be replaced when dependencies are built.
