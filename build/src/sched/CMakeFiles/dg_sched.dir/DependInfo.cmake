
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/bot_state.cpp" "src/sched/CMakeFiles/dg_sched.dir/bot_state.cpp.o" "gcc" "src/sched/CMakeFiles/dg_sched.dir/bot_state.cpp.o.d"
  "/root/repo/src/sched/individual.cpp" "src/sched/CMakeFiles/dg_sched.dir/individual.cpp.o" "gcc" "src/sched/CMakeFiles/dg_sched.dir/individual.cpp.o.d"
  "/root/repo/src/sched/policies.cpp" "src/sched/CMakeFiles/dg_sched.dir/policies.cpp.o" "gcc" "src/sched/CMakeFiles/dg_sched.dir/policies.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/dg_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/dg_sched.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/dg_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/dg_des.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/dg_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
