file(REMOVE_RECURSE
  "CMakeFiles/dg_workload.dir/generator.cpp.o"
  "CMakeFiles/dg_workload.dir/generator.cpp.o.d"
  "CMakeFiles/dg_workload.dir/trace.cpp.o"
  "CMakeFiles/dg_workload.dir/trace.cpp.o.d"
  "libdg_workload.a"
  "libdg_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
