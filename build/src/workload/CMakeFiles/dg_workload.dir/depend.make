# Empty dependencies file for dg_workload.
# This may be replaced when dependencies are built.
