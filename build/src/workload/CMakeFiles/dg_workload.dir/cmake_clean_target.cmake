file(REMOVE_RECURSE
  "libdg_workload.a"
)
