file(REMOVE_RECURSE
  "libdg_sim.a"
)
