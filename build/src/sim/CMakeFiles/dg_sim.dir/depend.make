# Empty dependencies file for dg_sim.
# This may be replaced when dependencies are built.
