file(REMOVE_RECURSE
  "CMakeFiles/dg_sim.dir/config_io.cpp.o"
  "CMakeFiles/dg_sim.dir/config_io.cpp.o.d"
  "CMakeFiles/dg_sim.dir/execution_engine.cpp.o"
  "CMakeFiles/dg_sim.dir/execution_engine.cpp.o.d"
  "CMakeFiles/dg_sim.dir/invariant_checker.cpp.o"
  "CMakeFiles/dg_sim.dir/invariant_checker.cpp.o.d"
  "CMakeFiles/dg_sim.dir/result_io.cpp.o"
  "CMakeFiles/dg_sim.dir/result_io.cpp.o.d"
  "CMakeFiles/dg_sim.dir/simulation.cpp.o"
  "CMakeFiles/dg_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/dg_sim.dir/timeline.cpp.o"
  "CMakeFiles/dg_sim.dir/timeline.cpp.o.d"
  "libdg_sim.a"
  "libdg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
