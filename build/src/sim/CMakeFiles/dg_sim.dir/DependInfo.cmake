
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/config_io.cpp" "src/sim/CMakeFiles/dg_sim.dir/config_io.cpp.o" "gcc" "src/sim/CMakeFiles/dg_sim.dir/config_io.cpp.o.d"
  "/root/repo/src/sim/execution_engine.cpp" "src/sim/CMakeFiles/dg_sim.dir/execution_engine.cpp.o" "gcc" "src/sim/CMakeFiles/dg_sim.dir/execution_engine.cpp.o.d"
  "/root/repo/src/sim/invariant_checker.cpp" "src/sim/CMakeFiles/dg_sim.dir/invariant_checker.cpp.o" "gcc" "src/sim/CMakeFiles/dg_sim.dir/invariant_checker.cpp.o.d"
  "/root/repo/src/sim/result_io.cpp" "src/sim/CMakeFiles/dg_sim.dir/result_io.cpp.o" "gcc" "src/sim/CMakeFiles/dg_sim.dir/result_io.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/sim/CMakeFiles/dg_sim.dir/simulation.cpp.o" "gcc" "src/sim/CMakeFiles/dg_sim.dir/simulation.cpp.o.d"
  "/root/repo/src/sim/timeline.cpp" "src/sim/CMakeFiles/dg_sim.dir/timeline.cpp.o" "gcc" "src/sim/CMakeFiles/dg_sim.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/dg_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/dg_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/dg_des.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dg_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/dg_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
