# Empty dependencies file for dg_analysis.
# This may be replaced when dependencies are built.
