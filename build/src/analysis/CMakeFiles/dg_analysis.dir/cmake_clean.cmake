file(REMOVE_RECURSE
  "CMakeFiles/dg_analysis.dir/queueing.cpp.o"
  "CMakeFiles/dg_analysis.dir/queueing.cpp.o.d"
  "libdg_analysis.a"
  "libdg_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dg_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
