
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/queueing.cpp" "src/analysis/CMakeFiles/dg_analysis.dir/queueing.cpp.o" "gcc" "src/analysis/CMakeFiles/dg_analysis.dir/queueing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/dg_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/dg_des.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/dg_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
