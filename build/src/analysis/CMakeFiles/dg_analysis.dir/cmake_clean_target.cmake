file(REMOVE_RECURSE
  "libdg_analysis.a"
)
