# Empty compiler generated dependencies file for dgsched_tests.
# This may be replaced when dependencies are built.
