
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_arrivals_metrics.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_arrivals_metrics.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_arrivals_metrics.cpp.o.d"
  "/root/repo/tests/test_batch_means.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_batch_means.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_batch_means.cpp.o.d"
  "/root/repo/tests/test_config_io.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_config_io.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_config_io.cpp.o.d"
  "/root/repo/tests/test_des.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_des.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_des.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_exp.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_exp.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_exp.cpp.o.d"
  "/root/repo/tests/test_golden.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_golden.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_golden.cpp.o.d"
  "/root/repo/tests/test_grid.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_grid.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_grid.cpp.o.d"
  "/root/repo/tests/test_longidle_reference.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_longidle_reference.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_longidle_reference.cpp.o.d"
  "/root/repo/tests/test_observer.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_observer.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_observer.cpp.o.d"
  "/root/repo/tests/test_outage.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_outage.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_outage.cpp.o.d"
  "/root/repo/tests/test_paper_claims.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_paper_claims.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_paper_claims.cpp.o.d"
  "/root/repo/tests/test_policies.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_policies.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_policies.cpp.o.d"
  "/root/repo/tests/test_process.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_process.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_process.cpp.o.d"
  "/root/repo/tests/test_result_io.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_result_io.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_result_io.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_sched_state.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_sched_state.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_sched_state.cpp.o.d"
  "/root/repo/tests/test_scheduler_unit.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_scheduler_unit.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_scheduler_unit.cpp.o.d"
  "/root/repo/tests/test_simulation.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_simulation.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_simulation.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_steady_state.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_steady_state.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_steady_state.cpp.o.d"
  "/root/repo/tests/test_stress.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_stress.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_stress.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/dgsched_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/dgsched_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/dg_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/dg_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dg_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dg_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/dg_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/dg_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/dg_des.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
