file(REMOVE_RECURSE
  "CMakeFiles/closed_loop_users.dir/closed_loop_users.cpp.o"
  "CMakeFiles/closed_loop_users.dir/closed_loop_users.cpp.o.d"
  "closed_loop_users"
  "closed_loop_users.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closed_loop_users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
