# Empty dependencies file for closed_loop_users.
# This may be replaced when dependencies are built.
