# Empty compiler generated dependencies file for enterprise_grid.
# This may be replaced when dependencies are built.
