file(REMOVE_RECURSE
  "CMakeFiles/enterprise_grid.dir/enterprise_grid.cpp.o"
  "CMakeFiles/enterprise_grid.dir/enterprise_grid.cpp.o.d"
  "enterprise_grid"
  "enterprise_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
