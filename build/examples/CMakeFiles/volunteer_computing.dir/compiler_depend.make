# Empty compiler generated dependencies file for volunteer_computing.
# This may be replaced when dependencies are built.
