# Empty compiler generated dependencies file for ext_hybrid_policy.
# This may be replaced when dependencies are built.
