file(REMOVE_RECURSE
  "CMakeFiles/ext_hybrid_policy.dir/ext_hybrid_policy.cpp.o"
  "CMakeFiles/ext_hybrid_policy.dir/ext_hybrid_policy.cpp.o.d"
  "ext_hybrid_policy"
  "ext_hybrid_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hybrid_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
