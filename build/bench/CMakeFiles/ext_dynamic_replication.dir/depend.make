# Empty dependencies file for ext_dynamic_replication.
# This may be replaced when dependencies are built.
