file(REMOVE_RECURSE
  "CMakeFiles/ext_dynamic_replication.dir/ext_dynamic_replication.cpp.o"
  "CMakeFiles/ext_dynamic_replication.dir/ext_dynamic_replication.cpp.o.d"
  "ext_dynamic_replication"
  "ext_dynamic_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dynamic_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
