file(REMOVE_RECURSE
  "CMakeFiles/fig1_high_avail.dir/fig1_high_avail.cpp.o"
  "CMakeFiles/fig1_high_avail.dir/fig1_high_avail.cpp.o.d"
  "fig1_high_avail"
  "fig1_high_avail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_high_avail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
