# Empty compiler generated dependencies file for fig1_high_avail.
# This may be replaced when dependencies are built.
