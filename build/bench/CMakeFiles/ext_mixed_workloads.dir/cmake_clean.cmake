file(REMOVE_RECURSE
  "CMakeFiles/ext_mixed_workloads.dir/ext_mixed_workloads.cpp.o"
  "CMakeFiles/ext_mixed_workloads.dir/ext_mixed_workloads.cpp.o.d"
  "ext_mixed_workloads"
  "ext_mixed_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_mixed_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
