# Empty dependencies file for ext_mixed_workloads.
# This may be replaced when dependencies are built.
