# Empty compiler generated dependencies file for fig2_low_avail.
# This may be replaced when dependencies are built.
