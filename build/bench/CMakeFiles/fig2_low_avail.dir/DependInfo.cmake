
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig2_low_avail.cpp" "bench/CMakeFiles/fig2_low_avail.dir/fig2_low_avail.cpp.o" "gcc" "bench/CMakeFiles/fig2_low_avail.dir/fig2_low_avail.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/dg_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/dg_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dg_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dg_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/dg_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/dg_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/dg_des.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
