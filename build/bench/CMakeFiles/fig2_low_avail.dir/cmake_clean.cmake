file(REMOVE_RECURSE
  "CMakeFiles/fig2_low_avail.dir/fig2_low_avail.cpp.o"
  "CMakeFiles/fig2_low_avail.dir/fig2_low_avail.cpp.o.d"
  "fig2_low_avail"
  "fig2_low_avail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_low_avail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
