# Empty compiler generated dependencies file for sweep_utilization.
# This may be replaced when dependencies are built.
