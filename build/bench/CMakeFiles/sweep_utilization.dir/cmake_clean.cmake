file(REMOVE_RECURSE
  "CMakeFiles/sweep_utilization.dir/sweep_utilization.cpp.o"
  "CMakeFiles/sweep_utilization.dir/sweep_utilization.cpp.o.d"
  "sweep_utilization"
  "sweep_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
