# Empty compiler generated dependencies file for unreported_configs.
# This may be replaced when dependencies are built.
