file(REMOVE_RECURSE
  "CMakeFiles/unreported_configs.dir/unreported_configs.cpp.o"
  "CMakeFiles/unreported_configs.dir/unreported_configs.cpp.o.d"
  "unreported_configs"
  "unreported_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unreported_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
