# Empty compiler generated dependencies file for ext_knowledge_based.
# This may be replaced when dependencies are built.
