file(REMOVE_RECURSE
  "CMakeFiles/ext_knowledge_based.dir/ext_knowledge_based.cpp.o"
  "CMakeFiles/ext_knowledge_based.dir/ext_knowledge_based.cpp.o.d"
  "ext_knowledge_based"
  "ext_knowledge_based.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_knowledge_based.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
