# Empty dependencies file for ablation_checkpoint_server.
# This may be replaced when dependencies are built.
