file(REMOVE_RECURSE
  "CMakeFiles/ablation_checkpoint_server.dir/ablation_checkpoint_server.cpp.o"
  "CMakeFiles/ablation_checkpoint_server.dir/ablation_checkpoint_server.cpp.o.d"
  "ablation_checkpoint_server"
  "ablation_checkpoint_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_checkpoint_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
