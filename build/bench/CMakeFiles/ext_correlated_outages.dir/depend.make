# Empty dependencies file for ext_correlated_outages.
# This may be replaced when dependencies are built.
