file(REMOVE_RECURSE
  "CMakeFiles/ext_correlated_outages.dir/ext_correlated_outages.cpp.o"
  "CMakeFiles/ext_correlated_outages.dir/ext_correlated_outages.cpp.o.d"
  "ext_correlated_outages"
  "ext_correlated_outages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_correlated_outages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
