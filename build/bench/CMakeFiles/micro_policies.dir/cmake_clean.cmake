file(REMOVE_RECURSE
  "CMakeFiles/micro_policies.dir/micro_policies.cpp.o"
  "CMakeFiles/micro_policies.dir/micro_policies.cpp.o.d"
  "micro_policies"
  "micro_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
