file(REMOVE_RECURSE
  "CMakeFiles/ext_bursty_arrivals.dir/ext_bursty_arrivals.cpp.o"
  "CMakeFiles/ext_bursty_arrivals.dir/ext_bursty_arrivals.cpp.o.d"
  "ext_bursty_arrivals"
  "ext_bursty_arrivals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_bursty_arrivals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
