# Empty compiler generated dependencies file for ext_bursty_arrivals.
# This may be replaced when dependencies are built.
