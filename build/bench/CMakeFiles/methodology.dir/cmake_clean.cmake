file(REMOVE_RECURSE
  "CMakeFiles/methodology.dir/methodology.cpp.o"
  "CMakeFiles/methodology.dir/methodology.cpp.o.d"
  "methodology"
  "methodology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/methodology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
