// Policy explorer: a full command-line front end to the simulator.
//
//   $ ./policy_explorer --policy LongIdle --availability low --het true \
//         --granularity 25000 --intensity high --bots 50 --seed 3 --verbose
//
// Exposes every public configuration knob (grid, workload, policy,
// individual scheduler, replication control) and prints the aggregate
// metrics plus, with --verbose, a per-bag table.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "sim/config_io.hpp"
#include "sim/simulation.hpp"
#include "util/arg_parser.hpp"
#include "util/table.hpp"

namespace {

dg::sched::PolicyKind parse_policy(const std::string& name) {
  using dg::sched::PolicyKind;
  if (name == "FCFS-Excl" || name == "fcfs-excl") return PolicyKind::kFcfsExcl;
  if (name == "FCFS-Share" || name == "fcfs-share") return PolicyKind::kFcfsShare;
  if (name == "RR" || name == "rr") return PolicyKind::kRoundRobin;
  if (name == "RR-NRF" || name == "rr-nrf") return PolicyKind::kRoundRobinNrf;
  if (name == "LongIdle" || name == "longidle") return PolicyKind::kLongIdle;
  if (name == "Random" || name == "random") return PolicyKind::kRandom;
  if (name == "SJF-Bag" || name == "sjf" || name == "sjf-bag") {
    return PolicyKind::kShortestBagFirst;
  }
  if (name == "PF-RR" || name == "pf-rr" || name == "pendingfirst") {
    return PolicyKind::kPendingFirst;
  }
  throw std::invalid_argument(
      "unknown policy: " + name +
      " (use FCFS-Excl|FCFS-Share|RR|RR-NRF|LongIdle|Random|SJF-Bag|PF-RR)");
}

dg::sched::IndividualSchedulerKind parse_individual(const std::string& name) {
  using dg::sched::IndividualSchedulerKind;
  if (name == "WorkQueue" || name == "workqueue") return IndividualSchedulerKind::kWorkQueue;
  if (name == "WQR" || name == "wqr") return IndividualSchedulerKind::kWqr;
  if (name == "WQR-FT" || name == "wqr-ft") return IndividualSchedulerKind::kWqrFt;
  if (name == "KB-LTF" || name == "kb") return IndividualSchedulerKind::kKnowledgeBased;
  throw std::invalid_argument("unknown individual scheduler: " + name);
}

dg::grid::AvailabilityLevel parse_availability(const std::string& name) {
  using dg::grid::AvailabilityLevel;
  if (name == "high") return AvailabilityLevel::kHigh;
  if (name == "med" || name == "medium") return AvailabilityLevel::kMed;
  if (name == "low") return AvailabilityLevel::kLow;
  if (name == "always" || name == "none") return AvailabilityLevel::kAlways;
  throw std::invalid_argument("unknown availability: " + name + " (high|med|low|always)");
}

dg::workload::ArrivalProcess parse_arrivals(const std::string& name) {
  using dg::workload::ArrivalProcess;
  if (name == "poisson") return ArrivalProcess::kPoisson;
  if (name == "uniform" || name == "jitter") return ArrivalProcess::kUniformJitter;
  if (name == "bursty") return ArrivalProcess::kBursty;
  throw std::invalid_argument("unknown arrivals: " + name + " (poisson|uniform|bursty)");
}

dg::workload::Intensity parse_intensity(const std::string& name) {
  using dg::workload::Intensity;
  if (name == "low") return Intensity::kLow;
  if (name == "med" || name == "medium") return Intensity::kMed;
  if (name == "high") return Intensity::kHigh;
  throw std::invalid_argument("unknown intensity: " + name + " (low|med|high)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dg;
  util::ArgParser parser("policy_explorer",
                         "simulate one multi-BoT scheduling scenario end to end");
  parser.add_option("policy", "FCFS-Share",
                    "bag selection: FCFS-Excl|FCFS-Share|RR|RR-NRF|LongIdle|Random");
  parser.add_option("individual", "WQR-FT", "individual scheduler: WorkQueue|WQR|WQR-FT|KB-LTF");
  parser.add_option("availability", "high", "grid availability: high|med|low|always");
  parser.add_flag("het", "heterogeneous machine powers (Uniform[2.3,17.7])");
  parser.add_option("granularity", "5000", "mean task size [s on a P=1 machine]");
  parser.add_option("intensity", "low", "target utilization: low (50%)|med (75%)|high (90%)");
  parser.add_option("bots", "30", "number of BoT applications");
  parser.add_option("arrivals", "poisson", "arrival process: poisson|uniform|bursty");
  parser.add_option("bag-size", "2500000", "total work per bag [s on a P=1 machine]");
  parser.add_option("threshold", "0", "replication threshold override (0 = default)");
  parser.add_flag("dynamic-replication", "adaptive replication threshold");
  parser.add_option("seed", "1", "random seed");
  parser.add_option("config", "", "INI experiment file (overrides the other options)");
  parser.add_option("save-config", "", "write the effective configuration to this INI file");
  parser.add_flag("verbose", "print the per-bag table");

  if (!parser.parse(argc, argv)) return 1;

  sim::SimulationConfig config;
  try {
    if (const std::string path = parser.get("config"); !path.empty()) {
      std::ifstream file(path);
      if (!file) {
        std::fprintf(stderr, "policy_explorer: cannot open %s\n", path.c_str());
        return 1;
      }
      config = sim::load_simulation_config(file);
    } else {
      config.grid = grid::GridConfig::preset(
          parser.get_flag("het") ? grid::Heterogeneity::kHet : grid::Heterogeneity::kHom,
          parse_availability(parser.get("availability")));
      config.workload = sim::make_paper_workload(
          config.grid, parser.get_double("granularity"),
          parse_intensity(parser.get("intensity")),
          static_cast<std::size_t>(parser.get_int("bots")), parser.get_double("bag-size"));
      config.workload.arrivals = parse_arrivals(parser.get("arrivals"));
      config.policy = parse_policy(parser.get("policy"));
      config.individual = parse_individual(parser.get("individual"));
      config.replication_threshold = static_cast<int>(parser.get_int("threshold"));
      config.dynamic_replication = parser.get_flag("dynamic-replication");
      config.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
    }
    if (const std::string path = parser.get("save-config"); !path.empty()) {
      std::ofstream out(path);
      sim::save_simulation_config(out, config);
      std::printf("configuration written to %s\n", path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "policy_explorer: %s\n", e.what());
    return 1;
  }

  std::printf("grid      : %s (%zu machines expected)\n", config.grid.name().c_str(),
              static_cast<std::size_t>(config.grid.total_power / config.grid.hom_power));
  std::printf("workload  : %s\n", config.workload.name().c_str());
  std::printf("scheduler : %s over %s\n", sched::to_string(config.policy).c_str(),
              sched::to_string(config.individual).c_str());

  const sim::SimulationResult result = sim::Simulation(config).run();

  std::printf("\ncompleted   : %zu/%zu bags%s\n", result.bots_completed, result.bots.size(),
              result.saturated ? "  (SATURATED at horizon)" : "");
  std::printf("turnaround  : mean %.0f s (min %.0f, max %.0f)\n", result.turnaround.mean(),
              result.turnaround.min(), result.turnaround.max());
  std::printf("            = waiting %.0f s + makespan %.0f s\n", result.waiting.mean(),
              result.makespan.mean());
  std::printf("utilization : %.3f   measured availability: %.3f\n", result.utilization,
              result.measured_availability);
  std::printf("failures    : %llu machine, %llu replica\n",
              static_cast<unsigned long long>(result.machine_failures),
              static_cast<unsigned long long>(result.replica_failures));
  std::printf("checkpoints : %llu saved, %llu retrieved\n",
              static_cast<unsigned long long>(result.checkpoints_saved),
              static_cast<unsigned long long>(result.checkpoint_retrievals));
  std::printf("replicas    : %llu started, %.1f%% of compute wasted, %.0f s work lost\n",
              static_cast<unsigned long long>(result.replicas_started),
              100.0 * result.wasted_fraction(), result.lost_work);
  std::printf("simulated   : %.0f s wall (%llu events)\n", result.end_time,
              static_cast<unsigned long long>(result.events_executed));

  if (parser.get_flag("verbose")) {
    util::Table table({"bag", "tasks", "arrival [s]", "waiting [s]", "makespan [s]",
                       "turnaround [s]", "done"});
    for (const sim::BotRecord& bot : result.bots) {
      table.add_row({std::to_string(bot.id), std::to_string(bot.num_tasks),
                     util::format_double(bot.arrival_time, 0),
                     util::format_double(bot.waiting_time, 0),
                     util::format_double(bot.makespan, 0),
                     util::format_double(bot.turnaround, 0), bot.completed ? "yes" : "NO"});
    }
    std::printf("\n");
    table.render(std::cout);
  }
  return 0;
}
