// Campaign runner: execute a batch of INI experiment files.
//
//   $ ./campaign_runner exp1.ini exp2.ini ... [--reps 3] [--out results]
//
// Each file describes one scenario (see src/sim/config_io.hpp); the runner
// replicates it with derived seeds, prints a comparison table, and (with
// --out) writes per-bag and monitor CSVs for every experiment — the glue
// that turns the library into a batch experimentation tool.
#include <fstream>
#include <iostream>
#include <vector>

#include "rng/splitmix64.hpp"
#include "sim/config_io.hpp"
#include "sim/result_io.hpp"
#include "sim/simulation.hpp"
#include "stats/confidence.hpp"
#include "util/arg_parser.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dg;
  util::ArgParser parser("campaign_runner", "run a batch of INI experiment files");
  parser.add_option("reps", "3", "replications per experiment");
  parser.add_option("out", "", "prefix for per-experiment CSV exports (empty = none)");
  if (!parser.parse(argc, argv)) return 1;
  std::vector<std::string> files = parser.positional();
  if (files.empty()) {
    // No arguments: demonstrate on the bundled example configuration.
    files.push_back("examples/configs/volunteer_longidle.ini");
    std::ifstream probe(files.back());
    if (!probe) {
      std::cout << "usage: campaign_runner <experiment.ini> ... (no bundled config found)\n";
      return 0;
    }
    std::cout << "(no files given; running the bundled " << files.back() << ")\n\n";
  }
  const auto reps = static_cast<std::size_t>(parser.get_int("reps"));

  util::Table table({"experiment", "policy", "mean turnaround [s]", "95% CI +-",
                     "utilization", "saturated"});
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "campaign_runner: cannot open " << file << "\n";
      return 1;
    }
    sim::SimulationConfig config;
    try {
      config = sim::load_simulation_config(in);
    } catch (const std::exception& e) {
      std::cerr << "campaign_runner: " << file << ": " << e.what() << "\n";
      return 1;
    }

    stats::OnlineStats turnaround, utilization;
    bool saturated = false;
    sim::SimulationResult last;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      sim::SimulationConfig replicated = config;
      replicated.seed = rng::mix_seed(config.seed, rep);
      last = sim::Simulation(replicated).run();
      turnaround.add(last.turnaround.mean());
      utilization.add(last.utilization);
      saturated |= last.saturated;
    }
    const stats::ConfidenceInterval ci = stats::mean_confidence_interval(turnaround);
    table.add_row({file, sched::to_string(config.policy),
                   util::format_double(ci.mean, 0), util::format_double(ci.half_width, 0),
                   util::format_double(utilization.mean(), 3), saturated ? "yes" : "no"});

    if (const std::string prefix = parser.get("out"); !prefix.empty()) {
      // Export the last replication's details.
      std::string stem = file;
      if (auto slash = stem.find_last_of('/'); slash != std::string::npos) {
        stem = stem.substr(slash + 1);
      }
      if (auto dot = stem.find_last_of('.'); dot != std::string::npos) stem = stem.substr(0, dot);
      std::ofstream bots_csv(prefix + "_" + stem + "_bots.csv");
      sim::write_bot_records_csv(bots_csv, last);
      std::ofstream monitor_csv(prefix + "_" + stem + "_monitor.csv");
      sim::write_monitor_csv(monitor_csv, last);
      std::ofstream summary(prefix + "_" + stem + "_summary.txt");
      sim::write_summary(summary, last);
    }
  }
  table.render(std::cout);
  return 0;
}
