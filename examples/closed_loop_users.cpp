// Closed-loop users, written as coroutine processes.
//
// The paper's workload is open-loop (Poisson arrivals regardless of system
// state). Real users are partly closed-loop: they submit a campaign, wait
// for it to finish, think, then submit the next. This example models N such
// users as des::Process coroutines — each cycles submit -> await completion
// signal -> think — and reports per-user cycle statistics under two
// policies. It also demonstrates assembling the scheduler stack manually
// (grid + scheduler + engine) instead of going through sim::Simulation.
#include <cstdio>
#include <memory>
#include <vector>

#include "des/process.hpp"
#include "grid/desktop_grid.hpp"
#include "rng/random_stream.hpp"
#include "sched/policies.hpp"
#include "sched/scheduler.hpp"
#include "sim/execution_engine.hpp"
#include "stats/online_stats.hpp"
#include "workload/generator.hpp"

namespace {

using namespace dg;

struct ClosedLoopWorld {
  des::Simulator sim;
  std::unique_ptr<grid::DesktopGrid> grid_;
  std::unique_ptr<sched::MultiBotScheduler> scheduler;
  std::unique_ptr<sim::ExecutionEngine> engine;
  std::vector<std::unique_ptr<sched::BotState>> bots;
  std::vector<std::unique_ptr<des::Signal>> signals;  // per bag
  workload::BotId next_id = 0;

  explicit ClosedLoopWorld(sched::PolicyKind policy) {
    grid::GridConfig config =
        grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kMed);
    grid_ = std::make_unique<grid::DesktopGrid>(config, sim, 7);
    scheduler = std::make_unique<sched::MultiBotScheduler>(
        sim, *grid_, sched::make_policy(policy, 7),
        sched::IndividualScheduler::make(sched::IndividualSchedulerKind::kWqrFt),
        std::make_unique<sched::StaticReplication>(2));
    sim::EngineConfig engine_config;
    engine_config.checkpointing = true;
    engine_config.checkpoint_interval =
        grid::young_checkpoint_interval(480.0, config.availability.mttf());
    engine = std::make_unique<sim::ExecutionEngine>(sim, *grid_, *scheduler, engine_config, 7);
    grid_->start(grid::TransitionDelegate::to<&sim::ExecutionEngine::on_machine_failure>(*engine),
                 grid::TransitionDelegate::to<&sim::ExecutionEngine::on_machine_repair>(*engine));
    scheduler->set_bot_completed_callback([this](sched::BotState& bot) {
      signals[bot.id()]->trigger();  // wake the owning user process
    });
  }

  /// Submits a fresh bag and returns the signal that fires on completion.
  des::Signal& submit_bag(rng::RandomStream& stream, double granularity) {
    workload::BotSpec spec;
    spec.id = next_id++;
    spec.arrival_time = sim.now();
    spec.granularity = granularity;
    double work = 0.0;
    while (work < 2.5e5) {  // small campaigns keep the example fast
      const double task = stream.uniform(0.5 * granularity, 1.5 * granularity);
      spec.tasks.push_back(workload::TaskSpec{task});
      work += task;
    }
    bots.push_back(std::make_unique<sched::BotState>(spec));
    signals.push_back(std::make_unique<des::Signal>(sim));
    scheduler->submit(*bots.back());
    return *signals.back();
  }
};

struct UserStats {
  stats::OnlineStats cycle_time;
  int campaigns = 0;
};

des::Process user_process(ClosedLoopWorld& world, UserStats& stats, std::uint64_t seed,
                          int campaigns) {
  rng::RandomStream stream(seed);
  for (int i = 0; i < campaigns; ++i) {
    co_await des::delay(world.sim, stream.exponential_mean(2000.0));  // think
    const double start = world.sim.now();
    des::Signal& done = world.submit_bag(stream, 5000.0);
    co_await done;
    stats.cycle_time.add(world.sim.now() - start);
    ++stats.campaigns;
  }
}

}  // namespace

int main() {
  std::printf("Closed-loop users (coroutine processes): 8 users x 6 campaigns each,\n"
              "Hom-MedAvail grid, 5000 s tasks, think time ~ Exp(2000 s).\n\n");
  for (sched::PolicyKind policy :
       {sched::PolicyKind::kFcfsShare, sched::PolicyKind::kRoundRobin}) {
    ClosedLoopWorld world(policy);
    std::vector<UserStats> users(8);
    for (std::size_t u = 0; u < users.size(); ++u) {
      user_process(world, users[u], 100 + u, 6);
    }
    world.sim.run_until(5e6);

    stats::OnlineStats all;
    int total_campaigns = 0;
    for (const UserStats& user : users) {
      all.merge(user.cycle_time);
      total_campaigns += user.campaigns;
    }
    std::printf("%-10s: %2d campaigns completed, mean campaign time %6.0f s "
                "(min %5.0f, max %6.0f), makespan %0.0f s\n",
                sched::to_string(policy).c_str(), total_campaigns, all.mean(), all.min(),
                all.max(), world.sim.now());
  }
  std::printf("\nClosed-loop load is self-throttling: when campaigns run long, users\n"
              "submit less — compare with the open-loop saturation in the benches.\n");
  return 0;
}
