// Volunteer-computing scenario (the paper's LowAvail regime).
//
// A SETI@home-style public-resource grid: ~100 home machines that come and
// go with ~50% availability. Several research groups submit BoT campaigns
// with very different task sizes. This example compares all five bag
// selection policies and shows the turnaround-time distribution (not just
// the mean) for the best and worst of them.
#include <cstdio>

#include "sched/policies.hpp"
#include "sim/simulation.hpp"
#include "stats/histogram.hpp"

namespace {

dg::sim::SimulationResult run_policy(dg::sched::PolicyKind policy, double granularity) {
  using namespace dg;
  sim::SimulationConfig config;
  config.grid = grid::GridConfig::preset(grid::Heterogeneity::kHet,
                                         grid::AvailabilityLevel::kLow);
  config.workload =
      sim::make_paper_workload(config.grid, granularity, workload::Intensity::kLow, 40);
  config.policy = policy;
  config.seed = 2026;
  config.warmup_bots = 5;
  return sim::Simulation(config).run();
}

}  // namespace

int main() {
  using namespace dg;
  std::printf("Volunteer Desktop Grid (Het-LowAvail): 40 BoT campaigns, 25000 s tasks\n\n");
  std::printf("%-12s %14s %12s %12s %10s %8s\n", "policy", "turnaround [s]", "waiting [s]",
              "makespan [s]", "failures", "wasted");

  sched::PolicyKind best = sched::PolicyKind::kFcfsShare;
  double best_mean = 1e300;
  for (sched::PolicyKind policy : sched::paper_policies()) {
    const sim::SimulationResult result = run_policy(policy, 25000.0);
    std::printf("%-12s %14.0f %12.0f %12.0f %10llu %7.1f%%\n",
                sched::to_string(policy).c_str(), result.turnaround.mean(),
                result.waiting.mean(), result.makespan.mean(),
                static_cast<unsigned long long>(result.replica_failures),
                100.0 * result.wasted_fraction());
    if (result.turnaround.mean() < best_mean) {
      best_mean = result.turnaround.mean();
      best = policy;
    }
  }

  // Distribution of turnarounds for the winning policy.
  const sim::SimulationResult result = run_policy(best, 25000.0);
  stats::Histogram histogram(0.0, 4.0 * result.turnaround.mean(), 20);
  for (const sim::BotRecord& bot : result.bots) histogram.add(bot.turnaround);
  std::printf("\nTurnaround distribution for %s (each # = 1 campaign):\n",
              sched::to_string(best).c_str());
  for (std::size_t bin = 0; bin < histogram.num_bins(); ++bin) {
    if (histogram.bin_count(bin) == 0) continue;
    std::printf("%8.0f s | ", histogram.bin_lower(bin));
    for (std::uint64_t i = 0; i < histogram.bin_count(bin); ++i) std::printf("#");
    std::printf("\n");
  }
  std::printf("\nmedian %.0f s, p90 %.0f s\n", histogram.quantile(0.5), histogram.quantile(0.9));
  return 0;
}
