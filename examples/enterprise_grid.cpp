// Enterprise Desktop Grid scenario (the paper's HighAvail regime).
//
// Stable corporate desktops (~98% availability) shared by several teams that
// submit parameter-sweep campaigns of very different task granularities at
// high load (90% target utilization). Uses the ExperimentRunner to get
// proper confidence intervals, exactly as the paper's evaluation does, and
// prints the policy ranking per granularity.
#include <iostream>

#include "exp/runner.hpp"
#include "util/table.hpp"

int main() {
  using namespace dg;

  exp::RunOptions options;
  options.min_replications = 3;
  options.max_replications = 6;
  options.target_relative_error = 0.10;

  const grid::GridConfig grid_config =
      grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kHigh);
  std::cout << "Enterprise Desktop Grid (" << grid_config.name() << "), high intensity\n"
            << "Policies ranked per task granularity; 95% confidence intervals.\n\n";

  std::vector<exp::NamedConfig> cells;
  const double granularities[] = {1000.0, 25000.0};
  for (double granularity : granularities) {
    for (sched::PolicyKind policy : sched::paper_policies()) {
      sim::SimulationConfig config;
      config.grid = grid_config;
      config.workload = sim::make_paper_workload(grid_config, granularity,
                                                 workload::Intensity::kHigh, 50);
      config.policy = policy;
      config.warmup_bots = 5;
      cells.push_back({sched::to_string(policy), config});
    }
  }

  exp::ExperimentRunner runner(options);
  const auto results = runner.run(cells);

  std::size_t index = 0;
  for (double granularity : granularities) {
    util::Table table({"policy", "mean turnaround [s]", "95% CI +-", "reps"});
    // Rank the five policies for this granularity.
    std::vector<const exp::CellResult*> ranked;
    for (std::size_t p = 0; p < 5; ++p) ranked.push_back(&results[index++]);
    std::sort(ranked.begin(), ranked.end(), [](const auto* a, const auto* b) {
      return a->turnaround.stats().mean() < b->turnaround.stats().mean();
    });
    for (const exp::CellResult* cell : ranked) {
      const auto ci = cell->turnaround_ci();
      table.add_row({cell->label, util::format_double(ci.mean, 0),
                     util::format_double(ci.half_width, 0),
                     std::to_string(cell->replications)});
    }
    std::cout << "--- task granularity " << granularity << " s ---\n";
    table.render(std::cout);
    std::cout << "\n";
  }
  std::cout << "Note the ranking flip: FCFS-based policies win at 1000 s granularity,\n"
               "RR-based at 25000 s — the paper's central observation.\n";
  return 0;
}
