// Trace-driven simulation: record a scenario, replay it bit-for-bit.
//
// 1. Synthesizes a machine-availability trace from the paper's LowAvail
//    model and a workload trace from the paper's workload model.
// 2. Saves both to CSV (the formats in grid/trace.hpp, workload/trace.hpp).
// 3. Reloads them and replays the *same* submissions against the *same*
//    machine up/down timeline under two different policies — the comparison
//    is then free of sampling noise, a paired experiment.
// 4. Exports the winning run's event timeline to CSV for plotting.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "grid/trace.hpp"
#include "sim/simulation.hpp"
#include "sim/timeline.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

int main() {
  using namespace dg;

  const grid::GridConfig grid_config =
      grid::GridConfig::preset(grid::Heterogeneity::kHom, grid::AvailabilityLevel::kLow);

  // --- record ---
  const double horizon = 1.5e6;
  const grid::AvailabilityTrace trace =
      grid::AvailabilityTrace::synthesize(grid_config.availability, 100, horizon, 42);
  std::printf("synthesized availability trace: %zu machines, mean availability %.3f\n",
              trace.num_machines(), trace.mean_availability(horizon));

  workload::WorkloadConfig workload_config = sim::make_paper_workload(
      grid_config, 25000.0, workload::Intensity::kLow, 25);
  workload::WorkloadGenerator generator(workload_config, rng::RandomStream(42));
  const std::vector<workload::BotSpec> bots = generator.generate();

  {
    std::ofstream avail_csv("availability_trace.csv");
    trace.save_csv(avail_csv);
    std::ofstream bots_csv("workload_trace.csv");
    workload::save_workload_csv(bots_csv, bots);
  }
  std::printf("saved availability_trace.csv and workload_trace.csv\n\n");

  // --- reload ---
  std::ifstream avail_in("availability_trace.csv");
  auto loaded_trace =
      std::make_shared<grid::AvailabilityTrace>(grid::AvailabilityTrace::load_csv(avail_in));
  std::ifstream bots_in("workload_trace.csv");
  auto loaded_bots = std::make_shared<std::vector<workload::BotSpec>>(
      workload::load_workload_csv(bots_in));
  std::printf("reloaded: %zu machines, %zu bags\n", loaded_trace->num_machines(),
              loaded_bots->size());

  // --- paired replay ---
  for (sched::PolicyKind policy :
       {sched::PolicyKind::kFcfsShare, sched::PolicyKind::kRoundRobin}) {
    sim::SimulationConfig config;
    config.grid = grid_config;
    config.workload = workload_config;  // reporting only; bags come from the trace
    config.trace_bots = loaded_bots;
    config.availability_trace = loaded_trace;
    config.policy = policy;
    config.seed = 7;

    sim::TimelineRecorder timeline;
    const sim::SimulationResult result = sim::Simulation(config).run(&timeline);
    std::printf("%-10s: mean turnaround %8.0f s, %zu/%zu bags, %llu machine failures\n",
                sched::to_string(policy).c_str(), result.turnaround.mean(),
                result.bots_completed, result.bots.size(),
                static_cast<unsigned long long>(result.machine_failures));
    if (policy == sched::PolicyKind::kRoundRobin) {
      std::ofstream timeline_csv("timeline_rr.csv");
      timeline.write_csv(timeline_csv);
      std::printf("  timeline (%zu events) written to timeline_rr.csv\n",
                  timeline.events().size());
    }
  }
  std::printf("\nBoth runs saw the identical submissions and machine downtime —\n"
              "any turnaround difference is purely the policy.\n");
  return 0;
}
