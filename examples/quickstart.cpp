// Quickstart: simulate three competing BoT applications on a heterogeneous
// Desktop Grid and compare two bag-selection policies.
//
//   $ ./quickstart
//
// Walks through the full public API: grid presets, paper-style workloads,
// scheduler configuration, and the SimulationResult metrics.
#include <cstdio>

#include "sim/simulation.hpp"

int main() {
  using namespace dg;

  // A heterogeneous, medium-availability Desktop Grid (total power 1000,
  // machine powers ~ Uniform[2.3, 17.7], ~75% availability).
  const grid::GridConfig grid_config =
      grid::GridConfig::preset(grid::Heterogeneity::kHet, grid::AvailabilityLevel::kMed);

  // A stream of BoTs with 5000 s task granularity at low intensity (target
  // grid utilization 50%).
  const workload::WorkloadConfig workload_config = sim::make_paper_workload(
      grid_config, /*granularity=*/5000.0, workload::Intensity::kLow, /*num_bots=*/30);

  std::printf("grid: %s, %zu bots, lambda=%.3g bags/s\n\n", grid_config.name().c_str(),
              workload_config.num_bots, workload_config.arrival_rate);

  for (const sched::PolicyKind policy :
       {sched::PolicyKind::kFcfsShare, sched::PolicyKind::kRoundRobin}) {
    sim::SimulationConfig config;
    config.grid = grid_config;
    config.workload = workload_config;
    config.policy = policy;
    config.individual = sched::IndividualSchedulerKind::kWqrFt;
    config.seed = 7;  // same seed => same workload & machine failures

    const sim::SimulationResult result = sim::Simulation(config).run();

    std::printf("policy %-10s  mean turnaround %10.0f s  (waiting %8.0f + makespan %8.0f)\n",
                sched::to_string(policy).c_str(), result.turnaround.mean(),
                result.waiting.mean(), result.makespan.mean());
    std::printf("  completed %zu/%zu bags, utilization %.2f, machine failures %llu, "
                "wasted compute %.1f%%\n",
                result.bots_completed, result.bots.size(), result.utilization,
                static_cast<unsigned long long>(result.machine_failures),
                100.0 * result.wasted_fraction());
  }
  return 0;
}
