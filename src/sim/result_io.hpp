// SimulationResult exporters.
//
// Per-bag records and the queue-monitor time series as CSV, ready for any
// plotting tool, plus a compact human-readable summary. Complements the
// event-level TimelineRecorder (sim/timeline.hpp) which captures *how* a run
// unfolded; these capture *what came out*.
#pragma once

#include <iosfwd>

#include "sim/simulation.hpp"

namespace dg::sim {

/// One row per bag: id, arrival, dispatch, completion, turnaround, waiting,
/// makespan, slowdown, granularity, tasks, total_work, completed.
void write_bot_records_csv(std::ostream& os, const SimulationResult& result);

/// One row per monitor sample: time, active_bots, busy_machines, up_machines.
void write_monitor_csv(std::ostream& os, const SimulationResult& result);

/// Multi-line human-readable digest of the aggregate metrics.
void write_summary(std::ostream& os, const SimulationResult& result);

}  // namespace dg::sim
