// Simulation observation hooks.
//
// Observers receive every externally-meaningful event of a run: bag
// submissions/completions, replica starts/stops, checkpoint traffic, machine
// failures/repairs. They power the timeline exporter (visualization /
// debugging), the invariant checker (used heavily by the stress tests), and
// any user-side instrumentation, without the engine knowing about any of
// them. All hooks are no-ops by default.
#pragma once

#include <cstdint>

#include "des/event.hpp"
#include "grid/machine.hpp"
#include "sched/bot_state.hpp"
#include "sched/sched_stats.hpp"
#include "sched/task_state.hpp"
#include "sim/fault_tolerance.hpp"
#include "stats/quantile_sketch.hpp"

namespace dg::sim {

enum class ReplicaStopKind : std::uint8_t {
  kCompleted,  // this replica finished the task
  kCancelled,  // a sibling finished first
  kFailed,     // host machine went down
};

class SimulationObserver {
 public:
  virtual ~SimulationObserver() = default;

  virtual void on_bot_submitted(const sched::BotState& /*bot*/, double /*now*/) {}
  virtual void on_bot_completed(const sched::BotState& /*bot*/, double /*now*/) {}

  virtual void on_replica_started(const sched::TaskState& /*task*/,
                                  const grid::Machine& /*machine*/, double /*now*/) {}
  virtual void on_replica_stopped(const sched::TaskState& /*task*/,
                                  const grid::Machine& /*machine*/, ReplicaStopKind /*kind*/,
                                  double /*now*/) {}
  virtual void on_task_completed(const sched::TaskState& /*task*/, double /*now*/) {}

  virtual void on_checkpoint_saved(const sched::TaskState& /*task*/,
                                   const grid::Machine& /*machine*/, double /*progress*/,
                                   double /*now*/) {}
  virtual void on_checkpoint_retrieved(const sched::TaskState& /*task*/,
                                       const grid::Machine& /*machine*/, double /*now*/) {}

  virtual void on_machine_failed(const grid::Machine& /*machine*/, double /*now*/) {}
  virtual void on_machine_repaired(const grid::Machine& /*machine*/, double /*now*/) {}

  // --- checkpoint-server fault injection (all no-ops unless the
  // --- grid::CheckpointServerFaultModel is enabled) ---

  /// The checkpoint server crashed / was repaired.
  virtual void on_server_down(double /*now*/) {}
  virtual void on_server_up(double /*now*/) {}
  /// One transfer attempt failed (refused while down, aborted by a crash, or
  /// timed out); the engine will retry or degrade.
  virtual void on_checkpoint_failed(const sched::TaskState& /*task*/,
                                    const grid::Machine& /*machine*/, bool /*is_save*/,
                                    double /*now*/) {}
  /// A server crash wiped the task's stored checkpoint (lose_data faults).
  virtual void on_checkpoint_lost(const sched::TaskState& /*task*/, double /*now*/) {}
  /// A retrieve exhausted its retry budget; the replica restarts from
  /// `restart_progress` (always 0 under the from-scratch degradation rule).
  virtual void on_replica_degraded(const sched::TaskState& /*task*/,
                                   const grid::Machine& /*machine*/,
                                   double /*restart_progress*/, double /*now*/) {}

  /// Fired once when the event loop has drained (or hit the horizon), with
  /// the kernel's, the scheduler's, and the fault-injection cumulative
  /// counters for the run. Instrumentation that tracks simulator throughput
  /// or dispatch-path cost (e.g. the perf harness) hooks this.
  virtual void on_run_finished(const des::KernelStats& /*kernel*/,
                               const sched::SchedStats& /*sched*/, const FaultStats& /*faults*/,
                               double /*now*/) {}
};

/// Streams the tail-metrics columns of a run (docs/METRICS.md) into
/// caller-owned accumulators. In the workspace path the sketch sinks live
/// inside the SimulationResult retained by sim::SimulationWorkspace, so every
/// hook below is O(1) and allocation-free — the warmed run loop stays
/// zero-alloc with the columns enabled (tests/test_alloc_free.cpp).
///
/// Two columns stream during the run (completion gaps in event order, the
/// exponentially decayed busy-machine fraction); the per-bag
/// turnaround/slowdown columns are written by the result-assembly loop via
/// write_bag() so their population matches the OnlineStats aggregates
/// exactly (warmup filter applied, censored records included).
class ColumnWriter final : public SimulationObserver {
 public:
  /// Sketch sinks for the streamed columns; null entries disable a column.
  struct Sinks {
    stats::QuantileSketch* turnaround = nullptr;      ///< fed by write_bag()
    stats::QuantileSketch* slowdown = nullptr;        ///< fed by write_bag()
    stats::QuantileSketch* completion_gap = nullptr;  ///< fed on completions
  };

  /// `utilization_tau` is the decay time constant (seconds) of the
  /// busy-fraction average; Simulation::run passes horizon / 4 so the value
  /// reflects the load level of the run's final stretch.
  ColumnWriter(const Sinks& sinks, std::size_t num_machines, double utilization_tau)
      : sinks_(sinks),
        inv_machines_(num_machines > 0 ? 1.0 / static_cast<double>(num_machines) : 0.0),
        utilization_(utilization_tau) {}

  /// Writes one measured bag's turnaround/slowdown columns (called by the
  /// result-assembly loop for every bag past the warmup window).
  void write_bag(double turnaround, double slowdown) noexcept {
    if (sinks_.turnaround != nullptr) sinks_.turnaround->add(turnaround);
    if (sinks_.slowdown != nullptr) sinks_.slowdown->add(slowdown);
  }

  void on_bot_completed(const sched::BotState& /*bot*/, double now) override {
    if (has_completion_ && sinks_.completion_gap != nullptr) {
      sinks_.completion_gap->add(now - last_completion_);
    }
    has_completion_ = true;
    last_completion_ = now;
  }

  void on_replica_started(const sched::TaskState& /*task*/, const grid::Machine& /*machine*/,
                          double now) override {
    ++busy_;
    utilization_.update(now, static_cast<double>(busy_) * inv_machines_);
  }

  void on_replica_stopped(const sched::TaskState& /*task*/, const grid::Machine& /*machine*/,
                          ReplicaStopKind /*kind*/, double now) override {
    if (busy_ > 0) --busy_;
    utilization_.update(now, static_cast<double>(busy_) * inv_machines_);
  }

  /// The exponentially time-decayed busy-machine fraction at `now`.
  [[nodiscard]] double decayed_utilization(double now) const noexcept {
    return utilization_.average(now);
  }

 private:
  Sinks sinks_;
  double inv_machines_;
  std::size_t busy_ = 0;
  stats::TimeDecayedAverage utilization_;
  double last_completion_ = 0.0;
  bool has_completion_ = false;
};

}  // namespace dg::sim
