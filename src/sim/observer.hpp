// Simulation observation hooks.
//
// Observers receive every externally-meaningful event of a run: bag
// submissions/completions, replica starts/stops, checkpoint traffic, machine
// failures/repairs. They power the timeline exporter (visualization /
// debugging), the invariant checker (used heavily by the stress tests), and
// any user-side instrumentation, without the engine knowing about any of
// them. All hooks are no-ops by default.
#pragma once

#include <cstdint>

#include "des/event.hpp"
#include "grid/machine.hpp"
#include "sched/bot_state.hpp"
#include "sched/sched_stats.hpp"
#include "sched/task_state.hpp"
#include "sim/fault_tolerance.hpp"

namespace dg::sim {

enum class ReplicaStopKind : std::uint8_t {
  kCompleted,  // this replica finished the task
  kCancelled,  // a sibling finished first
  kFailed,     // host machine went down
};

class SimulationObserver {
 public:
  virtual ~SimulationObserver() = default;

  virtual void on_bot_submitted(const sched::BotState& /*bot*/, double /*now*/) {}
  virtual void on_bot_completed(const sched::BotState& /*bot*/, double /*now*/) {}

  virtual void on_replica_started(const sched::TaskState& /*task*/,
                                  const grid::Machine& /*machine*/, double /*now*/) {}
  virtual void on_replica_stopped(const sched::TaskState& /*task*/,
                                  const grid::Machine& /*machine*/, ReplicaStopKind /*kind*/,
                                  double /*now*/) {}
  virtual void on_task_completed(const sched::TaskState& /*task*/, double /*now*/) {}

  virtual void on_checkpoint_saved(const sched::TaskState& /*task*/,
                                   const grid::Machine& /*machine*/, double /*progress*/,
                                   double /*now*/) {}
  virtual void on_checkpoint_retrieved(const sched::TaskState& /*task*/,
                                       const grid::Machine& /*machine*/, double /*now*/) {}

  virtual void on_machine_failed(const grid::Machine& /*machine*/, double /*now*/) {}
  virtual void on_machine_repaired(const grid::Machine& /*machine*/, double /*now*/) {}

  // --- checkpoint-server fault injection (all no-ops unless the
  // --- grid::CheckpointServerFaultModel is enabled) ---

  /// The checkpoint server crashed / was repaired.
  virtual void on_server_down(double /*now*/) {}
  virtual void on_server_up(double /*now*/) {}
  /// One transfer attempt failed (refused while down, aborted by a crash, or
  /// timed out); the engine will retry or degrade.
  virtual void on_checkpoint_failed(const sched::TaskState& /*task*/,
                                    const grid::Machine& /*machine*/, bool /*is_save*/,
                                    double /*now*/) {}
  /// A server crash wiped the task's stored checkpoint (lose_data faults).
  virtual void on_checkpoint_lost(const sched::TaskState& /*task*/, double /*now*/) {}
  /// A retrieve exhausted its retry budget; the replica restarts from
  /// `restart_progress` (always 0 under the from-scratch degradation rule).
  virtual void on_replica_degraded(const sched::TaskState& /*task*/,
                                   const grid::Machine& /*machine*/,
                                   double /*restart_progress*/, double /*now*/) {}

  /// Fired once when the event loop has drained (or hit the horizon), with
  /// the kernel's, the scheduler's, and the fault-injection cumulative
  /// counters for the run. Instrumentation that tracks simulator throughput
  /// or dispatch-path cost (e.g. the perf harness) hooks this.
  virtual void on_run_finished(const des::KernelStats& /*kernel*/,
                               const sched::SchedStats& /*sched*/, const FaultStats& /*faults*/,
                               double /*now*/) {}
};

}  // namespace dg::sim
