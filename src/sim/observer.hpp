// Simulation observation hooks.
//
// Observers receive every externally-meaningful event of a run: bag
// submissions/completions, replica starts/stops, checkpoint traffic, machine
// failures/repairs. They power the timeline exporter (visualization /
// debugging), the invariant checker (used heavily by the stress tests), and
// any user-side instrumentation, without the engine knowing about any of
// them. All hooks are no-ops by default.
#pragma once

#include <cstdint>

#include "des/event.hpp"
#include "grid/machine.hpp"
#include "sched/bot_state.hpp"
#include "sched/sched_stats.hpp"
#include "sched/task_state.hpp"

namespace dg::sim {

enum class ReplicaStopKind : std::uint8_t {
  kCompleted,  // this replica finished the task
  kCancelled,  // a sibling finished first
  kFailed,     // host machine went down
};

class SimulationObserver {
 public:
  virtual ~SimulationObserver() = default;

  virtual void on_bot_submitted(const sched::BotState& /*bot*/, double /*now*/) {}
  virtual void on_bot_completed(const sched::BotState& /*bot*/, double /*now*/) {}

  virtual void on_replica_started(const sched::TaskState& /*task*/,
                                  const grid::Machine& /*machine*/, double /*now*/) {}
  virtual void on_replica_stopped(const sched::TaskState& /*task*/,
                                  const grid::Machine& /*machine*/, ReplicaStopKind /*kind*/,
                                  double /*now*/) {}
  virtual void on_task_completed(const sched::TaskState& /*task*/, double /*now*/) {}

  virtual void on_checkpoint_saved(const sched::TaskState& /*task*/,
                                   const grid::Machine& /*machine*/, double /*progress*/,
                                   double /*now*/) {}
  virtual void on_checkpoint_retrieved(const sched::TaskState& /*task*/,
                                       const grid::Machine& /*machine*/, double /*now*/) {}

  virtual void on_machine_failed(const grid::Machine& /*machine*/, double /*now*/) {}
  virtual void on_machine_repaired(const grid::Machine& /*machine*/, double /*now*/) {}

  /// Fired once when the event loop has drained (or hit the horizon), with
  /// the kernel's and the scheduler's cumulative cost counters for the run.
  /// Instrumentation that tracks simulator throughput or dispatch-path cost
  /// (e.g. the perf harness) hooks this.
  virtual void on_run_finished(const des::KernelStats& /*kernel*/,
                               const sched::SchedStats& /*sched*/, double /*now*/) {}
};

}  // namespace dg::sim
