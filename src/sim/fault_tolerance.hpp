// Recovery semantics for checkpoint traffic against a failable server.
//
// The paper's checkpoint server never fails, so WQR-FT never needed a retry
// story. With grid::CheckpointServerFaultModel enabled, every transfer can be
// refused (server down), aborted mid-flight (server crash), or time out; the
// execution engine then retries with capped exponential backoff, and when the
// retry budget is exhausted it *degrades gracefully*:
//
//   save exhausted      -> skip the save; the replica keeps computing from
//                          its last committed checkpoint (that leg's progress
//                          is simply at risk until the next successful save);
//   retrieve exhausted  -> restart from scratch: the replica recomputes from
//                          progress 0 instead of wedging on the server.
//
// These types are plain config/counters shared by the engine, the simulation
// result, config IO and the benches.
#pragma once

#include <cstdint>

namespace dg::sim {

/// Retry policy for one checkpoint transfer (save or retrieve).
/// Attempt n waits min(backoff_base * 2^(n-1), backoff_cap) after failure n.
struct TransferRetryPolicy {
  /// Total attempts per transfer before degrading (>= 1).
  int max_attempts = 4;
  /// Backoff after the first failed attempt, seconds (> 0).
  double backoff_base = 30.0;
  /// Backoff ceiling, seconds (> 0).
  double backoff_cap = 480.0;
  /// Per-attempt wall-clock budget, seconds; an attempt whose transfer would
  /// finish later than this is abandoned at the deadline. 0 disables the
  /// timeout (attempts only fail on server outages).
  double attempt_timeout = 1440.0;

  /// Backoff delay after failed attempt number `attempt` (1-based).
  [[nodiscard]] double backoff_after(int attempt) const noexcept {
    double delay = backoff_base;
    for (int i = 1; i < attempt && delay < backoff_cap; ++i) delay *= 2.0;
    return delay < backoff_cap ? delay : backoff_cap;
  }
};

/// Fault-injection and recovery counters for one run, reported in
/// sim::SimulationResult next to KernelStats / SchedStats.
struct FaultStats {
  /// Checkpoint-server crashes observed.
  std::uint64_t server_outages = 0;
  /// Total simulated seconds the server spent down.
  double server_downtime = 0.0;
  /// Failed save attempts (refused, aborted, or timed out).
  std::uint64_t save_attempts_failed = 0;
  /// Failed retrieve attempts.
  std::uint64_t retrieve_attempts_failed = 0;
  /// Backoff retries scheduled (= failed attempts that had budget left).
  std::uint64_t transfer_retries = 0;
  /// Attempts abandoned at the per-attempt timeout.
  std::uint64_t transfer_timeouts = 0;
  /// Saves skipped after exhausting the retry budget.
  std::uint64_t saves_skipped = 0;
  /// Replicas degraded to restart-from-scratch after a retrieve exhausted
  /// its retry budget.
  std::uint64_t replicas_degraded = 0;
  /// Stored checkpoints wiped by server crashes (lose_data faults).
  std::uint64_t checkpoints_lost = 0;
};

}  // namespace dg::sim
