// One complete simulation run: grid + workload + scheduler + engine.
//
// Simulation owns every component, wires the notification paths, schedules
// bag submissions as arrival events, runs to completion (or to the saturation
// horizon) and returns a SimulationResult with per-bag records and aggregate
// metrics. Runs are bitwise deterministic for a given (config, seed), and the
// workload / machine processes depend only on the seed — not on the policy —
// so policies can be compared under common random numbers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "des/event.hpp"
#include "des/queue_policy.hpp"
#include "grid/desktop_grid.hpp"
#include "grid/trace.hpp"
#include "grid/world_cache.hpp"
#include "sched/individual.hpp"
#include "sched/policy.hpp"
#include "sched/sched_stats.hpp"
#include "sim/adversary.hpp"
#include "sim/fault_tolerance.hpp"
#include "stats/online_stats.hpp"
#include "stats/quantile_sketch.hpp"
#include "workload/generator.hpp"

namespace dg::sim {

struct SimulationConfig {
  grid::GridConfig grid;
  workload::WorkloadConfig workload;
  sched::PolicyKind policy = sched::PolicyKind::kFcfsShare;
  sched::IndividualSchedulerKind individual = sched::IndividualSchedulerKind::kWqrFt;
  /// Replication threshold override; 0 keeps the individual scheduler's
  /// default (2 for WQR/WQR-FT). Ignored by FCFS-Excl (unlimited).
  int replication_threshold = 0;
  /// Use the adaptive threshold controller (future-work extension 2a).
  bool dynamic_replication = false;
  std::uint64_t seed = 1;
  /// Retry/backoff policy for checkpoint transfers; only consulted when
  /// `grid.checkpoint_server_faults` is enabled (or the adversary forces
  /// server downtime).
  TransferRetryPolicy checkpoint_retry{};
  /// Adversarial scenario director (see sim/adversary.hpp): deterministic
  /// stress windows where arrival bursts, correlated machine outages, and
  /// checkpoint-server downtime coincide. Disabled (the default) leaves the
  /// run bit-identical to a config without the field — its RNG stream is
  /// derived only when enabled. Requires Poisson arrivals and no trace_bots.
  AdversarialScenario adversary{};
  /// Hard stop; 0 = auto (comfortably past the last arrival plus drain time).
  /// Hitting it with incomplete bags marks the run saturated.
  double max_sim_time = 0.0;
  /// Bags (in arrival order) excluded from the aggregate statistics to damp
  /// the empty-system transient.
  std::size_t warmup_bots = 0;

  /// Replay this submission stream instead of sampling from `workload`
  /// (which then only matters for reporting). See workload/trace.hpp.
  std::shared_ptr<const std::vector<workload::BotSpec>> trace_bots;
  /// Replay machine availability from this trace instead of the stochastic
  /// Weibull/normal processes. `grid.availability` should still describe the
  /// trace's statistics — it sizes the checkpoint interval and arrival-rate
  /// math. See grid/trace.hpp.
  std::shared_ptr<const grid::AvailabilityTrace> availability_trace;

  /// Shared world-realization cache: the run acquires its (availability +
  /// checkpoint-server fault + correlated-outage) timelines — synthesized once per (models,
  /// machine count, seed) — and replays them through the cursor drivers of
  /// grid/realization.hpp instead of sampling the live processes.
  /// Bit-identical to the live path (same streams, same draw order, same
  /// event schedule); exp::ExperimentRunner installs its cache here so every
  /// policy cell of a replication shares one realization. Null (the default)
  /// = live processes. Ignored when `availability_trace` is set.
  std::shared_ptr<grid::WorldCache> world_cache;

  /// Sampling period of the queue monitor (active bags / busy machines time
  /// series); 0 = auto (~512 samples across the horizon).
  double monitor_interval = 0.0;

  /// DES event-queue backend for this run; nullopt keeps whatever the
  /// simulator (or workspace) was constructed with — the DGSCHED_QUEUE
  /// CMake/env default. Backends are bit-identical (see
  /// des/queue_policy.hpp); this only trades queue-maintenance cost.
  std::optional<des::QueueBackend> queue_backend;

  /// Test hook: wraps the freshly constructed bag-selection policy before
  /// the scheduler takes ownership — e.g. in a decorator asserting select()
  /// postconditions on every dispatch. Must return a policy with identical
  /// decisions; leave empty outside tests.
  std::function<std::unique_ptr<sched::BagSelectionPolicy>(
      std::unique_ptr<sched::BagSelectionPolicy>)>
      wrap_policy;

  /// Test hooks bracketing the event-loop drive (the call to run_until):
  /// before_run_loop fires after setup (grid/scheduler/workload built,
  /// arrivals scheduled), after_run_loop before result assembly. Used by the
  /// allocation-interposer tests to meter the run loop; leave empty
  /// otherwise.
  std::function<void()> before_run_loop;
  std::function<void()> after_run_loop;
};

struct BotRecord {
  workload::BotId id = 0;
  double arrival_time = 0.0;
  double first_dispatch_time = 0.0;
  double completion_time = 0.0;
  double turnaround = 0.0;  // censored at the horizon when !completed
  double waiting_time = 0.0;
  double makespan = 0.0;
  double granularity = 0.0;
  std::size_t num_tasks = 0;
  double total_work = 0.0;
  /// turnaround / ideal service time (bag work / effective grid power) —
  /// a slowdown of 1 means the bag ran as if it owned the whole grid.
  double slowdown = 0.0;
  bool completed = false;
};

/// One sample of the queue monitor time series.
struct MonitorSample {
  double time = 0.0;
  std::size_t active_bots = 0;    // submitted, not yet completed
  std::size_t busy_machines = 0;
  std::size_t up_machines = 0;
};

struct SimulationResult {
  /// All generated bags in arrival order.
  std::vector<BotRecord> bots;
  /// Aggregates over measured bags (arrival index >= warmup). Censored
  /// turnarounds of unfinished bags are included, so under saturation the
  /// means are lower bounds.
  stats::OnlineStats turnaround;
  stats::OnlineStats waiting;
  stats::OnlineStats makespan;
  stats::OnlineStats slowdown;
  /// Tail sketches over the same measured-bag population as the OnlineStats
  /// aggregates above (warmup filter applied, censored records included).
  /// Mergeable across replications with exact, order-independent counts —
  /// exp::ExperimentRunner folds them per cell. See docs/METRICS.md.
  stats::QuantileSketch turnaround_tail;
  stats::QuantileSketch slowdown_tail;
  /// Gaps between consecutive bag completions, streamed in event order over
  /// the whole run (no warmup filter; the column starts at the second
  /// completion). Long p99 gaps flag completion droughts — stalls the mean
  /// throughput hides.
  stats::QuantileSketch completion_gap_tail;
  /// True when the horizon was reached with incomplete bags — the paper's
  /// "turnaround grew beyond any reasonable limit".
  bool saturated = false;
  /// Mean active-bag count in the last quarter of the run over the first
  /// quarter (values >> 1 indicate an unstable, growing queue even when the
  /// run nominally finished). 1 when the monitor has too few samples.
  double queue_growth_ratio = 1.0;
  /// Periodic samples of system state (bounded; ~512 across the run).
  std::vector<MonitorSample> monitor;
  std::size_t bots_completed = 0;
  double end_time = 0.0;
  double utilization = 0.0;
  /// Exponentially time-decayed busy-machine fraction at the end of the run
  /// (decay time constant = horizon / 4) — the recency-weighted sibling of
  /// `utilization`, emphasizing the run's final stretch.
  double decayed_utilization = 0.0;
  double measured_availability = 0.0;
  std::size_t num_machines = 0;
  std::uint64_t machine_failures = 0;
  std::uint64_t replica_failures = 0;
  std::uint64_t replicas_started = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t checkpoints_saved = 0;
  std::uint64_t checkpoint_retrievals = 0;
  double wasted_compute_time = 0.0;
  double useful_compute_time = 0.0;
  double lost_work = 0.0;
  std::uint64_t events_executed = 0;
  /// DES kernel counters for this run (events scheduled/fired/cancelled,
  /// heap peak, arena slab allocations) — the raw material of the perf
  /// trajectory; see docs/BENCHMARKING.md.
  des::KernelStats kernel;
  /// Dispatch-path cost counters (triggers, machines examined, policy
  /// selects, index updates) — the scheduler-layer sibling of `kernel`.
  sched::SchedStats sched;
  /// Checkpoint-server fault-injection and recovery counters (all zero when
  /// the server fault model is disabled — the default).
  FaultStats faults;

  /// Wasted / (wasted + useful) replica compute time.
  [[nodiscard]] double wasted_fraction() const noexcept {
    const double total = wasted_compute_time + useful_compute_time;
    return total > 0.0 ? wasted_compute_time / total : 0.0;
  }

  /// Jain's fairness index over the measured bags' slowdowns:
  /// (sum x)^2 / (n * sum x^2), in (0, 1]; 1 = perfectly equal slowdowns.
  [[nodiscard]] double slowdown_fairness() const noexcept;
};

class SimulationObserver;
class SimulationWorkspace;

class Simulation {
 public:
  explicit Simulation(SimulationConfig config) : config_(std::move(config)) {}

  /// Runs the simulation to completion (or saturation horizon). When an
  /// observer is passed it receives every bag/replica/checkpoint/machine
  /// event (see sim/observer.hpp); its lifetime must cover the call.
  /// Delegates to the workspace overload below with a run-local workspace.
  [[nodiscard]] SimulationResult run(SimulationObserver* observer = nullptr);

  /// Runs inside `workspace`, reusing its simulator, memory pool, and
  /// buffers (see sim/workspace.hpp). Bit-identical to run() for the same
  /// (config, seed) apart from the arena allocation counters. The returned
  /// reference lives in the workspace and is overwritten by the next run
  /// through it; one workspace serves one run at a time, on one thread.
  [[nodiscard]] const SimulationResult& run(SimulationWorkspace& workspace,
                                            SimulationObserver* observer = nullptr);

  [[nodiscard]] const SimulationConfig& config() const noexcept { return config_; }

 private:
  SimulationConfig config_;
};

/// Convenience: builds the paper's workload for (granularity, intensity) on
/// `grid_config` — arrival rate from the target utilization via Eq. (1).
[[nodiscard]] workload::WorkloadConfig make_paper_workload(const grid::GridConfig& grid_config,
                                                           double granularity,
                                                           workload::Intensity intensity,
                                                           std::size_t num_bots,
                                                           double bag_size = 2.5e6);

}  // namespace dg::sim
