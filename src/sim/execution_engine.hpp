// Replica execution on Desktop Grid machines.
//
// A replica advances through compute legs separated by checkpoint saves
// (Young-interval spaced, when checkpointing is on). Restarted replicas first
// retrieve the task's latest checkpoint from the checkpoint server. A machine
// failure kills the replica on it, losing all progress since the last
// committed checkpoint. When a replica finishes its task, every sibling
// replica is cancelled and its machine freed.
//
// With `EngineConfig::failable_server`, checkpoint transfers run under the
// recovery state machine of sim/fault_tolerance.hpp: an attempt can be
// refused (server down), aborted (server crash with abort_transfers), or
// abandoned at the per-attempt timeout; failed attempts retry with capped
// exponential backoff, and an exhausted budget degrades gracefully (save:
// skip and keep computing; retrieve: restart from scratch). The default
// (failable_server = false) is the paper's reliable server, bit-identical to
// the historical engine.
//
// Call-order contract with MultiBotScheduler (the scheduler's bucket and
// policy indices rely on it):
//   start:      machine.set_busy -> task.on_replica_started
//               -> scheduler.notify_replica_started
//   completion: task.mark_completed -> scheduler.notify_task_completed
//               -> per replica (winner + siblings): free machine,
//                  task.on_replica_stopped, scheduler.notify_replica_stopped
//               -> scheduler.trigger
//   failure:    free machine -> task.on_replica_stopped
//               -> scheduler.notify_replica_stopped(kFailed)
//               -> scheduler.trigger
#pragma once

#include <cstdint>
#include <memory>
#include <memory_resource>
#include <optional>
#include <vector>

#include "des/simulator.hpp"
#include "grid/desktop_grid.hpp"
#include "grid/realization.hpp"
#include "rng/random_stream.hpp"
#include "sched/scheduler.hpp"
#include "sim/fault_tolerance.hpp"
#include "sim/observer.hpp"
#include "stats/online_stats.hpp"

namespace dg::sim {

struct EngineConfig {
  /// Replicas checkpoint to the checkpoint server (WQR-FT).
  bool checkpointing = true;
  /// Compute seconds between checkpoint saves (Young's formula); must be
  /// positive when checkpointing is enabled.
  double checkpoint_interval = 0.0;
  /// Run checkpoint transfers under the retry/backoff/degradation state
  /// machine (required — and implied by Simulation — when server_faults is
  /// enabled; tests may set it alone and inject server outages by hand).
  bool failable_server = false;
  /// Stochastic checkpoint-server outage process (engine-owned; draws from
  /// its own RandomStream so every other stream is untouched).
  grid::CheckpointServerFaultModel server_faults{};
  /// Retry policy for checkpoint transfers when failable_server is set.
  TransferRetryPolicy retry{};
  /// Deterministic server downtime windows (the adversarial scenario
  /// director, sim/adversary.hpp): the server is forced down over each
  /// [start, end), composing with the stochastic fault process through the
  /// server's down-cause counting. Requires failable_server. Windows must be
  /// sorted ascending with end > start.
  std::vector<grid::StressWindow> server_down_windows;
  /// When set (by Simulation, from the world-realization cache), the server
  /// outage timeline is replayed from this realization instead of sampling
  /// the live fault process — bit-identical (see grid/realization.hpp).
  std::shared_ptr<const grid::WorldRealization> world;
};

class ExecutionEngine final : public sched::DispatchSink {
 public:
  /// The replica table allocates from `mem` (default: global heap; see
  /// sim::SimulationWorkspace for the pooled per-replication alternative).
  ExecutionEngine(des::Simulator& sim, grid::DesktopGrid& grid,
                  sched::MultiBotScheduler& scheduler, EngineConfig config, std::uint64_t seed,
                  std::pmr::memory_resource* mem = std::pmr::get_default_resource());

  ExecutionEngine(const ExecutionEngine&) = delete;
  ExecutionEngine& operator=(const ExecutionEngine&) = delete;
  ~ExecutionEngine() override;

  // DispatchSink
  void start_replica(sched::TaskState& task, grid::Machine& machine) override;

  // Wire these into DesktopGrid::start().
  void on_machine_failure(grid::Machine& machine);
  void on_machine_repair(grid::Machine& machine);

  // Checkpoint-server availability edges. Driven by the engine-owned
  // CheckpointServerFaultProcess; tests flip the server state by hand
  // (CheckpointServer::set_down / set_up) and then call these.
  void on_server_down();
  void on_server_up();

  /// Registers an observer for replica/checkpoint/machine events (the
  /// caller keeps ownership; lifetime must cover the run).
  void add_observer(SimulationObserver& observer) { observers_.push_back(&observer); }

  // --- statistics ---

  [[nodiscard]] std::uint64_t checkpoints_saved() const noexcept { return checkpoints_saved_; }
  /// Completed checkpoint retrievals (transfers cut short by a machine
  /// failure are not counted).
  [[nodiscard]] std::uint64_t checkpoint_retrievals() const noexcept { return retrievals_; }
  [[nodiscard]] std::uint64_t replicas_killed_by_failure() const noexcept {
    return failed_replicas_;
  }
  [[nodiscard]] std::uint64_t replicas_cancelled() const noexcept { return cancelled_replicas_; }
  /// Compute time invested in replicas that did not win their task.
  [[nodiscard]] double wasted_compute_time() const noexcept { return wasted_compute_time_; }
  /// Compute time invested in winning replicas.
  [[nodiscard]] double useful_compute_time() const noexcept { return useful_compute_time_; }
  /// Work units lost to failures (progress past the last checkpoint).
  [[nodiscard]] double lost_work() const noexcept { return lost_work_; }
  /// Time-averaged fraction of total grid power busy with replicas.
  [[nodiscard]] double utilization(des::SimTime now) const noexcept {
    return busy_power_.time_average(now) / grid_.total_power();
  }
  /// Fault-injection / recovery counters for the run so far; server outage
  /// count and downtime are read back from the server at `now`.
  [[nodiscard]] FaultStats fault_stats(des::SimTime now) const noexcept;

 private:
  enum class Phase : std::uint8_t { kRetrieving, kComputing, kCheckpointing };

  /// One machine's replica slot. Slots live by value in `replicas_` (one per
  /// machine id); `task == nullptr` marks an idle machine — no per-dispatch
  /// heap allocation.
  struct Replica {
    sched::TaskState* task = nullptr;
    grid::Machine* machine = nullptr;
    Phase phase = Phase::kComputing;
    /// Work completed by this replica up to the start of the current leg.
    double progress_base = 0.0;
    /// Simulation time the current compute leg started (kComputing only).
    double leg_start = 0.0;
    /// Total compute time this replica has accumulated.
    double compute_invested = 0.0;
    des::EventHandle next_event;
    /// Failed attempts of the current transfer (reset on success/degrade).
    int transfer_attempts = 0;
    /// A transfer slot reservation is outstanding (cancel it if the replica
    /// dies, completes, or times out before `transfer.completion`).
    bool transfer_inflight = false;
    grid::CheckpointServer::Transfer transfer{};
  };

  [[nodiscard]] Replica* replica_at(grid::MachineId machine_id) noexcept {
    Replica& slot = replicas_[machine_id];
    return slot.task != nullptr ? &slot : nullptr;
  }
  [[nodiscard]] Replica* replica_on(const grid::Machine& machine) noexcept {
    return replica_at(machine.id());
  }
  void begin_compute(Replica& replica);
  void on_checkpoint_begin(grid::MachineId machine_id);
  void on_checkpoint_end(grid::MachineId machine_id);
  void on_retrieve_done(grid::MachineId machine_id);
  void on_complete(grid::MachineId machine_id);
  /// Frees the machine and clears the replica slot (event must already be
  /// cancelled / expired). Returns the detached record by value.
  Replica detach_replica(grid::MachineId machine_id);
  void set_machine_busy(grid::Machine& machine, bool busy);

  // --- failable-server transfer state machine ---

  /// Starts (or retries) the transfer implied by replica.phase
  /// (kCheckpointing = save, kRetrieving = retrieve).
  void begin_transfer(Replica& replica);
  void on_transfer_timeout(grid::MachineId machine_id);
  /// One attempt failed: retry after backoff, or degrade when exhausted.
  void transfer_attempt_failed(Replica& replica);
  /// Releases the replica's outstanding slot reservation, if any.
  void drop_inflight_transfer(Replica& replica);

  des::Simulator& sim_;
  grid::DesktopGrid& grid_;
  sched::MultiBotScheduler& scheduler_;
  EngineConfig config_;
  rng::RandomStream transfer_stream_;
  std::pmr::vector<Replica> replicas_;  // indexed by machine id; task==nullptr = idle
  std::vector<SimulationObserver*> observers_;
  std::unique_ptr<grid::CheckpointServerFaultProcess> fault_process_;
  /// Replay alternative to fault_process_ (exactly one of the two drives the
  /// server when config_.server_faults is enabled).
  std::optional<grid::RealizedServerFaultDriver> server_replay_;
  FaultStats faults_;

  std::uint64_t checkpoints_saved_ = 0;
  std::uint64_t retrievals_ = 0;
  std::uint64_t failed_replicas_ = 0;
  std::uint64_t cancelled_replicas_ = 0;
  double wasted_compute_time_ = 0.0;
  double useful_compute_time_ = 0.0;
  double lost_work_ = 0.0;
  stats::TimeWeightedStats busy_power_;
  double busy_power_now_ = 0.0;
};

}  // namespace dg::sim
