#include "sim/execution_engine.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace dg::sim {

ExecutionEngine::ExecutionEngine(des::Simulator& sim, grid::DesktopGrid& grid,
                                 sched::MultiBotScheduler& scheduler, EngineConfig config,
                                 std::uint64_t seed)
    : sim_(sim), grid_(grid), scheduler_(scheduler), config_(config),
      transfer_stream_(rng::RandomStream::derive(seed, "engine.transfer")),
      replicas_(grid.size()) {
  if (config_.checkpointing) {
    DG_ASSERT_MSG(config_.checkpoint_interval > 0.0,
                  "checkpointing requires a positive checkpoint interval");
  }
  scheduler_.set_sink(*this);
}

ExecutionEngine::~ExecutionEngine() = default;

void ExecutionEngine::set_machine_busy(grid::Machine& machine, bool busy) {
  if (machine.busy() == busy) return;
  machine.set_busy(busy);
  busy_power_now_ += busy ? machine.power() : -machine.power();
  busy_power_.update(sim_.now(), busy_power_now_);
}

void ExecutionEngine::start_replica(sched::TaskState& task, grid::Machine& machine) {
  DG_ASSERT_MSG(machine.available(), "dispatch to a busy or down machine");
  DG_ASSERT(!task.completed());
  set_machine_busy(machine, true);
  task.on_replica_started(sim_.now());
  scheduler_.notify_replica_started(task);
  for (SimulationObserver* observer : observers_) {
    observer->on_replica_started(task, machine, sim_.now());
  }

  auto replica = std::make_unique<Replica>();
  replica->task = &task;
  replica->machine = &machine;
  replica->progress_base = config_.checkpointing ? task.checkpointed_work() : 0.0;
  Replica& ref = *replica;
  DG_ASSERT_MSG(replicas_[machine.id()] == nullptr, "machine already hosts a replica");
  replicas_[machine.id()] = std::move(replica);

  if (config_.checkpointing && ref.progress_base > 0.0) {
    // Restart: fetch the latest checkpoint from the server first.
    ref.phase = Phase::kRetrieving;
    const double completion =
        grid_.checkpoint_server().schedule_retrieve(sim_.now(), transfer_stream_);
    const grid::MachineId id = machine.id();
    ref.next_event = sim_.schedule_at(completion, [this, id] { on_retrieve_done(id); });
  } else {
    begin_compute(ref);
  }
}

void ExecutionEngine::begin_compute(Replica& replica) {
  replica.phase = Phase::kComputing;
  replica.leg_start = sim_.now();
  const double power = replica.machine->power();
  const double remaining = replica.task->work() - replica.progress_base;
  DG_ASSERT_MSG(remaining > 0.0, "compute leg with no remaining work");
  const double time_to_complete = remaining / power;
  const grid::MachineId id = replica.machine->id();
  if (config_.checkpointing && time_to_complete > config_.checkpoint_interval) {
    replica.next_event = sim_.schedule_after(config_.checkpoint_interval,
                                             [this, id] { on_checkpoint_begin(id); });
  } else {
    replica.next_event = sim_.schedule_after(time_to_complete, [this, id] { on_complete(id); });
  }
}

void ExecutionEngine::on_retrieve_done(grid::MachineId machine_id) {
  Replica* replica = replicas_[machine_id].get();
  DG_ASSERT(replica != nullptr && replica->phase == Phase::kRetrieving);
  ++retrievals_;  // counted on completion; a failure mid-transfer doesn't count
  for (SimulationObserver* observer : observers_) {
    observer->on_checkpoint_retrieved(*replica->task, *replica->machine, sim_.now());
  }
  begin_compute(*replica);
}

void ExecutionEngine::on_checkpoint_begin(grid::MachineId machine_id) {
  Replica* replica = replicas_[machine_id].get();
  DG_ASSERT(replica != nullptr && replica->phase == Phase::kComputing);
  const double leg = sim_.now() - replica->leg_start;
  replica->compute_invested += leg;
  replica->progress_base += leg * replica->machine->power();
  replica->phase = Phase::kCheckpointing;
  const double completion =
      grid_.checkpoint_server().schedule_save(sim_.now(), transfer_stream_);
  replica->next_event =
      sim_.schedule_at(completion, [this, machine_id] { on_checkpoint_end(machine_id); });
}

void ExecutionEngine::on_checkpoint_end(grid::MachineId machine_id) {
  Replica* replica = replicas_[machine_id].get();
  DG_ASSERT(replica != nullptr && replica->phase == Phase::kCheckpointing);
  replica->task->commit_checkpoint(replica->progress_base);
  ++checkpoints_saved_;
  for (SimulationObserver* observer : observers_) {
    observer->on_checkpoint_saved(*replica->task, *replica->machine, replica->progress_base,
                                  sim_.now());
  }
  begin_compute(*replica);
}

std::unique_ptr<ExecutionEngine::Replica> ExecutionEngine::detach_replica(
    grid::MachineId machine_id) {
  std::unique_ptr<Replica> replica = std::move(replicas_[machine_id]);
  DG_ASSERT(replica != nullptr);
  set_machine_busy(*replica->machine, false);
  return replica;
}

void ExecutionEngine::on_complete(grid::MachineId machine_id) {
  Replica* winner = replicas_[machine_id].get();
  DG_ASSERT(winner != nullptr && winner->phase == Phase::kComputing);
  winner->compute_invested += sim_.now() - winner->leg_start;
  winner->progress_base = winner->task->work();
  sched::TaskState& task = *winner->task;

  task.mark_completed(sim_.now());
  scheduler_.notify_task_completed(task);
  for (SimulationObserver* observer : observers_) {
    observer->on_task_completed(task, sim_.now());
  }

  // Stop the winner and every sibling replica (freeing their machines).
  for (grid::MachineId id = 0; id < replicas_.size(); ++id) {
    Replica* candidate = replicas_[id].get();
    if (candidate == nullptr || candidate->task != &task) continue;
    const bool is_winner = candidate == winner;
    if (!is_winner) {
      candidate->next_event.cancel();
      if (candidate->phase == Phase::kComputing) {
        candidate->compute_invested += sim_.now() - candidate->leg_start;
      }
      ++cancelled_replicas_;
      wasted_compute_time_ += candidate->compute_invested;
    } else {
      useful_compute_time_ += candidate->compute_invested;
    }
    std::unique_ptr<Replica> owned = detach_replica(id);
    task.on_replica_stopped(sim_.now());
    scheduler_.notify_replica_stopped(task, is_winner
                                                ? sched::MultiBotScheduler::StopReason::kWinner
                                                : sched::MultiBotScheduler::StopReason::kCancelled);
    for (SimulationObserver* observer : observers_) {
      observer->on_replica_stopped(
          task, *owned->machine,
          is_winner ? ReplicaStopKind::kCompleted : ReplicaStopKind::kCancelled, sim_.now());
    }
  }
  DG_ASSERT(task.running_replicas() == 0);
  scheduler_.trigger();
}

void ExecutionEngine::on_machine_failure(grid::Machine& machine) {
  for (SimulationObserver* observer : observers_) {
    observer->on_machine_failed(machine, sim_.now());
  }
  Replica* replica = replica_on(machine);
  if (replica == nullptr) return;  // idle machine went down
  replica->next_event.cancel();
  sched::TaskState& task = *replica->task;
  double progress = replica->progress_base;
  if (replica->phase == Phase::kComputing) {
    const double leg = sim_.now() - replica->leg_start;
    replica->compute_invested += leg;
    progress += leg * machine.power();
  }
  // Everything past the task's last committed checkpoint is lost.
  lost_work_ += std::max(0.0, progress - task.checkpointed_work());
  wasted_compute_time_ += replica->compute_invested;
  ++failed_replicas_;
  std::unique_ptr<Replica> owned = detach_replica(machine.id());
  task.on_replica_stopped(sim_.now());
  scheduler_.notify_replica_stopped(task, sched::MultiBotScheduler::StopReason::kFailed);
  for (SimulationObserver* observer : observers_) {
    observer->on_replica_stopped(task, machine, ReplicaStopKind::kFailed, sim_.now());
  }
  // A resubmission candidate may now be dispatchable on other idle machines.
  scheduler_.trigger();
}

void ExecutionEngine::on_machine_repair(grid::Machine& machine) {
  DG_ASSERT(machine.up());
  DG_ASSERT(replica_on(machine) == nullptr);
  for (SimulationObserver* observer : observers_) {
    observer->on_machine_repaired(machine, sim_.now());
  }
  scheduler_.notify_capacity_change(machine);
}

}  // namespace dg::sim
