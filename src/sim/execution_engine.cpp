#include "sim/execution_engine.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace dg::sim {

ExecutionEngine::ExecutionEngine(des::Simulator& sim, grid::DesktopGrid& grid,
                                 sched::MultiBotScheduler& scheduler, EngineConfig config,
                                 std::uint64_t seed, std::pmr::memory_resource* mem)
    : sim_(sim), grid_(grid), scheduler_(scheduler), config_(config),
      transfer_stream_(rng::RandomStream::derive(seed, "engine.transfer")),
      replicas_(grid.size(), Replica{}, mem) {
  if (config_.checkpointing) {
    DG_ASSERT_MSG(config_.checkpoint_interval > 0.0,
                  "checkpointing requires a positive checkpoint interval");
  }
  if (config_.server_faults.enabled) {
    DG_ASSERT_MSG(config_.failable_server,
                  "a stochastic server fault model requires the failable-server path");
    if (config_.world != nullptr) {
      // Replay the cached outage timeline — recorded from the same
      // "ckpt_server.faults" stream the live process would have consumed.
      server_replay_.emplace(sim_, grid_.checkpoint_server(), *config_.world);
      server_replay_->start([this] { on_server_down(); }, [this] { on_server_up(); });
    } else {
      fault_process_ = std::make_unique<grid::CheckpointServerFaultProcess>(
          sim_, grid_.checkpoint_server(), config_.server_faults,
          rng::RandomStream::derive(seed, "ckpt_server.faults"));
      fault_process_->start([this] { on_server_down(); }, [this] { on_server_up(); });
    }
  }
  if (!config_.server_down_windows.empty()) {
    DG_ASSERT_MSG(config_.failable_server,
                  "server stress windows require the failable-server path");
    // One forced down/up pair per window, scheduled in window order (after
    // the fault process's first crash, matching the adversary's position in
    // the setup sequence). Edges compose with the stochastic fault process
    // via the server's down-cause counting: the engine callbacks fire only
    // on real up/down transitions.
    for (const grid::StressWindow& window : config_.server_down_windows) {
      DG_ASSERT_MSG(window.end > window.start,
                    "server stress window end must exceed its start");
      sim_.schedule_at(window.start, [this] {
        if (grid_.checkpoint_server().force_down(sim_.now())) on_server_down();
      });
      sim_.schedule_at(window.end, [this] {
        if (grid_.checkpoint_server().release_down(sim_.now())) on_server_up();
      });
    }
  }
  scheduler_.set_sink(*this);
}

ExecutionEngine::~ExecutionEngine() = default;

void ExecutionEngine::set_machine_busy(grid::Machine& machine, bool busy) {
  if (machine.busy() == busy) return;
  machine.set_busy(busy);
  busy_power_now_ += busy ? machine.power() : -machine.power();
  busy_power_.update(sim_.now(), busy_power_now_);
}

void ExecutionEngine::start_replica(sched::TaskState& task, grid::Machine& machine) {
  DG_ASSERT_MSG(machine.available(), "dispatch to a busy or down machine");
  DG_ASSERT(!task.completed());
  set_machine_busy(machine, true);
  task.on_replica_started(sim_.now());
  scheduler_.notify_replica_started(task);
  for (SimulationObserver* observer : observers_) {
    observer->on_replica_started(task, machine, sim_.now());
  }

  Replica& ref = replicas_[machine.id()];
  DG_ASSERT_MSG(ref.task == nullptr, "machine already hosts a replica");
  ref = Replica{};
  ref.task = &task;
  ref.machine = &machine;
  ref.progress_base = config_.checkpointing ? task.checkpointed_work() : 0.0;

  if (config_.checkpointing && ref.progress_base > 0.0) {
    // Restart: fetch the latest checkpoint from the server first.
    ref.phase = Phase::kRetrieving;
    begin_transfer(ref);
  } else {
    begin_compute(ref);
  }
}

void ExecutionEngine::begin_transfer(Replica& replica) {
  DG_ASSERT(replica.phase == Phase::kRetrieving || replica.phase == Phase::kCheckpointing);
  DG_ASSERT(!replica.transfer_inflight);
  const bool is_save = replica.phase == Phase::kCheckpointing;
  grid::CheckpointServer& server = grid_.checkpoint_server();
  const grid::MachineId id = replica.machine->id();

  if (config_.failable_server) {
    ++replica.transfer_attempts;
    if (!server.up()) {
      // Refused outright — no transfer-time draw, so the recovery machinery
      // touches the transfer stream only when bytes actually move.
      transfer_attempt_failed(replica);
      return;
    }
  }

  replica.transfer = is_save ? server.begin_save(sim_.now(), transfer_stream_)
                             : server.begin_retrieve(sim_.now(), transfer_stream_);
  replica.transfer_inflight = true;

  const double timeout = config_.retry.attempt_timeout;
  if (config_.failable_server && timeout > 0.0 &&
      replica.transfer.completion > sim_.now() + timeout) {
    // The transfer (incl. slot queueing) would blow the per-attempt budget;
    // abandon it at the deadline instead of occupying the slot to the end.
    replica.next_event = sim_.schedule_after(timeout, [this, id] { on_transfer_timeout(id); });
    return;
  }
  if (is_save) {
    replica.next_event =
        sim_.schedule_at(replica.transfer.completion, [this, id] { on_checkpoint_end(id); });
  } else {
    replica.next_event =
        sim_.schedule_at(replica.transfer.completion, [this, id] { on_retrieve_done(id); });
  }
}

void ExecutionEngine::on_transfer_timeout(grid::MachineId machine_id) {
  Replica* replica = replica_at(machine_id);
  DG_ASSERT(replica != nullptr && replica->transfer_inflight);
  ++faults_.transfer_timeouts;
  drop_inflight_transfer(*replica);
  transfer_attempt_failed(*replica);
}

void ExecutionEngine::drop_inflight_transfer(Replica& replica) {
  if (!replica.transfer_inflight) return;
  grid_.checkpoint_server().cancel_transfer(replica.transfer, sim_.now());
  replica.transfer_inflight = false;
}

void ExecutionEngine::transfer_attempt_failed(Replica& replica) {
  DG_ASSERT(config_.failable_server);
  DG_ASSERT(!replica.transfer_inflight);
  const bool is_save = replica.phase == Phase::kCheckpointing;
  if (is_save) {
    ++faults_.save_attempts_failed;
  } else {
    ++faults_.retrieve_attempts_failed;
  }
  for (SimulationObserver* observer : observers_) {
    observer->on_checkpoint_failed(*replica.task, *replica.machine, is_save, sim_.now());
  }

  if (replica.transfer_attempts < config_.retry.max_attempts) {
    ++faults_.transfer_retries;
    const double delay = config_.retry.backoff_after(replica.transfer_attempts);
    const grid::MachineId id = replica.machine->id();
    replica.next_event = sim_.schedule_after(delay, [this, id] {
      Replica* retrying = replica_at(id);
      DG_ASSERT(retrying != nullptr);
      begin_transfer(*retrying);
    });
    return;
  }

  // Retry budget exhausted: degrade gracefully rather than wedge.
  replica.transfer_attempts = 0;
  if (is_save) {
    // Skip the save. The uncommitted leg stays in progress_base — it is
    // simply at risk until the next successful save commits it.
    ++faults_.saves_skipped;
    begin_compute(replica);
  } else {
    // Restart from scratch: the committed checkpoint is unreachable.
    ++faults_.replicas_degraded;
    replica.progress_base = 0.0;
    for (SimulationObserver* observer : observers_) {
      observer->on_replica_degraded(*replica.task, *replica.machine, 0.0, sim_.now());
    }
    begin_compute(replica);
  }
}

void ExecutionEngine::on_server_down() {
  DG_ASSERT_MSG(config_.failable_server, "server outage without the failable-server path");
  DG_ASSERT_MSG(!grid_.checkpoint_server().up(), "on_server_down with the server still up");
  for (SimulationObserver* observer : observers_) {
    observer->on_server_down(sim_.now());
  }
  // lose_data implies aborts: the wiped bytes cannot complete a transfer.
  if (config_.server_faults.abort_transfers || config_.server_faults.lose_data) {
    for (Replica& slot : replicas_) {
      Replica* replica = slot.task != nullptr ? &slot : nullptr;
      if (replica == nullptr || !replica->transfer_inflight) continue;
      replica->next_event.cancel();
      drop_inflight_transfer(*replica);
      transfer_attempt_failed(*replica);
    }
  }
  if (config_.server_faults.lose_data) {
    for (sched::BotState* bot : scheduler_.active_bots()) {
      for (std::size_t i = 0; i < bot->num_tasks(); ++i) {
        sched::TaskState& task = bot->task(i);
        if (task.completed() || task.checkpointed_work() <= 0.0) continue;
        task.invalidate_checkpoint();
        ++faults_.checkpoints_lost;
        for (SimulationObserver* observer : observers_) {
          observer->on_checkpoint_lost(task, sim_.now());
        }
      }
    }
  }
}

void ExecutionEngine::on_server_up() {
  DG_ASSERT_MSG(grid_.checkpoint_server().up(), "on_server_up with the server still down");
  // Pending retries are already sitting on backoff timers; nothing to kick.
  for (SimulationObserver* observer : observers_) {
    observer->on_server_up(sim_.now());
  }
}

FaultStats ExecutionEngine::fault_stats(des::SimTime now) const noexcept {
  FaultStats stats = faults_;
  stats.server_outages = grid_.checkpoint_server().outage_count();
  stats.server_downtime = grid_.checkpoint_server().total_downtime(now);
  return stats;
}

void ExecutionEngine::begin_compute(Replica& replica) {
  replica.phase = Phase::kComputing;
  replica.leg_start = sim_.now();
  const double power = replica.machine->power();
  const double remaining = replica.task->work() - replica.progress_base;
  DG_ASSERT_MSG(remaining > 0.0, "compute leg with no remaining work");
  const double time_to_complete = remaining / power;
  const grid::MachineId id = replica.machine->id();
  if (config_.checkpointing && time_to_complete > config_.checkpoint_interval) {
    replica.next_event = sim_.schedule_after(config_.checkpoint_interval,
                                             [this, id] { on_checkpoint_begin(id); });
  } else {
    replica.next_event = sim_.schedule_after(time_to_complete, [this, id] { on_complete(id); });
  }
}

void ExecutionEngine::on_retrieve_done(grid::MachineId machine_id) {
  Replica* replica = replica_at(machine_id);
  DG_ASSERT(replica != nullptr && replica->phase == Phase::kRetrieving);
  replica->transfer_inflight = false;
  replica->transfer_attempts = 0;
  // If a server crash wiped the stored checkpoint while this retrieve was
  // pending, what came back is the post-loss state: never resume ahead of
  // the committed value. No-op under a reliable server (progress_base was
  // captured from checkpointed_work, which is otherwise monotone).
  replica->progress_base = std::min(replica->progress_base, replica->task->checkpointed_work());
  ++retrievals_;  // counted on completion; a failure mid-transfer doesn't count
  for (SimulationObserver* observer : observers_) {
    observer->on_checkpoint_retrieved(*replica->task, *replica->machine, sim_.now());
  }
  begin_compute(*replica);
}

void ExecutionEngine::on_checkpoint_begin(grid::MachineId machine_id) {
  Replica* replica = replica_at(machine_id);
  DG_ASSERT(replica != nullptr && replica->phase == Phase::kComputing);
  const double leg = sim_.now() - replica->leg_start;
  replica->compute_invested += leg;
  replica->progress_base += leg * replica->machine->power();
  replica->phase = Phase::kCheckpointing;
  begin_transfer(*replica);
}

void ExecutionEngine::on_checkpoint_end(grid::MachineId machine_id) {
  Replica* replica = replica_at(machine_id);
  DG_ASSERT(replica != nullptr && replica->phase == Phase::kCheckpointing);
  replica->transfer_inflight = false;
  replica->transfer_attempts = 0;
  replica->task->commit_checkpoint(replica->progress_base);
  ++checkpoints_saved_;
  for (SimulationObserver* observer : observers_) {
    observer->on_checkpoint_saved(*replica->task, *replica->machine, replica->progress_base,
                                  sim_.now());
  }
  begin_compute(*replica);
}

ExecutionEngine::Replica ExecutionEngine::detach_replica(grid::MachineId machine_id) {
  Replica replica = replicas_[machine_id];
  DG_ASSERT(replica.task != nullptr);
  replicas_[machine_id] = Replica{};
  set_machine_busy(*replica.machine, false);
  return replica;
}

void ExecutionEngine::on_complete(grid::MachineId machine_id) {
  Replica* winner = replica_at(machine_id);
  DG_ASSERT(winner != nullptr && winner->phase == Phase::kComputing);
  winner->compute_invested += sim_.now() - winner->leg_start;
  winner->progress_base = winner->task->work();
  sched::TaskState& task = *winner->task;

  task.mark_completed(sim_.now());
  scheduler_.notify_task_completed(task);
  for (SimulationObserver* observer : observers_) {
    observer->on_task_completed(task, sim_.now());
  }

  // Stop the winner and every sibling replica (freeing their machines).
  for (grid::MachineId id = 0; id < replicas_.size(); ++id) {
    Replica* candidate = replica_at(id);
    if (candidate == nullptr || candidate->task != &task) continue;
    const bool is_winner = candidate == winner;
    if (!is_winner) {
      candidate->next_event.cancel();
      drop_inflight_transfer(*candidate);
      if (candidate->phase == Phase::kComputing) {
        candidate->compute_invested += sim_.now() - candidate->leg_start;
      }
      ++cancelled_replicas_;
      wasted_compute_time_ += candidate->compute_invested;
    } else {
      useful_compute_time_ += candidate->compute_invested;
    }
    const Replica owned = detach_replica(id);
    task.on_replica_stopped(sim_.now());
    scheduler_.notify_replica_stopped(task, is_winner
                                                ? sched::MultiBotScheduler::StopReason::kWinner
                                                : sched::MultiBotScheduler::StopReason::kCancelled);
    for (SimulationObserver* observer : observers_) {
      observer->on_replica_stopped(
          task, *owned.machine,
          is_winner ? ReplicaStopKind::kCompleted : ReplicaStopKind::kCancelled, sim_.now());
    }
  }
  DG_ASSERT(task.running_replicas() == 0);
  scheduler_.trigger();
}

void ExecutionEngine::on_machine_failure(grid::Machine& machine) {
  for (SimulationObserver* observer : observers_) {
    observer->on_machine_failed(machine, sim_.now());
  }
  Replica* replica = replica_on(machine);
  if (replica == nullptr) return;  // idle machine went down
  replica->next_event.cancel();
  // A transfer cut short by the death hands its unused slot time back to the
  // server (the historical leak kept it reserved; see CheckpointServer).
  drop_inflight_transfer(*replica);
  sched::TaskState& task = *replica->task;
  double progress = replica->progress_base;
  if (replica->phase == Phase::kComputing) {
    const double leg = sim_.now() - replica->leg_start;
    replica->compute_invested += leg;
    progress += leg * machine.power();
  }
  // Everything past the task's last committed checkpoint is lost.
  lost_work_ += std::max(0.0, progress - task.checkpointed_work());
  wasted_compute_time_ += replica->compute_invested;
  ++failed_replicas_;
  const Replica owned = detach_replica(machine.id());
  task.on_replica_stopped(sim_.now());
  scheduler_.notify_replica_stopped(task, sched::MultiBotScheduler::StopReason::kFailed);
  for (SimulationObserver* observer : observers_) {
    observer->on_replica_stopped(task, machine, ReplicaStopKind::kFailed, sim_.now());
  }
  // A resubmission candidate may now be dispatchable on other idle machines.
  scheduler_.trigger();
}

void ExecutionEngine::on_machine_repair(grid::Machine& machine) {
  DG_ASSERT(machine.up());
  DG_ASSERT(replica_on(machine) == nullptr);
  for (SimulationObserver* observer : observers_) {
    observer->on_machine_repaired(machine, sim_.now());
  }
  scheduler_.notify_capacity_change(machine);
}

}  // namespace dg::sim
