// SimulationConfig <-> INI files.
//
// Lets whole experiments live as small text files:
//
//   [grid]
//   heterogeneity = Het          ; Hom | Het
//   availability = low           ; high | med | low | always, or a number in (0,1)
//   outages = true               ; optional correlated-outage block
//   outage_fraction = 0.25
//   outage_interarrival = 5000
//
//   [workload]
//   granularity = 25000          ; or "granularities = 1000, 25000" for a mix
//   bag_size = 2.5e6
//   num_bots = 100
//   utilization = 0.5            ; or an explicit arrival_rate
//   arrivals = Poisson           ; Poisson | UniformJitter | Bursty
//
//   [scheduler]
//   policy = LongIdle
//   individual = WQR-FT
//   replication_threshold = 2    ; 0 = scheduler default
//   dynamic_replication = false
//
//   [run]
//   seed = 1
//   warmup_bots = 10
//
// Unknown keys are an error (typo protection); every section is optional and
// defaults match SimulationConfig's defaults.
#pragma once

#include <iosfwd>

#include "sim/simulation.hpp"

namespace dg::sim {

/// Parses an INI experiment description; throws std::runtime_error with a
/// descriptive message on unknown keys/values or inconsistent combinations.
[[nodiscard]] SimulationConfig load_simulation_config(std::istream& is);

/// Serializes a config back to INI (lossless for everything the format
/// covers; traces are not serialized).
void save_simulation_config(std::ostream& os, const SimulationConfig& config);

}  // namespace dg::sim
