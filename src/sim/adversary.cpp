#include "sim/adversary.hpp"

#include <stdexcept>

namespace dg::sim {

std::vector<grid::StressWindow> adversary_windows(const AdversarialScenario& adversary,
                                                  const workload::WorkloadConfig& workload) {
  if (!adversary.enabled) return {};
  if (adversary.num_windows == 0) {
    throw std::invalid_argument("adversary: num_windows must be >= 1");
  }
  if (!(adversary.window_duration > 0.0)) {
    throw std::invalid_argument("adversary: window_duration must be positive");
  }
  if (!(adversary.lead_fraction >= 0.0) || !(adversary.lead_fraction < 1.0)) {
    throw std::invalid_argument("adversary: lead_fraction must be in [0, 1)");
  }
  if (!(adversary.spacing >= 0.0)) {
    throw std::invalid_argument("adversary: spacing must be non-negative");
  }
  if (!(adversary.burst_intensity >= 1.0)) {
    throw std::invalid_argument("adversary: burst_intensity must be >= 1");
  }
  if (adversary.hit_machines &&
      (!(adversary.outage_fraction > 0.0) || !(adversary.outage_fraction <= 1.0))) {
    throw std::invalid_argument("adversary: outage_fraction must be in (0, 1]");
  }
  if (!(workload.arrival_rate > 0.0) || workload.num_bots == 0) {
    throw std::invalid_argument(
        "adversary: the workload needs a positive arrival rate and at least one bag");
  }

  // Expected arrival span of the generated workload; the windows are placed
  // from the configuration alone so every replication of a cell (and every
  // policy under common random numbers) faces the same stress timeline.
  const double span = static_cast<double>(workload.num_bots) / workload.arrival_rate;
  const double start0 = adversary.lead_fraction * span;
  double step = adversary.spacing;
  if (step <= 0.0 && adversary.num_windows > 1) {
    step = (span - start0) / static_cast<double>(adversary.num_windows);
  }
  if (adversary.num_windows > 1 && step < adversary.window_duration) {
    throw std::invalid_argument(
        "adversary: windows would overlap — spacing (explicit or auto) is shorter than "
        "window_duration");
  }

  std::vector<grid::StressWindow> windows;
  windows.reserve(adversary.num_windows);
  for (std::size_t w = 0; w < adversary.num_windows; ++w) {
    const double start = start0 + static_cast<double>(w) * step;
    windows.push_back(grid::StressWindow{start, start + adversary.window_duration});
  }
  return windows;
}

}  // namespace dg::sim
