#include "sim/config_io.hpp"

#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/ini.hpp"

namespace dg::sim {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("simulation config: " + message);
}

void check_known_keys(const util::IniFile& ini, std::string_view section,
                      const std::set<std::string>& known) {
  for (const std::string& key : ini.keys(section)) {
    if (!known.contains(key)) {
      fail("unknown key '" + key + "' in section [" + std::string(section) + "]");
    }
  }
}

std::vector<double> parse_number_list(const std::string& text) {
  std::vector<double> values;
  std::istringstream iss(text);
  std::string item;
  while (std::getline(iss, item, ',')) {
    const std::string trimmed{util::trim(item)};
    if (trimmed.empty()) continue;
    values.push_back(std::stod(trimmed));
  }
  return values;
}

}  // namespace

SimulationConfig load_simulation_config(std::istream& is) {
  const util::IniFile ini = util::IniFile::parse(is);
  for (const std::string& section : ini.sections()) {
    if (section != "grid" && section != "workload" && section != "scheduler" &&
        section != "run" && section != "checkpoint_server" && section != "robustness" &&
        !section.empty()) {
      fail("unknown section [" + section + "]");
    }
  }
  SimulationConfig config;

  // --- [grid] ---
  check_known_keys(ini, "grid",
                   {"heterogeneity", "availability", "total_power", "hom_power",
                    "het_power_lo", "het_power_hi", "outages", "outage_fraction",
                    "outage_interarrival", "outage_duration_lo", "outage_duration_hi",
                    "checkpoint_server_capacity"});
  if (auto text = ini.get("grid", "heterogeneity")) {
    if (*text == "Hom" || *text == "hom") {
      config.grid.heterogeneity = grid::Heterogeneity::kHom;
    } else if (*text == "Het" || *text == "het") {
      config.grid.heterogeneity = grid::Heterogeneity::kHet;
    } else {
      fail("heterogeneity must be Hom or Het, got '" + *text + "'");
    }
  }
  if (auto text = ini.get("grid", "availability")) {
    if (auto level = grid::parse_availability_level(*text)) {
      config.grid.availability = grid::AvailabilityModel::for_level(*level);
    } else {
      try {
        const double target = std::stod(*text);
        config.grid.availability = grid::AvailabilityModel::from_availability(target);
      } catch (const std::invalid_argument&) {
        fail("availability must be high|med|low|always or a number in (0,1), got '" + *text +
             "'");
      }
    }
  }
  if (auto v = ini.get_double("grid", "total_power")) config.grid.total_power = *v;
  if (auto v = ini.get_double("grid", "hom_power")) config.grid.hom_power = *v;
  if (auto v = ini.get_double("grid", "het_power_lo")) config.grid.het_power_lo = *v;
  if (auto v = ini.get_double("grid", "het_power_hi")) config.grid.het_power_hi = *v;
  if (auto v = ini.get_bool("grid", "outages")) config.grid.outages.enabled = *v;
  if (auto v = ini.get_double("grid", "outage_fraction")) {
    if (!(*v > 0.0 && *v <= 1.0)) {
      fail("outage_fraction must be in (0, 1], got " + *ini.get("grid", "outage_fraction"));
    }
    config.grid.outages.fraction = *v;
  }
  if (auto v = ini.get_double("grid", "outage_interarrival")) {
    if (!(*v > 0.0)) {
      fail("outage_interarrival must be positive, got " +
           *ini.get("grid", "outage_interarrival"));
    }
    config.grid.outages.mean_interarrival = *v;
  }
  if (auto v = ini.get_int("grid", "checkpoint_server_capacity")) {
    config.grid.checkpoint_server_capacity = static_cast<std::size_t>(*v);
  }
  {
    const auto lo = ini.get_double("grid", "outage_duration_lo");
    const auto hi = ini.get_double("grid", "outage_duration_hi");
    if (lo.has_value() != hi.has_value()) {
      fail("outage_duration_lo and outage_duration_hi must be given together");
    }
    if (lo) {
      if (!(*lo > 0.0) || !(*hi >= *lo)) {
        fail("outage durations must satisfy 0 < outage_duration_lo <= outage_duration_hi");
      }
      config.grid.outages.duration = rng::UniformDist{*lo, *hi};
    }
  }

  // --- [checkpoint_server] ---
  check_known_keys(ini, "checkpoint_server",
                   {"capacity", "release_slots", "faults", "mtbf", "mttr", "abort_transfers",
                    "lose_data", "retry_max_attempts", "retry_backoff_base",
                    "retry_backoff_cap", "attempt_timeout"});
  if (auto v = ini.get_int("checkpoint_server", "capacity")) {
    if (ini.get("grid", "checkpoint_server_capacity")) {
      fail("give checkpoint-server capacity in [grid] or [checkpoint_server], not both");
    }
    config.grid.checkpoint_server_capacity = static_cast<std::size_t>(*v);
  }
  if (auto v = ini.get_bool("checkpoint_server", "release_slots")) {
    config.grid.checkpoint_server_release_slots = *v;
  }
  auto& faults = config.grid.checkpoint_server_faults;
  if (auto v = ini.get_bool("checkpoint_server", "faults")) faults.enabled = *v;
  if (auto v = ini.get_double("checkpoint_server", "mtbf")) {
    if (!(*v > 0.0)) {
      fail("checkpoint_server mtbf must be positive, got " +
           *ini.get("checkpoint_server", "mtbf"));
    }
    faults.mtbf = *v;
  }
  if (auto v = ini.get_double("checkpoint_server", "mttr")) {
    if (!(*v > 0.0)) {
      fail("checkpoint_server mttr must be positive, got " +
           *ini.get("checkpoint_server", "mttr"));
    }
    faults.mttr = *v;
  }
  if (auto v = ini.get_bool("checkpoint_server", "abort_transfers")) faults.abort_transfers = *v;
  if (auto v = ini.get_bool("checkpoint_server", "lose_data")) faults.lose_data = *v;
  if (auto v = ini.get_int("checkpoint_server", "retry_max_attempts")) {
    if (*v < 1) {
      fail("retry_max_attempts must be >= 1, got " +
           *ini.get("checkpoint_server", "retry_max_attempts"));
    }
    config.checkpoint_retry.max_attempts = static_cast<int>(*v);
  }
  if (auto v = ini.get_double("checkpoint_server", "retry_backoff_base")) {
    if (!(*v > 0.0)) {
      fail("retry_backoff_base must be positive, got " +
           *ini.get("checkpoint_server", "retry_backoff_base"));
    }
    config.checkpoint_retry.backoff_base = *v;
  }
  if (auto v = ini.get_double("checkpoint_server", "retry_backoff_cap")) {
    if (!(*v > 0.0)) {
      fail("retry_backoff_cap must be positive, got " +
           *ini.get("checkpoint_server", "retry_backoff_cap"));
    }
    config.checkpoint_retry.backoff_cap = *v;
  }
  if (config.checkpoint_retry.backoff_cap < config.checkpoint_retry.backoff_base) {
    fail("retry_backoff_cap must be >= retry_backoff_base");
  }
  if (auto v = ini.get_double("checkpoint_server", "attempt_timeout")) {
    if (*v < 0.0) {
      fail("attempt_timeout must be >= 0 (0 disables the timeout), got " +
           *ini.get("checkpoint_server", "attempt_timeout"));
    }
    config.checkpoint_retry.attempt_timeout = *v;
  }

  // --- [workload] ---
  check_known_keys(ini, "workload",
                   {"granularity", "granularities", "spread", "bag_size", "num_bots",
                    "utilization", "arrival_rate", "arrivals", "burst_intensity",
                    "burst_fraction"});
  const double spread = ini.get_double("workload", "spread").value_or(0.5);
  if (ini.get("workload", "granularity") && ini.get("workload", "granularities")) {
    fail("give either granularity or granularities, not both");
  }
  if (auto v = ini.get_double("workload", "granularity")) {
    config.workload.types = {workload::BotType{*v, spread}};
  } else if (auto text = ini.get("workload", "granularities")) {
    config.workload.types.clear();
    for (double g : parse_number_list(*text)) {
      config.workload.types.push_back(workload::BotType{g, spread});
    }
    if (config.workload.types.empty()) fail("granularities list is empty");
  } else {
    config.workload.types = {workload::BotType{5000.0, spread}};
  }
  if (auto v = ini.get_double("workload", "bag_size")) config.workload.bag_size = *v;
  if (auto v = ini.get_int("workload", "num_bots")) {
    config.workload.num_bots = static_cast<std::size_t>(*v);
  }
  if (ini.get("workload", "utilization") && ini.get("workload", "arrival_rate")) {
    fail("give either utilization or arrival_rate, not both");
  }
  if (auto v = ini.get_double("workload", "utilization")) {
    config.workload.arrival_rate = workload::arrival_rate_for_utilization(
        *v, config.workload.bag_size, workload::effective_grid_power(config.grid));
  } else if (auto v2 = ini.get_double("workload", "arrival_rate")) {
    config.workload.arrival_rate = *v2;
  } else {
    config.workload.arrival_rate = workload::arrival_rate_for_utilization(
        0.5, config.workload.bag_size, workload::effective_grid_power(config.grid));
  }
  if (auto text = ini.get("workload", "arrivals")) {
    if (auto process = workload::parse_arrival_process(*text)) {
      config.workload.arrivals = *process;
    } else {
      fail("arrivals must be Poisson|UniformJitter|Bursty, got '" + *text + "'");
    }
  }
  if (auto v = ini.get_double("workload", "burst_intensity")) {
    config.workload.burst_intensity = *v;
  }
  if (auto v = ini.get_double("workload", "burst_fraction")) config.workload.burst_fraction = *v;

  // --- [scheduler] ---
  check_known_keys(ini, "scheduler",
                   {"policy", "individual", "replication_threshold", "dynamic_replication"});
  if (auto text = ini.get("scheduler", "policy")) {
    if (auto kind = sched::parse_policy_kind(*text)) {
      config.policy = *kind;
    } else {
      fail("unknown policy '" + *text + "'");
    }
  }
  if (auto text = ini.get("scheduler", "individual")) {
    if (auto kind = sched::parse_individual_kind(*text)) {
      config.individual = *kind;
    } else {
      fail("unknown individual scheduler '" + *text + "'");
    }
  }
  if (auto v = ini.get_int("scheduler", "replication_threshold")) {
    config.replication_threshold = static_cast<int>(*v);
  }
  if (auto v = ini.get_bool("scheduler", "dynamic_replication")) {
    config.dynamic_replication = *v;
  }

  // --- [robustness] ---
  check_known_keys(ini, "robustness",
                   {"adversary", "num_windows", "window_duration", "lead_fraction", "spacing",
                    "burst_intensity", "hit_machines", "outage_fraction", "hit_server"});
  auto& adversary = config.adversary;
  if (auto v = ini.get_bool("robustness", "adversary")) adversary.enabled = *v;
  if (auto v = ini.get_int("robustness", "num_windows")) {
    if (*v < 1) {
      fail("num_windows must be >= 1, got " + *ini.get("robustness", "num_windows"));
    }
    adversary.num_windows = static_cast<std::size_t>(*v);
  }
  if (auto v = ini.get_double("robustness", "window_duration")) {
    if (!(*v > 0.0)) {
      fail("window_duration must be positive, got " +
           *ini.get("robustness", "window_duration"));
    }
    adversary.window_duration = *v;
  }
  if (auto v = ini.get_double("robustness", "lead_fraction")) {
    if (!(*v >= 0.0 && *v < 1.0)) {
      fail("lead_fraction must be in [0, 1), got " + *ini.get("robustness", "lead_fraction"));
    }
    adversary.lead_fraction = *v;
  }
  if (auto v = ini.get_double("robustness", "spacing")) {
    if (!(*v >= 0.0)) {
      fail("spacing must be >= 0 (0 = spread over the arrival span), got " +
           *ini.get("robustness", "spacing"));
    }
    adversary.spacing = *v;
  }
  if (auto v = ini.get_double("robustness", "burst_intensity")) {
    if (!(*v >= 1.0)) {
      fail("robustness burst_intensity must be >= 1, got " +
           *ini.get("robustness", "burst_intensity"));
    }
    adversary.burst_intensity = *v;
  }
  if (auto v = ini.get_bool("robustness", "hit_machines")) adversary.hit_machines = *v;
  if (auto v = ini.get_double("robustness", "outage_fraction")) {
    if (!(*v > 0.0 && *v <= 1.0)) {
      fail("robustness outage_fraction must be in (0, 1], got " +
           *ini.get("robustness", "outage_fraction"));
    }
    adversary.outage_fraction = *v;
  }
  if (auto v = ini.get_bool("robustness", "hit_server")) adversary.hit_server = *v;

  // --- [run] ---
  check_known_keys(ini, "run", {"seed", "warmup_bots", "max_sim_time", "monitor_interval"});
  if (auto v = ini.get_int("run", "seed")) config.seed = static_cast<std::uint64_t>(*v);
  if (auto v = ini.get_int("run", "warmup_bots")) {
    config.warmup_bots = static_cast<std::size_t>(*v);
  }
  if (auto v = ini.get_double("run", "max_sim_time")) config.max_sim_time = *v;
  if (auto v = ini.get_double("run", "monitor_interval")) config.monitor_interval = *v;

  return config;
}

void save_simulation_config(std::ostream& os, const SimulationConfig& config) {
  util::IniFile ini;
  auto number = [](double v) {
    std::ostringstream oss;
    oss.precision(17);
    oss << v;
    return oss.str();
  };

  ini.set("grid", "heterogeneity", grid::to_string(config.grid.heterogeneity));
  if (config.grid.availability.failures_enabled) {
    ini.set("grid", "availability", number(config.grid.availability.availability()));
  } else {
    ini.set("grid", "availability", "always");
  }
  ini.set("grid", "total_power", number(config.grid.total_power));
  ini.set("grid", "hom_power", number(config.grid.hom_power));
  ini.set("grid", "het_power_lo", number(config.grid.het_power_lo));
  ini.set("grid", "het_power_hi", number(config.grid.het_power_hi));
  if (config.grid.outages.enabled) {
    ini.set("grid", "outages", "true");
    ini.set("grid", "outage_fraction", number(config.grid.outages.fraction));
    ini.set("grid", "outage_interarrival", number(config.grid.outages.mean_interarrival));
  }
  if (config.grid.checkpoint_server_capacity != 0) {
    ini.set("grid", "checkpoint_server_capacity",
            std::to_string(config.grid.checkpoint_server_capacity));
  }
  if (!config.grid.checkpoint_server_release_slots) {
    ini.set("checkpoint_server", "release_slots", "false");
  }
  if (config.grid.checkpoint_server_faults.enabled) {
    const auto& faults = config.grid.checkpoint_server_faults;
    ini.set("checkpoint_server", "faults", "true");
    ini.set("checkpoint_server", "mtbf", number(faults.mtbf));
    ini.set("checkpoint_server", "mttr", number(faults.mttr));
    ini.set("checkpoint_server", "abort_transfers", faults.abort_transfers ? "true" : "false");
    ini.set("checkpoint_server", "lose_data", faults.lose_data ? "true" : "false");
    ini.set("checkpoint_server", "retry_max_attempts",
            std::to_string(config.checkpoint_retry.max_attempts));
    ini.set("checkpoint_server", "retry_backoff_base",
            number(config.checkpoint_retry.backoff_base));
    ini.set("checkpoint_server", "retry_backoff_cap",
            number(config.checkpoint_retry.backoff_cap));
    ini.set("checkpoint_server", "attempt_timeout",
            number(config.checkpoint_retry.attempt_timeout));
  }

  if (config.workload.types.size() == 1) {
    ini.set("workload", "granularity", number(config.workload.types[0].granularity));
  } else {
    std::string list;
    for (std::size_t i = 0; i < config.workload.types.size(); ++i) {
      if (i != 0) list += ", ";
      list += number(config.workload.types[i].granularity);
    }
    ini.set("workload", "granularities", list);
  }
  if (!config.workload.types.empty()) {
    ini.set("workload", "spread", number(config.workload.types[0].spread));
  }
  ini.set("workload", "bag_size", number(config.workload.bag_size));
  ini.set("workload", "num_bots", std::to_string(config.workload.num_bots));
  ini.set("workload", "arrival_rate", number(config.workload.arrival_rate));
  ini.set("workload", "arrivals", workload::to_string(config.workload.arrivals));
  if (config.workload.arrivals == workload::ArrivalProcess::kBursty) {
    ini.set("workload", "burst_intensity", number(config.workload.burst_intensity));
    ini.set("workload", "burst_fraction", number(config.workload.burst_fraction));
  }

  ini.set("scheduler", "policy", sched::to_string(config.policy));
  ini.set("scheduler", "individual", sched::to_string(config.individual));
  ini.set("scheduler", "replication_threshold", std::to_string(config.replication_threshold));
  ini.set("scheduler", "dynamic_replication", config.dynamic_replication ? "true" : "false");

  if (config.adversary.enabled) {
    const auto& adversary = config.adversary;
    ini.set("robustness", "adversary", "true");
    ini.set("robustness", "num_windows", std::to_string(adversary.num_windows));
    ini.set("robustness", "window_duration", number(adversary.window_duration));
    ini.set("robustness", "lead_fraction", number(adversary.lead_fraction));
    ini.set("robustness", "spacing", number(adversary.spacing));
    ini.set("robustness", "burst_intensity", number(adversary.burst_intensity));
    ini.set("robustness", "hit_machines", adversary.hit_machines ? "true" : "false");
    ini.set("robustness", "outage_fraction", number(adversary.outage_fraction));
    ini.set("robustness", "hit_server", adversary.hit_server ? "true" : "false");
  }

  ini.set("run", "seed", std::to_string(config.seed));
  ini.set("run", "warmup_bots", std::to_string(config.warmup_bots));
  if (config.max_sim_time > 0.0) ini.set("run", "max_sim_time", number(config.max_sim_time));
  if (config.monitor_interval > 0.0) {
    ini.set("run", "monitor_interval", number(config.monitor_interval));
  }

  os << ini.to_string();
}

}  // namespace dg::sim
