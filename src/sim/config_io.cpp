#include "sim/config_io.hpp"

#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/ini.hpp"

namespace dg::sim {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("simulation config: " + message);
}

void check_known_keys(const util::IniFile& ini, std::string_view section,
                      const std::set<std::string>& known) {
  for (const std::string& key : ini.keys(section)) {
    if (!known.contains(key)) {
      fail("unknown key '" + key + "' in section [" + std::string(section) + "]");
    }
  }
}

std::vector<double> parse_number_list(const std::string& text) {
  std::vector<double> values;
  std::istringstream iss(text);
  std::string item;
  while (std::getline(iss, item, ',')) {
    const std::string trimmed{util::trim(item)};
    if (trimmed.empty()) continue;
    values.push_back(std::stod(trimmed));
  }
  return values;
}

}  // namespace

SimulationConfig load_simulation_config(std::istream& is) {
  const util::IniFile ini = util::IniFile::parse(is);
  for (const std::string& section : ini.sections()) {
    if (section != "grid" && section != "workload" && section != "scheduler" &&
        section != "run" && !section.empty()) {
      fail("unknown section [" + section + "]");
    }
  }
  SimulationConfig config;

  // --- [grid] ---
  check_known_keys(ini, "grid",
                   {"heterogeneity", "availability", "total_power", "hom_power",
                    "het_power_lo", "het_power_hi", "outages", "outage_fraction",
                    "outage_interarrival", "outage_duration_lo", "outage_duration_hi",
                    "checkpoint_server_capacity"});
  if (auto text = ini.get("grid", "heterogeneity")) {
    if (*text == "Hom" || *text == "hom") {
      config.grid.heterogeneity = grid::Heterogeneity::kHom;
    } else if (*text == "Het" || *text == "het") {
      config.grid.heterogeneity = grid::Heterogeneity::kHet;
    } else {
      fail("heterogeneity must be Hom or Het, got '" + *text + "'");
    }
  }
  if (auto text = ini.get("grid", "availability")) {
    if (auto level = grid::parse_availability_level(*text)) {
      config.grid.availability = grid::AvailabilityModel::for_level(*level);
    } else {
      try {
        const double target = std::stod(*text);
        config.grid.availability = grid::AvailabilityModel::from_availability(target);
      } catch (const std::invalid_argument&) {
        fail("availability must be high|med|low|always or a number in (0,1), got '" + *text +
             "'");
      }
    }
  }
  if (auto v = ini.get_double("grid", "total_power")) config.grid.total_power = *v;
  if (auto v = ini.get_double("grid", "hom_power")) config.grid.hom_power = *v;
  if (auto v = ini.get_double("grid", "het_power_lo")) config.grid.het_power_lo = *v;
  if (auto v = ini.get_double("grid", "het_power_hi")) config.grid.het_power_hi = *v;
  if (auto v = ini.get_bool("grid", "outages")) config.grid.outages.enabled = *v;
  if (auto v = ini.get_double("grid", "outage_fraction")) config.grid.outages.fraction = *v;
  if (auto v = ini.get_double("grid", "outage_interarrival")) {
    config.grid.outages.mean_interarrival = *v;
  }
  if (auto v = ini.get_int("grid", "checkpoint_server_capacity")) {
    config.grid.checkpoint_server_capacity = static_cast<std::size_t>(*v);
  }
  {
    const auto lo = ini.get_double("grid", "outage_duration_lo");
    const auto hi = ini.get_double("grid", "outage_duration_hi");
    if (lo.has_value() != hi.has_value()) {
      fail("outage_duration_lo and outage_duration_hi must be given together");
    }
    if (lo) config.grid.outages.duration = rng::UniformDist{*lo, *hi};
  }

  // --- [workload] ---
  check_known_keys(ini, "workload",
                   {"granularity", "granularities", "spread", "bag_size", "num_bots",
                    "utilization", "arrival_rate", "arrivals", "burst_intensity",
                    "burst_fraction"});
  const double spread = ini.get_double("workload", "spread").value_or(0.5);
  if (ini.get("workload", "granularity") && ini.get("workload", "granularities")) {
    fail("give either granularity or granularities, not both");
  }
  if (auto v = ini.get_double("workload", "granularity")) {
    config.workload.types = {workload::BotType{*v, spread}};
  } else if (auto text = ini.get("workload", "granularities")) {
    config.workload.types.clear();
    for (double g : parse_number_list(*text)) {
      config.workload.types.push_back(workload::BotType{g, spread});
    }
    if (config.workload.types.empty()) fail("granularities list is empty");
  } else {
    config.workload.types = {workload::BotType{5000.0, spread}};
  }
  if (auto v = ini.get_double("workload", "bag_size")) config.workload.bag_size = *v;
  if (auto v = ini.get_int("workload", "num_bots")) {
    config.workload.num_bots = static_cast<std::size_t>(*v);
  }
  if (ini.get("workload", "utilization") && ini.get("workload", "arrival_rate")) {
    fail("give either utilization or arrival_rate, not both");
  }
  if (auto v = ini.get_double("workload", "utilization")) {
    config.workload.arrival_rate = workload::arrival_rate_for_utilization(
        *v, config.workload.bag_size, workload::effective_grid_power(config.grid));
  } else if (auto v2 = ini.get_double("workload", "arrival_rate")) {
    config.workload.arrival_rate = *v2;
  } else {
    config.workload.arrival_rate = workload::arrival_rate_for_utilization(
        0.5, config.workload.bag_size, workload::effective_grid_power(config.grid));
  }
  if (auto text = ini.get("workload", "arrivals")) {
    if (auto process = workload::parse_arrival_process(*text)) {
      config.workload.arrivals = *process;
    } else {
      fail("arrivals must be Poisson|UniformJitter|Bursty, got '" + *text + "'");
    }
  }
  if (auto v = ini.get_double("workload", "burst_intensity")) {
    config.workload.burst_intensity = *v;
  }
  if (auto v = ini.get_double("workload", "burst_fraction")) config.workload.burst_fraction = *v;

  // --- [scheduler] ---
  check_known_keys(ini, "scheduler",
                   {"policy", "individual", "replication_threshold", "dynamic_replication"});
  if (auto text = ini.get("scheduler", "policy")) {
    if (auto kind = sched::parse_policy_kind(*text)) {
      config.policy = *kind;
    } else {
      fail("unknown policy '" + *text + "'");
    }
  }
  if (auto text = ini.get("scheduler", "individual")) {
    if (auto kind = sched::parse_individual_kind(*text)) {
      config.individual = *kind;
    } else {
      fail("unknown individual scheduler '" + *text + "'");
    }
  }
  if (auto v = ini.get_int("scheduler", "replication_threshold")) {
    config.replication_threshold = static_cast<int>(*v);
  }
  if (auto v = ini.get_bool("scheduler", "dynamic_replication")) {
    config.dynamic_replication = *v;
  }

  // --- [run] ---
  check_known_keys(ini, "run", {"seed", "warmup_bots", "max_sim_time", "monitor_interval"});
  if (auto v = ini.get_int("run", "seed")) config.seed = static_cast<std::uint64_t>(*v);
  if (auto v = ini.get_int("run", "warmup_bots")) {
    config.warmup_bots = static_cast<std::size_t>(*v);
  }
  if (auto v = ini.get_double("run", "max_sim_time")) config.max_sim_time = *v;
  if (auto v = ini.get_double("run", "monitor_interval")) config.monitor_interval = *v;

  return config;
}

void save_simulation_config(std::ostream& os, const SimulationConfig& config) {
  util::IniFile ini;
  auto number = [](double v) {
    std::ostringstream oss;
    oss.precision(17);
    oss << v;
    return oss.str();
  };

  ini.set("grid", "heterogeneity", grid::to_string(config.grid.heterogeneity));
  if (config.grid.availability.failures_enabled) {
    ini.set("grid", "availability", number(config.grid.availability.availability()));
  } else {
    ini.set("grid", "availability", "always");
  }
  ini.set("grid", "total_power", number(config.grid.total_power));
  ini.set("grid", "hom_power", number(config.grid.hom_power));
  ini.set("grid", "het_power_lo", number(config.grid.het_power_lo));
  ini.set("grid", "het_power_hi", number(config.grid.het_power_hi));
  if (config.grid.outages.enabled) {
    ini.set("grid", "outages", "true");
    ini.set("grid", "outage_fraction", number(config.grid.outages.fraction));
    ini.set("grid", "outage_interarrival", number(config.grid.outages.mean_interarrival));
  }
  if (config.grid.checkpoint_server_capacity != 0) {
    ini.set("grid", "checkpoint_server_capacity",
            std::to_string(config.grid.checkpoint_server_capacity));
  }

  if (config.workload.types.size() == 1) {
    ini.set("workload", "granularity", number(config.workload.types[0].granularity));
  } else {
    std::string list;
    for (std::size_t i = 0; i < config.workload.types.size(); ++i) {
      if (i != 0) list += ", ";
      list += number(config.workload.types[i].granularity);
    }
    ini.set("workload", "granularities", list);
  }
  if (!config.workload.types.empty()) {
    ini.set("workload", "spread", number(config.workload.types[0].spread));
  }
  ini.set("workload", "bag_size", number(config.workload.bag_size));
  ini.set("workload", "num_bots", std::to_string(config.workload.num_bots));
  ini.set("workload", "arrival_rate", number(config.workload.arrival_rate));
  ini.set("workload", "arrivals", workload::to_string(config.workload.arrivals));
  if (config.workload.arrivals == workload::ArrivalProcess::kBursty) {
    ini.set("workload", "burst_intensity", number(config.workload.burst_intensity));
    ini.set("workload", "burst_fraction", number(config.workload.burst_fraction));
  }

  ini.set("scheduler", "policy", sched::to_string(config.policy));
  ini.set("scheduler", "individual", sched::to_string(config.individual));
  ini.set("scheduler", "replication_threshold", std::to_string(config.replication_threshold));
  ini.set("scheduler", "dynamic_replication", config.dynamic_replication ? "true" : "false");

  ini.set("run", "seed", std::to_string(config.seed));
  ini.set("run", "warmup_bots", std::to_string(config.warmup_bots));
  if (config.max_sim_time > 0.0) ini.set("run", "max_sim_time", number(config.max_sim_time));
  if (config.monitor_interval > 0.0) {
    ini.set("run", "monitor_interval", number(config.monitor_interval));
  }

  os << ini.to_string();
}

}  // namespace dg::sim
