// Online invariant checking.
//
// Mirrors the engine's state from observer events alone and cross-checks
// every transition against the model's contracts (DESIGN.md "Key
// invariants"). Violations are collected as human-readable strings rather
// than aborting, so tests can assert emptiness and print everything that
// went wrong. Used by the property/stress test matrix over all
// policy x availability x scheduler combinations.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/observer.hpp"

namespace dg::sim {

class InvariantChecker final : public SimulationObserver {
 public:
  void on_bot_submitted(const sched::BotState& bot, double now) override;
  void on_bot_completed(const sched::BotState& bot, double now) override;
  void on_replica_started(const sched::TaskState& task, const grid::Machine& machine,
                          double now) override;
  void on_replica_stopped(const sched::TaskState& task, const grid::Machine& machine,
                          ReplicaStopKind kind, double now) override;
  void on_task_completed(const sched::TaskState& task, double now) override;
  void on_checkpoint_saved(const sched::TaskState& task, const grid::Machine& machine,
                           double progress, double now) override;
  void on_checkpoint_retrieved(const sched::TaskState& task, const grid::Machine& machine,
                               double now) override;
  void on_machine_failed(const grid::Machine& machine, double now) override;
  void on_machine_repaired(const grid::Machine& machine, double now) override;

  // Checkpoint-server fault contracts (see fault_tolerance.hpp).
  void on_server_down(double now) override;
  void on_server_up(double now) override;
  void on_checkpoint_failed(const sched::TaskState& task, const grid::Machine& machine,
                            bool is_save, double now) override;
  void on_checkpoint_lost(const sched::TaskState& task, double now) override;
  void on_replica_degraded(const sched::TaskState& task, const grid::Machine& machine,
                           double restart_progress, double now) override;

  /// When transfers abort on a server crash (the default fault model), no
  /// transfer may complete while the server is down. Set false when checking
  /// a run with `abort_transfers = false` (resumable transfers legitimately
  /// finish during outages).
  void set_expect_transfer_aborts(bool value) noexcept { expect_transfer_aborts_ = value; }

  [[nodiscard]] const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  /// All violations joined, for gtest failure messages.
  [[nodiscard]] std::string report() const;

  /// Maximum replica count ever observed for any task (threshold audits).
  [[nodiscard]] int max_observed_replicas() const noexcept { return max_replicas_; }

 private:
  void violation(std::string message);
  [[nodiscard]] static std::string task_name(const sched::TaskState& task);

  struct TaskShadow {
    int running = 0;
    bool completed = false;
    double checkpointed = 0.0;
    double work = 0.0;
  };

  std::map<const sched::TaskState*, TaskShadow> tasks_;
  std::map<grid::MachineId, const sched::TaskState*> machine_occupancy_;
  /// Failed transfer attempts per machine since its current replica started
  /// (a degradation must be preceded by at least one failed attempt).
  std::map<grid::MachineId, int> failed_attempts_;
  std::set<grid::MachineId> down_machines_;
  std::set<const sched::BotState*> submitted_bots_;
  std::set<const sched::BotState*> completed_bots_;
  std::vector<std::string> violations_;
  double last_time_ = 0.0;
  int max_replicas_ = 0;
  bool server_down_ = false;
  bool expect_transfer_aborts_ = true;
  static constexpr std::size_t kMaxViolations = 50;
};

}  // namespace dg::sim
