#include "sim/timeline.hpp"

#include <algorithm>
#include <ostream>

namespace dg::sim {

std::string_view to_string(TimelineEventKind kind) noexcept {
  switch (kind) {
    case TimelineEventKind::kBotSubmitted: return "bot_submitted";
    case TimelineEventKind::kBotCompleted: return "bot_completed";
    case TimelineEventKind::kReplicaStarted: return "replica_started";
    case TimelineEventKind::kReplicaCompleted: return "replica_completed";
    case TimelineEventKind::kReplicaCancelled: return "replica_cancelled";
    case TimelineEventKind::kReplicaFailed: return "replica_failed";
    case TimelineEventKind::kTaskCompleted: return "task_completed";
    case TimelineEventKind::kCheckpointSaved: return "checkpoint_saved";
    case TimelineEventKind::kCheckpointRetrieved: return "checkpoint_retrieved";
    case TimelineEventKind::kMachineFailed: return "machine_failed";
    case TimelineEventKind::kMachineRepaired: return "machine_repaired";
  }
  return "?";
}

void TimelineRecorder::record(TimelineEvent event) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(event);
}

void TimelineRecorder::on_bot_submitted(const sched::BotState& bot, double now) {
  record({now, TimelineEventKind::kBotSubmitted, bot.id(), -1, -1,
          static_cast<double>(bot.num_tasks())});
}

void TimelineRecorder::on_bot_completed(const sched::BotState& bot, double now) {
  record({now, TimelineEventKind::kBotCompleted, bot.id(), -1, -1, bot.turnaround()});
}

void TimelineRecorder::on_replica_started(const sched::TaskState& task,
                                          const grid::Machine& machine, double now) {
  record({now, TimelineEventKind::kReplicaStarted, task.bot().id(), task.index(), machine.id(),
          task.checkpointed_work()});
}

void TimelineRecorder::on_replica_stopped(const sched::TaskState& task,
                                          const grid::Machine& machine, ReplicaStopKind kind,
                                          double now) {
  TimelineEventKind event_kind = TimelineEventKind::kReplicaCompleted;
  if (kind == ReplicaStopKind::kCancelled) event_kind = TimelineEventKind::kReplicaCancelled;
  if (kind == ReplicaStopKind::kFailed) event_kind = TimelineEventKind::kReplicaFailed;
  record({now, event_kind, task.bot().id(), task.index(), machine.id(), 0.0});
}

void TimelineRecorder::on_task_completed(const sched::TaskState& task, double now) {
  record({now, TimelineEventKind::kTaskCompleted, task.bot().id(), task.index(), -1,
          task.work()});
}

void TimelineRecorder::on_checkpoint_saved(const sched::TaskState& task,
                                           const grid::Machine& machine, double progress,
                                           double now) {
  record({now, TimelineEventKind::kCheckpointSaved, task.bot().id(), task.index(), machine.id(),
          progress});
}

void TimelineRecorder::on_checkpoint_retrieved(const sched::TaskState& task,
                                               const grid::Machine& machine, double now) {
  record({now, TimelineEventKind::kCheckpointRetrieved, task.bot().id(), task.index(),
          machine.id(), task.checkpointed_work()});
}

void TimelineRecorder::on_machine_failed(const grid::Machine& machine, double now) {
  record({now, TimelineEventKind::kMachineFailed, -1, -1, machine.id(), 0.0});
}

void TimelineRecorder::on_machine_repaired(const grid::Machine& machine, double now) {
  record({now, TimelineEventKind::kMachineRepaired, -1, -1, machine.id(), 0.0});
}

std::size_t TimelineRecorder::count(TimelineEventKind kind) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [kind](const TimelineEvent& e) { return e.kind == kind; }));
}

void TimelineRecorder::write_csv(std::ostream& os) const {
  os << "time,kind,bot,task,machine,value\n";
  for (const TimelineEvent& event : events_) {
    os << event.time << ',' << to_string(event.kind) << ',';
    if (event.bot >= 0) os << event.bot;
    os << ',';
    if (event.task >= 0) os << event.task;
    os << ',';
    if (event.machine >= 0) os << event.machine;
    os << ',' << event.value << '\n';
  }
}

}  // namespace dg::sim
