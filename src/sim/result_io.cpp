#include "sim/result_io.hpp"

#include <iomanip>
#include <limits>
#include <ostream>

namespace dg::sim {

void write_bot_records_csv(std::ostream& os, const SimulationResult& result) {
  const auto saved_precision = os.precision(std::numeric_limits<double>::max_digits10);
  os << "bot,arrival,first_dispatch,completion,turnaround,waiting,makespan,slowdown,"
        "granularity,num_tasks,total_work,completed\n";
  for (const BotRecord& bot : result.bots) {
    os << bot.id << ',' << bot.arrival_time << ',' << bot.first_dispatch_time << ','
       << bot.completion_time << ',' << bot.turnaround << ',' << bot.waiting_time << ','
       << bot.makespan << ',' << bot.slowdown << ',' << bot.granularity << ','
       << bot.num_tasks << ',' << bot.total_work << ',' << (bot.completed ? 1 : 0) << '\n';
  }
  os.precision(saved_precision);
}

void write_monitor_csv(std::ostream& os, const SimulationResult& result) {
  const auto saved_precision = os.precision(std::numeric_limits<double>::max_digits10);
  os << "time,active_bots,busy_machines,up_machines\n";
  for (const MonitorSample& sample : result.monitor) {
    os << sample.time << ',' << sample.active_bots << ',' << sample.busy_machines << ','
       << sample.up_machines << '\n';
  }
  os.precision(saved_precision);
}

void write_summary(std::ostream& os, const SimulationResult& result) {
  os << "bags:            " << result.bots_completed << '/' << result.bots.size()
     << (result.saturated ? "  SATURATED" : "") << '\n'
     << "turnaround:      mean " << result.turnaround.mean() << " s  (min "
     << result.turnaround.min() << ", max " << result.turnaround.max() << ")\n"
     << "  = waiting " << result.waiting.mean() << " + makespan " << result.makespan.mean()
     << '\n'
     << "  tails: p50 " << result.turnaround_tail.quantile(0.50) << ", p95 "
     << result.turnaround_tail.quantile(0.95) << ", p99 "
     << result.turnaround_tail.quantile(0.99) << '\n'
     << "slowdown:        mean " << result.slowdown.mean() << "  (Jain fairness "
     << result.slowdown_fairness() << ")\n"
     << "  tails: p50 " << result.slowdown_tail.quantile(0.50) << ", p95 "
     << result.slowdown_tail.quantile(0.95) << ", p99 "
     << result.slowdown_tail.quantile(0.99) << '\n'
     << "completion gaps: p50 " << result.completion_gap_tail.quantile(0.50) << ", p95 "
     << result.completion_gap_tail.quantile(0.95) << ", p99 "
     << result.completion_gap_tail.quantile(0.99) << "  (" << result.completion_gap_tail.count()
     << " gaps)\n"
     << "utilization:     " << result.utilization << "  (decayed "
     << result.decayed_utilization << ")\n"
     << "availability:    " << result.measured_availability << " measured\n"
     << "failures:        " << result.machine_failures << " machine, "
     << result.replica_failures << " replica\n"
     << "checkpoints:     " << result.checkpoints_saved << " saved, "
     << result.checkpoint_retrievals << " retrieved\n"
     << "replicas:        " << result.replicas_started << " started, wasted fraction "
     << result.wasted_fraction() << '\n'
     << "queue growth:    " << result.queue_growth_ratio << '\n'
     << "simulated:       " << result.end_time << " s, " << result.events_executed
     << " events\n"
     << "kernel:          " << result.kernel.events_scheduled << " scheduled, "
     << result.kernel.events_cancelled << " cancelled, heap peak "
     << result.kernel.heap_peak << ", " << result.kernel.arena_slabs << " slab allocs\n";
}

}  // namespace dg::sim
