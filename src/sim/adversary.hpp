// Adversarial scenario director.
//
// The robustness campaign needs a *worst-case-correlated* stressor: arrival
// bursts landing exactly while a slice of the grid is dark and the checkpoint
// server is unreachable. Independent stochastic processes only produce that
// coincidence by luck; the director instead derives deterministic stress
// windows from the workload configuration alone (expected arrival span =
// num_bots / arrival_rate) and aims three mechanisms at them:
//
//   * arrival bursts  — the Poisson rate is multiplied by burst_intensity
//                       inside each window (workload::WorkloadConfig's
//                       stress_windows, an exact piecewise-rate process);
//   * machine outages — a grid::ScheduledOutageProcess takes outage_fraction
//                       of the machines down for each window's full span;
//   * server downtime — the execution engine forces the checkpoint server
//                       down over each window (EngineConfig's
//                       server_down_windows), composing with any stochastic
//                       fault process via down-cause counting.
//
// Only the outage victim sets are random, drawn from a dedicated
// "adversary.outages" stream that is derived exclusively when the adversary
// is enabled — the default path's streams and results stay bit-identical.
#pragma once

#include <cstddef>
#include <vector>

#include "grid/outage.hpp"
#include "workload/generator.hpp"

namespace dg::sim {

struct AdversarialScenario {
  bool enabled = false;
  /// Stress windows placed across the expected arrival span. Must be >= 1.
  std::size_t num_windows = 3;
  /// Duration of each window, seconds. Must be positive.
  double window_duration = 7200.0;
  /// First window starts at lead_fraction * expected arrival span (past the
  /// empty-system transient). In [0, 1).
  double lead_fraction = 0.2;
  /// Start-to-start spacing between consecutive windows; 0 (default) spreads
  /// the windows evenly across the span remaining after the lead.
  double spacing = 0.0;
  /// Arrival-rate multiplier inside a window (>= 1; 1 = no burst).
  double burst_intensity = 4.0;
  /// Correlated machine outages spanning each window.
  bool hit_machines = true;
  /// Fraction of the grid taken down per window (rounded down, minimum one
  /// machine). In (0, 1] when hit_machines is set.
  double outage_fraction = 0.35;
  /// Checkpoint-server downtime spanning each window.
  bool hit_server = true;
};

/// The director's stress windows for (scenario, workload): deterministic,
/// sorted, non-overlapping. Empty when the scenario is disabled. Throws
/// std::invalid_argument on out-of-range parameters or windows that would
/// overlap (spacing shorter than window_duration).
[[nodiscard]] std::vector<grid::StressWindow> adversary_windows(
    const AdversarialScenario& adversary, const workload::WorkloadConfig& workload);

}  // namespace dg::sim
