// Reusable per-worker allocation bundle for simulation replications.
//
// ExperimentRunner replays thousands of replications; each one used to build
// and tear down the event arena, the grid's machine population, every bag's
// task slabs and dispatch structures, and the stats buffers — so at high
// thread counts the workers serialized on the global allocator instead of
// simulating. A SimulationWorkspace keeps all of that memory alive between
// replications:
//
//   * the des::Simulator (slab arena + heap storage) is reset() in place,
//   * every per-replication container (machines, availability processes,
//     BotStates with their task slabs, DispatchIndex maps, engine replica
//     table) draws from a pooled std::pmr resource whose freed blocks are
//     recycled instead of returned to the global heap,
//   * the workload-spec, monitor-sample, and result buffers keep their
//     capacity across replications.
//
// Reuse is semantically transparent: a replication run through a (warmed or
// fresh) workspace is bit-identical to one run through the historical
// fresh-construction path, except for the two KernelStats fields that
// *report* allocation behaviour (arena_slabs / arena_capacity, which count
// slabs allocated since the last reset and slots retained).
//
// Ownership and threading rules:
//   * One workspace per thread — a workspace is as thread-unsafe as the
//     Simulator it wraps. ExperimentRunner keys workspaces by pool-worker
//     index (util::ThreadPool::current_worker_index()).
//   * The workspace must outlive the SimulationResult reference returned by
//     Simulation::run(workspace): the result lives inside the workspace and
//     is overwritten by the next run.
//   * Components constructed from resource() must be destroyed before the
//     next begin_replication() (Simulation::run scopes them to the call).
#pragma once

#include <cstdint>
#include <memory_resource>
#include <vector>

#include "des/simulator.hpp"
#include "grid/realization.hpp"
#include "sim/simulation.hpp"
#include "workload/bot.hpp"

namespace dg::sim {

class SimulationWorkspace {
 public:
  SimulationWorkspace();

  SimulationWorkspace(const SimulationWorkspace&) = delete;
  SimulationWorkspace& operator=(const SimulationWorkspace&) = delete;

  /// The reusable DES kernel. Reset to t = 0 by begin_replication().
  [[nodiscard]] des::Simulator& simulator() noexcept { return sim_; }

  /// Pooled allocator for per-replication containers. Freed blocks are
  /// recycled within the workspace, never returned to the global heap, so a
  /// warmed workspace serves steady-state replications without touching
  /// operator new.
  [[nodiscard]] std::pmr::memory_resource* resource() noexcept { return &pool_; }

  /// Reused workload-spec buffer (cleared, capacity kept).
  [[nodiscard]] std::vector<workload::BotSpec>& specs() noexcept { return specs_; }

  /// Reused per-machine cursor vector for the world-realization replay
  /// driver (grid/realization.hpp). The driver re-assigns it wholesale at
  /// start(), so no clearing is needed between replications; keeping it here
  /// preserves the warmed-workspace zero-allocation contract.
  [[nodiscard]] grid::ReplayCursors& replay_cursors() noexcept { return replay_cursors_; }

  /// The in-place result of the current / most recent run. Overwritten by
  /// the next begin_replication().
  [[nodiscard]] SimulationResult& result() noexcept { return result_; }

  /// Replications started through this workspace (1 after the first
  /// begin_replication()); >= 2 means the workspace is warmed.
  [[nodiscard]] std::uint64_t replications() const noexcept { return replications_; }

  /// Rewinds the workspace for the next replication without freeing: resets
  /// the simulator, clears the spec/result buffers (keeping capacity), and
  /// bumps the replication counter. Called by Simulation::run(workspace).
  void begin_replication();

 private:
  des::Simulator sim_;
  std::pmr::unsynchronized_pool_resource pool_;
  std::vector<workload::BotSpec> specs_;
  grid::ReplayCursors replay_cursors_;
  SimulationResult result_;
  std::uint64_t replications_ = 0;
};

}  // namespace dg::sim
