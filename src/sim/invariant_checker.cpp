#include "sim/invariant_checker.hpp"

#include <sstream>

namespace dg::sim {

std::string InvariantChecker::task_name(const sched::TaskState& task) {
  std::ostringstream oss;
  oss << "bot " << task.bot().id() << " task " << task.index();
  return oss.str();
}

void InvariantChecker::violation(std::string message) {
  if (violations_.size() < kMaxViolations) violations_.push_back(std::move(message));
}

std::string InvariantChecker::report() const {
  std::ostringstream oss;
  for (const std::string& v : violations_) oss << v << "\n";
  return oss.str();
}

void InvariantChecker::on_bot_submitted(const sched::BotState& bot, double now) {
  if (now < last_time_) violation("time went backwards at bot submission");
  last_time_ = now;
  if (!submitted_bots_.insert(&bot).second) {
    violation("bot " + std::to_string(bot.id()) + " submitted twice");
  }
}

void InvariantChecker::on_bot_completed(const sched::BotState& bot, double now) {
  last_time_ = now;
  if (!submitted_bots_.contains(&bot)) {
    violation("bot " + std::to_string(bot.id()) + " completed without submission");
  }
  if (!completed_bots_.insert(&bot).second) {
    violation("bot " + std::to_string(bot.id()) + " completed twice");
  }
  if (!bot.completed()) {
    violation("bot " + std::to_string(bot.id()) + " reported complete while tasks remain");
  }
  if (bot.turnaround() < 0.0 || bot.waiting_time() < -1e-9 || bot.makespan() < 0.0) {
    violation("bot " + std::to_string(bot.id()) + " has negative timing components");
  }
}

void InvariantChecker::on_replica_started(const sched::TaskState& task,
                                          const grid::Machine& machine, double now) {
  if (now < last_time_) violation("time went backwards at replica start");
  last_time_ = now;
  TaskShadow& shadow = tasks_[&task];
  shadow.work = task.work();
  if (shadow.completed) violation(task_name(task) + ": replica started after completion");
  ++shadow.running;
  if (shadow.running > max_replicas_) max_replicas_ = shadow.running;
  if (shadow.running != task.running_replicas()) {
    violation(task_name(task) + ": replica count mismatch (shadow " +
              std::to_string(shadow.running) + " vs " +
              std::to_string(task.running_replicas()) + ")");
  }
  if (down_machines_.contains(machine.id())) {
    violation(task_name(task) + ": dispatched to DOWN machine " + std::to_string(machine.id()));
  }
  auto [it, inserted] = machine_occupancy_.emplace(machine.id(), &task);
  if (!inserted) {
    violation("machine " + std::to_string(machine.id()) + " hosts two replicas at once");
  }
  failed_attempts_[machine.id()] = 0;
}

void InvariantChecker::on_replica_stopped(const sched::TaskState& task,
                                          const grid::Machine& machine, ReplicaStopKind kind,
                                          double now) {
  last_time_ = now;
  TaskShadow& shadow = tasks_[&task];
  --shadow.running;
  if (shadow.running < 0) violation(task_name(task) + ": more stops than starts");
  auto it = machine_occupancy_.find(machine.id());
  if (it == machine_occupancy_.end() || it->second != &task) {
    violation(task_name(task) + ": stopped on machine " + std::to_string(machine.id()) +
              " it was not running on");
  } else {
    machine_occupancy_.erase(it);
  }
  if (kind == ReplicaStopKind::kCompleted && !task.completed()) {
    violation(task_name(task) + ": winner stopped but task not marked complete");
  }
  if (kind == ReplicaStopKind::kFailed && !down_machines_.contains(machine.id())) {
    violation(task_name(task) + ": failure stop on a machine that is UP");
  }
}

void InvariantChecker::on_task_completed(const sched::TaskState& task, double now) {
  last_time_ = now;
  TaskShadow& shadow = tasks_[&task];
  if (shadow.completed) violation(task_name(task) + ": completed twice");
  shadow.completed = true;
  if (!task.completed()) violation(task_name(task) + ": completion event but flag not set");
}

void InvariantChecker::on_checkpoint_saved(const sched::TaskState& task,
                                           const grid::Machine& /*machine*/, double progress,
                                           double now) {
  last_time_ = now;
  if (server_down_ && expect_transfer_aborts_) {
    violation(task_name(task) + ": checkpoint save completed while the server is DOWN");
  }
  TaskShadow& shadow = tasks_[&task];
  shadow.work = task.work();
  // Individual saves may carry less progress than the task's committed
  // maximum (a slower sibling replica checkpointing behind the leader); the
  // monotone quantity is the task-level committed checkpoint.
  if (task.checkpointed_work() < shadow.checkpointed - 1e-9) {
    violation(task_name(task) + ": committed checkpoint regressed");
  }
  if (task.checkpointed_work() < progress - 1e-9) {
    violation(task_name(task) + ": commit below this save's progress");
  }
  if (progress > shadow.work + 1e-9) {
    violation(task_name(task) + ": checkpoint beyond task work");
  }
  shadow.checkpointed = std::max(shadow.checkpointed, task.checkpointed_work());
}

void InvariantChecker::on_checkpoint_retrieved(const sched::TaskState& task,
                                               const grid::Machine& /*machine*/, double now) {
  last_time_ = now;
  if (server_down_ && expect_transfer_aborts_) {
    violation(task_name(task) + ": checkpoint retrieve completed while the server is DOWN");
  }
}

void InvariantChecker::on_server_down(double now) {
  last_time_ = now;
  if (server_down_) {
    violation("checkpoint server failed while already down");
  }
  server_down_ = true;
}

void InvariantChecker::on_server_up(double now) {
  last_time_ = now;
  if (!server_down_) {
    violation("checkpoint server repaired while up");
  }
  server_down_ = false;
}

void InvariantChecker::on_checkpoint_failed(const sched::TaskState& /*task*/,
                                            const grid::Machine& machine, bool /*is_save*/,
                                            double now) {
  last_time_ = now;
  if (!machine_occupancy_.contains(machine.id())) {
    violation("transfer failure on machine " + std::to_string(machine.id()) +
              " with no replica on it");
  }
  ++failed_attempts_[machine.id()];
}

void InvariantChecker::on_checkpoint_lost(const sched::TaskState& task, double now) {
  last_time_ = now;
  if (!server_down_) {
    violation(task_name(task) + ": stored checkpoint lost while the server is UP");
  }
  TaskShadow& shadow = tasks_[&task];
  if (shadow.completed) {
    violation(task_name(task) + ": checkpoint lost after task completion");
  }
  // The one sanctioned regression: the committed baseline resets with the
  // wiped store, so later (smaller) commits are not flagged.
  shadow.checkpointed = 0.0;
  if (task.checkpointed_work() != 0.0) {
    violation(task_name(task) + ": checkpoint-loss event but committed work not wiped");
  }
}

void InvariantChecker::on_replica_degraded(const sched::TaskState& task,
                                           const grid::Machine& machine, double restart_progress,
                                           double now) {
  last_time_ = now;
  if (restart_progress != 0.0) {
    violation(task_name(task) + ": degraded replica restarts at progress " +
              std::to_string(restart_progress) + " (must be 0)");
  }
  auto it = failed_attempts_.find(machine.id());
  if (it == failed_attempts_.end() || it->second <= 0) {
    violation(task_name(task) + ": replica degraded without a preceding failed attempt");
  }
}

void InvariantChecker::on_machine_failed(const grid::Machine& machine, double now) {
  last_time_ = now;
  if (!down_machines_.insert(machine.id()).second) {
    violation("machine " + std::to_string(machine.id()) + " failed while already down");
  }
}

void InvariantChecker::on_machine_repaired(const grid::Machine& machine, double now) {
  last_time_ = now;
  if (down_machines_.erase(machine.id()) == 0) {
    violation("machine " + std::to_string(machine.id()) + " repaired while up");
  }
  if (machine_occupancy_.contains(machine.id())) {
    violation("machine " + std::to_string(machine.id()) + " repaired with a stale replica");
  }
}

}  // namespace dg::sim
