#include "sim/workspace.hpp"

#include <utility>

namespace dg::sim {

namespace {

// Pool tuning: the largest per-replication allocation is a bag's task slab
// (num_tasks * sizeof(TaskState), ~160 KiB for the paper's finest
// granularity). The default largest_required_pool_block (a few KiB) would
// route those straight to the global heap on every replication, defeating
// the reuse; 1 MiB keeps every simulation-sized block in the pool.
std::pmr::pool_options workspace_pool_options() {
  std::pmr::pool_options options;
  options.largest_required_pool_block = std::size_t{1} << 20;
  return options;
}

}  // namespace

SimulationWorkspace::SimulationWorkspace() : pool_(workspace_pool_options()) {}

void SimulationWorkspace::begin_replication() {
  sim_.reset();
  specs_.clear();
  // Reset the result to default values while keeping the buffer capacity of
  // its vectors and the bucket storage of its tail sketches (moved out,
  // cleared/reset, moved back in).
  auto bots = std::move(result_.bots);
  auto monitor = std::move(result_.monitor);
  auto turnaround_tail = std::move(result_.turnaround_tail);
  auto slowdown_tail = std::move(result_.slowdown_tail);
  auto completion_gap_tail = std::move(result_.completion_gap_tail);
  bots.clear();
  monitor.clear();
  turnaround_tail.reset();
  slowdown_tail.reset();
  completion_gap_tail.reset();
  result_ = SimulationResult{};
  result_.bots = std::move(bots);
  result_.monitor = std::move(monitor);
  result_.turnaround_tail = std::move(turnaround_tail);
  result_.slowdown_tail = std::move(slowdown_tail);
  result_.completion_gap_tail = std::move(completion_gap_tail);
  ++replications_;
}

}  // namespace dg::sim
