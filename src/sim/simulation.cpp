#include "sim/simulation.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <limits>
#include <memory_resource>
#include <optional>
#include <stdexcept>

#include "grid/realization.hpp"

#include "des/simulator.hpp"
#include "grid/checkpoint_server.hpp"
#include "sched/policies.hpp"
#include "sched/scheduler.hpp"
#include "sim/execution_engine.hpp"
#include "sim/observer.hpp"
#include "sim/workspace.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace dg::sim {

double SimulationResult::slowdown_fairness() const noexcept {
  const double n = static_cast<double>(slowdown.count());
  if (n == 0.0) return 1.0;
  const double sum = slowdown.sum();
  // E[X^2] reconstructed from the sample variance and mean.
  const double mean = slowdown.mean();
  const double second_moment =
      slowdown.variance() * (n - 1.0) / n + mean * mean;
  const double sum_sq = n * second_moment;
  return sum_sq > 0.0 ? (sum * sum) / (n * sum_sq) : 1.0;
}

workload::WorkloadConfig make_paper_workload(const grid::GridConfig& grid_config,
                                             double granularity, workload::Intensity intensity,
                                             std::size_t num_bots, double bag_size) {
  workload::WorkloadConfig config;
  config.types = {workload::BotType{granularity, 0.5}};
  config.bag_size = bag_size;
  config.num_bots = num_bots;
  const double power = workload::effective_grid_power(grid_config);
  config.arrival_rate =
      workload::arrival_rate_for_utilization(workload::utilization_for(intensity), bag_size, power);
  return config;
}

namespace {

/// Shared state of the arrival / completion callbacks. Lives on run()'s
/// stack so the event lambdas capture a single reference (16 bytes with the
/// bag pointer — inside std::function's small-buffer optimization, so
/// scheduling an arrival never touches the heap).
struct ArrivalContext {
  sched::MultiBotScheduler* scheduler = nullptr;
  SimulationObserver* observer = nullptr;
  ColumnWriter* columns = nullptr;
  des::Simulator* sim = nullptr;
  std::size_t completed = 0;
  std::size_t total = 0;
};

/// Self-rescheduling queue monitor. The tick event captures only `this`
/// (8 bytes, SBO), unlike the old self-copying std::function whose by-ref
/// capture block was re-allocated on the heap at every sample.
struct QueueMonitor {
  des::Simulator* sim = nullptr;
  sched::MultiBotScheduler* scheduler = nullptr;
  grid::DesktopGrid* grid = nullptr;
  std::vector<MonitorSample>* samples = nullptr;
  double interval = 0.0;

  void tick() {
    MonitorSample sample;
    sample.time = sim->now();
    sample.active_bots = scheduler->active_bots().size();
    for (std::size_t m = 0; m < grid->size(); ++m) {
      if (grid->machine(m).busy()) ++sample.busy_machines;
      if (grid->machine(m).up()) ++sample.up_machines;
    }
    samples->push_back(sample);
    if (!sim->stopped()) sim->schedule_after(interval, [this] { tick(); });
  }
};

}  // namespace

SimulationResult Simulation::run(SimulationObserver* observer) {
  SimulationWorkspace workspace;
  return run(workspace, observer);  // copies the result out of the workspace
}

const SimulationResult& Simulation::run(SimulationWorkspace& workspace,
                                        SimulationObserver* observer) {
  workspace.begin_replication();
  des::Simulator& sim = workspace.simulator();
  // The queue is empty right after begin_replication(), so a per-config
  // backend override can be applied here; results are bit-identical either
  // way (see des/queue_policy.hpp).
  if (config_.queue_backend.has_value()) sim.set_queue_backend(*config_.queue_backend);
  std::pmr::memory_resource* const mem = workspace.resource();
  // Results are assembled in place in the workspace (monitor samples and
  // tail-sketch columns stream into it during the run); begin_replication()
  // reset every field while keeping the bots / monitor / sketch-bucket
  // storage.
  SimulationResult& result = workspace.result();

  const bool trace_driven_grid = config_.availability_trace != nullptr;
  grid::GridConfig grid_config = config_.grid;
  if (trace_driven_grid) {
    // Machine up/down comes from the trace; disable the stochastic processes.
    grid_config.availability = grid::AvailabilityModel::for_level(grid::AvailabilityLevel::kAlways);
  }
  grid::DesktopGrid grid(grid_config, sim, config_.seed, mem);

  // --- adversarial scenario ---
  // Stress windows derive from the workload configuration alone, so every
  // policy cell and replication of a campaign faces the same stress timeline
  // (see sim/adversary.hpp). Empty when the adversary is disabled.
  std::vector<grid::StressWindow> stress_windows;
  if (config_.adversary.enabled) {
    if (config_.trace_bots != nullptr) {
      throw std::invalid_argument(
          "Simulation: the adversarial scenario needs a generated workload (trace_bots replay "
          "has no arrival process to modulate)");
    }
    if (config_.workload.arrivals != workload::ArrivalProcess::kPoisson) {
      throw std::invalid_argument(
          "Simulation: the adversarial scenario requires Poisson arrivals");
    }
    stress_windows = adversary_windows(config_.adversary, config_.workload);
  }

  // --- workload ---
  // Generated before any component schedules events (generation only draws
  // from the "workload" stream, it schedules nothing) because the horizon —
  // which the world-realization cache keys its synthesis length on — depends
  // on the last arrival.
  std::vector<workload::BotSpec>& specs = workspace.specs();
  if (config_.trace_bots != nullptr) {
    specs = *config_.trace_bots;
  } else if (config_.adversary.enabled && config_.adversary.burst_intensity > 1.0) {
    // Burst modulation consumes the same "workload" stream through the
    // piecewise-rate path; arrivals inside a window come ~burst_intensity
    // times faster.
    workload::WorkloadConfig stressed = config_.workload;
    stressed.stress_windows = stress_windows;
    stressed.stress_multiplier = config_.adversary.burst_intensity;
    workload::WorkloadGenerator generator(std::move(stressed),
                                          rng::RandomStream::derive(config_.seed, "workload"));
    generator.generate_into(specs);
  } else {
    workload::WorkloadGenerator generator(config_.workload,
                                          rng::RandomStream::derive(config_.seed, "workload"));
    generator.generate_into(specs);
  }
  DG_ASSERT(!specs.empty());

  // --- horizon ---
  double horizon = config_.max_sim_time;
  if (horizon <= 0.0) {
    const double last_arrival = specs.back().arrival_time;
    double bag_size = config_.workload.bag_size;
    if (config_.trace_bots != nullptr) {
      double trace_work = 0.0;
      for (const workload::BotSpec& spec : specs) trace_work += spec.total_work();
      bag_size = trace_work / static_cast<double>(specs.size());
    }
    const double demand_per_bot = bag_size / workload::effective_grid_power(config_.grid);
    horizon = last_arrival + 300.0 * demand_per_bot + 86400.0;
  }

  // --- world realization ---
  // With a cache installed, the availability / server-fault timelines are
  // synthesized once per (models, machine count, seed) and replayed below —
  // bit-identical to the live processes (see grid/realization.hpp).
  std::shared_ptr<const grid::WorldRealization> world;
  if (config_.world_cache != nullptr && !trace_driven_grid &&
      (grid_config.availability.failures_enabled ||
       config_.grid.checkpoint_server_faults.enabled || grid_config.outages.enabled)) {
    world = config_.world_cache->acquire(grid_config.availability,
                                         config_.grid.checkpoint_server_faults,
                                         grid_config.outages, grid.size(), horizon, config_.seed);
  }

  // --- tail-metrics columns ---
  // Completion gaps and the decayed busy fraction stream during the run; the
  // per-bag turnaround/slowdown columns are written during result assembly
  // (same warmup-filtered population as the OnlineStats aggregates). The
  // sketch sinks live in the workspace's result, so a warmed workspace
  // serves every add from retained bucket storage.
  ColumnWriter columns({&result.turnaround_tail, &result.slowdown_tail,
                        &result.completion_gap_tail},
                       grid.size(), horizon / 4.0);

  // --- scheduler stack ---
  auto individual = sched::IndividualScheduler::make(config_.individual);
  std::unique_ptr<sched::ReplicationController> replication;
  if (config_.dynamic_replication) {
    replication = std::make_unique<sched::DynamicReplication>();
  } else {
    const int threshold = config_.replication_threshold > 0 ? config_.replication_threshold
                                                            : individual->default_threshold();
    replication = std::make_unique<sched::StaticReplication>(threshold);
  }
  const sched::TaskOrder task_order = individual->task_order();
  const bool resubmission_priority = individual->resubmission_priority();
  (void)resubmission_priority;
  std::unique_ptr<sched::BagSelectionPolicy> policy =
      sched::make_policy(config_.policy, config_.seed, mem);
  if (config_.wrap_policy) policy = config_.wrap_policy(std::move(policy));
  sched::MultiBotScheduler scheduler(sim, grid, std::move(policy), std::move(individual),
                                     std::move(replication), mem);

  // --- execution engine ---
  EngineConfig engine_config;
  const bool failures_possible =
      config_.grid.availability.failures_enabled || trace_driven_grid;
  engine_config.checkpointing = scheduler.individual().checkpointing() && failures_possible;
  if (engine_config.checkpointing) {
    // With a trace, config_.grid.availability is the caller-provided model of
    // the trace's statistics (see SimulationConfig::availability_trace docs);
    // fall back to the MedAvail MTTF if the caller left failures disabled.
    const double mttf = config_.grid.availability.failures_enabled
                            ? config_.grid.availability.mttf()
                            : grid::AvailabilityModel::for_level(grid::AvailabilityLevel::kMed).mttf();
    engine_config.checkpoint_interval =
        grid::young_checkpoint_interval(config_.grid.checkpoint_transfer.mean(), mttf);
  }
  if (config_.grid.checkpoint_server_faults.enabled) {
    engine_config.failable_server = true;
    engine_config.server_faults = config_.grid.checkpoint_server_faults;
    engine_config.retry = config_.checkpoint_retry;
    engine_config.world = world;  // null = live fault process
  }
  if (config_.adversary.enabled && config_.adversary.hit_server) {
    // Forced server downtime over every stress window; composes with the
    // stochastic fault process (if any) via the server's down-cause counting.
    engine_config.failable_server = true;
    engine_config.retry = config_.checkpoint_retry;
    engine_config.server_down_windows = stress_windows;
  }
  ExecutionEngine engine(sim, grid, scheduler, engine_config, config_.seed, mem);
  engine.add_observer(columns);
  if (observer != nullptr) engine.add_observer(*observer);

  std::unique_ptr<grid::TraceAvailabilityDriver> trace_driver;
  std::optional<grid::RealizedAvailabilityDriver> realized_driver;
  std::optional<grid::RealizedOutageDriver> realized_outages;
  std::optional<grid::ScheduledOutageProcess> adversary_outages;
  const auto on_failure = grid::TransitionDelegate::to<&ExecutionEngine::on_machine_failure>(engine);
  const auto on_repair = grid::TransitionDelegate::to<&ExecutionEngine::on_machine_repair>(engine);
  if (trace_driven_grid) {
    trace_driver = std::make_unique<grid::TraceAvailabilityDriver>(sim, grid,
                                                                   *config_.availability_trace);
    trace_driver->start(on_failure, on_repair);
    grid.start(nullptr, nullptr);  // processes disabled; keeps uptime stats coherent
  } else if (world != nullptr) {
    // Replay the cached realization: same first-failure scheduling order as
    // grid.start(), same lazy one-event-per-machine pattern thereafter. When
    // the availability model has failures disabled (server-faults- or
    // outage-only worlds) the live processes are no-ops, so starting them
    // matches the recorded (empty) machine timelines.
    if (grid_config.availability.failures_enabled) {
      realized_driver.emplace(sim, grid, *world, workspace.replay_cursors());
      realized_driver->start(on_failure, on_repair);
    } else {
      grid.start_machines(on_failure, on_repair);
    }
    if (world->outages.enabled) {
      // Outage strikes come from the realization too (same "grid.outages"
      // stream consumption as the live process, cache-on == cache-off).
      realized_outages.emplace(sim, grid, *world);
      realized_outages->start(on_failure, on_repair);
    } else {
      grid.start_outages(on_failure, on_repair);
    }
  } else {
    grid.start(on_failure, on_repair);
  }
  if (config_.adversary.enabled && config_.adversary.hit_machines) {
    // The director's correlated outages: victim draws come from a stream
    // derived only here, so enabling the adversary perturbs no other stream.
    adversary_outages.emplace(sim, grid, stress_windows, config_.adversary.outage_fraction,
                              rng::RandomStream::derive(config_.seed, "adversary.outages"));
    adversary_outages->start(on_failure, on_repair);
  }

  // Bag states live in a pooled deque (stable addresses, no per-bag
  // unique_ptr); their task slabs and dispatch structures draw from `mem`.
  std::pmr::deque<sched::BotState> bots{mem};
  for (const workload::BotSpec& spec : specs) {
    bots.emplace_back(spec, task_order, mem);
  }

  ArrivalContext ctx{&scheduler, observer, &columns, &sim, 0, bots.size()};
  scheduler.set_bot_completed_callback([&ctx](sched::BotState& bot) {
    ++ctx.completed;
    ctx.columns->on_bot_completed(bot, ctx.sim->now());
    if (ctx.observer != nullptr) ctx.observer->on_bot_completed(bot, ctx.sim->now());
    if (ctx.completed == ctx.total) ctx.sim->stop();  // availability events would run forever
  });

  for (sched::BotState& bot_ref : bots) {
    sched::BotState* bot = &bot_ref;
    sim.schedule_at(bot->arrival_time(), [&ctx, bot] {
      if (ctx.observer != nullptr) ctx.observer->on_bot_submitted(*bot, ctx.sim->now());
      ctx.scheduler->submit(*bot);
    });
  }

  // --- queue monitor ---
  // Samples go straight into the workspace's result buffer (capacity kept
  // across replications — no steady-state growth).
  const double monitor_interval =
      config_.monitor_interval > 0.0 ? config_.monitor_interval : horizon / 512.0;
  QueueMonitor monitor{&sim, &scheduler, &grid, &workspace.result().monitor, monitor_interval};
  sim.schedule_after(monitor_interval, [&monitor] { monitor.tick(); });

  if (config_.before_run_loop) config_.before_run_loop();
  sim.run_until(horizon);
  if (config_.after_run_loop) config_.after_run_loop();
  const bool saturated = ctx.completed < ctx.total;
  const double end_time = sim.now();
  if (observer != nullptr) {
    observer->on_run_finished(sim.stats(), scheduler.sched_stats(), engine.fault_stats(end_time),
                              end_time);
  }

  // --- results ---
  result.saturated = saturated;
  result.bots_completed = ctx.completed;
  result.end_time = end_time;
  result.utilization = engine.utilization(end_time);
  result.decayed_utilization = columns.decayed_utilization(end_time);
  result.measured_availability = trace_driven_grid
                                     ? config_.availability_trace->mean_availability(end_time)
                                     : grid.measured_availability(end_time);
  result.num_machines = grid.size();
  result.machine_failures = grid.total_failures();
  result.replica_failures = scheduler.replica_failures();
  result.replicas_started = scheduler.replicas_started();
  result.tasks_completed = scheduler.tasks_completed();
  result.checkpoints_saved = engine.checkpoints_saved();
  result.checkpoint_retrievals = engine.checkpoint_retrievals();
  result.wasted_compute_time = engine.wasted_compute_time();
  result.useful_compute_time = engine.useful_compute_time();
  result.lost_work = engine.lost_work();
  result.events_executed = sim.executed_events();
  result.kernel = sim.stats();
  result.sched = scheduler.sched_stats();
  result.faults = engine.fault_stats(end_time);

  result.bots.reserve(bots.size());
  for (std::size_t i = 0; i < bots.size(); ++i) {
    const sched::BotState& bot = bots[i];
    BotRecord record;
    record.id = bot.id();
    record.arrival_time = bot.arrival_time();
    record.granularity = bot.granularity();
    record.num_tasks = bot.num_tasks();
    record.total_work = bot.total_work();
    record.completed = bot.completed();
    if (bot.completed()) {
      record.first_dispatch_time = bot.first_dispatch_time();
      record.completion_time = bot.completion_time();
      record.turnaround = bot.turnaround();
      record.waiting_time = bot.waiting_time();
      record.makespan = bot.makespan();
    } else {
      // Censored at the horizon: a lower bound on the true turnaround.
      record.first_dispatch_time = bot.ever_dispatched() ? bot.first_dispatch_time() : end_time;
      record.completion_time = end_time;
      record.turnaround = end_time - bot.arrival_time();
      record.waiting_time = record.first_dispatch_time - bot.arrival_time();
      record.makespan = record.turnaround - record.waiting_time;
    }
    const double ideal_service =
        record.total_work / workload::effective_grid_power(config_.grid);
    record.slowdown = ideal_service > 0.0 ? record.turnaround / ideal_service : 0.0;
    if (i >= config_.warmup_bots) {
      result.turnaround.add(record.turnaround);
      result.waiting.add(record.waiting_time);
      result.makespan.add(record.makespan);
      result.slowdown.add(record.slowdown);
      columns.write_bag(record.turnaround, record.slowdown);
    }
    result.bots.push_back(record);
  }
  {
    // Queue stability is judged while load is still being offered: compare
    // the active-bag level early vs late within the arrival window (after
    // the last arrival the queue always drains in a finite-workload run).
    // Sample times are monotonic, so the window is the contiguous index
    // range [lo, hi) — no materialized pointer vector needed.
    const double first_arrival = specs.front().arrival_time;
    const double last_arrival = specs.back().arrival_time;
    const std::vector<MonitorSample>& samples = result.monitor;
    std::size_t lo = 0;
    while (lo < samples.size() && samples[lo].time < first_arrival) ++lo;
    std::size_t hi = samples.size();
    while (hi > lo && samples[hi - 1].time > last_arrival) --hi;
    const std::size_t window = hi - lo;
    if (window >= 8) {
      const std::size_t quarter = window / 4;
      double first = 0.0, last = 0.0;
      for (std::size_t i = 0; i < quarter; ++i) {
        first += static_cast<double>(samples[lo + i].active_bots);
        last += static_cast<double>(samples[hi - 1 - i].active_bots);
      }
      if (first > 0.0) {
        result.queue_growth_ratio = last / first;
      } else if (last > 0.0) {
        result.queue_growth_ratio = std::numeric_limits<double>::infinity();
      }
    }
  }
  if (saturated) {
    util::log_debug("simulation saturated: ", ctx.completed, "/", ctx.total,
                    " bags completed by t=", end_time, " (policy ",
                    sched::to_string(config_.policy), ")");
  }
  return result;
}

}  // namespace dg::sim
