// Timeline recording: a flat, exportable event log of a run.
//
// Captures every observer event as a row (time, kind, bot, task, machine,
// value) for CSV export — enough to reconstruct Gantt charts of machine
// occupancy or per-bag progress in any plotting tool. Recording is bounded
// by max_events (dropping further events and counting them) so an
// accidentally-huge run cannot exhaust memory.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sim/observer.hpp"

namespace dg::sim {

enum class TimelineEventKind : std::uint8_t {
  kBotSubmitted,
  kBotCompleted,
  kReplicaStarted,
  kReplicaCompleted,
  kReplicaCancelled,
  kReplicaFailed,
  kTaskCompleted,
  kCheckpointSaved,
  kCheckpointRetrieved,
  kMachineFailed,
  kMachineRepaired,
};

[[nodiscard]] std::string_view to_string(TimelineEventKind kind) noexcept;

struct TimelineEvent {
  double time = 0.0;
  TimelineEventKind kind = TimelineEventKind::kBotSubmitted;
  std::int64_t bot = -1;      // -1 = not applicable
  std::int64_t task = -1;
  std::int64_t machine = -1;
  double value = 0.0;         // kind-specific payload (e.g. checkpoint progress)
};

class TimelineRecorder final : public SimulationObserver {
 public:
  explicit TimelineRecorder(std::size_t max_events = 1u << 20)
      : max_events_(max_events) {}

  void on_bot_submitted(const sched::BotState& bot, double now) override;
  void on_bot_completed(const sched::BotState& bot, double now) override;
  void on_replica_started(const sched::TaskState& task, const grid::Machine& machine,
                          double now) override;
  void on_replica_stopped(const sched::TaskState& task, const grid::Machine& machine,
                          ReplicaStopKind kind, double now) override;
  void on_task_completed(const sched::TaskState& task, double now) override;
  void on_checkpoint_saved(const sched::TaskState& task, const grid::Machine& machine,
                           double progress, double now) override;
  void on_checkpoint_retrieved(const sched::TaskState& task, const grid::Machine& machine,
                               double now) override;
  void on_machine_failed(const grid::Machine& machine, double now) override;
  void on_machine_repaired(const grid::Machine& machine, double now) override;

  [[nodiscard]] const std::vector<TimelineEvent>& events() const noexcept { return events_; }
  [[nodiscard]] std::uint64_t dropped_events() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t count(TimelineEventKind kind) const noexcept;

  /// CSV export: time,kind,bot,task,machine,value (empty cells for -1).
  void write_csv(std::ostream& os) const;

 private:
  void record(TimelineEvent event);

  std::size_t max_events_;
  std::vector<TimelineEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace dg::sim
