#include "analysis/queueing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dg::analysis {

QueueingPrediction mg1_fcfs(double arrival_rate, const ServiceModel& service) {
  if (arrival_rate < 0.0 || service.mean <= 0.0) {
    throw std::invalid_argument("mg1_fcfs: need arrival_rate >= 0 and mean service > 0");
  }
  QueueingPrediction prediction;
  prediction.utilization = arrival_rate * service.mean;
  prediction.stable = prediction.utilization < 1.0;
  if (!prediction.stable) {
    prediction.mean_waiting = std::numeric_limits<double>::infinity();
    prediction.mean_response = std::numeric_limits<double>::infinity();
    return prediction;
  }
  prediction.mean_waiting =
      arrival_rate * service.second_moment / (2.0 * (1.0 - prediction.utilization));
  prediction.mean_response = prediction.mean_waiting + service.mean;
  return prediction;
}

QueueingPrediction mg1_ps(double arrival_rate, const ServiceModel& service) {
  if (arrival_rate < 0.0 || service.mean <= 0.0) {
    throw std::invalid_argument("mg1_ps: need arrival_rate >= 0 and mean service > 0");
  }
  QueueingPrediction prediction;
  prediction.utilization = arrival_rate * service.mean;
  prediction.stable = prediction.utilization < 1.0;
  if (!prediction.stable) {
    prediction.mean_waiting = std::numeric_limits<double>::infinity();
    prediction.mean_response = std::numeric_limits<double>::infinity();
    return prediction;
  }
  prediction.mean_response = service.mean / (1.0 - prediction.utilization);
  prediction.mean_waiting = prediction.mean_response - service.mean;
  return prediction;
}

QueueingPrediction mm1(double arrival_rate, double mean_service) {
  ServiceModel service;
  service.mean = mean_service;
  service.second_moment = 2.0 * mean_service * mean_service;  // exponential: E[S^2] = 2/mu^2
  return mg1_fcfs(arrival_rate, service);
}

ServiceModel bag_service_model(const grid::GridConfig& grid_config,
                               const workload::WorkloadConfig& workload_config) {
  if (workload_config.types.size() != 1) {
    throw std::invalid_argument(
        "bag_service_model: analytic model covers single-type workloads");
  }
  const workload::BotType& type = workload_config.types.front();
  const double effective_power = workload::effective_grid_power(grid_config);
  const double bag_size = workload_config.bag_size;

  // Bulk regime: the bag saturates the grid; service ~ total demand.
  const double n_tasks = bag_size / type.granularity;
  const double bulk_mean = bag_size / effective_power;
  // Bag total work = sum of ~n uniform tasks; its variance transfers through
  // the grid power.
  const double task_var =
      (type.spread * type.granularity) * (type.spread * type.granularity) / 3.0;
  const double bulk_var = n_tasks * task_var / (effective_power * effective_power);

  // Straggler regime: fewer tasks than machines; the longest task gates the
  // makespan. Effective per-machine speed carries the same availability /
  // checkpoint discount as the grid aggregate.
  const double num_machines = grid_config.total_power /
                              (grid_config.heterogeneity == grid::Heterogeneity::kHom
                                   ? grid_config.hom_power
                                   : 0.5 * (grid_config.het_power_lo + grid_config.het_power_hi));
  const double per_machine_power = effective_power / num_machines;
  const double lo = (1.0 - type.spread) * type.granularity;
  const double hi = (1.0 + type.spread) * type.granularity;
  // E[max of n U(lo,hi)] = hi - (hi-lo)/(n+1); Var = n (hi-lo)^2 / ((n+1)^2 (n+2)).
  const double max_work = hi - (hi - lo) / (n_tasks + 1.0);
  const double straggler_mean = max_work / per_machine_power;
  const double straggler_var = n_tasks * (hi - lo) * (hi - lo) /
                               ((n_tasks + 1.0) * (n_tasks + 1.0) * (n_tasks + 2.0)) /
                               (per_machine_power * per_machine_power);

  ServiceModel service;
  // The two regimes overlap in time; the slower one dominates the makespan.
  service.mean = std::max(bulk_mean, straggler_mean);
  const double variance = bulk_mean >= straggler_mean ? bulk_var : straggler_var;
  service.second_moment = service.mean * service.mean + variance;
  return service;
}

}  // namespace dg::analysis
