// Analytical queueing approximations for multi-BoT Desktop Grid scheduling.
//
// The paper derives its arrival rates from the operational law U = lambda * D
// (Menasce et al.); this module goes further and predicts mean turnaround
// for the limiting regimes of the policies, giving an independent check of
// the simulator:
//
//  * FCFS-Excl serves whole bags one at a time: the grid is a single server
//    with service time ~ the bag's makespan in isolation -> M/G/1 FCFS,
//    mean waiting from Pollaczek-Khinchine.
//  * RR interleaves all bags fairly: -> M/G/1 processor sharing, whose mean
//    response time E[S]/(1 - rho) is insensitive to the service distribution.
//
// These are approximations (they ignore stragglers, replication overhead and
// task granularity); the model-validation bench quantifies where they hold.
#pragma once

#include "grid/desktop_grid.hpp"
#include "workload/generator.hpp"

namespace dg::analysis {

struct ServiceModel {
  /// Mean bag service time E[S] on the whole grid (seconds).
  double mean = 0.0;
  /// Second moment E[S^2].
  double second_moment = 0.0;

  [[nodiscard]] double variance() const noexcept { return second_moment - mean * mean; }
  /// Squared coefficient of variation.
  [[nodiscard]] double scv() const noexcept {
    return mean > 0.0 ? variance() / (mean * mean) : 0.0;
  }
};

struct QueueingPrediction {
  double utilization = 0.0;  // rho = lambda * E[S]
  double mean_waiting = 0.0;
  double mean_response = 0.0;  // waiting + service
  bool stable = true;          // rho < 1
};

/// Pollaczek-Khinchine for M/G/1 FCFS: W = lambda E[S^2] / (2 (1 - rho)).
[[nodiscard]] QueueingPrediction mg1_fcfs(double arrival_rate, const ServiceModel& service);

/// M/G/1 processor sharing: E[T] = E[S] / (1 - rho) (distribution-insensitive).
[[nodiscard]] QueueingPrediction mg1_ps(double arrival_rate, const ServiceModel& service);

/// M/M/1 mean response (exponential service with the given mean) — sanity
/// anchor: mg1_fcfs with scv=1 must agree with this.
[[nodiscard]] QueueingPrediction mm1(double arrival_rate, double mean_service);

/// Service model of one paper-style bag executed in isolation on the whole
/// grid: S ~ D = bag_size / P_eff, plus a straggler tail of roughly one task
/// duration when the bag has fewer tasks than machines. E[S^2] follows from
/// the (small) variability of the bag's total work; the dominant effect is
/// the near-deterministic service (scv << 1).
[[nodiscard]] ServiceModel bag_service_model(const grid::GridConfig& grid_config,
                                             const workload::WorkloadConfig& workload_config);

}  // namespace dg::analysis
