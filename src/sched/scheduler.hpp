// MultiBotScheduler: the paper's two-step centralized scheduler.
//
// On every trigger (bag arrival, machine freed, machine repaired, replica
// failure) it runs the dispatch loop: while an up-and-idle machine exists,
// ask the bag-selection policy for the next task (step 1), which delegates
// the within-bag choice to the individual scheduler (step 2), and hand the
// (task, machine) pair to the execution engine via DispatchSink.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "des/simulator.hpp"
#include "grid/desktop_grid.hpp"
#include "sched/bot_state.hpp"
#include "sched/dispatch_index.hpp"
#include "sched/individual.hpp"
#include "sched/policy.hpp"
#include "sched/replication.hpp"
#include "sched/sched_stats.hpp"

namespace dg::sched {

/// Where dispatch decisions go: implemented by sim::ExecutionEngine.
class DispatchSink {
 public:
  virtual ~DispatchSink() = default;
  virtual void start_replica(TaskState& task, grid::Machine& machine) = 0;
};

/// The paper's two-step centralized scheduler (see file comment).
///
/// Thread-safety: none — the scheduler lives entirely inside one
/// simulation's event loop (one per Simulator, one Simulator per thread).
/// Lifetime: `sim` and `grid` must outlive the scheduler; submitted
/// BotStates stay owned by the caller and must outlive the run.
class MultiBotScheduler {
 public:
  /// Takes ownership of the policy/individual/replication strategy objects.
  /// A DispatchSink must be attached via set_sink() before the first
  /// submit()/trigger() can dispatch anything. The dispatch index allocates
  /// from `mem` (default: global heap; see sim::SimulationWorkspace).
  MultiBotScheduler(des::Simulator& sim, grid::DesktopGrid& grid,
                    std::unique_ptr<BagSelectionPolicy> policy,
                    std::unique_ptr<IndividualScheduler> individual,
                    std::unique_ptr<ReplicationController> replication,
                    std::pmr::memory_resource* mem = std::pmr::get_default_resource());

  MultiBotScheduler(const MultiBotScheduler&) = delete;
  MultiBotScheduler& operator=(const MultiBotScheduler&) = delete;

  void set_sink(DispatchSink& sink) noexcept { sink_ = &sink; }
  /// Invoked when a bag's last task completes (Simulation records metrics).
  void set_bot_completed_callback(std::function<void(BotState&)> callback) {
    on_bot_completed_ = std::move(callback);
  }

  /// Registers an arriving bag (caller keeps ownership) and dispatches.
  /// Precondition: `bot` was not submitted before and is incomplete.
  void submit(BotState& bot);

  /// Dispatch loop: while an up-and-idle machine exists and the policy
  /// yields a task, hand (task, machine) to the sink. Machines are pulled
  /// from the grid's free-machine index in id order (the same order the old
  /// full scan produced), so the loop's cost is proportional to the number
  /// of dispatches, not the grid size. Re-entrancy safe — calls arriving
  /// while a dispatch is in flight (e.g. from an engine notification)
  /// coalesce into the running loop instead of recursing.
  void trigger();

  // --- engine notifications (see sim/execution_engine.cpp for call order) ---

  /// After task.on_replica_started().
  void notify_replica_started(TaskState& task);

  enum class StopReason : std::uint8_t {
    kFailed,     // host machine failed
    kCancelled,  // sibling replica won
    kWinner,     // this replica completed the task
  };
  /// After task.on_replica_stopped().
  void notify_replica_stopped(TaskState& task, StopReason reason);

  /// After task.mark_completed(), BEFORE sibling replicas are stopped.
  void notify_task_completed(TaskState& task);

  /// `machine` came back up (or otherwise became available).
  void notify_capacity_change(grid::Machine& machine) {
    DG_ASSERT_MSG(machine.available(), "capacity change for an unavailable machine");
    trigger();
  }

  // --- queries ---

  [[nodiscard]] const ActiveBotList& active_bots() const noexcept { return active_bots_; }
  [[nodiscard]] const DispatchIndex& dispatch_index() const noexcept { return index_; }
  [[nodiscard]] const BagSelectionPolicy& policy() const noexcept { return *policy_; }
  [[nodiscard]] const IndividualScheduler& individual() const noexcept { return *individual_; }
  [[nodiscard]] const ReplicationController& replication() const noexcept {
    return *replication_;
  }
  /// Threshold in force for the next dispatch decision.
  [[nodiscard]] int effective_threshold() const;

  /// Dispatch-path cost counters (see sched/sched_stats.hpp).
  [[nodiscard]] const SchedStats& sched_stats() const noexcept { return stats_; }

  [[nodiscard]] std::uint64_t replicas_started() const noexcept { return replicas_started_; }
  [[nodiscard]] std::uint64_t tasks_completed() const noexcept { return tasks_completed_; }
  [[nodiscard]] std::uint64_t bots_completed() const noexcept { return bots_completed_; }
  [[nodiscard]] std::uint64_t replica_failures() const noexcept { return replica_failures_; }

 private:
  des::Simulator& sim_;
  grid::DesktopGrid& grid_;
  std::unique_ptr<BagSelectionPolicy> policy_;
  std::unique_ptr<IndividualScheduler> individual_;
  std::unique_ptr<ReplicationController> replication_;
  DispatchSink* sink_ = nullptr;
  std::function<void(BotState&)> on_bot_completed_;

  ActiveBotList active_bots_;  // incomplete, arrival order
  DispatchIndex index_;        // eligibility sets over active_bots_
  bool in_trigger_ = false;
  SchedStats stats_;

  std::uint64_t replicas_started_ = 0;
  std::uint64_t tasks_completed_ = 0;
  std::uint64_t bots_completed_ = 0;
  std::uint64_t replica_failures_ = 0;
};

}  // namespace dg::sched
