// Incremental dispatch-eligibility index over the active bags.
//
// The bag-selection policies used to answer "which bags can accept a machine
// right now?" by probing every active bag on every dispatch — O(B) per
// machine even when the answer is the same bag as last time. This index
// maintains the memberships the policies actually query, keyed by bag id
// (== arrival order, since bag ids are assigned monotonically):
//
//   dispatchable : the bag can produce a task under the current replication
//                  threshold R, i.e. has_pending() || (R > 1 &&
//                  min_replicated_count() < R). Exactly the condition under
//                  which SchedulerContext::pick_from() returns non-null.
//   no_running   : total_running() == 0. Every incomplete bag with no
//                  running replica necessarily has a pending task, so
//                  no_running is a subset of dispatchable.
//   stale        : a resubmission/requeue pool is non-empty but holds no
//                  dispatchable entry (see drain_stale_* below).
//
// BotState calls refresh() from its own mutators (replica start/stop, task
// completion, pool pushes), so the index is current by the time a policy
// runs — including after sibling-replica stops of completed tasks, which
// never reach the policy observer hooks. The threshold is pushed in by the
// scheduler at the top of each trigger; a change rebuilds dispatchable_ in
// O(B log B) (rare: only dynamic-replication runs ever change it).
//
// Stale bags and the drain_stale_* calls: the per-bag resubmission queues
// are pruned lazily — a probe (IndividualScheduler::pick) pops invalid
// front entries at probe time, and an entry that was stale while no probe
// happened to look REVALIDATES, keeping its original priority position, if
// its task fails again. Which entries survive therefore depends on exactly
// which bags each select probed. The positional scans probed every
// non-dispatchable bag on the way to the winner; the index-based policies
// jump straight to the winner, so they must replay those probes on the bags
// the scan would have visited — that is the drain_stale_* family. Only bags
// whose pools hold stale entries are tracked (probing a bag with empty or
// all-valid pools pops nothing), which keeps the replay amortized O(1):
// every pop is paid for by an earlier push.
//
// All sets are std::map<BotId, BotState*> so iteration order is bag-arrival
// order — the determinism contract shared with ActiveBotList.
#pragma once

#include <cstdint>
#include <map>
#include <memory_resource>

#include "workload/bot.hpp"

namespace dg::sched {

class BotState;
class IndividualScheduler;
struct SchedStats;

class DispatchIndex {
 public:
  /// The membership maps allocate from `mem` (default: global heap); pass a
  /// per-replication pool to recycle their nodes across runs.
  explicit DispatchIndex(std::pmr::memory_resource* mem = std::pmr::get_default_resource())
      : bots_(mem), dispatchable_(mem), no_running_(mem), stale_(mem) {}
  DispatchIndex(const DispatchIndex&) = delete;
  DispatchIndex& operator=(const DispatchIndex&) = delete;

  /// Optional stats sink for index_updates / index_rebuilds counters.
  void set_stats(SchedStats* stats) noexcept { stats_ = stats; }

  /// Sets the replication threshold the dispatchable set is computed
  /// against. A change recomputes every bag's dispatchable membership.
  void set_threshold(int threshold);
  [[nodiscard]] int threshold() const noexcept { return threshold_; }

  /// Starts tracking `bot` and computes its memberships.
  void register_bot(BotState& bot);
  /// Stops tracking `bot` (call at bag completion).
  void unregister_bot(BotState& bot);

  /// Recomputes `bot`'s memberships from its current state. No-op for
  /// unregistered bags (BotState mutators may still fire during the
  /// completion teardown, after unregister_bot).
  void refresh(BotState& bot);

  // --- queries (all O(log B) or better; arrival order throughout) ---

  /// Earliest-arrived dispatchable bag, or nullptr.
  [[nodiscard]] BotState* first_dispatchable() const noexcept;
  /// Earliest-arrived dispatchable bag with id > `after`, wrapping to the
  /// front — the round-robin successor. nullptr iff no bag is dispatchable.
  [[nodiscard]] BotState* next_dispatchable_after(std::uint64_t after) const noexcept;
  /// Earliest-arrived bag with no running replica, or nullptr.
  [[nodiscard]] BotState* first_no_running() const noexcept;

  // --- stale-queue replay (see file comment) ---

  /// Probes every stale bag with id < `limit`, replaying the arrival-order
  /// scan up to (excluding) the selected bag.
  void drain_stale_below(const IndividualScheduler& individual, workload::BotId limit);
  /// Probes every stale bag the round-robin scan visits between the cursor
  /// and the selected bag: ids in (after, until), wrapping past the end.
  void drain_stale_ring(const IndividualScheduler& individual, std::uint64_t after,
                        workload::BotId until);
  /// Probes every stale bag — what a scan that found nothing dispatchable
  /// did on the way to returning null.
  void drain_stale_all(const IndividualScheduler& individual);

 private:
  [[nodiscard]] bool is_dispatchable(const BotState& bot) const;
  void probe_stale(BotState& bot, const IndividualScheduler& individual);

  std::pmr::map<workload::BotId, BotState*> bots_;          // registered bags
  std::pmr::map<workload::BotId, BotState*> dispatchable_;  // can accept a machine
  std::pmr::map<workload::BotId, BotState*> no_running_;    // total_running() == 0
  std::pmr::map<workload::BotId, BotState*> stale_;         // has_stale_queue_entries()
  int threshold_ = 0;
  SchedStats* stats_ = nullptr;
};

}  // namespace dg::sched
