#include "sched/policies.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>

#include "util/assert.hpp"

namespace dg::sched {

std::string to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFcfsExcl: return "FCFS-Excl";
    case PolicyKind::kFcfsShare: return "FCFS-Share";
    case PolicyKind::kRoundRobin: return "RR";
    case PolicyKind::kRoundRobinNrf: return "RR-NRF";
    case PolicyKind::kLongIdle: return "LongIdle";
    case PolicyKind::kRandom: return "Random";
    case PolicyKind::kShortestBagFirst: return "SJF-Bag";
    case PolicyKind::kPendingFirst: return "PF-RR";
  }
  return "?";
}

namespace {
std::string ascii_lower(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) out.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
  return out;
}
}  // namespace

std::optional<PolicyKind> parse_policy_kind(std::string_view name) {
  static constexpr PolicyKind kAll[] = {
      PolicyKind::kFcfsExcl,   PolicyKind::kFcfsShare,        PolicyKind::kRoundRobin,
      PolicyKind::kRoundRobinNrf, PolicyKind::kLongIdle,      PolicyKind::kRandom,
      PolicyKind::kShortestBagFirst, PolicyKind::kPendingFirst};
  const std::string lower = ascii_lower(name);
  for (PolicyKind kind : kAll) {
    if (lower == ascii_lower(to_string(kind))) return kind;
  }
  return std::nullopt;
}

std::span<const PolicyKind> paper_policies() noexcept {
  static constexpr std::array<PolicyKind, 5> kPolicies = {
      PolicyKind::kFcfsExcl, PolicyKind::kFcfsShare, PolicyKind::kRoundRobin,
      PolicyKind::kRoundRobinNrf, PolicyKind::kLongIdle};
  return kPolicies;
}

std::unique_ptr<BagSelectionPolicy> make_policy(PolicyKind kind, std::uint64_t seed,
                                                std::pmr::memory_resource* mem) {
  switch (kind) {
    case PolicyKind::kFcfsExcl: return std::make_unique<FcfsExclPolicy>();
    case PolicyKind::kFcfsShare: return std::make_unique<FcfsSharePolicy>();
    case PolicyKind::kRoundRobin: return std::make_unique<RoundRobinPolicy>();
    case PolicyKind::kRoundRobinNrf: return std::make_unique<RoundRobinNrfPolicy>();
    case PolicyKind::kLongIdle: return std::make_unique<LongIdlePolicy>(mem);
    case PolicyKind::kRandom: return std::make_unique<RandomPolicy>(seed);
    case PolicyKind::kShortestBagFirst: return std::make_unique<ShortestBagFirstPolicy>(mem);
    case PolicyKind::kPendingFirst: return std::make_unique<PendingFirstPolicy>();
  }
  throw std::invalid_argument("make_policy: unknown policy kind");
}

// --- FCFS-Excl ---

TaskState* FcfsExclPolicy::select(SchedulerContext& ctx) {
  // Exclusive allocation: only the oldest incomplete bag is ever consulted,
  // even when it has nothing dispatchable and younger bags do.
  BotState* front = ctx.bots->front();
  if (front == nullptr) return nullptr;
  return ctx.pick_from(*front);
}

// --- FCFS-Share ---

TaskState* FcfsSharePolicy::select(SchedulerContext& ctx) {
  // Bags are served fully (pending first, then replication up to the
  // threshold — the WQR-FT order) strictly in arrival order: a machine goes
  // to the next bag only when every older bag has no use for it. In
  // particular a resubmitted replica of a failed task of the first BoT has
  // priority over tasks of the second BoT, as the paper requires. The index
  // hands over the oldest bag with dispatchable work directly; the stale
  // bags the arrival-order scan would have probed first are drained so the
  // resubmission pools prune exactly as they did under that scan.
  BotState* bot = ctx.index->first_dispatchable();
  if (bot == nullptr) {
    ctx.index->drain_stale_all(*ctx.individual);
    return nullptr;
  }
  ctx.index->drain_stale_below(*ctx.individual, bot->id());
  TaskState* task = ctx.pick_from(*bot);
  DG_ASSERT_MSG(task != nullptr, "dispatchable bag yielded no task");
  return task;
}

// --- RR ---

TaskState* RoundRobinPolicy::round_robin_pick(SchedulerContext& ctx) {
  // Bags are in arrival order with increasing ids; resume after the cursor.
  // Stale bags the circular scan would have passed over are drained so the
  // resubmission pools prune exactly as they did under that scan.
  BotState* bot = ctx.index->next_dispatchable_after(cursor_);
  if (bot == nullptr) {
    ctx.index->drain_stale_all(*ctx.individual);
    return nullptr;
  }
  ctx.index->drain_stale_ring(*ctx.individual, cursor_, bot->id());
  TaskState* task = ctx.pick_from(*bot);
  DG_ASSERT_MSG(task != nullptr, "dispatchable bag yielded no task");
  cursor_ = bot->id();
  return task;
}

TaskState* RoundRobinPolicy::select(SchedulerContext& ctx) { return round_robin_pick(ctx); }

// --- RR-NRF ---

TaskState* RoundRobinNrfPolicy::select(SchedulerContext& ctx) {
  // Bags with no running task instance first; the circular cursor is
  // suspended (not advanced) while serving them. An incomplete bag with no
  // running replica always has a pending task (every zero-replica incomplete
  // task is either unstarted or queued for resubmission), so the oldest such
  // bag is served unconditionally.
  if (BotState* bot = ctx.index->first_no_running()) {
    TaskState* task = ctx.pick_from(*bot);
    DG_ASSERT_MSG(task != nullptr, "no-running bag must have pending work");
    return task;
  }
  return round_robin_pick(ctx);
}

// --- LongIdle ---

void LongIdlePolicy::on_bot_arrival(BotState& bot, double /*now*/) {
  BagIndex& index = bags_[bot.id()];
  index.bot = &bot;
  // One sentinel covers all never-started tasks: each has frozen_idle = 0 and
  // idle_since = arrival, hence the shared key -arrival_time.
  index.idle.push(Entry{-bot.arrival_time(), nullptr});
}

void LongIdlePolicy::on_bot_completion(BotState& bot, double /*now*/) { bags_.erase(bot.id()); }

void LongIdlePolicy::on_task_transition(TaskState& task, double /*now*/) {
  if (task.completed()) return;
  auto it = bags_.find(task.bot().id());
  if (it == bags_.end()) return;
  BagIndex& index = it->second;
  if (task.running_replicas() == 0) {
    index.idle.push(Entry{task.frozen_idle() - task.idle_since(), &task});
  } else {
    index.frozen.push(Entry{task.frozen_idle(), &task});
  }
}

double LongIdlePolicy::bag_priority(BagIndex& index, double now) {
  double best = -std::numeric_limits<double>::infinity();
  // Idle side: entry valid iff the task is still idle with an unchanged key.
  while (!index.idle.empty()) {
    const Entry& top = index.idle.top();
    if (top.task == nullptr) {
      if (index.bot->peek_unstarted() != nullptr) {
        best = std::max(best, top.key + now);
        break;
      }
      index.idle.pop();
      continue;
    }
    const TaskState& task = *top.task;
    const bool valid = !task.completed() && task.running_replicas() == 0 &&
                       task.frozen_idle() - task.idle_since() == top.key;
    if (valid) {
      best = std::max(best, top.key + now);
      break;
    }
    index.idle.pop();
  }
  // Frozen side: entry valid iff the task is running with an unchanged key.
  while (!index.frozen.empty()) {
    const Entry& top = index.frozen.top();
    const TaskState& task = *top.task;
    const bool valid =
        !task.completed() && task.running_replicas() > 0 && task.frozen_idle() == top.key;
    if (valid) {
      best = std::max(best, top.key);
      break;
    }
    index.frozen.pop();
  }
  return best;
}

TaskState* LongIdlePolicy::select(SchedulerContext& ctx) {
  // Rank bags by the largest waiting time among their incomplete tasks;
  // ties (and equal priorities) resolve to the older bag. The probe order
  // over the ranked list matches the historical full-sort implementation,
  // so the pick_from calls prune the per-bag pools identically — LongIdle
  // needs none of the dispatch index's stale-drain machinery (and never
  // touches ctx.bots / ctx.index; bags_ is its own active-bag view).
  std::vector<std::pair<double, BotState*>> ranked;
  ranked.reserve(bags_.size());
  for (auto& [id, index] : bags_) {
    ranked.emplace_back(bag_priority(index, ctx.now), index.bot);
  }
  // bags_ iterates in increasing id = arrival order, so stable_sort keeps
  // equal priorities in arrival order — the historical tie-break.
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [priority, bot] : ranked) {
    if (TaskState* task = ctx.pick_from(*bot)) return task;
  }
  return nullptr;
}


// --- PF-RR (hybrid extension) ---

TaskState* PendingFirstPolicy::select(SchedulerContext& ctx) {
  // Deliberately a positional scan, not an index walk: the probing peeks
  // prune the resubmission pools of every bag visited, and PF-RR's
  // pending-first pass visits bags an index jump would skip. PF-RR is an
  // extension outside the paper's policy set and off the hot-path suites,
  // so it keeps the probe-everything behaviour verbatim.
  //
  // Pass 1: pending work (priority resubmissions, then unstarted tasks)
  // strictly in bag-arrival order.
  for (BotState* bot : *ctx.bots) {
    if (bot->peek_resubmission() != nullptr || bot->peek_unstarted() != nullptr ||
        bot->peek_requeued() != nullptr) {
      return ctx.pick_from(*bot);
    }
  }
  // Pass 2: every task everywhere has a replica — replicate, but spread
  // across bags with a persistent circular cursor instead of favouring the
  // oldest bag.
  const std::size_t n = ctx.bots->size();
  if (n == 0) return nullptr;
  std::vector<BotState*> bots;
  bots.reserve(n);
  for (BotState* bot : *ctx.bots) bots.push_back(bot);
  std::size_t start = 0;
  while (start < n && static_cast<std::uint64_t>(bots[start]->id()) <= replication_cursor_) {
    ++start;
  }
  if (start == n) start = 0;
  for (std::size_t i = 0; i < n; ++i) {
    BotState* bot = bots[(start + i) % n];
    if (TaskState* task = ctx.pick_from(*bot)) {
      replication_cursor_ = bot->id();
      return task;
    }
  }
  return nullptr;
}

// --- SJF-Bag (knowledge-based baseline) ---

void ShortestBagFirstPolicy::on_bot_arrival(BotState& bot, double /*now*/) {
  order_.emplace(std::pair{bot.remaining_work(), bot.id()}, &bot);
  keys_.emplace(bot.id(), bot.remaining_work());
}

void ShortestBagFirstPolicy::on_bot_completion(BotState& bot, double /*now*/) {
  auto it = keys_.find(bot.id());
  DG_ASSERT_MSG(it != keys_.end(), "SJF-Bag missing bag key (arrival hook not called?)");
  order_.erase({it->second, bot.id()});
  keys_.erase(it);
}

void ShortestBagFirstPolicy::on_task_transition(TaskState& task, double /*now*/) {
  if (!task.completed()) return;  // remaining_work only changes at completion
  BotState& bot = task.bot();
  const auto it = keys_.find(bot.id());
  if (it == keys_.end()) return;
  const double work = bot.remaining_work();
  if (work == it->second) return;
  order_.erase({it->second, bot.id()});
  order_.emplace(std::pair{work, bot.id()}, &bot);
  it->second = work;
}

TaskState* ShortestBagFirstPolicy::select(SchedulerContext& ctx) {
  // Bags ordered by remaining work ascending, ties to the older bag — the
  // map key is exactly that order, maintained incrementally.
  for (const auto& [key, bot] : order_) {
    if (TaskState* task = ctx.pick_from(*bot)) return task;
  }
  return nullptr;
}

// --- Random ---

TaskState* RandomPolicy::select(SchedulerContext& ctx) {
  // Deliberately a probe-every-bag scan, not an index walk: probing every
  // bag prunes every resubmission pool each select, and no range-limited
  // drain reproduces that. Random is a baseline outside the paper's policy
  // set and off the hot-path suites, so it keeps the O(B) loop verbatim.
  std::vector<BotState*> dispatchable;
  dispatchable.reserve(ctx.bots->size());
  for (BotState* bot : *ctx.bots) {
    if (ctx.pick_from(*bot) != nullptr) dispatchable.push_back(bot);
  }
  if (dispatchable.empty()) return nullptr;
  const auto choice =
      static_cast<std::size_t>(stream_.uniform_int(0, dispatchable.size() - 1));
  return ctx.pick_from(*dispatchable[choice]);
}

}  // namespace dg::sched
