// The five knowledge-free bag-selection policies from the paper, plus the
// uniform-random baseline of Cirne et al. that RR generalizes.
#pragma once

#include <cstdint>
#include <map>
#include <memory_resource>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "rng/random_stream.hpp"
#include "sched/policy.hpp"

namespace dg::sched {

/// FCFS-Excl: the whole grid is exclusively allocated to the oldest
/// incomplete bag; replication is unbounded, so once the bag has no pending
/// tasks every freed machine runs yet another replica of a running task.
class FcfsExclPolicy final : public BagSelectionPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "FCFS-Excl"; }
  [[nodiscard]] bool unlimited_replication() const override { return true; }
  [[nodiscard]] TaskState* select(SchedulerContext& ctx) override;
};

/// FCFS-Share: bags are served strictly in arrival order, each with the full
/// WQR-FT order (resubmissions, then unstarted tasks, then replication up to
/// the normal threshold); a machine reaches the next bag only when every
/// older bag has no use for it. The paper's "pending tasks" are the tasks
/// still to be completed (Section 3.1), so unlike FCFS-Excl the grid is not
/// exclusively allocated — threshold-capped older bags overflow to younger
/// ones — but a failed task of an older bag always beats younger bags.
class FcfsSharePolicy final : public BagSelectionPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "FCFS-Share"; }
  [[nodiscard]] TaskState* select(SchedulerContext& ctx) override;
};

/// RR: fixed circular sweep over the per-bag queues; equivalent to choosing
/// among bags with equal probability in the long run.
class RoundRobinPolicy : public BagSelectionPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "RR"; }
  [[nodiscard]] TaskState* select(SchedulerContext& ctx) override;

 protected:
  /// One circular scan starting after the last served bag.
  [[nodiscard]] TaskState* round_robin_pick(SchedulerContext& ctx);

 private:
  /// Id of the bag served last; the next sweep starts after it.
  std::uint64_t cursor_ = ~0ULL;
};

/// RR-NRF: bags with no running task instance are served first (in arrival
/// order, without advancing the circular cursor); once every bag has at
/// least one running replica the normal RR sweep resumes.
class RoundRobinNrfPolicy final : public RoundRobinPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "RR-NRF"; }
  [[nodiscard]] TaskState* select(SchedulerContext& ctx) override;
};

/// LongIdle: prefer the bag hosting the task with the largest accumulated
/// waiting time (total time with zero running replicas). Maintains two lazy
/// *global* max-heaps over all bags, so selection is O(log) amortized
/// instead of a per-select sweep + sort over every active bag:
///   * never-started tasks all share the key -arrival_time (one sentinel
///     entry per bag covers them);
///   * an idle task's waiting time is frozen_idle + (now - idle_since); the
///     now-independent key frozen_idle - idle_since is stable while idle;
///   * a running task's waiting time is its frozen_idle, stable while it
///     runs.
/// The bag with the largest waiting time is the bag of the largest valid
/// entry across the two heaps; ties resolve to the older bag (smaller bag
/// id, equal to arrival order). Stale entries are discarded on inspection
/// (keys strictly decrease across idle periods, so for any task the stale
/// entries surface before the live one); entries of completed bags are
/// recognized by id against `registered_` before any pointer is touched.
class LongIdlePolicy final : public BagSelectionPolicy {
 public:
  /// Per-bag index nodes and heap storage allocate from `mem`.
  explicit LongIdlePolicy(std::pmr::memory_resource* mem = std::pmr::get_default_resource())
      : bags_(mem) {}
  [[nodiscard]] std::string name() const override { return "LongIdle"; }
  [[nodiscard]] TaskState* select(SchedulerContext& ctx) override;
  void on_bot_arrival(BotState& bot, double now) override;
  void on_bot_completion(BotState& bot, double now) override;
  void on_task_transition(TaskState& task, double now) override;

 private:
  struct Entry {
    double key = 0.0;          // now-independent ordering key
    TaskState* task = nullptr; // nullptr = "some never-started task" sentinel
    bool operator<(const Entry& other) const noexcept {
      if (key != other.key) return key < other.key;
      // Deterministic tie-break: older task first (max-heap pops it first).
      const auto a = task != nullptr ? task->index() : ~workload::TaskIndex{0};
      const auto b = other.task != nullptr ? other.task->index() : ~workload::TaskIndex{0};
      return a < b;
    }
  };
  // Per-bag lazy-deletion heaps, NOT one global heap: a bag's priority is
  // the max over its own entries, so the per-bag top is found by popping at
  // most the entries invalidated since the last probe (amortized O(1) —
  // every pop is paid by an on_task_transition push). A single global heap
  // would have to dig past every entry of each threshold-capped bag — and
  // past *all* live entries on the terminating null select of a trigger —
  // re-pushing them afterwards, which measured ~9x slower on the scale
  // suite. The O(B) ranked scan per select is cheap: B is active bags,
  // orders of magnitude below the task-entry count.
  using EntryHeap = std::priority_queue<Entry, std::pmr::vector<Entry>>;
  struct BagIndex {
    // Allocator-aware so std::pmr::map propagates its resource into the
    // heaps via uses-allocator construction (operator[] below).
    using allocator_type = std::pmr::polymorphic_allocator<Entry>;
    BagIndex() = default;
    explicit BagIndex(const allocator_type& alloc) : idle(alloc), frozen(alloc) {}
    BagIndex(BagIndex&& other, const allocator_type& alloc)
        : bot(other.bot), idle(std::move(other.idle), alloc), frozen(std::move(other.frozen), alloc) {}

    BotState* bot = nullptr;
    // Tasks currently idle: key = frozen_idle - idle_since.
    EntryHeap idle;
    // Tasks currently running (incomplete): key = frozen_idle.
    EntryHeap frozen;
  };

  /// Largest waiting time over the bag's incomplete tasks at `now`,
  /// -infinity when the bag has no incomplete task.
  [[nodiscard]] double bag_priority(BagIndex& index, double now);

  /// Active bags keyed by id; ordered so iteration is arrival order (ids are
  /// assigned in arrival order), which select's tie-break depends on. The
  /// policy never consults ctx.bots / ctx.index — this map is authoritative.
  std::pmr::map<workload::BotId, BagIndex> bags_;
};

/// PendingFirst (PF-RR): our answer to the paper's closing question — a
/// single knowledge-free strategy for all granularities. Never-started (and
/// failed) tasks are served strictly in bag-arrival order, exactly like the
/// small-granularity winners; but *replication* only begins once no bag has
/// pending work, and then spreads round-robin like the large-granularity
/// winners. The policy therefore degenerates to FCFS-Share when bags are
/// wide (pending always available) and to RR's machine-spreading when bags
/// are narrow (replication dominates).
class PendingFirstPolicy final : public BagSelectionPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "PF-RR"; }
  [[nodiscard]] TaskState* select(SchedulerContext& ctx) override;

 private:
  std::uint64_t replication_cursor_ = ~0ULL;
};

/// Shortest Bag First: a *knowledge-based* baseline — assumes the remaining
/// work of every bag is known and always serves the bag closest to
/// completion (bag-level SJF, which minimizes mean turnaround in the
/// single-server idealization). Used to quantify how much the knowledge-free
/// policies give up by not knowing task execution times.
class ShortestBagFirstPolicy final : public BagSelectionPolicy {
 public:
  /// Per-bag index nodes allocate from `mem`.
  explicit ShortestBagFirstPolicy(
      std::pmr::memory_resource* mem = std::pmr::get_default_resource())
      : order_(mem), keys_(mem) {}
  [[nodiscard]] std::string name() const override { return "SJF-Bag"; }
  [[nodiscard]] TaskState* select(SchedulerContext& ctx) override;
  void on_bot_arrival(BotState& bot, double now) override;
  void on_bot_completion(BotState& bot, double now) override;
  void on_task_transition(TaskState& task, double now) override;

 private:
  // Active bags ordered by (remaining work asc, bag id asc) — the same order
  // the per-select stable_sort used to produce. remaining_work only changes
  // at task completion, so on_task_transition re-keys at most one bag.
  std::pmr::map<std::pair<double, workload::BotId>, BotState*> order_;
  /// Each bag's current key in `order_` (the erase handle).
  std::pmr::unordered_map<workload::BotId, double> keys_;
};

/// Random: uniform choice among bags with dispatchable work (the naive
/// baseline from the literature; statistically equivalent to RR).
class RandomPolicy final : public BagSelectionPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed)
      : stream_(rng::RandomStream::derive(seed, "policy.random")) {}
  [[nodiscard]] std::string name() const override { return "Random"; }
  [[nodiscard]] TaskState* select(SchedulerContext& ctx) override;

 private:
  rng::RandomStream stream_;
};

}  // namespace dg::sched
