// Bag selection: the paper's contribution.
//
// Whenever a machine frees up, the MultiBotScheduler asks the policy which
// task to dispatch next. The policy sees the active (incomplete) bags in
// arrival order plus the individual-bag scheduler and the effective
// replication threshold; it returns a task (typically by choosing a bag and
// delegating the within-bag choice to the individual scheduler) or nullptr
// when nothing is dispatchable.
#pragma once

#include <cstdint>
#include <memory>
#include <memory_resource>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "sched/bot_state.hpp"
#include "sched/dispatch_index.hpp"
#include "sched/individual.hpp"

namespace dg::sched {

enum class PolicyKind : std::uint8_t {
  // The paper's five knowledge-free policies:
  kFcfsExcl,
  kFcfsShare,
  kRoundRobin,
  kRoundRobinNrf,
  kLongIdle,
  // Baselines and extensions beyond the paper:
  kRandom,            // uniform choice among dispatchable bags (Cirne et al.)
  kShortestBagFirst,  // knowledge-based: least remaining work first (SJF)
  kPendingFirst,      // hybrid: pending tasks FCFS, replication round-robin
};

[[nodiscard]] std::string to_string(PolicyKind kind);
/// Inverse of to_string (also accepts lowercase); nullopt for unknown names.
[[nodiscard]] std::optional<PolicyKind> parse_policy_kind(std::string_view name);

/// All paper policies, in the order the figures plot them.
[[nodiscard]] std::span<const PolicyKind> paper_policies() noexcept;

/// Everything a policy may consult when selecting.
struct SchedulerContext {
  double now = 0.0;
  /// Incomplete bags in arrival order (O(1) front/back, intrusive erase).
  const ActiveBotList* bots = nullptr;
  /// Incremental eligibility index over the same bags, kept current by
  /// BotState's mutators; its threshold equals `threshold` below. Policies
  /// query it instead of probing every bag (see sched/dispatch_index.hpp).
  DispatchIndex* index = nullptr;
  const IndividualScheduler* individual = nullptr;
  /// Effective replication threshold for this dispatch decision.
  int threshold = 2;

  /// Within-bag choice via the individual scheduler.
  [[nodiscard]] TaskState* pick_from(const BotState& bot) const {
    return individual->pick(bot, threshold);
  }
};

/// Interface for bag-selection strategies (step 1 of the two-step
/// scheduler). Implementations are stateful but single-threaded: all calls
/// come from one simulation's event loop, never concurrently.
class BagSelectionPolicy {
 public:
  virtual ~BagSelectionPolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Chooses the next task to dispatch, or nullptr if no bag has work under
  /// the current threshold. Called once per free machine.
  /// Preconditions: `ctx.individual` is non-null and every bag in
  /// `ctx.bots` is incomplete. Postcondition: a non-null result is a task
  /// of one of `ctx.bots` with fewer than `ctx.threshold` running replicas
  /// (unless unlimited_replication()).
  [[nodiscard]] virtual TaskState* select(SchedulerContext& ctx) = 0;

  /// FCFS-Excl raises the WQR-FT threshold to "potentially unlimited".
  [[nodiscard]] virtual bool unlimited_replication() const { return false; }

  // Lifecycle hooks (default no-ops). on_task_transition fires after any
  // change to a task's replica count or completion state — LongIdle uses it
  // to maintain its waiting-time indices.
  virtual void on_bot_arrival(BotState& /*bot*/, double /*now*/) {}
  virtual void on_bot_completion(BotState& /*bot*/, double /*now*/) {}
  virtual void on_task_transition(TaskState& /*task*/, double /*now*/) {}
};

/// Factory for the built-in policies. `seed` feeds stochastic policies
/// (kRandom); deterministic policies ignore it. Policies with internal
/// per-bag containers (LongIdle, SJF-Bag) allocate them from `mem` (default:
/// global heap; see sim::SimulationWorkspace).
[[nodiscard]] std::unique_ptr<BagSelectionPolicy> make_policy(
    PolicyKind kind, std::uint64_t seed = 0,
    std::pmr::memory_resource* mem = std::pmr::get_default_resource());

}  // namespace dg::sched
