#include "sched/scheduler.hpp"

#include <limits>

#include "util/assert.hpp"

namespace dg::sched {

MultiBotScheduler::MultiBotScheduler(des::Simulator& sim, grid::DesktopGrid& grid,
                                     std::unique_ptr<BagSelectionPolicy> policy,
                                     std::unique_ptr<IndividualScheduler> individual,
                                     std::unique_ptr<ReplicationController> replication,
                                     std::pmr::memory_resource* mem)
    : sim_(sim), grid_(grid), policy_(std::move(policy)), individual_(std::move(individual)),
      replication_(std::move(replication)), index_(mem) {
  DG_ASSERT(policy_ != nullptr);
  DG_ASSERT(individual_ != nullptr);
  DG_ASSERT(replication_ != nullptr);
  index_.set_stats(&stats_);
}

int MultiBotScheduler::effective_threshold() const {
  if (policy_->unlimited_replication()) {
    // "Potentially unlimited": one replica per machine is the natural cap
    // (a busy machine can never receive a second replica anyway).
    return std::numeric_limits<int>::max() / 2;
  }
  return replication_->threshold();
}

void MultiBotScheduler::submit(BotState& bot) {
  DG_ASSERT_MSG(active_bots_.empty() || active_bots_.back()->arrival_time() <= bot.arrival_time(),
                "bags must be submitted in arrival order");
  active_bots_.push_back(bot);
  bot.set_dispatch_index(&index_);
  index_.register_bot(bot);
  policy_->on_bot_arrival(bot, sim_.now());
  trigger();
}

void MultiBotScheduler::trigger() {
  if (in_trigger_) return;
  in_trigger_ = true;
  ++stats_.triggers;
  DG_ASSERT_MSG(sink_ != nullptr, "MultiBotScheduler used without a DispatchSink");
  // Dispatching only removes machines from the free set (nothing frees up
  // mid-trigger), so repeatedly pulling the lowest-id available machine
  // visits exactly the machines the old full forward scan dispatched to.
  grid::MachineId m = grid_.first_available();
  while (m != grid::DesktopGrid::kNoMachine) {
    ++stats_.machines_examined;
    SchedulerContext ctx;
    ctx.now = sim_.now();
    ctx.bots = &active_bots_;
    ctx.index = &index_;
    ctx.individual = individual_.get();
    ctx.threshold = effective_threshold();
    index_.set_threshold(ctx.threshold);
    ++stats_.selects;
    TaskState* task = policy_->select(ctx);
    if (task == nullptr) break;  // nothing dispatchable anywhere
    DG_ASSERT(!task->completed());
    task->bot().note_dispatch(sim_.now());
    ++replicas_started_;
    sink_->start_replica(*task, grid_.machine(m));
    DG_ASSERT_MSG(grid_.machine(m).busy(), "engine must mark the machine busy");
    m = grid_.first_available();
  }
  in_trigger_ = false;
}

void MultiBotScheduler::notify_replica_started(TaskState& task) {
  task.bot().after_replica_started(task);
  policy_->on_task_transition(task, sim_.now());
}

void MultiBotScheduler::notify_replica_stopped(TaskState& task, StopReason reason) {
  BotState& bot = task.bot();
  bot.after_replica_stopped(task);
  if (reason == StopReason::kFailed) {
    ++replica_failures_;
    replication_->on_replica_failure();
  } else if (reason == StopReason::kWinner) {
    replication_->on_replica_success();
  }
  if (task.completed()) return;  // no resubmission or index updates needed
  if (reason == StopReason::kFailed && task.running_replicas() == 0) {
    // WQR-FT: automatic resubmission with priority (from the checkpoint);
    // WQR / WorkQueue: back of the bag's queue, from scratch.
    if (individual_->resubmission_priority()) {
      bot.push_resubmission(task);
    } else {
      bot.push_requeue(task);
    }
  }
  policy_->on_task_transition(task, sim_.now());
}

void MultiBotScheduler::notify_task_completed(TaskState& task) {
  BotState& bot = task.bot();
  bot.on_task_completed(task);
  policy_->on_task_transition(task, sim_.now());
  ++tasks_completed_;
  if (bot.completed()) {
    bot.note_completion(sim_.now());
    policy_->on_bot_completion(bot, sim_.now());
    index_.unregister_bot(bot);
    // Detach before the completed task's sibling replicas are stopped: those
    // stops still mutate the bag but must not resurrect index entries.
    bot.set_dispatch_index(nullptr);
    active_bots_.erase(bot);  // O(1): intrusive links
    ++bots_completed_;
    if (on_bot_completed_) on_bot_completed_(bot);
  }
}

}  // namespace dg::sched
