#include "sched/individual.hpp"

#include <stdexcept>

namespace dg::sched {

std::string to_string(IndividualSchedulerKind kind) {
  switch (kind) {
    case IndividualSchedulerKind::kWorkQueue: return "WorkQueue";
    case IndividualSchedulerKind::kWqr: return "WQR";
    case IndividualSchedulerKind::kWqrFt: return "WQR-FT";
    case IndividualSchedulerKind::kKnowledgeBased: return "KB-LTF";
  }
  return "?";
}

std::optional<IndividualSchedulerKind> parse_individual_kind(std::string_view name) {
  auto lower = [](std::string_view text) {
    std::string out;
    for (char c : text) out.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
    return out;
  };
  static constexpr IndividualSchedulerKind kAll[] = {
      IndividualSchedulerKind::kWorkQueue, IndividualSchedulerKind::kWqr,
      IndividualSchedulerKind::kWqrFt, IndividualSchedulerKind::kKnowledgeBased};
  const std::string needle = lower(name);
  for (IndividualSchedulerKind kind : kAll) {
    if (needle == lower(to_string(kind))) return kind;
  }
  return std::nullopt;
}

TaskState* IndividualScheduler::pick(const BotState& bot, int threshold) const {
  if (resubmission_priority()) {
    if (TaskState* task = bot.peek_resubmission()) return task;
  }
  if (TaskState* task = bot.peek_unstarted()) return task;
  // Non-priority fault re-queue (WQR / WorkQueue semantics). For schedulers
  // with priority resubmission the re-queue is never fed, so this is a no-op.
  if (TaskState* task = bot.peek_requeued()) return task;
  if (threshold > 1) {
    if (TaskState* task = bot.least_replicated_below(threshold)) return task;
  }
  return nullptr;
}

std::unique_ptr<IndividualScheduler> IndividualScheduler::make(IndividualSchedulerKind kind) {
  switch (kind) {
    case IndividualSchedulerKind::kWorkQueue: return std::make_unique<WorkQueueScheduler>();
    case IndividualSchedulerKind::kWqr: return std::make_unique<WqrScheduler>();
    case IndividualSchedulerKind::kWqrFt: return std::make_unique<WqrFtScheduler>();
    case IndividualSchedulerKind::kKnowledgeBased:
      return std::make_unique<KnowledgeBasedScheduler>();
  }
  throw std::invalid_argument("IndividualScheduler::make: unknown kind");
}

}  // namespace dg::sched
