#include "sched/dispatch_index.hpp"

#include <limits>

#include "sched/bot_state.hpp"
#include "sched/individual.hpp"
#include "sched/sched_stats.hpp"
#include "util/assert.hpp"

namespace dg::sched {

bool DispatchIndex::is_dispatchable(const BotState& bot) const {
  // Mirrors SchedulerContext::pick_from(): a pending task always qualifies;
  // otherwise replication needs threshold > 1 and a task strictly below it.
  return bot.has_pending() || (threshold_ > 1 && bot.min_replicated_count() < threshold_);
}

void DispatchIndex::set_threshold(int threshold) {
  if (threshold == threshold_) return;
  threshold_ = threshold;
  if (stats_ != nullptr) ++stats_->index_rebuilds;
  dispatchable_.clear();
  for (const auto& [id, bot] : bots_) {
    if (is_dispatchable(*bot)) dispatchable_.emplace(id, bot);
  }
}

void DispatchIndex::register_bot(BotState& bot) {
  const bool inserted = bots_.emplace(bot.id(), &bot).second;
  DG_ASSERT_MSG(inserted, "bot already registered in dispatch index");
  refresh(bot);
}

void DispatchIndex::unregister_bot(BotState& bot) {
  const auto erased = bots_.erase(bot.id());
  DG_ASSERT_MSG(erased == 1, "bot not registered in dispatch index");
  dispatchable_.erase(bot.id());
  no_running_.erase(bot.id());
  stale_.erase(bot.id());
}

void DispatchIndex::refresh(BotState& bot) {
  if (!bots_.contains(bot.id())) return;
  if (stats_ != nullptr) ++stats_->index_updates;
  const auto update = [&](std::pmr::map<workload::BotId, BotState*>& set, bool member) {
    if (member) {
      set.emplace(bot.id(), &bot);
    } else {
      set.erase(bot.id());
    }
  };
  update(dispatchable_, is_dispatchable(bot));
  update(no_running_, bot.total_running() == 0);
  update(stale_, bot.has_stale_queue_entries());
}

BotState* DispatchIndex::first_dispatchable() const noexcept {
  return dispatchable_.empty() ? nullptr : dispatchable_.begin()->second;
}

BotState* DispatchIndex::next_dispatchable_after(std::uint64_t after) const noexcept {
  if (dispatchable_.empty()) return nullptr;
  if (after >= std::numeric_limits<workload::BotId>::max()) {
    return dispatchable_.begin()->second;
  }
  auto it = dispatchable_.upper_bound(static_cast<workload::BotId>(after));
  if (it == dispatchable_.end()) it = dispatchable_.begin();
  return it->second;
}

BotState* DispatchIndex::first_no_running() const noexcept {
  return no_running_.empty() ? nullptr : no_running_.begin()->second;
}

void DispatchIndex::probe_stale(BotState& bot, const IndividualScheduler& individual) {
  // A stale bag has no dispatchable pool entry and, at every drain site, is
  // known not to be dispatchable at all (it precedes the first dispatchable
  // bag in the relevant scan order) — so the probe's only effect is popping
  // the stale entries the positional scan would have popped.
  TaskState* task = individual.pick(bot, threshold_);
  DG_ASSERT_MSG(task == nullptr, "stale bag unexpectedly yielded a task");
}

void DispatchIndex::drain_stale_below(const IndividualScheduler& individual,
                                      workload::BotId limit) {
  auto it = stale_.begin();
  while (it != stale_.end() && it->first < limit) {
    probe_stale(*it->second, individual);
    it = stale_.erase(it);
  }
}

void DispatchIndex::drain_stale_ring(const IndividualScheduler& individual, std::uint64_t after,
                                     workload::BotId until) {
  if (static_cast<std::uint64_t>(until) > after) {
    // No wrap: the scan visited ids in (after, until).
    auto it = stale_.upper_bound(static_cast<workload::BotId>(after));
    while (it != stale_.end() && it->first < until) {
      probe_stale(*it->second, individual);
      it = stale_.erase(it);
    }
    return;
  }
  // Wrapped scan: ids > after, then ids < until from the front.
  if (after < std::numeric_limits<workload::BotId>::max()) {
    auto it = stale_.upper_bound(static_cast<workload::BotId>(after));
    while (it != stale_.end()) {
      probe_stale(*it->second, individual);
      it = stale_.erase(it);
    }
  }
  auto it = stale_.begin();
  while (it != stale_.end() && it->first < until) {
    probe_stale(*it->second, individual);
    it = stale_.erase(it);
  }
}

void DispatchIndex::drain_stale_all(const IndividualScheduler& individual) {
  for (auto& [id, bot] : stale_) probe_stale(*bot, individual);
  stale_.clear();
}

}  // namespace dg::sched
