#include "sched/bot_state.hpp"

#include <algorithm>
#include <climits>

#include "sched/dispatch_index.hpp"

namespace dg::sched {

BotState::BotState(const workload::BotSpec& spec, TaskOrder order,
                   std::pmr::memory_resource* mem)
    : id_(spec.id), arrival_time_(spec.arrival_time), granularity_(spec.granularity),
      order_(order), mem_(mem), tasks_(mem), unstarted_order_(mem), resubmission_queue_(mem),
      requeue_(mem), buckets_(mem) {
  tasks_.reserve(spec.tasks.size());
  for (std::size_t i = 0; i < spec.tasks.size(); ++i) {
    tasks_.emplace_back(*this, static_cast<workload::TaskIndex>(i), spec.tasks[i].work,
                        spec.arrival_time);
    total_work_ += spec.tasks[i].work;
  }
  unstarted_order_.reserve(tasks_.size());
  for (auto& task : tasks_) unstarted_order_.push_back(&task);
  if (order_ == TaskOrder::kDescendingWork) {
    std::stable_sort(unstarted_order_.begin(), unstarted_order_.end(),
                     [](const TaskState* a, const TaskState* b) { return a->work() > b->work(); });
  }
}

TaskState* BotState::peek_unstarted() const {
  while (unstarted_cursor_ < unstarted_order_.size()) {
    TaskState* task = unstarted_order_[unstarted_cursor_];
    if (!task->ever_started() && !task->completed()) return task;
    ++unstarted_cursor_;
  }
  return nullptr;
}

TaskState* BotState::peek_resubmission() const {
  while (!resubmission_queue_.empty()) {
    TaskState* task = resubmission_queue_.front();
    if (task->needs_resubmission() && !task->completed() && task->running_replicas() == 0) {
      return task;
    }
    resubmission_queue_.pop_front();
  }
  return nullptr;
}

TaskState* BotState::peek_requeued() const {
  while (!requeue_.empty()) {
    TaskState* task = requeue_.front();
    if (task->needs_resubmission() && !task->completed() && task->running_replicas() == 0) {
      return task;
    }
    requeue_.pop_front();
  }
  return nullptr;
}

void BotState::push_resubmission(TaskState& task) {
  task.set_needs_resubmission(true);
  resubmission_queue_.push_back(&task);
  refresh_dispatch_index();
}

void BotState::push_requeue(TaskState& task) {
  task.set_needs_resubmission(true);
  requeue_.push_back(&task);
  refresh_dispatch_index();
}

namespace {
/// True iff `queue` holds an entry whose task is dispatchable right now.
/// Pure scan — unlike the peeks it pops nothing: an entry that is stale at
/// the moment (task running) regains its validity, and its queue position,
/// if the task fails again before a real probe pops it. The dispatch index
/// calls this on every task transition, so it must not disturb the queues.
bool any_valid_entry(const std::pmr::deque<TaskState*>& queue) {
  for (const TaskState* task : queue) {
    if (task->needs_resubmission() && !task->completed() && task->running_replicas() == 0) {
      return true;
    }
  }
  return false;
}
}  // namespace

bool BotState::has_pending() const {
  return any_valid_entry(resubmission_queue_) || peek_unstarted() != nullptr ||
         any_valid_entry(requeue_);
}

bool BotState::has_stale_queue_entries() const {
  const auto stale = [](const std::pmr::deque<TaskState*>& queue) {
    return !queue.empty() && !any_valid_entry(queue);
  };
  return stale(resubmission_queue_) || stale(requeue_);
}

TaskState* BotState::least_replicated_below(int threshold) const {
  for (const auto& [count, tasks] : buckets_) {
    if (count >= threshold) break;
    if (!tasks.empty()) return *tasks.begin();
  }
  return nullptr;
}

void BotState::bucket_insert(TaskState& task, int count) {
  auto it = buckets_.find(count);
  if (it == buckets_.end()) {
    it = buckets_
             .emplace(count, std::pmr::set<TaskState*, OrderedLess>(
                                 OrderedLess{order_ == TaskOrder::kDescendingWork}, mem_))
             .first;
  }
  const bool inserted = it->second.insert(&task).second;
  DG_ASSERT_MSG(inserted, "task already present in replica bucket");
}

void BotState::bucket_erase(TaskState& task, int count) {
  auto bucket = buckets_.find(count);
  DG_ASSERT_MSG(bucket != buckets_.end(), "missing replica bucket");
  const std::size_t erased = bucket->second.erase(&task);
  DG_ASSERT_MSG(erased == 1, "task missing from replica bucket");
  if (bucket->second.empty()) buckets_.erase(bucket);
}

void BotState::after_replica_started(TaskState& task) {
  DG_ASSERT(!task.completed());
  const int count = task.running_replicas();
  DG_ASSERT(count >= 1);
  if (count > 1) bucket_erase(task, count - 1);
  bucket_insert(task, count);
  ++total_running_;
  refresh_dispatch_index();
}

void BotState::after_replica_stopped(TaskState& task) {
  --total_running_;
  DG_ASSERT(total_running_ >= 0);
  if (!task.completed()) {  // buckets were cleared at completion
    const int count = task.running_replicas();
    bucket_erase(task, count + 1);
    if (count >= 1) bucket_insert(task, count);
  }
  refresh_dispatch_index();
}

void BotState::on_task_completed(TaskState& task) {
  const int count = task.running_replicas();
  if (count >= 1) bucket_erase(task, count);
  ++completed_count_;
  completed_work_ += task.work();
  DG_ASSERT(completed_count_ <= tasks_.size());
  refresh_dispatch_index();
}

int BotState::min_replicated_count() const noexcept {
  return buckets_.empty() ? INT_MAX : buckets_.begin()->first;
}

void BotState::refresh_dispatch_index() {
  if (dispatch_index_ != nullptr) dispatch_index_->refresh(*this);
}

}  // namespace dg::sched
