// Dispatch-path counters for one MultiBotScheduler instance.
//
// The scheduling analogue of des::KernelStats: cheap, unconditionally
// maintained counters that expose the *cost* of the dispatch path (how many
// machines were probed, how many policy selections ran, how often the
// incremental dispatch index was refreshed) without touching any scheduling
// decision. Threaded into sim::SimulationResult and the observer's
// on_run_finished hook so perf harnesses can derive machines-examined-per-
// dispatch and similar ratios; see docs/BENCHMARKING.md.
#pragma once

#include <cstdint>

namespace dg::sched {

struct SchedStats {
  /// trigger() entries that actually ran the dispatch loop (re-entrant calls
  /// coalesce into the running loop and are not counted).
  std::uint64_t triggers = 0;
  /// Machines pulled from (or scanned by) the dispatch loop. On the indexed
  /// path every probe yields an up-and-idle machine, so this tracks
  /// dispatches + one terminating probe per trigger instead of grid size.
  std::uint64_t machines_examined = 0;
  /// Policy select() calls (one per examined machine, plus the final
  /// nothing-dispatchable call that ends a loop).
  std::uint64_t selects = 0;
  /// Per-bag refreshes of the incremental DispatchIndex (0 on the legacy
  /// scan path).
  std::uint64_t index_updates = 0;
  /// Full index rebuilds caused by replication-threshold changes.
  std::uint64_t index_rebuilds = 0;

  /// Machines examined per successful dispatch; the headline "is the
  /// dispatch loop O(grid size) or O(1)" ratio.
  [[nodiscard]] double machines_per_dispatch(std::uint64_t dispatches) const noexcept {
    return dispatches > 0 ? static_cast<double>(machines_examined) /
                                static_cast<double>(dispatches)
                          : 0.0;
  }
};

}  // namespace dg::sched
