// Runtime state of one task of a running BoT.
//
// Tracks replica count, checkpointed progress, completion, resubmission
// status, and the accumulated "waiting time" (total time with zero running
// replicas) that drives the LongIdle policy. Mutations are called by the
// execution engine / scheduler in a fixed order; see sim/execution_engine.cpp.
#pragma once

#include <cstdint>

#include "util/assert.hpp"
#include "workload/bot.hpp"

namespace dg::sched {

class BotState;

class TaskState {
 public:
  TaskState(BotState& bot, workload::TaskIndex index, double work, double arrival_time)
      : bot_(&bot), index_(index), work_(work), idle_since_(arrival_time) {
    DG_ASSERT(work > 0.0);
  }

  [[nodiscard]] BotState& bot() const noexcept { return *bot_; }
  [[nodiscard]] workload::TaskIndex index() const noexcept { return index_; }
  /// Total work (seconds on a P = 1 reference machine).
  [[nodiscard]] double work() const noexcept { return work_; }

  // --- replica accounting (engine-driven) ---

  [[nodiscard]] int running_replicas() const noexcept { return running_; }
  [[nodiscard]] bool ever_started() const noexcept { return ever_started_; }
  [[nodiscard]] bool completed() const noexcept { return completed_; }
  [[nodiscard]] double completion_time() const noexcept { return completion_time_; }

  /// A replica of this task began executing at `now`.
  void on_replica_started(double now) noexcept {
    DG_ASSERT(!completed_);
    if (running_ == 0) idle_accum_ += now - idle_since_;
    ++running_;
    ever_started_ = true;
    needs_resubmission_ = false;
  }

  /// A replica stopped (failed, was cancelled, or won). Idle accounting only
  /// resumes for incomplete tasks.
  void on_replica_stopped(double now) noexcept {
    DG_ASSERT(running_ > 0);
    --running_;
    if (running_ == 0 && !completed_) idle_since_ = now;
  }

  void mark_completed(double now) noexcept {
    DG_ASSERT(!completed_);
    completed_ = true;
    completion_time_ = now;
    needs_resubmission_ = false;
  }

  // --- checkpoint state (shared by all replicas of the task) ---

  [[nodiscard]] double checkpointed_work() const noexcept { return checkpointed_work_; }

  /// Commits a checkpoint; progress is monotone and bounded by work().
  void commit_checkpoint(double progress) noexcept {
    DG_ASSERT(progress >= 0.0);
    DG_ASSERT_MSG(progress <= work_ + 1e-9, "checkpoint beyond task work");
    if (progress > checkpointed_work_) checkpointed_work_ = progress;
  }

  /// Wipes the committed checkpoint — the *only* sanctioned regression,
  /// driven by a checkpoint-server crash that loses stored data. The next
  /// dispatched replica recomputes from scratch.
  void invalidate_checkpoint() noexcept { checkpointed_work_ = 0.0; }

  // --- resubmission (WQR-FT fault handling) ---

  [[nodiscard]] bool needs_resubmission() const noexcept { return needs_resubmission_; }
  void set_needs_resubmission(bool value) noexcept { needs_resubmission_ = value; }

  // --- waiting-time accounting (LongIdle) ---

  /// Total time this task has had zero running replicas, up to `now`.
  [[nodiscard]] double accumulated_idle(double now) const noexcept {
    double idle = idle_accum_;
    if (running_ == 0 && !completed_) idle += now - idle_since_;
    return idle;
  }
  /// Idle accumulated up to the last transition (static while running).
  [[nodiscard]] double frozen_idle() const noexcept { return idle_accum_; }
  /// Start of the current idle period (meaningful only while idle).
  [[nodiscard]] double idle_since() const noexcept { return idle_since_; }

 private:
  BotState* bot_;
  workload::TaskIndex index_;
  double work_;
  double checkpointed_work_ = 0.0;
  int running_ = 0;
  bool ever_started_ = false;
  bool completed_ = false;
  bool needs_resubmission_ = false;
  double completion_time_ = 0.0;
  double idle_accum_ = 0.0;
  double idle_since_;
};

}  // namespace dg::sched
