// Replication-threshold control.
//
// The paper fixes WQR-FT's replication threshold at 2 (higher static values
// buy little and waste cycles). Its future-work direction 2(a) proposes
// *dynamic* replication; DynamicReplication is our instantiation: it tracks
// an exponentially-weighted failure fraction over observed replica outcomes
// (knowledge-free — the scheduler only watches its own dispatches) and picks
// the smallest r with p_fail^r below a target loss probability.
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

namespace dg::sched {

class ReplicationController {
 public:
  virtual ~ReplicationController() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual int threshold() const = 0;
  virtual void on_replica_failure() {}
  virtual void on_replica_success() {}
};

class StaticReplication final : public ReplicationController {
 public:
  explicit StaticReplication(int threshold) : threshold_(std::max(1, threshold)) {}
  [[nodiscard]] std::string name() const override {
    return "static(" + std::to_string(threshold_) + ")";
  }
  [[nodiscard]] int threshold() const override { return threshold_; }

 private:
  int threshold_;
};

class DynamicReplication final : public ReplicationController {
 public:
  /// `target_loss`: acceptable probability that all replicas of a task fail.
  /// `alpha`: EWMA weight of each new observation. `max_threshold` caps r.
  explicit DynamicReplication(double target_loss = 0.05, double alpha = 0.02,
                              int max_threshold = 4)
      : target_loss_(target_loss), alpha_(alpha), max_threshold_(max_threshold) {}

  [[nodiscard]] std::string name() const override { return "dynamic"; }

  [[nodiscard]] int threshold() const override {
    if (failure_fraction_ <= target_loss_) return 1;
    if (failure_fraction_ >= 1.0) return max_threshold_;
    const double r = std::log(target_loss_) / std::log(failure_fraction_);
    return std::clamp(static_cast<int>(std::ceil(r)), 1, max_threshold_);
  }

  void on_replica_failure() override { observe(1.0); }
  void on_replica_success() override { observe(0.0); }

  [[nodiscard]] double failure_fraction() const noexcept { return failure_fraction_; }

 private:
  void observe(double outcome) noexcept {
    failure_fraction_ = (1.0 - alpha_) * failure_fraction_ + alpha_ * outcome;
  }

  double target_loss_;
  double alpha_;
  int max_threshold_;
  double failure_fraction_ = 0.0;
};

}  // namespace dg::sched
