// Individual-bag schedulers: which task of a chosen bag runs next.
//
// The paper delegates individual-bag scheduling to WQR-FT (Anglano & Canonico
// 2005): WorkQueue order for never-started tasks, replication of running
// tasks once the bag has no pending work, checkpointing, and automatic
// priority resubmission of failed tasks. We also implement its ancestors
// (WorkQueue, WQR) as baselines/ablations and a knowledge-based variant
// (longest-task-first) for the paper's future-work direction 2(b).
//
// Pick order:
//   WQR-FT:  priority resubmissions -> unstarted -> least-replicated(<R)
//   WQR:     unstarted -> non-priority re-queue -> least-replicated(<R)
//   WorkQueue: unstarted -> non-priority re-queue  (threshold fixed at 1)
//   KB:      like WQR-FT but tasks ordered by descending work
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "sched/bot_state.hpp"

namespace dg::sched {

enum class IndividualSchedulerKind : std::uint8_t {
  kWorkQueue,
  kWqr,
  kWqrFt,
  kKnowledgeBased,
};

[[nodiscard]] std::string to_string(IndividualSchedulerKind kind);
/// Inverse of to_string (case-insensitive); nullopt for unknown names.
[[nodiscard]] std::optional<IndividualSchedulerKind> parse_individual_kind(
    std::string_view name);

class IndividualScheduler {
 public:
  virtual ~IndividualScheduler() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  /// Whether replicas checkpoint to the checkpoint server.
  [[nodiscard]] virtual bool checkpointing() const = 0;
  /// Whether failed tasks are resubmitted with priority over unstarted ones.
  [[nodiscard]] virtual bool resubmission_priority() const = 0;
  /// Baseline replication threshold (policies may override upward).
  [[nodiscard]] virtual int default_threshold() const = 0;
  /// Task ordering for the bag's dispatch structures.
  [[nodiscard]] virtual TaskOrder task_order() const { return TaskOrder::kArrival; }

  /// Picks the next task of `bot` to start a replica of, honoring the
  /// replication threshold. Returns nullptr when nothing is dispatchable.
  /// Precondition: threshold >= 1. Postcondition: a non-null result is an
  /// incomplete task of `bot` with running_replicas() < threshold, in this
  /// scheduler's pick order (see file comment).
  [[nodiscard]] virtual TaskState* pick(const BotState& bot, int threshold) const;

  [[nodiscard]] static std::unique_ptr<IndividualScheduler> make(IndividualSchedulerKind kind);
};

class WorkQueueScheduler final : public IndividualScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "WorkQueue"; }
  [[nodiscard]] bool checkpointing() const override { return false; }
  [[nodiscard]] bool resubmission_priority() const override { return false; }
  [[nodiscard]] int default_threshold() const override { return 1; }
};

class WqrScheduler final : public IndividualScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "WQR"; }
  [[nodiscard]] bool checkpointing() const override { return false; }
  [[nodiscard]] bool resubmission_priority() const override { return false; }
  [[nodiscard]] int default_threshold() const override { return 2; }
};

class WqrFtScheduler final : public IndividualScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "WQR-FT"; }
  [[nodiscard]] bool checkpointing() const override { return true; }
  [[nodiscard]] bool resubmission_priority() const override { return true; }
  [[nodiscard]] int default_threshold() const override { return 2; }
};

/// Knowledge-based extension: assumes task execution times are known and
/// serves the longest remaining tasks first (reduces the tail of the bag's
/// makespan). Keeps WQR-FT's fault tolerance.
class KnowledgeBasedScheduler final : public IndividualScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "KB-LTF"; }
  [[nodiscard]] bool checkpointing() const override { return true; }
  [[nodiscard]] bool resubmission_priority() const override { return true; }
  [[nodiscard]] int default_threshold() const override { return 2; }
  [[nodiscard]] TaskOrder task_order() const override { return TaskOrder::kDescendingWork; }
};

}  // namespace dg::sched
