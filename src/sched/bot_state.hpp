// Runtime state of one BoT application: its per-bag queue in the scheduler.
//
// Maintains the dispatch structures the individual-bag schedulers draw from:
//   * an ordered cursor over never-started tasks (arrival order, or
//     descending-work order for the knowledge-based extension),
//   * a priority FIFO of failed tasks awaiting resubmission (WQR-FT),
//   * a plain re-queue for fault re-execution without priority (WQR/WorkQueue),
//   * replica-count buckets answering "least-replicated incomplete task below
//     the replication threshold" in O(log) time.
// All structures are deterministic (ordered containers, stable tie-breaks).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "sched/task_state.hpp"
#include "workload/bot.hpp"

namespace dg::sched {

/// Ordering used for the unstarted-task cursor and replication tie-breaks.
enum class TaskOrder : std::uint8_t {
  kArrival,         // task index order (knowledge-free; the paper's setting)
  kDescendingWork,  // longest task first (knowledge-based extension)
};

class BotState {
 public:
  BotState(const workload::BotSpec& spec, TaskOrder order = TaskOrder::kArrival);

  BotState(const BotState&) = delete;
  BotState& operator=(const BotState&) = delete;

  [[nodiscard]] workload::BotId id() const noexcept { return id_; }
  [[nodiscard]] double arrival_time() const noexcept { return arrival_time_; }
  [[nodiscard]] double granularity() const noexcept { return granularity_; }
  [[nodiscard]] std::size_t num_tasks() const noexcept { return tasks_.size(); }
  [[nodiscard]] TaskState& task(std::size_t i) { return *tasks_[i]; }
  [[nodiscard]] const TaskState& task(std::size_t i) const { return *tasks_[i]; }

  // --- pending pools ---

  /// Next never-started task in this bag's order, or nullptr.
  [[nodiscard]] TaskState* peek_unstarted();
  /// Oldest failed task awaiting priority resubmission (WQR-FT), or nullptr.
  [[nodiscard]] TaskState* peek_resubmission();
  /// Oldest task re-queued without priority (WQR / WorkQueue), or nullptr.
  [[nodiscard]] TaskState* peek_requeued();

  void push_resubmission(TaskState& task);
  void push_requeue(TaskState& task);

  /// True if any pending (zero-replica, incomplete) task exists.
  [[nodiscard]] bool has_pending();

  // --- replication candidates ---

  /// Incomplete task with >= 1 and < `threshold` running replicas, fewest
  /// replicas first (ties by the bag's TaskOrder). nullptr if none.
  [[nodiscard]] TaskState* least_replicated_below(int threshold);

  // --- bookkeeping driven by the scheduler ---

  /// Call after a replica of `task` started (its count already incremented).
  void after_replica_started(TaskState& task);
  /// Call after a replica of `task` stopped (count already decremented).
  /// No-op for completed tasks.
  void after_replica_stopped(TaskState& task);
  /// Call when `task` completes, BEFORE its sibling replicas are stopped
  /// (the bucket entry is keyed by the still-current replica count).
  void on_task_completed(TaskState& task);

  // --- bag-level status ---

  [[nodiscard]] std::size_t completed_tasks() const noexcept { return completed_count_; }
  [[nodiscard]] bool completed() const noexcept { return completed_count_ == tasks_.size(); }
  [[nodiscard]] int total_running() const noexcept { return total_running_; }
  [[nodiscard]] double total_work() const noexcept { return total_work_; }
  /// Work of the not-yet-completed tasks (knowledge-based policies only —
  /// a knowledge-free scheduler must not consult this).
  [[nodiscard]] double remaining_work() const noexcept { return total_work_ - completed_work_; }

  /// Time the first replica of any task started (the makespan origin).
  [[nodiscard]] bool ever_dispatched() const noexcept { return ever_dispatched_; }
  [[nodiscard]] double first_dispatch_time() const noexcept { return first_dispatch_time_; }
  [[nodiscard]] double completion_time() const noexcept { return completion_time_; }
  void note_dispatch(double now) noexcept {
    if (!ever_dispatched_) {
      ever_dispatched_ = true;
      first_dispatch_time_ = now;
    }
  }
  void note_completion(double now) noexcept { completion_time_ = now; }

  // --- turnaround decomposition (paper Section 3) ---

  [[nodiscard]] double turnaround() const noexcept { return completion_time_ - arrival_time_; }
  [[nodiscard]] double makespan() const noexcept {
    return completion_time_ - first_dispatch_time_;
  }
  [[nodiscard]] double waiting_time() const noexcept {
    return first_dispatch_time_ - arrival_time_;
  }

 private:
  struct OrderedLess {
    // Comparison by the bag's dispatch order; pointers carry the key data.
    bool operator()(const TaskState* a, const TaskState* b) const noexcept {
      if (descending_work) {
        if (a->work() != b->work()) return a->work() > b->work();
      }
      return a->index() < b->index();
    }
    bool descending_work = false;
  };

  void bucket_insert(TaskState& task, int count);
  void bucket_erase(TaskState& task, int count);

  workload::BotId id_;
  double arrival_time_;
  double granularity_;
  double total_work_ = 0.0;
  TaskOrder order_;
  std::vector<std::unique_ptr<TaskState>> tasks_;

  // Unstarted cursor: precomputed dispatch order, advanced lazily.
  std::vector<TaskState*> unstarted_order_;
  std::size_t unstarted_cursor_ = 0;

  std::deque<TaskState*> resubmission_queue_;
  std::deque<TaskState*> requeue_;

  // running-replica-count -> candidate tasks (counts >= 1 only).
  std::map<int, std::set<TaskState*, OrderedLess>> buckets_;

  std::size_t completed_count_ = 0;
  double completed_work_ = 0.0;
  int total_running_ = 0;
  bool ever_dispatched_ = false;
  double first_dispatch_time_ = 0.0;
  double completion_time_ = 0.0;
};

}  // namespace dg::sched
