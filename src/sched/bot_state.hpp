// Runtime state of one BoT application: its per-bag queue in the scheduler.
//
// Maintains the dispatch structures the individual-bag schedulers draw from:
//   * an ordered cursor over never-started tasks (arrival order, or
//     descending-work order for the knowledge-based extension),
//   * a priority FIFO of failed tasks awaiting resubmission (WQR-FT),
//   * a plain re-queue for fault re-execution without priority (WQR/WorkQueue),
//   * replica-count buckets answering "least-replicated incomplete task below
//     the replication threshold" in O(log) time.
// All structures are deterministic (ordered containers, stable tie-breaks).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <memory_resource>
#include <set>
#include <vector>

#include "sched/task_state.hpp"
#include "util/assert.hpp"
#include "workload/bot.hpp"

namespace dg::sched {

class DispatchIndex;

/// Ordering used for the unstarted-task cursor and replication tie-breaks.
enum class TaskOrder : std::uint8_t {
  kArrival,         // task index order (knowledge-free; the paper's setting)
  kDescendingWork,  // longest task first (knowledge-based extension)
};

class BotState {
 public:
  /// All internal containers (task slab, queues, replica buckets) allocate
  /// from `mem`; pass a per-replication pool (sim::SimulationWorkspace) to
  /// recycle their memory across runs. The default is the global heap.
  explicit BotState(const workload::BotSpec& spec, TaskOrder order = TaskOrder::kArrival,
                    std::pmr::memory_resource* mem = std::pmr::get_default_resource());

  BotState(const BotState&) = delete;
  BotState& operator=(const BotState&) = delete;

  [[nodiscard]] workload::BotId id() const noexcept { return id_; }
  [[nodiscard]] double arrival_time() const noexcept { return arrival_time_; }
  [[nodiscard]] double granularity() const noexcept { return granularity_; }
  [[nodiscard]] std::size_t num_tasks() const noexcept { return tasks_.size(); }
  [[nodiscard]] TaskState& task(std::size_t i) { return tasks_[i]; }
  [[nodiscard]] const TaskState& task(std::size_t i) const { return tasks_[i]; }

  // --- pending pools ---
  //
  // The peeks are logically const: they only advance lazy cursors past
  // entries whose tasks already changed state (the answer is a function of
  // task states alone), so the containers are mutable and the methods const.

  /// Next never-started task in this bag's order, or nullptr.
  [[nodiscard]] TaskState* peek_unstarted() const;
  /// Oldest failed task awaiting priority resubmission (WQR-FT), or nullptr.
  [[nodiscard]] TaskState* peek_resubmission() const;
  /// Oldest task re-queued without priority (WQR / WorkQueue), or nullptr.
  [[nodiscard]] TaskState* peek_requeued() const;

  void push_resubmission(TaskState& task);
  void push_requeue(TaskState& task);

  /// True if any pending (zero-replica, incomplete) task exists. Unlike the
  /// peeks this never pops queue entries: a stale entry whose task is merely
  /// running keeps its position and revalidates if the task fails again —
  /// the priority-resubmission order the probing pick path relies on.
  [[nodiscard]] bool has_pending() const;

  /// True if a resubmission/requeue pool is non-empty yet holds no currently
  /// dispatchable entry — every entry's task is running or completed. Such a
  /// bag is exactly one the positional policy scans used to probe (and
  /// thereby prune) on their way to the selected bag; the dispatch index
  /// tracks these so the probes can be replayed without a full scan.
  [[nodiscard]] bool has_stale_queue_entries() const;

  // --- replication candidates ---

  /// Incomplete task with >= 1 and < `threshold` running replicas, fewest
  /// replicas first (ties by the bag's TaskOrder). nullptr if none.
  [[nodiscard]] TaskState* least_replicated_below(int threshold) const;

  /// Smallest running-replica count among incomplete tasks with >= 1 replica,
  /// or INT_MAX when no task is running. O(1): the bucket map's first key.
  [[nodiscard]] int min_replicated_count() const noexcept;

  // --- bookkeeping driven by the scheduler ---

  /// Call after a replica of `task` started (its count already incremented).
  void after_replica_started(TaskState& task);
  /// Call after a replica of `task` stopped (count already decremented).
  /// No-op for completed tasks.
  void after_replica_stopped(TaskState& task);
  /// Call when `task` completes, BEFORE its sibling replicas are stopped
  /// (the bucket entry is keyed by the still-current replica count).
  void on_task_completed(TaskState& task);

  /// Attaches the scheduler's DispatchIndex; every mutator above (and the
  /// push_* pools) refresh this bag's index memberships before returning.
  /// Wired at the BotState level — not the policy-hook level — because
  /// sibling-replica stops of completed tasks bypass the policy hooks yet
  /// still change total_running(). nullptr detaches.
  void set_dispatch_index(DispatchIndex* index) noexcept { dispatch_index_ = index; }

  // --- bag-level status ---

  [[nodiscard]] std::size_t completed_tasks() const noexcept { return completed_count_; }
  [[nodiscard]] bool completed() const noexcept { return completed_count_ == tasks_.size(); }
  [[nodiscard]] int total_running() const noexcept { return total_running_; }
  [[nodiscard]] double total_work() const noexcept { return total_work_; }
  /// Work of the not-yet-completed tasks (knowledge-based policies only —
  /// a knowledge-free scheduler must not consult this).
  [[nodiscard]] double remaining_work() const noexcept { return total_work_ - completed_work_; }

  /// Time the first replica of any task started (the makespan origin).
  [[nodiscard]] bool ever_dispatched() const noexcept { return ever_dispatched_; }
  [[nodiscard]] double first_dispatch_time() const noexcept { return first_dispatch_time_; }
  [[nodiscard]] double completion_time() const noexcept { return completion_time_; }
  void note_dispatch(double now) noexcept {
    if (!ever_dispatched_) {
      ever_dispatched_ = true;
      first_dispatch_time_ = now;
    }
  }
  void note_completion(double now) noexcept { completion_time_ = now; }

  // --- turnaround decomposition (paper Section 3) ---

  [[nodiscard]] double turnaround() const noexcept { return completion_time_ - arrival_time_; }
  [[nodiscard]] double makespan() const noexcept {
    return completion_time_ - first_dispatch_time_;
  }
  [[nodiscard]] double waiting_time() const noexcept {
    return first_dispatch_time_ - arrival_time_;
  }

 private:
  struct OrderedLess {
    // Comparison by the bag's dispatch order; pointers carry the key data.
    bool operator()(const TaskState* a, const TaskState* b) const noexcept {
      if (descending_work) {
        if (a->work() != b->work()) return a->work() > b->work();
      }
      return a->index() < b->index();
    }
    bool descending_work = false;
  };

  void bucket_insert(TaskState& task, int count);
  void bucket_erase(TaskState& task, int count);

  workload::BotId id_;
  double arrival_time_;
  double granularity_;
  double total_work_ = 0.0;
  TaskOrder order_;
  /// Allocator for every container below (see the constructor).
  std::pmr::memory_resource* mem_;
  /// Task slab: reserved once at construction and never resized, so the
  /// TaskState* handed out everywhere stay stable.
  std::pmr::vector<TaskState> tasks_;

  // Unstarted cursor: precomputed dispatch order, advanced lazily (mutable:
  // the const peeks skip already-consumed entries; see the peek docs).
  std::pmr::vector<TaskState*> unstarted_order_;
  mutable std::size_t unstarted_cursor_ = 0;

  mutable std::pmr::deque<TaskState*> resubmission_queue_;
  mutable std::pmr::deque<TaskState*> requeue_;

  // running-replica-count -> candidate tasks (counts >= 1 only).
  std::pmr::map<int, std::pmr::set<TaskState*, OrderedLess>> buckets_;

  std::size_t completed_count_ = 0;
  double completed_work_ = 0.0;
  int total_running_ = 0;
  bool ever_dispatched_ = false;
  double first_dispatch_time_ = 0.0;
  double completion_time_ = 0.0;

  DispatchIndex* dispatch_index_ = nullptr;
  void refresh_dispatch_index();

  // Intrusive links for ActiveBotList (owned by the scheduler).
  friend class ActiveBotList;
  BotState* active_prev_ = nullptr;
  BotState* active_next_ = nullptr;
  bool in_active_list_ = false;
};

/// Intrusive doubly-linked list of the incomplete bags, in arrival order.
/// Replaces the scheduler's vector + O(B) std::find erase: membership is a
/// flag on the BotState, so completion removes a bag in O(1) while iteration
/// order (arrival order) is preserved — the invariant every FCFS-style
/// policy's determinism rests on.
class ActiveBotList {
 public:
  ActiveBotList() = default;
  ActiveBotList(const ActiveBotList&) = delete;
  ActiveBotList& operator=(const ActiveBotList&) = delete;

  void push_back(BotState& bot) {
    DG_ASSERT_MSG(!bot.in_active_list_, "bot already in active list");
    bot.in_active_list_ = true;
    bot.active_prev_ = tail_;
    bot.active_next_ = nullptr;
    (tail_ != nullptr ? tail_->active_next_ : head_) = &bot;
    tail_ = &bot;
    ++size_;
  }

  void erase(BotState& bot) {
    DG_ASSERT_MSG(bot.in_active_list_, "bot not in active list");
    (bot.active_prev_ != nullptr ? bot.active_prev_->active_next_ : head_) = bot.active_next_;
    (bot.active_next_ != nullptr ? bot.active_next_->active_prev_ : tail_) = bot.active_prev_;
    bot.active_prev_ = nullptr;
    bot.active_next_ = nullptr;
    bot.in_active_list_ = false;
    --size_;
  }

  [[nodiscard]] BotState* front() const noexcept { return head_; }
  [[nodiscard]] BotState* back() const noexcept { return tail_; }
  [[nodiscard]] bool empty() const noexcept { return head_ == nullptr; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] static bool contains(const BotState& bot) noexcept {
    return bot.in_active_list_;
  }

  /// Forward iterator yielding BotState* in arrival order.
  class iterator {
   public:
    explicit iterator(BotState* bot = nullptr) noexcept : bot_(bot) {}
    BotState* operator*() const noexcept { return bot_; }
    iterator& operator++() noexcept {
      bot_ = bot_->active_next_;
      return *this;
    }
    bool operator==(const iterator&) const = default;

   private:
    BotState* bot_;
  };

  [[nodiscard]] iterator begin() const noexcept { return iterator{head_}; }
  [[nodiscard]] iterator end() const noexcept { return iterator{}; }

 private:
  BotState* head_ = nullptr;
  BotState* tail_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace dg::sched
