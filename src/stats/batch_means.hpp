// Batch-means analysis for steady-state simulation output.
//
// Independent replications (ReplicationAnalyzer) pay a warmup per run; the
// batch-means method instead chops one long run's observation stream into
// fixed-size batches and treats the batch means as approximately independent
// samples. The lag-1 autocorrelation of the batch means is the standard
// diagnostic: near zero means the batch size is large enough for the CI to
// be trusted.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/confidence.hpp"
#include "stats/online_stats.hpp"

namespace dg::stats {

/// Batch-means accumulator: folds an observation stream into fixed-size
/// batch means and derives a Student-t CI treating those means as
/// approximately independent samples.
class BatchMeans {
 public:
  /// `batch_size` observations are averaged into one batch mean.
  explicit BatchMeans(std::size_t batch_size);

  /// Feeds one observation into the current batch.
  void add(double x);

  /// Observations averaged into each batch mean.
  [[nodiscard]] std::size_t batch_size() const noexcept { return batch_size_; }
  /// Completed (full) batches so far.
  [[nodiscard]] std::size_t completed_batches() const noexcept { return means_.size(); }
  /// The completed batch means, in stream order.
  [[nodiscard]] const std::vector<double>& batch_means() const noexcept { return means_; }
  /// Observations fed so far (including the current partial batch).
  [[nodiscard]] std::size_t observations() const noexcept { return observations_; }

  /// Grand mean over completed batches.
  [[nodiscard]] double mean() const noexcept { return batch_stats_.mean(); }
  /// Moments of the completed batch means.
  [[nodiscard]] const OnlineStats& batch_stats() const noexcept { return batch_stats_; }

  /// Student-t CI over the batch means (needs >= 2 completed batches).
  [[nodiscard]] ConfidenceInterval interval(double level = 0.95) const {
    return mean_confidence_interval(batch_stats_, level);
  }

  /// Lag-1 autocorrelation of the batch means; |r1| <~ 0.2 with >= 20
  /// batches is the usual "batches are independent enough" rule of thumb.
  /// Returns 0 for fewer than three batches.
  [[nodiscard]] double lag1_autocorrelation() const noexcept;

  /// Convenience: doubles the batch size by merging adjacent batch means
  /// (discards a trailing odd batch). Use when lag1 is too high.
  void coarsen();

 private:
  std::size_t batch_size_;
  std::size_t observations_ = 0;
  double current_sum_ = 0.0;
  std::size_t current_count_ = 0;
  std::vector<double> means_;
  OnlineStats batch_stats_;
};

}  // namespace dg::stats
