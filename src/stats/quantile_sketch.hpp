// Mergeable log-spaced quantile sketch and time-decayed streaming averages.
//
// The columnar tail-metrics pipeline (docs/METRICS.md) streams per-bag
// observations (turnarounds, slowdowns, completion gaps) into one
// QuantileSketch per column. A sketch is a fixed-size histogram over
// log-spaced buckets: adds are O(1) and allocation-free, the memory footprint
// is decided once at construction (so a sketch retained in a
// sim::SimulationWorkspace keeps the warmed run loop zero-alloc), and two
// sketches with the same geometry merge by exact integer bucket addition —
// the merged p50/p95/p99 are bit-identical regardless of merge order, thread
// count, or batch shape. See ClickHouse's AggregateFunctionQuantileHistogram
// for the production shape this mirrors.
#pragma once

#include <cstdint>
#include <vector>

#include "util/binary_io.hpp"

namespace dg::stats {

/// The three headline tail quantiles of a distribution (docs/METRICS.md).
/// All zero when estimated from an empty sketch.
struct TailQuantiles {
  double p50 = 0.0;  ///< Median.
  double p95 = 0.0;  ///< 95th percentile.
  double p99 = 0.0;  ///< 99th percentile.
};

/// Fixed-memory quantile estimator over log-spaced buckets.
///
/// Bucket `i` covers `[min_value * 10^(i/bpd), min_value * 10^((i+1)/bpd))`
/// where `bpd = buckets_per_decade`; values below `min_value` (including
/// zero and negatives) land in a dedicated underflow counter, values at or
/// above `max_value` in an overflow counter. Quantile estimates interpolate
/// linearly within a bucket and are clamped to the exact observed
/// `[min(), max()]`, so `quantile(0)` / `quantile(1)` are exact and the
/// under/overflow counters never leak bucket edges into the estimate. The
/// per-bucket relative width `10^(1/bpd) - 1` bounds the relative error of
/// any interior quantile (~3.7% at the default 64 buckets/decade, roughly
/// halved by the midpoint interpolation).
///
/// Counts are exact 64-bit integers and the min/max/sum trackers merge
/// exactly, so merging partial sketches is deterministic and
/// order-independent — the property the experiment runner's
/// fold-in-build-order contract relies on (src/exp/runner.hpp).
class QuantileSketch {
 public:
  /// Bucket layout of a sketch. Two sketches merge only if their geometries
  /// are identical.
  struct Geometry {
    /// Lower edge of the first bucket; values below it count as underflow.
    double min_value = 1e-3;
    /// Upper edge of the last bucket; values at or above it count as
    /// overflow. Must exceed `min_value` by at least one decade.
    double max_value = 1e9;
    /// Buckets per decade of value; resolution/memory trade-off.
    std::size_t buckets_per_decade = 64;
  };

  /// Sketch with the default geometry: [1e-3, 1e9) at 64 buckets/decade
  /// (768 buckets, ~6 KiB) — sized for the simulator's second-scale
  /// turnaround/gap observations and unitless slowdowns.
  QuantileSketch() : QuantileSketch(Geometry{}) {}

  /// Sketch with an explicit geometry. Throws std::invalid_argument when the
  /// geometry is degenerate (non-positive bounds, max <= min, zero buckets).
  explicit QuantileSketch(const Geometry& geometry);

  /// Records one observation. O(1), allocation-free, never throws.
  void add(double x) noexcept;

  /// Folds `other` into this sketch by exact bucket-wise addition.
  /// Throws std::invalid_argument when the geometries differ.
  void merge(const QuantileSketch& other);

  /// Zeroes every counter while keeping the bucket storage — a reset sketch
  /// behaves like a freshly constructed one but performs no allocation.
  void reset() noexcept;

  /// Linear-interpolated quantile estimate for `q` in [0, 1], clamped to the
  /// observed [min(), max()]. Returns 0 for an empty sketch; throws
  /// std::invalid_argument for q outside [0, 1].
  [[nodiscard]] double quantile(double q) const;

  /// Convenience bundle of quantile(0.5) / quantile(0.95) / quantile(0.99).
  [[nodiscard]] TailQuantiles tails() const;

  /// Observations recorded (including under/overflow).
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  /// True when no observation has been recorded since construction/reset().
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Observations below the first bucket (including zero and negatives).
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  /// Observations at or above the last bucket's upper edge.
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  /// Exact smallest observation; 0 when empty.
  [[nodiscard]] double min() const noexcept;
  /// Exact largest observation; 0 when empty.
  [[nodiscard]] double max() const noexcept;
  /// Exact sum of all observations.
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// Exact mean of all observations; 0 when empty.
  [[nodiscard]] double mean() const noexcept;

  /// Appends the sketch's full state (geometry, bucket counts, exact
  /// trackers) to `out`. Counts are integers and the double trackers are
  /// stored bitwise, so deserialize() reconstructs a sketch whose every
  /// subsequent merge/quantile is bit-identical to the original's — the
  /// property the multi-process runner's cross-process fold relies on
  /// (src/exp/shard.hpp).
  void serialize(std::vector<std::uint8_t>& out) const;
  /// Reconstructs a sketch serialized by serialize(). Throws
  /// std::runtime_error on truncated input or a degenerate stored geometry.
  [[nodiscard]] static QuantileSketch deserialize(util::ByteReader& reader);

  /// The sketch's bucket layout.
  [[nodiscard]] const Geometry& geometry() const noexcept { return geometry_; }
  /// Number of log-spaced buckets (excluding the under/overflow counters).
  [[nodiscard]] std::size_t num_buckets() const noexcept { return counts_.size(); }
  /// Count in bucket `i` (bounds-checked).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const { return counts_.at(i); }
  /// Lower value edge of bucket `i`.
  [[nodiscard]] double bucket_lower(std::size_t i) const noexcept;

 private:
  Geometry geometry_;
  double inv_log10_width_ = 0.0;  // buckets_per_decade / ln(10)
  double log_min_ = 0.0;          // ln(min_value)
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;  // valid only when count_ > 0
  double max_ = 0.0;  // valid only when count_ > 0
};

/// Exponentially time-decayed average of a piecewise-constant signal.
///
/// Like stats::TimeWeightedStats but with every contribution weighted by
/// `exp(-(now - t) / tau)`: the average "forgets" the past on the time scale
/// `tau`, so the value reflects *recent* load instead of the whole-run mean.
/// Used for the decayed-utilization column of the tail-metrics pipeline
/// (the ClickHouse `exponentialTimeDecayedAvg` shape). All operations are
/// O(1), allocation-free, and deterministic for a given update sequence.
class TimeDecayedAverage {
 public:
  /// Starts the signal at `initial_value` from `start_time`, with decay time
  /// constant `tau` (seconds). Throws std::invalid_argument for tau <= 0.
  explicit TimeDecayedAverage(double tau, double start_time = 0.0,
                              double initial_value = 0.0);

  /// Records that the signal changed to `new_value` at time `now`.
  /// Out-of-order updates (now < last update) only replace the value.
  void update(double now, double new_value) noexcept;

  /// Advances time without changing the value.
  void advance_to(double now) noexcept { update(now, value_); }

  /// The decayed time-average over [start_time, now]: recent intervals are
  /// weighted exp(-(age)/tau). Equals the plain time-average for a constant
  /// signal; returns the current value before any time has elapsed.
  [[nodiscard]] double average(double now) const noexcept;

  /// The signal's current (most recently recorded) value.
  [[nodiscard]] double current() const noexcept { return value_; }
  /// The decay time constant.
  [[nodiscard]] double tau() const noexcept { return tau_; }

 private:
  double tau_;
  double last_time_;
  double value_;
  double weighted_sum_ = 0.0;  // integral of value * exp(-(last - s)/tau)
  double weight_ = 0.0;        // integral of exp(-(last - s)/tau)
};

}  // namespace dg::stats
