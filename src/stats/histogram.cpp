#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dg::stats {

Histogram::Histogram(double lo, double hi, std::size_t num_bins) : lo_(lo) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (num_bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
  width_ = (hi - lo) / static_cast<double>(num_bins);
  counts_.assign(num_bins, 0);
}

void Histogram::add(double x) noexcept {
  if (total_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const double offset = (x - lo_) / width_;
  if (offset >= static_cast<double>(counts_.size())) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<std::size_t>(offset)];
}

double Histogram::bin_lower(std::size_t i) const noexcept {
  return lo_ + static_cast<double>(i) * width_;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) throw std::logic_error("Histogram::quantile on empty histogram");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("Histogram::quantile: q in [0,1]");
  const double target = q * static_cast<double>(total_);
  double cumulative = static_cast<double>(underflow_);
  // The underflow mass lies entirely in [min_, lo_); report the observed
  // minimum rather than the lo_ bin edge.
  if (target <= cumulative) return min_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cumulative) / static_cast<double>(counts_[i]);
      // Interpolated estimates can stick out past the observed extremes in
      // the first/last occupied bin; clamp them back to real observations.
      return std::clamp(bin_lower(i) + frac * width_, min_, max_);
    }
    cumulative = next;
  }
  // Only the overflow mass remains; it lies in [hi, max_].
  return max_;
}

}  // namespace dg::stats
