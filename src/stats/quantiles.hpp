// Quantile functions for confidence intervals.
//
// The paper reports 95% confidence intervals with <= 2.5% relative error; the
// replication analyzer needs Student-t critical values for small replication
// counts. Implemented from scratch (Acklam's normal inverse + Hill's Algorithm
// 396 for t) so results do not depend on platform math libraries.
#pragma once

namespace dg::stats {

/// Inverse standard-normal CDF (Acklam's rational approximation, |eps|<1.2e-9).
/// Requires 0 < p < 1.
[[nodiscard]] double normal_quantile(double p);

/// Inverse Student-t CDF with `df` degrees of freedom (Hill 1970, Alg. 396,
/// with a Newton polish through the t CDF). Requires 0 < p < 1 and df >= 1.
[[nodiscard]] double student_t_quantile(double p, double df);

/// Student-t CDF (via the regularized incomplete beta function).
[[nodiscard]] double student_t_cdf(double t, double df);

/// Regularized incomplete beta I_x(a, b) by continued fraction (Lentz).
[[nodiscard]] double incomplete_beta(double a, double b, double x);

}  // namespace dg::stats
