// Numerically-stable streaming moments (Welford / Chan).
//
// Simulation runs produce long streams of observations (per-bag turnarounds,
// per-task waits); OnlineStats accumulates mean/variance in one pass without
// storing samples and merges partial accumulators from parallel replications.
#pragma once

#include <cstdint>
#include <limits>

namespace dg::stats {

/// One-pass accumulator of count/mean/variance/min/max/sum (Welford's
/// update); merges partial accumulators from parallel replications (Chan's
/// formula) without ever storing samples.
class OnlineStats {
 public:
  /// Records one observation (O(1), never throws).
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  /// Chan et al. parallel merge; exact up to rounding.
  void merge(const OnlineStats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = n1 + n2;
    mean_ += delta * n2 / total;
    m2_ += other.m2_ + delta * delta * n1 * n2 / total;
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  /// Observations recorded.
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  /// Running mean; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Exact sum of all observations.
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  /// Sample standard deviation; 0 for fewer than two samples.
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean; 0 for fewer than two samples.
  [[nodiscard]] double std_error() const noexcept;
  /// Smallest observation; +inf when empty.
  [[nodiscard]] double min() const noexcept { return min_; }
  /// Largest observation; -inf when empty.
  [[nodiscard]] double max() const noexcept { return max_; }
  /// True when no observation has been recorded.
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Integrates a piecewise-constant signal over time; yields the time-average.
/// Used for grid utilization and queue-length statistics. For a
/// recency-weighted variant see stats::TimeDecayedAverage
/// (stats/quantile_sketch.hpp).
class TimeWeightedStats {
 public:
  /// Starts the signal at `initial_value` from `start_time`.
  explicit TimeWeightedStats(double start_time = 0.0, double initial_value = 0.0) noexcept
      : last_time_(start_time), value_(initial_value), start_time_(start_time) {}

  /// Records that the signal changed to `new_value` at time `now` (>= last).
  void update(double now, double new_value) noexcept {
    if (now > last_time_) {
      integral_ += value_ * (now - last_time_);
      last_time_ = now;
    }
    value_ = new_value;
  }

  /// Advances time without changing the value.
  void advance_to(double now) noexcept { update(now, value_); }

  /// The signal's current (most recently recorded) value.
  [[nodiscard]] double current() const noexcept { return value_; }
  /// Integral of the signal over [start_time, now].
  [[nodiscard]] double integral(double now) const noexcept {
    return integral_ + (now > last_time_ ? value_ * (now - last_time_) : 0.0);
  }
  /// Plain time-average of the signal over [start_time, now].
  [[nodiscard]] double time_average(double now) const noexcept {
    const double span = now - start_time_;
    return span > 0.0 ? integral(now) / span : value_;
  }

 private:
  double last_time_;
  double value_;
  double start_time_;
  double integral_ = 0.0;
};

}  // namespace dg::stats
