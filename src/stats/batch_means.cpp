#include "stats/batch_means.hpp"

#include <stdexcept>

namespace dg::stats {

BatchMeans::BatchMeans(std::size_t batch_size) : batch_size_(batch_size) {
  if (batch_size == 0) throw std::invalid_argument("BatchMeans: batch size must be positive");
}

void BatchMeans::add(double x) {
  ++observations_;
  current_sum_ += x;
  if (++current_count_ == batch_size_) {
    const double mean = current_sum_ / static_cast<double>(batch_size_);
    means_.push_back(mean);
    batch_stats_.add(mean);
    current_sum_ = 0.0;
    current_count_ = 0;
  }
}

double BatchMeans::lag1_autocorrelation() const noexcept {
  const std::size_t n = means_.size();
  if (n < 3) return 0.0;
  const double mean = batch_stats_.mean();
  double numerator = 0.0;
  double denominator = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double centered = means_[i] - mean;
    denominator += centered * centered;
    if (i + 1 < n) numerator += centered * (means_[i + 1] - mean);
  }
  return denominator > 0.0 ? numerator / denominator : 0.0;
}

void BatchMeans::coarsen() {
  std::vector<double> merged;
  merged.reserve(means_.size() / 2);
  for (std::size_t i = 0; i + 1 < means_.size(); i += 2) {
    merged.push_back(0.5 * (means_[i] + means_[i + 1]));
  }
  means_ = std::move(merged);
  batch_size_ *= 2;
  batch_stats_ = OnlineStats();
  for (double m : means_) batch_stats_.add(m);
  // The partial batch keeps accumulating at the old granularity relative to
  // the new size; reset it to keep semantics simple.
  current_sum_ = 0.0;
  current_count_ = 0;
}

}  // namespace dg::stats
