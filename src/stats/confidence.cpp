#include "stats/confidence.hpp"

#include <cmath>
#include <limits>

#include "stats/quantiles.hpp"

namespace dg::stats {

double ConfidenceInterval::relative_error() const noexcept {
  if (half_width == 0.0) return 0.0;
  if (mean == 0.0) return std::numeric_limits<double>::infinity();
  return half_width / std::fabs(mean);
}

ConfidenceInterval mean_confidence_interval(const OnlineStats& stats, double level) {
  ConfidenceInterval ci;
  ci.level = level;
  ci.mean = stats.mean();
  if (stats.count() < 2) {
    ci.half_width = std::numeric_limits<double>::infinity();
    return ci;
  }
  const double df = static_cast<double>(stats.count() - 1);
  const double t = student_t_quantile(0.5 + level / 2.0, df);
  ci.half_width = t * stats.std_error();
  return ci;
}

void ReplicationAnalyzer::add(double observation) {
  stats_.add(observation);
  samples_.push_back(observation);
}

bool ReplicationAnalyzer::precise_enough() const {
  if (stats_.count() < min_replications_) return false;
  return interval().relative_error() <= target_relative_error_;
}

}  // namespace dg::stats
