// Confidence intervals over independent replications.
//
// The paper's stopping rule: 95% confidence intervals on the mean turnaround
// with relative error (half-width / mean) of 2.5% or less. ReplicationAnalyzer
// implements that sequential procedure: feed one observation per replication,
// ask `precise_enough()` to decide whether more replications are needed.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/online_stats.hpp"

namespace dg::stats {

/// A symmetric confidence interval mean +- half_width at `level`.
struct ConfidenceInterval {
  double mean = 0.0;        ///< Point estimate (sample mean).
  double half_width = 0.0;  ///< CI half-width at `level`.
  double level = 0.95;      ///< Confidence level in (0, 1).

  /// Lower CI bound (mean - half_width).
  [[nodiscard]] double lower() const noexcept { return mean - half_width; }
  /// Upper CI bound (mean + half_width).
  [[nodiscard]] double upper() const noexcept { return mean + half_width; }
  /// Half-width relative to the mean (infinite for zero mean with spread).
  [[nodiscard]] double relative_error() const noexcept;
  /// True when `value` lies within [lower(), upper()].
  [[nodiscard]] bool contains(double value) const noexcept {
    return value >= lower() && value <= upper();
  }
};

/// Student-t CI for the mean of `stats` (needs >= 2 samples; otherwise the
/// half-width is +infinity so callers keep sampling).
[[nodiscard]] ConfidenceInterval mean_confidence_interval(const OnlineStats& stats,
                                                          double level = 0.95);

/// Sequential replication analysis: one observation per replication, stop
/// when the CI meets the relative-error target (the paper's 2.5% rule).
class ReplicationAnalyzer {
 public:
  /// Configures the stopping rule: `level` CI, `target_relative_error`
  /// half-width/mean threshold, and at least `min_replications` samples.
  explicit ReplicationAnalyzer(double level = 0.95, double target_relative_error = 0.025,
                               std::uint64_t min_replications = 3)
      : level_(level),
        target_relative_error_(target_relative_error),
        min_replications_(min_replications) {}

  /// Feeds one replication's observation.
  void add(double observation);

  /// Moments of the observations so far.
  [[nodiscard]] const OnlineStats& stats() const noexcept { return stats_; }
  /// Every observation, in feed order.
  [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }
  /// Current Student-t CI at the configured level.
  [[nodiscard]] ConfidenceInterval interval() const { return mean_confidence_interval(stats_, level_); }
  /// True once the CI half-width meets the relative-error target (with the
  /// minimum replication count satisfied).
  [[nodiscard]] bool precise_enough() const;

 private:
  double level_;
  double target_relative_error_;
  std::uint64_t min_replications_;
  OnlineStats stats_;
  std::vector<double> samples_;
};

}  // namespace dg::stats
