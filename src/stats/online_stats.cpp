#include "stats/online_stats.hpp"

#include <cmath>

namespace dg::stats {

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::std_error() const noexcept {
  return count_ > 1 ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
}

}  // namespace dg::stats
