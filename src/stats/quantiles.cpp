#include "stats/quantiles.hpp"

#include <cmath>
#include <stdexcept>

namespace dg::stats {

namespace {

constexpr double kPi = 3.14159265358979323846;

double beta_cf(double a, double b, double x) {
  // Modified Lentz continued fraction for the incomplete beta function.
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kTiny = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double df) {
  if (df <= 0.0) throw std::invalid_argument("student_t_cdf: df must be positive");
  const double x = df / (df + t * t);
  const double tail = 0.5 * incomplete_beta(0.5 * df, 0.5, x);
  return t > 0.0 ? 1.0 - tail : tail;
}

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("normal_quantile: p must be in (0, 1)");
  }
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley step against the normal CDF sharpens to ~1e-15.
  const double e = 0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
  const double u = e * std::sqrt(2.0 * kPi) * std::exp(0.5 * x * x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

double student_t_quantile(double p, double df) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("student_t_quantile: p must be in (0, 1)");
  }
  if (df < 1.0) throw std::invalid_argument("student_t_quantile: df must be >= 1");
  if (p == 0.5) return 0.0;

  // Hill's Algorithm 396 initial estimate.
  const bool upper = p >= 0.5;
  const double two_tail = upper ? 2.0 * (1.0 - p) : 2.0 * p;
  double t;
  if (df == 1.0) {
    t = std::cos(two_tail * kPi / 2.0) / std::sin(two_tail * kPi / 2.0);
  } else if (df == 2.0) {
    t = std::sqrt(2.0 / (two_tail * (2.0 - two_tail)) - 2.0);
  } else {
    const double a = 1.0 / (df - 0.5);
    const double b_ = 48.0 / (a * a);
    double c = ((20700.0 * a / b_ - 98.0) * a - 16.0) * a + 96.36;
    const double d_ = ((94.5 / (b_ + c) - 3.0) / b_ + 1.0) * std::sqrt(a * kPi / 2.0) * df;
    double x = d_ * two_tail;
    double y = std::pow(x, 2.0 / df);
    if (y > 0.05 + a) {
      x = normal_quantile(two_tail * 0.5);
      y = x * x;
      if (df < 5.0) c += 0.3 * (df - 4.5) * (x + 0.6);
      c = (((0.05 * d_ * x - 5.0) * x - 7.0) * x - 2.0) * x + b_ + c;
      y = (((((0.4 * y + 6.3) * y + 36.0) * y + 94.5) / c - y - 3.0) / b_ + 1.0) * x;
      y = a * y * y;
      y = y > 0.002 ? std::exp(y) - 1.0 : 0.5 * y * y + y;
    } else {
      y = ((1.0 / (((df + 6.0) / (df * y) - 0.089 * d_ - 0.822) * (df + 2.0) * 3.0) +
            0.5 / (df + 4.0)) *
               y -
           1.0) *
              (df + 1.0) / (df + 2.0) +
          1.0 / y;
    }
    t = std::sqrt(df * y);
  }
  if (!upper) t = -t;

  // Newton polish through the exact CDF (two steps suffice).
  for (int i = 0; i < 3; ++i) {
    const double err = student_t_cdf(t, df) - p;
    const double pdf = std::exp(std::lgamma(0.5 * (df + 1.0)) - std::lgamma(0.5 * df)) /
                       (std::sqrt(df * kPi) * std::pow(1.0 + t * t / df, 0.5 * (df + 1.0)));
    if (pdf <= 0.0) break;
    const double step = err / pdf;
    t -= step;
    if (std::fabs(step) < 1e-12 * (1.0 + std::fabs(t))) break;
  }
  return t;
}

}  // namespace dg::stats
