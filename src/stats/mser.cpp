#include "stats/mser.hpp"

#include <limits>

namespace dg::stats {

namespace {

// MSER over an already-batched series; truncation returned in batch units.
MserResult mser_core(std::span<const double> series) {
  MserResult result;
  const std::size_t n = series.size();
  if (n < 4) return result;

  // Suffix sums allow O(1) mean/variance of each retained tail.
  std::vector<double> suffix_sum(n + 1, 0.0);
  std::vector<double> suffix_sq(n + 1, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    suffix_sum[i] = suffix_sum[i + 1] + series[i];
    suffix_sq[i] = suffix_sq[i + 1] + series[i] * series[i];
  }

  double best = std::numeric_limits<double>::infinity();
  std::size_t best_d = 0;
  const std::size_t max_d = n / 2;  // never delete more than half
  for (std::size_t d = 0; d <= max_d; ++d) {
    const double retained = static_cast<double>(n - d);
    const double mean = suffix_sum[d] / retained;
    const double var = suffix_sq[d] / retained - mean * mean;
    const double statistic = var / retained;
    if (statistic < best) {
      best = statistic;
      best_d = d;
    }
  }
  result.truncation_index = best_d;
  result.statistic = best;
  return result;
}

}  // namespace

MserResult mser_truncation(std::span<const double> series) { return mser_core(series); }

MserResult mser5_truncation(std::span<const double> series, std::size_t batch) {
  if (batch <= 1) return mser_core(series);
  std::vector<double> batched;
  batched.reserve(series.size() / batch);
  for (std::size_t i = 0; i + batch <= series.size(); i += batch) {
    double sum = 0.0;
    for (std::size_t j = 0; j < batch; ++j) sum += series[i + j];
    batched.push_back(sum / static_cast<double>(batch));
  }
  MserResult result = mser_core(batched);
  result.truncation_index *= batch;
  return result;
}

}  // namespace dg::stats
