// Fixed-width histogram with overflow/underflow bins.
//
// Used by tests to sanity-check sampled distributions and by examples to show
// turnaround-time spreads. Quantile estimation interpolates within bins and
// clamps to the exact observed [min, max], so quantiles that land in the
// underflow/overflow mass report real observations rather than bin edges.
// For the log-spaced, mergeable sketch behind the tail-metrics pipeline see
// stats/quantile_sketch.hpp.
#pragma once

#include <cstdint>
#include <vector>

namespace dg::stats {

/// Equal-width histogram over [lo, hi) with dedicated underflow/overflow
/// counters and interpolated quantile estimation.
class Histogram {
 public:
  /// Bins [lo, hi) into `num_bins` equal-width bins; values outside land in
  /// dedicated underflow/overflow counters. Throws std::invalid_argument for
  /// hi <= lo or zero bins.
  Histogram(double lo, double hi, std::size_t num_bins);

  /// Records one observation (O(1), never throws).
  void add(double x) noexcept;

  /// Observations recorded, including under/overflow.
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// Observations below `lo`.
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  /// Observations at or above `hi`.
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  /// Number of equal-width bins (excluding the under/overflow counters).
  [[nodiscard]] std::size_t num_bins() const noexcept { return counts_.size(); }
  /// Count in bin `i` (bounds-checked).
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  /// Lower value edge of bin `i`.
  [[nodiscard]] double bin_lower(std::size_t i) const noexcept;
  /// Width of every bin: (hi - lo) / num_bins.
  [[nodiscard]] double bin_width() const noexcept { return width_; }
  /// Exact smallest observation; only meaningful when total() > 0.
  [[nodiscard]] double min() const noexcept { return min_; }
  /// Exact largest observation; only meaningful when total() > 0.
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Linear-interpolated quantile estimate (q in [0,1]); requires
  /// total() > 0 (throws std::logic_error otherwise). The estimate is
  /// clamped to the observed [min(), max()]: a quantile falling in the
  /// underflow (overflow) mass returns the observed min (max) instead of
  /// the histogram's lo/hi bin edges.
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
  double min_ = 0.0;  // valid only when total_ > 0
  double max_ = 0.0;  // valid only when total_ > 0
};

}  // namespace dg::stats
