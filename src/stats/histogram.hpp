// Fixed-width histogram with overflow/underflow bins.
//
// Used by tests to sanity-check sampled distributions and by examples to show
// turnaround-time spreads. Quantile estimation interpolates within bins.
#pragma once

#include <cstdint>
#include <vector>

namespace dg::stats {

class Histogram {
 public:
  /// Bins [lo, hi) into `num_bins` equal-width bins; values outside land in
  /// dedicated underflow/overflow counters.
  Histogram(double lo, double hi, std::size_t num_bins);

  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t num_bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bin_lower(std::size_t i) const noexcept;
  [[nodiscard]] double bin_width() const noexcept { return width_; }

  /// Linear-interpolated quantile estimate (q in [0,1]); requires total() > 0.
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace dg::stats
