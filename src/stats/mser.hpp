// MSER warmup truncation (White 1997; MSER-5 variant).
//
// Picks the truncation point d* minimizing the Marginal Standard Error Rule
// statistic  MSER(d) = s^2_{d..n} / (n - d)  over the retained suffix — the
// classic data-driven rule for deleting the initial transient of a
// steady-state simulation output series. MSER-5 first averages the series
// into batches of 5 to damp noise. The search is restricted to the first
// half of the series (the standard guard against degenerate tail minima).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dg::stats {

struct MserResult {
  /// Number of raw observations to delete from the front.
  std::size_t truncation_index = 0;
  /// The minimized MSER statistic at that point.
  double statistic = 0.0;
};

/// Plain MSER on the raw series. Requires at least 4 observations; returns
/// truncation 0 for shorter inputs.
[[nodiscard]] MserResult mser_truncation(std::span<const double> series);

/// MSER-5: batches of `batch` (default 5) observations are averaged first;
/// the returned truncation index is in raw-observation units (a multiple of
/// the batch size).
[[nodiscard]] MserResult mser5_truncation(std::span<const double> series,
                                          std::size_t batch = 5);

}  // namespace dg::stats
