#include "stats/quantile_sketch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dg::stats {

QuantileSketch::QuantileSketch(const Geometry& geometry) : geometry_(geometry) {
  if (!(geometry.min_value > 0.0)) {
    throw std::invalid_argument("QuantileSketch: min_value must be positive");
  }
  if (!(geometry.max_value > geometry.min_value)) {
    throw std::invalid_argument("QuantileSketch: max_value must exceed min_value");
  }
  if (geometry.buckets_per_decade == 0) {
    throw std::invalid_argument("QuantileSketch: need at least one bucket per decade");
  }
  const double decades = std::log10(geometry.max_value / geometry.min_value);
  const std::size_t num_buckets = static_cast<std::size_t>(
      std::ceil(decades * static_cast<double>(geometry.buckets_per_decade) - 1e-9));
  if (num_buckets == 0) {
    throw std::invalid_argument("QuantileSketch: geometry spans no buckets");
  }
  inv_log10_width_ =
      static_cast<double>(geometry.buckets_per_decade) / std::log(10.0);
  log_min_ = std::log(geometry.min_value);
  counts_.assign(num_buckets, 0);
}

void QuantileSketch::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  sum_ += x;
  if (!(x >= geometry_.min_value)) {  // negatives, zero, NaN -> underflow
    ++underflow_;
    return;
  }
  if (x >= geometry_.max_value) {
    ++overflow_;
    return;
  }
  const double offset = (std::log(x) - log_min_) * inv_log10_width_;
  std::size_t index = offset > 0.0 ? static_cast<std::size_t>(offset) : 0;
  // Guard the ulp edge where log() rounds a value just under max_value into
  // the one-past-the-end bucket.
  if (index >= counts_.size()) index = counts_.size() - 1;
  ++counts_[index];
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (geometry_.min_value != other.geometry_.min_value ||
      geometry_.max_value != other.geometry_.max_value ||
      geometry_.buckets_per_decade != other.geometry_.buckets_per_decade) {
    throw std::invalid_argument("QuantileSketch::merge: geometry mismatch");
  }
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  sum_ += other.sum_;
}

void QuantileSketch::serialize(std::vector<std::uint8_t>& out) const {
  util::put_pod(out, geometry_.min_value);
  util::put_pod(out, geometry_.max_value);
  util::put_pod(out, static_cast<std::uint64_t>(geometry_.buckets_per_decade));
  util::put_pod(out, static_cast<std::uint64_t>(counts_.size()));
  util::put_array(out, counts_.data(), counts_.size());
  util::put_pod(out, count_);
  util::put_pod(out, underflow_);
  util::put_pod(out, overflow_);
  util::put_pod(out, sum_);
  util::put_pod(out, min_);
  util::put_pod(out, max_);
}

QuantileSketch QuantileSketch::deserialize(util::ByteReader& reader) {
  Geometry geometry;
  geometry.min_value = reader.pod<double>();
  geometry.max_value = reader.pod<double>();
  geometry.buckets_per_decade = static_cast<std::size_t>(reader.pod<std::uint64_t>());
  QuantileSketch sketch = [&geometry] {
    try {
      return QuantileSketch(geometry);
    } catch (const std::invalid_argument& e) {
      throw std::runtime_error(e.what());  // corrupt input, not caller error
    }
  }();
  const auto num_buckets = static_cast<std::size_t>(reader.pod<std::uint64_t>());
  if (num_buckets != sketch.counts_.size()) {
    throw std::runtime_error("QuantileSketch: stored bucket count disagrees with geometry");
  }
  reader.array(sketch.counts_.data(), num_buckets);
  sketch.count_ = reader.pod<std::uint64_t>();
  sketch.underflow_ = reader.pod<std::uint64_t>();
  sketch.overflow_ = reader.pod<std::uint64_t>();
  sketch.sum_ = reader.pod<double>();
  sketch.min_ = reader.pod<double>();
  sketch.max_ = reader.pod<double>();
  return sketch;
}

void QuantileSketch::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), std::uint64_t{0});
  count_ = 0;
  underflow_ = 0;
  overflow_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

double QuantileSketch::min() const noexcept { return count_ > 0 ? min_ : 0.0; }

double QuantileSketch::max() const noexcept { return count_ > 0 ? max_ : 0.0; }

double QuantileSketch::mean() const noexcept {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double QuantileSketch::bucket_lower(std::size_t i) const noexcept {
  return geometry_.min_value *
         std::pow(10.0, static_cast<double>(i) /
                            static_cast<double>(geometry_.buckets_per_decade));
}

double QuantileSketch::quantile(double q) const {
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("QuantileSketch::quantile: q must be in [0, 1]");
  }
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  double cumulative = static_cast<double>(underflow_);
  // The underflow mass has no bucket structure; everything in it is between
  // the observed min and the first bucket edge — clamp to the exact min.
  if (target <= cumulative) return min_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (target <= next) {
      const double frac = (target - cumulative) / static_cast<double>(counts_[i]);
      const double lo = bucket_lower(i);
      const double hi = bucket_lower(i + 1);
      return std::clamp(lo + frac * (hi - lo), min_, max_);
    }
    cumulative = next;
  }
  // Only the overflow mass remains; clamp to the exact max.
  return max_;
}

TailQuantiles QuantileSketch::tails() const {
  TailQuantiles t;
  if (count_ == 0) return t;
  t.p50 = quantile(0.50);
  t.p95 = quantile(0.95);
  t.p99 = quantile(0.99);
  return t;
}

TimeDecayedAverage::TimeDecayedAverage(double tau, double start_time, double initial_value)
    : tau_(tau), last_time_(start_time), value_(initial_value) {
  if (!(tau > 0.0)) {
    throw std::invalid_argument("TimeDecayedAverage: tau must be positive");
  }
}

void TimeDecayedAverage::update(double now, double new_value) noexcept {
  if (now > last_time_) {
    const double dt = now - last_time_;
    const double decay = std::exp(-dt / tau_);
    const double segment = tau_ * (1.0 - decay);  // integral of exp over [last, now]
    weighted_sum_ = weighted_sum_ * decay + value_ * segment;
    weight_ = weight_ * decay + segment;
    last_time_ = now;
  }
  value_ = new_value;
}

double TimeDecayedAverage::average(double now) const noexcept {
  double weighted_sum = weighted_sum_;
  double weight = weight_;
  if (now > last_time_) {
    const double dt = now - last_time_;
    const double decay = std::exp(-dt / tau_);
    const double segment = tau_ * (1.0 - decay);
    weighted_sum = weighted_sum * decay + value_ * segment;
    weight = weight * decay + segment;
  }
  return weight > 0.0 ? weighted_sum / weight : value_;
}

}  // namespace dg::stats
