// ASCII table and CSV rendering for experiment output.
//
// The figure-reproduction benches print the same rows the paper plots; Table
// keeps columns aligned for human reading and write_csv emits machine-readable
// output for downstream plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dg::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const noexcept { return header_.size(); }

  /// Renders an aligned, boxed ASCII table.
  void render(std::ostream& os) const;
  /// Renders RFC-4180-style CSV (quotes fields containing comma/quote/newline).
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with `precision` significant decimal digits after the point.
[[nodiscard]] std::string format_double(double value, int precision = 1);

/// Formats a CSV field, quoting when needed.
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace dg::util
