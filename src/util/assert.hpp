// Always-on invariant checking.
//
// Simulation correctness depends on internal invariants (a machine never runs
// two replicas, checkpointed progress is monotone, ...). These are programmer
// errors, not recoverable conditions, so violation aborts with a diagnostic.
// DG_ASSERT stays active in Release builds: the cost is negligible next to the
// event-processing work and silent state corruption is far more expensive.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dg::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) noexcept {
  std::fprintf(stderr, "dgsched: assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace dg::util

#define DG_ASSERT(expr)                                                   \
  do {                                                                    \
    if (!(expr)) ::dg::util::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define DG_ASSERT_MSG(expr, msg)                                           \
  do {                                                                     \
    if (!(expr)) ::dg::util::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (false)
