// Small command-line argument parser for the examples and bench harnesses.
//
// Supports `--name value`, `--name=value`, and boolean `--flag` options plus
// positional arguments. Unknown options are an error (reported with usage).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dg::util {

class ArgParser {
 public:
  ArgParser(std::string program_name, std::string description);

  /// Declares an option taking a value; `default_value` is used when absent.
  void add_option(std::string name, std::string default_value, std::string help);
  /// Declares a boolean flag (present => true).
  void add_flag(std::string name, std::string help);

  /// Parses argv. Returns false (and prints usage + error to stderr) on error
  /// or when `--help` was requested (usage goes to stdout in that case).
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(std::string_view name) const;
  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name) const;
  [[nodiscard]] bool get_flag(std::string_view name) const;
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] std::string usage() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
    std::optional<std::string> value;
  };

  std::string program_name_;
  std::string description_;
  std::map<std::string, Option, std::less<>> options_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

}  // namespace dg::util
