#include "util/shm_ring.hpp"

#include <sys/mman.h>

#include <cstring>
#include <stdexcept>
#include <string>

#include "util/binary_io.hpp"

namespace dg::util {

namespace {
constexpr std::size_t kSlotAlign = 64;  // keep slot headers on their own cache lines
}  // namespace

ShmRing::ShmRing(std::size_t slots, std::size_t payload_capacity)
    : slots_(slots),
      capacity_(payload_capacity),
      stride_(sizeof(SlotHeader) + ((payload_capacity + kSlotAlign - 1) / kSlotAlign) * kSlotAlign) {
  if (slots_ == 0) throw std::invalid_argument("ShmRing: need at least one slot");
  void* mapped = ::mmap(nullptr, slots_ * stride_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mapped == MAP_FAILED) throw std::runtime_error("ShmRing: mmap failed");
  base_ = static_cast<std::uint8_t*>(mapped);
  std::memset(base_, 0, slots_ * stride_);
}

ShmRing::~ShmRing() {
  if (base_ != nullptr) ::munmap(base_, slots_ * stride_);
}

std::uint8_t* ShmRing::slot_base(std::size_t slot) const noexcept {
  return base_ + slot * stride_;
}

void ShmRing::write(std::size_t slot, const std::uint8_t* data, std::size_t size) {
  if (slot >= slots_) throw std::out_of_range("ShmRing: slot out of range");
  if (size > capacity_) throw std::length_error("ShmRing: payload exceeds slot capacity");
  std::uint8_t* base = slot_base(slot);
  std::memcpy(base + sizeof(SlotHeader), data, size);
  SlotHeader header;
  header.size = size;
  header.checksum = fnv1a64_bytes(data, size);
  std::memcpy(base, &header, sizeof(header));
}

void ShmRing::read(std::size_t slot, std::vector<std::uint8_t>& out) const {
  if (slot >= slots_) throw std::out_of_range("ShmRing: slot out of range");
  const std::uint8_t* base = slot_base(slot);
  SlotHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (header.size == 0 || header.size > capacity_) {
    throw std::runtime_error("ShmRing: slot " + std::to_string(slot) + " has invalid size " +
                             std::to_string(header.size));
  }
  const std::uint8_t* payload = base + sizeof(SlotHeader);
  if (fnv1a64_bytes(payload, header.size) != header.checksum) {
    throw std::runtime_error("ShmRing: slot " + std::to_string(slot) + " checksum mismatch");
  }
  out.assign(payload, payload + header.size);
}

void ShmRing::release(std::size_t slot) noexcept {
  if (slot >= slots_) return;
  std::memset(slot_base(slot), 0, sizeof(SlotHeader));
}

}  // namespace dg::util
