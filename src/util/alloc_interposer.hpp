// Global operator-new call counter for allocation tests and benchmarks.
//
// A binary that wants to meter heap traffic includes this header in exactly
// ONE translation unit and invokes DG_DEFINE_ALLOC_INTERPOSER() at namespace
// scope there: the macro defines replacement global operator new/delete
// (replacements must be ordinary non-inline definitions, hence the macro
// instead of inline functions) that bump dg::util::alloc_count() on every
// allocation. Read the counter before/after a region to meter it.
//
// Test/bench-only: the production libraries never include this header; the
// allocation-free guarantees of sim::SimulationWorkspace are asserted by the
// dedicated dgsched_alloc_tests binary and measured by
// bench/replication_throughput.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace dg::util {

/// Number of global operator new / new[] calls since process start (only
/// meaningful in binaries that invoked DG_DEFINE_ALLOC_INTERPOSER()).
inline std::atomic<std::uint64_t>& alloc_count() noexcept {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

}  // namespace dg::util

// NOLINTBEGIN — replacement allocation functions, signatures fixed by the
// standard; sized/aligned variants all funnel through malloc/free so the
// count is exact regardless of which form the compiler selects.
#define DG_DEFINE_ALLOC_INTERPOSER()                                                    \
  static void* dg_counted_alloc(std::size_t size) {                                     \
    ::dg::util::alloc_count().fetch_add(1, std::memory_order_relaxed);                  \
    if (size == 0) size = 1;                                                            \
    if (void* ptr = std::malloc(size)) return ptr;                                      \
    throw std::bad_alloc();                                                             \
  }                                                                                     \
  static void* dg_counted_alloc(std::size_t size, std::align_val_t align) {             \
    ::dg::util::alloc_count().fetch_add(1, std::memory_order_relaxed);                  \
    const std::size_t alignment = static_cast<std::size_t>(align);                      \
    size = (size + alignment - 1) / alignment * alignment; /* C11 aligned_alloc rule */ \
    if (size == 0) size = alignment;                                                    \
    if (void* ptr = std::aligned_alloc(alignment, size)) return ptr;                    \
    throw std::bad_alloc();                                                             \
  }                                                                                     \
  void* operator new(std::size_t size) { return dg_counted_alloc(size); }               \
  void* operator new[](std::size_t size) { return dg_counted_alloc(size); }             \
  void* operator new(std::size_t size, std::align_val_t align) {                        \
    return dg_counted_alloc(size, align);                                               \
  }                                                                                     \
  void* operator new[](std::size_t size, std::align_val_t align) {                      \
    return dg_counted_alloc(size, align);                                               \
  }                                                                                     \
  void operator delete(void* ptr) noexcept { std::free(ptr); }                          \
  void operator delete[](void* ptr) noexcept { std::free(ptr); }                        \
  void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }             \
  void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }           \
  void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }        \
  void operator delete[](void* ptr, std::align_val_t) noexcept { std::free(ptr); }      \
  void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {             \
    std::free(ptr);                                                                     \
  }                                                                                     \
  void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {           \
    std::free(ptr);                                                                     \
  }                                                                                     \
  static_assert(true, "")
// NOLINTEND
