// Minimal byte-buffer writer/reader for same-machine binary artifacts.
//
// The multi-process campaign path moves three kinds of bytes around: world
// realizations in the mmap-shared pool, replication summaries over the
// coordinator/worker pipes, and journal records on disk. All three are
// written and read by sibling processes of one build on one machine, so the
// encoding is deliberately plain: fixed-width host-endian PODs, memcpy'd —
// a double round-trips bitwise, which is what the byte-identity contract of
// the sharded runner rests on. Nothing here is a wire format for foreign
// machines; the enclosing files/messages carry magic + version fields so a
// mismatched reader fails loudly instead of misparsing.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace dg::util {

/// FNV-1a 64-bit over a raw byte range — the checksum used by world-pool
/// files and journal records. Chainable via the `h` parameter.
[[nodiscard]] inline std::uint64_t fnv1a64_bytes(const void* data, std::size_t size,
                                                 std::uint64_t h = 0xcbf29ce484222325ULL) noexcept {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Appends the raw bytes of a trivially-copyable value to `out`.
template <typename T>
void put_pod(std::vector<std::uint8_t>& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>, "put_pod needs a trivially copyable type");
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

/// Appends `count` trivially-copyable elements (no length prefix — callers
/// write their own counts so formats stay self-describing at the right
/// granularity).
template <typename T>
void put_array(std::vector<std::uint8_t>& out, const T* data, std::size_t count) {
  static_assert(std::is_trivially_copyable_v<T>, "put_array needs a trivially copyable type");
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(data);
  out.insert(out.end(), bytes, bytes + count * sizeof(T));
}

/// Bounds-checked reader over a byte range. Every underrun throws
/// std::runtime_error — truncated pool files / journal tails surface as
/// exceptions the caller turns into "treat as absent".
class ByteReader {
 public:
  ByteReader(const std::uint8_t* begin, const std::uint8_t* end) : cur_(begin), end_(end) {}
  ByteReader(const void* data, std::size_t size)
      : ByteReader(static_cast<const std::uint8_t*>(data),
                   static_cast<const std::uint8_t*>(data) + size) {}

  template <typename T>
  [[nodiscard]] T pod() {
    static_assert(std::is_trivially_copyable_v<T>, "pod() needs a trivially copyable type");
    T value;
    copy(&value, sizeof(T));
    return value;
  }

  /// Copies `count` elements into `dest` (which must have room).
  template <typename T>
  void array(T* dest, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>, "array() needs a trivially copyable type");
    copy(dest, count * sizeof(T));
  }

  /// The current read position (e.g. to alias into an mmap'd region) —
  /// advanced past `bytes` without copying. Throws on underrun like pod().
  [[nodiscard]] const std::uint8_t* skip(std::size_t bytes) {
    if (remaining() < bytes) throw std::runtime_error("ByteReader: truncated input");
    const std::uint8_t* at = cur_;
    cur_ += bytes;
    return at;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - cur_);
  }
  [[nodiscard]] bool exhausted() const noexcept { return cur_ == end_; }

 private:
  void copy(void* dest, std::size_t bytes) {
    if (remaining() < bytes) throw std::runtime_error("ByteReader: truncated input");
    std::memcpy(dest, cur_, bytes);
    cur_ += bytes;
  }

  const std::uint8_t* cur_;
  const std::uint8_t* end_;
};

}  // namespace dg::util
