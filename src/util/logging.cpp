#include "util/logging.hpp"

#include <cstdio>

namespace dg::util {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogLevel parse_log_level(std::string_view text) noexcept {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) lower.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

Logger& Logger::global() {
  static Logger instance;
  return instance;
}

void Logger::log(LogLevel level, std::string_view message) {
  if (!enabled(level)) return;
  std::scoped_lock lock(mutex_);
  std::fprintf(stderr, "[dgsched %.*s] %.*s\n", static_cast<int>(to_string(level).size()),
               to_string(level).data(), static_cast<int>(message.size()), message.data());
}

}  // namespace dg::util
