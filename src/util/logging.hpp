// Minimal thread-safe logging.
//
// Simulations run in parallel worker threads; log lines must not interleave.
// The logger serializes writes with a mutex and tags each line with severity.
// Verbosity is a process-wide setting (set once at startup by the CLI layer).
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace dg::util {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

/// Parses "trace" | "debug" | "info" | "warn" | "error" | "off" (case-insensitive).
/// Returns kInfo for unknown strings.
[[nodiscard]] LogLevel parse_log_level(std::string_view text) noexcept;

class Logger {
 public:
  /// Process-wide logger used by the library. Writes to stderr.
  static Logger& global();

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= static_cast<int>(level_);
  }

  void log(LogLevel level, std::string_view message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mutex_;
};

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, Args&&... args) {
  Logger& logger = Logger::global();
  if (!logger.enabled(level)) return;
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  logger.log(level, oss.str());
}
}  // namespace detail

template <typename... Args>
void log_trace(Args&&... args) {
  detail::log_fmt(LogLevel::kTrace, std::forward<Args>(args)...);
}
template <typename... Args>
void log_debug(Args&&... args) {
  detail::log_fmt(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  detail::log_fmt(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  detail::log_fmt(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  detail::log_fmt(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace dg::util
