// Minimal INI parsing for experiment configuration files.
//
// Grammar: `[section]` headers, `key = value` pairs, `#`/`;` comments (full
// line or trailing), blank lines ignored, whitespace trimmed. Keys are unique
// per section (duplicates are an error, catching typos early). Line numbers
// are carried into every error message.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dg::util {

class IniFile {
 public:
  /// Parses the stream; throws std::runtime_error with a line number on
  /// malformed input.
  [[nodiscard]] static IniFile parse(std::istream& is);
  [[nodiscard]] static IniFile parse_string(std::string_view text);

  [[nodiscard]] bool has_section(std::string_view section) const;
  [[nodiscard]] std::vector<std::string> sections() const;
  [[nodiscard]] std::vector<std::string> keys(std::string_view section) const;

  [[nodiscard]] std::optional<std::string> get(std::string_view section,
                                               std::string_view key) const;
  /// Typed getters; throw std::runtime_error when present but unparsable.
  [[nodiscard]] std::optional<double> get_double(std::string_view section,
                                                 std::string_view key) const;
  [[nodiscard]] std::optional<std::int64_t> get_int(std::string_view section,
                                                    std::string_view key) const;
  [[nodiscard]] std::optional<bool> get_bool(std::string_view section,
                                             std::string_view key) const;

  /// Fallback-aware string getter.
  [[nodiscard]] std::string get_or(std::string_view section, std::string_view key,
                                   std::string_view fallback) const;

  void set(std::string section, std::string key, std::string value);

  /// Serializes back to INI text (sections sorted, keys sorted).
  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, std::map<std::string, std::string, std::less<>>, std::less<>>
      sections_;
};

/// Trims ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

}  // namespace dg::util
