#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace dg::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: header must be non-empty");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row width does not match header");
  }
  rows_.push_back(std::move(row));
}

void Table::render(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      for (std::size_t i = cells[c].size(); i < widths[c] + 1; ++i) os << ' ';
      os << '|';
    }
    os << '\n';
  };
  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string csv_escape(const std::string& field) {
  bool needs_quote = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace dg::util
