#include "util/arg_parser.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace dg::util {

ArgParser::ArgParser(std::string program_name, std::string description)
    : program_name_(std::move(program_name)), description_(std::move(description)) {}

void ArgParser::add_option(std::string name, std::string default_value, std::string help) {
  order_.push_back(name);
  options_[std::move(name)] = Option{std::move(default_value), std::move(help), false, {}};
}

void ArgParser::add_flag(std::string name, std::string help) {
  order_.push_back(name);
  options_[std::move(name)] = Option{"false", std::move(help), true, {}};
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string name;
    std::optional<std::string> inline_value;
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      inline_value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
    }
    auto it = options_.find(name);
    if (it == options_.end()) {
      std::fprintf(stderr, "%s: unknown option --%s\n%s", program_name_.c_str(), name.c_str(),
                   usage().c_str());
      return false;
    }
    Option& opt = it->second;
    if (opt.is_flag) {
      if (inline_value.has_value()) {
        opt.value = *inline_value;
      } else {
        opt.value = "true";
      }
    } else if (inline_value.has_value()) {
      opt.value = *inline_value;
    } else {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: option --%s requires a value\n%s", program_name_.c_str(),
                     name.c_str(), usage().c_str());
        return false;
      }
      opt.value = argv[++i];
    }
  }
  return true;
}

std::string ArgParser::get(std::string_view name) const {
  auto it = options_.find(name);
  if (it == options_.end()) {
    throw std::invalid_argument("ArgParser: undeclared option: " + std::string(name));
  }
  return it->second.value.value_or(it->second.default_value);
}

double ArgParser::get_double(std::string_view name) const { return std::stod(get(name)); }

std::int64_t ArgParser::get_int(std::string_view name) const { return std::stoll(get(name)); }

bool ArgParser::get_flag(std::string_view name) const {
  std::string v = get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string ArgParser::usage() const {
  std::ostringstream oss;
  oss << program_name_ << " — " << description_ << "\n\nOptions:\n";
  for (const std::string& name : order_) {
    const Option& opt = options_.at(name);
    oss << "  --" << name;
    if (!opt.is_flag) oss << " <value>";
    oss << "\n      " << opt.help;
    if (!opt.is_flag) oss << " (default: " << opt.default_value << ")";
    oss << "\n";
  }
  oss << "  --help\n      Show this message.\n";
  return oss.str();
}

}  // namespace dg::util
