// Fixed-slot shared-memory transfer ring for parent/child result transport.
//
// The sharded campaign coordinator forks its workers, so a MAP_SHARED |
// MAP_ANONYMOUS region created *before* fork() is visible to every child —
// including replacements forked later, since all forks happen after ring
// creation. Each worker gets its own ring of fixed-size payload slots; the
// coordinator hands a free slot index out with every assigned job, the worker
// writes the serialized `exp::ReplicationSummary` into that slot, and the
// completion message on the control socket carries only the slot index — the
// tens-of-KB sketch payload never crosses the pipe.
//
// Synchronization is by ownership hand-off, not atomics: a slot belongs to
// exactly one side at a time, and the visibility edge is the socket itself
// (the worker's write() of the completion message happens-after its stores
// into the slot; the coordinator's read() of that message happens-before its
// loads). A worker that dies mid-chunk simply leaves slots unread — the
// coordinator reclaims the indices and the next writer overwrites them.
//
// Reads follow grid::WorldPool's validate-then-copy discipline: the slot
// header carries the payload size and an FNV-1a checksum, and the consumer
// verifies both before trusting a byte. A garbled slot (a worker killed
// mid-memcpy by fault injection) throws instead of folding corrupt stats.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dg::util {

class ShmRing {
 public:
  /// Sentinel slot index meaning "no slot — payload travels inline on the
  /// control socket instead". Kept here so producer and consumer agree.
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// Maps `slots` slots of `payload_capacity` bytes each. Must be called
  /// before forking any process that should share the ring.
  ShmRing(std::size_t slots, std::size_t payload_capacity);
  ~ShmRing();
  ShmRing(const ShmRing&) = delete;
  ShmRing& operator=(const ShmRing&) = delete;

  [[nodiscard]] std::size_t slots() const noexcept { return slots_; }
  [[nodiscard]] std::size_t payload_capacity() const noexcept { return capacity_; }

  /// Producer side: stores `size` bytes plus the size/checksum header into
  /// `slot`. Throws std::length_error if the payload exceeds the slot
  /// capacity (callers check first and fall back to inline transport).
  void write(std::size_t slot, const std::uint8_t* data, std::size_t size);

  /// Consumer side: validates the header (size bound + checksum) and copies
  /// the payload into `out` (replacing its contents). Throws
  /// std::runtime_error on any mismatch — a torn or stale slot is an error,
  /// never silently folded.
  void read(std::size_t slot, std::vector<std::uint8_t>& out) const;

  /// Zeroes the slot header so a stale re-read fails validation loudly.
  void release(std::size_t slot) noexcept;

 private:
  struct SlotHeader {
    std::uint64_t size;
    std::uint64_t checksum;
  };

  [[nodiscard]] std::uint8_t* slot_base(std::size_t slot) const noexcept;

  std::size_t slots_;
  std::size_t capacity_;
  std::size_t stride_;
  std::uint8_t* base_ = nullptr;
};

}  // namespace dg::util
