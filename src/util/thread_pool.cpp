#include "util/thread_pool.hpp"

#include <algorithm>

namespace dg::util {

namespace {
thread_local std::size_t t_worker_index = ThreadPool::kNotAWorker;
}  // namespace

std::size_t ThreadPool::current_worker_index() noexcept { return t_worker_index; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  wakeup_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return jobs_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  t_worker_index = worker_index;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mutex_);
      wakeup_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stopping_ and queue drained
      job = std::move(jobs_.front());
      jobs_.pop();
      ++active_;
    }
    job();
    {
      std::scoped_lock lock(mutex_);
      --active_;
      if (jobs_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace dg::util
