#include "util/ini.hpp"

#include <sstream>
#include <stdexcept>

namespace dg::util {

std::string_view trim(std::string_view text) noexcept {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t' ||
                           text.front() == '\r')) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         (text.back() == ' ' || text.back() == '\t' || text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

IniFile IniFile::parse(std::istream& is) {
  IniFile ini;
  std::string line;
  std::string section;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    // Strip trailing comments (naive: no quoting in this format).
    if (auto pos = line.find_first_of("#;"); pos != std::string::npos) {
      line.erase(pos);
    }
    const std::string_view content = trim(line);
    if (content.empty()) continue;
    if (content.front() == '[') {
      if (content.back() != ']' || content.size() < 3) {
        throw std::runtime_error("ini: malformed section header at line " +
                                 std::to_string(line_number));
      }
      section = std::string(trim(content.substr(1, content.size() - 2)));
      ini.sections_[section];  // register even if empty
      continue;
    }
    const auto eq = content.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error("ini: expected 'key = value' at line " +
                               std::to_string(line_number));
    }
    const std::string key(trim(content.substr(0, eq)));
    const std::string value(trim(content.substr(eq + 1)));
    if (key.empty()) {
      throw std::runtime_error("ini: empty key at line " + std::to_string(line_number));
    }
    auto& sec = ini.sections_[section];
    if (!sec.emplace(key, value).second) {
      throw std::runtime_error("ini: duplicate key '" + key + "' at line " +
                               std::to_string(line_number));
    }
  }
  return ini;
}

IniFile IniFile::parse_string(std::string_view text) {
  std::istringstream iss{std::string(text)};
  return parse(iss);
}

bool IniFile::has_section(std::string_view section) const {
  return sections_.find(section) != sections_.end();
}

std::vector<std::string> IniFile::sections() const {
  std::vector<std::string> names;
  names.reserve(sections_.size());
  for (const auto& [name, keys] : sections_) names.push_back(name);
  return names;
}

std::vector<std::string> IniFile::keys(std::string_view section) const {
  std::vector<std::string> names;
  auto it = sections_.find(section);
  if (it == sections_.end()) return names;
  for (const auto& [key, value] : it->second) names.push_back(key);
  return names;
}

std::optional<std::string> IniFile::get(std::string_view section,
                                        std::string_view key) const {
  auto sec = sections_.find(section);
  if (sec == sections_.end()) return std::nullopt;
  auto it = sec->second.find(key);
  if (it == sec->second.end()) return std::nullopt;
  return it->second;
}

std::optional<double> IniFile::get_double(std::string_view section,
                                          std::string_view key) const {
  auto value = get(section, key);
  if (!value) return std::nullopt;
  try {
    std::size_t used = 0;
    const double parsed = std::stod(*value, &used);
    if (used != value->size()) throw std::invalid_argument("trailing");
    return parsed;
  } catch (const std::exception&) {
    throw std::runtime_error("ini: [" + std::string(section) + "] " + std::string(key) +
                             " = '" + *value + "' is not a number");
  }
}

std::optional<std::int64_t> IniFile::get_int(std::string_view section,
                                             std::string_view key) const {
  auto value = get(section, key);
  if (!value) return std::nullopt;
  try {
    std::size_t used = 0;
    const std::int64_t parsed = std::stoll(*value, &used);
    if (used != value->size()) throw std::invalid_argument("trailing");
    return parsed;
  } catch (const std::exception&) {
    throw std::runtime_error("ini: [" + std::string(section) + "] " + std::string(key) +
                             " = '" + *value + "' is not an integer");
  }
}

std::optional<bool> IniFile::get_bool(std::string_view section, std::string_view key) const {
  auto value = get(section, key);
  if (!value) return std::nullopt;
  if (*value == "true" || *value == "1" || *value == "yes" || *value == "on") return true;
  if (*value == "false" || *value == "0" || *value == "no" || *value == "off") return false;
  throw std::runtime_error("ini: [" + std::string(section) + "] " + std::string(key) + " = '" +
                           *value + "' is not a boolean");
}

std::string IniFile::get_or(std::string_view section, std::string_view key,
                            std::string_view fallback) const {
  auto value = get(section, key);
  return value ? *value : std::string(fallback);
}

void IniFile::set(std::string section, std::string key, std::string value) {
  sections_[std::move(section)][std::move(key)] = std::move(value);
}

std::string IniFile::to_string() const {
  std::ostringstream oss;
  for (const auto& [section, keys] : sections_) {
    if (!section.empty()) oss << '[' << section << "]\n";
    for (const auto& [key, value] : keys) oss << key << " = " << value << '\n';
    oss << '\n';
  }
  return oss.str();
}

}  // namespace dg::util
