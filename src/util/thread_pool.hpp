// Fixed-size thread pool for embarrassingly-parallel simulation replications.
//
// Each submitted job is a fully independent simulation run (own RNG streams,
// own event heap); the pool is only the fan-out mechanism. Futures carry
// results and exceptions back to the caller. Destruction joins all workers
// after draining the queue of already-submitted jobs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace dg::util {

/// Thread-safety: submit() and wait_idle() may be called concurrently from
/// any number of threads. Jobs themselves must not touch shared mutable
/// state without their own synchronization (dgsched's jobs are whole
/// simulation replications, which share nothing). The destructor drains
/// already-submitted jobs, then joins; do not submit from a job after the
/// destructor has started.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1; 0 means hardware concurrency).
  explicit ThreadPool(std::size_t num_threads = 0);
  /// Drains the queue of already-submitted jobs, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Returned by current_worker_index() outside any pool worker.
  static constexpr std::size_t kNotAWorker = ~std::size_t{0};

  /// Index of the calling pool worker in [0, size()), or kNotAWorker when
  /// the caller is not a pool thread. Jobs use it to pick up worker-affine
  /// state (e.g. one sim::SimulationWorkspace per worker) without locking.
  /// Indices are per-pool-position, not globally unique: two pools reuse the
  /// same indices, so worker-affine tables belong to one pool at a time.
  [[nodiscard]] static std::size_t current_worker_index() noexcept;

  /// Enqueues `fn(args...)`; the returned future yields its result.
  template <typename Fn, typename... Args>
  [[nodiscard]] auto submit(Fn&& fn, Args&&... args)
      -> std::future<std::invoke_result_t<Fn, Args...>> {
    using Result = std::invoke_result_t<Fn, Args...>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        [fn = std::forward<Fn>(fn),
         ... args = std::forward<Args>(args)]() mutable -> Result {
          return std::invoke(std::move(fn), std::move(args)...);
        });
    std::future<Result> result = task->get_future();
    {
      std::scoped_lock lock(mutex_);
      jobs_.emplace([task = std::move(task)] { (*task)(); });
    }
    wakeup_.notify_one();
    return result;
  }

  /// Blocks until every submitted job has finished executing. Jobs
  /// submitted while waiting extend the wait.
  void wait_idle();

 private:
  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable wakeup_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace dg::util
