// xoshiro256** 1.0 (Blackman & Vigna 2018): the library's core generator.
// Chosen over std::mt19937_64 for speed (simulations are RNG-heavy), small
// state, and a jump() function giving 2^128 guaranteed-disjoint subsequences.
// Satisfies std::uniform_random_bit_generator.
#pragma once

#include <array>
#include <cstdint>

#include "rng/splitmix64.hpp"

namespace dg::rng {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds via SplitMix64 expansion (the reference-recommended procedure);
  /// any 64-bit seed, including 0, yields a valid non-zero state.
  explicit constexpr Xoshiro256(std::uint64_t seed = 0xdeadbeefcafebabeULL) noexcept {
    SplitMix64 mixer(seed);
    for (auto& word : state_) word = mixer.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  /// Advances 2^128 steps; successive jumps partition the period into
  /// non-overlapping subsequences for parallel streams.
  constexpr void jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kJump = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                                    0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
    for (std::uint64_t word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if ((word & (1ULL << bit)) != 0) {
          for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
        }
        next();
      }
    }
    state_ = acc;
  }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  [[nodiscard]] constexpr const std::array<std::uint64_t, 4>& state() const noexcept {
    return state_;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

}  // namespace dg::rng
