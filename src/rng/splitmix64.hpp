// SplitMix64 (Steele, Lea, Flood 2014) — used only to expand seeds and derive
// independent sub-streams. Its full-period 64-bit state walk guarantees that
// distinct stream ids never produce overlapping xoshiro seeds.
#pragma once

#include <cstdint>

namespace dg::rng {

class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

 private:
  std::uint64_t state_;
};

/// Stateless mix of two 64-bit values into one; used to derive the seed of a
/// named sub-stream from a parent seed (e.g. per-replication, per-machine).
[[nodiscard]] constexpr std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream_id) noexcept {
  SplitMix64 mixer(seed ^ (0x6a09e667f3bcc909ULL + stream_id * 0x9e3779b97f4a7c15ULL));
  // Two rounds decorrelate adjacent stream ids.
  mixer.next();
  return mixer.next();
}

}  // namespace dg::rng
