// RandomStream — a named, independently-seeded random source.
//
// Every stochastic element of a simulation (each machine's failure process,
// task-size sampling, arrivals, ...) owns its own RandomStream derived from
// the replication seed and a stable stream id. This gives (a) bitwise
// reproducibility for a given (seed, config), and (b) common-random-numbers
// variance reduction across policies: changing the scheduler does not perturb
// the sampled failure times or task sizes.
//
// Distribution sampling is implemented here (inverse-CDF / polar methods)
// instead of via <random> distributions, whose output is implementation-
// defined and would break cross-compiler determinism.
#pragma once

#include <cstdint>
#include <string_view>

#include "rng/splitmix64.hpp"
#include "rng/xoshiro256.hpp"

namespace dg::rng {

class RandomStream {
 public:
  explicit RandomStream(std::uint64_t seed) noexcept : engine_(seed) {}

  /// Derives an independent child stream; `stream_id` must be stable across
  /// runs (e.g. machine index) for reproducibility.
  [[nodiscard]] static RandomStream derive(std::uint64_t parent_seed,
                                           std::uint64_t stream_id) noexcept {
    return RandomStream(mix_seed(parent_seed, stream_id));
  }

  /// Derives a child keyed by a name (FNV-1a hashed) and an index.
  [[nodiscard]] static RandomStream derive(std::uint64_t parent_seed, std::string_view name,
                                           std::uint64_t index = 0) noexcept;

  /// Raw 64 random bits.
  std::uint64_t bits() noexcept { return engine_.next(); }

  /// Uniform in [0, 1) with 53-bit resolution.
  double uniform01() noexcept {
    return static_cast<double>(engine_.next() >> 11) * 0x1.0p-53;
  }

  /// Uniform in (0, 1] — safe to pass to log().
  double uniform01_open_left() noexcept { return 1.0 - uniform01(); }

  /// Uniform real in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive (unbiased via rejection).
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Exponential with the given mean (mean = 1/rate). Requires mean > 0.
  double exponential_mean(double mean) noexcept;

  /// Standard normal via Marsaglia's polar method.
  double standard_normal() noexcept;

  /// Normal(mu, sigma).
  double normal(double mu, double sigma) noexcept;

  /// Normal(mu, sigma) resampled until the value falls in [lo, hi].
  /// Used for repair times: Normal(1800, 300) truncated positive.
  double truncated_normal(double mu, double sigma, double lo, double hi) noexcept;

  /// Weibull with the given shape k and scale lambda (inverse CDF).
  double weibull(double shape, double scale) noexcept;

  /// Bernoulli(p).
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  [[nodiscard]] Xoshiro256& engine() noexcept { return engine_; }

 private:
  Xoshiro256 engine_;
  // Cached second variate from the polar method.
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// FNV-1a 64-bit hash of a string; used to key named streams.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text) noexcept;

}  // namespace dg::rng
