#include "rng/distributions.hpp"

#include <sstream>

namespace dg::rng {

namespace {
struct Describer {
  std::string operator()(const UniformDist& d) const {
    std::ostringstream oss;
    oss << "Uniform[" << d.lo << ", " << d.hi << ")";
    return oss.str();
  }
  std::string operator()(const ExponentialDist& d) const {
    std::ostringstream oss;
    oss << "Exponential(mean=" << d.mean_value << ")";
    return oss.str();
  }
  std::string operator()(const TruncatedNormalDist& d) const {
    std::ostringstream oss;
    oss << "TruncNormal(mu=" << d.mu << ", sigma=" << d.sigma << ", [" << d.lo << ", " << d.hi
        << "])";
    return oss.str();
  }
  std::string operator()(const WeibullDist& d) const {
    std::ostringstream oss;
    oss << "Weibull(shape=" << d.shape << ", scale=" << d.scale << ")";
    return oss.str();
  }
  std::string operator()(const ConstantDist& d) const {
    std::ostringstream oss;
    oss << "Constant(" << d.value << ")";
    return oss.str();
  }
};
}  // namespace

std::string Distribution::describe() const { return std::visit(Describer{}, dist_); }

}  // namespace dg::rng
