// Value-semantic distribution descriptors.
//
// Model parameters (task sizes, transfer times, failure/repair processes) are
// carried around as small descriptor objects that know their analytical mean
// and can sample from a RandomStream. Keeping them as data (rather than bound
// closures) makes configurations printable, comparable and testable.
#pragma once

#include <cmath>
#include <string>
#include <variant>

#include "rng/random_stream.hpp"

namespace dg::rng {

struct UniformDist {
  double lo = 0.0;
  double hi = 1.0;
  [[nodiscard]] double mean() const noexcept { return 0.5 * (lo + hi); }
  [[nodiscard]] double sample(RandomStream& stream) const noexcept {
    return stream.uniform(lo, hi);
  }
  [[nodiscard]] bool operator==(const UniformDist&) const = default;
};

struct ExponentialDist {
  double mean_value = 1.0;
  [[nodiscard]] double mean() const noexcept { return mean_value; }
  [[nodiscard]] double sample(RandomStream& stream) const noexcept {
    return stream.exponential_mean(mean_value);
  }
  [[nodiscard]] bool operator==(const ExponentialDist&) const = default;
};

struct TruncatedNormalDist {
  double mu = 0.0;
  double sigma = 1.0;
  double lo = 0.0;
  double hi = 1e300;
  /// Approximate (untruncated) mean; accurate for mild truncation.
  [[nodiscard]] double mean() const noexcept { return mu; }
  [[nodiscard]] double sample(RandomStream& stream) const noexcept {
    return stream.truncated_normal(mu, sigma, lo, hi);
  }
  [[nodiscard]] bool operator==(const TruncatedNormalDist&) const = default;
};

struct WeibullDist {
  double shape = 1.0;
  double scale = 1.0;
  [[nodiscard]] double mean() const noexcept {
    return scale * std::tgamma(1.0 + 1.0 / shape);
  }
  [[nodiscard]] double sample(RandomStream& stream) const noexcept {
    return stream.weibull(shape, scale);
  }
  /// Scale that yields the requested mean for this shape.
  [[nodiscard]] static double scale_for_mean(double mean, double shape) noexcept {
    return mean / std::tgamma(1.0 + 1.0 / shape);
  }
  [[nodiscard]] bool operator==(const WeibullDist&) const = default;
};

struct ConstantDist {
  double value = 0.0;
  [[nodiscard]] double mean() const noexcept { return value; }
  [[nodiscard]] double sample(RandomStream&) const noexcept { return value; }
  [[nodiscard]] bool operator==(const ConstantDist&) const = default;
};

/// Closed set of distributions usable in model configuration.
class Distribution {
 public:
  Distribution() : dist_(ConstantDist{0.0}) {}
  Distribution(UniformDist d) : dist_(d) {}                  // NOLINT(google-explicit-constructor)
  Distribution(ExponentialDist d) : dist_(d) {}              // NOLINT(google-explicit-constructor)
  Distribution(TruncatedNormalDist d) : dist_(d) {}          // NOLINT(google-explicit-constructor)
  Distribution(WeibullDist d) : dist_(d) {}                  // NOLINT(google-explicit-constructor)
  Distribution(ConstantDist d) : dist_(d) {}                 // NOLINT(google-explicit-constructor)

  [[nodiscard]] double mean() const noexcept {
    return std::visit([](const auto& d) { return d.mean(); }, dist_);
  }
  [[nodiscard]] double sample(RandomStream& stream) const noexcept {
    return std::visit([&stream](const auto& d) { return d.sample(stream); }, dist_);
  }
  [[nodiscard]] std::string describe() const;

  /// Stable index of the alternative held (for hashing model signatures).
  [[nodiscard]] std::size_t type_index() const noexcept { return dist_.index(); }
  /// Visits the underlying alternative (for parameter-level hashing).
  template <typename Visitor>
  decltype(auto) visit(Visitor&& visitor) const {
    return std::visit(std::forward<Visitor>(visitor), dist_);
  }

  /// Parameter-exact equality: same alternative, bitwise-equal fields.
  [[nodiscard]] bool operator==(const Distribution&) const = default;

 private:
  std::variant<UniformDist, ExponentialDist, TruncatedNormalDist, WeibullDist, ConstantDist> dist_;
};

}  // namespace dg::rng
