#include "rng/random_stream.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace dg::rng {

std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : text) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

RandomStream RandomStream::derive(std::uint64_t parent_seed, std::string_view name,
                                  std::uint64_t index) noexcept {
  return RandomStream(mix_seed(mix_seed(parent_seed, fnv1a64(name)), index));
}

double RandomStream::uniform(double lo, double hi) noexcept {
  DG_ASSERT(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::uint64_t RandomStream::uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept {
  DG_ASSERT(lo <= hi);
  const std::uint64_t range = hi - lo;  // inclusive width - 1
  if (range == ~0ULL) return bits();
  const std::uint64_t span = range + 1;
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t limit = (~0ULL) - ((~0ULL) % span + 1) % span;
  std::uint64_t draw = bits();
  while (draw > limit) draw = bits();
  return lo + draw % span;
}

double RandomStream::exponential_mean(double mean) noexcept {
  DG_ASSERT(mean > 0.0);
  return -mean * std::log(uniform01_open_left());
}

double RandomStream::standard_normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double RandomStream::normal(double mu, double sigma) noexcept {
  DG_ASSERT(sigma >= 0.0);
  return mu + sigma * standard_normal();
}

double RandomStream::truncated_normal(double mu, double sigma, double lo, double hi) noexcept {
  DG_ASSERT(lo < hi);
  // Rejection sampling is exact and fast for the mild truncations we use
  // (repair times cut at 6-sigma); cap iterations to stay total.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const double x = normal(mu, sigma);
    if (x >= lo && x <= hi) return x;
  }
  return std::clamp(mu, lo, hi);
}

double RandomStream::weibull(double shape, double scale) noexcept {
  DG_ASSERT(shape > 0.0);
  DG_ASSERT(scale > 0.0);
  return scale * std::pow(-std::log(uniform01_open_left()), 1.0 / shape);
}

}  // namespace dg::rng
