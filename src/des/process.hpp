// Coroutine processes for the DES kernel (C++20).
//
// Event-callback style (Simulator::schedule_*) is what dgsched's engine uses
// internally; for sequential model logic — a maintenance cycle, a closed-loop
// user, a protocol handshake — a process coroutine reads far more naturally:
//
//   des::Process user(des::Simulator& sim, Grid& grid) {
//     for (int i = 0; i < 10; ++i) {
//       submit_job(grid);
//       co_await des::delay(sim, think_time());
//     }
//   }
//
// Processes are *detached*: calling the coroutine starts it immediately; it
// runs until its first co_await, then resumes from simulator events until it
// finishes, at which point its frame self-destructs. There is no handle to
// cancel a running process — model state should make the process return when
// its work is obsolete (checked via guards after each await). This keeps the
// facility allocation-minimal and avoids dangling-handle classes of bugs.
#pragma once

#include <coroutine>
#include <exception>
#include <vector>

#include "des/simulator.hpp"

namespace dg::des {

/// Return type for detached simulation processes.
struct Process {
  struct promise_type {
    Process get_return_object() noexcept { return {}; }
    /// Run eagerly until the first co_await.
    std::suspend_never initial_suspend() noexcept { return {}; }
    /// Self-destruct on completion (detached).
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    /// Model code must not leak exceptions into the event loop.
    void unhandled_exception() noexcept { std::terminate(); }
  };
};

/// Awaitable that suspends the process for `dt` simulated seconds.
class DelayAwaiter {
 public:
  DelayAwaiter(Simulator& sim, SimTime dt) noexcept : sim_(sim), dt_(dt) {}

  /// Always suspend — even dt == 0 goes through the event queue so that
  /// same-time ordering stays deterministic (FIFO with other events).
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle) {
    sim_.schedule_after(dt_, [handle] { handle.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Simulator& sim_;
  SimTime dt_;
};

/// Awaitable that suspends the process until absolute time `when`
/// (>= now; asserts otherwise, same contract as schedule_at).
class UntilAwaiter {
 public:
  UntilAwaiter(Simulator& sim, SimTime when) noexcept : sim_(sim), when_(when) {}

  [[nodiscard]] bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> handle) {
    sim_.schedule_at(when_, [handle] { handle.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Simulator& sim_;
  SimTime when_;
};

/// co_await des::delay(sim, 10.0): advance this process 10 simulated seconds.
[[nodiscard]] inline DelayAwaiter delay(Simulator& sim, SimTime dt) noexcept {
  return DelayAwaiter(sim, dt);
}

/// co_await des::until(sim, t): resume this process at absolute time t.
[[nodiscard]] inline UntilAwaiter until(Simulator& sim, SimTime when) noexcept {
  return UntilAwaiter(sim, when);
}

/// One-shot signal other code can trigger; any number of processes can
/// co_await it. Waiters resume through the event queue at the trigger time
/// (deterministic FIFO order). Re-arming after a trigger is allowed.
class Signal {
 public:
  explicit Signal(Simulator& sim) noexcept : sim_(sim) {}

  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  /// Wakes all current waiters (at the current simulation time) and marks
  /// the signal triggered: subsequent awaits resume immediately (via the
  /// queue) until rearm().
  void trigger() {
    triggered_ = true;
    for (std::coroutine_handle<> handle : waiters_) {
      sim_.schedule_after(0.0, [handle] { handle.resume(); });
    }
    waiters_.clear();
  }

  /// Clears the triggered state so future awaits block again.
  void rearm() noexcept { triggered_ = false; }

  [[nodiscard]] bool triggered() const noexcept { return triggered_; }
  [[nodiscard]] std::size_t waiting() const noexcept { return waiters_.size(); }

  // --- awaitable protocol ---
  [[nodiscard]] bool await_ready() const noexcept { return triggered_; }
  void await_suspend(std::coroutine_handle<> handle) { waiters_.push_back(handle); }
  void await_resume() const noexcept {}

 private:
  Simulator& sim_;
  std::vector<std::coroutine_handle<>> waiters_;
  bool triggered_ = false;
};

}  // namespace dg::des
