#include "des/queue_policy.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace dg::des {

void CalendarQueue::clear() noexcept {
  near_.clear();
  overflow_.clear();
  for (std::vector<QueueEntry>& bucket : buckets_) bucket.clear();
  cursor_ = 0;
  bucket_count_ = 0;
  current_bucket_ = 0;
  ladder_active_ = false;
  near_limit_ = std::numeric_limits<double>::infinity();
  base_ = 0.0;
  width_ = 1.0;
  size_ = 0;
}

void CalendarQueue::spill_near() {
  // Compact the popped prefix first so the split below is a plain suffix move.
  near_.erase(near_.begin(), near_.begin() + static_cast<std::ptrdiff_t>(cursor_));
  cursor_ = 0;
  DG_ASSERT(near_.size() > kNearKeep);
  // Every spilled entry is >= the new limit (near_ is sorted), every
  // pre-existing overflow entry is >= the old, larger limit, and near-side
  // entries tying the new limit carry smaller sequence numbers than the
  // spilled ones — so overflow remains uniformly "no earlier than near_".
  near_limit_ = near_[kNearKeep].time;
  overflow_.insert(overflow_.end(), near_.begin() + static_cast<std::ptrdiff_t>(kNearKeep),
                   near_.end());
  near_.resize(kNearKeep);
}

void CalendarQueue::refill() {
  near_.clear();
  cursor_ = 0;
  for (;;) {
    while (ladder_active_) {
      if (current_bucket_ >= bucket_count_) {
        ladder_active_ = false;
        near_limit_ = std::numeric_limits<double>::infinity();
        break;
      }
      if (!buckets_[current_bucket_].empty()) {
        // Adopt the rung wholesale; pushes targeting this rung from now on
        // merge into near_ directly (see push()), so the swapped-out bucket
        // stays empty and the next refill advances past it.
        near_.swap(buckets_[current_bucket_]);
        std::sort(near_.begin(), near_.end(), queue_earlier);
        return;
      }
      ++current_bucket_;
    }
    if (overflow_.empty()) {
      DG_ASSERT_MSG(size_ == 0, "calendar queue lost entries");
      return;
    }
    build_ladder();
  }
}

void CalendarQueue::build_ladder() {
  double lo = overflow_.front().time;
  double hi = lo;
  for (const QueueEntry& entry : overflow_) {
    lo = std::min(lo, entry.time);
    hi = std::max(hi, entry.time);
  }
  const std::size_t want = overflow_.size() / kBucketChunk;
  std::size_t count = 1;
  while (count < want && count < kMaxBuckets) count <<= 1;
  bucket_count_ = count;
  if (buckets_.size() < bucket_count_) buckets_.resize(bucket_count_);
  base_ = lo;
  const double span = hi - lo;
  width_ = span > 0.0 ? span / static_cast<double>(bucket_count_) : 1.0;
  for (const QueueEntry& entry : overflow_) {
    const double d = (entry.time - base_) / width_;
    const std::size_t idx = d >= static_cast<double>(bucket_count_)
                                ? bucket_count_ - 1
                                : static_cast<std::size_t>(d);
    buckets_[idx].push_back(entry);
  }
  overflow_.clear();
  current_bucket_ = 0;
  ladder_active_ = true;
}

std::string_view to_string(QueueBackend backend) noexcept {
  switch (backend) {
    case QueueBackend::kHeap4:
      return "heap4";
    case QueueBackend::kCalendar:
      return "calendar";
  }
  return "heap4";
}

std::optional<QueueBackend> parse_queue_backend(std::string_view text) noexcept {
  if (text == "heap4") return QueueBackend::kHeap4;
  if (text == "calendar") return QueueBackend::kCalendar;
  return std::nullopt;
}

QueueBackend default_queue_backend() {
  if (const char* text = std::getenv("DGSCHED_QUEUE"); text != nullptr && *text != '\0') {
    const std::optional<QueueBackend> parsed = parse_queue_backend(text);
    if (!parsed.has_value()) {
      throw std::invalid_argument(std::string("DGSCHED_QUEUE: expected \"heap4\" or \"calendar\", got \"") +
                                  text + "\"");
    }
    return *parsed;
  }
#if defined(DGSCHED_DEFAULT_QUEUE_CALENDAR)
  return QueueBackend::kCalendar;
#else
  return QueueBackend::kHeap4;
#endif
}

}  // namespace dg::des
