// Sequential discrete-event simulation kernel.
//
// The pending-event set lives behind the EventQueuePolicy seam
// (des/queue_policy.hpp): a cache-friendly 4-ary implicit heap by default,
// or a calendar/ladder queue tuned for near-future-heavy event mixes —
// selected per Simulator at construction (DGSCHED_QUEUE CMake/env knob) or
// via set_queue_backend(). Entries are 24-byte PODs ordered by
// (time, sequence) — ties break in scheduling order so runs are bitwise
// deterministic on every backend — referencing recycled slots in a slab
// arena (des/event.hpp), so the steady-state hot path — schedule, fire,
// cancel — performs no heap allocation. The kernel is deliberately
// single-threaded; parallelism in dgsched lives one level up, across
// independent replications (see exp::ExperimentRunner).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "des/event.hpp"
#include "des/queue_policy.hpp"

namespace dg::des {

/// Deterministic single-threaded event loop.
///
/// Invariants: events fire in ascending (time, sequence) order; now() never
/// goes backwards; an action may schedule/cancel freely, including at the
/// current time (it runs after all already-queued same-time events). These
/// hold identically on every queue backend — switching backends never
/// changes a run's event sequence, only the cost of maintaining it.
/// Thread-safety: none — one Simulator per thread (replications each own a
/// private Simulator; see util::ThreadPool).
class Simulator {
 public:
  explicit Simulator(QueueBackend backend = default_queue_backend())
      : arena_(std::make_shared<detail::EventArena>()), backend_(backend) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time. Starts at 0; advances only inside step(),
  /// run(), and run_until().
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `time`. Returns a handle that can
  /// cancel the event while pending.
  /// Preconditions: `time` is finite and >= now(); `action` is non-empty.
  EventHandle schedule_at(SimTime time, std::function<void()> action);

  /// Schedules `action` after `delay` (>= 0) from now.
  EventHandle schedule_after(SimTime delay, std::function<void()> action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Executes the next pending event. Returns false when no live event
  /// remains or the simulation was stopped.
  bool step();

  /// Runs until the event queue drains or stop() is called.
  void run();

  /// Runs all events with time <= horizon (>= now()), then advances the
  /// clock to horizon (if it is past the last executed event).
  void run_until(SimTime horizon);

  /// Stops the run/run_until loop after the current event returns.
  void stop() noexcept { stopped_ = true; }
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }
  /// Re-arms a stopped simulator so run()/run_until() can continue.
  void clear_stop() noexcept { stopped_ = false; }

  /// The queue backend this simulator drives.
  [[nodiscard]] QueueBackend queue_backend() const noexcept { return backend_; }
  /// Switches the queue backend. Only valid while the queue is empty — on a
  /// fresh simulator or right after reset() (sim::Simulation applies a
  /// per-config backend override there).
  void set_queue_backend(QueueBackend backend);

  /// Number of events executed so far (cancelled events are not counted).
  [[nodiscard]] std::uint64_t executed_events() const noexcept {
    return arena_->stats().events_fired;
  }
  /// Number of events ever scheduled.
  [[nodiscard]] std::uint64_t scheduled_events() const noexcept { return next_sequence_; }
  /// Exact number of live pending events (cancelled events leave a stale
  /// queue entry but are excluded from this count).
  [[nodiscard]] std::size_t pending_events() const noexcept { return arena_->live(); }
  [[nodiscard]] bool empty() const noexcept { return arena_->live() == 0; }

  /// Kernel counters for this simulator (see KernelStats). Values are
  /// cumulative since construction or the last reset().
  [[nodiscard]] const KernelStats& stats() const noexcept { return arena_->stats(); }

  /// Returns the simulator to t = 0 with an empty queue while retaining the
  /// arena slabs and queue capacity — the reuse hook sim::SimulationWorkspace
  /// is built on. Every outstanding EventHandle turns stale (pending() ==
  /// false, cancel() == false); the next run schedules into recycled slots
  /// and sequence numbers restart at 0, so a (config, seed)-identical run
  /// after reset() is bit-identical to one on a fresh Simulator.
  void reset() noexcept {
    arena_->reset();
    heap4_.clear();
    calendar_.clear();
    now_ = 0.0;
    next_sequence_ = 0;
    stopped_ = false;
  }

 private:
  // Backend dispatch: a predictable two-way branch per queue operation, kept
  // inline so the run loop pays no indirect call. Both backends are members
  // (the inactive one stays empty) so the equivalence suite can flip between
  // them on one simulator across reset() boundaries.
  void queue_push(const QueueEntry& entry) {
    if (backend_ == QueueBackend::kCalendar) {
      calendar_.push(entry);
    } else {
      heap4_.push(entry);
    }
  }
  [[nodiscard]] const QueueEntry& queue_top() {
    if (backend_ == QueueBackend::kCalendar) return calendar_.top();
    return heap4_.top();
  }
  void queue_pop() {
    if (backend_ == QueueBackend::kCalendar) {
      calendar_.pop();
    } else {
      heap4_.pop();
    }
  }
  /// Physical entry count (stale entries included — heap_peak is defined
  /// over this).
  [[nodiscard]] std::size_t queue_size() const noexcept {
    return backend_ == QueueBackend::kCalendar ? calendar_.size() : heap4_.size();
  }

  /// Drops stale entries from the front; returns false when the queue empties.
  bool queue_skip_stale();

  std::shared_ptr<detail::EventArena> arena_;
  FourAryHeapQueue heap4_;
  CalendarQueue calendar_;
  QueueBackend backend_;
  SimTime now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  bool stopped_ = false;
};

}  // namespace dg::des
