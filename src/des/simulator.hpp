// Sequential discrete-event simulation kernel.
//
// A binary heap of (time, sequence) ordered events; ties break in scheduling
// order so runs are bitwise deterministic. The kernel is deliberately
// single-threaded — parallelism in dgsched lives one level up, across
// independent replications (see exp::ExperimentRunner).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "des/event.hpp"

namespace dg::des {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `time` (>= now). Returns a handle
  /// that can cancel the event while pending.
  EventHandle schedule_at(SimTime time, std::function<void()> action);

  /// Schedules `action` after `delay` (>= 0) from now.
  EventHandle schedule_after(SimTime delay, std::function<void()> action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Executes the next pending event. Returns false when the queue is empty
  /// or the simulation was stopped.
  bool step();

  /// Runs until the event queue drains or stop() is called.
  void run();

  /// Runs all events with time <= horizon, then advances the clock to
  /// horizon (if it is past the last executed event).
  void run_until(SimTime horizon);

  /// Stops the run/run_until loop after the current event returns.
  void stop() noexcept { stopped_ = true; }
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }
  /// Re-arms a stopped simulator so run()/run_until() can continue.
  void clear_stop() noexcept { stopped_ = false; }

  /// Number of events executed so far (cancelled events are not counted).
  [[nodiscard]] std::uint64_t executed_events() const noexcept { return executed_; }
  /// Number of events ever scheduled.
  [[nodiscard]] std::uint64_t scheduled_events() const noexcept { return next_sequence_; }
  /// Records still in the queue. Cancelled-but-unpopped events are included
  /// (lazy deletion), so this is an upper bound on live pending events.
  [[nodiscard]] std::size_t pending_events() const noexcept { return pending_; }
  [[nodiscard]] bool empty() const noexcept { return pending_ == 0; }

 private:
  using Record = detail::EventRecord;
  struct Later {
    bool operator()(const std::shared_ptr<Record>& a, const std::shared_ptr<Record>& b) const noexcept {
      if (a->time != b->time) return a->time > b->time;
      return a->sequence > b->sequence;
    }
  };

  /// Pops the next non-cancelled record, or nullptr if none.
  std::shared_ptr<Record> pop_next();

  std::priority_queue<std::shared_ptr<Record>, std::vector<std::shared_ptr<Record>>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t pending_ = 0;
  bool stopped_ = false;
};

}  // namespace dg::des
