// Sequential discrete-event simulation kernel.
//
// A cache-friendly 4-ary implicit heap of (time, sequence) ordered entries;
// ties break in scheduling order so runs are bitwise deterministic. Heap
// entries are 24-byte PODs referencing recycled slots in a slab arena
// (des/event.hpp), so the steady-state hot path — schedule, fire, cancel —
// performs no heap allocation. The kernel is deliberately single-threaded;
// parallelism in dgsched lives one level up, across independent replications
// (see exp::ExperimentRunner).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "des/event.hpp"

namespace dg::des {

/// Deterministic single-threaded event loop.
///
/// Invariants: events fire in ascending (time, sequence) order; now() never
/// goes backwards; an action may schedule/cancel freely, including at the
/// current time (it runs after all already-queued same-time events).
/// Thread-safety: none — one Simulator per thread (replications each own a
/// private Simulator; see util::ThreadPool).
class Simulator {
 public:
  Simulator() : arena_(std::make_shared<detail::EventArena>()) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time. Starts at 0; advances only inside step(),
  /// run(), and run_until().
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `time`. Returns a handle that can
  /// cancel the event while pending.
  /// Preconditions: `time` is finite and >= now(); `action` is non-empty.
  EventHandle schedule_at(SimTime time, std::function<void()> action);

  /// Schedules `action` after `delay` (>= 0) from now.
  EventHandle schedule_after(SimTime delay, std::function<void()> action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Executes the next pending event. Returns false when no live event
  /// remains or the simulation was stopped.
  bool step();

  /// Runs until the event queue drains or stop() is called.
  void run();

  /// Runs all events with time <= horizon (>= now()), then advances the
  /// clock to horizon (if it is past the last executed event).
  void run_until(SimTime horizon);

  /// Stops the run/run_until loop after the current event returns.
  void stop() noexcept { stopped_ = true; }
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }
  /// Re-arms a stopped simulator so run()/run_until() can continue.
  void clear_stop() noexcept { stopped_ = false; }

  /// Number of events executed so far (cancelled events are not counted).
  [[nodiscard]] std::uint64_t executed_events() const noexcept {
    return arena_->stats().events_fired;
  }
  /// Number of events ever scheduled.
  [[nodiscard]] std::uint64_t scheduled_events() const noexcept { return next_sequence_; }
  /// Exact number of live pending events (cancelled events leave a stale
  /// heap entry but are excluded from this count).
  [[nodiscard]] std::size_t pending_events() const noexcept { return arena_->live(); }
  [[nodiscard]] bool empty() const noexcept { return arena_->live() == 0; }

  /// Kernel counters for this simulator (see KernelStats). Values are
  /// cumulative since construction or the last reset().
  [[nodiscard]] const KernelStats& stats() const noexcept { return arena_->stats(); }

  /// Returns the simulator to t = 0 with an empty queue while retaining the
  /// arena slabs and heap capacity — the reuse hook sim::SimulationWorkspace
  /// is built on. Every outstanding EventHandle turns stale (pending() ==
  /// false, cancel() == false); the next run schedules into recycled slots
  /// and sequence numbers restart at 0, so a (config, seed)-identical run
  /// after reset() is bit-identical to one on a fresh Simulator.
  void reset() noexcept {
    arena_->reset();
    heap_.clear();
    now_ = 0.0;
    next_sequence_ = 0;
    stopped_ = false;
  }

 private:
  /// One priority-queue entry. Stale entries (slot generation moved on) are
  /// skipped when they surface at the root — cancellation never touches the
  /// heap structure.
  struct HeapEntry {
    SimTime time;
    std::uint64_t sequence;  // deterministic FIFO tie-break at equal times
    std::uint32_t slot;
    std::uint32_t generation;
  };
  static constexpr std::size_t kArity = 4;

  [[nodiscard]] static bool earlier(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.sequence < b.sequence;
  }

  void heap_push(const HeapEntry& entry);
  void heap_pop_root();
  /// Drops stale entries from the root; returns false when the heap empties.
  bool heap_skip_stale();

  std::shared_ptr<detail::EventArena> arena_;
  std::vector<HeapEntry> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  bool stopped_ = false;
};

}  // namespace dg::des
