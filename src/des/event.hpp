// Event records and cancellable handles for the DES kernel.
//
// Events are heap-allocated records shared between the simulator's priority
// queue and the EventHandles held by model code (e.g. a replica's pending
// completion event, cancelled when its machine fails). Cancellation is lazy:
// the record is flagged and skipped when popped, which keeps cancel() O(1).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

namespace dg::des {

/// Simulation time in seconds since simulation start.
using SimTime = double;

namespace detail {
struct EventRecord {
  SimTime time = 0.0;
  std::uint64_t sequence = 0;  // deterministic FIFO tie-break at equal times
  std::function<void()> action;
  bool cancelled = false;
};
}  // namespace detail

class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it is still pending. Returns true if this call
  /// performed the cancellation (false if already run, cancelled, or empty).
  bool cancel() noexcept {
    auto record = record_.lock();
    if (!record || record->cancelled) return false;
    record->cancelled = true;
    record->action = nullptr;  // release captures eagerly
    return true;
  }

  /// True while the event is scheduled and not cancelled or executed.
  [[nodiscard]] bool pending() const noexcept {
    auto record = record_.lock();
    return record && !record->cancelled;
  }

  /// Scheduled firing time; only meaningful while pending().
  [[nodiscard]] SimTime time() const noexcept {
    auto record = record_.lock();
    return record ? record->time : 0.0;
  }

 private:
  friend class Simulator;
  explicit EventHandle(std::weak_ptr<detail::EventRecord> record) noexcept
      : record_(std::move(record)) {}

  std::weak_ptr<detail::EventRecord> record_;
};

}  // namespace dg::des
