// Event storage and cancellable handles for the DES kernel.
//
// Events live in a slab arena (detail::EventArena): a grow-only pool of
// recycled EventSlot records addressed by dense 32-bit index. Scheduling an
// event acquires a slot from the free list (no heap allocation once the
// arena has warmed up to the run's peak); firing or cancelling retires the
// slot back to the free list and bumps its generation counter, which
// invalidates every outstanding EventHandle in O(1) — no tombstone scans,
// no per-event shared_ptr control blocks.
//
// Handles are (slot, generation) pairs plus a weak reference to the arena,
// so they stay safe (and report not-pending) after the simulator that issued
// them is destroyed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/assert.hpp"

namespace dg::des {

/// Simulation time in seconds since simulation start.
using SimTime = double;

/// Kernel counters for one Simulator instance. Cheap enough to maintain
/// unconditionally; exposed via Simulator::stats() and threaded into
/// sim::SimulationResult so perf harnesses and observers can read them.
struct KernelStats {
  std::uint64_t events_scheduled = 0;  ///< schedule_at/schedule_after calls.
  std::uint64_t events_fired = 0;      ///< Events whose action was executed.
  std::uint64_t events_cancelled = 0;  ///< Successful EventHandle::cancel calls.
  std::uint64_t heap_peak = 0;         ///< Max simultaneous entries in the event heap.
  std::uint64_t arena_slabs = 0;       ///< Slab allocations (the only heap traffic).
  std::uint64_t arena_capacity = 0;    ///< Total event slots across all slabs.
};

namespace detail {

inline constexpr std::uint32_t kInvalidSlot = 0xffffffffu;

/// One recyclable event record. `generation` is bumped every time the slot
/// is retired (fired or cancelled); a handle or heap entry holding an older
/// generation is stale. Per-slot wrap-around needs 2^32 retirements of the
/// *same* slot — unreachable in practice (the heap's sequence counter, which
/// bounds total events, is 64-bit).
struct EventSlot {
  std::function<void()> action;
  SimTime time = 0.0;
  std::uint32_t generation = 0;
  std::uint32_t next_free = kInvalidSlot;
};

/// Slab arena of EventSlots with an intrusive free list. Slots are recycled
/// in LIFO order (hot in cache); slabs are never released before the arena
/// dies, so a run's allocation count is bounded by its peak pending events.
/// Not thread-safe — the DES kernel is single-threaded by design.
class EventArena {
 public:
  static constexpr std::uint32_t kSlabShift = 10;  // 1024 slots / slab
  static constexpr std::uint32_t kSlabSize = 1u << kSlabShift;

  /// Takes a free slot (growing by one slab when exhausted) and arms it with
  /// `(time, action)`. Returns the slot index; read the matching generation
  /// via generation().
  std::uint32_t acquire(SimTime time, std::function<void()>&& action) {
    if (free_head_ == kInvalidSlot) grow();
    const std::uint32_t index = free_head_;
    EventSlot& slot = (*this)[index];
    free_head_ = slot.next_free;
    slot.time = time;
    slot.action = std::move(action);
    ++live_;
    return index;
  }

  /// True while `generation` is the slot's current (armed) generation.
  [[nodiscard]] bool is_current(std::uint32_t index, std::uint32_t generation) const noexcept {
    return (*this)[index].generation == generation;
  }

  [[nodiscard]] std::uint32_t generation(std::uint32_t index) const noexcept {
    return (*this)[index].generation;
  }

  [[nodiscard]] SimTime time(std::uint32_t index) const noexcept { return (*this)[index].time; }

  /// Retires the slot (stale-ing all handles) and returns its action for
  /// execution. Precondition: is_current(index, ...) held by the caller.
  [[nodiscard]] std::function<void()> retire_and_take(std::uint32_t index) {
    EventSlot& slot = (*this)[index];
    std::function<void()> action = std::move(slot.action);
    release(index, slot);
    return action;
  }

  /// Cancels the event in `index` iff `generation` is still current.
  /// Returns true when this call performed the cancellation.
  bool cancel(std::uint32_t index, std::uint32_t generation) noexcept {
    EventSlot& slot = (*this)[index];
    if (slot.generation != generation) return false;
    slot.action = nullptr;  // release captures eagerly
    release(index, slot);
    ++stats_.events_cancelled;
    return true;
  }

  /// Events currently armed (scheduled, not yet fired or cancelled).
  [[nodiscard]] std::size_t live() const noexcept { return live_; }

  /// Returns the arena to its just-constructed state while keeping every
  /// slab allocated: all slots are disarmed (actions released, generations
  /// bumped so outstanding handles read stale) and the free list is rebuilt
  /// in ascending index order — the same hand-out order a fresh arena
  /// produces as it grows. Stats restart from zero except arena_capacity,
  /// which keeps reporting the retained slots; arena_slabs therefore counts
  /// slab allocations *since the reset* (zero for a warmed arena).
  void reset() noexcept {
    free_head_ = kInvalidSlot;
    for (std::uint32_t index = capacity_; index-- > 0;) {
      EventSlot& slot = (*this)[index];
      if (slot.action) slot.action = nullptr;  // release captures eagerly
      ++slot.generation;
      slot.next_free = free_head_;
      free_head_ = index;
    }
    live_ = 0;
    stats_ = KernelStats{};
    stats_.arena_capacity = capacity_;
  }

  [[nodiscard]] const KernelStats& stats() const noexcept { return stats_; }
  [[nodiscard]] KernelStats& stats_mut() noexcept { return stats_; }

 private:
  EventSlot& operator[](std::uint32_t index) noexcept {
    return slabs_[index >> kSlabShift][index & (kSlabSize - 1)];
  }
  const EventSlot& operator[](std::uint32_t index) const noexcept {
    return slabs_[index >> kSlabShift][index & (kSlabSize - 1)];
  }

  void release(std::uint32_t index, EventSlot& slot) noexcept {
    ++slot.generation;
    slot.next_free = free_head_;
    free_head_ = index;
    DG_ASSERT(live_ > 0);
    --live_;
  }

  void grow() {
    DG_ASSERT_MSG(capacity_ < kInvalidSlot - kSlabSize, "event arena exhausted");
    slabs_.push_back(std::make_unique<EventSlot[]>(kSlabSize));
    const std::uint32_t base = capacity_;
    capacity_ += kSlabSize;
    // Chain the new slab back-to-front so slots are first handed out in
    // ascending index order (purely cosmetic; determinism never depends on
    // slot numbering).
    for (std::uint32_t i = kSlabSize; i-- > 0;) {
      EventSlot& slot = (*this)[base + i];
      slot.next_free = free_head_;
      free_head_ = base + i;
    }
    ++stats_.arena_slabs;
    stats_.arena_capacity = capacity_;
  }

  std::vector<std::unique_ptr<EventSlot[]>> slabs_;
  std::uint32_t capacity_ = 0;
  std::uint32_t free_head_ = kInvalidSlot;
  std::size_t live_ = 0;
  KernelStats stats_;
};

}  // namespace detail

/// Cancellable reference to a scheduled event.
///
/// Handles are cheap value types (16 bytes + a weak arena reference) and may
/// freely outlive the event *and* the Simulator: a handle whose event fired,
/// was cancelled, or whose simulator died reports pending() == false and
/// cancel() == false. Not thread-safe (like the kernel itself).
class EventHandle {
 public:
  /// An inert handle: never pending, cancel() returns false.
  EventHandle() = default;

  /// Cancels the event if it is still pending, in O(1) (the slot generation
  /// is bumped; the stale heap entry is skipped lazily when popped).
  /// Returns true if this call performed the cancellation (false if the
  /// event already ran, was already cancelled, or the handle is empty).
  bool cancel() noexcept {
    auto arena = arena_.lock();
    return arena && arena->cancel(slot_, generation_);
  }

  /// True while the event is scheduled and not cancelled or executed.
  /// An event's own handle reads false during the action's execution.
  [[nodiscard]] bool pending() const noexcept {
    auto arena = arena_.lock();
    return arena && arena->is_current(slot_, generation_);
  }

  /// Scheduled firing time; only meaningful while pending() (0.0 otherwise).
  [[nodiscard]] SimTime time() const noexcept {
    auto arena = arena_.lock();
    return arena && arena->is_current(slot_, generation_) ? arena->time(slot_) : 0.0;
  }

 private:
  friend class Simulator;
  EventHandle(const std::shared_ptr<detail::EventArena>& arena, std::uint32_t slot,
              std::uint32_t generation) noexcept
      : arena_(arena), slot_(slot), generation_(generation) {}

  std::weak_ptr<detail::EventArena> arena_;
  std::uint32_t slot_ = detail::kInvalidSlot;
  std::uint32_t generation_ = 0;
};

}  // namespace dg::des
