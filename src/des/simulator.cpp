#include "des/simulator.hpp"

#include <cmath>
#include <utility>

#include "util/assert.hpp"

namespace dg::des {

EventHandle Simulator::schedule_at(SimTime time, std::function<void()> action) {
  DG_ASSERT_MSG(std::isfinite(time), "event time must be finite");
  DG_ASSERT_MSG(time >= now_, "cannot schedule an event in the past");
  DG_ASSERT(action != nullptr);
  const std::uint32_t slot = arena_->acquire(time, std::move(action));
  const std::uint32_t generation = arena_->generation(slot);
  queue_push(QueueEntry{time, next_sequence_++, slot, generation});
  KernelStats& stats = arena_->stats_mut();
  ++stats.events_scheduled;
  if (queue_size() > stats.heap_peak) stats.heap_peak = queue_size();
  return EventHandle{arena_, slot, generation};
}

void Simulator::set_queue_backend(QueueBackend backend) {
  DG_ASSERT_MSG(queue_size() == 0, "queue backend can only change while the queue is empty");
  backend_ = backend;
}

bool Simulator::queue_skip_stale() {
  while (queue_size() != 0) {
    const QueueEntry& entry = queue_top();
    if (arena_->is_current(entry.slot, entry.generation)) return true;
    queue_pop();
  }
  return false;
}

bool Simulator::step() {
  if (stopped_) return false;
  if (!queue_skip_stale()) return false;
  const QueueEntry entry = queue_top();
  queue_pop();
  DG_ASSERT(entry.time >= now_);
  now_ = entry.time;
  ++arena_->stats_mut().events_fired;
  // Retiring before invoking makes the action's own handle read !pending().
  std::function<void()> action = arena_->retire_and_take(entry.slot);
  action();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime horizon) {
  DG_ASSERT(horizon >= now_);
  while (!stopped_ && queue_skip_stale()) {
    if (queue_top().time > horizon) break;
    step();
  }
  if (!stopped_ && now_ < horizon) now_ = horizon;
}

}  // namespace dg::des
