#include "des/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/assert.hpp"

namespace dg::des {

EventHandle Simulator::schedule_at(SimTime time, std::function<void()> action) {
  DG_ASSERT_MSG(std::isfinite(time), "event time must be finite");
  DG_ASSERT_MSG(time >= now_, "cannot schedule an event in the past");
  DG_ASSERT(action != nullptr);
  const std::uint32_t slot = arena_->acquire(time, std::move(action));
  const std::uint32_t generation = arena_->generation(slot);
  heap_push(HeapEntry{time, next_sequence_++, slot, generation});
  KernelStats& stats = arena_->stats_mut();
  ++stats.events_scheduled;
  if (heap_.size() > stats.heap_peak) stats.heap_peak = heap_.size();
  return EventHandle{arena_, slot, generation};
}

void Simulator::heap_push(const HeapEntry& entry) {
  std::size_t hole = heap_.size();
  heap_.push_back(entry);
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / kArity;
    if (!earlier(entry, heap_[parent])) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = entry;
}

void Simulator::heap_pop_root() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t size = heap_.size();
  if (size == 0) return;
  // Sift the former last element down from the root, always descending into
  // the earliest of (up to) four children — two cache lines per level.
  std::size_t hole = 0;
  for (;;) {
    const std::size_t first_child = hole * kArity + 1;
    if (first_child >= size) break;
    std::size_t best = first_child;
    const std::size_t end = std::min(first_child + kArity, size);
    for (std::size_t child = first_child + 1; child < end; ++child) {
      if (earlier(heap_[child], heap_[best])) best = child;
    }
    if (!earlier(heap_[best], last)) break;
    heap_[hole] = heap_[best];
    hole = best;
  }
  heap_[hole] = last;
}

bool Simulator::heap_skip_stale() {
  while (!heap_.empty()) {
    if (arena_->is_current(heap_[0].slot, heap_[0].generation)) return true;
    heap_pop_root();
  }
  return false;
}

bool Simulator::step() {
  if (stopped_) return false;
  if (!heap_skip_stale()) return false;
  const HeapEntry entry = heap_[0];
  heap_pop_root();
  DG_ASSERT(entry.time >= now_);
  now_ = entry.time;
  ++arena_->stats_mut().events_fired;
  // Retiring before invoking makes the action's own handle read !pending().
  std::function<void()> action = arena_->retire_and_take(entry.slot);
  action();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime horizon) {
  DG_ASSERT(horizon >= now_);
  while (!stopped_ && heap_skip_stale()) {
    if (heap_[0].time > horizon) break;
    step();
  }
  if (!stopped_ && now_ < horizon) now_ = horizon;
}

}  // namespace dg::des
