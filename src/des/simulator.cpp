#include "des/simulator.hpp"

#include <cmath>
#include <utility>

#include "util/assert.hpp"

namespace dg::des {

EventHandle Simulator::schedule_at(SimTime time, std::function<void()> action) {
  DG_ASSERT_MSG(std::isfinite(time), "event time must be finite");
  DG_ASSERT_MSG(time >= now_, "cannot schedule an event in the past");
  DG_ASSERT(action != nullptr);
  auto record = std::make_shared<Record>();
  record->time = time;
  record->sequence = next_sequence_++;
  record->action = std::move(action);
  EventHandle handle{std::weak_ptr<Record>(record)};
  queue_.push(std::move(record));
  ++pending_;
  return handle;
}

std::shared_ptr<Simulator::Record> Simulator::pop_next() {
  while (!queue_.empty()) {
    std::shared_ptr<Record> record = queue_.top();
    queue_.pop();
    DG_ASSERT(pending_ > 0);
    --pending_;
    if (record->cancelled) continue;
    return record;
  }
  return nullptr;
}

bool Simulator::step() {
  if (stopped_) return false;
  std::shared_ptr<Record> record = pop_next();
  if (!record) return false;
  DG_ASSERT(record->time >= now_);
  now_ = record->time;
  ++executed_;
  // Mark executed before invoking so the action's own handle reads !pending().
  record->cancelled = true;
  std::function<void()> action = std::move(record->action);
  action();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime horizon) {
  DG_ASSERT(horizon >= now_);
  while (!stopped_ && !queue_.empty()) {
    // Peek through cancelled records without committing to execution.
    while (!queue_.empty() && queue_.top()->cancelled) {
      queue_.pop();
      DG_ASSERT(pending_ > 0);
      --pending_;
    }
    if (queue_.empty()) break;
    if (queue_.top()->time > horizon) break;
    step();
  }
  if (!stopped_ && now_ < horizon) now_ = horizon;
}

}  // namespace dg::des
